#!/usr/bin/env python
"""Poisson on a car geometry: AMG-preconditioned CG (paper test case 2).

The workflow behind the paper's second matrix:

1. mesh a synthetic car body with a quasi-uniform vertex cloud and
   assemble the finite-volume Laplacian (Nnzr ≈ 7, like sAMG's matrix),
2. build a Ruge-Stüben AMG hierarchy on it,
3. solve ``A u = f`` three ways — plain CG, AMG V-cycles, and
   AMG-preconditioned CG — and compare iteration counts,
4. run the same solve SPMD: distributed CG over mpilite ranks with the
   halo-exchanged spMVM as the operator.

Run:  python examples/poisson_cg.py
"""

import numpy as np

from repro.core import build_halo_plan, scatter_vector
from repro.matrices import build_samg_like
from repro.mpilite import PerRank, run_spmd
from repro.solvers import DistributedOperator, SerialOperator, build_amg, conjugate_gradient
from repro.sparse import matrix_stats, partition_matrix


def main() -> None:
    A = build_samg_like(8000, seed=1)
    print(f"sAMG-like matrix: {matrix_stats(A, check_symmetry=False).describe()}")
    rng = np.random.default_rng(3)
    u_true = rng.standard_normal(A.nrows)
    f = A @ u_true
    op = SerialOperator(A)

    # -- plain CG -------------------------------------------------------
    plain = conjugate_gradient(op, f, tol=1e-8, max_iter=2000)
    print(f"plain CG          : {plain.iterations:4d} iterations, "
          f"rel resid {plain.residual_history[-1]:.1e}")

    # -- AMG hierarchy ---------------------------------------------------
    amg = build_amg(A, theta=0.25)
    sizes = " -> ".join(str(l.A.nrows) for l in amg.levels)
    print(f"AMG hierarchy     : {amg.n_levels} levels ({sizes} -> "
          f"{amg.coarse_dense.shape[0]} dense), "
          f"operator complexity {amg.operator_complexity():.2f}")
    _, cycles, rel = amg.solve(f, tol=1e-8)
    print(f"AMG V-cycles      : {cycles:4d} cycles, rel resid {rel:.1e}")

    # -- AMG-preconditioned CG -------------------------------------------
    pcg = conjugate_gradient(op, f, tol=1e-8, max_iter=2000,
                             preconditioner=amg.as_preconditioner())
    print(f"AMG-CG            : {pcg.iterations:4d} iterations, "
          f"rel resid {pcg.residual_history[-1]:.1e}")
    err = float(np.abs(pcg.x - u_true).max())
    print(f"solution error    : max |u - u_true| = {err:.2e}")

    # -- distributed CG ----------------------------------------------------
    nranks = 4
    partition = partition_matrix(A, nranks)
    plan = build_halo_plan(A, partition, with_matrices=True)

    def rank_fn(comm, halo):
        dop = DistributedOperator(comm, halo, scheme="task_mode")
        res = conjugate_gradient(
            dop, scatter_vector(f, partition, comm.rank), tol=1e-8, max_iter=2000
        )
        return res.x, res.iterations

    results = run_spmd(nranks, rank_fn, PerRank(plan.ranks))
    u_dist = np.concatenate([r[0] for r in results])
    print(f"distributed CG    : {results[0][1]:4d} iterations on {nranks} ranks, "
          f"max |u - u_serial| = {float(np.abs(u_dist - plain.x).max()):.2e}")


if __name__ == "__main__":
    main()
