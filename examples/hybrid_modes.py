#!/usr/bin/env python
"""Hybrid-mode shoot-out on the simulated Westmere cluster.

Reproduces the core message of the paper in one run: for the
communication-bound HMeP matrix, task mode (explicit overlap via a
dedicated communication thread) beats both vector modes, and running
one MPI process per NUMA domain or per node scales further than pure
MPI — while for the communication-light sAMG matrix all variants
perform alike, so hybrid programming buys nothing.

Run:  python examples/hybrid_modes.py [--nodes 8] [--scale small]
"""

import argparse

from repro.core import simulate_spmvm
from repro.experiments import KAPPA, REDUCED_EAGER_THRESHOLD
from repro.machine import westmere_cluster
from repro.matrices import get_matrix
from repro.util import Table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=8, help="cluster size")
    parser.add_argument("--scale", default="small", help="matrix scale (tiny/small/medium)")
    args = parser.parse_args()

    cluster = westmere_cluster(args.nodes)
    for name in ("HMeP", "sAMG"):
        A = get_matrix(name, args.scale).build_cached()
        t = Table(
            ["mode", "scheme", "ranks", "GFlop/s", "ms/MVM"],
            title=f"\n=== {name} ({args.scale}): {args.nodes} Westmere nodes ===",
            float_fmt=".2f",
        )
        best = None
        for mode in ("per-core", "per-ld", "per-node"):
            for scheme in ("no_overlap", "naive_overlap", "task_mode"):
                r = simulate_spmvm(
                    A,
                    cluster,
                    mode=mode,
                    scheme=scheme,
                    kappa=KAPPA[name],
                    eager_threshold=REDUCED_EAGER_THRESHOLD,
                )
                t.add_row([mode, scheme, r.n_ranks, r.gflops, r.seconds_per_mvm * 1e3])
                if best is None or r.gflops > best[0]:
                    best = (r.gflops, mode, scheme)
        print(t.render())
        assert best is not None
        print(f"best: {best[2]} / {best[1]} at {best[0]:.2f} GFlop/s")


if __name__ == "__main__":
    main()
