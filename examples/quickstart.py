#!/usr/bin/env python
"""Quickstart: build a matrix, multiply it in parallel, check the model.

Covers the library's three layers in ~60 lines:

1. generate the paper's HMeP Hamiltonian (reduced scale) and inspect it,
2. run a *real* distributed spMVM on mpilite ranks (all three Fig. 4
   schemes) and verify the result against the serial kernel,
3. evaluate the node-level code-balance model (Eq. 1) for this matrix
   and predict single-socket performance on the paper's machines,
4. simulate one cluster configuration and print the predicted GFlop/s.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import distributed_spmv, simulate_spmvm
from repro.experiments import KAPPA, REDUCED_EAGER_THRESHOLD
from repro.machine import westmere_cluster
from repro.matrices import get_matrix
from repro.model import CodeBalanceModel
from repro.sparse import matrix_stats


def main() -> None:
    # -- 1. the matrix ------------------------------------------------
    spec = get_matrix("HMeP", "small")
    A = spec.build()
    print(f"matrix: {spec.description}")
    print(f"stats : {matrix_stats(A, check_symmetry=False).describe()}")

    # -- 2. real distributed execution --------------------------------
    rng = np.random.default_rng(42)
    x = rng.standard_normal(A.nrows)
    reference = A @ x
    for scheme in ("no_overlap", "naive_overlap", "task_mode"):
        y = distributed_spmv(A, x, nranks=4, scheme=scheme)
        err = float(np.abs(y - reference).max())
        print(f"distributed spMVM [{scheme:>13}] on 4 ranks: max |err| = {err:.2e}")

    # -- 3. the node-level model --------------------------------------
    model = CodeBalanceModel(nnzr=A.nnzr, kappa=KAPPA["HMeP"])
    print(f"code balance B_CRS = {model.balance():.2f} bytes/flop")
    for bw_gb, name in ((18.1, "Nehalem socket"), (20.1, "Westmere LD")):
        perf = model.performance(bw_gb * 1e9) / 1e9
        print(f"predicted spMVM on {name} ({bw_gb} GB/s): {perf:.2f} GFlop/s")

    # -- 4. one simulated cluster configuration -----------------------
    cluster = westmere_cluster(8)
    result = simulate_spmvm(
        A,
        cluster,
        mode="per-ld",
        scheme="task_mode",
        kappa=KAPPA["HMeP"],
        eager_threshold=REDUCED_EAGER_THRESHOLD,
    )
    print(f"simulated: {result.describe()}")


if __name__ == "__main__":
    main()
