#!/usr/bin/env python
"""Demonstrate the MPI asynchronous-progress pathology (paper Sect. 3).

Three stories in one script:

1. the micro-probe: a nonblocking exchange "overlapped" with compute
   moves no bytes under 2010-era progress semantics — the overlap ratio
   is ~0; an MPI with progress threads reaches ~1; the paper's task-mode
   workaround reaches ~1 *without* library support;
2. the same effect at application level: HMeP spMVM with naive overlap
   vs task mode on a communication-bound cluster configuration;
3. the outlook the paper closes with: if MPI libraries shipped working
   progress threads, naive overlap would close most of the gap — shown
   by flipping the simulator's ``async_progress`` switch.

Run:  python examples/async_progress.py
"""

from repro.core import simulate_spmvm
from repro.experiments import KAPPA, REDUCED_EAGER_THRESHOLD, run_progress_probe
from repro.machine import westmere_cluster
from repro.matrices import get_matrix


def main() -> None:
    # -- 1. the probe ---------------------------------------------------
    print(run_progress_probe().render())

    # -- 2. application level --------------------------------------------
    A = get_matrix("HMeP", "small").build_cached()
    cluster = westmere_cluster(8)
    common = dict(mode="per-ld", kappa=KAPPA["HMeP"], eager_threshold=REDUCED_EAGER_THRESHOLD)
    naive = simulate_spmvm(A, cluster, scheme="naive_overlap", **common)
    task = simulate_spmvm(A, cluster, scheme="task_mode", **common)
    print("\nHMeP on 8 Westmere nodes (one MPI process per NUMA LD):")
    print(f"  naive overlap (2010-era MPI): {naive.gflops:7.2f} GFlop/s")
    print(f"  task mode (explicit overlap): {task.gflops:7.2f} GFlop/s "
          f"({task.gflops / naive.gflops - 1.0:+.0%})")

    # -- 3. the outlook ----------------------------------------------------
    fixed = simulate_spmvm(A, cluster, scheme="naive_overlap", async_progress=True, **common)
    print("\nwith an MPI library that makes asynchronous progress:")
    print(f"  naive overlap               : {fixed.gflops:7.2f} GFlop/s "
          f"(recovers {min(1.0, fixed.gflops / task.gflops):.0%} of task mode)")
    print("\n→ 'MPI implementations could use the same strategy for internal")
    print("   progress threads and so enable asynchronous communication")
    print("   without changes in MPI-only user code.' (paper, Sect. 5)")


if __name__ == "__main__":
    main()
