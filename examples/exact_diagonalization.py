#!/usr/bin/env python
"""Exact diagonalization of the Holstein-Hubbard model (paper test case 1).

The full application workflow behind the paper's first matrix:

1. build the second-quantised Hamiltonian (electrons ⊗ phonons),
2. find the ground state with a *distributed* Lanczos solver — every
   matrix application is the halo-exchanged spMVM running SPMD on
   mpilite ranks, every inner product an allreduce,
3. verify against a serial Lanczos run and (at this scale) dense
   diagonalisation,
4. compute the spectral density with the kernel polynomial method and
   propagate a quantum state in time with the Chebyshev expansion —
   the paper's "computation of spectral properties [10] or time
   evolution of quantum states [11]".

Run:  python examples/exact_diagonalization.py
"""

import numpy as np

from repro.core import build_halo_plan, scatter_vector
from repro.matrices import HolsteinHubbardParams, build_holstein_hubbard
from repro.mpilite import PerRank, run_spmd
from repro.solvers import (
    ChebyshevPropagator,
    DistributedOperator,
    SerialOperator,
    kpm_spectrum,
    lanczos,
    spectral_bounds,
)
from repro.sparse import partition_matrix


def main() -> None:
    params = HolsteinHubbardParams(
        n_sites=4, n_up=2, n_dn=2, n_phonon_modes=2, max_phonons=6,
        hubbard_u=4.0, omega0=1.0, coupling_g=0.4,
    )
    H = build_holstein_hubbard(params, ordering="HMeP")
    print(f"Holstein-Hubbard: dim {H.nrows} ({params.electron_dim} el x "
          f"{params.phonon_dim} ph), nnz {H.nnz}")

    # -- distributed Lanczos ------------------------------------------
    nranks = 4
    partition = partition_matrix(H, nranks)
    plan = build_halo_plan(H, partition, with_matrices=True)
    rng = np.random.default_rng(7)
    v0 = rng.standard_normal(H.nrows)

    def rank_fn(comm, halo):
        op = DistributedOperator(comm, halo, scheme="task_mode")
        res = lanczos(
            op,
            max_iter=150,
            tol=1e-9,
            v0=scatter_vector(v0, partition, comm.rank),
            seed=0,
        )
        return res.ground_energy

    energies = run_spmd(nranks, rank_fn, PerRank(plan.ranks))
    e_dist = energies[0]
    assert all(abs(e - e_dist) < 1e-12 for e in energies), "ranks disagree!"

    # -- serial cross-checks ------------------------------------------
    op = SerialOperator(H)
    e_serial = lanczos(op, max_iter=150, tol=1e-9, v0=v0).ground_energy
    e_dense = float(np.linalg.eigvalsh(H.to_dense())[0]) if H.nrows <= 3000 else None
    print(f"ground-state energy:  distributed Lanczos {e_dist:+.10f}")
    print(f"                      serial Lanczos      {e_serial:+.10f}")
    if e_dense is not None:
        print(f"                      dense eigh          {e_dense:+.10f}")

    # -- spectral density via KPM --------------------------------------
    bounds = spectral_bounds(op)
    spectrum = kpm_spectrum(op, bounds, n_moments=96, n_random=6).normalized()
    peak = spectrum.energies[int(np.argmax(spectrum.density))]
    print(f"KPM: spectrum in [{bounds[0]:.2f}, {bounds[1]:.2f}], "
          f"DOS peak near E = {peak:.2f}")

    # -- Chebyshev time evolution --------------------------------------
    prop = ChebyshevPropagator(op, bounds)
    psi0 = np.zeros(H.nrows, dtype=complex)
    psi0[0] = 1.0
    times = [0.0]
    survival = [1.0]
    psi = psi0
    for step in range(5):
        psi = prop.step(psi, 0.4)
        times.append(0.4 * (step + 1))
        survival.append(abs(np.vdot(psi0, psi)) ** 2)
    print("time evolution |<psi0|psi(t)>|^2:",
          ", ".join(f"t={t:.1f}: {s:.4f}" for t, s in zip(times, survival)))
    print(f"norm conservation: |psi| = {np.linalg.norm(psi):.12f} (should be 1)")


if __name__ == "__main__":
    main()
