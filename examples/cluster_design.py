#!/usr/bin/env python
"""What-if studies with the calibrated simulator: when does task mode matter?

The paper's conclusion — explicit overlap pays for communication-bound
problems — invites the follow-up question a system designer would ask:
*how communication-bound does the system have to be?*  This example
sweeps two machine knobs around the calibrated Westmere cluster:

1. interconnect bandwidth: from a 4x slower to a 4x faster fabric than
   QDR InfiniBand, recording the task-mode advantage at each point;
2. the MPI library's progress semantics: 2010-era vs progress threads —
   reproducing the paper's outlook that library-internal progress
   threads would make naive overlap competitive.

Run:  python examples/cluster_design.py [--nodes 8] [--scale small]
"""

import argparse
from dataclasses import replace

from repro.core import simulate_spmvm
from repro.experiments import KAPPA, REDUCED_EAGER_THRESHOLD
from repro.machine import ClusterSpec, FatTree, westmere_cluster
from repro.matrices import get_matrix
from repro.util import Table, gb_per_s


def cluster_with_fabric(base: ClusterSpec, bandwidth: float) -> ClusterSpec:
    """The Westmere cluster with a different fat-tree link bandwidth."""
    node = replace(
        base.node,
        nic_bandwidth=bandwidth,
    )
    return ClusterSpec(
        name=f"{base.name} @ {bandwidth / 1e9:.1f} GB/s links",
        node=node,
        n_nodes=base.n_nodes,
        network=FatTree(latency=1.5e-6, link_bandwidth=bandwidth),
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--scale", default="small")
    args = parser.parse_args()

    A = get_matrix("HMeP", args.scale).build_cached()
    base = westmere_cluster(args.nodes)
    common = dict(mode="per-ld", kappa=KAPPA["HMeP"], eager_threshold=REDUCED_EAGER_THRESHOLD)

    # -- 1. fabric sweep ---------------------------------------------------
    t = Table(
        ["link GB/s", "no overlap", "task mode", "task-mode gain"],
        title=f"HMeP on {args.nodes} nodes: task-mode advantage vs fabric speed",
        float_fmt=".2f",
    )
    for factor in (0.25, 0.5, 1.0, 2.0, 4.0):
        bw = gb_per_s(3.2 * factor)
        cl = cluster_with_fabric(base, bw)
        novl = simulate_spmvm(A, cl, scheme="no_overlap", **common)
        task = simulate_spmvm(A, cl, scheme="task_mode", **common)
        t.add_row([3.2 * factor, novl.gflops, task.gflops, task.gflops / novl.gflops])
    print(t.render())
    print("→ the gain peaks where communication and computation times are")
    print("  comparable (overlap can hide one inside the other); on a very")
    print("  slow fabric communication dominates outright, and on a fast")
    print("  enough one the kernel is compute-bound — in both extremes the")
    print("  paper's sAMG conclusion applies: hybrid buys little.\n")

    # -- 2. progress-semantics sweep ----------------------------------------
    t2 = Table(
        ["MPI library", "naive overlap", "task mode"],
        title="the paper's outlook: what a progress-thread MPI would change",
        float_fmt=".2f",
    )
    for label, async_progress in (("2010-era (no async progress)", False),
                                  ("with progress threads", True)):
        naive = simulate_spmvm(A, base, scheme="naive_overlap",
                               async_progress=async_progress, **common)
        task = simulate_spmvm(A, base, scheme="task_mode",
                              async_progress=async_progress, **common)
        t2.add_row([label, naive.gflops, task.gflops])
    print(t2.render())


if __name__ == "__main__":
    main()
