"""Legacy setup shim.

Metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works in offline environments without the ``wheel``
package (legacy editable install path).
"""

from setuptools import setup

setup()
