"""Golden cross-backend test: one sweep program, two executions.

The acceptance contract of the sweep IR (DESIGN.md §10): for every
Fig. 4 scheme × {spmv, spmm} × {classic, plan} lowering,

* the op sequence the mpilite backend executes equals the op sequence
  the simulation backend executes (both equal the program's signature),
* the mpilite results are bit-identical across all combinations and to
  a hand-rolled split-kernel reference (the pre-refactor arithmetic:
  local part first, then the remote part accumulated row by row).

The multi-sweep half (DESIGN.md §15) extends the same contract to
N-sweep chained programs: frozen sweep-tagged signatures for every
scheme, op-sequence equality between :meth:`multiply_chain` and the
simulator's :func:`multi_sweep_process`, and bit-identity of the
pipelined chain against both the sequential chain and the iterated
split-kernel reference.
"""

import numpy as np
import pytest

from repro.core import cached_halo_plan, distributed_spmm, distributed_spmv, simulate_from_plan
from repro.core.spmvm import SCHEMES, DistributedSpMVM, lower_comm_plan, scatter_vector
from repro.machine import westmere_cluster
from repro.mpilite import PerRank, run_spmd
from repro.program import build_multi_sweep, build_sweep
from repro.sparse import partition_matrix
from repro.sparse.spmm import spmm, spmm_add
from repro.sparse.spmv import spmv, spmv_add

NRANKS = 4

#: The frozen per-scheme op sequences — editing a builder must be a
#: conscious change here too.
GOLDEN_SIGNATURES = {
    "no_overlap": (
        "POST_RECVS", "PACK", "POST_SENDS", "WAITALL", "FULL_SPMVM",
    ),
    "naive_overlap": (
        "POST_RECVS", "PACK", "POST_SENDS", "LOCAL_SPMVM", "WAITALL",
        "REMOTE_SPMVM",
    ),
    "task_mode": (
        "POST_RECVS", "PACK", "OMP_BARRIER",
        "COMM_THREAD{", "POST_SENDS", "WAITALL", "}",
        "LOCAL_SPMVM", "OMP_BARRIER", "REMOTE_SPMVM",
    ),
}


N_SWEEPS = 3

#: The frozen N=3 pipelined multi-sweep op sequences.  The pipelining
#: contract is visible in the data: sweep ``s+1``'s POST_RECVS precedes
#: sweep ``s``'s remote/full kernel in every scheme.
GOLDEN_MULTI_SIGNATURES = {
    "no_overlap": (
        "s0:POST_RECVS", "s0:PACK", "s0:POST_SENDS", "s0:WAITALL",
        "s1:POST_RECVS", "s0:FULL_SPMVM", "s1:PACK", "s1:POST_SENDS",
        "s1:WAITALL", "s2:POST_RECVS", "s1:FULL_SPMVM", "s2:PACK",
        "s2:POST_SENDS", "s2:WAITALL", "s2:FULL_SPMVM",
    ),
    "naive_overlap": (
        "s0:POST_RECVS", "s0:PACK", "s0:POST_SENDS", "s0:LOCAL_SPMVM",
        "s0:WAITALL", "s1:POST_RECVS", "s0:REMOTE_SPMVM", "s1:PACK",
        "s1:POST_SENDS", "s1:LOCAL_SPMVM", "s1:WAITALL", "s2:POST_RECVS",
        "s1:REMOTE_SPMVM", "s2:PACK", "s2:POST_SENDS", "s2:LOCAL_SPMVM",
        "s2:WAITALL", "s2:REMOTE_SPMVM",
    ),
    "task_mode": (
        "s0:POST_RECVS", "s0:PACK", "s0:OMP_BARRIER", "COMM_THREAD{",
        "s0:POST_SENDS", "s0:WAITALL", "s0:OMP_BARRIER", "s1:POST_RECVS",
        "s1:OMP_BARRIER", "s1:POST_SENDS", "s1:WAITALL", "s1:OMP_BARRIER",
        "s2:POST_RECVS", "s2:OMP_BARRIER", "s2:POST_SENDS", "s2:WAITALL",
        "}", "s0:LOCAL_SPMVM", "s0:OMP_BARRIER", "s0:REMOTE_SPMVM",
        "s1:PACK", "s1:OMP_BARRIER", "s1:LOCAL_SPMVM", "s1:OMP_BARRIER",
        "s1:REMOTE_SPMVM", "s2:PACK", "s2:OMP_BARRIER", "s2:LOCAL_SPMVM",
        "s2:OMP_BARRIER", "s2:REMOTE_SPMVM",
    ),
}


@pytest.fixture(scope="module")
def golden_matrix(hmep_small):
    return hmep_small


@pytest.fixture(scope="module")
def golden_x(golden_matrix):
    rng = np.random.default_rng(11)
    return rng.standard_normal(golden_matrix.nrows)


@pytest.fixture(scope="module")
def golden_X(golden_matrix):
    rng = np.random.default_rng(12)
    return rng.standard_normal((golden_matrix.nrows, 3))


def split_kernel_reference(A, x, nranks):
    """Hand-rolled split-kernel result: what every scheme must reproduce bit for bit."""
    plan = cached_halo_plan(A, nranks, with_matrices=True)
    pieces = []
    for halo in plan.ranks:
        x_local = np.asarray(x[halo.row_lo:halo.row_hi], dtype=np.float64)
        block = x_local.ndim == 2
        y = spmm(halo.A_local, x_local) if block else spmv(halo.A_local, x_local)
        if halo.n_halo:
            halo_vals = np.asarray(x[halo.halo_columns], dtype=np.float64)
        else:
            halo_vals = np.zeros((1, x.shape[1])) if block else np.zeros(1)
        if block:
            spmm_add(halo.A_remote, halo_vals, out=y)
        else:
            spmv_add(halo.A_remote, halo_vals, out=y)
        pieces.append(y)
    return np.concatenate(pieces)


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("lowering", ["classic", "plan"])
@pytest.mark.parametrize("width", ["spmv", "spmm"])
def test_cross_backend_golden(golden_matrix, golden_x, golden_X, scheme, lowering, width):
    A = golden_matrix
    x = golden_x if width == "spmv" else golden_X
    k = 1 if width == "spmv" else x.shape[1]
    signature = GOLDEN_SIGNATURES[scheme]
    assert build_sweep(scheme, block_k=k, comm_plan=lowering).signature() == signature

    # --- real execution (mpilite): op log + per-rank results ----------
    plan = cached_halo_plan(A, NRANKS, with_matrices=True)
    cplan = (
        lower_comm_plan(plan, NRANKS, "node-aware", ranks_per_node=2)
        if lowering == "plan" else None
    )

    def rank_fn(comm, halo):
        engine = DistributedSpMVM(comm, halo, comm_plan=cplan)
        x_local = scatter_vector(x, plan.partition, comm.rank)
        log: list[str] = []
        if width == "spmv":
            y = engine.multiply(x_local, scheme, op_log=log)
        else:
            y = engine.multiply_block(x_local, scheme, op_log=log)
        return y, tuple(log)

    out = run_spmd(NRANKS, rank_fn, PerRank(plan.ranks))
    for _y, log in out:
        assert log == signature
    y_exec = np.concatenate([y for y, _log in out])

    # --- simulation: same program, same op sequence -------------------
    cluster = westmere_cluster(2)
    sim_plan = cached_halo_plan(A, NRANKS, with_matrices=False)
    op_logs: dict[int, list[str]] = {}
    iterations = 2
    simulate_from_plan(
        sim_plan, cluster, mode="per-ld", scheme=scheme,
        eager_threshold=1024, iterations=iterations, block_k=k,
        comm_plan="node-aware" if lowering == "plan" else "direct",
        op_logs=op_logs,
    )
    assert sorted(op_logs) == list(range(NRANKS))
    for rank_log in op_logs.values():
        assert tuple(rank_log) == signature * iterations

    # --- numerics: bit-identical to the split-kernel reference --------
    assert np.array_equal(y_exec, split_kernel_reference(A, x, NRANKS))


@pytest.mark.parametrize("scheme", SCHEMES)
def test_multi_sweep_frozen_signature(scheme):
    sig = build_multi_sweep(scheme, N_SWEEPS).signature()
    assert sig == GOLDEN_MULTI_SIGNATURES[scheme]
    # The pipelining contract, asserted on the data itself: sweep s+1's
    # receives are posted before sweep s's concluding kernel.
    tail = "FULL_SPMVM" if scheme == "no_overlap" else "REMOTE_SPMVM"
    for s in range(N_SWEEPS - 1):
        assert sig.index(f"s{s + 1}:POST_RECVS") < sig.index(f"s{s}:{tail}")


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("lowering", ["classic", "plan"])
def test_multi_sweep_cross_backend_golden(golden_matrix, golden_x, scheme, lowering):
    A = golden_matrix
    x = golden_x
    signature = GOLDEN_MULTI_SIGNATURES[scheme]

    # --- real execution (mpilite): op log + per-rank chain slices -----
    plan = cached_halo_plan(A, NRANKS, with_matrices=True)
    cplan = (
        lower_comm_plan(plan, NRANKS, "node-aware", ranks_per_node=2)
        if lowering == "plan" else None
    )

    def rank_fn(comm, halo):
        engine = DistributedSpMVM(comm, halo, comm_plan=cplan)
        x_local = scatter_vector(x, plan.partition, comm.rank)
        log: list[str] = []
        ys = engine.multiply_chain(x_local, N_SWEEPS, scheme, op_log=log)
        return ys, tuple(log)

    out = run_spmd(NRANKS, rank_fn, PerRank(plan.ranks))
    for _ys, log in out:
        assert log == signature

    # --- simulation: same program, same op sequence -------------------
    cluster = westmere_cluster(2)
    sim_plan = cached_halo_plan(A, NRANKS, with_matrices=False)
    op_logs: dict[int, list[str]] = {}
    iterations = 2
    result = simulate_from_plan(
        sim_plan, cluster, mode="per-ld", scheme=scheme,
        eager_threshold=1024, iterations=iterations,
        n_sweeps=N_SWEEPS, pipeline=True,
        comm_plan="node-aware" if lowering == "plan" else "direct",
        op_logs=op_logs,
    )
    assert result.iterations == iterations * N_SWEEPS
    assert sorted(op_logs) == list(range(NRANKS))
    for rank_log in op_logs.values():
        assert tuple(rank_log) == signature * iterations

    # --- numerics: every chain slice matches the iterated reference ---
    ref = x
    for s in range(N_SWEEPS):
        ref = split_kernel_reference(A, ref, NRANKS)
        assert np.array_equal(
            np.concatenate([ys[s] for ys, _log in out]), ref
        )


@pytest.mark.parametrize("scheme", SCHEMES)
def test_multi_sweep_pipelined_vs_sequential_bit_identical(golden_matrix, golden_x, scheme):
    """Pipelining reorders communication, never kernel arithmetic."""
    A = golden_matrix
    x = golden_x
    plan = cached_halo_plan(A, NRANKS, with_matrices=True)

    def rank_fn(comm, halo):
        engine = DistributedSpMVM(comm, halo)
        x_local = scatter_vector(x, plan.partition, comm.rank)
        pipe = engine.multiply_chain(x_local, N_SWEEPS, scheme, pipeline=True)
        seq = engine.multiply_chain(x_local, N_SWEEPS, scheme, pipeline=False)
        return pipe, seq

    for pipe, seq in run_spmd(NRANKS, rank_fn, PerRank(plan.ranks)):
        assert len(pipe) == len(seq) == N_SWEEPS
        for y_pipe, y_seq in zip(pipe, seq):
            assert np.array_equal(y_pipe, y_seq)


def test_all_combinations_bit_identical(golden_matrix, golden_x, golden_X):
    """Scheme and lowering choice must never change a single bit."""
    A = golden_matrix
    spmv_results = [
        distributed_spmv(A, golden_x, NRANKS, scheme=scheme,
                         comm_plan=cp, ranks_per_node=2)
        for scheme in SCHEMES for cp in ("direct", "node-aware")
    ]
    spmm_results = [
        distributed_spmm(A, golden_X, NRANKS, scheme=scheme,
                         comm_plan=cp, ranks_per_node=2)
        for scheme in SCHEMES for cp in ("direct", "node-aware")
    ]
    for y in spmv_results[1:]:
        assert np.array_equal(y, spmv_results[0])
    for Y in spmm_results[1:]:
        assert np.array_equal(Y, spmm_results[0])
    # spmm columns are bit-identical to the corresponding spmv
    for j in range(golden_X.shape[1]):
        assert np.array_equal(
            spmm_results[0][:, j],
            distributed_spmv(A, golden_X[:, j], NRANKS, scheme="task_mode"),
        )
