"""Halo-plan bookkeeping verified against a brute-force reference."""

import numpy as np
import pytest

from repro.core import build_halo_plan
from repro.matrices import random_banded, random_sparse
from repro.sparse import partition_matrix, partition_rows_balanced


def _brute_force_needs(A, partition):
    """For each pair (p, q): the set of q-owned columns p's rows touch."""
    needs = {}
    dense_cols = [set() for _ in range(partition.nparts)]
    for p in range(partition.nparts):
        lo, hi = partition.bounds(p)
        cols = set()
        for i in range(lo, hi):
            for j in A.col_idx[A.row_ptr[i] : A.row_ptr[i + 1]]:
                j = int(j)
                if j < lo or j >= hi:
                    cols.add(j)
        for q in range(partition.nparts):
            qlo, qhi = partition.bounds(q)
            subset = sorted(c for c in cols if qlo <= c < qhi)
            if subset:
                needs[(p, q)] = subset
    return needs


@pytest.fixture(scope="module")
def matrix():
    return random_sparse(120, nnzr=6, seed=7)


def test_halo_plan_against_brute_force(matrix):
    partition = partition_matrix(matrix, 5)
    plan = build_halo_plan(matrix, partition, with_matrices=True)
    needs = _brute_force_needs(matrix, partition)
    for p, rh in enumerate(plan.ranks):
        # receive counts
        expected_recv = {q: len(cols) for (pp, q), cols in needs.items() if pp == p}
        assert dict(rh.recv_from) == expected_recv
        # send counts are the transpose
        expected_send = {pp: len(cols) for (pp, q), cols in needs.items() if q == p}
        assert dict(rh.send_to) == expected_send
        # halo columns enumerate exactly the needed set, sorted
        all_needed = sorted(c for (pp, _q), cols in needs.items() if pp == p for c in cols)
        assert rh.halo_columns.tolist() == all_needed
        # send indices address the correct owned elements
        lo, _hi = partition.bounds(p)
        for q, idx in rh.send_indices.items():
            assert (idx + lo).tolist() == needs[(q, p)]


def test_nnz_split_conserved(matrix):
    partition = partition_matrix(matrix, 4)
    plan = build_halo_plan(matrix, partition, with_matrices=False)
    assert sum(r.nnz for r in plan.ranks) == matrix.nnz
    for r in plan.ranks:
        assert r.nnz_local >= 0 and r.nnz_remote >= 0


def test_send_recv_volumes_globally_consistent(matrix):
    partition = partition_matrix(matrix, 6)
    plan = build_halo_plan(matrix, partition, with_matrices=False)
    assert sum(r.send_bytes for r in plan.ranks) == sum(r.recv_bytes for r in plan.ranks)
    assert plan.total_comm_bytes() == sum(r.send_bytes for r in plan.ranks)
    assert plan.total_messages() == sum(len(r.recv_from) for r in plan.ranks)


def test_single_rank_has_no_communication(matrix):
    plan = build_halo_plan(matrix, partition_rows_balanced(matrix.nrows, 1))
    rh = plan.ranks[0]
    assert rh.recv_from == [] and rh.send_to == []
    assert rh.nnz_remote == 0
    assert rh.n_halo == 0


def test_local_matrix_columns_compressed(matrix):
    partition = partition_matrix(matrix, 3)
    plan = build_halo_plan(matrix, partition, with_matrices=True)
    for rh in plan.ranks:
        assert rh.A_local.ncols == rh.n_rows
        if rh.A_local.nnz:
            assert int(rh.A_local.col_idx.max()) < rh.n_rows
        if rh.A_remote.nnz:
            assert int(rh.A_remote.col_idx.max()) < max(1, rh.n_halo)


def test_split_reproduces_matvec(matrix, rng):
    partition = partition_matrix(matrix, 4)
    plan = build_halo_plan(matrix, partition, with_matrices=True)
    x = rng.standard_normal(matrix.nrows)
    ref = matrix @ x
    for rh in plan.ranks:
        local_x = x[rh.row_lo : rh.row_hi]
        halo_x = x[rh.halo_columns] if rh.n_halo else np.zeros(1)
        y = rh.A_local @ local_x + rh.A_remote @ halo_x
        assert np.allclose(y, ref[rh.row_lo : rh.row_hi])


def test_banded_matrix_talks_to_neighbors_only():
    A = random_banded(400, halfwidth=20, nnzr=5, seed=1)
    partition = partition_rows_balanced(400, 8)
    plan = build_halo_plan(A, partition, with_matrices=False)
    for rh in plan.ranks:
        for q, _c in rh.recv_from:
            assert abs(q - rh.rank) == 1  # band < block size: nearest-neighbour


def test_comm_to_comp_ratio_orders_matrices(hmep_tiny, samg_tiny):
    p_h = build_halo_plan(hmep_tiny, partition_matrix(hmep_tiny, 6), with_matrices=False)
    p_s = build_halo_plan(samg_tiny, partition_matrix(samg_tiny, 6), with_matrices=False)
    # the paper's fundamental contrast: HMeP is communication-heavy
    assert p_h.comm_to_comp_ratio() > 2 * p_s.comm_to_comp_ratio()


def test_requires_square_and_matching_partition(matrix):
    from repro.sparse import CSRMatrix

    rect = CSRMatrix.from_dense(np.ones((4, 6)))
    with pytest.raises(ValueError, match="square"):
        build_halo_plan(rect, partition_rows_balanced(4, 2))
    with pytest.raises(ValueError, match="partition covers"):
        build_halo_plan(matrix, partition_rows_balanced(50, 2))


def test_halo_columns_always_populated(matrix):
    # metadata-only plans still carry the global halo column sets —
    # the communication planners (repro.comm) need them
    plan = build_halo_plan(matrix, partition_matrix(matrix, 4), with_matrices=False)
    for rh in plan.ranks:
        assert rh.halo_columns is not None
        assert rh.halo_columns.size == rh.n_halo


def test_cached_plan_refresh_keeps_live_neighbours(monkeypatch):
    import weakref

    from repro.core import halo as halo_mod

    monkeypatch.setattr(halo_mod, "_PLAN_CACHE_MAX", 2)
    monkeypatch.setattr(halo_mod, "_PLAN_CACHE", {})
    A = random_sparse(60, nnzr=4, seed=21)
    B = random_sparse(60, nnzr=4, seed=22)
    pb = halo_mod.cached_halo_plan(B, 2, with_matrices=False)
    pa = halo_mod.cached_halo_plan(A, 2, with_matrices=False)
    # cache is now at capacity.  Sour A's entry in place: the key exists
    # but its weakref resolves to a different live object (the id-reuse
    # case the weakref guards against), forcing a rebuild-and-refresh.
    key = (id(A), 2, "nnz", False)
    assert key in halo_mod._PLAN_CACHE
    halo_mod._PLAN_CACHE[key] = (weakref.ref(B), A.structure_fingerprint(), pa)
    halo_mod.cached_halo_plan(A, 2, with_matrices=False)
    # refreshing an existing key at capacity must not evict B's live plan
    assert halo_mod.cached_halo_plan(B, 2, with_matrices=False) is pb


class TestStaleCacheGuard:
    """The in-place-mutation bug the serve work flushed out: the plan
    cache used to key on matrix identity alone, so mutating the arrays
    of a cached matrix kept serving the *old* halo plan — wrong halos,
    wrong sub-matrices, silently wrong results."""

    def test_unchanged_matrix_still_hits(self):
        from repro.core.halo import cached_halo_plan

        A = random_sparse(80, nnzr=5, seed=31)
        plan = cached_halo_plan(A, 2)
        assert cached_halo_plan(A, 2) is plan  # identity + fingerprint match

    def test_in_place_mutation_rebuilds_plan(self):
        from repro.core.halo import cached_halo_plan

        A = random_sparse(80, nnzr=5, seed=31)
        B = random_sparse(80, nnzr=7, seed=32)
        stale = cached_halo_plan(A, 2)
        # mutate A's structure in place: same object, new sparsity
        A.row_ptr, A.col_idx, A.val = B.row_ptr, B.col_idx, B.val
        fresh = cached_halo_plan(A, 2)
        assert fresh is not stale  # pre-fix: identity hit returned `stale`
        assert fresh.nnz == B.nnz
        np.testing.assert_array_equal(
            fresh.ranks[0].A_local.col_idx,
            build_halo_plan(B, partition_matrix(B, 2)).ranks[0].A_local.col_idx,
        )

    def test_mutated_matrix_multiplies_correctly(self):
        # the end-to-end symptom: distributed results disagreed with the
        # serial kernel after an in-place structure change
        from repro.core.spmvm import distributed_spmv
        from repro.sparse import spmv

        A = random_sparse(120, nnzr=5, seed=33)
        x = np.arange(120, dtype=float)
        distributed_spmv(A, x, 3)  # populate the cache
        B = random_sparse(120, nnzr=8, seed=34)
        A.row_ptr, A.col_idx, A.val = B.row_ptr, B.col_idx, B.val
        # split local/remote summation order differs from serial by ulps;
        # the pre-fix bug produced *structurally* wrong results here
        np.testing.assert_allclose(distributed_spmv(A, x, 3), spmv(A, x), rtol=1e-12)

    def test_value_only_mutation_rebuilds_operator(self):
        # same staleness class one layer down: the kernel-operator cache
        # copies values at build time (e.g. SELL), so changing A.val in
        # place must invalidate it — structure fingerprints don't see it
        from repro.sparse import spmv
        from repro.sparse.registry import build_operator, get_kernel

        spec = get_kernel("sell")
        A = random_sparse(64, nnzr=4, seed=35)
        x = np.ones(64)
        op = build_operator(spec, A)
        y_before = spec.spmv(op, x)
        A.val = A.val * 2.0
        op2 = build_operator(spec, A)
        assert op2 is not op  # pre-fix: cached operator with old values
        np.testing.assert_allclose(spec.spmv(op2, x), spmv(A, x), rtol=1e-13)
        np.testing.assert_allclose(spec.spmv(op2, x), 2.0 * y_before, rtol=1e-13)
