"""Batched multi-RHS kernels: spmm family vs per-column spmv, traffic model."""

import numpy as np
import pytest

from repro.sparse import (
    CSRMatrix,
    spmm,
    spmm_add,
    spmm_rows,
    spmm_traffic,
    spmv,
    spmv_traffic,
)


@pytest.fixture()
def mat_and_block(rng):
    d = (rng.random((40, 40)) < 0.2) * rng.standard_normal((40, 40))
    return CSRMatrix.from_dense(d), d, rng.standard_normal((40, 8))


def test_spmm_matches_dense(mat_and_block):
    m, d, X = mat_and_block
    assert np.allclose(spmm(m, X), d @ X)


@pytest.mark.parametrize("k", [1, 4, 16])
def test_spmm_bit_identical_to_columnwise_spmv(rng, k):
    d = (rng.random((60, 50)) < 0.15) * rng.standard_normal((60, 50))
    m = CSRMatrix.from_dense(d)
    X = rng.standard_normal((50, k))
    Y = spmm(m, X)
    assert Y.shape == (60, k)
    for j in range(k):
        assert np.array_equal(Y[:, j], spmv(m, X[:, j]))


def test_spmm_mixed_magnitudes_column_for_column(rng):
    # the accuracy acceptance bar: mixed-magnitude entries must not leak
    # across rows or columns — each column agrees with its spmv to 1e-12
    n, k = 30, 5
    d = (rng.random((n, n)) < 0.3) * rng.standard_normal((n, n))
    d *= 10.0 ** rng.integers(-8, 9, size=(n, n))
    m = CSRMatrix.from_dense(d)
    X = rng.standard_normal((n, k))
    Y = spmm(m, X)
    for j in range(k):
        ref = spmv(m, X[:, j])
        scale = np.maximum(np.abs(ref), 1.0)
        assert np.all(np.abs(Y[:, j] - ref) / scale < 1e-12)


def test_spmm_empty_rows():
    m = CSRMatrix(np.array([0, 0, 1, 1]), np.array([0]), np.array([3.0]), ncols=2)
    Y = spmm(m, np.array([[2.0, -1.0], [1.0, 5.0]]))
    assert Y.tolist() == [[0.0, 0.0], [6.0, -3.0], [0.0, 0.0]]


def test_spmm_zero_matrix():
    m = CSRMatrix(np.zeros(4, dtype=np.int64), np.zeros(0, dtype=np.int64), np.zeros(0), ncols=5)
    assert np.all(spmm(m, np.ones((5, 3))) == 0)


def test_spmm_out_in_place(mat_and_block):
    m, d, X = mat_and_block
    out = np.empty((40, 8))
    res = spmm(m, X, out=out)
    assert res is out
    assert np.allclose(out, d @ X)


def test_spmm_out_shape_mismatch(mat_and_block):
    m, _d, X = mat_and_block
    with pytest.raises(ValueError, match="out must have shape"):
        spmm(m, X, out=np.empty((40, 3)))


def test_spmm_rejects_vector_input(mat_and_block):
    m, _d, _X = mat_and_block
    with pytest.raises(ValueError, match="block"):
        spmm(m, np.ones(40))


def test_spmm_rejects_non_float64_out(mat_and_block):
    """Regression: spmm used to allocate a temporary and lossily
    down-cast it into a non-float64 ``out`` instead of raising."""
    m, _d, X = mat_and_block
    with pytest.raises(ValueError, match="out must have dtype float64"):
        spmm(m, X, out=np.empty((40, 8), dtype=np.float32))
    with pytest.raises(ValueError, match="out must have dtype float64"):
        spmm_add(m, X, np.zeros((40, 8), dtype=np.int32))


def test_spmm_rows_validates_out(mat_and_block):
    """Regression: spmm_rows checked neither out shape nor dtype."""
    m, _d, X = mat_and_block
    with pytest.raises(ValueError, match="out must have shape"):
        spmm_rows(m, X, 0, 10, np.zeros((40, 7)))
    with pytest.raises(ValueError, match="out must have dtype float64"):
        spmm_rows(m, X, 0, 10, np.zeros((40, 8), dtype=np.float32))


def test_spmm_add_accumulates(mat_and_block):
    m, d, X = mat_and_block
    out = np.ones((40, 8))
    spmm_add(m, X, out)
    assert np.allclose(out, 1.0 + d @ X)


def test_spmm_add_with_empty_rows():
    # the masked (ragged) path of the accumulate kernel: empty rows must
    # keep their prior contents untouched
    m = CSRMatrix(np.array([0, 0, 1, 1]), np.array([0]), np.array([3.0]), ncols=2)
    out = np.full((3, 2), 5.0)
    spmm_add(m, np.array([[2.0, -1.0], [1.0, 5.0]]), out)
    assert out.tolist() == [[5.0, 5.0], [11.0, 2.0], [5.0, 5.0]]


def test_spmm_rows_partial(mat_and_block):
    m, d, X = mat_and_block
    out = np.full((40, 8), -7.0)
    spmm_rows(m, X, 10, 25, out)
    assert np.allclose(out[10:25], (d @ X)[10:25])
    assert np.all(out[:10] == -7.0)
    assert np.all(out[25:] == -7.0)


def test_spmm_rows_bad_range(mat_and_block):
    m, _d, X = mat_and_block
    with pytest.raises(ValueError, match="row range"):
        spmm_rows(m, X, 30, 10, np.zeros((40, 8)))


def test_spmm_traffic_reduces_to_spmv_at_k1(mat_and_block):
    m, _d, _X = mat_and_block
    for kappa in (0.0, 2.5):
        for split in (False, True):
            assert spmm_traffic(m, 1, kappa=kappa, split=split) == pytest.approx(
                spmv_traffic(m, kappa=kappa, split=split)
            )


def test_spmm_traffic_amortizes_matrix_data(mat_and_block):
    # the whole point of batching: k x the vector traffic but one matrix read
    m, _d, _X = mat_and_block
    for k in (4, 16):
        assert spmm_traffic(m, k) < k * spmv_traffic(m)
        # difference is exactly (k-1) matrix reads
        saved = k * spmv_traffic(m) - spmm_traffic(m, k)
        assert saved == pytest.approx((k - 1) * 12 * m.nnz)


def test_spmm_traffic_validation(mat_and_block):
    m, _d, _X = mat_and_block
    with pytest.raises(ValueError, match="k must be"):
        spmm_traffic(m, 0)
    with pytest.raises(ValueError, match="kappa"):
        spmm_traffic(m, 4, kappa=-1.0)


def test_spmv_out_written_in_place(mat_and_block):
    m, d, X = mat_and_block
    x = X[:, 0].copy()
    out = np.full(40, np.nan)
    res = spmv(m, x, out=out)
    assert res is out
    assert np.allclose(out, d @ x)
    # bit-identical to the allocating path
    assert np.array_equal(out, spmv(m, x))


def test_spmv_out_with_empty_rows():
    m = CSRMatrix(np.array([0, 0, 1, 1]), np.array([0]), np.array([3.0]), ncols=2)
    out = np.full(3, np.nan)
    spmv(m, np.array([2.0, 1.0]), out=out)
    assert out.tolist() == [0.0, 6.0, 0.0]
