"""Property-based tests (hypothesis) on the core data structures.

Invariants exercised on randomly generated inputs:

* COO→CSR conversion preserves the dense matrix and CSR invariants,
* spMVM agrees with the dense product for arbitrary sparsity,
* partitions cover all rows disjointly and ownership is consistent,
* halo plans are globally consistent (send volume = recv volume, the
  split reproduces the matvec) for any matrix and any partition,
* (R)CM always yields a permutation,
* the code balance is monotone in κ and decreasing in Nnzr,
* max-min fair rates conserve work in the flow network.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_halo_plan
from repro.model import code_balance, code_balance_split
from repro.sparse import (
    COOMatrix,
    cuthill_mckee,
    partition_nnz_balanced,
    partition_rows_balanced,
    spmv,
)

# keep the generated problems small: the value is in the variety, not size
_DIM = st.integers(min_value=1, max_value=30)
_SEED = st.integers(min_value=0, max_value=2**31 - 1)


def _random_coo(nrows: int, ncols: int, nnz: int, seed: int) -> COOMatrix:
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, nrows, nnz)
    cols = rng.integers(0, ncols, nnz)
    vals = rng.standard_normal(nnz)
    return COOMatrix(nrows, ncols, rows, cols, vals)


@settings(max_examples=40, deadline=None)
@given(nrows=_DIM, ncols=_DIM, nnz=st.integers(0, 120), seed=_SEED)
def test_coo_to_csr_preserves_matrix(nrows, ncols, nnz, seed):
    coo = _random_coo(nrows, ncols, nnz, seed)
    csr = coo.to_csr()
    assert np.allclose(csr.to_dense(), coo.to_dense())
    # CSR invariants
    assert csr.row_ptr[0] == 0
    assert csr.row_ptr[-1] == csr.nnz
    assert np.all(np.diff(csr.row_ptr) >= 0)
    for i in range(csr.nrows):
        cols = csr.col_idx[csr.row_ptr[i] : csr.row_ptr[i + 1]]
        assert np.all(np.diff(cols) > 0)


@settings(max_examples=40, deadline=None)
@given(n=_DIM, nnz=st.integers(0, 150), seed=_SEED)
def test_spmv_matches_dense_product(n, nnz, seed):
    csr = _random_coo(n, n, nnz, seed).to_csr()
    rng = np.random.default_rng(seed + 1)
    x = rng.standard_normal(n)
    assert np.allclose(spmv(csr, x), csr.to_dense() @ x, atol=1e-10)


@settings(max_examples=50, deadline=None)
@given(nrows=st.integers(0, 200), nparts=st.integers(1, 17))
def test_row_partition_covers_disjointly(nrows, nparts):
    p = partition_rows_balanced(nrows, nparts)
    sizes = p.sizes()
    assert int(sizes.sum()) == nrows
    assert np.all(sizes >= 0)
    assert int(sizes.max()) - int(sizes.min()) <= 1
    if nrows:
        owners = p.owner_of(np.arange(nrows))
        for q in range(nparts):
            lo, hi = p.bounds(q)
            assert np.all(owners[lo:hi] == q)


@settings(max_examples=30, deadline=None)
@given(n=st.integers(1, 25), nnz=st.integers(1, 150), nparts=st.integers(1, 40), seed=_SEED)
def test_nnz_partition_and_halo_consistency(n, nnz, nparts, seed):
    # nparts may exceed nrows: surplus parts must come out empty, not crash
    A = _random_coo(n, n, nnz, seed).to_csr()
    part = partition_nnz_balanced(A, nparts)
    plan = build_halo_plan(A, part, with_matrices=True)
    # global consistency
    assert sum(r.send_bytes for r in plan.ranks) == sum(r.recv_bytes for r in plan.ranks)
    assert sum(r.nnz for r in plan.ranks) == A.nnz
    # the split reproduces the matvec on every rank
    rng = np.random.default_rng(seed + 2)
    x = rng.standard_normal(n)
    ref = A.to_dense() @ x
    for rh in plan.ranks:
        xl = x[rh.row_lo : rh.row_hi]
        xh = x[rh.halo_columns] if rh.n_halo else np.zeros(1)
        y = rh.A_local @ xl + rh.A_remote @ xh
        assert np.allclose(y, ref[rh.row_lo : rh.row_hi], atol=1e-10)


@settings(max_examples=30, deadline=None)
@given(n=st.integers(1, 25), nnz=st.integers(0, 100), seed=_SEED)
def test_cuthill_mckee_is_always_a_permutation(n, nnz, seed):
    A = _random_coo(n, n, nnz, seed).to_csr()
    perm = cuthill_mckee(A)
    assert sorted(perm.tolist()) == list(range(n))


@settings(max_examples=60, deadline=None)
@given(
    nnzr=st.floats(min_value=1.0, max_value=100.0),
    k1=st.floats(min_value=0.0, max_value=10.0),
    k2=st.floats(min_value=0.0, max_value=10.0),
)
def test_code_balance_monotonicity(nnzr, k1, k2):
    lo, hi = sorted((k1, k2))
    assert code_balance(nnzr, lo) <= code_balance(nnzr, hi)
    # split kernel always costs at least as much
    assert code_balance_split(nnzr, lo) > code_balance(nnzr, lo)
    # balance decreases with denser rows
    assert code_balance(nnzr + 1.0, lo) < code_balance(nnzr, lo)


@settings(max_examples=25, deadline=None)
@given(
    sizes=st.lists(st.floats(min_value=1.0, max_value=100.0), min_size=1, max_size=12),
    cap=st.floats(min_value=0.5, max_value=50.0),
)
def test_flow_network_conserves_work(sizes, cap):
    from repro.frame import FlowNetwork, Simulator

    sim = Simulator()
    net = FlowNetwork(sim, {"r": lambda w: cap})
    finish = []
    for s in sizes:
        f = net.start_flow(s, {"r": 1.0})
        f.done.add_callback(lambda _f: finish.append(sim.now))
    sim.run()
    assert len(finish) == len(sizes)
    total = sum(sizes)
    # the single shared resource processes exactly total/cap seconds of work
    assert max(finish) == pytest.approx(total / cap, rel=1e-6)


@settings(max_examples=25, deadline=None)
@given(n=st.integers(1, 40), seed=_SEED)
def test_trace_gantt_never_crashes(n, seed):
    from repro.frame import TraceRecorder

    rng = np.random.default_rng(seed)
    tr = TraceRecorder()
    for k in range(n):
        t0 = float(rng.uniform(0, 10))
        tr.record(f"actor{k % 3}", f"label{k % 4}", t0, t0 + float(rng.uniform(0, 5)))
    out = tr.render_gantt(width=50)
    assert isinstance(out, str) and out
