"""Communication-plan builders: invariants, degeneracy, aggregation laws."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import (
    build_comm_plan,
    cached_comm_plan,
    compare_plans,
    plan_stats,
)
from repro.comm.plan import ELEMENT_BYTES
from repro.core import build_halo_plan
from repro.matrices import random_sparse
from repro.sparse import partition_matrix


def _halo(A, nranks):
    return build_halo_plan(A, partition_matrix(A, nranks), with_matrices=False)


@pytest.fixture(scope="module")
def halo8():
    return _halo(random_sparse(400, nnzr=7, seed=3), 8)


# ----------------------------------------------------------------------
# construction invariants
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", ["direct", "node-aware"])
def test_channels_are_dense_and_scripts_consistent(halo8, kind):
    rank_node = (0, 0, 1, 1, 2, 2, 3, 3)
    plan = build_comm_plan(halo8, rank_node, kind)
    assert [m.channel for m in plan.messages] == list(range(plan.n_channels))
    send_channels = [ch for s in plan.scripts for ch in s.send_channels]
    relay_channels = [
        ch for s in plan.scripts for r in s.relays for ch in r.send_channels
    ]
    recv_channels = [ch for s in plan.scripts for ch in s.recv_channels]
    # every message is sent exactly once and received exactly once
    assert sorted(send_channels + relay_channels) == list(range(plan.n_channels))
    assert sorted(recv_channels) == list(range(plan.n_channels))
    for script in plan.scripts:
        for ch in script.send_channels:
            assert plan.messages[ch].src == script.rank
        for ch in script.recv_channels:
            assert plan.messages[ch].dst == script.rank
    plan.validate(halo8)


def test_direct_plan_mirrors_halo_lists(halo8):
    rank_node = (0, 0, 1, 1, 2, 2, 3, 3)
    plan = build_comm_plan(halo8, rank_node, "direct")
    n_pairs = sum(len(rh.send_to) for rh in halo8.ranks)
    assert plan.total_messages() == n_pairs
    total_elements = sum(m.n_elements for m in plan.messages)
    assert total_elements == sum(rh.n_send_elements for rh in halo8.ranks)
    assert plan.edges == {}
    # every rank packs exactly its halo send elements
    for script, rh in zip(plan.scripts, halo8.ranks):
        assert script.n_packed_elements == rh.n_send_elements


def test_node_aware_keeps_intranode_messages_direct(halo8):
    rank_node = (0, 0, 1, 1, 2, 2, 3, 3)
    direct = build_comm_plan(halo8, rank_node, "direct")
    na = build_comm_plan(halo8, rank_node, "node-aware")
    same_node_direct = {
        (m.src, m.dst, m.n_elements)
        for m in direct.messages if not m.internode
    }
    na_direct_phase = {
        (m.src, m.dst, m.n_elements)
        for m in na.messages if m.phase == "direct"
    }
    assert na_direct_phase == same_node_direct
    # exactly one forward per communicating node pair
    forwards = [m for m in na.messages if m.phase == "forward"]
    assert len(forwards) == len(na.edges)
    assert all(m.internode for m in forwards)
    # gathers and scatters never touch a NIC
    for m in na.messages:
        if m.phase in ("gather", "scatter"):
            assert not m.internode


def test_node_aware_forward_payload_is_deduplicated(halo8):
    rank_node = (0, 0, 1, 1, 2, 2, 3, 3)
    na = build_comm_plan(halo8, rank_node, "node-aware")
    for (src_node, dst_node), edge in na.edges.items():
        cols = edge.columns
        assert np.all(np.diff(cols) > 0)  # strictly ascending = deduplicated
        fwd = na.messages[edge.forward_channel]
        assert fwd.n_elements == cols.size
        assert (fwd.src_node, fwd.dst_node) == (src_node, dst_node)
    na.validate(halo8)


def test_single_rank_per_node_degenerates_to_direct(halo8):
    rank_node = tuple(range(8))
    direct = build_comm_plan(halo8, rank_node, "direct")
    na = build_comm_plan(halo8, rank_node, "node-aware")
    assert na.total_messages() == direct.total_messages()
    assert na.internode_messages() == direct.internode_messages()
    assert na.injected_bytes() == direct.injected_bytes()
    # leaders own everything: forwards go out payload-ready, no relays
    assert all(not s.relays for s in na.scripts)


def test_plan_stats_and_comparison(halo8):
    rank_node = (0, 0, 1, 1, 2, 2, 3, 3)
    direct = build_comm_plan(halo8, rank_node, "direct")
    na = build_comm_plan(halo8, rank_node, "node-aware")
    cmp = compare_plans(direct, na)
    assert cmp.direct.duplicate_factor >= 1.0
    assert cmp.node_aware.duplicate_factor == pytest.approx(1.0)
    assert cmp.node_aware.internode_bytes == cmp.node_aware.unique_internode_bytes
    s = plan_stats(na)
    assert s.messages == na.total_messages()
    assert s.internode_bytes == na.injected_bytes()
    nic_out, _ = na.nic_bytes()
    assert s.max_nic_out_bytes == max(nic_out.values())
    assert ELEMENT_BYTES * sum(
        e.columns.size for e in na.edges.values()
    ) == s.unique_internode_bytes
    assert "node-aware" in cmp.render()


def test_cached_comm_plan_reuses_and_respects_kind(halo8):
    rank_node = (0, 0, 1, 1, 2, 2, 3, 3)
    a = cached_comm_plan(halo8, rank_node, "node-aware")
    b = cached_comm_plan(halo8, rank_node, "node-aware")
    assert a is b
    c = cached_comm_plan(halo8, rank_node, "direct")
    assert c is not a and c.kind == "direct"
    with pytest.raises(ValueError, match="kind"):
        build_comm_plan(halo8, rank_node, "bogus")


# ----------------------------------------------------------------------
# the aggregation laws, property-tested over random sparsity
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    nnzr=st.integers(min_value=3, max_value=12),
    ranks_per_node=st.integers(min_value=2, max_value=4),
    n_nodes=st.integers(min_value=2, max_value=4),
)
def test_node_aware_reduces_messages_never_adds_bytes(
    seed, nnzr, ranks_per_node, n_nodes
):
    nranks = ranks_per_node * n_nodes
    A = random_sparse(40 * nranks, nnzr=nnzr, seed=seed)
    halo = _halo(A, nranks)
    rank_node = tuple(r // ranks_per_node for r in range(nranks))
    direct = build_comm_plan(halo, rank_node, "direct")
    na = build_comm_plan(halo, rank_node, "node-aware")
    direct.validate(halo)
    na.validate(halo)
    if direct.internode_messages() == 0:
        return  # nothing to aggregate
    # multi-rank-per-node: strictly fewer inter-node messages ...
    assert na.internode_messages() < direct.internode_messages()
    # ... at most one per node pair ...
    pairs = {
        (m.src_node, m.dst_node) for m in direct.messages if m.internode
    }
    assert na.internode_messages() == len(pairs)
    # ... and never more injected bytes (dedup can only shrink payloads)
    assert na.injected_bytes() <= direct.injected_bytes()
    # per-NIC load never grows either
    d_out, d_in = direct.nic_bytes()
    n_out, n_in = na.nic_bytes()
    for node, nbytes in n_out.items():
        assert nbytes <= d_out[node]
    for node, nbytes in n_in.items():
        assert nbytes <= d_in[node]
