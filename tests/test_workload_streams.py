"""Arrival streams and the repro-trace/1 format (repro.workload.streams).

The hypothesis properties pin down what makes the generators usable for
scheduler comparisons: determinism (same seed → bit-identical stream),
physical sanity (non-negative interarrivals, positive sizes), the
advertised mean arrival rate, and a lossless trace round trip.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload import (
    ARRIVAL_KINDS,
    SOLVERS,
    TRACE_SCHEMA,
    Job,
    dump_trace,
    estimate_walltime,
    jobs_from_dict,
    jobs_to_dict,
    load_trace,
    reference_trace,
    service_stream,
    synthetic_stream,
)

_SEED = st.integers(min_value=0, max_value=2**31 - 1)
_N = st.integers(min_value=1, max_value=60)


def _job(job_id=0, **kw):
    base = dict(
        job_id=job_id, name=f"j{job_id}", solver="cg", submit=0.0,
        n_nodes=2, nrows=256, nnzr=6.0, iterations=4, walltime=1e-3,
    )
    base.update(kw)
    return Job(**base)


class TestJob:
    def test_rejects_unknown_solver(self):
        with pytest.raises(ValueError, match="solver"):
            _job(solver="gmres")

    def test_rejects_negative_submit(self):
        with pytest.raises(ValueError, match="submit"):
            _job(submit=-1.0)

    @pytest.mark.parametrize(
        "field", ["n_nodes", "nrows", "iterations", "block_k"]
    )
    def test_rejects_nonpositive_ints(self, field):
        with pytest.raises(ValueError, match=field):
            _job(**{field: 0})

    def test_dots_per_iteration(self):
        assert _job(solver="spmvm").dots_per_iteration == 0
        assert _job(solver="cg").dots_per_iteration == 2


class TestEstimateWalltime:
    def test_positive_and_scales_with_work(self):
        short = estimate_walltime("spmvm", 512, 6.0, 4, 1)
        long = estimate_walltime("spmvm", 512, 6.0, 8, 1)
        assert 0 < short < long

    def test_more_nodes_means_shorter_estimate(self):
        one = estimate_walltime("cg", 4096, 10.0, 8, 1)
        four = estimate_walltime("cg", 4096, 10.0, 8, 4)
        assert four < one

    def test_overestimate_scales_linearly(self):
        base = estimate_walltime("cg", 1024, 8.0, 8, 2)
        assert estimate_walltime(
            "cg", 1024, 8.0, 8, 2, overestimate=2.0
        ) == pytest.approx(2.0 * base)


class TestSyntheticStream:
    @given(seed=_SEED, n=_N, arrival=st.sampled_from(ARRIVAL_KINDS))
    @settings(max_examples=30, deadline=None)
    def test_same_seed_same_stream(self, seed, n, arrival):
        a = synthetic_stream(n, seed=seed, arrival=arrival)
        b = synthetic_stream(n, seed=seed, arrival=arrival)
        assert a == b  # frozen dataclasses: field-for-field equality

    @given(seed=_SEED, n=_N, arrival=st.sampled_from(ARRIVAL_KINDS))
    @settings(max_examples=30, deadline=None)
    def test_submit_times_nondecreasing_and_fields_valid(self, seed, n, arrival):
        jobs = synthetic_stream(n, seed=seed, arrival=arrival)
        assert len(jobs) == n
        assert [j.job_id for j in jobs] == list(range(n))
        for a, b in zip(jobs, jobs[1:]):
            assert b.submit >= a.submit  # non-negative interarrivals
        for j in jobs:
            assert j.solver in SOLVERS
            assert j.submit >= 0 and j.walltime > 0 and j.n_nodes >= 1

    @given(seed=_SEED)
    @settings(max_examples=20, deadline=None)
    def test_poisson_empirical_rate_matches(self, seed):
        # mean of 500 exponential gaps is within 20% of 1/rate whp;
        # a systematic unit error (ms vs s, rate vs period) is 1000x off
        rate = 250.0
        jobs = synthetic_stream(500, seed=seed, rate=rate)
        mean_gap = jobs[-1].submit / len(jobs)
        assert mean_gap == pytest.approx(1.0 / rate, rel=0.2)

    def test_distinct_seeds_differ(self):
        assert synthetic_stream(20, seed=0) != synthetic_stream(20, seed=1)

    def test_solver_mix_is_respected(self):
        jobs = synthetic_stream(30, seed=3, solver_mix={"lanczos": 1.0})
        assert {j.solver for j in jobs} == {"lanczos"}

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError, match="arrival"):
            synthetic_stream(5, arrival="uniform")
        with pytest.raises(ValueError, match="alpha"):
            synthetic_stream(5, arrival="heavy", heavy_tail_alpha=1.0)
        with pytest.raises(ValueError, match="solver"):
            synthetic_stream(5, solver_mix={"gmres": 1.0})
        with pytest.raises(ValueError, match="zero"):
            synthetic_stream(5, solver_mix={"cg": 0.0})


class TestServiceStream:
    def test_coalesces_within_hold_window(self):
        # huge window: all requests merge into max_batch-wide jobs
        jobs = service_stream(16, seed=0, rate=1e6, max_batch=8, hold_window=10.0)
        assert [j.block_k for j in jobs] == [8, 8]
        assert all(j.iterations == 1 for j in jobs)

    def test_sparse_arrivals_stay_single(self):
        jobs = service_stream(5, seed=0, rate=10.0, hold_window=1e-9)
        assert [j.block_k for j in jobs] == [1] * 5

    @given(seed=_SEED, n=st.integers(min_value=1, max_value=40))
    @settings(max_examples=20, deadline=None)
    def test_every_request_is_accounted_for(self, seed, n):
        jobs = service_stream(n, seed=seed)
        assert sum(j.block_k for j in jobs) == n
        for a, b in zip(jobs, jobs[1:]):
            assert b.submit >= a.submit


class TestTraceRoundTrip:
    @given(seed=_SEED, n=_N)
    @settings(max_examples=20, deadline=None)
    def test_dump_load_is_identity(self, seed, n, tmp_path_factory):
        path = tmp_path_factory.mktemp("trace") / "t.json"
        jobs = synthetic_stream(n, seed=seed)
        dump_trace(jobs, path)
        assert load_trace(path) == jobs

    def test_schema_tag_is_written(self, tmp_path):
        path = dump_trace(reference_trace(), tmp_path / "ref.json")
        doc = json.loads(path.read_text())
        assert doc["schema"] == TRACE_SCHEMA

    def test_reference_trace_round_trips(self, tmp_path):
        # the dump canonicalises to submit order (the schema requires it);
        # round trip is lossless up to that reordering
        jobs = sorted(reference_trace(), key=lambda j: (j.submit, j.job_id))
        assert load_trace(dump_trace(jobs, tmp_path / "r.json")) == jobs

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            jobs_from_dict({"schema": "repro-trace/999", "jobs": []})

    def test_missing_jobs_list_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            jobs_from_dict({"schema": TRACE_SCHEMA})

    def test_unknown_field_rejected(self):
        doc = jobs_to_dict([_job()])
        doc["jobs"][0]["priority"] = 3
        with pytest.raises(ValueError, match="job 0"):
            jobs_from_dict(doc)

    def test_unsorted_submits_rejected(self):
        doc = jobs_to_dict([_job(0, submit=1.0), _job(1, submit=2.0)])
        doc["jobs"].reverse()  # hand-edited trace out of order
        with pytest.raises(ValueError, match="submit-sorted"):
            jobs_from_dict(doc)

    def test_duplicate_job_ids_rejected(self):
        doc = jobs_to_dict([_job(7), _job(7, submit=1.0)])
        with pytest.raises(ValueError, match="duplicate"):
            jobs_from_dict(doc)


def test_reference_trace_shape():
    """The documented guard scenario: blocked wide job + backfillable tail."""
    jobs = reference_trace()
    assert len(jobs) == 30
    wide = jobs[1]
    assert wide.n_nodes == 14  # head-blocks a 16-node machine behind med-0
    assert {j.solver for j in jobs} == set(SOLVERS)
    assert all(j.submit >= 0 for j in jobs)
    assert len({j.job_id for j in jobs}) == len(jobs)
