"""Machine layer: topologies, presets, placements, networks."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machine import (
    FatTree,
    Torus2D,
    cray_xe6_cluster,
    magny_cours_node,
    nehalem_ep_node,
    plan_placement,
    ranks_for_mode,
    render_node_ascii,
    westmere_cluster,
    westmere_ep_node,
    generic_node,
)


# ----------------------------------------------------------------------
# topologies / presets
# ----------------------------------------------------------------------
def test_westmere_node_shape():
    n = westmere_ep_node()
    assert n.n_domains == 2
    assert n.n_cores == 12
    assert n.cores_per_domain() == 6
    assert n.smt_per_core == 2


def test_magny_cours_node_shape():
    n = magny_cours_node()
    assert n.n_domains == 4  # the paper's headline feature (Fig. 2b)
    assert n.n_cores == 24
    assert n.smt_per_core == 1


def test_nehalem_calibration_numbers():
    n = nehalem_ep_node()
    dom = n.domains[0]
    assert dom.stream_curve.saturated == pytest.approx(21.2e9)
    assert dom.spmv_curve.saturated == pytest.approx(18.11e9, rel=1e-3)


def test_amd_node_bandwidth_advantage():
    # paper: "a theoretical main memory bandwidth advantage of 8/6"
    w = westmere_ep_node()
    m = magny_cours_node()
    ratio = m.stream_bandwidth / w.stream_bandwidth
    assert 1.1 < ratio < 8 / 6 + 0.05


def test_spmv_reaches_85_percent_of_stream():
    for node in (nehalem_ep_node(), westmere_ep_node(), magny_cours_node()):
        dom = node.domains[0]
        assert dom.spmv_bandwidth / dom.stream_bandwidth >= 0.85


def test_render_node_ascii():
    text = render_node_ascii(westmere_ep_node())
    assert "socket 0" in text and "socket 1" in text
    assert "NIC" in text


def test_cluster_spec():
    cl = westmere_cluster(8)
    assert cl.total_cores == 96
    assert cl.total_domains == 16
    assert cl.with_nodes(2).n_nodes == 2


def test_generic_node():
    n = generic_node(n_domains=4, cores_per_domain=8, stream_bandwidth=40e9)
    assert n.n_domains == 4
    assert n.domains[0].stream_curve.saturated == pytest.approx(40e9)


# ----------------------------------------------------------------------
# placements
# ----------------------------------------------------------------------
def test_ranks_for_mode():
    cl = westmere_cluster(4)
    assert ranks_for_mode(cl, "per-core") == 48
    assert ranks_for_mode(cl, "per-ld") == 8
    assert ranks_for_mode(cl, "per-node") == 4
    with pytest.raises(ValueError):
        ranks_for_mode(cl, "per-rack")


def test_placement_per_ld_task_mode_dedicated():
    cl = westmere_cluster(2)
    pl = plan_placement(cl, "per-ld", comm_thread="dedicated")
    assert len(pl) == 4
    assert all(p.n_compute_threads == 5 for p in pl)  # one core sacrificed
    assert all(p.comm_dedicated for p in pl)


def test_placement_per_ld_task_mode_smt():
    cl = westmere_cluster(2)
    pl = plan_placement(cl, "per-ld", comm_thread="smt")
    assert all(p.n_compute_threads == 6 for p in pl)  # virtual core is free
    assert all(not p.comm_dedicated for p in pl)


def test_placement_smt_requires_smt_hardware():
    cl = cray_xe6_cluster(1)
    with pytest.raises(ValueError, match="no SMT"):
        plan_placement(cl, "per-ld", comm_thread="smt")


def test_placement_per_node_spans_domains():
    cl = westmere_cluster(1)
    pl = plan_placement(cl, "per-node")
    assert len(pl) == 1
    assert len(pl[0].domains) == 2
    assert pl[0].n_compute_threads == 12


def test_placement_per_core_single_thread():
    cl = westmere_cluster(1)
    pl = plan_placement(cl, "per-core", comm_thread="smt")
    assert len(pl) == 12
    assert all(p.n_compute_threads == 1 for p in pl)
    assert all(p.comm_domain is not None for p in pl)


# ----------------------------------------------------------------------
# networks
# ----------------------------------------------------------------------
def test_fattree_routes():
    ft = FatTree(latency=1e-6, link_bandwidth=3e9)
    r = ft.route(1000, 0, 1)
    keys = dict(r.demands)
    assert keys[("nic_out", 0)] == 1000
    assert keys[("nic_in", 1)] == 1000
    intra = ft.route(1000, 2, 2)
    assert dict(intra.demands) == {("intra", 2): 1000.0}
    assert intra.latency < r.latency


def test_fattree_resources():
    ft = FatTree(latency=1e-6, link_bandwidth=3e9)
    res = ft.resources(3)
    assert res[("nic_out", 0)](1.0) == 3e9
    assert ("intra", 2) in res


def test_torus_hops_wraparound():
    t = Torus2D(latency=1e-6)
    t.resources(16)  # 4x4
    assert t.hops(0, 1, 16) == 1
    assert t.hops(0, 3, 16) == 1  # wraps around the x dimension
    assert t.hops(0, 15, 16) == 2  # (0,0) -> (3,3): 1+1 with wraps
    assert t.dims(16) == (4, 4)


def test_torus_demand_scales_with_hops():
    t = Torus2D(latency=1e-6)
    near = dict(t.route(1000, 0, 1, n_nodes=16).demands)[("torus_links",)]
    far = dict(t.route(1000, 0, 10, n_nodes=16).demands)[("torus_links",)]
    assert far > near


def test_torus_background_load_shrinks_pool():
    quiet = Torus2D(latency=1e-6, background_load=0.0)
    busy = Torus2D(latency=1e-6, background_load=0.5)
    pool_q = quiet.resources(16)[("torus_links",)](1.0)
    pool_b = busy.resources(16)[("torus_links",)](1.0)
    assert pool_b == pytest.approx(0.5 * pool_q)


def test_torus_bisection_scaling():
    t = Torus2D(latency=1e-6, background_load=0.0)
    pool_16 = t.resources(16)[("torus_links",)](1.0)
    pool_64 = t.resources(64)[("torus_links",)](1.0)
    # bisection grows with sqrt(N), not N
    assert pool_64 / pool_16 == pytest.approx(2.0)


def test_torus_route_requires_n_nodes():
    # routing on a torus depends on the machine size; passing it
    # explicitly (instead of caching it from resources()) means a route
    # can never silently use a stale node count
    t = Torus2D(latency=1e-6)
    with pytest.raises(ValueError, match="n_nodes"):
        t.route(10, 0, 1)
    # intra-node routes never touch the torus, so no size is needed
    assert dict(t.route(10, 3, 3).demands) == {("intra", 3): 10.0}


def test_message_overhead_adds_nic_demand():
    plain = Torus2D(latency=1e-6)
    limited = Torus2D(latency=1e-6, message_overhead=1e-6)
    base = dict(plain.route(1000, 0, 1, n_nodes=16).demands)
    loaded = dict(limited.route(1000, 0, 1, n_nodes=16).demands)
    # 1 us of NIC occupancy at 6 GB/s = 6000 extra bytes of demand per message
    assert loaded[("nic_out", 0)] == pytest.approx(base[("nic_out", 0)] + 6000.0)
    assert loaded[("nic_in", 1)] == pytest.approx(base[("nic_in", 1)] + 6000.0)
    # the shared link pool carries payload only
    assert loaded[("torus_links",)] == base[("torus_links",)]
    # intra-node transport is not message-rate limited
    assert dict(limited.route(1000, 2, 2).demands) == {("intra", 2): 1000.0}
    ft = FatTree(latency=1e-6, link_bandwidth=3e9, message_overhead=1e-6)
    d = dict(ft.route(1000, 0, 1).demands)
    assert d[("nic_out", 0)] == pytest.approx(1000.0 + 3000.0)
    with pytest.raises(ValueError, match="message_overhead"):
        Torus2D(latency=1e-6, message_overhead=-1.0)


@given(
    n_nodes=st.integers(min_value=1, max_value=200),
    data=st.data(),
)
def test_torus_hops_symmetric_and_bounded(n_nodes, data):
    t = Torus2D(latency=1e-6)
    a = data.draw(st.integers(min_value=0, max_value=n_nodes - 1))
    b = data.draw(st.integers(min_value=0, max_value=n_nodes - 1))
    w, h = t.dims(n_nodes)
    assert w * h >= n_nodes
    hops = t.hops(a, b, n_nodes)
    # wraparound symmetry: distance cannot depend on direction
    assert hops == t.hops(b, a, n_nodes)
    # dimension-ordered routing with wraps: at most half of each dimension
    assert 1 <= hops <= max(1, w // 2 + h // 2)


@given(n_nodes=st.integers(min_value=1, max_value=400),
       background=st.floats(min_value=0.0, max_value=0.9))
def test_torus_pool_matches_bisection_formula(n_nodes, background):
    t = Torus2D(latency=1e-6, link_bandwidth=5e9, background_load=background)
    pool = t.resources(n_nodes)[("torus_links",)](1.0)
    w, h = t.dims(n_nodes)
    assert pool == pytest.approx(4.0 * min(w, h) * 5e9 * (1.0 - background))
