"""End-to-end analyzer runs: clean sweeps, CLI plumbing, simulator teardown."""

import numpy as np
import pytest

from repro.check import SEED_BUGS, check_spmvm, sim_teardown_findings
from repro.cli import main


# ----------------------------------------------------------------------
# the acceptance gate: all schemes x both plans, zero findings
# ----------------------------------------------------------------------
def test_clean_sweep_all_schemes_both_plans():
    report = check_spmvm(matrix="HMeP", scale="tiny", nranks=4, ranks_per_node=2)
    assert report.ok, report.render()
    assert report.events_observed > 0


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_check_clean_run(capsys):
    assert main(["check", "--matrix", "HMeP", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "clean: no findings" in out


def test_cli_check_lint_only(capsys):
    assert main(["check", "--lint-only", "--matrix", "HMeP", "--scale", "tiny"]) == 0
    assert "clean (both lowerings)" in capsys.readouterr().out


def test_cli_check_programs(capsys):
    assert main(["check", "--programs"]) == 0
    out = capsys.readouterr().out
    assert "sweep-program lint (12 programs): clean" in out
    assert "COMM_THREAD(POST_SENDS, WAITALL)" in out


@pytest.mark.parametrize("name", sorted(SEED_BUGS))
def test_cli_seed_bugs_fire(name, capsys):
    assert main(["check", "--seed-bug", name]) == 0
    out = capsys.readouterr().out
    expected_kind = SEED_BUGS[name][0]
    assert f"OK: the {expected_kind} detector fired" in out


def test_cli_check_listed(capsys):
    main(["list"])
    assert "check" in capsys.readouterr().out


# ----------------------------------------------------------------------
# simulator teardown accounting
# ----------------------------------------------------------------------
class _FakeSim:
    def __init__(self, entries):
        self._entries = entries

    def unmatched_requests(self):
        return self._entries


def test_sim_teardown_findings_provenance():
    findings = sim_teardown_findings(_FakeSim([
        ("send", 0, 3, 7, 800),
        ("recv", 2, 1, 9, 0),
    ]))
    assert [f.kind for f in findings] == ["leaked-request", "leaked-request"]
    assert findings[0].ranks == (0,)  # the poster of the send
    assert "tag 7" in findings[0].message
    assert findings[1].ranks == (1,)  # the poster of the recv
    assert "never found a sender" in findings[1].message


def _sim_world():
    from repro.frame import FlowNetwork, Simulator
    from repro.machine.network import FatTree
    from repro.smpi import SimMPI

    sim = Simulator()
    icn = FatTree(latency=1e-6, link_bandwidth=1e9)
    net = FlowNetwork(sim, icn.resources(2))
    return sim, SimMPI(sim, net, icn, [0, 1])


def test_simmpi_reports_unmatched_requests():
    sim, mpi = _sim_world()
    # a rendezvous-sized send nobody receives, and a receive nobody feeds
    mpi.isend(0, 1, 10_000_000, tag=3)
    mpi.irecv(0, 1, 64, tag=4)
    sim.run()
    entries = mpi.unmatched_requests()
    assert ("send", 0, 1, 3, 10_000_000) in entries
    assert ("recv", 1, 0, 4, 64) in entries
    assert sim_teardown_findings(mpi)


def test_simmpi_clean_run_has_no_unmatched_requests():
    sim, mpi = _sim_world()

    def sender(sim):
        yield from mpi.waitall(0, [mpi.isend(0, 1, 4096, tag=1)])

    def receiver(sim):
        yield from mpi.waitall(1, [mpi.irecv(1, 0, 4096, tag=1)])

    sim.spawn(sender(sim))
    sim.spawn(receiver(sim))
    sim.run()
    assert mpi.unmatched_requests() == []
    assert sim_teardown_findings(mpi) == []


# ----------------------------------------------------------------------
# numerics stay identical under instrumentation
# ----------------------------------------------------------------------
def test_recorder_does_not_perturb_results():
    from repro.check import CommRecorder
    from repro.core.spmvm import distributed_spmv
    from repro.matrices import random_sparse
    from repro.sparse.spmv import spmv

    A = random_sparse(120, nnzr=6, seed=5)
    x = np.random.default_rng(5).standard_normal(120)
    plain = distributed_spmv(A, x, 3, scheme="task_mode")
    rec = CommRecorder(3)
    checked = distributed_spmv(A, x, 3, scheme="task_mode", recorder=rec)
    assert np.array_equal(plain, checked)
    assert rec.finalize().ok
    assert np.allclose(checked, spmv(A, x))
