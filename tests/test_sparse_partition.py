"""Row partitioners: coverage, balance, ownership queries."""

import numpy as np
import pytest

from repro.matrices import random_sparse
from repro.sparse import (
    RowPartition,
    partition_matrix,
    partition_nnz_balanced,
    partition_rows_balanced,
)


def test_rows_balanced_sizes():
    p = partition_rows_balanced(10, 3)
    assert p.sizes().tolist() == [4, 3, 3]
    assert p.nrows == 10
    assert p.nparts == 3


def test_rows_balanced_more_parts_than_rows():
    p = partition_rows_balanced(2, 5)
    assert p.sizes().sum() == 2
    assert p.nparts == 5  # some parts empty


def test_nnz_balanced_beats_rows_on_skewed_matrix(rng):
    # first rows dense, rest sparse: nnz balancing must move the boundary
    import numpy as np

    from repro.sparse.coo import COOMatrix

    rows = np.concatenate([np.repeat(np.arange(10), 30), np.arange(10, 100)])
    cols = np.concatenate([np.tile(np.arange(30), 10), np.zeros(90, dtype=int)])
    m = COOMatrix(100, 100, rows, cols, np.ones(rows.size)).to_csr()
    p_rows = partition_rows_balanced(100, 4)
    p_nnz = partition_nnz_balanced(m, 4)
    imb_rows = p_rows.imbalance(p_rows.nnz_per_part(m))
    imb_nnz = p_nnz.imbalance(p_nnz.nnz_per_part(m))
    assert imb_nnz < imb_rows
    assert imb_nnz < 1.5


def test_nnz_balanced_covers_all_rows():
    A = random_sparse(500, nnzr=5, seed=2)
    for nparts in (1, 3, 7, 16):
        p = partition_nnz_balanced(A, nparts)
        assert p.nrows == 500
        assert p.nparts == nparts
        assert int(p.nnz_per_part(A).sum()) == A.nnz


def test_nnz_balanced_more_parts_than_rows():
    # regression: nrows < 2 with nparts > 1 used to crash broadcasting an
    # empty cuts array into offsets[1:-1]
    A = random_sparse(1, nnzr=1, seed=0)
    for nparts in (2, 3, 7):
        p = partition_nnz_balanced(A, nparts)
        assert p.nparts == nparts
        assert p.nrows == 1
        assert int(p.nnz_per_part(A).sum()) == A.nnz
        assert p.sizes().tolist() == [1] + [0] * (nparts - 1)


def test_nnz_balanced_single_row_single_part():
    A = random_sparse(1, nnzr=1, seed=0)
    p = partition_nnz_balanced(A, 1)
    assert p.offsets.tolist() == [0, 1]


def test_nnz_balanced_empty_matrix_many_parts():
    import numpy as np

    from repro.sparse import CSRMatrix

    A = CSRMatrix(np.zeros(1, dtype=np.int64), np.zeros(0, dtype=np.int64), np.zeros(0), ncols=0)
    p = partition_nnz_balanced(A, 4)
    assert p.nparts == 4
    assert p.nrows == 0
    assert p.sizes().tolist() == [0, 0, 0, 0]


def test_owner_of_and_local_index():
    p = RowPartition(np.array([0, 4, 9, 12]))
    rows = np.array([0, 3, 4, 8, 11])
    assert p.owner_of(rows).tolist() == [0, 0, 1, 1, 2]
    assert p.local_index(rows).tolist() == [0, 3, 0, 4, 2]
    with pytest.raises(ValueError, match="out of range"):
        p.owner_of(np.array([12]))


def test_bounds_and_size():
    p = RowPartition(np.array([0, 4, 9]))
    assert p.bounds(0) == (0, 4)
    assert p.bounds(1) == (4, 9)
    assert p.size(1) == 5
    with pytest.raises(IndexError):
        p.bounds(2)


def test_partition_matrix_strategies(random_300):
    nnz = partition_matrix(random_300, 5, strategy="nnz")
    rows = partition_matrix(random_300, 5, strategy="rows")
    assert nnz.nparts == rows.nparts == 5
    with pytest.raises(ValueError, match="strategy"):
        partition_matrix(random_300, 5, strategy="metis")


def test_imbalance_metric():
    p = RowPartition(np.array([0, 2, 4]))
    assert p.imbalance(np.array([10.0, 10.0])) == pytest.approx(1.0)
    assert p.imbalance(np.array([30.0, 10.0])) == pytest.approx(1.5)
