"""Latency/throughput/slowdown edge cases (repro.obs.latency)."""

import pytest

from repro.obs import bounded_slowdown, latency_summary, percentile, throughput


class TestPercentile:
    def test_single_sample_is_every_percentile(self):
        for q in (0.0, 37.5, 50.0, 99.0, 100.0):
            assert percentile([4.2], q) == 4.2

    def test_endpoints_are_min_and_max(self):
        xs = [3.0, 1.0, 2.0, 5.0, 4.0]
        assert percentile(xs, 0.0) == 1.0
        assert percentile(xs, 100.0) == 5.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0], 50.0) == pytest.approx(1.5)
        assert percentile([1.0, 2.0, 4.0], 50.0) == pytest.approx(2.0)

    def test_input_order_is_irrelevant(self):
        xs = [9.0, 1.0, 5.0, 3.0, 7.0]
        assert percentile(xs, 90.0) == percentile(sorted(xs), 90.0)

    def test_accepts_any_iterable(self):
        assert percentile(iter((2.0, 1.0)), 100.0) == 2.0

    def test_empty_samples_raise(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50.0)

    @pytest.mark.parametrize("q", [-0.1, 100.1, 1e9])
    def test_q_out_of_range_raises(self, q):
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            percentile([1.0, 2.0], q)


class TestLatencySummary:
    def test_summary_fields(self):
        s = latency_summary([3.0, 1.0, 2.0])
        assert s["count"] == 3.0
        assert s["min"] == 1.0
        assert s["max"] == 3.0
        assert s["mean"] == pytest.approx(2.0)
        assert s["p50"] == pytest.approx(2.0)

    def test_custom_percentiles(self):
        s = latency_summary([1.0, 2.0, 3.0, 4.0], percentiles=(25.0,))
        assert "p25" in s and "p99" not in s

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            latency_summary([])


class TestThroughput:
    def test_rate(self):
        assert throughput(10, 2.0) == pytest.approx(5.0)

    @pytest.mark.parametrize("wall", [0.0, -1.0])
    def test_nonpositive_window_raises(self, wall):
        with pytest.raises(ValueError, match="wall_seconds"):
            throughput(10, wall)


class TestBoundedSlowdown:
    def test_plain_slowdown_when_runtime_dominates_tau(self):
        assert bounded_slowdown(3.0, 1.0) == pytest.approx(3.0)

    def test_clamped_below_by_one(self):
        # a job that never waited has slowdown exactly 1, never less
        assert bounded_slowdown(1.0, 1.0) == 1.0
        assert bounded_slowdown(0.5, 1.0) == 1.0

    def test_tau_bounds_short_job_explosion(self):
        # 1 µs job that waited 1 ms: plain slowdown 1000, bounded ~1
        assert bounded_slowdown(1.001e-3, 1.0e-6, tau=1.0) == 1.0
        # with tau at the job timescale the wait is visible again
        assert bounded_slowdown(1.001e-3, 1.0e-6, tau=1.0e-4) == pytest.approx(10.01)

    def test_zero_runtime_is_finite(self):
        assert bounded_slowdown(2.0, 0.0, tau=1.0) == pytest.approx(2.0)

    def test_negative_inputs_raise(self):
        with pytest.raises(ValueError, match="response"):
            bounded_slowdown(-1.0, 1.0)
        with pytest.raises(ValueError, match="runtime"):
            bounded_slowdown(1.0, -1.0)
        with pytest.raises(ValueError, match="tau"):
            bounded_slowdown(1.0, 1.0, tau=0.0)
