"""mpilite lifecycle: abort provenance, idle backoff, persistent worlds.

The bugfixes the solver service flushed out (ISSUE 7): blocked waits
must die fast and loudly when the world is torn down mid-request, and
an idle pool with an attached observer must not burn CPU spinning at
the observer's poll interval.
"""

import threading
import time

import numpy as np
import pytest

from repro.mpilite import World, WorldAbortedError, open_world
from repro.mpilite.comm import CollectiveState
from repro.mpilite.router import (
    OBSERVER_WAIT_SLICE_MAX,
    Router,
    observer_wait_slice,
)


# ----------------------------------------------------------------------
# abort: blocked waits wake immediately with provenance
# ----------------------------------------------------------------------
class TestAbort:
    def test_abort_wakes_blocked_receive_with_provenance(self):
        r = Router(2)
        errors = []

        def blocked():
            try:
                r.get(1, 0, tag=7, timeout=60.0)
            except WorldAbortedError as exc:
                errors.append(exc)

        t = threading.Thread(target=blocked)
        t.start()
        time.sleep(0.05)  # let it block
        t0 = time.perf_counter()
        r.abort("worker pool shut down")
        t.join(5.0)
        assert not t.is_alive()
        assert time.perf_counter() - t0 < 1.0  # not the 60 s timeout
        (exc,) = errors
        # rank / peer / tag provenance plus the teardown reason
        assert "rank 1" in str(exc)
        assert "peer 0" in str(exc)
        assert "tag 7" in str(exc)
        assert "worker pool shut down" in str(exc)

    def test_operations_after_abort_raise(self):
        r = Router(2)
        r.abort("gone")
        with pytest.raises(WorldAbortedError, match="gone"):
            r.put(0, 1, 0, "x")
        with pytest.raises(WorldAbortedError, match="rank 1"):
            r.get(1, 0, 0)

    def test_abort_wakes_blocked_collective(self):
        cs = CollectiveState(2, timeout=60.0)
        errors = []

        def blocked():
            try:
                cs.exchange(0, 1, lambda vals: sum(vals.values()))
            except WorldAbortedError as exc:
                errors.append(exc)

        t = threading.Thread(target=blocked)
        t.start()
        time.sleep(0.05)
        t0 = time.perf_counter()
        cs.abort("peer died")
        t.join(5.0)
        assert not t.is_alive()
        assert time.perf_counter() - t0 < 1.0
        (exc,) = errors
        assert "rank 0" in str(exc) and "peer died" in str(exc)

    def test_world_abort_fans_out_to_router_and_collectives(self):
        w = open_world(2)
        assert w.aborted is None
        w.abort("service closed")
        assert w.aborted == "service closed"
        with pytest.raises(WorldAbortedError):
            w.comms[0].send(np.ones(2), dest=1)
        with pytest.raises(WorldAbortedError):
            w.collectives.exchange(0, 1, lambda vals: 0)


# ----------------------------------------------------------------------
# persistent worlds
# ----------------------------------------------------------------------
class TestWorld:
    def test_world_serves_many_rounds_of_traffic(self):
        w = World(2)
        for i in range(5):
            w.comms[0].send(np.full(3, float(i)), dest=1, tag=i)
            got = w.comms[1].recv(source=0, tag=i)
            np.testing.assert_array_equal(got, np.full(3, float(i)))

    def test_world_wires_recorder_to_both_layers(self):
        from repro.check import CommRecorder

        rec = CommRecorder(2)
        w = World(2, recorder=rec)
        assert w.router.observer is rec
        assert w.collectives.observer is rec
        assert all(c._rec is rec for c in w.comms)

    def test_world_validates_nranks(self):
        with pytest.raises(ValueError, match="nranks"):
            World(0)


# ----------------------------------------------------------------------
# bounded backoff: observer-mode waits must not spin while idle
# ----------------------------------------------------------------------
class _CountingObserver:
    """Minimal observer interface that counts its wakeup probes."""

    poll_interval = 0.02

    def __init__(self):
        self.checks = 0

    def on_send(self, *a):
        pass

    def on_recv_blocked(self, *a):
        pass

    def on_recv_unblocked(self, *a):
        pass

    def on_recv_complete(self, *a):
        pass

    def on_collective_blocked(self, *a):
        pass

    def on_collective_unblocked(self, *a):
        pass

    def check_blocked(self, rank):
        self.checks += 1


class TestIdleBackoff:
    def test_wait_slice_doubles_and_saturates(self):
        obs = _CountingObserver()
        backoff = obs.poll_interval
        slices = []
        for _ in range(8):
            s, backoff = observer_wait_slice(obs, backoff, None)
            slices.append(s)
        assert slices[0] == pytest.approx(obs.poll_interval)
        assert all(b >= a for a, b in zip(slices, slices[1:]))
        assert slices[-1] == pytest.approx(OBSERVER_WAIT_SLICE_MAX)
        # the deadline caps the slice
        s, _ = observer_wait_slice(obs, 0.25, 0.01)
        assert s == pytest.approx(0.01)

    def test_blocked_receive_probes_are_bounded_not_polling(self):
        # a 0.6 s idle wait at poll_interval=0.02 would probe ~30 times;
        # with the bounded exponential backoff it must stay in the single
        # digits (0.02+0.04+0.08+0.16+0.25+0.25 > 0.6 after 6 probes)
        obs = _CountingObserver()
        r = Router(2)
        r.observer = obs

        def feed():
            time.sleep(0.6)
            r.put(0, 1, 0, "done")

        t = threading.Thread(target=feed)
        t.start()
        assert r.get(1, 0, 0, timeout=10.0) == "done"
        t.join()
        assert obs.checks <= 10

    def test_idle_pool_burns_no_measurable_cpu(self):
        # with *no* observer the waits are pure condition variables: an
        # idle world must cost (close to) zero process CPU
        w = open_world(2)
        results = []
        t = threading.Thread(
            target=lambda: results.append(w.comms[1].recv(source=0, tag=3))
        )
        t.start()
        time.sleep(0.05)  # ensure the receiver is parked
        cpu0 = time.process_time()
        time.sleep(0.5)
        idle_cpu = time.process_time() - cpu0
        w.comms[0].send(np.ones(1), dest=1, tag=3)
        t.join(5.0)
        assert results and np.all(results[0] == 1.0)
        assert idle_cpu < 0.05  # seconds of CPU per 0.5 s idle wall
