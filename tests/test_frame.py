"""Simulation kernel: events, processes, flow network, tracing."""

import numpy as np
import pytest

from repro.frame import FlowNetwork, Simulator, TraceRecorder, all_of, any_of


# ----------------------------------------------------------------------
# events & processes
# ----------------------------------------------------------------------
def test_timeout_advances_clock():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(2.5)
        return sim.now

    p = sim.spawn(proc(sim))
    sim.run()
    assert p.result == 2.5
    assert sim.now == 2.5


def test_events_fire_once():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(42)
    assert ev.triggered and ev.value == 42
    with pytest.raises(RuntimeError, match="twice"):
        ev.succeed()


def test_callback_after_trigger_runs_immediately():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("x")
    got = []
    ev.add_callback(got.append)
    assert got == ["x"]


def test_all_of_and_any_of():
    sim = Simulator()
    a, b = sim.event(), sim.event()
    both = all_of([a, b])
    first = any_of([a, b])
    b.succeed(2)
    assert first.triggered and first.value == 2
    assert not both.triggered
    a.succeed(1)
    assert both.triggered and both.value == [1, 2]
    assert all_of([]).triggered
    with pytest.raises(ValueError):
        any_of([])


def test_processes_interleave_deterministically():
    sim = Simulator()
    log = []

    def worker(sim, name, delay):
        yield sim.timeout(delay)
        log.append((name, sim.now))
        yield sim.timeout(delay)
        log.append((name, sim.now))

    sim.spawn(worker(sim, "a", 1.0))
    sim.spawn(worker(sim, "b", 1.5))
    sim.run()
    assert log == [("a", 1.0), ("b", 1.5), ("a", 2.0), ("b", 3.0)]


def test_process_join_via_done_event():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1.0)
        return "payload"

    def parent(sim):
        c = sim.spawn(child(sim))
        value = yield c.done
        return (value, sim.now)

    p = sim.spawn(parent(sim))
    sim.run()
    assert p.result == ("payload", 1.0)


def test_run_until():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(10.0)

    sim.spawn(proc(sim))
    sim.run(until=3.0)
    assert sim.now == 3.0


def test_scheduling_into_past_rejected():
    sim = Simulator()
    with pytest.raises(ValueError, match="past"):
        sim.schedule(-1.0, lambda: None)


def test_yielding_non_event_raises():
    sim = Simulator()

    def bad(sim):
        yield 42

    sim.spawn(bad(sim))
    with pytest.raises(TypeError, match="must yield SimEvent"):
        sim.run()


# ----------------------------------------------------------------------
# flow network
# ----------------------------------------------------------------------
def _finish_time(size, demands, capacities, **kw):
    sim = Simulator()
    net = FlowNetwork(sim, capacities)
    f = net.start_flow(size, demands, **kw)
    out = {}
    f.done.add_callback(lambda _f: out.setdefault("t", sim.now))
    sim.run()
    return out["t"]


def test_single_flow_rate():
    assert _finish_time(100.0, {"r": 1.0}, {"r": lambda w: 10.0}) == pytest.approx(10.0)


def test_fair_sharing_constant_capacity():
    sim = Simulator()
    net = FlowNetwork(sim, {"r": lambda w: 10.0})
    f1 = net.start_flow(100.0, {"r": 1.0})
    f2 = net.start_flow(50.0, {"r": 1.0})
    times = {}
    f1.done.add_callback(lambda _f: times.setdefault(1, sim.now))
    f2.done.add_callback(lambda _f: times.setdefault(2, sim.now))
    sim.run()
    # f2 finishes at t=10 (5 B/s each); f1 then speeds up: 50 left at 10 B/s
    assert times[2] == pytest.approx(10.0)
    assert times[1] == pytest.approx(15.0)


def test_saturation_curve_capacity():
    # capacity grows with active weight: 2 flows see 2x capacity of 1
    t_two = None
    sim = Simulator()
    net = FlowNetwork(sim, {"bus": lambda w: 5.0 * min(w, 2.0)})
    f1 = net.start_flow(50.0, {"bus": 1.0})
    f2 = net.start_flow(50.0, {"bus": 1.0})
    done = []
    f1.done.add_callback(lambda _f: done.append(sim.now))
    f2.done.add_callback(lambda _f: done.append(sim.now))
    sim.run()
    assert done == [10.0, 10.0]  # each gets 10/2 = 5 B/s


def test_weighted_sharing():
    sim = Simulator()
    net = FlowNetwork(sim, {"r": lambda w: 12.0})
    heavy = net.start_flow(80.0, {"r": 1.0}, weight=2.0)
    light = net.start_flow(40.0, {"r": 1.0}, weight=1.0)
    times = {}
    heavy.done.add_callback(lambda _f: times.setdefault("h", sim.now))
    light.done.add_callback(lambda _f: times.setdefault("l", sim.now))
    sim.run()
    # rates 8 and 4 -> both finish at t=10
    assert times["h"] == pytest.approx(10.0)
    assert times["l"] == pytest.approx(10.0)


def test_multi_resource_bottleneck():
    # flow A runs through r1 (cap 4) and r2 (cap 100): r1 binds
    assert _finish_time(40.0, {"r1": 1.0, "r2": 1.0}, {"r1": lambda w: 4.0, "r2": lambda w: 100.0}) == pytest.approx(10.0)


def test_demand_multiplier():
    # multiplier 4 on a 20 B/s pipe -> effective 5 B/s
    assert _finish_time(50.0, {"r": 4.0}, {"r": lambda w: 20.0}) == pytest.approx(10.0)


def test_pause_resume():
    sim = Simulator()
    net = FlowNetwork(sim, {"r": lambda w: 10.0})
    f = net.start_flow(100.0, {"r": 1.0}, paused=True)
    times = {}
    f.done.add_callback(lambda _f: times.setdefault("t", sim.now))

    def controller(sim):
        yield sim.timeout(3.0)
        net.resume(f)
        yield sim.timeout(2.0)
        net.pause(f)
        yield sim.timeout(5.0)
        net.resume(f)

    sim.spawn(controller(sim))
    sim.run()
    # 3s paused + 2s running (20 B) + 5s paused + 8s running (80 B) = 18
    assert times["t"] == pytest.approx(18.0)


def test_zero_size_flow_completes():
    sim = Simulator()
    net = FlowNetwork(sim, {"r": lambda w: 10.0})
    f = net.start_flow(0.0, {"r": 1.0})
    sim.run()
    assert f.done.triggered


def test_flow_validation():
    sim = Simulator()
    net = FlowNetwork(sim, {"r": lambda w: 10.0})
    with pytest.raises(ValueError, match="size"):
        net.start_flow(-1.0, {"r": 1.0})
    with pytest.raises(ValueError, match="resource demand"):
        net.start_flow(1.0, {})
    with pytest.raises(KeyError):
        net.start_flow(1.0, {"unknown": 1.0})
    with pytest.raises(ValueError, match="weight"):
        net.start_flow(1.0, {"r": 1.0}, weight=0.0)
    with pytest.raises(ValueError, match="already"):
        net.add_capacity("r", lambda w: 1.0)


def test_mass_conservation_many_flows(rng):
    # total bytes delivered equals total bytes requested
    sim = Simulator()
    net = FlowNetwork(sim, {i: (lambda w: 7.0) for i in range(5)})
    sizes = rng.uniform(1.0, 50.0, size=40)
    done = []
    for s in sizes:
        f = net.start_flow(float(s), {int(rng.integers(5)): 1.0})
        f.done.add_callback(lambda _f: done.append(sim.now))
    sim.run()
    assert len(done) == 40
    # the last completion cannot beat the aggregate-capacity bound
    assert max(done) >= sizes.sum() / (5 * 7.0) - 1e-9


# ----------------------------------------------------------------------
# trace
# ----------------------------------------------------------------------
def test_trace_recorder():
    tr = TraceRecorder()
    tr.record("a", "work", 0.0, 1.0)
    tr.record("a", "wait", 1.0, 3.0)
    tr.record("b", "work", 0.5, 2.0)
    assert tr.actors() == ["a", "b"]
    assert tr.total_time("a", "w") == pytest.approx(3.0)
    assert tr.total_time("a", "work") == pytest.approx(1.0)
    assert tr.makespan() == 3.0
    gantt = tr.render_gantt(width=40, title="t")
    assert gantt.startswith("t")
    assert "a |" in gantt and "b |" in gantt


def test_trace_rejects_negative_interval():
    tr = TraceRecorder()
    with pytest.raises(ValueError):
        tr.record("a", "x", 2.0, 1.0)


def test_trace_disabled():
    tr = TraceRecorder(enabled=False)
    tr.record("a", "x", 0.0, 1.0)
    assert tr.intervals == []
    assert tr.render_gantt() == "(empty trace)"


def test_gantt_cycles_letters_beyond_pool():
    """Regression: >36 distinct labels used to walk off the alphabet into
    punctuation; the letter pool must cycle instead."""
    tr = TraceRecorder()
    n_labels = 80
    for i in range(n_labels):
        tr.record("actor", f"label-{i}", float(i), float(i + 1))
    chart = tr.render_gantt(width=100)
    lines = chart.splitlines()
    row = next(line for line in lines if line.startswith("actor |"))
    body = row.split("|")[1]
    assert all(c.isalnum() or c == " " for c in body)
    # the legend still lists every distinct label
    assert sum(1 for line in lines if line.lstrip().startswith(tuple("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789")) and " = label-" in line) == n_labels


def test_trace_events_emit_and_query():
    tr = TraceRecorder()
    tr.emit(1.0, "rank0", "phase_begin", "phase", label="gather")
    tr.emit(2.0, "rank0", "phase_end", "phase", label="gather")
    tr.emit(0.5, "rank1", "gate_open", "gate", rank=1)
    assert len(tr.events) == 3
    assert [ev.name for ev in tr.iter_events()] == ["gate_open", "phase_begin", "phase_end"]
    assert tr.phase_windows("gather") == [(1.0, 2.0)]
    assert tr.phase_windows("gather", actor="rank1") == []
    assert tr.events_named("gate_open")[0].args["rank"] == 1
    assert tr.makespan() == 2.0


def test_trace_events_disabled():
    tr = TraceRecorder(enabled=False)
    tr.emit(1.0, "a", "x")
    assert tr.events == []


def test_flow_network_resource_stats():
    sim = Simulator()
    net = FlowNetwork(sim, {"bus": lambda w: 10.0, "idle": lambda w: 5.0})
    f1 = net.start_flow(100.0, {"bus": 1.0}, label="a")
    f2 = net.start_flow(100.0, {"bus": 1.0}, label="b")
    sim.run()
    assert f1.done.triggered and f2.done.triggered
    stats = net.resource_stats()
    # two flows share 10 B/s -> 200 B total take 20 s, bus busy throughout
    assert stats["bus"].bytes_moved == pytest.approx(200.0)
    assert stats["bus"].busy_seconds == pytest.approx(20.0)
    assert stats["bus"].max_concurrent_flows == 2
    assert stats["bus"].flows_started == 2
    assert stats["bus"].busy_fraction(20.0) == pytest.approx(1.0)
    assert stats["idle"].bytes_moved == 0.0
    assert stats["idle"].busy_seconds == 0.0
    assert stats["idle"].max_concurrent_flows == 0


def test_resource_stats_demand_multiplier_counts_weighted_bytes():
    sim = Simulator()
    net = FlowNetwork(sim, {"pool": lambda w: 30.0})
    # 3-hop message: demand multiplier 3 on the link pool
    net.start_flow(90.0, {"pool": 3.0}, label="hop3")
    sim.run()
    stats = net.resource_stats()
    assert stats["pool"].bytes_moved == pytest.approx(270.0)
    # rate = 30/3 = 10 B/s -> 9 s busy
    assert stats["pool"].busy_seconds == pytest.approx(9.0)


def test_resource_stats_paused_flow_accrues_nothing():
    sim = Simulator()
    net = FlowNetwork(sim, {"bus": lambda w: 10.0})
    f = net.start_flow(50.0, {"bus": 1.0}, paused=True, label="gated")
    sim.schedule(4.0, lambda: net.resume(f))
    sim.run()
    stats = net.resource_stats()
    assert stats["bus"].bytes_moved == pytest.approx(50.0)
    # busy only during the 5 s of actual transfer, not the 4 s gate
    assert stats["bus"].busy_seconds == pytest.approx(5.0)


def test_resource_stats_after_add_capacity():
    sim = Simulator()
    net = FlowNetwork(sim, {"a": lambda w: 10.0})
    net.add_capacity("b", lambda w: 10.0)
    net.start_flow(10.0, {"b": 1.0}, label="late")
    sim.run()
    stats = net.resource_stats()
    assert stats["b"].bytes_moved == pytest.approx(10.0)
    assert stats["a"].bytes_moved == 0.0
