"""Simulator replay of communication plans: traces, stats, overhead model."""

from collections import Counter

import pytest

from repro.comm import build_comm_plan, plan_stats
from repro.core import build_halo_plan, simulate_from_plan
from repro.machine import cray_xe6_cluster, ranks_for_mode, westmere_cluster
from repro.obs import comm_phase_messages
from repro.sparse import partition_matrix

EAGER = 1024

SIM_SCHEMES = ("no_overlap", "naive_overlap", "task_mode")


@pytest.fixture(scope="module")
def sim_matrix(hmep_small):
    return hmep_small


def _plan_for(matrix, cluster, mode="per-ld"):
    nranks = ranks_for_mode(cluster, mode)
    return build_halo_plan(
        matrix, partition_matrix(matrix, nranks), with_matrices=False
    )


@pytest.mark.parametrize("scheme", SIM_SCHEMES)
@pytest.mark.parametrize("comm_plan", ["direct", "node-aware"])
def test_all_schemes_simulate_under_both_plans(sim_matrix, scheme, comm_plan):
    cl = westmere_cluster(4)
    r = simulate_from_plan(
        _plan_for(sim_matrix, cl), cl, mode="per-ld", scheme=scheme, kappa=2.5,
        eager_threshold=EAGER, comm_plan=comm_plan,
    )
    assert r.total_seconds > 0
    assert r.comm_plan == comm_plan  # recorded on the result
    if comm_plan != "direct":
        assert comm_plan in r.describe()


def test_plan_stats_match_traced_messages(sim_matrix):
    # acceptance: the static plan accounting agrees with what the
    # simulator actually put on the wire, per phase
    cl = westmere_cluster(4)
    plan = _plan_for(sim_matrix, cl)
    iterations = 3
    for kind in ("direct", "node-aware"):
        r = simulate_from_plan(
            plan, cl, mode="per-ld", scheme="no_overlap", kappa=2.5,
            eager_threshold=EAGER, comm_plan=kind, iterations=iterations,
            trace=True,
        )
        rank_node = [rk // 2 for rk in range(plan.nranks)]
        cplan = build_comm_plan(plan, rank_node, kind)
        observed = comm_phase_messages(r.trace)
        expected = Counter(m.phase for m in cplan.messages)
        for phase, count in observed.items():
            assert count == expected.get(phase, 0) * iterations
        assert sum(observed.values()) == cplan.total_messages() * iterations
        assert sum(observed.values()) == r.messages_per_mvm * iterations
        assert plan_stats(cplan).messages == cplan.total_messages()


def test_node_aware_moves_gathers_onto_intra_links(sim_matrix):
    cl = westmere_cluster(4)
    plan = _plan_for(sim_matrix, cl)
    common = dict(mode="per-ld", scheme="no_overlap", kappa=2.5,
                  eager_threshold=EAGER)
    direct = simulate_from_plan(plan, cl, comm_plan="direct", **common)
    na = simulate_from_plan(plan, cl, comm_plan="node-aware", **common)

    def intra_bytes(r):
        return sum(
            s.bytes_moved for key, s in r.resource_stats.items()
            if key[0] == "intra"
        )

    def nic_out_bytes(r):
        return sum(
            s.bytes_moved for key, s in r.resource_stats.items()
            if key[0] == "nic_out"
        )

    # gather/scatter hops add intra-node traffic; aggregation and dedup
    # can only shrink what crosses the NICs
    assert intra_bytes(na) > intra_bytes(direct)
    assert nic_out_bytes(na) <= nic_out_bytes(direct)


def test_message_overhead_penalises_message_count(sim_matrix):
    # per-core pure MPI on the torus: many small messages, so a NIC
    # injection-rate limit must slow the direct lowering more than the
    # aggregated one
    quiet = cray_xe6_cluster(2)
    limited = cray_xe6_cluster(2, message_overhead=2.0e-6)
    plan = _plan_for(sim_matrix, quiet, mode="per-core")
    common = dict(mode="per-core", scheme="no_overlap", kappa=2.5,
                  eager_threshold=EAGER)
    base = simulate_from_plan(plan, quiet, comm_plan="direct", **common)
    slow = simulate_from_plan(plan, limited, comm_plan="direct", **common)
    slow_na = simulate_from_plan(plan, limited, comm_plan="node-aware", **common)
    assert slow.total_seconds > base.total_seconds
    # aggregation claws back most of the message-rate penalty
    assert slow_na.total_seconds < slow.total_seconds
    assert slow_na.messages_per_mvm < slow.messages_per_mvm
