"""Jacobi-Davidson eigensolver and the symmetric-CSR extension."""

import numpy as np
import pytest

from repro.core import build_halo_plan, scatter_vector
from repro.mpilite import PerRank, run_spmd
from repro.solvers import DistributedOperator, SerialOperator, jacobi_davidson, lanczos
from repro.sparse import (
    CSRMatrix,
    SymmetricCSR,
    partition_matrix,
    spmv_symmetric,
    symmetric_code_balance,
)
from repro.model import code_balance


# ----------------------------------------------------------------------
# Jacobi-Davidson
# ----------------------------------------------------------------------
def test_jd_finds_ground_state(hmep_tiny):
    op = SerialOperator(hmep_tiny)
    res = jacobi_davidson(op, max_iter=80, tol=1e-8)
    dense_min = float(np.linalg.eigvalsh(hmep_tiny.to_dense())[0])
    assert res.converged
    assert res.eigenvalue == pytest.approx(dense_min, abs=1e-7)
    # eigenvector residual
    r = hmep_tiny @ res.eigenvector - res.eigenvalue * res.eigenvector
    assert np.linalg.norm(r) <= 1e-7


def test_jd_agrees_with_lanczos(samg_tiny):
    op = SerialOperator(samg_tiny)
    jd = jacobi_davidson(op, max_iter=100, tol=1e-8)
    lz = lanczos(op, max_iter=300, tol=1e-9)
    assert jd.eigenvalue == pytest.approx(lz.ground_energy, abs=1e-6)


def test_jd_restart_path():
    # small subspace forces restarts; convergence must survive them
    rng = np.random.default_rng(0)
    d = rng.standard_normal((80, 80))
    A = CSRMatrix.from_dense((d + d.T) / 2 + np.diag(np.arange(80.0)))
    res = jacobi_davidson(SerialOperator(A), max_iter=120, tol=1e-8, max_subspace=6)
    dense_min = float(np.linalg.eigvalsh(A.to_dense())[0])
    assert res.converged
    assert res.eigenvalue == pytest.approx(dense_min, abs=1e-6)


def test_jd_residual_history_monotone_overall(hmep_tiny):
    res = jacobi_davidson(SerialOperator(hmep_tiny), max_iter=80, tol=1e-8)
    # not strictly monotone, but the tail must be far below the head
    assert res.residual_history[-1] < res.residual_history[0] * 1e-3


def test_jd_validates_inputs(hmep_tiny):
    op = SerialOperator(hmep_tiny)
    with pytest.raises(ValueError, match="max_subspace"):
        jacobi_davidson(op, max_subspace=2)
    with pytest.raises(ValueError, match="nonzero"):
        jacobi_davidson(op, v0=np.zeros(hmep_tiny.nrows))


def test_jd_distributed(hmep_tiny):
    partition = partition_matrix(hmep_tiny, 3)
    plan = build_halo_plan(hmep_tiny, partition, with_matrices=True)
    rng = np.random.default_rng(4)
    v0 = rng.standard_normal(hmep_tiny.nrows)

    def fn(comm, halo):
        op = DistributedOperator(comm, halo)
        return jacobi_davidson(
            op, max_iter=80, tol=1e-7, v0=scatter_vector(v0, partition, comm.rank)
        ).eigenvalue

    energies = run_spmd(3, fn, PerRank(plan.ranks))
    serial = jacobi_davidson(SerialOperator(hmep_tiny), max_iter=80, tol=1e-7, v0=v0)
    assert np.allclose(energies, serial.eigenvalue, atol=1e-6)


# ----------------------------------------------------------------------
# symmetric CSR
# ----------------------------------------------------------------------
def test_symmetric_storage_halves_memory(hmep_tiny):
    sym = SymmetricCSR.from_csr(hmep_tiny)
    assert sym.memory_bytes() < 0.65 * hmep_tiny.memory_bytes()
    assert sym.nnz_full == hmep_tiny.nnz


def test_symmetric_spmv_matches_full(hmep_tiny, rng):
    sym = SymmetricCSR.from_csr(hmep_tiny)
    x = rng.standard_normal(hmep_tiny.nrows)
    assert np.allclose(spmv_symmetric(sym, x), hmep_tiny @ x, atol=1e-11)
    assert np.allclose(sym.matvec(x), hmep_tiny @ x, atol=1e-11)


def test_symmetric_roundtrip(samg_tiny):
    sym = SymmetricCSR.from_csr(samg_tiny, tol=1e-9)
    back = sym.to_full()
    assert np.allclose(back.to_dense(), samg_tiny.to_dense(), atol=1e-12)


def test_symmetric_rejects_asymmetric():
    A = CSRMatrix.from_dense(np.array([[1.0, 2.0], [3.0, 4.0]]))
    with pytest.raises(ValueError, match="not symmetric"):
        SymmetricCSR.from_csr(A)
    with pytest.raises(ValueError, match="square"):
        SymmetricCSR.from_csr(CSRMatrix.from_dense(np.ones((2, 3))))


def test_symmetric_spmv_validates_shape(hmep_tiny):
    sym = SymmetricCSR.from_csr(hmep_tiny)
    with pytest.raises(ValueError, match="shape"):
        spmv_symmetric(sym, np.zeros(3))


def test_symmetric_code_balance_nearly_halved():
    # paper Sect. 1.3.1: "reduced by almost a factor of two"
    full = code_balance(15.0)
    sym = symmetric_code_balance(15.0)
    assert 0.5 < sym / full < 0.7
    # kappa contributes only half (charged per stored entry)
    assert symmetric_code_balance(15.0, 2.5) - sym == pytest.approx(2.5 / 4.0)
