"""Fock-space bases: dimensions, operator algebra, hermiticity."""

from math import comb

import numpy as np
import pytest

from repro.matrices import BosonBasis, FermionBasis, SpinBasis


def test_spin_basis_dimension():
    b = SpinBasis(6, 3)
    assert b.dim == comb(6, 3) == 20
    assert len(b.masks()) == 20
    assert all(bin(m).count("1") == 3 for m in b.masks())


def test_spin_basis_rejects_overfilling():
    with pytest.raises(ValueError, match="cannot place"):
        SpinBasis(3, 4)


def test_density_diagonals_sum_to_particle_number():
    b = SpinBasis(5, 2)
    d = b.density_diagonals()
    assert d.shape == (5, b.dim)
    assert np.allclose(d.sum(axis=0), 2.0)


def test_hopping_matrix_is_symmetric_and_particle_conserving():
    b = SpinBasis(4, 2)
    h = b.hopping_matrix([(0, 1), (1, 2), (2, 3), (0, 3)], t=1.0)
    assert h.is_symmetric(tol=1e-14)
    # hopping never leaves the fixed-particle-number space: row sums of
    # the absolute matrix stay bounded by the coordination number
    assert h.nnz > 0


def test_hopping_jordan_wigner_sign():
    # two fermions on a 3-site chain: hop 0->2 over occupied site 1 flips sign
    b = SpinBasis(3, 2)
    h = b.hopping_matrix([(0, 2)], t=1.0)
    masks = b.masks()
    lookup = b.index()
    src = lookup[0b011]  # sites 0,1 occupied
    dst = lookup[0b110]  # sites 1,2 occupied
    dense = h.to_dense()
    # c†_2 c_0 passes over site 1 (occupied): amplitude -t * (-1) = +1
    assert dense[dst, src] == pytest.approx(1.0)


def test_fermion_basis_product_dimension():
    fb = FermionBasis(6, 3, 3)
    assert fb.dim == 400  # the paper's electronic dimension


def test_double_occupancy_range():
    fb = FermionBasis(4, 2, 2)
    docc = fb.double_occupancy_diagonal()
    assert docc.shape == (fb.dim,)
    assert docc.min() >= 0.0
    assert docc.max() <= 2.0


def test_boson_basis_dimensions():
    assert BosonBasis(5, 15, "atmost").dim == comb(20, 5) == 15504  # paper's phonon space
    assert BosonBasis(3, 4, "atmost").dim == comb(7, 3)
    assert BosonBasis(3, 4, "exact").dim == comb(6, 2)
    b = BosonBasis(3, 4)
    assert len(b.states()) == b.dim


def test_boson_states_respect_truncation():
    b = BosonBasis(3, 4, "atmost")
    assert all(sum(s) <= 4 for s in b.states())
    be = BosonBasis(3, 4, "exact")
    assert all(sum(s) == 4 for s in be.states())


def test_displacement_matrix_elements():
    b = BosonBasis(2, 3, "atmost")
    d = b.displacement_matrix(0)
    assert d.is_symmetric(tol=1e-14)
    lookup = b.index()
    dense = d.to_dense()
    # <n+1| b† |n> = sqrt(n+1) between (0,0) and (1,0)
    assert dense[lookup[(1, 0)], lookup[(0, 0)]] == pytest.approx(1.0)
    assert dense[lookup[(2, 0)], lookup[(1, 0)]] == pytest.approx(np.sqrt(2.0))


def test_displacement_zero_in_exact_truncation():
    b = BosonBasis(2, 3, "exact")
    assert b.displacement_matrix(0).nnz == 0


def test_number_diagonals():
    b = BosonBasis(2, 2)
    total = b.total_number_diagonal()
    per_mode = b.number_diagonal(0) + b.number_diagonal(1)
    assert np.allclose(total, per_mode)


def test_displacement_mode_out_of_range():
    with pytest.raises(IndexError):
        BosonBasis(2, 2).displacement_matrix(5)
