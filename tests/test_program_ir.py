"""Sweep IR: op/program validation, builders, and the program lint."""

import pytest

from repro.core.schemes import SIM_SCHEMES
from repro.core.spmvm import SCHEMES
from repro.program import (
    PROGRAM_SCHEMES,
    SweepOp,
    SweepProgram,
    all_sweep_programs,
    build_sweep,
    lint_sweep_program,
    lint_sweep_programs,
)


def _prog(ops, scheme="naive_overlap", **kw):
    return SweepProgram(scheme=scheme, ops=tuple(ops), **kw)


# ----------------------------------------------------------------------
# IR validation
# ----------------------------------------------------------------------
def test_unknown_op_kind_rejected():
    with pytest.raises(ValueError, match="op kind"):
        SweepOp("FACTORIZE")


def test_comm_thread_needs_body():
    with pytest.raises(ValueError, match="non-empty body"):
        SweepOp("COMM_THREAD")


def test_comm_thread_cannot_nest():
    inner = SweepOp("COMM_THREAD", body=(SweepOp("WAITALL"),))
    with pytest.raises(ValueError, match="nest"):
        SweepOp("COMM_THREAD", body=(inner,))


def test_plain_op_cannot_carry_body():
    with pytest.raises(ValueError, match="cannot carry a body"):
        SweepOp("PACK", body=(SweepOp("WAITALL"),))


def test_program_validates_lowering_and_width():
    with pytest.raises(ValueError, match="lowering"):
        _prog([SweepOp("PACK")], lowering="magic")
    with pytest.raises(ValueError, match="block_k"):
        _prog([SweepOp("PACK")], block_k=0)
    with pytest.raises(ValueError, match="at least one op"):
        _prog([])


def test_walk_and_signature_delimit_comm_thread():
    prog = build_sweep("task_mode")
    kinds = [(op.kind, inside) for op, inside in prog.walk()]
    assert ("POST_SENDS", True) in kinds and ("WAITALL", True) in kinds
    assert kinds[0] == ("POST_RECVS", False)
    sig = prog.signature()
    assert sig.index("COMM_THREAD{") < sig.index("POST_SENDS") < sig.index("}")
    assert "task_mode" in prog.describe()


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------
def test_scheme_tuples_agree_with_builders():
    # the builders are the source of truth; the backend-facing tuples
    # must stay in lockstep with them
    assert PROGRAM_SCHEMES == SCHEMES == SIM_SCHEMES


def test_all_builder_outputs_lint_clean():
    programs = all_sweep_programs()
    # schemes x lowerings x widths
    assert len(programs) == len(PROGRAM_SCHEMES) * 2 * 2
    assert lint_sweep_programs(programs) == []
    assert lint_sweep_programs() == []


def test_builder_rejects_unknown_scheme():
    with pytest.raises(ValueError, match="scheme"):
        build_sweep("eager_overlap")


# ----------------------------------------------------------------------
# lint: each invariant violation is caught
# ----------------------------------------------------------------------
def _messages(program):
    findings = lint_sweep_program(program)
    assert all(f.kind == "program-lint" for f in findings)
    return " | ".join(f.message for f in findings)


def test_lint_catches_compute_in_comm_thread():
    prog = _prog([
        SweepOp("POST_RECVS"), SweepOp("PACK"), SweepOp("OMP_BARRIER"),
        SweepOp("COMM_THREAD", body=(
            SweepOp("POST_SENDS"), SweepOp("LOCAL_SPMVM"), SweepOp("WAITALL"))),
        SweepOp("FULL_SPMVM"), SweepOp("OMP_BARRIER"),
    ])
    assert "may only run MPI ops" in _messages(prog)


def test_lint_catches_request_lifecycle_violations():
    # sends before receives
    assert "before POST_RECVS" in _messages(_prog([
        SweepOp("POST_SENDS"), SweepOp("POST_RECVS"), SweepOp("PACK"),
        SweepOp("WAITALL"), SweepOp("FULL_SPMVM"),
    ]))
    # waitall before the sends exist
    assert "WAITALL precedes POST_SENDS" in _messages(_prog([
        SweepOp("POST_RECVS"), SweepOp("PACK"), SweepOp("WAITALL"),
        SweepOp("POST_SENDS"), SweepOp("FULL_SPMVM"),
    ]))
    # leaked requests: no waitall at all
    assert "WAITALL appears 0x" in _messages(_prog([
        SweepOp("POST_RECVS"), SweepOp("PACK"), SweepOp("POST_SENDS"),
        SweepOp("FULL_SPMVM"),
    ]))


def test_lint_catches_missing_pack():
    assert "never filled" in _messages(_prog([
        SweepOp("POST_RECVS"), SweepOp("POST_SENDS"), SweepOp("WAITALL"),
        SweepOp("FULL_SPMVM"),
    ]))


def test_lint_catches_unpublished_buffers():
    # comm thread sends buffers but no barrier after PACK published them
    prog = _prog([
        SweepOp("POST_RECVS"), SweepOp("PACK"),
        SweepOp("COMM_THREAD", body=(SweepOp("POST_SENDS"), SweepOp("WAITALL"))),
        SweepOp("LOCAL_SPMVM"), SweepOp("OMP_BARRIER"), SweepOp("REMOTE_SPMVM"),
    ])
    assert "never published" in _messages(prog)


def test_lint_catches_unjoined_comm_thread():
    prog = _prog([
        SweepOp("POST_RECVS"), SweepOp("PACK"), SweepOp("OMP_BARRIER"),
        SweepOp("COMM_THREAD", body=(SweepOp("POST_SENDS"), SweepOp("WAITALL"))),
        SweepOp("LOCAL_SPMVM"),
    ])
    msgs = _messages(prog)
    assert "never joined" in msgs


def test_lint_catches_premature_halo_consumption():
    # remote part before the exchange completed
    assert "before the exchange" in _messages(_prog([
        SweepOp("POST_RECVS"), SweepOp("PACK"), SweepOp("POST_SENDS"),
        SweepOp("LOCAL_SPMVM"), SweepOp("REMOTE_SPMVM"), SweepOp("WAITALL"),
    ]))


def test_lint_catches_kernel_shape_violations():
    # both full and split kernels write the result
    assert "only kernel op" in _messages(_prog([
        SweepOp("POST_RECVS"), SweepOp("PACK"), SweepOp("POST_SENDS"),
        SweepOp("WAITALL"), SweepOp("FULL_SPMVM"), SweepOp("LOCAL_SPMVM"),
        SweepOp("REMOTE_SPMVM"),
    ]))
    # remote accumulates into a result that does not exist yet
    assert "REMOTE_SPMVM before LOCAL_SPMVM" in _messages(_prog([
        SweepOp("POST_RECVS"), SweepOp("PACK"), SweepOp("POST_SENDS"),
        SweepOp("WAITALL"), SweepOp("REMOTE_SPMVM"), SweepOp("LOCAL_SPMVM"),
    ]))
