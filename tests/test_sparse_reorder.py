"""(R)CM reordering: permutation validity, bandwidth reduction, spectra."""

import numpy as np
import pytest

from repro.matrices import poisson_2d, random_sparse
from repro.sparse import (
    bandwidth,
    bfs_levels,
    cuthill_mckee,
    pseudo_peripheral_node,
    reverse_cuthill_mckee,
)
from repro.sparse.csr import CSRMatrix


def test_cm_is_permutation():
    A = random_sparse(60, nnzr=4, seed=1, ensure_diagonal=True)
    perm = cuthill_mckee(A)
    assert sorted(perm.tolist()) == list(range(60))
    rcm = reverse_cuthill_mckee(A)
    assert sorted(rcm.tolist()) == list(range(60))
    assert rcm.tolist() == perm[::-1].tolist()


def test_rcm_reduces_bandwidth_of_shuffled_grid(rng):
    A = poisson_2d(12)
    shuffle = rng.permutation(A.nrows)
    shuffled = A.permute(shuffle)
    assert bandwidth(shuffled) > bandwidth(A)
    rcm = reverse_cuthill_mckee(shuffled)
    restored = shuffled.permute(rcm)
    # RCM must bring the bandwidth close to the natural grid ordering
    assert bandwidth(restored) <= 3 * bandwidth(A)
    assert bandwidth(restored) < bandwidth(shuffled) / 3


def test_permutation_preserves_spectrum(rng):
    d = rng.standard_normal((15, 15))
    d = d + d.T
    A = CSRMatrix.from_dense(d)
    rcm = reverse_cuthill_mckee(A)
    w0 = np.sort(np.linalg.eigvalsh(d))
    w1 = np.sort(np.linalg.eigvalsh(A.permute(rcm).to_dense()))
    assert np.allclose(w0, w1)


def test_bfs_levels_on_path():
    # path graph 0-1-2-3
    d = np.zeros((4, 4))
    for i in range(3):
        d[i, i + 1] = d[i + 1, i] = 1.0
    A = CSRMatrix.from_dense(d)
    levels = bfs_levels(A, 0)
    assert levels.tolist() == [0, 1, 2, 3]


def test_bfs_unreachable_marked():
    d = np.zeros((4, 4))
    d[0, 1] = d[1, 0] = 1.0  # component {0,1}; {2},{3} isolated
    A = CSRMatrix.from_dense(d)
    levels = bfs_levels(A, 0)
    assert levels[2] == -1 and levels[3] == -1


def test_pseudo_peripheral_on_path():
    d = np.zeros((5, 5))
    for i in range(4):
        d[i, i + 1] = d[i + 1, i] = 1.0
    A = CSRMatrix.from_dense(d)
    node = pseudo_peripheral_node(A, start=2)
    assert node in (0, 4)  # ends of the path


def test_disconnected_components_all_visited():
    d = np.zeros((6, 6))
    d[0, 1] = d[1, 0] = 1.0
    d[3, 4] = d[4, 3] = 1.0
    A = CSRMatrix.from_dense(d + np.eye(6))
    perm = cuthill_mckee(A)
    assert sorted(perm.tolist()) == list(range(6))


def test_reordering_requires_square():
    A = CSRMatrix.from_dense(np.ones((2, 3)))
    with pytest.raises(ValueError, match="square"):
        cuthill_mckee(A)
