"""Examples stay runnable: syntax-check all, execute the quick ones."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def test_all_examples_compile():
    files = sorted(EXAMPLES.glob("*.py"))
    assert len(files) >= 5
    for f in files:
        compile(f.read_text(), str(f), "exec")


@pytest.mark.parametrize("script", ["exact_diagonalization.py"])
def test_example_executes(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "ground-state energy" in result.stdout
