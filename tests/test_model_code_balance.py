"""Code-balance model: the paper's Sect. 1.2 / Sect. 2 arithmetic."""

import numpy as np
import pytest

from repro.model import (
    CodeBalanceModel,
    code_balance,
    code_balance_split,
    kappa_from_bandwidth_ratio,
    kappa_from_measurement,
    max_performance,
    split_penalty,
)


def test_eq1_values():
    # Nnzr = 15, kappa = 0: B = 6 + 12/15 = 6.8 bytes/flop
    assert code_balance(15.0) == pytest.approx(6.8)
    # with the paper's kappa = 2.5: 8.05
    assert code_balance(15.0, 2.5) == pytest.approx(8.05)


def test_eq2_values():
    assert code_balance_split(15.0) == pytest.approx(6.0 + 20.0 / 15.0)
    assert code_balance_split(7.0) == pytest.approx(6.0 + 20.0 / 7.0)


def test_paper_max_performance_numbers():
    # 18.1 GB/s socket bandwidth -> 2.66 GFlop/s at kappa=0
    assert max_performance(18.1e9, 15.0) / 1e9 == pytest.approx(2.66, abs=0.01)
    # STREAM 21.2 GB/s -> 3.12 GFlop/s
    assert max_performance(21.2e9, 15.0) / 1e9 == pytest.approx(3.12, abs=0.01)
    # with kappa=2.5 the measured 2.25 GFlop/s is recovered
    assert max_performance(18.1e9, 15.0, 2.5) / 1e9 == pytest.approx(2.25, abs=0.01)


def test_kappa_from_measurement_recovers_paper_value():
    kappa = kappa_from_measurement(2.25e9, 18.1e9, 15.0)
    assert kappa == pytest.approx(2.5, abs=0.05)


def test_kappa_from_measurement_clamps_to_zero():
    # better-than-compulsory measurement (noise) must not go negative
    assert kappa_from_measurement(5e9, 18.1e9, 15.0) == 0.0


def test_kappa_reload_interpretation():
    # 5 extra full loads of B at Nnzr=15 -> kappa = 5*8/15
    assert kappa_from_bandwidth_ratio(5.0, 15.0) == pytest.approx(8.0 * 5 / 15)
    with pytest.raises(ValueError):
        kappa_from_bandwidth_ratio(-1.0, 15.0)


def test_split_penalty_range():
    # paper: between 15% (Nnzr=7) and 8% (Nnzr=15) for kappa=0
    assert 0.12 <= split_penalty(7.0) <= 0.15
    assert 0.06 <= split_penalty(15.0) <= 0.09
    # and less for kappa > 0
    assert split_penalty(7.0, 2.5) < split_penalty(7.0, 0.0)


def test_model_bundle_consistency():
    m = CodeBalanceModel(nnzr=15.0, kappa=2.5)
    bw = 18.1e9
    assert m.performance(bw) == pytest.approx(bw / m.balance())
    assert m.bandwidth_needed(m.performance(bw)) == pytest.approx(bw)
    assert m.balance(split=True) > m.balance()


def test_model_traffic_matches_eq1_for_square():
    m = CodeBalanceModel(nnzr=10.0, kappa=1.0)
    nnz, n = 1000, 100
    traffic = m.traffic(nnz, n, n)
    assert traffic / (2 * nnz) == pytest.approx(code_balance(10.0, 1.0))


def test_invalid_inputs():
    with pytest.raises(ValueError):
        code_balance(0.0)
    with pytest.raises(ValueError):
        code_balance(10.0, -1.0)
    with pytest.raises(ValueError):
        max_performance(-5.0, 10.0)
