"""The thread-level race sanitizer (repro.check.threads).

Three layers: the :class:`ThreadSanitizer` clock algebra in isolation
(spawn/join/lock edges, FastTrack conflict rules, dedup), the sweep
interpreter's instrumentation end to end (clean runs stay clean, the
seeded fixtures fire, the unjoined-comm-thread hard error), and the
``repro check --threads`` driver the CI smoke job gates on.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.check import (
    SEED_BUGS,
    ThreadRaceError,
    ThreadSanitizer,
    TrackedCondition,
    check_threads,
    run_seed_bug,
)
from repro.check.threads import _concurrent, _leq, _merge_into


# ------------------------------------------------------- clock algebra


def test_clock_partial_order():
    assert _leq({0: 1}, {0: 2})
    assert _leq({}, {0: 1})
    assert not _leq({0: 2}, {0: 1})
    assert not _leq({1: 1}, {0: 5})
    assert _concurrent({0: 2, 1: 1}, {0: 1, 1: 2})
    assert not _concurrent({0: 1}, {0: 1, 1: 3})


def test_merge_is_componentwise_max():
    dst = {0: 3, 1: 1}
    _merge_into(dst, {1: 5, 2: 2})
    assert dst == {0: 3, 1: 5, 2: 2}


# ------------------------------------------------- sanitizer primitives


def _run_in_thread(fn) -> None:
    t = threading.Thread(target=fn)
    t.start()
    t.join()


def test_unordered_cross_thread_write_is_a_race():
    san = ThreadSanitizer()
    san.on_access("d", "buf", "w", op="main-write")
    # a thread the sanitizer never saw spawned: no edge orders it
    _run_in_thread(lambda: san.on_access("d", "buf", "w", op="rogue-write"))
    report = san.finalize()
    assert not report.ok
    (f,) = report.findings
    assert f.kind == "thread-race"
    assert f.details["buffer"] == "buf"
    assert set(f.details["ops"]) == {"main-write", "rogue-write"}


def test_read_vs_unordered_write_races_in_either_order():
    for first, second in (("r", "w"), ("w", "r")):
        san = ThreadSanitizer()
        san.on_access("d", "buf", first, op="main")
        _run_in_thread(lambda s=second: san.on_access("d", "buf", s, op="other"))
        assert not san.finalize().ok, f"{first} then {second} stayed silent"


def test_concurrent_reads_do_not_race():
    san = ThreadSanitizer()
    san.on_access("d", "buf", "r", op="main-read")
    _run_in_thread(lambda: san.on_access("d", "buf", "r", op="other-read"))
    assert san.finalize().ok


def test_spawn_edge_orders_parent_writes_before_child():
    san = ThreadSanitizer()
    san.on_access("d", "buf", "w", op="parent-write")
    token = san.on_spawn("d", "child")

    def child():
        san.on_thread_start("d", token)
        san.on_access("d", "buf", "r", op="child-read")

    _run_in_thread(child)
    assert san.finalize().ok


def test_join_edge_orders_child_writes_before_parent():
    san = ThreadSanitizer()
    token = san.on_spawn("d", "child")

    def child():
        san.on_thread_start("d", token)
        san.on_access("d", "buf", "w", op="child-write")

    t = threading.Thread(target=child)
    t.start()
    t.join()
    san.on_join("d", token)
    san.on_access("d", "buf", "r", op="parent-read")
    assert san.finalize().ok


def test_without_join_edge_the_same_accesses_race():
    san = ThreadSanitizer()
    token = san.on_spawn("d", "child")

    def child():
        san.on_thread_start("d", token)
        san.on_access("d", "buf", "w", op="child-write")

    t = threading.Thread(target=child)
    t.start()
    t.join()  # OS join happened, but the sanitizer never saw an edge
    san.on_access("d", "buf", "r", op="parent-read")
    assert not san.finalize().ok


def test_lock_handoff_orders_accesses():
    san = ThreadSanitizer()
    san.on_acquire("d", "L")
    san.on_access("d", "buf", "w", op="main-write")
    san.on_release("d", "L")

    def other():
        san.on_acquire("d", "L")
        san.on_access("d", "buf", "w", op="other-write")
        san.on_release("d", "L")

    _run_in_thread(other)
    assert san.finalize().ok


def test_tracked_condition_feeds_handoff_edges():
    san = ThreadSanitizer()
    cond = TrackedCondition(san, "d", "L")
    with cond:
        san.on_access("d", "buf", "w", op="main-write")

    def other():
        with cond:
            san.on_access("d", "buf", "w", op="other-write")

    _run_in_thread(other)
    assert san.finalize().ok


def test_duplicate_races_are_deduplicated():
    # same (op, thread) pair conflicting repeatedly is one finding; the
    # dedup key includes the thread names, so a *different* rogue thread
    # would be a genuinely new race
    san = ThreadSanitizer()
    san.on_access("d", "buf", "w", op="main-write")

    def rogue():
        for _ in range(3):  # every read conflicts with the same stale write
            san.on_access("d", "buf", "r", op="rogue-read")

    _run_in_thread(rogue)
    assert len(san.finalize().findings) == 1


def test_domains_do_not_cross_talk():
    san = ThreadSanitizer()
    san.on_access("rank0", "buf", "w", op="main-write")
    _run_in_thread(lambda: san.on_access("rank1", "buf", "w", op="other-write"))
    assert san.finalize().ok


def test_strict_mode_raises_at_the_racy_access():
    san = ThreadSanitizer(strict=True)
    san.on_access("d", "buf", "w", op="main-write")
    caught: list[BaseException] = []

    def rogue():
        try:
            san.on_access("d", "buf", "w", op="rogue-write")
        except ThreadRaceError as exc:
            caught.append(exc)

    _run_in_thread(rogue)
    (exc,) = caught
    assert exc.finding.kind == "thread-race"
    assert "rogue-write" in str(exc)


def test_spawn_token_is_single_use():
    san = ThreadSanitizer()
    token = san.on_spawn("d", "child")
    san.on_thread_start("d", token)
    with pytest.raises(ValueError, match="already-bound"):
        san.on_thread_start("d", token)
    with pytest.raises(ValueError, match="unknown thread token"):
        san.on_join("d", 999)


def test_mode_is_validated():
    with pytest.raises(ValueError, match="mode"):
        ThreadSanitizer().on_access("d", "buf", "x")


# ------------------------------------------- interpreter instrumentation


@pytest.mark.parametrize("scheme", ("no_overlap", "naive_overlap", "task_mode"))
@pytest.mark.parametrize("plan", ("direct", "node-aware"))
def test_clean_schemes_report_zero_races(hmep_tiny, rng, scheme, plan):
    from repro.core.spmvm import distributed_spmv
    from repro.sparse import spmv

    x = rng.standard_normal(hmep_tiny.nrows)
    san = ThreadSanitizer()
    y = distributed_spmv(
        hmep_tiny, x, 4, scheme=scheme,
        comm_plan=plan, ranks_per_node=2, sanitizer=san,
    )
    report = san.finalize()
    assert report.ok, report.render()
    assert report.events_observed > 0
    np.testing.assert_allclose(y, spmv(hmep_tiny, x), rtol=1e-10)


def test_task_mode_observes_comm_thread_spawn(hmep_tiny, rng):
    # the overlap scheme must exercise the spawn/join protocol: the
    # sanitizer sees more than one thread per rank domain
    from repro.core.spmvm import distributed_spmv

    san = ThreadSanitizer()
    distributed_spmv(hmep_tiny, rng.standard_normal(hmep_tiny.nrows), 2,
                     scheme="task_mode", sanitizer=san)
    names = {st.name for st in san._by_tid.values()}
    assert any(n.startswith("comm-thread-") for n in names), names


def test_check_threads_clean_end_to_end(hmep_tiny):
    report = check_threads(hmep_tiny, nranks=4, ranks_per_node=2)
    assert report.ok, report.render()
    assert report.events_observed > 0


# ------------------------------------------------- seeded-bug fixtures


@pytest.mark.parametrize("name", [
    "thread-race-missing-barrier",
    "thread-race-main-halo",
    "thread-race-unlocked-service",
])
def test_seeded_thread_races_fire(name):
    fired, report = run_seed_bug(name)
    assert fired, report.render()
    assert all(f.kind == "thread-race" for f in report.findings)


def test_missing_barrier_fixture_names_the_racing_ops():
    _fired, report = run_seed_bug("thread-race-missing-barrier")
    pairs = {frozenset(f.details["ops"]) for f in report.findings}
    assert frozenset({"REMOTE_SPMVM", "WAITALL"}) in pairs


def test_seed_bug_registry_covers_thread_kinds():
    kinds = {kind for kind, _fn in SEED_BUGS.values()}
    assert "thread-race" in kinds
    assert "ast-lint" in kinds


# ------------------------------------- unjoined comm thread (satellite)


def _seeded_program(join_barrier: bool):
    # with join_barrier this is exactly build_sweep's task_mode lowering:
    # the barrier between LOCAL and REMOTE joins the comm thread *before*
    # the halo is consumed.  Without it the program both races and ends
    # with the region still open.
    from repro.program.ir import SweepOp, SweepProgram

    ops = [
        SweepOp("POST_RECVS"),
        SweepOp("PACK"),
        SweepOp("OMP_BARRIER"),
        SweepOp("COMM_THREAD", body=(SweepOp("POST_SENDS"), SweepOp("WAITALL"))),
        SweepOp("LOCAL_SPMVM"),
    ]
    if join_barrier:
        ops.append(SweepOp("OMP_BARRIER"))
    ops.append(SweepOp("REMOTE_SPMVM"))
    return SweepProgram(scheme="task_mode", ops=tuple(ops))


def test_unjoined_comm_thread_is_a_hard_error(hmep_tiny, rng):
    from repro.core.halo import cached_halo_plan
    from repro.core.spmvm import DistributedSpMVM, scatter_vector
    from repro.mpilite.world import PerRank, run_spmd
    from repro.program.exec import UnjoinedCommThreadError, execute_sweep

    plan = cached_halo_plan(hmep_tiny, 2, with_matrices=True)
    x = rng.standard_normal(hmep_tiny.nrows)

    def fn(comm, halo):
        engine = DistributedSpMVM(comm, halo)
        return execute_sweep(
            engine, _seeded_program(join_barrier=False),
            scatter_vector(x, plan.partition, comm.rank),
        )

    with pytest.raises(Exception) as excinfo:
        run_spmd(2, fn, PerRank(plan.ranks), recv_timeout=10.0, timeout=30.0)
    root = excinfo.value
    while root.__cause__ is not None:
        root = root.__cause__
    assert isinstance(root, UnjoinedCommThreadError)
    # provenance: the offending region's body ops and the missing join
    assert "COMM_THREAD(POST_SENDS,WAITALL)" in str(root)
    assert "OMP_BARRIER" in str(root)


def test_same_program_with_join_barrier_runs(hmep_tiny, rng):
    from repro.core.halo import cached_halo_plan
    from repro.core.spmvm import DistributedSpMVM, scatter_vector
    from repro.mpilite.world import PerRank, run_spmd
    from repro.program.exec import execute_sweep
    from repro.sparse import spmv

    plan = cached_halo_plan(hmep_tiny, 2, with_matrices=True)
    x = rng.standard_normal(hmep_tiny.nrows)

    def fn(comm, halo):
        engine = DistributedSpMVM(comm, halo)
        return execute_sweep(
            engine, _seeded_program(join_barrier=True),
            scatter_vector(x, plan.partition, comm.rank),
        )

    parts = run_spmd(2, fn, PerRank(plan.ranks), recv_timeout=10.0, timeout=30.0)
    np.testing.assert_allclose(np.concatenate(parts), spmv(hmep_tiny, x), rtol=1e-10)


# ------------------------------------------------------------------ CLI


def test_cli_check_threads_clean(capsys):
    from repro.cli import main

    rc = main(["check", "--threads", "--scale", "tiny", "--nranks", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "thread sanitizer" in out
    assert "clean: no findings" in out


@pytest.mark.parametrize("name", ["thread-race-missing-barrier", "astlint-hot-alloc"])
def test_cli_seeded_thread_fixtures_exit_zero(name, capsys):
    from repro.cli import main

    rc = main(["check", "--seed-bug", name])
    assert rc == 0
    assert "detector fired" in capsys.readouterr().out
