"""COO container: construction, duplicate handling, conversions."""

import numpy as np
import pytest

from repro.sparse import COOMatrix, CSRMatrix


def test_empty_matrix():
    m = COOMatrix.empty(5, 7)
    assert m.shape == (5, 7)
    assert m.nnz == 0
    assert m.to_csr().nnz == 0
    assert m.to_dense().shape == (5, 7)


def test_from_dense_roundtrip(rng):
    d = (rng.random((20, 15)) < 0.2) * rng.standard_normal((20, 15))
    m = COOMatrix.from_dense(d)
    assert np.allclose(m.to_dense(), d)
    assert m.nnz == np.count_nonzero(d)


def test_from_dense_tolerance():
    d = np.array([[0.5, 1e-12], [0.0, -2.0]])
    m = COOMatrix.from_dense(d, tol=1e-9)
    assert m.nnz == 2


def test_duplicates_are_summed():
    m = COOMatrix(3, 3, [0, 0, 1], [1, 1, 2], [2.0, 3.0, 1.0])
    clean = m.sum_duplicates()
    assert clean.nnz == 2
    dense = clean.to_dense()
    assert dense[0, 1] == 5.0
    assert dense[1, 2] == 1.0


def test_duplicates_summed_in_csr_conversion():
    m = COOMatrix(2, 2, [0, 0, 0], [0, 0, 1], [1.0, 1.0, 1.0])
    csr = m.to_csr()
    assert csr.nnz == 2
    assert csr.to_dense()[0, 0] == 2.0


def test_transpose():
    m = COOMatrix(2, 3, [0, 1], [2, 0], [5.0, -1.0])
    t = m.transpose()
    assert t.shape == (3, 2)
    assert np.allclose(t.to_dense(), m.to_dense().T)


def test_drop_zeros():
    m = COOMatrix(2, 2, [0, 1], [0, 1], [0.0, 3.0])
    assert m.drop_zeros().nnz == 1


def test_out_of_range_indices_rejected():
    with pytest.raises(ValueError, match="row indices"):
        COOMatrix(2, 2, [2], [0], [1.0])
    with pytest.raises(ValueError, match="col indices"):
        COOMatrix(2, 2, [0], [5], [1.0])


def test_mismatched_lengths_rejected():
    with pytest.raises(ValueError, match="same length"):
        COOMatrix(2, 2, [0, 1], [0], [1.0])


def test_csr_sorted_columns(rng):
    # heavily shuffled triplets must produce canonical CSR
    n = 30
    rows = rng.integers(0, n, 200)
    cols = rng.integers(0, n, 200)
    vals = rng.standard_normal(200)
    csr = COOMatrix(n, n, rows, cols, vals).to_csr()
    for i in range(n):
        lo, hi = csr.row_ptr[i], csr.row_ptr[i + 1]
        assert np.all(np.diff(csr.col_idx[lo:hi]) > 0)
