"""Shared fixtures: small matrices built once per test session."""

from __future__ import annotations

import numpy as np
import pytest

from repro.matrices import build_samg_like, get_matrix, random_sparse


@pytest.fixture(scope="session")
def hmep_tiny():
    """Tiny HMeP Hamiltonian (dim 540)."""
    return get_matrix("HMeP", "tiny").build()


@pytest.fixture(scope="session")
def hmep_bad_tiny():
    """Tiny HMEp (scattered ordering) Hamiltonian."""
    return get_matrix("HMEp", "tiny").build()


@pytest.fixture(scope="session")
def hmep_small():
    """Small HMeP Hamiltonian (dim 33 600) — large enough that the
    communication-bound qualitative claims of the paper hold."""
    return get_matrix("HMeP", "small").build_cached()


@pytest.fixture(scope="session")
def samg_tiny():
    """Tiny sAMG-like FV Poisson matrix (~2k rows)."""
    return get_matrix("sAMG", "tiny").build()


@pytest.fixture(scope="session")
def random_300():
    """A 300x300 random sparse matrix with Nnzr ~ 9."""
    return random_sparse(300, nnzr=9.0, seed=3)


@pytest.fixture()
def rng():
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(12345)
