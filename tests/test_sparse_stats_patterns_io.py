"""Structure statistics, block-occupancy patterns and Matrix Market I/O."""

import numpy as np
import pytest

from repro.sparse import (
    CSRMatrix,
    bandwidth,
    block_occupancy,
    dumps_matrix_market,
    loads_matrix_market,
    matrix_stats,
    profile,
    read_matrix_market,
    row_nnz_histogram,
    write_matrix_market,
)


def test_bandwidth_tridiagonal():
    m = CSRMatrix.from_dense(np.eye(10) + np.diag(np.ones(9), 1) + np.diag(np.ones(9), -1))
    assert bandwidth(m) == 1


def test_bandwidth_empty():
    m = CSRMatrix(np.zeros(3, dtype=np.int64), np.zeros(0, dtype=np.int64), np.zeros(0), ncols=2)
    assert bandwidth(m) == 0


def test_profile():
    # row 2 reaches back to col 0 -> profile contribution 2
    d = np.eye(3)
    d[2, 0] = 1.0
    assert profile(CSRMatrix.from_dense(d)) == 2


def test_row_nnz_histogram():
    d = np.array([[1.0, 1.0], [0.0, 1.0]])
    h = row_nnz_histogram(CSRMatrix.from_dense(d))
    assert h == {1: 1, 2: 1}


def test_matrix_stats(hmep_tiny):
    s = matrix_stats(hmep_tiny)
    assert s.nrows == s.ncols == 540
    assert s.symmetric_structure
    assert s.min_row_nnz >= 1
    assert s.nnzr == pytest.approx(hmep_tiny.nnzr)
    assert "540x540" in s.describe()


def test_block_occupancy_identity():
    m = CSRMatrix.identity(100)
    g = block_occupancy(m, grid=10)
    assert g.grid_shape == (10, 10)
    # all nonzero blocks on the diagonal
    assert g.diagonal_fraction() == 1.0
    assert g.band_fraction(0) == 1.0
    assert g.nonzero_blocks() == 10


def test_block_occupancy_values():
    m = CSRMatrix.from_dense(np.ones((4, 4)))
    g = block_occupancy(m, grid=2)
    assert np.allclose(g.occupancy, 1.0)
    assert g.max_occupancy() == 1.0


def test_block_occupancy_orderings_differ(hmep_tiny, hmep_bad_tiny):
    g_good = block_occupancy(hmep_tiny, grid=30)
    g_bad = block_occupancy(hmep_bad_tiny, grid=30)
    # the paper's Fig. 1 message: HMeP is banded, HMEp scattered
    assert g_good.band_fraction(3) > g_bad.band_fraction(3)


def test_occupancy_render(hmep_tiny):
    text = block_occupancy(hmep_tiny, grid=20).render(title="x")
    assert text.startswith("x")
    assert len(text.splitlines()) == 21


def test_matrix_market_roundtrip(tmp_path, rng):
    d = (rng.random((12, 9)) < 0.3) * rng.standard_normal((12, 9))
    m = CSRMatrix.from_dense(d)
    path = tmp_path / "m.mtx"
    write_matrix_market(m, path, comment="test matrix")
    back = read_matrix_market(path)
    assert np.allclose(back.to_dense(), d)


def test_matrix_market_symmetric_roundtrip(rng):
    d = rng.standard_normal((8, 8)) * (rng.random((8, 8)) < 0.4)
    d = d + d.T
    m = CSRMatrix.from_dense(d)
    text = dumps_matrix_market(m, symmetric=True)
    assert "symmetric" in text.splitlines()[0]
    back = loads_matrix_market(text)
    assert np.allclose(back.to_dense(), d)


def test_matrix_market_rejects_garbage():
    with pytest.raises(ValueError, match="MatrixMarket"):
        loads_matrix_market("not a matrix\n")
    with pytest.raises(ValueError, match="symmetry"):
        loads_matrix_market("%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n")
