"""spMVM kernels: full, accumulate, row-range, split, traffic accounting."""

import numpy as np
import pytest

from repro.model import code_balance, code_balance_split
from repro.sparse import CSRMatrix, flops, spmv, spmv_add, spmv_rows, spmv_split, spmv_traffic


@pytest.fixture()
def mat_and_x(rng):
    d = (rng.random((40, 40)) < 0.2) * rng.standard_normal((40, 40))
    return CSRMatrix.from_dense(d), d, rng.standard_normal(40)


def test_spmv_matches_dense(mat_and_x):
    m, d, x = mat_and_x
    assert np.allclose(spmv(m, x), d @ x)


def test_spmv_empty_rows():
    m = CSRMatrix(np.array([0, 0, 1, 1]), np.array([0]), np.array([3.0]), ncols=2)
    y = spmv(m, np.array([2.0, 1.0]))
    assert y.tolist() == [0.0, 6.0, 0.0]


def test_spmv_zero_matrix():
    m = CSRMatrix(np.zeros(4, dtype=np.int64), np.zeros(0, dtype=np.int64), np.zeros(0), ncols=5)
    assert np.all(spmv(m, np.ones(5)) == 0)


def test_spmv_add_accumulates(mat_and_x):
    m, d, x = mat_and_x
    out = np.ones(40)
    spmv_add(m, x, out)
    assert np.allclose(out, 1.0 + d @ x)


def test_spmv_rows_partial(mat_and_x):
    m, d, x = mat_and_x
    out = np.full(40, -7.0)
    spmv_rows(m, x, 10, 25, out)
    assert np.allclose(out[10:25], (d @ x)[10:25])
    assert np.all(out[:10] == -7.0)
    assert np.all(out[25:] == -7.0)


def test_spmv_rows_bad_range(mat_and_x):
    m, _d, x = mat_and_x
    with pytest.raises(ValueError, match="row range"):
        spmv_rows(m, x, 30, 10, np.zeros(40))


def test_spmv_split_equals_full(mat_and_x, rng):
    m, d, x = mat_and_x
    mask = rng.random(40) < 0.7
    local, remote = m.column_mask_split(mask)
    # compress the remote columns into a halo buffer, as the real code does
    halo_cols = remote.columns_used()
    mapping = np.zeros(40, dtype=np.int64)
    mapping[halo_cols] = np.arange(halo_cols.size)
    remote_compressed = remote.relabel_columns(mapping, max(1, halo_cols.size))
    y = spmv_split(local, remote_compressed, x, x[halo_cols] if halo_cols.size else np.zeros(1))
    assert np.allclose(y, d @ x)


def test_flops_two_per_nonzero(mat_and_x):
    m, _, _ = mat_and_x
    assert flops(m) == 2 * m.nnz


def test_traffic_matches_code_balance_square():
    # For a square matrix, traffic / flops must equal Eq. 1 exactly
    m = CSRMatrix.from_dense(np.eye(50) + np.diag(np.ones(49), 1))
    for kappa in (0.0, 2.5):
        b = spmv_traffic(m, kappa=kappa) / flops(m)
        assert b == pytest.approx(code_balance(m.nnzr, kappa) + (8 * 50 - 8 * m.nnz / m.nnzr) / flops(m), rel=1e-12) or True
        # direct identity: (12+k)nnz + 16n + 8n over 2nnz
        expected = ((12 + kappa) * m.nnz + 24 * m.nrows) / (2 * m.nnz)
        assert b == pytest.approx(expected)
        assert b == pytest.approx(code_balance(m.nnzr, kappa))


def test_traffic_split_matches_eq2():
    m = CSRMatrix.from_dense(np.eye(50) + np.diag(np.ones(49), 1))
    b_split = spmv_traffic(m, split=True) / flops(m)
    assert b_split == pytest.approx(code_balance_split(m.nnzr, 0.0))


def test_traffic_rejects_negative_kappa():
    m = CSRMatrix.identity(3)
    with pytest.raises(ValueError, match="kappa"):
        spmv_traffic(m, kappa=-1.0)


# ----------------------------------------------------------------------
# out-buffer validation: one helper, one contract, every kernel
# ----------------------------------------------------------------------
def test_spmv_rejects_non_float64_out(mat_and_x):
    """Regression: spmv used to allocate a temporary and lossily
    down-cast it into a float32 ``out`` — precision silently lost and an
    allocation exactly where the preallocated API promises none."""
    m, _d, x = mat_and_x
    with pytest.raises(ValueError, match="out must have dtype float64"):
        spmv(m, x, out=np.empty(40, dtype=np.float32))


def test_spmv_add_rejects_non_float64_out(mat_and_x):
    m, _d, x = mat_and_x
    with pytest.raises(ValueError, match="out must have dtype float64"):
        spmv_add(m, x, np.zeros(40, dtype=np.int64))


def test_spmv_rows_validates_out_and_x(mat_and_x):
    """Regression: spmv_rows checked neither x length nor out shape."""
    m, _d, x = mat_and_x
    with pytest.raises(ValueError, match="out must have shape"):
        spmv_rows(m, x, 0, 10, np.zeros(39))
    with pytest.raises(ValueError, match="out must have dtype float64"):
        spmv_rows(m, x, 0, 10, np.zeros(40, dtype=np.float32))
    with pytest.raises(ValueError, match="x must be a vector"):
        spmv_rows(m, np.ones(41), 0, 10, np.zeros(40))


def test_spmv_split_validates_out(mat_and_x, rng):
    """Regression: spmv_split never checked a caller-provided out."""
    m, _d, x = mat_and_x
    mask = rng.random(40) < 0.7
    local, remote = m.column_mask_split(mask)
    halo_cols = remote.columns_used()
    mapping = np.zeros(40, dtype=np.int64)
    mapping[halo_cols] = np.arange(halo_cols.size)
    remote_c = remote.relabel_columns(mapping, max(1, halo_cols.size))
    x_remote = x[halo_cols] if halo_cols.size else np.zeros(1)
    with pytest.raises(ValueError, match="out must have shape"):
        spmv_split(local, remote_c, x, x_remote, out=np.zeros(41))
    with pytest.raises(ValueError, match="out must have dtype float64"):
        spmv_split(local, remote_c, x, x_remote, out=np.zeros(40, dtype=np.float32))


def test_spmv_rejects_non_array_out(mat_and_x):
    m, _d, x = mat_and_x
    with pytest.raises(ValueError, match="out must be a numpy array"):
        spmv(m, x, out=[0.0] * 40)


# ----------------------------------------------------------------------
# kernel accuracy: the cross-row cancellation bug (fixed via reduceat)
# ----------------------------------------------------------------------
def test_spmv_no_cross_row_cancellation():
    """Regression: cumsum-differencing carried 1e16 into the next row's
    difference and returned [1e16, 0.0]; the true second row sum is 2.0."""
    m = CSRMatrix.from_dense(np.array([[1e16, 1.0], [1.0, 1.0]]))
    y = spmv(m, np.ones(2))
    assert y.tolist() == [1e16, 2.0]


def test_spmv_add_no_cross_row_cancellation():
    m = CSRMatrix.from_dense(np.array([[1e16, 1.0], [1.0, 1.0]]))
    out = np.zeros(2)
    spmv_add(m, np.ones(2), out)
    assert out.tolist() == [1e16, 2.0]


def test_spmv_rows_no_cross_row_cancellation():
    m = CSRMatrix.from_dense(np.array([[1e16, 1.0], [1.0, 1.0]]))
    out = np.zeros(2)
    spmv_rows(m, np.ones(2), 0, 2, out)
    assert out.tolist() == [1e16, 2.0]


def test_spmv_huge_entry_then_empty_row():
    # empty row after a huge-magnitude row must stay exactly 0
    m = CSRMatrix(
        np.array([0, 2, 2, 4]),
        np.array([0, 1, 0, 1]),
        np.array([1e16, 1.0, 3.0, 4.0]),
        ncols=2,
    )
    y = spmv(m, np.ones(2))
    assert y.tolist() == [1e16, 0.0, 7.0]


@pytest.mark.parametrize("seed", range(5))
def test_spmv_mixed_magnitudes_rowwise_bound(seed):
    """Property: per-row error of spmv and spmv_split stays within a
    condition-number-scaled bound for magnitudes spanning 1e-8..1e16."""
    rng = np.random.default_rng(seed)
    n = 60
    mask = rng.random((n, n)) < 0.25
    mags = 10.0 ** rng.uniform(-8, 16, (n, n))
    d = mask * mags * rng.choice([-1.0, 1.0], (n, n))
    x = 10.0 ** rng.uniform(-8, 16, n) * rng.choice([-1.0, 1.0], n)
    m = CSRMatrix.from_dense(d)
    bound = 1e-10 * (np.abs(d) @ np.abs(x)) + 1e-300
    assert np.all(np.abs(spmv(m, x) - d @ x) <= bound)
    split_mask = rng.random(n) < 0.6
    local, remote = m.column_mask_split(split_mask)
    halo_cols = remote.columns_used()
    mapping = np.zeros(n, dtype=np.int64)
    mapping[halo_cols] = np.arange(halo_cols.size)
    remote_c = remote.relabel_columns(mapping, max(1, halo_cols.size))
    y = spmv_split(local, remote_c, x, x[halo_cols] if halo_cols.size else np.zeros(1))
    assert np.all(np.abs(y - d @ x) <= bound)


@pytest.mark.parametrize("nparts", [1, 2, 3, 5])
def test_halo_plan_split_kernels_reproduce_unsplit_product(nparts, rng):
    """build_halo_plan's per-rank local/remote matrices applied with the
    split kernel reproduce the unsplit product bit-for-bit on integer
    data (exact fp addition makes summation order immaterial)."""
    from repro.core import build_halo_plan
    from repro.sparse.partition import partition_matrix

    n = 48
    d = (rng.random((n, n)) < 0.2) * rng.integers(-8, 9, (n, n)).astype(float)
    A = CSRMatrix.from_dense(d)
    x = rng.integers(-4, 5, n).astype(float)
    reference = spmv(A, x)
    plan = build_halo_plan(A, partition_matrix(A, nparts, strategy="rows"))
    y = np.empty(n)
    for rank in plan.ranks:
        halo_x = (
            x[rank.halo_columns] if rank.halo_columns.size else np.zeros(1)
        )
        y[rank.row_lo : rank.row_hi] = spmv_split(
            rank.A_local, rank.A_remote, x[rank.row_lo : rank.row_hi], halo_x
        )
    assert np.array_equal(y, reference)
    assert np.array_equal(y, d @ x)
