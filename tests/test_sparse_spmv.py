"""spMVM kernels: full, accumulate, row-range, split, traffic accounting."""

import numpy as np
import pytest

from repro.model import code_balance, code_balance_split
from repro.sparse import CSRMatrix, flops, spmv, spmv_add, spmv_rows, spmv_split, spmv_traffic


@pytest.fixture()
def mat_and_x(rng):
    d = (rng.random((40, 40)) < 0.2) * rng.standard_normal((40, 40))
    return CSRMatrix.from_dense(d), d, rng.standard_normal(40)


def test_spmv_matches_dense(mat_and_x):
    m, d, x = mat_and_x
    assert np.allclose(spmv(m, x), d @ x)


def test_spmv_empty_rows():
    m = CSRMatrix(np.array([0, 0, 1, 1]), np.array([0]), np.array([3.0]), ncols=2)
    y = spmv(m, np.array([2.0, 1.0]))
    assert y.tolist() == [0.0, 6.0, 0.0]


def test_spmv_zero_matrix():
    m = CSRMatrix(np.zeros(4, dtype=np.int64), np.zeros(0, dtype=np.int64), np.zeros(0), ncols=5)
    assert np.all(spmv(m, np.ones(5)) == 0)


def test_spmv_add_accumulates(mat_and_x):
    m, d, x = mat_and_x
    out = np.ones(40)
    spmv_add(m, x, out)
    assert np.allclose(out, 1.0 + d @ x)


def test_spmv_rows_partial(mat_and_x):
    m, d, x = mat_and_x
    out = np.full(40, -7.0)
    spmv_rows(m, x, 10, 25, out)
    assert np.allclose(out[10:25], (d @ x)[10:25])
    assert np.all(out[:10] == -7.0)
    assert np.all(out[25:] == -7.0)


def test_spmv_rows_bad_range(mat_and_x):
    m, _d, x = mat_and_x
    with pytest.raises(ValueError, match="row range"):
        spmv_rows(m, x, 30, 10, np.zeros(40))


def test_spmv_split_equals_full(mat_and_x, rng):
    m, d, x = mat_and_x
    mask = rng.random(40) < 0.7
    local, remote = m.column_mask_split(mask)
    # compress the remote columns into a halo buffer, as the real code does
    halo_cols = remote.columns_used()
    mapping = np.zeros(40, dtype=np.int64)
    mapping[halo_cols] = np.arange(halo_cols.size)
    remote_compressed = remote.relabel_columns(mapping, max(1, halo_cols.size))
    y = spmv_split(local, remote_compressed, x, x[halo_cols] if halo_cols.size else np.zeros(1))
    assert np.allclose(y, d @ x)


def test_flops_two_per_nonzero(mat_and_x):
    m, _, _ = mat_and_x
    assert flops(m) == 2 * m.nnz


def test_traffic_matches_code_balance_square():
    # For a square matrix, traffic / flops must equal Eq. 1 exactly
    m = CSRMatrix.from_dense(np.eye(50) + np.diag(np.ones(49), 1))
    for kappa in (0.0, 2.5):
        b = spmv_traffic(m, kappa=kappa) / flops(m)
        assert b == pytest.approx(code_balance(m.nnzr, kappa) + (8 * 50 - 8 * m.nnz / m.nnzr) / flops(m), rel=1e-12) or True
        # direct identity: (12+k)nnz + 16n + 8n over 2nnz
        expected = ((12 + kappa) * m.nnz + 24 * m.nrows) / (2 * m.nnz)
        assert b == pytest.approx(expected)
        assert b == pytest.approx(code_balance(m.nnzr, kappa))


def test_traffic_split_matches_eq2():
    m = CSRMatrix.from_dense(np.eye(50) + np.diag(np.ones(49), 1))
    b_split = spmv_traffic(m, split=True) / flops(m)
    assert b_split == pytest.approx(code_balance_split(m.nnzr, 0.0))


def test_traffic_rejects_negative_kappa():
    m = CSRMatrix.identity(3)
    with pytest.raises(ValueError, match="kappa"):
        spmv_traffic(m, kappa=-1.0)
