"""Batched multi-RHS distributed spMVM: numerics, message counts, plan cache."""

import numpy as np
import pytest

from repro.core import (
    DistributedSpMVM,
    build_halo_plan,
    cached_halo_plan,
    distributed_spmm,
    distributed_spmv,
)
from repro.core.spmvm import SCHEMES, gather_vector, scatter_vector
from repro.matrices import random_sparse
from repro.mpilite import PerRank, run_spmd
from repro.sparse import partition_matrix


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("nranks", [1, 2, 5])
def test_distributed_block_matches_serial(random_300, rng, scheme, nranks):
    X = rng.standard_normal((300, 4))
    Y = distributed_spmm(random_300, X, nranks, scheme=scheme)
    assert Y.shape == (300, 4)
    assert np.allclose(Y, random_300.to_dense() @ X, atol=1e-11)


@pytest.mark.parametrize("k", [1, 4, 16])
def test_block_columns_bit_identical_to_single_vector(random_300, rng, k):
    X = rng.standard_normal((300, k))
    Y = distributed_spmm(random_300, X, 4, scheme="no_overlap")
    for j in range(k):
        y = distributed_spmv(random_300, X[:, j], 4, scheme="no_overlap")
        assert np.array_equal(Y[:, j], y)


def test_all_schemes_agree_with_sequential_block_product(random_300, rng):
    X = rng.standard_normal((300, 5))
    ref = random_300.to_dense() @ X
    results = [distributed_spmm(random_300, X, 4, scheme=s) for s in SCHEMES]
    for Y in results:
        assert np.allclose(Y, ref, atol=1e-11)
    # fp summation order is fixed (local part then remote), so bitwise equal
    assert np.array_equal(results[0], results[1])
    assert np.array_equal(results[0], results[2])


def test_block_on_hamiltonian(hmep_tiny, rng):
    X = rng.standard_normal((hmep_tiny.nrows, 3))
    Y = distributed_spmm(hmep_tiny, X, 6, scheme="task_mode")
    assert np.allclose(Y, hmep_tiny.to_dense() @ X, atol=1e-11)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_block_sends_one_message_per_peer_per_batch(random_300, rng, scheme):
    # the whole point of batching: k columns ride in ONE message per peer
    partition = partition_matrix(random_300, 4)
    plan = build_halo_plan(random_300, partition, with_matrices=True)
    expected = plan.total_messages()
    assert expected > 0
    X = rng.standard_normal((300, 8))

    def fn(comm, halo):
        # the router counter is global, so bracket every read with
        # barriers: between two barriers no rank is sending
        eng = DistributedSpMVM(comm, halo)
        X_local = scatter_vector(X, partition, comm.rank)
        comm.barrier()
        base = comm._router.stats["messages"]
        comm.barrier()
        Y = eng.multiply_block(X_local, scheme)
        comm.barrier()
        batched = comm._router.stats["messages"] - base
        comm.barrier()
        eng.multiply(X_local[:, 0], scheme)
        comm.barrier()
        single = comm._router.stats["messages"] - base - batched
        return Y, batched, single

    out = run_spmd(4, fn, PerRank(plan.ranks))
    pieces, batched_counts, single_counts = zip(*out)
    # every rank observed the same global totals (measured between barriers)
    assert set(batched_counts) == {expected}
    # the batch moved exactly as many messages as ONE single-vector MVM,
    # i.e. one per peer pair — not k of them
    assert set(single_counts) == {expected}
    assert np.allclose(
        gather_vector(list(pieces)), random_300.to_dense() @ X, atol=1e-11
    )


def test_multiply_block_rejects_bad_shapes(random_300):
    plan = cached_halo_plan(random_300, 2)

    def fn(comm, halo):
        eng = DistributedSpMVM(comm, halo)
        with pytest.raises(ValueError, match="X_local"):
            eng.multiply_block(np.zeros((7, 2)), "no_overlap")
        with pytest.raises(ValueError, match="X_local"):
            eng.multiply_block(np.zeros(halo.n_rows), "no_overlap")
        comm.barrier()
        return True

    assert all(run_spmd(2, fn, PerRank(plan.ranks)))


def test_distributed_spmm_repeated_iterations(random_300, rng):
    X = rng.standard_normal((300, 4))
    Y = distributed_spmm(random_300, X, 3, scheme="task_mode", iterations=3)
    assert np.allclose(Y, random_300.to_dense() @ X, atol=1e-11)


def test_distributed_spmm_rejects_vector(random_300, rng):
    with pytest.raises(ValueError, match="2-D"):
        distributed_spmm(random_300, rng.standard_normal(300), 2)


# ----------------------------------------------------------------------
# halo plan cache
# ----------------------------------------------------------------------
def test_cached_halo_plan_reuses_plan(random_300):
    p1 = cached_halo_plan(random_300, 4)
    p2 = cached_halo_plan(random_300, 4)
    assert p1 is p2
    # different partition parameters are distinct entries
    assert cached_halo_plan(random_300, 4, strategy="rows") is not p1
    assert cached_halo_plan(random_300, 5) is not p1
    assert cached_halo_plan(random_300, 4, with_matrices=False) is not p1


def test_cached_halo_plan_distinguishes_matrices():
    A = random_sparse(100, nnzr=4, seed=1)
    B = random_sparse(100, nnzr=4, seed=2)
    pa = cached_halo_plan(A, 3)
    pb = cached_halo_plan(B, 3)
    assert pa is not pb
    assert pa.nnz == A.nnz and pb.nnz == B.nnz


def test_cached_halo_plan_survives_id_reuse():
    # a dead matrix's id may be recycled; the weak reference must miss
    import gc

    A = random_sparse(50, nnzr=3, seed=7)
    plan_a = cached_halo_plan(A, 2)
    del A
    gc.collect()
    B = random_sparse(60, nnzr=3, seed=8)
    plan_b = cached_halo_plan(B, 2)
    assert plan_b is not plan_a
    assert plan_b.nrows == 60


def test_cached_plan_matches_fresh_build(random_300):
    cached = cached_halo_plan(random_300, 4)
    fresh = build_halo_plan(random_300, partition_matrix(random_300, 4), with_matrices=True)
    assert cached.total_messages() == fresh.total_messages()
    assert cached.total_comm_bytes() == fresh.total_comm_bytes()
