"""Kronecker products and sparse matmul against dense references."""

import numpy as np
import pytest

from repro.sparse import CSRMatrix, kron, kron_diag_left, kron_sum, matmul


@pytest.fixture()
def pair(rng):
    a = (rng.random((4, 5)) < 0.5) * rng.standard_normal((4, 5))
    b = (rng.random((3, 6)) < 0.5) * rng.standard_normal((3, 6))
    return a, b


def test_kron_matches_numpy(pair):
    a, b = pair
    k = kron(CSRMatrix.from_dense(a), CSRMatrix.from_dense(b))
    assert np.allclose(k.to_dense(), np.kron(a, b))


def test_kron_empty_factor():
    a = CSRMatrix.from_dense(np.zeros((2, 2)))
    b = CSRMatrix.identity(3)
    k = kron(a, b)
    assert k.shape == (6, 6)
    assert k.nnz == 0


def test_kron_diag_left_matches_full_kron(rng):
    d = rng.standard_normal(4)
    d[1] = 0.0  # must handle zero diagonal entries
    b = (rng.random((3, 3)) < 0.6) * rng.standard_normal((3, 3))
    fast = kron_diag_left(d, CSRMatrix.from_dense(b))
    ref = np.kron(np.diag(d), b)
    assert np.allclose(fast.to_dense(), ref)


def test_kron_sum(rng):
    a = rng.standard_normal((3, 3)) * (rng.random((3, 3)) < 0.7)
    b = rng.standard_normal((4, 4)) * (rng.random((4, 4)) < 0.7)
    ks = kron_sum(CSRMatrix.from_dense(a), CSRMatrix.from_dense(b))
    ref = np.kron(a, np.eye(4)) + np.kron(np.eye(3), b)
    assert np.allclose(ks.to_dense(), ref)


def test_kron_sum_requires_square():
    with pytest.raises(ValueError, match="square"):
        kron_sum(CSRMatrix.from_dense(np.ones((2, 3))), CSRMatrix.identity(2))


def test_matmul_matches_dense(pair, rng):
    a, b = pair
    c = (rng.random((5, 3)) < 0.5) * rng.standard_normal((5, 3))
    prod = matmul(CSRMatrix.from_dense(a), CSRMatrix.from_dense(c))
    assert np.allclose(prod.to_dense(), a @ c)


def test_matmul_dimension_mismatch(pair):
    a, b = pair
    with pytest.raises(ValueError, match="inner dimensions"):
        matmul(CSRMatrix.from_dense(a), CSRMatrix.from_dense(b))


def test_matmul_with_empty():
    a = CSRMatrix.from_dense(np.zeros((3, 4)))
    b = CSRMatrix.identity(4)
    assert matmul(a, b).nnz == 0


def test_matmul_chain_galerkin(rng):
    # the AMG use case: P^T A P stays symmetric for symmetric A
    a_dense = rng.standard_normal((6, 6))
    a_dense = a_dense + a_dense.T
    p_dense = (rng.random((6, 3)) < 0.6) * rng.standard_normal((6, 3))
    A = CSRMatrix.from_dense(a_dense)
    P = CSRMatrix.from_dense(p_dense)
    coarse = matmul(matmul(P.transpose(), A), P)
    assert np.allclose(coarse.to_dense(), p_dense.T @ a_dense @ p_dense)
    assert coarse.is_symmetric(tol=1e-12)
