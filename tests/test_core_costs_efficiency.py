"""Phase cost accounting and parallel-efficiency helpers."""

import numpy as np
import pytest

from repro.core import build_halo_plan, fifty_percent_point, parallel_efficiency, phase_costs
from repro.core.efficiency import ScalingSeries
from repro.matrices import random_sparse
from repro.model import code_balance, code_balance_split
from repro.sparse import partition_matrix


@pytest.fixture(scope="module")
def halo():
    A = random_sparse(200, nnzr=8, seed=4)
    plan = build_halo_plan(A, partition_matrix(A, 4), with_matrices=False)
    return plan.ranks[1]


def test_split_total_equals_full_plus_extra_result_write(halo):
    c = phase_costs(halo, kappa=0.0)
    assert c.split_total == pytest.approx(c.full_spmv + 16.0 * halo.n_rows)


def test_gather_cost_proportional_to_send_elements(halo):
    c = phase_costs(halo)
    assert c.gather == 16.0 * halo.n_send_elements


def test_kappa_only_charged_once(halo):
    c0 = phase_costs(halo, kappa=0.0)
    c2 = phase_costs(halo, kappa=2.0)
    assert c2.full_spmv - c0.full_spmv == pytest.approx(2.0 * halo.nnz)
    assert c2.local_spmv - c0.local_spmv == pytest.approx(2.0 * halo.nnz_local)
    assert c2.remote_spmv == c0.remote_spmv  # halo buffer is cache-resident


def test_costs_reduce_to_code_balance_without_communication():
    # a diagonal-only rank (no halo) must reproduce Eq. 1 / Eq. 2 exactly
    A = random_sparse(100, nnzr=5, seed=1)
    plan = build_halo_plan(A, partition_matrix(A, 1), with_matrices=False)
    rh = plan.ranks[0]
    c = phase_costs(rh, kappa=1.5)
    flops = 2.0 * rh.nnz
    assert c.full_spmv / flops == pytest.approx(code_balance(A.nnzr, 1.5))
    assert c.split_total / flops == pytest.approx(code_balance_split(A.nnzr, 1.5))


def test_negative_kappa_rejected(halo):
    with pytest.raises(ValueError):
        phase_costs(halo, kappa=-0.1)


# ----------------------------------------------------------------------
# efficiency
# ----------------------------------------------------------------------
def test_parallel_efficiency():
    assert parallel_efficiency(10.0, 2, 5.0) == pytest.approx(1.0)
    assert parallel_efficiency(5.0, 2, 5.0) == pytest.approx(0.5)
    with pytest.raises(ValueError):
        parallel_efficiency(1.0, 0, 5.0)


def test_fifty_percent_point_interpolates():
    nodes = [1, 2, 4, 8]
    perf = [5.0, 10.0, 16.0, 18.0]  # eff: 1.0, 1.0, 0.8, 0.45
    fp = fifty_percent_point(nodes, perf, 5.0)
    assert 4.0 < fp < 8.0


def test_fifty_percent_point_none_when_efficient():
    fp = fifty_percent_point([1, 2, 4], [5.0, 9.9, 19.0], 5.0)
    assert fp is None


def test_fifty_percent_point_first_point_below():
    fp = fifty_percent_point([4, 8], [8.0, 9.0], 5.0)  # already 0.4 at 4 nodes
    assert fp == 4.0


def test_scaling_series():
    s = ScalingSeries("x", [], [])
    s.add(1, 5.0)
    s.add(4, 12.0)
    assert s.efficiency(5.0) == [pytest.approx(1.0), pytest.approx(0.6)]
    assert s.fifty_percent(5.0) is None
    s.add(8, 16.0)  # eff 0.4
    assert s.fifty_percent(5.0) is not None
