"""Poisson generators: structured FD and the unstructured car-geometry FV."""

import numpy as np
import pytest

from repro.matrices import (
    CarGeometry,
    build_samg_like,
    car_point_cloud,
    fv_laplacian,
    poisson_1d,
    poisson_2d,
    poisson_3d,
)
from repro.sparse import bandwidth


def test_poisson_1d_structure():
    A = poisson_1d(5)
    d = A.to_dense()
    assert np.allclose(np.diag(d), 2.0)
    assert np.allclose(np.diag(d, 1), -1.0)
    assert A.is_symmetric()


def test_poisson_2d_row_sums():
    A = poisson_2d(4, 5)
    assert A.shape == (20, 20)
    # interior rows sum to 0, boundary rows positive (Dirichlet)
    sums = A.to_dense().sum(axis=1)
    assert np.all(sums >= -1e-12)
    assert A.is_symmetric()


def test_poisson_2d_eigenvalues_known():
    n = 6
    A = poisson_2d(n)
    w = np.linalg.eigvalsh(A.to_dense())
    expected_min = 2 * (1 - np.cos(np.pi / (n + 1))) * 2
    assert w[0] == pytest.approx(expected_min, rel=1e-10)


def test_poisson_3d_nnzr_approaches_seven():
    A = poisson_3d(8)
    assert 6.0 < A.nnzr <= 7.0
    assert A.is_symmetric()


def test_car_geometry_contains_sanity():
    geo = CarGeometry()
    pts = np.array(
        [
            [2.0, 0.8, 0.8],   # middle of the body
            [2.0, 0.8, 1.5],   # cabin
            [2.0, 0.8, 5.0],   # far above: outside
            [-1.0, 0.8, 0.8],  # before the nose: outside
            [0.72, 0.1, 0.3],  # front wheel region
        ]
    )
    inside = geo.contains(pts)
    assert inside.tolist() == [True, True, False, False, True]


def test_car_point_cloud_quasi_uniform():
    pts, h = car_point_cloud(4000, seed=0)
    assert pts.shape[1] == 3
    assert 2000 < pts.shape[0] < 8000  # target is approximate
    assert h > 0
    # lexicographic-ish ordering: x coordinates must be non-decreasing
    # per grid column blocks; check the global trend via correlation
    assert np.corrcoef(np.arange(pts.shape[0]), pts[:, 0])[0, 1] > 0.9


def test_fv_laplacian_spd(samg_tiny):
    A = samg_tiny
    assert A.is_symmetric(tol=1e-10)
    # positive definite: Cholesky succeeds
    np.linalg.cholesky(A.to_dense())


def test_fv_laplacian_degree_cap():
    pts, h = car_point_cloud(1500, seed=2)
    A = fv_laplacian(pts, 1.8 * h, max_neighbors=8)
    assert int(A.row_nnz().max()) <= 9  # 8 neighbours + diagonal


def test_fv_laplacian_needs_edges():
    pts, h = car_point_cloud(500, seed=0)
    with pytest.raises(ValueError, match="no edges"):
        fv_laplacian(pts, 1e-9)


def test_samg_like_nnzr_near_seven():
    A = build_samg_like(20_000, seed=0)
    assert 6.0 < A.nnzr < 8.0  # the paper's Nnzr ~ 7


def test_samg_like_banded(samg_tiny):
    # lexicographic numbering keeps the band narrow relative to dimension
    assert bandwidth(samg_tiny) < samg_tiny.nrows / 4
