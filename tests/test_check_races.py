"""Race analysis unit tests on hand-built histories (no threads involved)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.check.races import analyze_races
from repro.check.recorder import RecvEvent, SendEvent
from repro.check.vclock import vc_concurrent, vc_leq, vc_merge, vc_tick, vc_tick_merge

ANY = -1

_clock = st.lists(st.integers(min_value=0, max_value=50), min_size=3, max_size=3).map(tuple)


@given(a=_clock, b=_clock, rank=st.integers(min_value=0, max_value=2))
def test_vc_tick_merge_equals_merge_of_tick(a, b, rank):
    assert vc_tick_merge(a, rank, b) == vc_merge(vc_tick(a, rank), b)


@given(a=_clock, b=_clock)
def test_vc_concurrency_is_symmetric_and_irreflexive(a, b):
    assert vc_concurrent(a, b) == vc_concurrent(b, a)
    assert not vc_concurrent(a, a)
    if vc_leq(a, b) or vc_leq(b, a):
        assert not vc_concurrent(a, b)


def _send(eid, src, dst, tag, vc):
    return SendEvent(eid=eid, src=src, dst=dst, tag=tag, nbytes=8, vc=tuple(vc))


def _recv(eid, rank, req_src, req_tag, send):
    return RecvEvent(eid=eid, rank=rank, req_src=req_src, req_tag=req_tag, send=send)


def test_concurrent_wildcard_candidates_are_a_confirmed_race():
    a = _send(0, 1, 0, 5, (0, 1, 0))
    b = _send(1, 2, 0, 5, (0, 0, 1))  # concurrent with a
    recvs = [_recv(2, 0, ANY, 5, a), _recv(3, 0, ANY, 5, b)]
    findings = analyze_races([a, b], recvs, 3)
    assert len(findings) == 1
    f = findings[0]
    assert f.kind == "message-race"
    assert f.details["matched"] == (1, 5, 0)
    assert f.details["alternative"] == (2, 5, 1)
    # the replay rematches the displaced message to the second receive
    assert f.details["permuted_matching"] == [(2, (2, 5, 1)), (3, (1, 5, 0))]


def test_causally_ordered_candidates_do_not_race():
    a = _send(0, 1, 0, 5, (0, 1, 0))
    # b causally after a (rank 2 heard about a before sending)
    b = _send(1, 2, 0, 5, (1, 1, 1))
    recvs = [_recv(2, 0, ANY, 5, a), _recv(3, 0, ANY, 5, b)]
    assert analyze_races([a, b], recvs, 3) == []


def test_non_wildcard_receives_never_race():
    a = _send(0, 1, 0, 5, (0, 1, 0))
    b = _send(1, 2, 0, 5, (0, 0, 1))
    recvs = [_recv(2, 0, 1, 5, a), _recv(3, 0, 2, 5, b)]
    assert analyze_races([a, b], recvs, 3) == []


def test_same_channel_fifo_order_is_not_a_race():
    # two sends from the same rank on the same tag: FIFO fixes the order,
    # and the sender's own clock orders them causally anyway
    a = _send(0, 1, 0, 5, (0, 1, 0))
    b = _send(1, 1, 0, 5, (0, 2, 0))
    recvs = [_recv(2, 0, ANY, 5, a), _recv(3, 0, ANY, 5, b)]
    assert analyze_races([a, b], recvs, 2) == []


def test_infeasible_permutation_is_dismissed():
    # the wildcard receive could have taken c (tag 6), but then the next
    # receive demands tag 6 again and nothing is left: replay fails
    a = _send(0, 1, 0, 5, (0, 1, 0))
    c = _send(1, 2, 0, 6, (0, 0, 1))
    recvs = [_recv(2, 0, ANY, ANY, a), _recv(3, 0, 2, 6, c)]
    assert analyze_races([a, c], recvs, 3) == []


def test_any_tag_race_across_tags():
    # two different senders on different tags racing for an ANY/ANY receive
    a = _send(0, 1, 0, 5, (0, 1, 0))
    b = _send(1, 2, 0, 6, (0, 0, 1))
    recvs = [_recv(2, 0, ANY, ANY, a), _recv(3, 0, ANY, ANY, b)]
    findings = analyze_races([a, b], recvs, 3)
    assert len(findings) == 1
    assert findings[0].details["alternative"] == (2, 6, 1)


def test_consumed_candidates_are_not_eligible():
    # b was already consumed by an earlier receive: only a remains for
    # the wildcard, so there is nothing to race with
    a = _send(0, 1, 0, 5, (0, 1, 0))
    b = _send(1, 2, 0, 5, (0, 0, 1))
    recvs = [_recv(2, 0, 2, 5, b), _recv(3, 0, ANY, 5, a)]
    assert analyze_races([a, b], recvs, 3) == []
