"""The pluggable kernel registry and its formats (repro.sparse.registry).

Three layers of coverage:

* registry mechanics — lookup, defaults, registration/unregistration,
  the weak operator cache, and end-to-end pluggability (a scipy-backed
  kernel registered at runtime works in the distributed engine);
* the SELL-C-sigma format — structural invariants (permutation,
  padding accounting, chunk shapes) and its kernels' equivalence;
* hypothesis property tests that run against *every* registered
  kernel/format: random ragged matrices (empty rows included) and
  mixed-magnitude values, k ∈ {1, 4, 16}, asserting equivalence to the
  CSR reference — bit-identical for ``exact`` kernels, tight relative
  tolerance otherwise.  A kernel registered tomorrow is picked up by
  these tests automatically.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spmvm import distributed_spmm, distributed_spmv
from repro.sparse import (
    COOMatrix,
    CSRMatrix,
    KernelSpec,
    SellMatrix,
    available_kernels,
    build_operator,
    get_kernel,
    register_kernel,
    sell_spmm,
    sell_spmv,
    spmm,
    spmv,
    unregister_kernel,
)

_DIM = st.integers(min_value=1, max_value=30)
_SEED = st.integers(min_value=0, max_value=2**31 - 1)


def _random_csr(nrows: int, ncols: int, nnz: int, seed: int, mixed: bool) -> CSRMatrix:
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, nrows, nnz)
    cols = rng.integers(0, ncols, nnz)
    vals = rng.standard_normal(nnz)
    if mixed:
        vals *= 10.0 ** rng.integers(-8, 9, nnz)
    return COOMatrix(nrows, ncols, rows, cols, vals).to_csr()


def _assert_equivalent(spec, got: np.ndarray, ref: np.ndarray) -> None:
    if spec.exact:
        assert np.array_equal(got, ref), f"{spec.key} is not bit-identical"
    else:
        scale = np.maximum(np.abs(ref), 1e-300)
        assert np.all(np.abs(got - ref) <= 1e-10 * scale + 1e-300), (
            f"{spec.key} exceeds tolerance vs the CSR reference"
        )


# ------------------------------------------------------------ registry


def test_builtin_kernels_registered():
    keys = available_kernels()
    assert "csr/reference" in keys
    assert "sell/matmul" in keys
    assert get_kernel().key == "csr/reference"  # the default
    assert get_kernel("csr").key == "csr/reference"
    assert get_kernel("sell").key == "sell/matmul"  # bare format → default variant
    spec = get_kernel("sell/matmul")
    assert get_kernel(spec) is spec  # spec passthrough


def test_unknown_kernel_lists_available():
    with pytest.raises(ValueError, match="csr/reference"):
        get_kernel("bogus")
    with pytest.raises(ValueError, match="unknown kernel"):
        get_kernel("csr/bogus-variant")
    with pytest.raises(ValueError, match="unknown kernel"):
        unregister_kernel("bogus/none")


def test_reference_kernel_cannot_be_unregistered():
    with pytest.raises(ValueError, match="cannot be unregistered"):
        unregister_kernel("csr/reference")


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError, match="already registered"):
        register_kernel(get_kernel("sell/matmul"))


def test_operator_cache_is_per_matrix_and_weak(random_300):
    spec = get_kernel("sell")
    op = build_operator(spec, random_300)
    assert isinstance(op, SellMatrix)
    assert build_operator(spec, random_300) is op  # memoised
    assert build_operator("sell", random_300) is op  # name or spec, same cache
    other = CSRMatrix.identity(5)
    assert build_operator(spec, other) is not op
    # csr/reference 'builds' to the matrix itself — no copy, trivially cached
    assert build_operator("csr", random_300) is random_300


def test_runtime_registered_scipy_kernel_end_to_end(random_300, rng):
    """Pluggability, demonstrated: a scipy-backed kernel registered at
    runtime dispatches through the engine with no call-site changes.
    (scipy is a test-only dependency; src/ never imports it.)"""
    scipy_sparse = pytest.importorskip("scipy.sparse")

    def build(A):
        return scipy_sparse.csr_matrix(
            (A.val, A.col_idx, A.row_ptr), shape=(A.nrows, A.ncols)
        )

    def sp_spmv(S, x, out=None):
        y = S @ x
        if out is not None:
            out[:] = y
            return out
        return y

    def sp_add(S, x, out):
        out += S @ x
        return out

    spec = KernelSpec(
        format="scipy", variant="csr", description="scipy.sparse test kernel",
        exact=False, build=build,
        spmv=sp_spmv, spmv_add=sp_add, spmm=sp_spmv, spmm_add=sp_add,
    )
    register_kernel(spec)
    try:
        x = rng.standard_normal(random_300.ncols)
        X = rng.standard_normal((random_300.ncols, 4))
        assert np.allclose(
            distributed_spmv(random_300, x, 2, kernel="scipy"),
            spmv(random_300, x),
        )
        assert np.allclose(
            distributed_spmm(random_300, X, 2, kernel="scipy/csr"),
            spmm(random_300, X),
        )
    finally:
        unregister_kernel("scipy/csr")
    with pytest.raises(ValueError, match="unknown kernel"):
        get_kernel("scipy")


# ---------------------------------------------------------------- SELL


def test_sell_structure(random_300):
    S = SellMatrix.from_csr(random_300, chunk=64)
    # the sort is a permutation, rows sorted by descending length
    perm = np.concatenate(S.chunk_rows)
    assert np.array_equal(np.sort(perm), np.arange(random_300.nrows))
    lens = np.diff(random_300.row_ptr)
    assert np.array_equal(lens[perm], np.sort(lens)[::-1])
    # padding accounting
    assert S.nnz == random_300.nnz
    assert S.nnz_stored >= S.nnz
    assert S.pad_factor == pytest.approx(S.nnz_stored / S.nnz)
    # chunk shapes: at most `chunk` rows, padded to the chunk max length
    for rows, cc, vv in zip(S.chunk_rows, S.chunk_cols, S.chunk_vals):
        assert rows.size <= 64
        assert cc.shape == vv.shape == (rows.size, int(lens[rows].max()))


def test_sell_sigma_windows_limit_sort_scope(random_300):
    S = SellMatrix.from_csr(random_300, chunk=32, sigma=32)
    lens = np.diff(random_300.row_ptr)
    for rows in S.chunk_rows:
        # sigma == chunk: every chunk's rows come from one 32-row window
        assert rows.max() - rows.min() < 32
        assert np.array_equal(lens[rows], np.sort(lens[rows])[::-1])
    # sigma=1 preserves the original row order entirely
    S1 = SellMatrix.from_csr(random_300, chunk=32, sigma=1)
    assert np.array_equal(np.concatenate(S1.chunk_rows), np.arange(random_300.nrows))
    # global sort pads no more than any windowed sort
    assert SellMatrix.from_csr(random_300, chunk=32).pad_factor <= S.pad_factor


def test_sell_validation(random_300):
    with pytest.raises(ValueError, match="chunk"):
        SellMatrix.from_csr(random_300, chunk=0)
    with pytest.raises(ValueError, match="sigma"):
        SellMatrix.from_csr(random_300, chunk=8, sigma=0)
    S = SellMatrix.from_csr(random_300)
    with pytest.raises(ValueError, match="x must be a vector"):
        sell_spmv(S, np.ones(random_300.ncols + 1))
    with pytest.raises(ValueError, match="block"):
        sell_spmm(S, np.ones(random_300.ncols))
    with pytest.raises(ValueError, match="out must have dtype float64"):
        sell_spmv(S, np.ones(random_300.ncols), out=np.zeros(300, dtype=np.float32))


# ------------------------------- properties, against EVERY registered kernel


@settings(max_examples=30, deadline=None)
@given(
    nrows=_DIM, ncols=_DIM, nnz=st.integers(0, 150), seed=_SEED,
    mixed=st.booleans(), k=st.sampled_from((1, 4, 16)),
)
def test_every_registered_kernel_matches_csr_reference(
    nrows, ncols, nnz, seed, mixed, k
):
    """Random ragged/empty-row matrices, mixed magnitudes, k ∈ {1,4,16}:
    every registered kernel agrees with the CSR reference kernels."""
    A = _random_csr(nrows, ncols, nnz, seed, mixed)
    rng = np.random.default_rng(seed + 1)
    x = rng.standard_normal(ncols)
    X = rng.standard_normal((ncols, k))
    ref_v = spmv(A, x)
    ref_m = spmm(A, X)
    for key in available_kernels():
        spec = get_kernel(key)
        op = build_operator(spec, A)
        _assert_equivalent(spec, spec.spmv(op, x), ref_v)
        _assert_equivalent(spec, spec.spmm(op, X), ref_m)
        # accumulate kernels, on a non-trivial starting value
        base_v = rng.standard_normal(nrows)
        base_m = rng.standard_normal((nrows, k))
        _assert_equivalent(spec, spec.spmv_add(op, x, base_v.copy()), base_v + ref_v)
        _assert_equivalent(spec, spec.spmm_add(op, X, base_m.copy()), base_m + ref_m)


@settings(max_examples=20, deadline=None)
@given(n=_DIM, nnz=st.integers(0, 120), seed=_SEED, chunk=st.integers(1, 40))
def test_sell_roundtrip_any_chunk_size(n, nnz, seed, chunk):
    A = _random_csr(n, n, nnz, seed, mixed=False)
    S = SellMatrix.from_csr(A, chunk=chunk)
    x = np.random.default_rng(seed).standard_normal(n)
    ref = spmv(A, x)
    got = sell_spmv(S, x)
    scale = np.maximum(np.abs(ref), 1e-300)
    assert np.all(np.abs(got - ref) <= 1e-10 * scale + 1e-300)


@pytest.mark.parametrize("kernel", ["sell", "sell/matmul"])
def test_distributed_engine_with_sell_kernel(random_300, rng, kernel):
    x = rng.standard_normal(random_300.ncols)
    X = rng.standard_normal((random_300.ncols, 4))
    ref_v = distributed_spmv(random_300, x, 3)
    ref_m = distributed_spmm(random_300, X, 3)
    assert np.allclose(
        distributed_spmv(random_300, x, 3, kernel=kernel), ref_v,
        rtol=1e-10, atol=1e-13,
    )
    assert np.allclose(
        distributed_spmm(random_300, X, 3, kernel=kernel), ref_m,
        rtol=1e-10, atol=1e-13,
    )


def test_distributed_engine_rejects_unknown_kernel(random_300, rng):
    with pytest.raises(ValueError, match="unknown kernel"):
        distributed_spmv(random_300, rng.standard_normal(random_300.ncols), 2,
                         kernel="bogus")
