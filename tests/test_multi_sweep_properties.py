"""Property tests for multi-sweep programs + s-step CG validation.

Hypothesis half: for EVERY (scheme, n_sweeps, pipeline, block_k,
lowering) combination,

* :func:`build_multi_sweep` lints clean (the double-buffer hoisting
  invariants of DESIGN.md §15 hold by construction),
* every sweep performs exactly the single-sweep work-op multiset —
  pipelining may reorder communication and change barrier pacing, but
  never add or drop per-sweep work,
* when pipelined, sweep ``s+1``'s POST_RECVS really precedes sweep
  ``s``'s halo-consuming kernel.

s-step CG half: :func:`repro.solvers.sstep_cg` matches classic CG on
SPD systems (serial and SPMD), spends strictly fewer collectives per
iteration (count-asserted on operator counters), and rejects
indefinite operators.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_halo_plan, scatter_vector
from repro.matrices import poisson_2d
from repro.mpilite import PerRank, run_spmd
from repro.program import (
    WORK_OPS,
    build_multi_sweep,
    build_sweep,
    lint_multi_sweep_program,
)
from repro.solvers import (
    DistributedOperator,
    SerialOperator,
    conjugate_gradient,
    sstep_cg,
)
from repro.sparse import CSRMatrix, partition_matrix

SCHEMES = ("no_overlap", "naive_overlap", "task_mode")

_scheme = st.sampled_from(SCHEMES)
_n_sweeps = st.integers(min_value=1, max_value=6)
_block_k = st.integers(min_value=1, max_value=3)
_lowering = st.sampled_from(["classic", "plan"])
_pipeline = st.booleans()


def _work_multiset(program):
    """Sorted WORK_OPS multiset of a single-sweep program."""
    return tuple(sorted(
        op.kind for op, _inside in program.walk() if op.kind in WORK_OPS
    ))


@settings(max_examples=60, deadline=None)
@given(scheme=_scheme, n_sweeps=_n_sweeps, pipeline=_pipeline,
       block_k=_block_k, lowering=_lowering)
def test_build_multi_sweep_lints_clean(scheme, n_sweeps, pipeline, block_k, lowering):
    program = build_multi_sweep(
        scheme, n_sweeps, pipeline=pipeline, block_k=block_k, comm_plan=lowering,
    )
    assert lint_multi_sweep_program(program) == []


@settings(max_examples=60, deadline=None)
@given(scheme=_scheme, n_sweeps=_n_sweeps, pipeline=_pipeline,
       block_k=_block_k, lowering=_lowering)
def test_every_sweep_does_single_sweep_work(scheme, n_sweeps, pipeline, block_k, lowering):
    program = build_multi_sweep(
        scheme, n_sweeps, pipeline=pipeline, block_k=block_k, comm_plan=lowering,
    )
    single = _work_multiset(build_sweep(scheme, block_k=block_k, comm_plan=lowering))
    for s in range(n_sweeps):
        assert program.sweep_work_ops(s) == single
    # no ops tagged outside the sweep range
    assert all(0 <= op.sweep < n_sweeps for op, _inside in program.walk())


@settings(max_examples=40, deadline=None)
@given(scheme=_scheme, n_sweeps=st.integers(min_value=2, max_value=6),
       block_k=_block_k)
def test_pipelined_recvs_hoisted_across_sweeps(scheme, n_sweeps, block_k):
    sig = build_multi_sweep(scheme, n_sweeps, pipeline=True, block_k=block_k).signature()
    tail = "FULL_SPMVM" if scheme == "no_overlap" else "REMOTE_SPMVM"
    for s in range(n_sweeps - 1):
        assert sig.index(f"s{s + 1}:POST_RECVS") < sig.index(f"s{s}:{tail}")


# ----------------------------------------------------------------------
# s-step CG
# ----------------------------------------------------------------------
def test_sstep_cg_solves_poisson(rng):
    A = poisson_2d(15)
    x_true = rng.standard_normal(A.nrows)
    b = A @ x_true
    res = sstep_cg(SerialOperator(A), b, tol=1e-10, max_iter=2000)
    assert res.converged
    assert np.allclose(res.x, x_true, atol=1e-6)
    assert res.residual_history[-1] <= 1e-10
    # the recurrence residual drifts slightly from the true residual
    # (the classic s-step trade-off) — but stays well within a few
    # orders of the target
    assert res.residual_norm <= 1e-8


def test_sstep_cg_matches_classic_cg(rng):
    A = poisson_2d(12)
    b = rng.standard_normal(A.nrows)
    op = SerialOperator(A)
    classic = conjugate_gradient(op, b, tol=1e-9, max_iter=2000)
    sstep = sstep_cg(op, b, tol=1e-9, max_iter=2000)
    assert classic.converged and sstep.converged
    assert np.allclose(sstep.x, classic.x, atol=1e-7)
    # same Krylov space per outer step: iteration counts agree to the
    # 2-iteration granularity of the fused convergence check
    assert abs(sstep.iterations - classic.iterations) <= 2


def test_sstep_cg_zero_rhs():
    A = poisson_2d(5)
    res = sstep_cg(SerialOperator(A), np.zeros(A.nrows))
    assert res.converged and res.iterations == 0
    assert np.all(res.x == 0)


def test_sstep_cg_rejects_indefinite_operator(rng):
    d = np.diag(np.concatenate([np.ones(5), -np.ones(5)]))
    A = CSRMatrix.from_dense(d)
    b = rng.standard_normal(10)
    with pytest.raises(ValueError, match="not positive definite"):
        sstep_cg(SerialOperator(A), b, max_iter=50)


@pytest.mark.parametrize("pipeline", [True, False])
def test_distributed_sstep_cg_matches_serial(rng, pipeline):
    A = poisson_2d(13)
    b = rng.standard_normal(A.nrows)
    serial = sstep_cg(SerialOperator(A), b, tol=1e-9, max_iter=2000)
    partition = partition_matrix(A, 4)
    plan = build_halo_plan(A, partition, with_matrices=True)

    def fn(comm, halo):
        op = DistributedOperator(comm, halo)
        res = sstep_cg(op, scatter_vector(b, partition, comm.rank),
                       tol=1e-9, max_iter=2000, pipeline=pipeline)
        return res.x, res.iterations, res.converged

    out = run_spmd(4, fn, PerRank(plan.ranks))
    assert all(converged for _x, _it, converged in out)
    x = np.concatenate([x for x, _it, _conv in out])
    assert np.allclose(x, serial.x, atol=1e-7)
    assert all(it == serial.iterations for _x, it, _conv in out)


def test_sstep_cg_fewer_collectives_than_classic(rng):
    """The communication-avoiding claim, count-asserted on counters."""
    A = poisson_2d(13)
    b = rng.standard_normal(A.nrows)
    partition = partition_matrix(A, 2)
    plan = build_halo_plan(A, partition, with_matrices=True)

    def fn(comm, halo):
        b_local = scatter_vector(b, partition, comm.rank)
        classic_op = DistributedOperator(comm, halo)
        classic = conjugate_gradient(classic_op, b_local, tol=1e-8, max_iter=3000)
        sstep_op = DistributedOperator(comm, halo)
        sstep = sstep_cg(sstep_op, b_local, tol=1e-8, max_iter=3000)
        assert classic.converged and sstep.converged
        return (classic.iterations, dict(classic_op.counters),
                sstep.iterations, dict(sstep_op.counters))

    for classic_it, classic_ct, sstep_it, sstep_ct in run_spmd(2, fn, PerRank(plan.ranks)):
        classic_red = classic_ct["reductions"] / classic_it
        sstep_red = sstep_ct["reductions"] / sstep_it
        assert sstep_red < classic_red
        # total posted messages per iteration drop too: the fused
        # allreduce amortises the collective traffic
        assert (sstep_ct["messages"] / sstep_it
                < classic_ct["messages"] / classic_it)
