"""Dynamic-prong detectors: every seeded bug must fire, with provenance."""

import numpy as np
import pytest

from repro.check import (
    CommRecorder,
    DeadlockError,
    run_checked,
    run_seed_bug,
)
from repro.mpilite import run_spmd
from repro.mpilite.router import ANY_SOURCE


# ----------------------------------------------------------------------
# deadlocks
# ----------------------------------------------------------------------
def test_recv_cycle_is_diagnosed_with_both_ranks_and_tags():
    fired, report = run_seed_bug("deadlock-cycle")
    assert fired
    (finding,) = report.by_kind("deadlock")
    assert finding.ranks == (0, 1)
    assert "recv(source=1, tag=1)" in finding.message
    assert "recv(source=0, tag=1)" in finding.message
    assert finding.details["cycle"] in ([0, 1], [1, 0])


def test_deadlock_raises_immediately_inside_the_blocked_rank():
    def fn(comm):
        peer = 1 - comm.rank
        comm.recv(peer, tag=4)

    rec = CommRecorder(2)
    # the world fails fast with DeadlockError, long before the 30s timeout
    with pytest.raises(RuntimeError, match="DeadlockError"):
        run_spmd(2, fn, timeout=30.0, recv_timeout=30.0, recorder=rec)
    assert rec.finalize().by_kind("deadlock")


def test_collective_watchdog_names_the_finished_rank():
    fired, report = run_seed_bug("collective-stall")
    assert fired
    (finding,) = report.by_kind("deadlock")
    assert finding.ranks == (0, 1)
    assert "collective generation 0" in finding.message
    assert "2 already finished" in finding.message
    assert finding.details["finished"] == [2]


def test_recv_from_finished_rank_is_a_deadlock():
    def fn(comm):
        if comm.rank == 0:
            comm.recv(1, tag=3)  # rank 1 exits without ever sending

    _results, report = run_checked(2, fn, recv_timeout=20.0, timeout=30.0)
    (finding,) = report.by_kind("deadlock")
    assert 0 in finding.ranks
    assert "1 already finished" in finding.message


def test_blocked_rank_with_pending_message_is_not_deadlocked():
    # a wait-for edge is suppressed while a matching message is in flight
    def fn(comm):
        if comm.rank == 0:
            comm.send("x", 1, tag=2)
            comm.recv(1, tag=2)
        else:
            assert comm.recv(0, tag=2) == "x"
            comm.send("y", 0, tag=2)

    results, report = run_checked(2, fn, recv_timeout=10.0)
    assert results is not None
    assert report.ok, report.render()


def test_three_rank_cycle():
    def fn(comm):
        comm.recv((comm.rank + 1) % 3, tag=0)

    _results, report = run_checked(3, fn, recv_timeout=20.0, timeout=30.0)
    (finding,) = report.by_kind("deadlock")
    assert finding.ranks == (0, 1, 2)
    assert len(finding.details["cycle"]) == 3


def test_wildcard_mutual_wait_is_diagnosed():
    # both ranks wildcard-recv with nothing in flight: OR-wait deadlock
    def fn(comm):
        comm.recv(ANY_SOURCE, tag=0)

    _results, report = run_checked(2, fn, recv_timeout=20.0, timeout=30.0)
    (finding,) = report.by_kind("deadlock")
    assert finding.ranks == (0, 1)
    assert "ANY_SOURCE" in finding.message


# ----------------------------------------------------------------------
# message races
# ----------------------------------------------------------------------
def test_wildcard_race_reports_both_senders_and_the_permutation():
    fired, report = run_seed_bug("message-race")
    assert fired
    (finding,) = report.by_kind("message-race")
    assert finding.ranks[0] == 0  # the receiver
    assert set(finding.ranks[1:]) == {1, 2}  # the racing senders
    assert "ANY_SOURCE" in finding.message
    assert len(finding.details["permuted_matching"]) == 2


def test_single_sender_wildcard_is_not_a_race():
    def fn(comm):
        if comm.rank == 0:
            return [comm.recv(ANY_SOURCE, tag=5), comm.recv(ANY_SOURCE, tag=5)]
        comm.send(comm.rank, 0, tag=5)
        comm.send(comm.rank, 0, tag=5)
        return None

    results, report = run_checked(2, fn, recv_timeout=10.0)
    assert results is not None
    assert report.ok, report.render()  # same-channel FIFO fixes the order


def test_causally_ordered_sends_do_not_race():
    # rank 1 sends; rank 0 relays a token to rank 2; rank 2 sends only
    # after the token, so its send happens-after rank 1's: order is fixed
    def fn(comm):
        if comm.rank == 0:
            first = comm.recv(1, tag=7)
            comm.send("token", 2, tag=1)
            second = comm.recv(ANY_SOURCE, tag=7)
            return [first, second]
        if comm.rank == 1:
            comm.send("from1", 0, tag=7)
        else:
            comm.recv(0, tag=1)
            comm.send("from2", 0, tag=7)
        return None

    results, report = run_checked(3, fn, recv_timeout=10.0)
    assert results is not None
    assert report.ok, report.render()


# ----------------------------------------------------------------------
# buffer hazards
# ----------------------------------------------------------------------
def test_buffer_hazards_name_the_operation_and_peer():
    fired, report = run_seed_bug("buffer-hazard")
    assert fired
    findings = report.by_kind("buffer-hazard")
    assert len(findings) == 2
    ops = {f.details["op"] for f in findings}
    assert ops == {"Isend", "Irecv"}
    for f in findings:
        assert f.ranks == (0,)
        assert f.details["peer"] == 1


def test_untouched_buffers_are_clean():
    def fn(comm):
        if comm.rank == 0:
            out = np.arange(4.0)
            req = comm.Isend(out, 1, tag=2)
            req.wait()
        else:
            buf = np.empty(4)
            comm.Irecv(buf, 0, tag=2).wait()
            assert np.all(buf == np.arange(4.0))

    results, report = run_checked(2, fn, recv_timeout=10.0)
    assert results is not None
    assert report.ok, report.render()


# ----------------------------------------------------------------------
# leaks and unconsumed messages
# ----------------------------------------------------------------------
def test_leaked_request_and_unconsumed_messages_at_teardown():
    fired, report = run_seed_bug("leaked-request")
    assert fired
    (leak,) = report.by_kind("leaked-request")
    assert leak.ranks == (1,)
    assert "irecv(peer=0, tag=8)" in leak.message
    unconsumed = report.by_kind("unconsumed-message")
    assert {f.details["tag"] for f in unconsumed} == {8, 9}
    assert not report.by_kind("deadlock")


def test_completed_requests_do_not_leak():
    def fn(comm):
        if comm.rank == 0:
            comm.send("a", 1, tag=8)
        else:
            req = comm.irecv(0, tag=8)
            while not req.test():
                pass
            assert req.wait() == "a"

    results, report = run_checked(2, fn, recv_timeout=10.0)
    assert results is not None
    assert report.ok, report.render()


# ----------------------------------------------------------------------
# recorder plumbing
# ----------------------------------------------------------------------
def test_findings_become_trace_events():
    from repro.frame.trace import TraceRecorder

    trace = TraceRecorder()

    def fn(comm):
        comm.recv(1 - comm.rank, tag=1)

    run_checked(2, fn, recv_timeout=20.0, timeout=30.0, trace=trace)
    check_events = [e for e in trace.events if e.category == "check"]
    assert check_events
    assert check_events[0].name == "check_finding"
    assert check_events[0].args["kind"] == "deadlock"


def test_deadlock_error_is_a_runtime_error():
    assert issubclass(DeadlockError, RuntimeError)
