"""Distributed spMVM executing on mpilite: numerical integration tests."""

import numpy as np
import pytest

from repro.core import DistributedSpMVM, build_halo_plan, distributed_spmv
from repro.core.spmvm import SCHEMES, gather_vector, scatter_vector
from repro.matrices import random_sparse
from repro.mpilite import PerRank, run_spmd
from repro.sparse import partition_matrix, partition_rows_balanced


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("nranks", [1, 2, 5])
def test_distributed_matches_serial(random_300, rng, scheme, nranks):
    x = rng.standard_normal(300)
    y = distributed_spmv(random_300, x, nranks, scheme=scheme)
    assert np.allclose(y, random_300 @ x, atol=1e-11)


def test_distributed_on_hamiltonian(hmep_tiny, rng):
    x = rng.standard_normal(hmep_tiny.nrows)
    y = distributed_spmv(hmep_tiny, x, 6, scheme="task_mode")
    assert np.allclose(y, hmep_tiny @ x, atol=1e-11)


def test_distributed_on_samg(samg_tiny, rng):
    x = rng.standard_normal(samg_tiny.nrows)
    y = distributed_spmv(samg_tiny, x, 4, scheme="naive_overlap")
    assert np.allclose(y, samg_tiny @ x, atol=1e-11)


def test_row_partition_strategy(random_300, rng):
    x = rng.standard_normal(300)
    y = distributed_spmv(random_300, x, 3, strategy="rows")
    assert np.allclose(y, random_300 @ x, atol=1e-11)


def test_repeated_multiplications(random_300, rng):
    # communication plan must be reusable across iterations
    x = rng.standard_normal(300)
    y = distributed_spmv(random_300, x, 4, scheme="task_mode", iterations=3)
    assert np.allclose(y, random_300 @ x, atol=1e-11)


def test_engine_iteration_counter(random_300, rng):
    partition = partition_matrix(random_300, 2)
    plan = build_halo_plan(random_300, partition, with_matrices=True)
    x = rng.standard_normal(300)

    def fn(comm, halo):
        eng = DistributedSpMVM(comm, halo)
        xl = scatter_vector(x, partition, comm.rank)
        for _ in range(4):
            y = eng.multiply(xl, "no_overlap")
            comm.barrier()
        assert eng.iterations == 4
        return y

    pieces = run_spmd(2, fn, PerRank(plan.ranks))
    assert np.allclose(gather_vector(pieces), random_300 @ x, atol=1e-11)


def test_all_schemes_identical_results(random_300, rng):
    # floating-point summation order is fixed (local part, then remote),
    # so all three schemes agree bitwise
    x = rng.standard_normal(300)
    ys = [distributed_spmv(random_300, x, 4, scheme=s) for s in SCHEMES]
    assert np.array_equal(ys[0], ys[1])
    assert np.array_equal(ys[0], ys[2])


def test_engine_validates_inputs(random_300):
    partition = partition_matrix(random_300, 2)
    plan_meta = build_halo_plan(random_300, partition, with_matrices=False)

    def fn(comm, halo):
        with pytest.raises(ValueError, match="with_matrices"):
            DistributedSpMVM(comm, halo)
        return True

    assert all(run_spmd(2, fn, PerRank(plan_meta.ranks)))


def test_engine_rejects_wrong_vector_length(random_300):
    partition = partition_matrix(random_300, 2)
    plan = build_halo_plan(random_300, partition, with_matrices=True)

    def fn(comm, halo):
        eng = DistributedSpMVM(comm, halo)
        with pytest.raises(ValueError, match="shape"):
            eng.multiply(np.zeros(7), "no_overlap")
        comm.barrier()
        return True

    assert all(run_spmd(2, fn, PerRank(plan.ranks)))


def test_scatter_gather_roundtrip(rng):
    x = rng.standard_normal(50)
    p = partition_rows_balanced(50, 3)
    pieces = [scatter_vector(x, p, r) for r in range(3)]
    assert np.allclose(gather_vector(pieces), x)
