"""Saturation curves, STREAM arithmetic, roofline model."""

import numpy as np
import pytest

from repro.model import (
    Roofline,
    SaturationCurve,
    CodeBalanceModel,
    WRITE_ALLOCATE_FACTOR,
    measure_host_triad,
    triad_flops,
    triad_traffic,
)


@pytest.fixture()
def curve():
    return SaturationCurve.from_table({1: 10e9, 2: 16e9, 4: 20e9})


def test_curve_interpolation(curve):
    assert curve.value(1) == 10e9
    assert curve.value(3) == pytest.approx(18e9)  # linear between 2 and 4
    assert curve.value(8) == 20e9  # flat beyond the table
    assert curve.value(0) == 0.0
    assert curve.value(0.5) == pytest.approx(10e9)  # clamped below first entry


def test_curve_properties(curve):
    assert curve.saturated == 20e9
    assert curve.single_core == 10e9
    assert curve.saturation_point(0.95) == 4
    assert curve.saturation_point(0.75) == 2


def test_curve_scaling_and_extension(curve):
    doubled = curve.scaled(2.0)
    assert doubled.value(2) == 32e9
    ext = curve.extended(6)
    assert ext.cores[-1] == 6
    assert ext.value(6) == 20e9
    assert curve.extended(3) is curve


def test_curve_validation():
    with pytest.raises(ValueError, match="equal-length"):
        SaturationCurve((1, 2), (1e9,))
    with pytest.raises(ValueError, match="increasing"):
        SaturationCurve((2, 1), (1e9, 2e9))
    with pytest.raises(ValueError, match="start at 1"):
        SaturationCurve((0, 1), (1e9, 2e9))


def test_paper_saturation_claim():
    # "spMVM saturates at about four threads per locality domain"
    from repro.machine import westmere_ep_node

    dom = westmere_ep_node().domains[0]
    assert dom.spmv_curve.saturation_point(0.93) <= 4


def test_triad_arithmetic():
    assert triad_traffic(1000) == 4 * 8 * 1000  # write-allocate included
    assert triad_traffic(1000, write_allocate=False) == 3 * 8 * 1000
    assert triad_flops(1000) == 2000
    assert WRITE_ALLOCATE_FACTOR == pytest.approx(4.0 / 3.0)


def test_host_triad_measurement_runs():
    r = measure_host_triad(n=2_000_000, repetitions=2)
    assert r.bandwidth > 1e8  # any real machine exceeds 100 MB/s
    assert r.bandwidth_gb == pytest.approx(r.bandwidth / 1e9)
    assert r.best_seconds > 0


def test_roofline():
    rl = Roofline(peak_flops=10e9, bandwidth=20e9)
    assert rl.ridge_intensity == pytest.approx(0.5)
    assert rl.performance(0.1) == pytest.approx(2e9)  # memory bound
    assert rl.performance(5.0) == 10e9  # compute bound
    assert rl.is_memory_bound(0.1)
    assert not rl.is_memory_bound(5.0)


def test_roofline_spmvm_is_memory_bound():
    rl = Roofline(peak_flops=6 * 10.64e9, bandwidth=20.1e9)
    model = CodeBalanceModel(nnzr=15.0, kappa=2.5)
    perf = rl.spmvm_performance(model)
    assert perf == pytest.approx(20.1e9 / 8.05)
    assert rl.is_memory_bound(1.0 / model.balance())
