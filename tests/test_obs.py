"""Observability layer: Chrome export, metrics, summaries, transfer analysis."""

import json

import pytest

from repro.core import build_halo_plan, simulate_from_plan
from repro.frame import TraceRecorder
from repro.machine.presets import westmere_cluster
from repro.obs import (
    TransferSegment,
    bytes_moved_during,
    chrome_trace_events,
    merge_windows,
    overlap_bytes_with_phase,
    phase_summary,
    simulation_metrics,
    to_chrome_trace,
    transfer_segments,
    write_chrome_trace,
)
from repro.sparse.partition import partition_matrix

EAGER = 1024


@pytest.fixture(scope="module")
def traced_runs(hmep_small):
    """One traced single-iteration run per scheme on two Westmere nodes."""
    cluster = westmere_cluster(2)
    plan = build_halo_plan(hmep_small, partition_matrix(hmep_small, 4), with_matrices=False)
    runs = {}
    for scheme in ("no_overlap", "naive_overlap", "task_mode"):
        runs[scheme] = simulate_from_plan(
            plan, cluster, mode="per-ld", scheme=scheme, kappa=2.5,
            iterations=1, eager_threshold=EAGER, trace=True,
        )
    return runs


# ----------------------------------------------------------------------
# Chrome trace_event export
# ----------------------------------------------------------------------
def test_chrome_trace_valid_json_all_schemes(traced_runs, tmp_path):
    for scheme, r in traced_runs.items():
        path = write_chrome_trace(r.trace, tmp_path / f"{scheme}.json")
        data = json.loads(path.read_text())
        assert isinstance(data["traceEvents"], list)
        assert data["displayTimeUnit"] == "ms"
        phases = {e["ph"] for e in data["traceEvents"]}
        assert {"M", "X", "i"} <= phases


def test_chrome_trace_structure(traced_runs):
    r = traced_runs["task_mode"]
    events = chrome_trace_events(r.trace)
    meta = [e for e in events if e["ph"] == "M"]
    names = {e["args"]["name"] for e in meta}
    assert "rank0" in names and "rank0:comm" in names
    complete = [e for e in events if e["ph"] == "X"]
    assert all(e["dur"] >= 0 and e["ts"] >= 0 for e in complete)
    assert {e["name"] for e in complete} >= {"local spMVM", "MPI_Waitall"}
    # every event's tid resolves to a declared thread
    tids = {e["tid"] for e in meta}
    assert all(e["tid"] in tids for e in events)


def test_chrome_trace_instant_events_carry_args(traced_runs):
    events = to_chrome_trace(traced_runs["task_mode"].trace)["traceEvents"]
    started = [e for e in events if e["ph"] == "i" and e["name"] == "wire_started"]
    assert started
    assert all("protocol" in e["args"] and "nbytes" in e["args"] for e in started)


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
def test_simulation_metrics_flat_and_consistent(traced_runs):
    for r in traced_runs.values():
        m = simulation_metrics(r)
        assert all(isinstance(v, float) for v in m.values())
        assert m["sim.total_seconds"] > 0
        assert m["mpi.msg_posted"] == 2 * m["mpi.wire_started"]  # send + recv posts
        assert m["mpi.msg_completed"] == m["mpi.wire_started"]
        assert m["mpi.gate_open"] == m["mpi.gate_close"]
        # byte accounting matches what the MPI layer reports: internode
        # messages cross the NICs, intranode ones the shared-memory pipe
        assert m["resource.nic_out.bytes_moved"] + m["resource.intra.bytes_moved"] == (
            pytest.approx(m["sim.bytes_transferred"], rel=1e-6)
        )


def test_metrics_resource_utilization_present(traced_runs):
    m = simulation_metrics(traced_runs["no_overlap"])
    assert m["resource.membus.busy_fraction_max"] > 0
    assert m["resource.membus.max_concurrent_flows"] >= 1
    assert m["resource.nic_out.flows_started"] > 0


def test_gating_counters_differ_between_schemes(traced_runs):
    naive = simulation_metrics(traced_runs["naive_overlap"])
    task = simulation_metrics(traced_runs["task_mode"])
    # naive overlap posts rendezvous sends outside MPI: flows start gated and
    # are later resumed inside Waitall; task mode's comm thread keeps the
    # gate open so resumes dominate there too but Waitall blocks differ
    assert naive["mpi.msg_resumed"] > 0
    assert task["mpi.msg_resumed"] > 0


# ----------------------------------------------------------------------
# phase summary
# ----------------------------------------------------------------------
def test_phase_summary_table(traced_runs):
    table = phase_summary(traced_runs["task_mode"].trace, title="t")
    text = table.render()
    assert "local spMVM" in text and "MPI_Waitall" in text
    labels = [row[0] for row in table.rows]
    assert len(labels) == len(set(labels))
    totals = [row[2] for row in table.rows]
    assert totals == sorted(totals, reverse=True)


# ----------------------------------------------------------------------
# transfer-segment analysis
# ----------------------------------------------------------------------
def test_transfer_segments_account_full_message(traced_runs):
    for r in traced_runs.values():
        segs = transfer_segments(r.trace, protocol="rendezvous")
        by_mid = {}
        for s in segs:
            by_mid[s.mid] = by_mid.get(s.mid, 0.0) + s.nbytes
        completed = {
            ev.args["mid"]: ev.args["nbytes"]
            for ev in r.trace.events_named("msg_completed", "mpi")
            if any(s.mid == ev.args["mid"] for s in segs)
        }
        for mid, nbytes in completed.items():
            assert by_mid[mid] == pytest.approx(nbytes, rel=1e-9)


def test_merge_windows():
    assert merge_windows([(0, 1), (0.5, 2), (3, 4)]) == [(0, 2), (3, 4)]
    assert merge_windows([]) == []
    assert merge_windows([(1, 1)]) == []  # empty window dropped


def test_bytes_moved_during_linear_attribution():
    seg = TransferSegment(0, 0, 1, "rendezvous", start=0.0, end=2.0, nbytes=100.0)
    assert bytes_moved_during([seg], [(0.0, 1.0)]) == pytest.approx(50.0)
    assert bytes_moved_during([seg], [(0.0, 2.0)]) == pytest.approx(100.0)
    assert bytes_moved_during([seg], [(5.0, 6.0)]) == 0.0
    # overlapping windows are merged, not double-counted
    assert bytes_moved_during([seg], [(0.0, 1.5), (1.0, 2.0)]) == pytest.approx(100.0)


def test_overlap_bytes_validate_progress_semantics(traced_runs):
    """The paper's Sect. 3 claim, from trace data: vector modes move no
    rendezvous bytes during the local spMVM, task mode moves all of them."""
    assert overlap_bytes_with_phase(traced_runs["no_overlap"].trace, "full spMVM") == 0.0
    assert overlap_bytes_with_phase(traced_runs["naive_overlap"].trace) == 0.0
    task_bytes = overlap_bytes_with_phase(traced_runs["task_mode"].trace)
    total = sum(
        s.nbytes
        for s in transfer_segments(traced_runs["task_mode"].trace, protocol="rendezvous")
    )
    assert total > 0
    assert task_bytes == pytest.approx(total, rel=1e-6)


def test_empty_recorder_exports():
    tr = TraceRecorder()
    assert chrome_trace_events(tr) == []
    assert transfer_segments(tr) == []
    assert phase_summary(tr).rows == []
