"""Queueing and placement policies in isolation (repro.workload.scheduler).

The schedulers are pure state machines (no simulator), so the EASY
backfilling rules — shadow-time reservation, the extra-nodes exception,
the monotone reservation that prevents the starvation cascade — are
testable with hand-built running sets.
"""

import numpy as np
import pytest

from repro.machine.presets import cray_xe6_cluster, westmere_cluster
from repro.workload import (
    EasyBackfillScheduler,
    FCFSScheduler,
    Job,
    RunningJob,
    allocation_hop_sum,
    make_scheduler,
    place_job,
)


def _job(job_id, n_nodes, walltime=1.0, submit=0.0):
    return Job(
        job_id=job_id, name=f"j{job_id}", solver="spmvm", submit=submit,
        n_nodes=n_nodes, nrows=256, nnzr=6.0, iterations=1, walltime=walltime,
    )


def _running(job, start=0.0, first_node=0):
    return RunningJob(job, start, tuple(range(first_node, first_node + job.n_nodes)))


class TestFCFS:
    def test_starts_in_arrival_order_while_room(self):
        s = FCFSScheduler()
        for j in (_job(0, 2), _job(1, 2), _job(2, 2)):
            s.enqueue(j)
        started = s.schedule(0.0, 4, [])
        assert [j.job_id for j in started] == [0, 1]
        assert [j.job_id for j in s.pending()] == [2]

    def test_head_blocks_everything_behind_it(self):
        s = FCFSScheduler()
        s.enqueue(_job(0, 8))  # does not fit
        s.enqueue(_job(1, 1))  # would fit, but FCFS never overtakes
        assert s.schedule(0.0, 4, []) == []
        assert len(s) == 2

    def test_make_scheduler(self):
        assert make_scheduler("fcfs").policy == "fcfs"
        assert make_scheduler("easy").policy == "easy"
        with pytest.raises(ValueError, match="policy"):
            make_scheduler("sjf")


class TestEasyBackfill:
    def test_backfills_short_job_past_blocked_head(self):
        s = EasyBackfillScheduler()
        blocker = _job(99, 4, walltime=10.0)
        s.enqueue(_job(0, 4, walltime=5.0))   # head: needs the running job's nodes
        s.enqueue(_job(1, 2, walltime=1.0))   # short: ends before the shadow (t=10)
        started = s.schedule(0.0, 2, [_running(blocker)])
        assert [j.job_id for j in started] == [1]
        assert [j.job_id for j in s.pending()] == [0]

    def test_refuses_backfill_that_would_delay_head(self):
        s = EasyBackfillScheduler()
        blocker = _job(99, 4, walltime=10.0)
        # head will need all 6 nodes free at the shadow time (extra = 0)
        s.enqueue(_job(0, 6, walltime=5.0))
        # ends at t=20 > shadow t=10 and needs nodes the head will use
        s.enqueue(_job(1, 2, walltime=20.0))
        assert s.schedule(0.0, 2, [_running(blocker)]) == []

    def test_long_backfill_allowed_on_extra_nodes(self):
        # head needs 4 of the 6 nodes free at the shadow; a long 2-node
        # job fits in the extra 2 and can run past the shadow harmlessly
        s = EasyBackfillScheduler()
        blocker = _job(99, 4, walltime=10.0)  # nodes 0-3, machine of 10
        s.enqueue(_job(0, 8, walltime=5.0))
        s.enqueue(_job(1, 2, walltime=50.0))
        started = s.schedule(0.0, 6, [_running(blocker)])
        assert [j.job_id for j in started] == [1]

    def test_reservation_is_monotone_for_same_head(self):
        # the starvation cascade this guards against: a backfilled job
        # with a padded estimate must not push the head's shadow later
        s = EasyBackfillScheduler()
        blocker = _job(99, 4, walltime=10.0)
        s.enqueue(_job(0, 4, walltime=5.0))
        s.schedule(0.0, 2, [_running(blocker)])
        assert s._reservation is not None
        head_id, shadow = s._reservation
        assert head_id == 0
        assert shadow == pytest.approx(10.0)
        # a later pass where running estimates look *worse* (a backfill
        # with walltime 30 started on the free nodes) must keep t=10
        worse = [_running(blocker), _running(_job(50, 2, walltime=30.0), first_node=4)]
        s.schedule(1.0, 0, worse)
        assert s._reservation[1] == pytest.approx(10.0)

    def test_reservation_resets_for_new_head(self):
        s = EasyBackfillScheduler()
        s.enqueue(_job(0, 4, walltime=5.0))
        s.schedule(0.0, 2, [_running(_job(99, 4, walltime=10.0))])
        s.queue.clear()
        s.enqueue(_job(1, 4, walltime=5.0))
        s.schedule(0.0, 2, [_running(_job(98, 4, walltime=7.0))])
        assert s._reservation[0] == 1
        assert s._reservation[1] == pytest.approx(7.0)

    def test_empty_queue_clears_reservation(self):
        s = EasyBackfillScheduler()
        s.enqueue(_job(0, 2, walltime=1.0))
        s.schedule(0.0, 4, [])
        assert s._reservation is None

    def test_unsatisfiable_head_backfills_unbounded(self):
        # head wider than estimates can ever free: shadow is +inf, any
        # fitting job may start (nothing to protect)
        s = EasyBackfillScheduler()
        s.enqueue(_job(0, 100, walltime=1.0))
        s.enqueue(_job(1, 2, walltime=1e9))
        started = s.schedule(0.0, 4, [])
        assert [j.job_id for j in started] == [1]


class TestPlacement:
    def test_first_fit_takes_lowest_ids(self):
        net = westmere_cluster(8).network
        nodes = place_job(_job(0, 3), {5, 1, 7, 2, 0}, net, 8)
        assert nodes == (0, 1, 2)

    def test_random_needs_rng_and_is_seeded(self):
        net = westmere_cluster(8).network
        free = set(range(8))
        with pytest.raises(ValueError, match="rng"):
            place_job(_job(0, 2), free, net, 8, policy="random")
        a = place_job(_job(0, 4), free, net, 8, policy="random",
                      rng=np.random.default_rng(3))
        b = place_job(_job(0, 4), free, net, 8, policy="random",
                      rng=np.random.default_rng(3))
        assert a == b
        assert len(set(a)) == 4 and set(a) <= free

    def test_node_aware_picks_compact_torus_allocation(self):
        cluster = cray_xe6_cluster(16)  # 4x4 torus
        free = {0, 3, 5, 12, 15}  # 0,3,12,15 are the four torus corners
        nodes = place_job(_job(0, 2), free, cluster.network, 16, policy="node-aware")
        # every corner is 1 hop (wraparound) from an adjacent corner but
        # node 5 is interior; the chosen pair must be adjacent (hop sum 1)
        assert allocation_hop_sum(nodes, cluster.network, 16) == pytest.approx(1.0)

    def test_node_aware_beats_random_on_hop_sum(self):
        cluster = cray_xe6_cluster(16)
        free = set(range(16))
        aware = place_job(_job(0, 4), free, cluster.network, 16, policy="node-aware")
        rng = np.random.default_rng(0)
        rand = place_job(_job(0, 4), free, cluster.network, 16, policy="random", rng=rng)
        assert allocation_hop_sum(aware, cluster.network, 16) <= allocation_hop_sum(
            rand, cluster.network, 16
        )

    def test_node_aware_on_fat_tree_degenerates_to_first_fit(self):
        net = westmere_cluster(8).network  # no hops(): topology-blind
        assert place_job(_job(0, 3), set(range(8)), net, 8, policy="node-aware") == (0, 1, 2)

    def test_not_enough_free_nodes_raises(self):
        net = westmere_cluster(4).network
        with pytest.raises(ValueError, match="free"):
            place_job(_job(0, 3), {0, 1}, net, 4)

    def test_unknown_policy_raises(self):
        net = westmere_cluster(4).network
        with pytest.raises(ValueError, match="policy"):
            place_job(_job(0, 1), {0}, net, 4, policy="round-robin")

    def test_hop_sum_on_fat_tree_counts_pairs(self):
        net = westmere_cluster(8).network
        assert allocation_hop_sum((0, 1, 2), net, 8) == pytest.approx(3.0)
