"""The cluster engine end to end (repro.workload.engine + report).

The slow module-scoped fixtures run the reference-trace studies once;
they double as the PR's acceptance tests: EASY beats FCFS on
utilisation (fat tree), node-aware beats random on p99 latency without
moving more wire bytes (loaded torus), and two co-running
communication-heavy jobs each see less effective bandwidth than one
running alone on a shared torus.
"""

import json

import pytest

from repro.machine.presets import cray_xe6_cluster, westmere_cluster
from repro.workload import (
    BSLD_TAU,
    ClusterEngine,
    Job,
    compare_policies,
    export_job_trace,
    policy_table,
    reference_trace,
    render_report,
    run_workload,
    service_stream,
    synthetic_stream,
)


def _tiny_jobs(n=4, n_nodes=1, solver="cg", iterations=2):
    return [
        Job(
            job_id=i, name=f"t{i}", solver=solver, submit=i * 1e-5,
            n_nodes=n_nodes, nrows=128, nnzr=5.0, iterations=iterations,
            walltime=1e-3, seed=i,
        )
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def small_run():
    """Six tiny jobs on two fat-tree nodes (queueing forced)."""
    return run_workload(_tiny_jobs(6, n_nodes=2), westmere_cluster(2))


class TestEngineBasics:
    def test_all_jobs_complete_with_consistent_times(self, small_run):
        assert [r.job.job_id for r in small_run.records] == list(range(6))
        for r in small_run.records:
            assert r.start >= r.job.submit
            assert r.end > r.start
            assert r.end <= small_run.makespan
            assert len(r.nodes) == r.job.n_nodes
            assert r.bytes_transferred > 0  # 2 ranks: halo + dot traffic
            assert r.messages_sent > 0
            assert r.slowdown >= 1.0

    def test_concurrent_jobs_never_share_nodes(self, small_run):
        rs = small_run.records
        for i, a in enumerate(rs):
            for b in rs[i + 1 :]:
                overlap = min(a.end, b.end) - max(a.start, b.start)
                if overlap > 0:
                    assert not (set(a.nodes) & set(b.nodes))

    def test_utilisation_and_summary(self, small_run):
        u = small_run.utilisation()
        assert 0.0 < u <= 1.0
        per_node = small_run.per_node_utilisation()
        assert len(per_node) == 2
        assert sum(per_node) * 2 / 2 == pytest.approx(u * 2)
        s = small_run.summary()
        for key in ("p50", "p90", "p99", "throughput_jps", "utilisation",
                    "mean_wait", "mean_slowdown", "max_slowdown"):
            assert key in s
        assert s["p50"] <= s["p90"] <= s["p99"] <= s["max"]

    def test_deterministic_replay(self):
        jobs = _tiny_jobs(4, n_nodes=2)
        a = run_workload(jobs, westmere_cluster(2))
        b = run_workload(jobs, westmere_cluster(2))
        assert [(r.start, r.end, r.nodes) for r in a.records] == [
            (r.start, r.end, r.nodes) for r in b.records
        ]

    def test_render_report_mentions_the_metrics(self, small_run):
        text = render_report(small_run)
        assert "p99" in text and "utilisation" in text and "slowdown" in text

    def test_rejects_task_mode(self):
        with pytest.raises(ValueError, match="task.mode|task_mode"):
            ClusterEngine(westmere_cluster(2), scheme="task_mode")

    def test_rejects_empty_stream(self):
        with pytest.raises(ValueError):
            run_workload([], westmere_cluster(2))

    def test_rejects_job_wider_than_machine(self):
        with pytest.raises(ValueError, match="nodes"):
            run_workload(_tiny_jobs(1, n_nodes=4), westmere_cluster(2))

    def test_service_stream_runs_end_to_end(self):
        jobs = service_stream(12, seed=1, rate=1e5, n_nodes=1, nrows=128, nnzr=5.0)
        result = run_workload(jobs, westmere_cluster(2))
        assert len(result.records) == len(jobs)
        # coalesced batches carry their width into the sweep program
        assert sum(r.job.block_k for r in result.records) == 12

    def test_serve_stream_report_bridges_to_jobs(self):
        """A measured serve run replays as a schedulable job stream."""
        from repro.serve.driver import StreamReport

        report = StreamReport(
            matrix_label="tiny", nrows=128, nnz=640, nranks=2, scheme="no_overlap",
            kernel="csr", requests=6, concurrency=2, max_batch=4,
            build_seconds=0.01, wall_seconds=3e-4, latencies=(1e-4,) * 6,
            batch_widths=(4, 2), verified=0, verify_exact=True,
        )
        jobs = report.workload_jobs(n_nodes=1)
        assert [j.block_k for j in jobs] == [4, 2]
        assert sum(j.block_k for j in jobs) == report.requests
        result = run_workload(jobs, westmere_cluster(2))
        assert len(result.records) == 2

    def test_synthetic_stream_runs_end_to_end(self):
        jobs = synthetic_stream(
            8, seed=2, rate=1e5, node_choices=(1, 2),
            nrows_range=(128, 256), iterations_range=(2, 4),
        )
        result = run_workload(jobs, cray_xe6_cluster(2), placement="node-aware")
        assert len(result.records) == 8


class TestJobTrace:
    def test_actors_are_prefixed_per_job(self):
        result = run_workload(
            _tiny_jobs(2, n_nodes=2), westmere_cluster(2), trace=True
        )
        assert result.trace is not None
        actors = set(result.trace.actors())
        assert any(a.startswith("job0/rank") for a in actors)
        assert any(a.startswith("job1/rank") for a in actors)

    def test_chrome_export_round_trip(self, tmp_path):
        result = run_workload(
            _tiny_jobs(2, n_nodes=2), westmere_cluster(2), trace=True
        )
        path = export_job_trace(result, tmp_path / "w.json")
        doc = json.loads(path.read_text())
        # thread-name metadata events carry the job-prefixed actor names
        names = {
            ev["args"].get("name", "")
            for ev in doc["traceEvents"]
            if ev.get("name") == "thread_name"
        }
        assert any(n.startswith("job0/") for n in names)
        assert any(n.startswith("job1/") for n in names)

    def test_export_without_trace_raises(self, small_run, tmp_path):
        with pytest.raises(ValueError, match="trace"):
            export_job_trace(small_run, tmp_path / "w.json")


# ----------------------------------------------------------------------
# acceptance: the reference-trace guard properties
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def scheduling_results():
    """FCFS vs EASY on the fat tree, where runtimes are policy-independent."""
    return compare_policies(
        reference_trace(), lambda: westmere_cluster(16),
        schedulers=("fcfs", "easy"), placements=("first-fit",),
    )


@pytest.fixture(scope="module")
def placement_results():
    """random vs node-aware under EASY on the loaded torus."""
    return compare_policies(
        reference_trace(),
        lambda: cray_xe6_cluster(16, background_load=0.85),
        schedulers=("easy",), placements=("random", "node-aware"), seed=11,
    )


class TestAcceptance:
    def test_easy_backfilling_beats_fcfs_utilisation(self, scheduling_results):
        fcfs = scheduling_results[("fcfs", "first-fit")]
        easy = scheduling_results[("easy", "first-fit")]
        assert easy.utilisation() > fcfs.utilisation()
        # backfilling shortens the makespan; it never changes runtimes here
        assert easy.makespan < fcfs.makespan

    def test_easy_improves_mean_bounded_slowdown(self, scheduling_results):
        fcfs = scheduling_results[("fcfs", "first-fit")]
        easy = scheduling_results[("easy", "first-fit")]
        assert easy.summary()["mean_slowdown"] < fcfs.summary()["mean_slowdown"]

    def test_node_aware_beats_random_p99(self, placement_results):
        rand = placement_results[("easy", "random")]
        aware = placement_results[("easy", "node-aware")]
        assert aware.summary()["p99"] < rand.summary()["p99"]

    def test_node_aware_never_moves_more_wire_bytes(self, placement_results):
        rand = placement_results[("easy", "random")]
        aware = placement_results[("easy", "node-aware")]
        assert aware.interconnect_bytes() <= rand.interconnect_bytes()
        assert aware.summary()["hop_sum"] <= rand.summary()["hop_sum"]

    def test_co_running_jobs_share_torus_bandwidth(self):
        """Two communication-heavy jobs on disjoint nodes of one loaded
        torus must each observe lower effective bandwidth than alone."""
        def job(i):
            return Job(
                job_id=i, name=f"c{i}", solver="cg", submit=0.0, n_nodes=2,
                nrows=2048, nnzr=12.0, iterations=24, walltime=1e-2, seed=42 + i,
            )

        cluster = lambda: cray_xe6_cluster(4, background_load=0.95)  # noqa: E731
        alone = run_workload([job(0)], cluster()).records[0]
        shared = run_workload([job(0), job(1)], cluster()).records
        assert {tuple(r.nodes) for r in shared} == {(0, 1), (2, 3)}
        for r in shared:
            assert r.effective_bandwidth < alone.effective_bandwidth

    def test_policy_table_covers_all_combinations(self, scheduling_results):
        table = policy_table(scheduling_results).render()
        assert "fcfs" in table and "easy" in table

    def test_compare_policies_validates_factory(self):
        with pytest.raises(TypeError, match="ClusterSpec"):
            compare_policies(
                _tiny_jobs(1), lambda: "not a cluster",
                schedulers=("fcfs",), placements=("first-fit",),
            )


def test_bsld_tau_matches_job_timescale():
    """The workload BSLD threshold sits at the generated job durations."""
    assert BSLD_TAU == pytest.approx(1.0e-4)
