"""CLI entry points and the util layer (tables, units, checks)."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.util import (
    GB,
    Table,
    ascii_chart,
    ascii_heatmap,
    check_array_1d,
    check_fraction,
    check_in,
    check_nonnegative_int,
    check_positive_float,
    check_positive_int,
    check_same_length,
    check_sorted_nondecreasing,
    format_bytes,
    format_table,
    format_time,
    gb_per_s,
    gflop_per_s,
    to_gb_per_s,
    to_gflop_per_s,
    usec,
)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig5" in out and "probe" in out


def test_cli_matrix(capsys):
    assert main(["matrix", "HMeP", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "540" in out


def test_cli_kappa(capsys):
    assert main(["kappa"]) == 0
    assert "2.5" in capsys.readouterr().out


def test_cli_fig2(capsys):
    assert main(["fig2"]) == 0
    assert "Magny Cours" in capsys.readouterr().out


def test_cli_node_list_parsing():
    parser = build_parser()
    args = parser.parse_args(["fig5", "--nodes", "1,2,4"])
    assert args.nodes == (1, 2, 4)
    with pytest.raises(SystemExit):
        parser.parse_args(["fig5", "--nodes", "1,-2"])
    with pytest.raises(SystemExit):
        parser.parse_args(["matrix", "NotAMatrix"])


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        main([])


# ----------------------------------------------------------------------
# tables / charts
# ----------------------------------------------------------------------
def test_format_table_alignment():
    text = format_table(["a", "long_header"], [[1, 2.5], [33, float("nan")]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert len(set(len(l) for l in lines)) == 1  # rectangular
    assert "-" in lines[1]
    assert lines[3].rstrip().endswith("-")  # NaN renders as '-'


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError, match="columns"):
        format_table(["a", "b"], [[1]])


def test_table_builder_and_csv():
    t = Table(["x", "y"], title="t", float_fmt=".1f")
    t.add_row([1, 2.0])
    t.add_row([2, 4.25])
    assert "t" in t.render()
    csv = t.to_csv()
    assert csv.splitlines()[0] == "x,y"
    assert "4.2" in csv
    with pytest.raises(ValueError):
        t.add_row([1])


def test_ascii_chart_contains_markers():
    chart = ascii_chart({"s1": [(0, 0), (10, 5)], "s2": [(5, 2)]},
                        width=30, height=8, title="c")
    assert chart.startswith("c")
    assert "o = s1" in chart and "x = s2" in chart
    assert ascii_chart({}) == "(empty chart)"


def test_ascii_chart_flat_series():
    # constant y must not divide by zero
    chart = ascii_chart({"flat": [(0, 1.0), (5, 1.0)]})
    assert "flat" in chart


def test_ascii_heatmap_log_scale():
    hm = ascii_heatmap([[1e-6, 1e-3], [0.0, 0.5]], log=True)
    rows = hm.splitlines()
    assert rows[1][0] == " "  # zero renders blank
    assert rows[0][0] != " "  # tiny values still visible
    assert ascii_heatmap([]) == "(empty heatmap)"
    assert ascii_heatmap([[0.0]]).strip() == ""


# ----------------------------------------------------------------------
# units
# ----------------------------------------------------------------------
def test_unit_conversions_roundtrip():
    assert gb_per_s(21.2) == 21.2 * GB
    assert to_gb_per_s(gb_per_s(21.2)) == pytest.approx(21.2)
    assert to_gflop_per_s(gflop_per_s(2.25)) == pytest.approx(2.25)
    assert usec(1.5) == pytest.approx(1.5e-6)


def test_format_bytes():
    assert format_bytes(500) == "500 B"
    assert format_bytes(2_500_000) == "2.5 MB"
    assert "GB" in format_bytes(3.2e9)


def test_format_time():
    assert format_time(0) == "0 s"
    assert format_time(2.0) == "2 s"
    assert "ms" in format_time(2e-3)
    assert "us" in format_time(2e-6)
    assert "ns" in format_time(2e-9)


# ----------------------------------------------------------------------
# checks
# ----------------------------------------------------------------------
def test_int_checks():
    assert check_positive_int(np.int64(3), "x") == 3
    with pytest.raises(ValueError):
        check_positive_int(0, "x")
    with pytest.raises(TypeError):
        check_positive_int(True, "x")
    with pytest.raises(TypeError):
        check_positive_int(2.5, "x")
    assert check_nonnegative_int(0, "x") == 0
    with pytest.raises(ValueError):
        check_nonnegative_int(-1, "x")


def test_float_and_fraction_checks():
    assert check_positive_float("2.5", "x") == 2.5
    with pytest.raises(ValueError):
        check_positive_float(float("inf"), "x")
    with pytest.raises(ValueError):
        check_positive_float(-1.0, "x")
    assert check_fraction(0.5, "x") == 0.5
    with pytest.raises(ValueError):
        check_fraction(1.5, "x")


def test_misc_checks():
    assert check_in("a", ("a", "b"), "x") == "a"
    with pytest.raises(ValueError, match="one of"):
        check_in("c", ("a", "b"), "x")
    arr = check_array_1d([1, 2, 3], "x", dtype=np.int64)
    assert arr.dtype == np.int64
    with pytest.raises(ValueError, match="one-dimensional"):
        check_array_1d([[1]], "x")
    check_same_length("a", [1, 2], "b", [3, 4])
    with pytest.raises(ValueError, match="same length"):
        check_same_length("a", [1], "b", [1, 2])
    check_sorted_nondecreasing(np.array([1, 1, 2]), "x")
    with pytest.raises(ValueError, match="non-decreasing"):
        check_sorted_nondecreasing(np.array([2, 1]), "x")
