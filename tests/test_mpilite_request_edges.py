"""Request lifecycle edge cases and recv-timeout provenance (satellite tests).

The Request contract mirrors mpi4py/MPI: wait() is idempotent, test()
after wait() stays True, send requests complete eagerly under buffered
semantics, and test()-driven polling makes progress without blocking.
"""

import time

import numpy as np
import pytest

from repro.mpilite import PerRank, run_spmd
from repro.mpilite.router import ANY_SOURCE, ANY_TAG


# ----------------------------------------------------------------------
# wait()/test() idempotence
# ----------------------------------------------------------------------
def test_wait_twice_returns_the_same_value():
    def fn(comm):
        if comm.rank == 0:
            comm.send({"k": 1}, 1, tag=3)
            return None
        req = comm.irecv(0, tag=3)
        first = req.wait()
        second = req.wait()  # must not attempt a second receive
        assert first is second
        return first

    results = run_spmd(2, fn, recv_timeout=10.0)
    assert results[1] == {"k": 1}


def test_test_after_wait_stays_true():
    def fn(comm):
        if comm.rank == 0:
            comm.send("x", 1, tag=1)
            return None
        req = comm.irecv(0, tag=1)
        req.wait()
        assert req.test()
        assert req.test()  # still True, still no side effects
        return req.wait()

    assert run_spmd(2, fn, recv_timeout=10.0)[1] == "x"


def test_send_requests_complete_eagerly():
    def fn(comm):
        if comm.rank == 0:
            small = comm.isend([1, 2], 1, tag=2)
            big = comm.Isend(np.zeros(64), 1, tag=3)
            # buffered sends: test() is True before the receiver even posts
            assert small.test()
            assert big.test()
            assert small.wait() is None
            assert big.wait() is None
            assert small.test() and big.test()
        else:
            time.sleep(0.05)  # ensure the sender's asserts run first
            assert comm.recv(0, tag=2) == [1, 2]
            buf = np.empty(64)
            comm.Recv(buf, 0, tag=3)
            assert np.all(buf == 0.0)

    run_spmd(2, fn, recv_timeout=10.0)


def test_interleaved_test_polling_from_two_ranks():
    # both ranks poll with test() while the peer is still working; a
    # positive probe must complete the request (MPI_Test semantics), so
    # neither rank ever blocks
    def fn(comm):
        peer = 1 - comm.rank
        req = comm.irecv(peer, tag=6)
        time.sleep(0.02 * comm.rank)  # skew the two ranks
        comm.send(f"from{comm.rank}", peer, tag=6)
        spins = 0
        while not req.test():
            spins += 1
            time.sleep(0.001)
            assert spins < 5000, "test() never became True"
        return req.wait()

    results = run_spmd(2, fn, recv_timeout=10.0)
    assert results == ["from1", "from0"]


# ----------------------------------------------------------------------
# wildcard receives
# ----------------------------------------------------------------------
def test_wildcard_receive_drains_in_global_arrival_order():
    def fn(comm):
        if comm.rank == 0:
            return [comm.recv(ANY_SOURCE, tag=ANY_TAG) for _ in range(2)]
        # rank 2 waits for rank 1's send to be forwarded before sending,
        # so the global arrival order is deterministic
        if comm.rank == 1:
            comm.send("first", 0, tag=11)
            comm.send("go", 2, tag=0)
        else:
            comm.recv(1, tag=0)
            comm.send("second", 0, tag=12)
        return None

    results = run_spmd(3, fn, recv_timeout=10.0)
    assert results[0] == ["first", "second"]


def test_any_source_with_fixed_tag_filters_on_tag():
    def fn(comm):
        if comm.rank == 0:
            comm.send("wrong-tag", 1, tag=5)
            comm.send("right-tag", 1, tag=7)
            return None
        first = comm.recv(ANY_SOURCE, tag=7)
        second = comm.recv(0, tag=5)
        return [first, second]

    assert run_spmd(2, fn, recv_timeout=10.0)[1] == ["right-tag", "wrong-tag"]


# ----------------------------------------------------------------------
# timeout provenance (satellite 1 regression coverage)
# ----------------------------------------------------------------------
def test_recv_timeout_names_rank_peer_and_tag():
    def fn(comm):
        if comm.rank == 0:
            comm.recv(1, tag=9, timeout=0.1)

    with pytest.raises(RuntimeError, match=r"rank 0.*from 1.*tag 9.*0\.1 s"):
        run_spmd(2, fn, recv_timeout=10.0)


def test_recv_timeout_describes_wildcards():
    def fn(comm):
        if comm.rank == 0:
            comm.recv(ANY_SOURCE, tag=ANY_TAG, timeout=0.1)

    with pytest.raises(RuntimeError, match="ANY_SOURCE.*ANY_TAG"):
        run_spmd(2, fn, recv_timeout=10.0)


def test_world_default_recv_timeout_is_routed_to_comm():
    def fn(comm):
        assert comm.default_timeout == 0.2
        if comm.rank == 0:
            comm.recv(1, tag=4)  # no explicit timeout: world default applies

    t0 = time.monotonic()
    with pytest.raises(RuntimeError, match=r"tag 4.*0\.2 s"):
        run_spmd(2, fn, recv_timeout=0.2)
    assert time.monotonic() - t0 < 5.0  # failed fast, not at the 120 s net


# ----------------------------------------------------------------------
# PerRank plumbing (used heavily by the analyzer fixtures)
# ----------------------------------------------------------------------
def test_per_rank_arguments_reach_the_right_rank():
    def fn(comm, mine):
        return mine * 10

    assert run_spmd(3, fn, PerRank([1, 2, 3])) == [10, 20, 30]
