"""Lanczos and CG: convergence, accuracy, distributed equivalence."""

import numpy as np
import pytest

from repro.core import build_halo_plan, scatter_vector
from repro.core.spmvm import lower_comm_plan
from repro.matrices import poisson_2d, random_sparse
from repro.mpilite import PerRank, run_spmd
from repro.solvers import (
    CGResult,
    DistributedOperator,
    SerialOperator,
    conjugate_gradient,
    ground_state,
    lanczos,
    spectral_bounds,
)
from repro.sparse import CSRMatrix, partition_matrix


@pytest.fixture(scope="module")
def sym_matrix(hmep_tiny):
    return hmep_tiny


def test_lanczos_lowest_eigenvalues(sym_matrix):
    op = SerialOperator(sym_matrix)
    res = lanczos(op, max_iter=150, tol=1e-9, n_eigenvalues=3)
    dense = np.sort(np.linalg.eigvalsh(sym_matrix.to_dense()))
    assert np.allclose(res.eigenvalues, dense[:3], atol=1e-7)
    assert np.all(res.residuals <= 1e-8)


def test_lanczos_ritz_vector(sym_matrix):
    op = SerialOperator(sym_matrix)
    energy, vec = ground_state(op, max_iter=150, tol=1e-10, want_vector=True)
    assert vec is not None
    resid = np.linalg.norm(sym_matrix @ vec - energy * vec)
    assert resid < 1e-6
    assert np.linalg.norm(vec) == pytest.approx(1.0, abs=1e-10)


def test_lanczos_invariant_subspace_early_exit():
    # identity matrix: converges in one step
    op = SerialOperator(CSRMatrix.identity(20))
    res = lanczos(op, max_iter=50)
    assert res.eigenvalues[0] == pytest.approx(1.0)
    assert res.iterations <= 2


def test_lanczos_deterministic_seed(sym_matrix):
    op = SerialOperator(sym_matrix)
    a = lanczos(op, max_iter=40, seed=3)
    b = lanczos(op, max_iter=40, seed=3)
    assert np.array_equal(a.alpha, b.alpha)


def test_lanczos_zero_start_rejected(sym_matrix):
    op = SerialOperator(sym_matrix)
    with pytest.raises(ValueError, match="nonzero"):
        lanczos(op, v0=np.zeros(sym_matrix.nrows))


def test_spectral_bounds_enclose_spectrum(sym_matrix):
    lo, hi = spectral_bounds(SerialOperator(sym_matrix))
    w = np.linalg.eigvalsh(sym_matrix.to_dense())
    assert lo <= w[0] + 1e-6
    assert hi >= w[-1] - 1e-6


def test_distributed_lanczos_equals_serial(sym_matrix):
    partition = partition_matrix(sym_matrix, 3)
    plan = build_halo_plan(sym_matrix, partition, with_matrices=True)
    rng = np.random.default_rng(5)
    v0 = rng.standard_normal(sym_matrix.nrows)

    def fn(comm, halo):
        op = DistributedOperator(comm, halo)
        return lanczos(op, max_iter=120, tol=1e-9,
                       v0=scatter_vector(v0, partition, comm.rank)).ground_energy

    energies = run_spmd(3, fn, PerRank(plan.ranks))
    serial = lanczos(SerialOperator(sym_matrix), max_iter=120, tol=1e-9, v0=v0).ground_energy
    assert np.allclose(energies, serial, atol=1e-9)


# ----------------------------------------------------------------------
# CG
# ----------------------------------------------------------------------
def test_cg_solves_poisson(rng):
    A = poisson_2d(15)
    x_true = rng.standard_normal(A.nrows)
    b = A @ x_true
    res = conjugate_gradient(SerialOperator(A), b, tol=1e-10, max_iter=2000)
    assert res.converged
    assert np.allclose(res.x, x_true, atol=1e-6)
    assert res.residual_history[-1] <= 1e-10
    assert res.residual_history[0] == pytest.approx(1.0)


def test_cg_zero_rhs():
    A = poisson_2d(5)
    res = conjugate_gradient(SerialOperator(A), np.zeros(A.nrows))
    assert res.converged and res.iterations == 0
    assert np.all(res.x == 0)


def test_cg_initial_guess(rng):
    A = poisson_2d(10)
    x_true = rng.standard_normal(A.nrows)
    b = A @ x_true
    exact_start = conjugate_gradient(SerialOperator(A), b, x0=x_true.copy(), tol=1e-10)
    assert exact_start.iterations == 0
    assert exact_start.converged


def test_cg_detects_indefinite_operator(rng):
    d = np.diag(np.concatenate([np.ones(5), -np.ones(5)]))
    A = CSRMatrix.from_dense(d)
    b = rng.standard_normal(10)
    with pytest.raises(ValueError, match="positive definite"):
        conjugate_gradient(SerialOperator(A), b, max_iter=50)


def test_cg_jacobi_preconditioner_helps(rng):
    # badly scaled SPD system: diagonal preconditioning must reduce iterations
    n = 200
    scale = np.logspace(0, 4, n)
    A_dense = np.diag(scale)
    A_dense[0, 1] = A_dense[1, 0] = 1.0
    A = CSRMatrix.from_dense(A_dense)
    b = rng.standard_normal(n)
    plain = conjugate_gradient(SerialOperator(A), b, tol=1e-10, max_iter=5000)
    inv_diag = 1.0 / scale
    precond = conjugate_gradient(
        SerialOperator(A), b, tol=1e-10, max_iter=5000,
        preconditioner=lambda r: inv_diag * r,
    )
    assert precond.iterations < plain.iterations


def test_cg_rhs_shape_validated():
    A = poisson_2d(4)
    with pytest.raises(ValueError, match="shape"):
        conjugate_gradient(SerialOperator(A), np.zeros(3))


def test_distributed_cg_equals_serial(samg_tiny, rng):
    b = samg_tiny @ rng.standard_normal(samg_tiny.nrows)
    serial = conjugate_gradient(SerialOperator(samg_tiny), b, tol=1e-9, max_iter=3000)
    partition = partition_matrix(samg_tiny, 4)
    plan = build_halo_plan(samg_tiny, partition, with_matrices=True)

    def fn(comm, halo):
        op = DistributedOperator(comm, halo, scheme="no_overlap")
        res = conjugate_gradient(op, scatter_vector(b, partition, comm.rank),
                                 tol=1e-9, max_iter=3000)
        return res.x, res.iterations

    out = run_spmd(4, fn, PerRank(plan.ranks))
    x_dist = np.concatenate([o[0] for o in out])
    # distributed reductions sum in a different order, so iteration counts
    # may differ by a round-off-induced step or two
    assert abs(out[0][1] - serial.iterations) <= 2
    assert np.allclose(x_dist, serial.x, atol=1e-7)


def test_distributed_cg_node_aware_bit_identical(samg_tiny, rng):
    # the node-aware exchange only re-routes copies, so every CG iterate
    # — and hence the solution — is bit-identical to the classic path
    b = samg_tiny @ rng.standard_normal(samg_tiny.nrows)
    partition = partition_matrix(samg_tiny, 4)
    plan = build_halo_plan(samg_tiny, partition, with_matrices=True)
    cplan = lower_comm_plan(plan, 4, "node-aware", ranks_per_node=2)

    def fn(comm, halo, use_plan):
        op = DistributedOperator(comm, halo, scheme="task_mode",
                                 comm_plan=cplan if use_plan else None)
        res = conjugate_gradient(op, scatter_vector(b, partition, comm.rank),
                                 tol=1e-9, max_iter=3000)
        return res.x, res.iterations

    classic = run_spmd(4, lambda c, h: fn(c, h, False), PerRank(plan.ranks))
    node_aware = run_spmd(4, lambda c, h: fn(c, h, True), PerRank(plan.ranks))
    for (xc, itc), (xn, itn) in zip(classic, node_aware):
        assert itc == itn
        assert np.array_equal(xc, xn)
