"""Experiment harnesses: smoke tests + the paper's qualitative assertions
at reduced scale.  Full-scale reproduction numbers live in benchmarks/."""

import numpy as np
import pytest

from repro.experiments import (
    KAPPA,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4,
    run_kappa_table,
    run_progress_probe,
    run_scaling_study,
)
from repro.matrices import get_matrix


# ----------------------------------------------------------------------
# fig 1
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fig1():
    return run_fig1(scale="tiny", grid=24)


def test_fig1_contains_all_matrices(fig1):
    assert set(fig1.grids) == {"HMEp", "HMeP", "sAMG"}
    assert "HMeP" in fig1.render()


def test_fig1_ordering_contrast(fig1):
    # Fig 1 a vs b: HMEp scatters, HMeP concentrates near the diagonal
    assert fig1.stats["HMeP"]["band_fraction"] > fig1.stats["HMEp"]["band_fraction"]


def test_fig1_samg_most_local(fig1):
    assert fig1.stats["sAMG"]["band_fraction"] >= fig1.stats["HMeP"]["band_fraction"]


# ----------------------------------------------------------------------
# fig 2
# ----------------------------------------------------------------------
def test_fig2_topologies():
    r = run_fig2()
    assert r.westmere.n_domains == 2
    assert r.magny_cours.n_domains == 4
    text = r.render()
    assert "Westmere" in text and "Magny Cours" in text


# ----------------------------------------------------------------------
# fig 3
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fig3():
    return run_fig3()


def test_fig3_reproduces_paper_annotations(fig3):
    nehalem_ld = [r for r in fig3.by_machine("Nehalem EP") if r.unit == "LD"]
    for row in nehalem_ld:
        assert row.spmv_gflops == pytest.approx(row.paper_gflops, abs=0.02)


def test_fig3_saturation_at_four_cores(fig3):
    assert fig3.saturation_core_count("Westmere EP", threshold=0.93) <= 4
    assert fig3.saturation_core_count("Nehalem EP", threshold=0.99) <= 4


def test_fig3_amd_node_beats_westmere_by_quarter(fig3):
    west = [r for r in fig3.by_machine("Westmere EP") if r.unit == "node"][0]
    amd = [r for r in fig3.by_machine("Magny Cours") if r.unit == "node"][0]
    assert amd.spmv_gflops / west.spmv_gflops == pytest.approx(1.25, abs=0.05)


def test_fig3_render(fig3):
    text = fig3.render()
    assert "Nehalem" in text and "GFlop/s" in text


# ----------------------------------------------------------------------
# kappa table / eqs 1-2
# ----------------------------------------------------------------------
def test_kappa_table_matches_paper():
    r = run_kappa_table()
    assert r.kappa_measured == pytest.approx(2.5, abs=0.05)
    assert r.max_performance_stream == pytest.approx(3.12, abs=0.02)
    assert r.max_performance_kappa0 == pytest.approx(2.66, abs=0.02)
    assert r.rhs_bytes_per_row == pytest.approx(37.3, abs=0.5)
    assert 5.0 < r.rhs_loads < 6.5  # "loaded six times"
    assert 0.05 < r.hmep_bad_performance_drop < 0.12  # "about 10%"
    assert "κ" in r.render() or "kappa" in r.render().lower()


# ----------------------------------------------------------------------
# fig 4
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fig4():
    return run_fig4(scale="small")


def test_fig4_has_three_schemes(fig4):
    assert set(fig4.charts) == {"no_overlap", "naive_overlap", "task_mode"}
    text = fig4.render()
    assert "Task mode" in text


def test_fig4_only_task_mode_overlaps(fig4):
    assert fig4.overlap_fraction["no_overlap"] < 0.05
    assert fig4.overlap_fraction["naive_overlap"] < 0.05
    assert fig4.overlap_fraction["task_mode"] > 0.9


def test_fig4_task_mode_fastest(fig4):
    assert fig4.makespans["task_mode"] <= min(
        fig4.makespans["no_overlap"], fig4.makespans["naive_overlap"]
    ) * 1.02


def test_fig4_rendezvous_bytes_validate_overlap_from_trace(fig4):
    """Sect. 3, measured from the event stream: without asynchronous
    progress, rendezvous bytes move during the local spMVM only when a
    dedicated communication thread drives MPI (task mode)."""
    total = fig4.rendezvous_bytes_total
    during = fig4.rendezvous_bytes_during_local
    assert total["task_mode"] > 0
    assert during["naive_overlap"] == 0.0
    assert during["no_overlap"] == 0.0
    assert during["task_mode"] == pytest.approx(total["task_mode"], rel=1e-6)
    assert "rendezvous bytes during local spMVM" in fig4.render()


def test_fig4_async_progress_unlocks_naive_overlap():
    r = run_fig4(scale="small", async_progress=True)
    assert r.rendezvous_bytes_during_local["naive_overlap"] == pytest.approx(
        r.rendezvous_bytes_total["naive_overlap"], rel=1e-6
    )


# ----------------------------------------------------------------------
# progress probe
# ----------------------------------------------------------------------
def test_progress_probe_three_regimes():
    r = run_progress_probe()
    assert r.no_async_progress < 0.05
    assert r.async_progress > 0.95
    assert r.task_mode_workaround > 0.95
    assert "probe" in r.render()


# ----------------------------------------------------------------------
# scaling studies (tiny sweep: shape only)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def mini_study(hmep_small):
    return run_scaling_study(
        hmep_small,
        "HMeP (small)",
        KAPPA["HMeP"],
        node_counts=(1, 2, 4, 8),
        include_cray=False,
        max_ranks=100,
    )


def test_study_series_complete(mini_study):
    nodes, gf = mini_study.series("per-ld", "task_mode")
    assert nodes == [1, 2, 4, 8]
    assert all(g > 0 for g in gf)


def test_study_per_core_capped(mini_study):
    # max_ranks=100 skips per-core beyond 8 nodes (96 ranks OK at 8)
    nodes, _ = mini_study.series("per-core", "task_mode")
    assert max(nodes) <= 8


def test_study_task_mode_wins_at_scale(mini_study):
    task = mini_study.gflops_at("per-ld", "task_mode", 8)
    novl = mini_study.gflops_at("per-ld", "no_overlap", 8)
    naive = mini_study.gflops_at("per-ld", "naive_overlap", 8)
    assert task > novl
    assert naive <= novl * 1.05


def test_study_render(mini_study):
    text = mini_study.render()
    assert "per ld" in text
    assert "GFlop/s vs nodes" in text
