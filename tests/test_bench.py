"""The benchmark harness, the spMVM suite, and the repro-bench/1 schema."""

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    BenchResult,
    TimingStats,
    spmvm_suite,
    time_callable,
    write_results,
)
from repro.bench.suite import KERNEL_GUARD_MIN_ROWS, kernel_guard
from repro.cli import main

EXPECTED_NAMES = {
    "spmv", "spmv-out", "spmm-k1", "spmm-k4", "spmm-k16",
    "sell-spmv", "sell-spmm-k4", "sell-spmm-k16",
    "distributed-spmv", "distributed-spmv-nodeaware",
    "distributed-spmm-k1", "distributed-spmm-k4", "distributed-spmm-k16",
    "program-overhead",
    "serve-cold", "serve-warm", "serve-coalesced",
    "sanitizer-overhead",
    "solver-cg-classic", "solver-cg-sstep",
}


# ------------------------------------------------------------- harness


def test_time_callable_counts_calls():
    calls = []
    stats = time_callable(lambda: calls.append(1), warmup=2, repeat=5)
    assert len(calls) == 7
    assert len(stats.samples) == 5
    assert all(s >= 0 for s in stats.samples)
    assert stats.min <= stats.median <= max(stats.samples)
    assert stats.min <= stats.mean <= max(stats.samples)
    assert stats.std >= 0


def test_time_callable_validation():
    with pytest.raises(ValueError):
        time_callable(lambda: None, warmup=-1)
    with pytest.raises(ValueError):
        time_callable(lambda: None, repeat=0)


def test_timing_stats_single_sample():
    s = TimingStats(samples=(0.25,))
    assert s.min == s.mean == s.median == 0.25
    assert s.std == 0.0
    assert s.to_dict() == {"min": 0.25, "mean": 0.25, "median": 0.25, "std": 0.0}


def test_bench_result_round_trip():
    r = BenchResult(
        name="x", group="kernel", warmup=1, repeat=2,
        seconds=TimingStats(samples=(1.0, 3.0)),
        params={"n": 5}, derived={"gflops": 2.0},
    )
    d = r.to_dict()
    assert d["name"] == "x"
    assert d["seconds"]["mean"] == 2.0
    assert d["params"] == {"n": 5}
    assert "gflops" in r.describe()
    json.dumps(d)  # JSON-serialisable as-is


# --------------------------------------------------------------- suite


@pytest.fixture(scope="module")
def tiny_suite():
    return spmvm_suite(quick=True, nrows=300, nranks=2)


def test_suite_covers_all_paths(tiny_suite):
    assert {r.name for r in tiny_suite} == EXPECTED_NAMES
    assert {r.group for r in tiny_suite} == {
        "kernel", "distributed", "program", "serve", "check", "solver",
    }
    for r in tiny_suite:
        assert r.seconds.min > 0
        assert r.derived["gflops"] > 0
        assert r.params["nnz"] > 0
        if "k" in r.params:
            assert r.derived["seconds_per_column"] == pytest.approx(
                r.seconds.min / r.params["k"]
            )


def test_block_results_carry_model_comparison(tiny_suite):
    # every block result reports its speedup next to the code-balance
    # prediction 6/k + 12/Nnzr (repro.model), the paper's upper bound
    for r in tiny_suite:
        if r.group == "kernel" and "spmm" in r.name:
            # k=1 predicts exactly 1.0 (no amortisation), k>1 a gain
            if r.params["k"] == 1:
                assert r.derived["model_speedup"] == 1.0
            else:
                assert r.derived["model_speedup"] > 1.0
            assert r.derived["model_fraction"] == pytest.approx(
                r.derived["speedup_vs_spmv"] / r.derived["model_speedup"]
            )


def test_registry_kernels_benched_with_metadata(tiny_suite):
    by_name = {r.name: r for r in tiny_suite}
    for name in ("sell-spmv", "sell-spmm-k4", "sell-spmm-k16"):
        r = by_name[name]
        assert r.group == "kernel"
        assert r.params["format"] == "sell"
        assert r.params["variant"] == "matmul"
        assert r.params["exact"] is False
        assert r.params["pad_factor"] >= 1.0


def _guard_result(name, k, nrows, speedup):
    return BenchResult(
        name=name, group="kernel", warmup=1, repeat=3,
        seconds=TimingStats(samples=(1.0,)),
        params={"nrows": nrows, "nnz": 10 * nrows, "k": k},
        derived={"speedup_vs_spmv": speedup},
    )


def test_kernel_guard_enforces_block_speedups():
    ok = [
        _guard_result("spmm-k1", 1, 4000, 1.0),  # k=1 parity is enough
        _guard_result("spmm-k4", 4, 4000, 1.2),
        _guard_result("spmm-k16", 16, 4000, 1.4),
    ]
    assert kernel_guard(ok) == ["spmm-k1", "spmm-k4", "spmm-k16"]
    with pytest.raises(AssertionError, match="spmm-k4"):
        kernel_guard([_guard_result("spmm-k4", 4, 4000, 0.9)])
    # k > 1 must beat spmv strictly; exact parity means no batching win
    with pytest.raises(AssertionError, match="spmm-k16"):
        kernel_guard([_guard_result("spmm-k16", 16, 4000, 1.0)])
    # the degenerate batch may tie but not lose
    with pytest.raises(AssertionError, match="spmm-k1"):
        kernel_guard([_guard_result("spmm-k1", 1, 4000, 0.99)])


def test_kernel_guard_skips_noise_dominated_sizes():
    tiny = _guard_result("spmm-k4", 4, KERNEL_GUARD_MIN_ROWS - 1, 0.5)
    assert kernel_guard([tiny]) == []
    # ...which is why the tiny test suite (300 rows) cannot flake on it


def test_tiny_suite_below_guard_threshold(tiny_suite):
    # the module fixture runs at 300 rows: the guard must have been a
    # no-op there, or CI test runs would inherit timing flakiness
    kernel_nrows = {r.params["nrows"] for r in tiny_suite if r.group == "kernel"}
    assert max(kernel_nrows) < KERNEL_GUARD_MIN_ROWS


def test_program_overhead_guard(tiny_suite):
    # the sweep-IR tentpole's perf contract: interpreter indirection must
    # stay well under 5% of the single-rank spmv hot path (the suite
    # itself raises past the guard; here we check the reported figures)
    (r,) = [r for r in tiny_suite if r.name == "program-overhead"]
    assert r.derived["guard_max"] == 0.05
    assert 0.0 <= r.derived["overhead_vs_hot_path"] < r.derived["guard_max"]
    assert r.derived["indirection_seconds"] < r.derived["hot_path_seconds"]


def test_serve_group_reports_warm_cold_and_coalesced(tiny_suite):
    from repro.bench.suite import SERVE_WARM_SPEEDUP_MIN, serve_guard

    by_name = {r.name: r for r in tiny_suite}
    warm = by_name["serve-warm"]
    # the ratio itself is only *enforced* at guard size (see below); at
    # 300 rows just require the persistent service to actually win
    assert warm.seconds.min < by_name["serve-cold"].seconds.min
    assert warm.derived["guard_min"] == SERVE_WARM_SPEEDUP_MIN
    coal = by_name["serve-coalesced"]
    assert coal.derived["bit_identical"] == 1.0  # asserted before timing
    assert coal.derived["throughput_rps"] > 0.0
    assert 1.0 <= coal.derived["mean_batch_width"] <= coal.params["max_batch"]
    # 300 rows is below SERVE_GUARD_MIN_ROWS: reported, not enforced —
    # the same no-flake policy as kernel_guard
    assert serve_guard(tiny_suite) == []


def _serve_result(name, nrows, derived):
    return BenchResult(
        name=name, group="serve", warmup=1, repeat=3,
        seconds=TimingStats(samples=(1.0,)),
        params={"nrows": nrows, "nnz": 10 * nrows, "nranks": 2, "scheme": "task_mode"},
        derived=derived,
    )


def test_serve_guard_enforces_at_guard_size():
    from repro.bench.suite import SERVE_GUARD_MIN_ROWS, serve_guard

    ok = [
        _serve_result("serve-warm", 4000,
                      {"warm_speedup_vs_cold": 8.0, "guard_min": 5.0}),
        _serve_result("serve-coalesced", 4000,
                      {"throughput_rps": 100.0, "bit_identical": 1.0}),
    ]
    assert serve_guard(ok) == ["serve-warm", "serve-coalesced"]
    with pytest.raises(AssertionError, match="rebuilding state"):
        serve_guard([_serve_result("serve-warm", 4000,
                                   {"warm_speedup_vs_cold": 1.5, "guard_min": 5.0})])
    with pytest.raises(AssertionError, match="bit-identity"):
        serve_guard([_serve_result("serve-coalesced", 4000,
                                   {"throughput_rps": 10.0})])
    # sub-guard sizes are never enforced
    tiny = _serve_result("serve-warm", SERVE_GUARD_MIN_ROWS - 1,
                         {"warm_speedup_vs_cold": 0.5, "guard_min": 5.0})
    assert serve_guard([tiny]) == []


def test_sanitizer_overhead_reported(tiny_suite):
    from repro.bench.suite import (
        SANITIZER_GUARD_MIN_ROWS,
        SANITIZER_OVERHEAD_MAX,
        sanitizer_guard,
    )

    (r,) = [r for r in tiny_suite if r.name == "sanitizer-overhead"]
    assert r.group == "check"
    assert r.derived["guard_max"] == SANITIZER_OVERHEAD_MAX
    assert r.derived["events_observed"] > 0
    assert r.derived["plain_seconds"] > 0
    # 300 rows is below SANITIZER_GUARD_MIN_ROWS: reported, not enforced
    # (sub-millisecond sweeps put thread spin-up jitter in the ratio)
    assert r.params["nrows"] < SANITIZER_GUARD_MIN_ROWS
    assert sanitizer_guard(tiny_suite) == []


def _sanitizer_result(nrows, overhead):
    return BenchResult(
        name="sanitizer-overhead", group="check", warmup=1, repeat=5,
        seconds=TimingStats(samples=(1.0,)),
        params={"nrows": nrows, "nnz": 10 * nrows, "nranks": 2, "scheme": "task_mode"},
        derived={"overhead_vs_plain": overhead, "guard_max": 1.2},
    )


def test_sanitizer_guard_enforces_at_guard_size():
    from repro.bench.suite import SANITIZER_GUARD_MIN_ROWS, sanitizer_guard

    ok = _sanitizer_result(4000, 1.1)
    assert sanitizer_guard([ok]) == ["sanitizer-overhead"]
    with pytest.raises(AssertionError, match="sanitizer-overhead"):
        sanitizer_guard([_sanitizer_result(4000, 1.5)])
    # sub-guard sizes are never enforced
    tiny = _sanitizer_result(SANITIZER_GUARD_MIN_ROWS - 1, 1.5)
    assert sanitizer_guard([tiny]) == []


def test_write_results_schema(tiny_suite, tmp_path):
    path = tmp_path / "BENCH_spmvm.json"
    payload = write_results(tiny_suite, path, quick=True)
    on_disk = json.loads(path.read_text())
    assert on_disk == payload
    assert on_disk["schema"] == BENCH_SCHEMA == "repro-bench/1"
    assert on_disk["quick"] is True
    assert on_disk["python"] and on_disk["numpy"] and on_disk["created"]
    assert {r["name"] for r in on_disk["results"]} == EXPECTED_NAMES
    for r in on_disk["results"]:
        assert set(r) == {
            "name", "group", "params", "warmup", "repeat", "seconds", "derived"
        }
        assert set(r["seconds"]) == {"min", "mean", "median", "std"}


# ----------------------------------------------------------------- CLI


def test_cli_bench_quick(tmp_path, capsys):
    out = tmp_path / "BENCH_spmvm.json"
    rc = main(["bench", "--quick", "--output", str(out)])
    assert rc == 0
    data = json.loads(out.read_text())
    assert data["schema"] == "repro-bench/1"
    assert {r["name"] for r in data["results"]} == EXPECTED_NAMES
    printed = capsys.readouterr().out
    assert "distributed-spmm-k16" in printed
    assert str(out) in printed


def _solver_result(nrows, derived):
    base = {
        "solutions_match": 1.0,
        "reductions_per_iteration": 0.5,
        "classic_reductions_per_iteration": 3.0,
        "messages_per_iteration": 4.0,
        "classic_messages_per_iteration": 14.0,
        "comm_posts_per_iteration": 1.5,
        "classic_comm_posts_per_iteration": 4.0,
        "time_ratio_vs_classic": 1.0,
        "guard_ratio_max": 1.25,
    }
    return BenchResult(
        name="solver-cg-sstep", group="solver", warmup=1, repeat=3,
        seconds=TimingStats(samples=(1.0,)),
        params={"nrows": nrows, "nnz": 5 * nrows, "nranks": 2, "grid": 32},
        derived={**base, **derived},
    )


def test_solver_guard_counts_not_times(tiny_suite):
    from repro.bench.suite import SOLVER_GUARD_MIN_ROWS, solver_guard

    # the real tiny suite passes the guard and reports the economics
    assert solver_guard(tiny_suite) == ["solver-cg-sstep"]
    (r,) = [r for r in tiny_suite if r.name == "solver-cg-sstep"]
    assert r.derived["solutions_match"] == 1.0
    assert (r.derived["reductions_per_iteration"]
            < r.derived["classic_reductions_per_iteration"])

    # counted violations are enforced at EVERY size
    with pytest.raises(AssertionError, match="stopped fusing"):
        solver_guard([_solver_result(100, {"reductions_per_iteration": 3.0})])
    with pytest.raises(AssertionError, match="extra exchanges"):
        solver_guard([_solver_result(100, {"messages_per_iteration": 20.0})])
    with pytest.raises(AssertionError, match="stopped avoiding"):
        solver_guard([_solver_result(100, {"comm_posts_per_iteration": 4.0})])
    with pytest.raises(AssertionError, match="without being verified"):
        solver_guard([_solver_result(100, {"solutions_match": 0.0})])
    # the timing ratio only at guard size and above
    slow = {"time_ratio_vs_classic": 2.0}
    assert solver_guard([_solver_result(SOLVER_GUARD_MIN_ROWS - 1, slow)])
    with pytest.raises(AssertionError, match="never lose outright"):
        solver_guard([_solver_result(SOLVER_GUARD_MIN_ROWS, slow)])
