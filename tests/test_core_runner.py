"""Simulation runner: end-to-end scheme behaviour on the calibrated machines.

These tests encode the paper's *qualitative* claims at a small scale, so
they run in seconds; the full-scale shape checks live in benchmarks/.
"""

import pytest

from repro.core import build_halo_plan, simulate_from_plan, simulate_spmvm
from repro.machine import cray_xe6_cluster, westmere_cluster
from repro.sparse import partition_matrix

EAGER = 1024  # scaled eager threshold for the reduced-size matrices


@pytest.fixture(scope="module")
def sim_matrix(hmep_small):
    return hmep_small


def test_result_accounting(sim_matrix):
    cl = westmere_cluster(2)
    r = simulate_spmvm(sim_matrix, cl, mode="per-ld", scheme="no_overlap", kappa=2.5,
                       eager_threshold=EAGER, iterations=3)
    assert r.n_ranks == 4
    assert r.iterations == 3
    assert r.total_seconds > 0
    assert r.seconds_per_mvm == pytest.approx(r.total_seconds / 3)
    assert r.gflops == pytest.approx(2 * sim_matrix.nnz / r.seconds_per_mvm / 1e9)
    assert "no_overlap" in r.describe()


def test_single_node_performance_close_to_model(sim_matrix):
    # one rank per node on one node: no network, pure membus: the simulator
    # must land near bandwidth / code balance
    cl = westmere_cluster(1)
    r = simulate_spmvm(sim_matrix, cl, mode="per-node", scheme="no_overlap", kappa=2.5,
                       eager_threshold=EAGER)
    from repro.model import CodeBalanceModel

    model = CodeBalanceModel(nnzr=sim_matrix.nnzr, kappa=2.5)
    predicted = model.performance(cl.node.spmv_bandwidth) / 1e9
    assert r.gflops == pytest.approx(predicted, rel=0.15)


def test_task_mode_beats_vector_modes_when_comm_bound(sim_matrix):
    cl = westmere_cluster(4)
    common = dict(mode="per-ld", kappa=2.5, eager_threshold=EAGER)
    novl = simulate_spmvm(sim_matrix, cl, scheme="no_overlap", **common)
    task = simulate_spmvm(sim_matrix, cl, scheme="task_mode", **common)
    assert task.gflops > novl.gflops


def test_naive_overlap_no_better_than_no_overlap(sim_matrix):
    # with 2010-era progress semantics the naive overlap cannot win
    cl = westmere_cluster(4)
    common = dict(mode="per-ld", kappa=2.5, eager_threshold=EAGER)
    novl = simulate_spmvm(sim_matrix, cl, scheme="no_overlap", **common)
    naive = simulate_spmvm(sim_matrix, cl, scheme="naive_overlap", **common)
    assert naive.gflops <= novl.gflops * 1.05


def test_async_progress_rescues_naive_overlap(sim_matrix):
    cl = westmere_cluster(4)
    common = dict(mode="per-ld", kappa=2.5, eager_threshold=EAGER)
    blocked = simulate_spmvm(sim_matrix, cl, scheme="naive_overlap", **common)
    async_ = simulate_spmvm(sim_matrix, cl, scheme="naive_overlap",
                            async_progress=True, **common)
    assert async_.gflops > blocked.gflops * 1.1


def test_comm_thread_placement_equivalent_when_saturated(sim_matrix):
    # paper: SMT virtual core vs dedicated physical core — no difference,
    # because the memory bus saturates at ~4 of 6 threads
    cl = westmere_cluster(4)
    common = dict(mode="per-ld", scheme="task_mode", kappa=2.5, eager_threshold=EAGER)
    smt = simulate_spmvm(sim_matrix, cl, comm_thread="smt", **common)
    ded = simulate_spmvm(sim_matrix, cl, comm_thread="dedicated", **common)
    assert ded.gflops == pytest.approx(smt.gflops, rel=0.10)


def test_cray_uses_dedicated_comm_core_by_default(sim_matrix):
    cl = cray_xe6_cluster(2)
    r = simulate_spmvm(sim_matrix, cl, mode="per-ld", scheme="task_mode", kappa=2.5,
                       eager_threshold=EAGER)
    assert r.gflops > 0


def test_more_nodes_more_performance(sim_matrix):
    perf = []
    for n in (1, 2, 4):
        cl = westmere_cluster(n)
        r = simulate_spmvm(sim_matrix, cl, mode="per-node", scheme="task_mode",
                           kappa=2.5, eager_threshold=EAGER)
        perf.append(r.gflops)
    assert perf[0] < perf[1] < perf[2]


def test_plan_rank_count_must_match_mode(sim_matrix):
    cl = westmere_cluster(2)
    plan = build_halo_plan(sim_matrix, partition_matrix(sim_matrix, 3), with_matrices=False)
    with pytest.raises(ValueError, match="ranks"):
        simulate_from_plan(plan, cl, mode="per-ld", scheme="no_overlap")


def test_trace_collection(sim_matrix):
    cl = westmere_cluster(1)
    r = simulate_spmvm(sim_matrix, cl, mode="per-ld", scheme="task_mode", kappa=2.5,
                       eager_threshold=EAGER, trace=True)
    assert r.trace is not None
    labels = {iv.label for iv in r.trace.intervals}
    assert "local spMVM" in labels
    assert "MPI_Waitall" in labels
