"""Cache-based κ prediction and the communication-volume analysis."""

import numpy as np
import pytest

from repro.experiments import run_comm_volume, run_kappa_prediction
from repro.matrices import poisson_1d, random_sparse
from repro.model import CacheConfig, predict_kappa, simulate_rhs_traffic
from repro.sparse import CSRMatrix


# ----------------------------------------------------------------------
# LRU cache model
# ----------------------------------------------------------------------
def test_cache_config_lines():
    cfg = CacheConfig(capacity_bytes=64 * 1024, rhs_cache_fraction=0.5)
    assert cfg.lines == 512  # 32 KiB of 64 B lines


def test_sequential_access_has_no_reloads():
    # a banded matrix touching the RHS almost sequentially: every line is
    # loaded once (compulsory) and never again after eviction
    A = poisson_1d(5000)
    pred = simulate_rhs_traffic(A, CacheConfig(capacity_bytes=8192), sample_rows=None)
    assert pred.reloads == 0
    assert pred.kappa == 0.0
    assert pred.compulsory > 0


def test_tiny_cache_forces_reloads():
    # random accesses over a working set much larger than the cache
    A = random_sparse(20_000, nnzr=8, seed=1)
    small = simulate_rhs_traffic(A, CacheConfig(capacity_bytes=4096), sample_rows=None)
    assert small.reloads > 0
    assert small.kappa > 1.0


def test_kappa_monotone_in_cache_size():
    A = random_sparse(20_000, nnzr=8, seed=2)
    kappas = [
        predict_kappa(A, CacheConfig(capacity_bytes=c), sample_rows=None)
        for c in (4096, 65536, 16 * 1024 * 1024)
    ]
    assert kappas[0] >= kappas[1] >= kappas[2]
    assert kappas[2] == 0.0  # whole RHS fits


def test_huge_cache_only_compulsory_misses():
    A = random_sparse(5000, nnzr=6, seed=3)
    pred = simulate_rhs_traffic(
        A, CacheConfig(capacity_bytes=1 << 30), sample_rows=None
    )
    assert pred.misses == pred.compulsory
    assert pred.miss_rate < 1.0


def test_sampling_approximates_full_run():
    A = random_sparse(30_000, nnzr=8, seed=4)
    cfg = CacheConfig(capacity_bytes=16 * 1024)
    full = predict_kappa(A, cfg, sample_rows=None)
    sampled = predict_kappa(A, cfg, sample_rows=10_000, seed=1)
    assert sampled == pytest.approx(full, rel=0.25)


def test_kappa_prediction_reproduces_paper_ordering(hmep_tiny, hmep_bad_tiny):
    # even at tiny scale the scattered ordering must reload more
    cfg = CacheConfig(capacity_bytes=2048, rhs_cache_fraction=0.5)
    k_good = predict_kappa(hmep_tiny, cfg, sample_rows=None)
    k_bad = predict_kappa(hmep_bad_tiny, cfg, sample_rows=None)
    assert k_bad > k_good


def test_kappa_prediction_experiment_small():
    result = run_kappa_prediction("small")
    k_good = result.predictions["HMeP"].kappa
    k_bad = result.predictions["HMEp"].kappa
    # the paper's ordering and rough magnitudes (2.5 / 3.79)
    assert k_bad > k_good
    assert 1.0 < k_good < 3.5
    assert 2.0 < k_bad < 5.0
    assert "paper κ" in result.render()


# ----------------------------------------------------------------------
# communication-volume analysis
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def volumes():
    return run_comm_volume("small", node_counts=(1, 2, 4, 6, 8, 16))


def test_single_node_has_no_internode_traffic(volumes):
    for matrix in ("HMeP", "sAMG"):
        row = volumes.series(matrix, "per-ld")[0]
        assert row.n_nodes == 1
        assert row.internode_mb == 0.0
        assert row.internode_messages == 0


def test_internode_volume_grows_with_nodes(volumes):
    for matrix in ("HMeP", "sAMG"):
        series = volumes.series(matrix, "per-ld")
        vols = [r.internode_mb for r in series]
        assert all(b >= a for a, b in zip(vols, vols[1:]))


def test_knee_explanation_steep_then_flat(volumes):
    # paper: "strong decrease in overall internode communication volume
    # when the number of nodes is small" — per added node, the volume
    # ramps steeply below ~6-8 nodes and flattens afterwards
    series = volumes.series("HMeP", "per-ld")
    by_nodes = {r.n_nodes: r.internode_mb for r in series}
    early_rate = (by_nodes[6] - by_nodes[2]) / 4.0
    late_rate = (by_nodes[16] - by_nodes[8]) / 8.0
    assert late_rate < early_rate


def test_hmep_much_heavier_than_samg(volumes):
    h = volumes.series("HMeP", "per-ld")[-1]
    s = volumes.series("sAMG", "per-ld")[-1]
    assert h.internode_mb > 2.5 * s.internode_mb


def test_message_counts_consistent(volumes):
    for r in volumes.rows:
        assert r.internode_messages <= r.messages
        assert r.internode_mb <= r.total_mb + 1e-12
    assert "knee" in volumes.render()
