"""Metamorphic tests of the simulation physics.

Rather than asserting absolute numbers, these tests check that the
simulator responds to controlled input transformations the way the
physical system must: value-independence, determinism, monotonicity in
bandwidth, conservation of transferred bytes, and the ordering
relations between library configurations.
"""

import numpy as np
import pytest

from repro.core import build_halo_plan, simulate_from_plan, simulate_spmvm
from repro.machine import (
    ClusterSpec,
    FatTree,
    LocalityDomain,
    NodeSpec,
    Socket,
    ranks_for_mode,
    westmere_cluster,
)
from repro.model import SaturationCurve
from repro.sparse import partition_matrix

EAGER = 1024


@pytest.fixture(scope="module")
def matrix(hmep_small):
    return hmep_small


@pytest.fixture(scope="module")
def plan16(matrix):
    cluster = westmere_cluster(4)
    return build_halo_plan(
        matrix, partition_matrix(matrix, ranks_for_mode(cluster, "per-ld")),
        with_matrices=False,
    )


def _run(plan, cluster, **kw):
    kw.setdefault("mode", "per-ld")
    kw.setdefault("scheme", "task_mode")
    kw.setdefault("kappa", 2.5)
    kw.setdefault("eager_threshold", EAGER)
    return simulate_from_plan(plan, cluster, **kw)


def test_determinism(plan16):
    cluster = westmere_cluster(4)
    a = _run(plan16, cluster)
    b = _run(plan16, cluster)
    assert a.total_seconds == b.total_seconds
    assert a.bytes_transferred == b.bytes_transferred


def test_timing_independent_of_matrix_values(matrix, plan16):
    # the simulator consumes only structure; scaling values changes nothing
    cluster = westmere_cluster(4)
    scaled_plan = build_halo_plan(
        matrix.scale(7.5), partition_matrix(matrix, plan16.nranks), with_matrices=False
    )
    a = _run(plan16, cluster)
    b = _run(scaled_plan, cluster)
    assert a.total_seconds == pytest.approx(b.total_seconds, rel=1e-12)


def _scaled_cluster(factor: float, n_nodes: int = 4) -> ClusterSpec:
    """Westmere cluster with every bandwidth multiplied by *factor*."""
    base = westmere_cluster(n_nodes)
    dom = base.node.domains[0]
    ld = LocalityDomain(
        n_cores=dom.n_cores,
        smt_per_core=dom.smt_per_core,
        stream_curve=dom.stream_curve.scaled(factor),
        spmv_curve=dom.spmv_curve.scaled(factor),
        peak_core_flops=dom.peak_core_flops,
    )
    node = NodeSpec(
        name="scaled",
        sockets=(Socket((ld,)), Socket((ld,))),
        nic_bandwidth=base.node.nic_bandwidth * factor,
        nic_latency=base.node.nic_latency,
        intra_bandwidth=base.node.intra_bandwidth * factor,
        intra_latency=base.node.intra_latency,
    )
    return ClusterSpec(
        name="scaled",
        node=node,
        n_nodes=n_nodes,
        network=FatTree(
            latency=1e-12,  # effectively zero: the pure-bandwidth regime
            link_bandwidth=base.node.nic_bandwidth * factor,
        ),
    )


def test_doubling_all_bandwidths_halves_time(plan16):
    # with (near-)zero network latency and the barrier-free scheme the
    # system is pure bandwidth: time ~ 1/bw.  (Task mode would retain its
    # fixed OpenMP-barrier cost, which correctly does not scale.)
    slow = _run(plan16, _scaled_cluster(1.0), scheme="no_overlap")
    fast = _run(plan16, _scaled_cluster(2.0), scheme="no_overlap")
    assert fast.total_seconds == pytest.approx(slow.total_seconds / 2.0, rel=0.02)


def test_bandwidth_monotonicity(plan16):
    times = [
        _run(plan16, _scaled_cluster(f)).total_seconds for f in (0.5, 1.0, 4.0)
    ]
    assert times[0] > times[1] > times[2]


def test_bytes_transferred_matches_plan(matrix, plan16):
    cluster = westmere_cluster(4)
    for iterations in (1, 3):
        r = _run(plan16, cluster, iterations=iterations)
        assert r.bytes_transferred == pytest.approx(
            plan16.total_comm_bytes() * iterations
        )


def test_async_progress_never_hurts(matrix):
    cluster = westmere_cluster(4)
    for scheme in ("no_overlap", "naive_overlap", "task_mode"):
        sync = simulate_spmvm(matrix, cluster, mode="per-ld", scheme=scheme,
                              kappa=2.5, eager_threshold=EAGER)
        asy = simulate_spmvm(matrix, cluster, mode="per-ld", scheme=scheme,
                             kappa=2.5, eager_threshold=EAGER, async_progress=True)
        # max-min fair sharing is not a globally optimal schedule, so tiny
        # (<0.5 %) reorderings of the straggler are possible; anything
        # larger would mean async progress genuinely hurt
        assert asy.total_seconds <= sync.total_seconds * 1.005, scheme


def test_larger_kappa_never_faster(matrix):
    cluster = westmere_cluster(2)
    t = [
        simulate_spmvm(matrix, cluster, mode="per-ld", scheme="no_overlap",
                       kappa=k, eager_threshold=EAGER).total_seconds
        for k in (0.0, 2.5, 5.0)
    ]
    assert t[0] < t[1] < t[2]


def test_iterations_scale_linearly(plan16):
    cluster = westmere_cluster(4)
    one = _run(plan16, cluster, iterations=1)
    three = _run(plan16, cluster, iterations=3)
    # steady state: per-iteration time identical within pipeline slack
    assert three.seconds_per_mvm == pytest.approx(one.seconds_per_mvm, rel=0.05)


def test_eager_threshold_extremes_bracket(matrix):
    # all-rendezvous is the slowest naive overlap, all-eager the fastest
    cluster = westmere_cluster(4)
    t = {
        eager: simulate_spmvm(matrix, cluster, mode="per-ld", scheme="naive_overlap",
                              kappa=2.5, eager_threshold=eager).total_seconds
        for eager in (0, 1024, 1 << 24)
    }
    assert t[1 << 24] <= t[1024] <= t[0] * 1.001
