"""CSR container: invariants, numerics, structure manipulation."""

import numpy as np
import pytest

from repro.sparse import COOMatrix, CSRMatrix


@pytest.fixture()
def small_dense(rng):
    return (rng.random((25, 18)) < 0.25) * rng.standard_normal((25, 18))


def test_validation_rejects_bad_row_ptr():
    with pytest.raises(ValueError, match="row_ptr\\[0\\]"):
        CSRMatrix(np.array([1, 2]), np.array([0]), np.array([1.0]), ncols=3)
    with pytest.raises(ValueError, match="non-decreasing"):
        CSRMatrix(np.array([0, 2, 1]), np.array([0, 1]), np.array([1.0, 1.0]), ncols=3)
    with pytest.raises(ValueError, match="nnz"):
        CSRMatrix(np.array([0, 5]), np.array([0]), np.array([1.0]), ncols=3)


def test_validation_rejects_unsorted_columns():
    with pytest.raises(ValueError, match="strictly increasing"):
        CSRMatrix(np.array([0, 2]), np.array([1, 0]), np.array([1.0, 2.0]), ncols=3)


def test_validation_rejects_out_of_range_column():
    with pytest.raises(ValueError, match="out of range"):
        CSRMatrix(np.array([0, 1]), np.array([4]), np.array([1.0]), ncols=3)


def test_validation_allows_empty_leading_and_trailing_rows():
    # rows 0 and 2 empty — regression test for the boundary handling
    m = CSRMatrix(np.array([0, 0, 2, 2]), np.array([0, 1]), np.array([1.0, 2.0]), ncols=2)
    assert m.row_nnz().tolist() == [0, 2, 0]


def test_shape_nnz_nnzr(small_dense):
    m = CSRMatrix.from_dense(small_dense)
    assert m.shape == small_dense.shape
    assert m.nnz == np.count_nonzero(small_dense)
    assert m.nnzr == pytest.approx(m.nnz / 25)


def test_matvec_matches_dense(small_dense, rng):
    m = CSRMatrix.from_dense(small_dense)
    x = rng.standard_normal(18)
    assert np.allclose(m @ x, small_dense @ x)
    out = np.empty(25)
    m.matvec(x, out=out)
    assert np.allclose(out, small_dense @ x)


def test_matvec_rejects_wrong_length(small_dense):
    m = CSRMatrix.from_dense(small_dense)
    with pytest.raises(ValueError, match="length"):
        m.matvec(np.zeros(5))


def test_identity():
    ident = CSRMatrix.identity(4)
    x = np.arange(4.0)
    assert np.allclose(ident @ x, x)
    assert ident.nnz == 4


def test_diagonal(small_dense):
    m = CSRMatrix.from_dense(small_dense)
    assert np.allclose(m.diagonal(), np.diag(small_dense[:, :18])[: min(25, 18)])


def test_transpose_roundtrip(small_dense):
    m = CSRMatrix.from_dense(small_dense)
    assert np.allclose(m.transpose().to_dense(), small_dense.T)
    assert np.allclose(m.transpose().transpose().to_dense(), small_dense)


def test_is_symmetric():
    d = np.array([[1.0, 2.0], [2.0, 3.0]])
    assert CSRMatrix.from_dense(d).is_symmetric()
    d[0, 1] = 5.0
    assert not CSRMatrix.from_dense(d).is_symmetric()
    assert not CSRMatrix.from_dense(np.ones((2, 3))).is_symmetric()


def test_scale_and_add(small_dense):
    m = CSRMatrix.from_dense(small_dense)
    s = m.scale(2.5)
    assert np.allclose(s.to_dense(), 2.5 * small_dense)
    tot = m.add(s)
    assert np.allclose(tot.to_dense(), 3.5 * small_dense)


def test_add_shape_mismatch():
    a = CSRMatrix.identity(3)
    b = CSRMatrix.identity(4)
    with pytest.raises(ValueError, match="shape mismatch"):
        a.add(b)


def test_extract_rows(small_dense):
    m = CSRMatrix.from_dense(small_dense)
    block = m.extract_rows(5, 12)
    assert np.allclose(block.to_dense(), small_dense[5:12])
    with pytest.raises(ValueError):
        m.extract_rows(10, 5)


def test_permute_symmetric(rng):
    d = rng.standard_normal((8, 8)) * (rng.random((8, 8)) < 0.4)
    m = CSRMatrix.from_dense(d)
    perm = rng.permutation(8)
    p = m.permute(perm)
    assert np.allclose(p.to_dense(), d[np.ix_(perm, perm)])


def test_permute_requires_square():
    m = CSRMatrix.from_dense(np.ones((2, 3)))
    with pytest.raises(ValueError, match="square"):
        m.permute(np.array([0, 1]))


def test_column_mask_split(rng):
    d = rng.standard_normal((10, 10)) * (rng.random((10, 10)) < 0.5)
    m = CSRMatrix.from_dense(d)
    mask = np.zeros(10, dtype=bool)
    mask[:6] = True
    local, remote = m.column_mask_split(mask)
    x = rng.standard_normal(10)
    assert np.allclose((local @ x) + (remote @ x), d @ x)
    assert np.all(local.col_idx < 6) if local.nnz else True
    assert np.all(remote.col_idx >= 6) if remote.nnz else True
    assert local.nnz + remote.nnz == m.nnz


def test_relabel_columns():
    m = CSRMatrix.from_dense(np.array([[0.0, 1.0, 2.0]]))
    mapping = np.array([2, 1, 0])
    r = m.relabel_columns(mapping, 3)
    assert np.allclose(r.to_dense(), [[2.0, 1.0, 0.0]])


def test_columns_used():
    m = CSRMatrix.from_dense(np.array([[1.0, 0.0, 2.0], [0.0, 0.0, 3.0]]))
    assert m.columns_used().tolist() == [0, 2]


def test_memory_bytes_accounting():
    m = CSRMatrix.identity(10)
    # 10 vals x 8 + 10 idx x 4 + 11 ptr x 8
    assert m.memory_bytes() == 80 + 40 + 88


def test_scipy_roundtrip(small_dense):
    m = CSRMatrix.from_dense(small_dense)
    back = CSRMatrix.from_scipy(m.to_scipy())
    assert np.allclose(back.to_dense(), small_dense)
