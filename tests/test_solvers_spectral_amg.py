"""Chebyshev propagation, KPM spectral density, and the AMG hierarchy."""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.matrices import build_samg_like, poisson_2d
from repro.solvers import (
    ChebyshevPropagator,
    SerialOperator,
    build_amg,
    cf_splitting,
    chebyshev_moments,
    conjugate_gradient,
    direct_interpolation,
    jackson_kernel,
    kpm_spectrum,
    spectral_bounds,
    strength_graph,
)


@pytest.fixture(scope="module")
def ham_op(hmep_tiny):
    return SerialOperator(hmep_tiny)


@pytest.fixture(scope="module")
def ham_bounds(ham_op):
    return spectral_bounds(ham_op)


# ----------------------------------------------------------------------
# Chebyshev time evolution
# ----------------------------------------------------------------------
def test_chebyshev_matches_dense_expm(hmep_tiny, ham_op, ham_bounds):
    psi0 = np.zeros(hmep_tiny.nrows, dtype=complex)
    psi0[3] = 1.0
    prop = ChebyshevPropagator(ham_op, ham_bounds)
    psi = prop.step(psi0, 0.7)
    ref = expm(-1j * hmep_tiny.to_dense() * 0.7) @ psi0
    assert np.abs(psi - ref).max() < 1e-10


def test_chebyshev_unitarity(ham_op, ham_bounds, rng):
    psi0 = rng.standard_normal(540) + 1j * rng.standard_normal(540)
    psi0 /= np.linalg.norm(psi0)
    prop = ChebyshevPropagator(ham_op, ham_bounds)
    for t in (0.1, 1.0, 3.0):
        psi = prop.step(psi0, t)
        assert np.linalg.norm(psi) == pytest.approx(1.0, abs=1e-9)


def test_chebyshev_order_grows_with_time(ham_op, ham_bounds):
    prop = ChebyshevPropagator(ham_op, ham_bounds)
    assert prop.expansion_order(2.0) > prop.expansion_order(0.2)


def test_chebyshev_evolution_composes(ham_op, ham_bounds, rng):
    # two half steps equal one full step (up to truncation error)
    psi0 = rng.standard_normal(540) + 0j
    psi0 /= np.linalg.norm(psi0)
    prop = ChebyshevPropagator(ham_op, ham_bounds)
    one = prop.step(psi0, 1.0)
    two = prop.step(prop.step(psi0, 0.5), 0.5)
    assert np.abs(one - two).max() < 1e-9


def test_chebyshev_invalid_bounds(ham_op):
    with pytest.raises(ValueError, match="bounds"):
        ChebyshevPropagator(ham_op, (2.0, 1.0))


# ----------------------------------------------------------------------
# KPM
# ----------------------------------------------------------------------
def test_jackson_kernel_shape():
    g = jackson_kernel(64)
    assert g[0] == pytest.approx(1.0, abs=1e-6)
    assert np.all(np.diff(g) < 0)  # strictly decreasing
    assert g[-1] < 0.01


def test_moments_mu0_is_one(ham_op, ham_bounds):
    mu = chebyshev_moments(ham_op, ham_bounds, n_moments=16, n_random=4)
    assert mu[0] == pytest.approx(1.0)
    assert np.all(np.abs(mu) <= 1.0 + 1e-9)  # Chebyshev moments are bounded


def test_kpm_density_normalised_and_positive(ham_op, ham_bounds):
    spec = kpm_spectrum(ham_op, ham_bounds, n_moments=96, n_random=6).normalized()
    integral = np.trapezoid(spec.density, spec.energies)
    assert integral == pytest.approx(1.0, abs=1e-6)
    assert spec.density.min() > -0.02  # Jackson kernel keeps it ~positive


def test_kpm_matches_histogram_of_dense_spectrum(hmep_tiny, ham_op, ham_bounds):
    spec = kpm_spectrum(ham_op, ham_bounds, n_moments=128, n_random=8).normalized()
    w = np.linalg.eigvalsh(hmep_tiny.to_dense())
    # cumulative distributions must agree within a few percent
    grid = np.linspace(w[0], w[-1], 12)[1:-1]
    cdf_kpm = [np.trapezoid(spec.density[spec.energies <= e],
                            spec.energies[spec.energies <= e]) for e in grid]
    cdf_ref = [(w <= e).mean() for e in grid]
    assert np.abs(np.array(cdf_kpm) - np.array(cdf_ref)).max() < 0.06


# ----------------------------------------------------------------------
# AMG
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fv_matrix():
    return build_samg_like(2500, seed=3)


def test_strength_graph_structure(fv_matrix):
    S = strength_graph(fv_matrix, theta=0.25)
    assert S.nrows == fv_matrix.nrows
    # no self loops
    rows = np.repeat(np.arange(S.nrows), S.row_nnz())
    assert not np.any(rows == S.col_idx)


def test_cf_splitting_covers_strong_points(fv_matrix):
    S = strength_graph(fv_matrix)
    coarse = cf_splitting(S)
    assert 0 < coarse.sum() < fv_matrix.nrows
    # every fine point with strong connections has a coarse strong neighbour
    fine = np.flatnonzero(~coarse)
    violations = 0
    for i in fine:
        neigh = S.col_idx[S.row_ptr[i] : S.row_ptr[i + 1]]
        if neigh.size and not coarse[neigh].any():
            violations += 1
    assert violations / max(1, fine.size) < 0.02


def test_interpolation_preserves_constants(fv_matrix):
    # direct interpolation of the constant vector must stay ~constant on
    # fine points with usable coarse neighbours (M-matrix property)
    S = strength_graph(fv_matrix)
    coarse = cf_splitting(S)
    P = direct_interpolation(fv_matrix, S, coarse)
    ones_c = np.ones(P.ncols)
    interp = P @ ones_c
    covered = interp > 0
    assert np.abs(interp[covered] - 1.0).max() < 0.6


def test_amg_vcycle_converges(fv_matrix, rng):
    hier = build_amg(fv_matrix)
    assert hier.n_levels >= 3
    assert hier.operator_complexity() < 3.0
    b = fv_matrix @ rng.standard_normal(fv_matrix.nrows)
    x, cycles, rel = hier.solve(b, tol=1e-8, max_cycles=80)
    assert rel <= 1e-8
    assert cycles < 80


def test_amg_preconditioned_cg_faster(fv_matrix, rng):
    b = fv_matrix @ rng.standard_normal(fv_matrix.nrows)
    op = SerialOperator(fv_matrix)
    plain = conjugate_gradient(op, b, tol=1e-8, max_iter=3000)
    hier = build_amg(fv_matrix)
    pcg = conjugate_gradient(op, b, tol=1e-8, max_iter=3000,
                             preconditioner=hier.as_preconditioner())
    assert pcg.converged
    assert pcg.iterations < plain.iterations / 2


def test_amg_on_structured_poisson(rng):
    A = poisson_2d(24)
    hier = build_amg(A)
    b = A @ rng.standard_normal(A.nrows)
    _x, cycles, rel = hier.solve(b, tol=1e-8)
    assert rel <= 1e-8


def test_amg_tiny_matrix_single_level():
    A = poisson_2d(4)  # 16 rows < coarse_size
    hier = build_amg(A, coarse_size=60)
    b = np.ones(A.nrows)
    x, _cycles, rel = hier.solve(b, tol=1e-10)
    assert rel <= 1e-10


def test_amg_requires_square():
    from repro.sparse import CSRMatrix

    with pytest.raises(ValueError, match="square"):
        build_amg(CSRMatrix.from_dense(np.ones((3, 4))))
