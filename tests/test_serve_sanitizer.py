"""Lock discipline of the persistent service, proven by the sanitizer.

The SolverService promises that every touch of its shared state
(pending queue, inboxes, batch parts, counters, lifecycle state)
happens under ``self._lock``.  These tests attach a
:class:`ThreadSanitizer` — which turns that lock into a
:class:`TrackedCondition` feeding happens-before edges — and hammer the
service from several client threads at once.  A clean service reports
*zero* races; the companion seeded fixture (thread-race-unlocked-service)
proves the same harness does fire when a thread skips the lock.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.check import ThreadSanitizer
from repro.serve import SolverService, build_model
from repro.sparse import spmv

NRANKS = 2
SUBMITTERS = 3
PER_THREAD = 4


@pytest.fixture(scope="module")
def model(request):
    A = request.getfixturevalue("hmep_tiny")
    return build_model(A, NRANKS, scheme="task_mode")


def _payloads(ncols, count, seed):
    rng = np.random.default_rng(seed)
    # pregenerated: np.random.Generator is not thread-safe, and the test
    # must only exercise the *service's* locking, not numpy's
    return [rng.standard_normal(ncols) for _ in range(count)]


def test_concurrent_submitters_run_race_free(model, hmep_tiny):
    san = ThreadSanitizer()
    xs = [_payloads(hmep_tiny.ncols, PER_THREAD, seed=10 + i) for i in range(SUBMITTERS)]
    results: dict[int, list[np.ndarray]] = {}

    with SolverService(model, sanitizer=san, name="tsan-submit") as svc:

        def client(i):
            out = []
            for x in xs[i]:
                out.append(svc.gather(svc.submit(x), timeout=30.0))
            results[i] = out

        threads = [threading.Thread(target=client, args=(i,)) for i in range(SUBMITTERS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = svc.stats

    report = san.finalize()
    assert report.ok, report.render()
    assert report.events_observed > 0
    assert stats["requests"] == SUBMITTERS * PER_THREAD
    for i in range(SUBMITTERS):
        for x, y in zip(xs[i], results[i]):
            np.testing.assert_allclose(y, spmv(hmep_tiny, x), rtol=1e-10)


def test_submit_racing_close_is_race_free(model, hmep_tiny):
    # closing while clients are still submitting is the hairiest path:
    # dispatcher drain, worker teardown, and ServiceClosedError rejections
    # all touch lifecycle state concurrently — and all under the lock
    from repro.serve import ServiceClosedError

    san = ThreadSanitizer()
    xs = _payloads(hmep_tiny.ncols, 8, seed=99)
    outcomes: list[str] = []
    go = threading.Event()

    svc = SolverService(model, sanitizer=san, name="tsan-close")
    try:

        def client():
            go.wait()
            for x in xs:
                try:
                    y = svc.gather(svc.submit(x), timeout=30.0)
                    np.testing.assert_allclose(y, spmv(hmep_tiny, x), rtol=1e-10)
                    outcomes.append("served")
                except ServiceClosedError:
                    outcomes.append("rejected")

        threads = [threading.Thread(target=client) for _ in range(SUBMITTERS)]
        for t in threads:
            t.start()
        go.set()
        svc.close(drain=True, timeout=30.0)  # races with the submitters
        for t in threads:
            t.join()
    finally:
        svc.close(drain=False, timeout=5.0)

    report = san.finalize()
    assert report.ok, report.render()
    # every request either completed correctly or was cleanly rejected
    assert len(outcomes) > 0
    assert set(outcomes) <= {"served", "rejected"}
    assert svc.state in ("closed", "failed")


def test_stats_and_state_probes_race_free_under_load(model, hmep_tiny):
    # observability endpoints are read paths; the lock-discipline rule
    # (and the sanitizer) hold them to the same standard as mutations
    san = ThreadSanitizer()
    xs = _payloads(hmep_tiny.ncols, 6, seed=5)
    stop = threading.Event()

    with SolverService(model, sanitizer=san, name="tsan-probe") as svc:

        def prober():
            while not stop.is_set():
                assert svc.stats["requests"] >= 0
                assert svc.state in ("running", "closing", "closed", "failed")

        t = threading.Thread(target=prober)
        t.start()
        try:
            for x in xs:
                svc.gather(svc.submit(x), timeout=30.0)
        finally:
            stop.set()
            t.join()

    report = san.finalize()
    assert report.ok, report.render()
    assert report.events_observed > 0
