"""The repo-invariant AST lint engine (repro.check.astlint).

Each rule is tested three ways: it fires on its own seeded-bug fixture,
it stays silent on representative clean code (including the sanctioned
exceptions: ``is None`` lazy-init, waiver comments, ``*_locked``
helpers), and the engine scopes it to the right files.  On top of that,
the whole shipped tree must lint clean — the lint is an invariant of
this repository, not just a tool it happens to contain.
"""

from __future__ import annotations

import pytest

from repro.check.astlint import (
    ALL_RULES,
    DEFAULT_ROOT,
    RULE_FIXTURES,
    get_rule,
    lint_fixture,
    lint_source,
    run_astlint,
    selftest,
)

RULE_NAMES = [r.name for r in ALL_RULES]


# ------------------------------------------------------------ the engine


def test_repo_lints_clean():
    findings = run_astlint()
    assert not findings, "\n".join(f.describe() for f in findings)


def test_default_root_is_the_repro_package():
    assert DEFAULT_ROOT.name == "repro"
    assert (DEFAULT_ROOT / "check" / "astlint.py").exists()


def test_selftest_fires_every_rule():
    assert selftest() == []
    assert set(RULE_FIXTURES) == set(RULE_NAMES)


@pytest.mark.parametrize("name", RULE_NAMES)
def test_each_fixture_fires_its_own_rule(name):
    findings = lint_fixture(name)
    assert findings
    assert all(f.kind == "ast-lint" for f in findings)
    assert all(f.details["rule"] == name for f in findings)
    # provenance: path and line are in the rendered message
    path, _src = RULE_FIXTURES[name]
    assert all(f.message.startswith(f"{path}:") for f in findings)


def test_get_rule_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown rule"):
        get_rule("no-such-rule")


def test_rules_scope_by_path_suffix():
    # a service-only rule never applies to kernel files and vice versa
    assert get_rule("lock-discipline").applies("repro/serve/service.py")
    assert not get_rule("lock-discipline").applies("repro/sparse/spmv.py")
    assert get_rule("hot-path-alloc").applies("repro/sparse/spmv.py")
    assert not get_rule("hot-path-alloc").applies("repro/serve/service.py")
    assert get_rule("float64-discipline").applies("repro/anything.py")


def test_waiver_comment_silences_exactly_its_rule():
    src = (
        "import numpy as np\n"
        "def spmv(A, x):\n"
        "    return np.zeros(3)  # lint: allow(hot-path-alloc) test waiver\n"
    )
    assert lint_source(src, "repro/sparse/spmv.py") == []
    # the same code without the waiver (or with the wrong rule name) fires
    assert lint_source(src.replace("hot-path-alloc", "float64-discipline"),
                       "repro/sparse/spmv.py")


# ------------------------------------------------------- hot-path-alloc


def test_hot_alloc_allows_is_none_lazy_init():
    src = (
        "import numpy as np\n"
        "_buf = None\n"
        "def spmv(A, x):\n"
        "    global _buf\n"
        "    if _buf is None:\n"
        "        _buf = np.empty(8)\n"
        "    return _buf\n"
    )
    assert lint_source(src, "repro/sparse/spmv.py") == []


def test_hot_alloc_ignores_cold_functions():
    src = (
        "import numpy as np\n"
        "def build_operator(A):\n"
        "    return np.zeros(8)\n"  # not in the hot set: allocation is fine
    )
    assert lint_source(src, "repro/sparse/spmv.py") == []


def test_hot_alloc_flags_copy_and_astype():
    src = (
        "def spmv(A, x):\n"
        "    return x.astype(float)\n"
    )
    (f,) = lint_source(src, "repro/sparse/spmv.py")
    assert ".astype()" in f.message


def test_hot_alloc_permits_asarray_validation():
    # np.asarray is no-copy for float64 input — the kernels' validation
    # idiom is deliberately outside ALLOCATORS
    src = (
        "import numpy as np\n"
        "def spmv(A, x):\n"
        "    x = np.asarray(x, dtype=np.float64)\n"
        "    return x\n"
    )
    assert lint_source(src, "repro/sparse/spmv.py") == []


# --------------------------------------------------- float64-discipline


def test_float64_rule_flags_attribute_and_dtype_string():
    src = (
        "import numpy as np\n"
        "a = np.zeros(3, dtype=np.float32)\n"
        "b = np.zeros(3, dtype='f4')\n"
    )
    findings = lint_source(src, "repro/model/new.py")
    assert len(findings) == 2


def test_float64_rule_permits_double_and_ints():
    src = (
        "import numpy as np\n"
        "a = np.zeros(3, dtype=np.float64)\n"
        "b = np.zeros(3, dtype=np.int64)\n"
        "c = np.zeros(3)\n"
    )
    assert lint_source(src, "repro/model/new.py") == []


# ------------------------------------------------------ lock-discipline


def test_lock_rule_requires_with_self_lock():
    src = (
        "class SolverService:\n"
        "    def good(self):\n"
        "        with self._lock:\n"
        "            return len(self._pending)\n"
        "    def bad(self):\n"
        "        return len(self._pending)\n"
    )
    (f,) = lint_source(src, "repro/serve/service.py")
    assert "bad()" in f.message
    assert "_pending" in f.message


def test_lock_rule_exempts_init_and_locked_helpers():
    src = (
        "class SolverService:\n"
        "    def __init__(self):\n"
        "        self._pending = []\n"
        "    def _cancel_pending_locked(self):\n"
        "        self._pending.clear()\n"
    )
    assert lint_source(src, "repro/serve/service.py") == []


def test_lock_rule_ignores_unguarded_fields():
    src = (
        "class SolverService:\n"
        "    def fine(self):\n"
        "        return self.model\n"  # immutable after __init__: not GUARDED
    )
    assert lint_source(src, "repro/serve/service.py") == []


# ----------------------------------------------- comm-thread-vocabulary


def test_comm_vocab_flags_compute_handlers_only():
    src = (
        "def _local_spmvm(engine, state):\n"
        "    engine.comm.send(1, 0, tag=1)\n"
        "def _post_sends(engine, state):\n"
        "    engine.comm.send(1, 0, tag=1)\n"  # comm op: its job
    )
    findings = lint_source(src, "repro/program/exec.py")
    assert findings
    assert all("_local_spmvm" in f.message for f in findings)


def test_comm_vocab_flags_mpi_named_calls_without_comm_attribute():
    src = (
        "def _pack(engine, state):\n"
        "    engine.router.barrier()\n"
    )
    (f,) = lint_source(src, "repro/program/exec.py")
    assert ".barrier()" in f.message


# ---------------------------------------------------------------- CLI


def test_cli_lint_clean(capsys):
    from repro.cli import main

    assert main(["lint"]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_lint_selftest(capsys):
    from repro.cli import main

    assert main(["lint", "--selftest"]) == 0
    assert "rules fired" in capsys.readouterr().out


def test_cli_lint_reports_findings_with_exit_one(tmp_path, capsys):
    from repro.cli import main

    bad = tmp_path / "serve" / "service.py"
    bad.parent.mkdir()
    bad.write_text(
        "class SolverService:\n"
        "    def leak(self):\n"
        "        return self._state\n"
    )
    assert main(["lint", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "lock-discipline" in out
    assert "1 finding(s)" in out


def test_cli_lint_single_rule(tmp_path, capsys):
    from repro.cli import main

    bad = tmp_path / "serve" / "service.py"
    bad.parent.mkdir()
    bad.write_text(
        "import numpy as np\n"
        "class SolverService:\n"
        "    def leak(self):\n"
        "        return np.zeros(3, dtype=np.float32), self._state\n"
    )
    # restricted to float64-discipline, the lock finding is not reported
    assert main(["lint", str(tmp_path), "--rule", "float64-discipline"]) == 1
    out = capsys.readouterr().out
    assert "float64" in out
    assert "lock-discipline" not in out
