"""Process-backed mpilite: the same SPMD programs on real OS processes."""

import numpy as np
import pytest

from repro.core import build_halo_plan
from repro.core.spmvm import DistributedSpMVM, scatter_vector
from repro.matrices import random_sparse
from repro.mpilite import PerRank, run_spmd_processes
from repro.sparse import partition_matrix


# target functions must be module-level (picklable)
def _rank_id(comm):
    return comm.rank * 10


def _ring(comm):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    comm.send(comm.rank, right)
    return comm.recv(left)


def _collectives(comm):
    total = comm.allreduce(comm.rank + 1)
    gathered = comm.allgather(comm.rank)
    root_val = comm.bcast("hello" if comm.rank == 1 else None, root=1)
    comm.barrier()
    part = comm.scatter(list(range(comm.size)) if comm.rank == 0 else None)
    return (total, gathered, root_val, part)


def _tagged(comm):
    peer = 1 - comm.rank
    comm.send("a", peer, tag=1)
    comm.send("b", peer, tag=2)
    # receive out of order: tag 2 first
    second = comm.recv(peer, tag=2)
    first = comm.recv(peer, tag=1)
    return (first, second)


def _spmv_rank(comm, halo, x_local):
    engine = DistributedSpMVM(comm, halo)
    return engine.multiply(x_local, "naive_overlap")


def _failing(comm):
    if comm.rank == 1:
        raise ValueError("deliberate")
    return comm.rank


def test_results_collected():
    assert run_spmd_processes(3, _rank_id) == [0, 10, 20]


def test_ring_exchange():
    assert run_spmd_processes(4, _ring) == [3, 0, 1, 2]


def test_collectives():
    out = run_spmd_processes(3, _collectives)
    assert out[0] == (6, [0, 1, 2], "hello", 0)
    assert out[2] == (6, [0, 1, 2], "hello", 2)


def test_out_of_order_tags():
    assert run_spmd_processes(2, _tagged) == [("a", "b"), ("a", "b")]


def test_error_propagates():
    with pytest.raises(RuntimeError, match="rank 1"):
        run_spmd_processes(2, _failing)


def test_distributed_spmv_on_processes():
    A = random_sparse(400, nnzr=7, seed=9)
    x = np.random.default_rng(2).standard_normal(400)
    partition = partition_matrix(A, 3)
    plan = build_halo_plan(A, partition, with_matrices=True)
    x_parts = [scatter_vector(x, partition, r) for r in range(3)]
    pieces = run_spmd_processes(3, _spmv_rank, PerRank(plan.ranks), PerRank(x_parts))
    y = np.concatenate(pieces)
    assert np.allclose(y, A @ x, atol=1e-11)
