"""mpilite runtime: router, point-to-point, collectives, SPMD launcher."""

import time

import numpy as np
import pytest

from repro.mpilite import PerRank, Router, run_spmd
from repro.mpilite.comm import CollectiveState


# ----------------------------------------------------------------------
# router
# ----------------------------------------------------------------------
def test_router_fifo_per_channel():
    r = Router(2)
    r.put(0, 1, 0, "a")
    r.put(0, 1, 0, "b")
    assert r.get(1, 0, 0) == "a"
    assert r.get(1, 0, 0) == "b"


def test_router_copies_numpy_payload():
    r = Router(2)
    buf = np.ones(4)
    r.put(0, 1, 0, buf)
    buf[:] = -1  # sender reuse must not corrupt the message
    got = r.get(1, 0, 0)
    assert np.all(got == 1.0)


def test_router_timeout():
    r = Router(2)
    with pytest.raises(TimeoutError):
        r.get(1, 0, 0, timeout=0.05)


def test_router_poll_and_stats():
    r = Router(2)
    assert not r.poll(1, 0, 0)
    r.put(0, 1, 0, np.zeros(10))
    assert r.poll(1, 0, 0)
    assert r.stats["messages"] == 1
    assert r.stats["bytes"] == 80


def test_router_rank_validation():
    r = Router(2)
    with pytest.raises(ValueError):
        r.put(0, 5, 0, "x")


# ----------------------------------------------------------------------
# SPMD launcher
# ----------------------------------------------------------------------
def test_run_spmd_collects_results():
    def fn(comm):
        return comm.rank * 10

    assert run_spmd(4, fn) == [0, 10, 20, 30]


def test_run_spmd_per_rank_args():
    def fn(comm, mine, shared):
        return (mine, shared)

    out = run_spmd(3, fn, PerRank([5, 6, 7]), "all")
    assert out == [(5, "all"), (6, "all"), (7, "all")]


def test_run_spmd_propagates_exception():
    def fn(comm):
        if comm.rank == 1:
            raise ValueError("boom")
        return comm.rank

    with pytest.raises(RuntimeError, match="rank 1"):
        run_spmd(2, fn)


def test_run_spmd_detects_deadlock():
    def fn(comm):
        if comm.rank == 0:
            comm.recv(1, timeout=0.2)  # nobody sends

    with pytest.raises((TimeoutError, RuntimeError)):
        run_spmd(2, fn, timeout=3.0)


# ----------------------------------------------------------------------
# point-to-point
# ----------------------------------------------------------------------
def test_ring_exchange():
    def fn(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        comm.send(comm.rank, right)
        return comm.recv(left)

    out = run_spmd(5, fn)
    assert out == [4, 0, 1, 2, 3]


def test_buffer_send_recv():
    def fn(comm):
        if comm.rank == 0:
            comm.Send(np.arange(5.0), 1)
            return None
        buf = np.zeros(5)
        comm.Recv(buf, 0)
        return buf.tolist()

    assert run_spmd(2, fn)[1] == [0, 1, 2, 3, 4]


def test_recv_shape_mismatch_raises():
    def fn(comm):
        if comm.rank == 0:
            comm.Send(np.zeros(3), 1)
        else:
            buf = np.zeros(5)
            comm.Recv(buf, 0)

    with pytest.raises(RuntimeError, match="shape"):
        run_spmd(2, fn)


def test_request_test_completes_inflight_irecv():
    # regression: test() used to return a flag nothing ever set for an
    # in-flight irecv, so a poll loop would spin forever even with the
    # message already in the mailbox
    def fn(comm):
        if comm.rank == 0:
            time.sleep(0.05)
            comm.Send(np.arange(4.0), 1)
            return None
        req = comm.irecv(0)
        deadline = time.monotonic() + 5.0
        while not req.test():
            assert time.monotonic() < deadline, "test() never observed the message"
            time.sleep(0.005)
        assert req.test()  # idempotent once complete
        return req.wait().tolist()

    assert run_spmd(2, fn)[1] == [0, 1, 2, 3]


def test_request_test_false_before_message_arrives():
    def fn(comm):
        if comm.rank == 1:
            req = comm.irecv(0)
            early = req.test()  # nothing sent yet
            comm.send("go", 0)
            assert req.wait() == "data"
            return early
        comm.recv(1)
        comm.send("data", 1)
        return None

    assert run_spmd(2, fn)[1] is False


def test_isend_request_test_immediately_true():
    def fn(comm):
        if comm.rank == 0:
            req = comm.isend("x", 1)
            assert req.test()
        else:
            assert comm.recv(0) == "x"
        return True

    assert all(run_spmd(2, fn))


def test_comm_send_copies_buffer_immediately():
    # the Router docstring promises senders may reuse their buffer the
    # moment Send/isend returns; pin that at the Comm level
    def fn(comm):
        if comm.rank == 0:
            buf = np.arange(6.0)
            comm.Send(buf, 1, tag=0)
            buf[:] = -1.0  # reuse immediately after a blocking-mode send
            req = comm.isend(buf * 0 + 7.0, 1, tag=1)
            req.wait()
            return None
        first = comm.recv(0, tag=0)
        second = comm.recv(0, tag=1)
        return first.tolist(), second.tolist()

    first, second = run_spmd(2, fn)[1]
    assert first == [0, 1, 2, 3, 4, 5]
    assert second == [7.0] * 6


def test_isend_payload_mutation_after_post():
    def fn(comm):
        if comm.rank == 0:
            buf = np.full(3, 2.0)
            comm.isend(buf, 1)
            buf[:] = 99.0  # mutate after the nonblocking post
            return None
        return comm.recv(0).tolist()

    assert run_spmd(2, fn)[1] == [2.0, 2.0, 2.0]


def test_irecv_isend_waitall():
    def fn(comm):
        peer = 1 - comm.rank
        reqs = [comm.isend(np.full(3, float(comm.rank)), peer),
                comm.irecv(peer)]
        results = comm.waitall(reqs)
        return float(results[1][0])

    assert run_spmd(2, fn) == [1.0, 0.0]


# ----------------------------------------------------------------------
# collectives
# ----------------------------------------------------------------------
def test_barrier_reusable():
    def fn(comm):
        for _ in range(3):
            comm.barrier()
        return True

    assert all(run_spmd(3, fn))


def test_bcast():
    def fn(comm):
        return comm.bcast("payload" if comm.rank == 1 else None, root=1)

    assert run_spmd(3, fn) == ["payload"] * 3


def test_allreduce_sum_scalar_and_array():
    def fn(comm):
        total = comm.allreduce(comm.rank + 1)
        arr = comm.allreduce(np.full(2, float(comm.rank)))
        return total, arr.tolist()

    out = run_spmd(4, fn)
    assert all(t == 10 for t, _ in out)
    assert all(a == [6.0, 6.0] for _, a in out)


def test_allreduce_custom_op():
    def fn(comm):
        return comm.allreduce(comm.rank, op=max)

    assert run_spmd(4, fn) == [3, 3, 3, 3]


def test_allgather_order():
    def fn(comm):
        return comm.allgather(comm.rank**2)

    assert run_spmd(4, fn) == [[0, 1, 4, 9]] * 4


def test_gather_root_only():
    def fn(comm):
        return comm.gather(comm.rank, root=2)

    out = run_spmd(3, fn)
    assert out[0] is None and out[1] is None
    assert out[2] == [0, 1, 2]


def test_scatter():
    def fn(comm):
        return comm.scatter([10, 20, 30] if comm.rank == 0 else None, root=0)

    assert run_spmd(3, fn) == [10, 20, 30]


def test_alltoallv():
    def fn(comm):
        # everyone sends its rank id to every *other* rank
        chunks = {
            q: np.full(2, float(comm.rank)) for q in range(comm.size) if q != comm.rank
        }
        got = comm.alltoallv(chunks)
        return sorted((src, float(arr[0])) for src, arr in got.items())

    out = run_spmd(3, fn)
    assert out[0] == [(1, 1.0), (2, 2.0)]
    assert out[1] == [(0, 0.0), (2, 2.0)]


def test_exchange_result_landing_at_deadline_is_not_a_timeout():
    # regression: after Condition.wait returned False the code raised
    # TimeoutError without re-checking whether the result had landed in
    # the meantime — a notification arriving exactly at the deadline
    # turned a completed collective into a spurious failure.  Simulate
    # that interleaving deterministically: the wait call itself deposits
    # the combined result (as the last rank would, holding the lock while
    # our timeout expires) and reports a timeout.
    state = CollectiveState(2)

    def racy_wait(timeout=None):
        state._slots.pop(0, None)
        state._results[0] = "combined"
        state._generation = 1
        state._arrived = 0
        return False  # "timed out" — but the result is there

    state._lock.wait = racy_wait
    assert state.exchange(0, "mine", lambda slots: "combined") == "combined"


def test_exchange_genuine_timeout_still_raises(monkeypatch):
    import repro.mpilite.comm as comm_mod

    monkeypatch.setattr(comm_mod, "_DEFAULT_TIMEOUT", 0.05)
    state = CollectiveState(2)
    with pytest.raises(TimeoutError, match="generation 0"):
        state.exchange(0, 1.0, lambda slots: sum(slots.values()))


def test_collectives_mixed_sequence():
    # successive different collectives must not cross-talk (generation ids)
    def fn(comm):
        a = comm.allreduce(1)
        comm.barrier()
        b = comm.allgather(comm.rank)
        c = comm.bcast("x" if comm.rank == 0 else None)
        return (a, b, c)

    out = run_spmd(3, fn)
    assert out == [(3, [0, 1, 2], "x")] * 3
