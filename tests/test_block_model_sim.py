"""Block (multi-RHS) extension of the code-balance model and simulator.

Covers the k-column generalisation of Eqs. 1-2, the per-phase traffic
accounting with ``block_k``, and the end-to-end simulator behaviour:
a batched sweep moves the same halo bytes in 1/k of the messages and
amortises the matrix-data traffic, so per-MVM time must drop.
"""

import pytest

from repro.core import build_halo_plan, simulate_spmvm
from repro.core.costs import phase_costs
from repro.machine import ranks_for_mode, westmere_cluster
from repro.model import (
    block_speedup,
    code_balance,
    code_balance_block,
    code_balance_block_split,
    code_balance_split,
)
from repro.sparse import partition_matrix

NNZRS = [3.0, 7.0, 15.0, 40.0]
KAPPAS = [0.0, 1.0, 2.5]


# ---------------------------------------------------------------- model


@pytest.mark.parametrize("nnzr", NNZRS)
@pytest.mark.parametrize("kappa", KAPPAS)
def test_block_balance_k1_recovers_eq1_eq2(nnzr, kappa):
    assert code_balance_block(nnzr, 1, kappa) == code_balance(nnzr, kappa)
    assert code_balance_block_split(nnzr, 1, kappa) == code_balance_split(nnzr, kappa)


@pytest.mark.parametrize("fn", [code_balance_block, code_balance_block_split])
def test_block_balance_monotone_in_k(fn):
    vals = [fn(15.0, k, 2.5) for k in (1, 2, 4, 8, 16, 64)]
    assert all(a > b for a, b in zip(vals, vals[1:]))
    # only the 6 bytes/flop of matrix data amortise; the per-column
    # floor remains
    floor = fn(15.0, 10**9, 2.5)
    assert floor == pytest.approx(vals[0] - 6.0, rel=1e-6)


@pytest.mark.parametrize("split", [False, True])
def test_block_speedup_properties(split):
    assert block_speedup(15.0, 1, 2.5, split=split) == 1.0
    prev = 1.0
    for k in (2, 4, 16):
        s = block_speedup(15.0, k, 2.5, split=split)
        assert s > prev
        prev = s
    # bounded by B(1)/per-column-floor
    limit = code_balance_block_split(15.0, 1) / (code_balance_block_split(15.0, 1) - 6.0) \
        if split else code_balance_block(15.0, 1) / (code_balance_block(15.0, 1) - 6.0)
    assert block_speedup(15.0, 10**6, split=split) < limit


def test_block_balance_validation():
    with pytest.raises(ValueError):
        code_balance_block(15.0, 0)
    with pytest.raises(ValueError):
        code_balance_block_split(15.0, -1)
    with pytest.raises(ValueError):
        code_balance_block(15.0, 4, kappa=-0.1)
    with pytest.raises(ValueError):
        code_balance_block(0.0, 4)


# ------------------------------------------------------- phase traffic


@pytest.fixture(scope="module")
def rank_halos(random_300):
    plan = build_halo_plan(
        random_300, partition_matrix(random_300, 4), with_matrices=False
    )
    return plan.ranks


def test_phase_costs_block_k1_is_default(rank_halos):
    for halo in rank_halos:
        assert phase_costs(halo, 2.5, block_k=1) == phase_costs(halo, 2.5)


@pytest.mark.parametrize("k", [2, 4, 16])
def test_phase_costs_block_scaling(rank_halos, k):
    for halo in rank_halos:
        one = phase_costs(halo, 2.5)
        blk = phase_costs(halo, 2.5, block_k=k)
        # gather is pure per-column work: scales exactly with k
        assert blk.gather == pytest.approx(k * one.gather)
        # kernel phases amortise the 12 B/nnz matrix stream over the
        # block: strictly cheaper than k independent sweeps, but at
        # least the per-column share
        for phase in ("full_spmv", "local_spmv", "remote_spmv"):
            b, o = getattr(blk, phase), getattr(one, phase)
            assert b < k * o
            assert b > o
        # the saving is exactly the (k-1) re-streams of the matrix data
        assert k * one.full_spmv - blk.full_spmv == pytest.approx(
            (k - 1) * 12.0 * halo.nnz
        )


def test_phase_costs_rejects_bad_block_k(rank_halos):
    with pytest.raises(ValueError):
        phase_costs(rank_halos[0], block_k=0)


# ----------------------------------------------------------- simulator


@pytest.fixture(scope="module")
def sim_matrix(hmep_tiny):
    return hmep_tiny


def _simulate(matrix, cluster, **kw):
    kw.setdefault("mode", "per-ld")
    kw.setdefault("scheme", "task_mode")
    kw.setdefault("kappa", 2.5)
    kw.setdefault("iterations", 2)
    return simulate_spmvm(matrix, cluster, **kw)


def test_simulator_block_metadata(sim_matrix):
    cluster = westmere_cluster(2)
    nranks = ranks_for_mode(cluster, "per-ld")
    plan = build_halo_plan(
        sim_matrix, partition_matrix(sim_matrix, nranks), with_matrices=False
    )
    single = _simulate(sim_matrix, cluster)
    batched = _simulate(sim_matrix, cluster, block_k=8)
    assert single.block_k == 1
    assert batched.block_k == 8
    # same halo bytes per MVM, 1/k of the messages
    assert batched.comm_bytes_per_mvm == single.comm_bytes_per_mvm
    assert single.messages_per_mvm == plan.total_messages()
    assert batched.messages_per_mvm == plan.total_messages() / 8
    assert "k=8" in batched.describe()
    assert "k=" not in single.describe()


@pytest.mark.parametrize("scheme", ["no_overlap", "naive_overlap", "task_mode"])
def test_simulator_batched_sweep_amortises(sim_matrix, scheme):
    cluster = westmere_cluster(2)
    single = _simulate(sim_matrix, cluster, scheme=scheme)
    batched = _simulate(sim_matrix, cluster, scheme=scheme, block_k=16)
    # a k-wide sweep is longer than a single sweep...
    assert batched.seconds_per_sweep > single.seconds_per_sweep
    # ...but cheaper per MVM (matrix traffic + latency amortise), so
    # the reported GFlop/s goes up
    assert batched.seconds_per_mvm < single.seconds_per_mvm
    assert batched.gflops > single.gflops
    # and it can never beat k perfectly-free columns
    assert batched.seconds_per_sweep > 0
    assert batched.seconds_per_mvm > single.seconds_per_sweep / 16


def test_simulator_moves_k_times_the_bytes(sim_matrix):
    cluster = westmere_cluster(2)
    single = _simulate(sim_matrix, cluster, iterations=1)
    batched = _simulate(sim_matrix, cluster, iterations=1, block_k=4)
    assert batched.bytes_transferred == pytest.approx(4 * single.bytes_transferred)


def test_simulator_rejects_bad_block_k(sim_matrix):
    cluster = westmere_cluster(2)
    with pytest.raises(ValueError):
        _simulate(sim_matrix, cluster, block_k=0)
