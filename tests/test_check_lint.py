"""Static plan linter: clean plans pass, every mutation class is rejected."""

import copy
import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import lint_comm_plan
from repro.comm.plan import PlanValidationError, build_comm_plan
from repro.core import build_halo_plan
from repro.matrices import random_sparse
from repro.sparse import partition_matrix

NRANKS = 6
RANK_NODE = [r // 2 for r in range(NRANKS)]  # 3 nodes, 2 ranks each


@pytest.fixture(scope="module")
def halo():
    A = random_sparse(300, nnzr=9, seed=11)
    return build_halo_plan(A, partition_matrix(A, NRANKS), with_matrices=False)


@pytest.fixture(scope="module")
def node_plan(halo):
    return build_comm_plan(halo, RANK_NODE, "node-aware")


@pytest.fixture(scope="module")
def direct_plan(halo):
    return build_comm_plan(halo, RANK_NODE, "direct")


# ----------------------------------------------------------------------
# clean plans lint clean
# ----------------------------------------------------------------------
def test_valid_plans_have_no_findings(halo, node_plan, direct_plan):
    assert lint_comm_plan(direct_plan, halo) == []
    assert lint_comm_plan(node_plan, halo) == []


def test_validate_passes_on_valid_plans(halo, node_plan, direct_plan):
    direct_plan.validate(halo)
    node_plan.validate(halo)


# ----------------------------------------------------------------------
# targeted mutations, one per invariant family
# ----------------------------------------------------------------------
def _fresh(plan):
    return copy.deepcopy(plan)


def test_dropped_relay_is_rejected(halo, node_plan):
    plan = _fresh(node_plan)
    victim = next(s for s in plan.scripts if s.relays)
    relay = victim.relays.pop()
    findings = lint_comm_plan(plan, halo)
    assert findings
    # the relay's send channels are now never sent
    flagged = {f.channel for f in findings}
    assert set(relay.send_channels) & flagged


def test_duplicated_element_is_rejected(halo, node_plan):
    plan = _fresh(node_plan)
    edge = next(e for e in plan.edges.values() if e.contributors)
    rank, pos = next(iter(edge.contributors.items()))
    edge.contributors[rank] = np.concatenate([pos, pos[:1]])  # gathered twice
    findings = lint_comm_plan(plan, halo)
    assert any("instead of exactly once" in f.message for f in findings)


def test_inflated_volume_is_rejected(halo, node_plan):
    plan = _fresh(node_plan)
    ch = plan.messages[-1].channel
    plan.messages[ch] = dataclasses.replace(
        plan.messages[ch], n_elements=plan.messages[ch].n_elements + 3
    )
    findings = lint_comm_plan(plan, halo)
    assert any(f.channel == ch for f in findings)


def test_self_send_is_rejected(halo, node_plan):
    plan = _fresh(node_plan)
    m = plan.messages[0]
    plan.messages[0] = dataclasses.replace(m, dst=m.src, dst_node=m.src_node)
    findings = lint_comm_plan(plan, halo)
    assert any("sends to itself" in f.message for f in findings)


def test_forward_not_between_leaders_is_rejected(halo, node_plan):
    plan = _fresh(node_plan)
    ch = next(m.channel for m in plan.messages if m.phase == "forward")
    m = plan.messages[ch]
    bad_src = next(
        r for r in range(NRANKS)
        if RANK_NODE[r] == m.src_node and r != plan.leaders[m.src_node]
    )
    plan.messages[ch] = dataclasses.replace(m, src=bad_src)
    findings = lint_comm_plan(plan, halo)
    assert any("leader-to-leader" in f.message for f in findings)


def test_dropped_receive_is_rejected(halo, node_plan):
    plan = _fresh(node_plan)
    ch = plan.scripts[0].recv_channels[0]
    plan.scripts[0].recv_channels.remove(ch)
    findings = lint_comm_plan(plan, halo)
    assert any(f.channel == ch and "received 0 times" in f.message for f in findings)


def test_relay_dependency_cycle_is_rejected(node_plan):
    from repro.comm.plan import Relay

    plan = _fresh(node_plan)
    script = next(s for s in plan.scripts if s.relays)
    relay = script.relays[0]
    # make the relay's output feed its own input: an impossible ordering
    loop = Relay(
        recv_channels=relay.send_channels, send_channels=relay.recv_channels
    )
    script.relays.append(loop)
    findings = lint_comm_plan(plan)
    assert any("cycle" in f.message for f in findings)


def test_validate_raises_with_full_provenance(halo, node_plan):
    plan = _fresh(node_plan)
    ch = plan.scripts[0].recv_channels[0]
    plan.scripts[0].recv_channels.remove(ch)
    with pytest.raises(PlanValidationError) as excinfo:
        plan.validate(halo)
    text = str(excinfo.value)
    assert f"channel {ch}" in text
    assert excinfo.value.findings  # structured findings ride along
    assert isinstance(excinfo.value, AssertionError)  # backward compatible


# ----------------------------------------------------------------------
# property: every mutation in these families is always rejected
# ----------------------------------------------------------------------
_MUTATIONS = ("drop-relay", "drop-recv", "drop-send", "inflate", "duplicate", "shift-dst")


@settings(max_examples=60, deadline=None)
@given(kind=st.sampled_from(_MUTATIONS), pick=st.integers(min_value=0, max_value=10_000))
def test_mutated_plans_are_always_rejected(halo, node_plan, kind, pick):
    plan = _fresh(node_plan)
    if kind == "drop-relay":
        scripts = [s for s in plan.scripts if s.relays]
        s = scripts[pick % len(scripts)]
        s.relays.pop(pick % len(s.relays))
    elif kind == "drop-recv":
        scripts = [s for s in plan.scripts if s.recv_channels]
        s = scripts[pick % len(scripts)]
        s.recv_channels.pop(pick % len(s.recv_channels))
    elif kind == "drop-send":
        scripts = [s for s in plan.scripts if s.send_channels]
        s = scripts[pick % len(scripts)]
        ch = s.send_channels.pop(pick % len(s.send_channels))
        s.n_packed_elements -= plan.messages[ch].n_elements
    elif kind == "inflate":
        ch = pick % len(plan.messages)
        plan.messages[ch] = dataclasses.replace(
            plan.messages[ch], n_elements=plan.messages[ch].n_elements + 1
        )
    elif kind == "duplicate":
        edges = [e for e in plan.edges.values() if e.contributors]
        edge = edges[pick % len(edges)]
        ranks = sorted(edge.contributors)
        rank = ranks[pick % len(ranks)]
        pos = edge.contributors[rank]
        edge.contributors[rank] = np.concatenate([pos, pos[:1]])
    else:  # shift-dst: reroute a message to a different rank
        ch = pick % len(plan.messages)
        m = plan.messages[ch]
        candidates = [r for r in range(NRANKS) if r not in (m.src, m.dst)]
        new_dst = candidates[pick % len(candidates)]
        plan.messages[ch] = dataclasses.replace(
            m, dst=new_dst, dst_node=RANK_NODE[new_dst]
        )
    assert lint_comm_plan(plan, halo), f"mutation {kind}/{pick} went undetected"
