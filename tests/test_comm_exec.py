"""Node-aware plan execution on mpilite: bit-identical to the direct path."""

import numpy as np
import pytest

from repro.comm import RankExchange, build_comm_plan
from repro.core.halo import build_halo_plan, cached_halo_plan
from repro.core.spmvm import (
    SCHEMES,
    DistributedSpMVM,
    distributed_spmm,
    distributed_spmv,
)
from repro.matrices import random_sparse
from repro.sparse import partition_matrix


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(42)


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("nranks,ranks_per_node", [(6, 2), (8, 4)])
def test_node_aware_spmv_bit_identical(hmep_tiny, rng, scheme, nranks, ranks_per_node):
    x = rng.standard_normal(hmep_tiny.nrows)
    direct = distributed_spmv(hmep_tiny, x, nranks, scheme=scheme)
    na = distributed_spmv(
        hmep_tiny, x, nranks, scheme=scheme,
        comm_plan="node-aware", ranks_per_node=ranks_per_node,
    )
    assert np.array_equal(direct, na)  # bit-identical, not just close


@pytest.mark.parametrize("scheme", SCHEMES)
def test_node_aware_spmv_samg_and_random(samg_tiny, rng, scheme):
    for A in (samg_tiny, random_sparse(500, nnzr=9, seed=5)):
        x = rng.standard_normal(A.nrows)
        direct = distributed_spmv(A, x, 6, scheme=scheme)
        na = distributed_spmv(
            A, x, 6, scheme=scheme, comm_plan="node-aware", ranks_per_node=3
        )
        assert np.array_equal(direct, na)


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("k", [1, 3, 8])
def test_node_aware_block_bit_identical(hmep_tiny, rng, scheme, k):
    X = rng.standard_normal((hmep_tiny.nrows, k))
    direct = distributed_spmm(hmep_tiny, X, 6, scheme=scheme)
    na = distributed_spmm(
        hmep_tiny, X, 6, scheme=scheme, comm_plan="node-aware", ranks_per_node=2
    )
    assert np.array_equal(direct, na)


def test_node_aware_repeated_iterations(hmep_tiny, rng):
    # sweep tags keep successive exchanges ordered through the relays
    x = rng.standard_normal(hmep_tiny.nrows)
    direct = distributed_spmv(hmep_tiny, x, 4, scheme="task_mode", iterations=3)
    na = distributed_spmv(
        hmep_tiny, x, 4, scheme="task_mode", iterations=3,
        comm_plan="node-aware", ranks_per_node=2,
    )
    assert np.array_equal(direct, na)


def test_rank_exchange_requires_node_aware_plan():
    A = random_sparse(200, nnzr=5, seed=9)
    plan = cached_halo_plan(A, 4, with_matrices=True)
    direct = build_comm_plan(plan, (0, 0, 1, 1), "direct")
    with pytest.raises(ValueError, match="node-aware"):
        RankExchange(direct, plan.ranks[0])


def test_driver_validates_comm_plan_args(hmep_tiny, rng):
    x = rng.standard_normal(hmep_tiny.nrows)
    with pytest.raises(ValueError, match="comm_plan"):
        distributed_spmv(hmep_tiny, x, 4, comm_plan="bogus")
    with pytest.raises(ValueError, match="ranks_per_node"):
        distributed_spmv(hmep_tiny, x, 4, comm_plan="node-aware", ranks_per_node=0)


def test_exchange_handles_uneven_node_sizes(rng):
    # 5 ranks on 2 nodes (3 + 2): leaders, gathers and scatters with
    # asymmetric group sizes
    A = random_sparse(300, nnzr=8, seed=13)
    x = rng.standard_normal(A.nrows)
    halo = build_halo_plan(A, partition_matrix(A, 5), with_matrices=True)
    rank_node = (0, 0, 0, 1, 1)
    na = build_comm_plan(halo, rank_node, "node-aware")
    na.validate(halo)
    from repro.mpilite.world import PerRank, run_spmd

    def rank_fn(comm, rh):
        eng = DistributedSpMVM(comm, rh, comm_plan=na)
        lo, hi = halo.partition.bounds(comm.rank)
        return eng.multiply(x[lo:hi], "no_overlap")

    pieces = run_spmd(5, rank_fn, PerRank(halo.ranks))
    ref = distributed_spmv(A, x, 5, scheme="no_overlap")
    assert np.array_equal(np.concatenate(pieces), ref)
