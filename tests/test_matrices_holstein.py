"""Holstein-Hubbard Hamiltonian: structure, symmetry, ordering equivalence."""

import numpy as np
import pytest

from repro.matrices import (
    HolsteinHubbardParams,
    build_holstein_hubbard,
    paper_params,
    ring_bonds,
)
from repro.sparse import bandwidth


@pytest.fixture(scope="module")
def tiny_params():
    return HolsteinHubbardParams(
        n_sites=4, n_up=2, n_dn=2, n_phonon_modes=2, max_phonons=4
    )


def test_ring_bonds():
    assert ring_bonds(4) == [(0, 1), (1, 2), (2, 3), (0, 3)]
    assert ring_bonds(4, periodic=False) == [(0, 1), (1, 2), (2, 3)]


def test_dimensions(tiny_params):
    assert tiny_params.electron_dim == 36
    assert tiny_params.phonon_dim == 15
    assert tiny_params.dim == 540


def test_paper_params_match_paper():
    p = paper_params()
    assert p.dim == 6_201_600
    assert p.electron_dim == 400
    assert p.phonon_dim == 15_504


def test_hamiltonian_is_symmetric(tiny_params):
    for ordering in ("HMeP", "HMEp"):
        H = build_holstein_hubbard(tiny_params, ordering=ordering)
        assert H.shape == (540, 540)
        assert H.is_symmetric(tol=1e-13)


def test_orderings_share_spectrum(hmep_tiny, hmep_bad_tiny):
    w1 = np.sort(np.linalg.eigvalsh(hmep_tiny.to_dense()))
    w2 = np.sort(np.linalg.eigvalsh(hmep_bad_tiny.to_dense()))
    assert np.allclose(w1, w2, atol=1e-10)


def test_hmep_ordering_is_more_banded(hmep_tiny, hmep_bad_tiny):
    # the whole point of the two orderings (Fig. 1 a vs b)
    assert bandwidth(hmep_tiny) < bandwidth(hmep_bad_tiny)


def test_orderings_related_by_permutation(tiny_params):
    good = build_holstein_hubbard(tiny_params, ordering="HMeP")
    bad = build_holstein_hubbard(tiny_params, ordering="HMEp")
    e_dim, p_dim = tiny_params.electron_dim, tiny_params.phonon_dim
    # HMEp index = e * p_dim + p ; HMeP index = p * e_dim + e
    perm = np.empty(e_dim * p_dim, dtype=np.int64)
    for p in range(p_dim):
        for e in range(e_dim):
            perm[p * e_dim + e] = e * p_dim + p
    assert np.allclose(bad.permute(perm).to_dense(), good.to_dense())


def test_coupling_strength_scales(tiny_params):
    from dataclasses import replace

    h0 = build_holstein_hubbard(replace(tiny_params, coupling_g=0.0))
    h1 = build_holstein_hubbard(replace(tiny_params, coupling_g=0.7))
    # g = 0 removes the electron-phonon blocks entirely
    assert h1.nnz > h0.nnz


def test_invalid_ordering_rejected(tiny_params):
    with pytest.raises(ValueError, match="ordering"):
        build_holstein_hubbard(tiny_params, ordering="whatever")


def test_too_many_phonon_modes_rejected():
    with pytest.raises(ValueError, match="n_phonon_modes"):
        HolsteinHubbardParams(n_sites=3, n_phonon_modes=4)


def test_hubbard_u_appears_on_diagonal(tiny_params):
    from dataclasses import replace

    h_no_u = build_holstein_hubbard(replace(tiny_params, hubbard_u=0.0))
    h_u = build_holstein_hubbard(replace(tiny_params, hubbard_u=5.0))
    diff = h_u.to_dense() - h_no_u.to_dense()
    assert np.allclose(diff, np.diag(np.diag(diff)))  # diagonal only
    assert diff.max() > 0
