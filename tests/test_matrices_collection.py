"""Matrix registry and random generators."""

import numpy as np
import pytest

from repro.matrices import (
    SCALES,
    available_matrices,
    get_matrix,
    random_banded,
    random_sparse,
    random_symmetric,
)
from repro.sparse import bandwidth


def test_registry_names_and_scales():
    assert set(available_matrices()) == {"HMeP", "HMEp", "sAMG"}
    assert SCALES == ("tiny", "small", "medium", "paper")
    spec = get_matrix("HMeP", "tiny")
    assert spec.name == "HMeP"
    assert spec.scale == "tiny"
    assert "Holstein-Hubbard" in spec.description


def test_registry_rejects_unknown():
    with pytest.raises(ValueError, match="name"):
        get_matrix("nonsense")
    with pytest.raises(ValueError, match="scale"):
        get_matrix("HMeP", "galactic")


def test_build_cached_returns_same_object():
    a = get_matrix("HMeP", "tiny").build_cached()
    b = get_matrix("HMeP", "tiny").build_cached()
    assert a is b
    fresh = get_matrix("HMeP", "tiny").build()
    assert fresh is not a
    assert np.array_equal(fresh.val, a.val)


def test_scales_are_ordered_by_size():
    tiny = get_matrix("HMeP", "tiny").build_cached()
    small = get_matrix("HMeP", "small").build_cached()
    assert small.nrows > tiny.nrows


def test_paper_scale_dimensions_without_building():
    from repro.matrices.collection import _HH_SCALE_PARAMS

    assert _HH_SCALE_PARAMS["paper"].dim == 6_201_600


def test_random_sparse_properties():
    A = random_sparse(500, 300, nnzr=5, seed=0)
    assert A.shape == (500, 300)
    assert 4.0 < A.nnzr <= 5.0  # duplicates collapse
    B = random_sparse(500, 300, nnzr=5, seed=0)
    assert np.array_equal(A.col_idx, B.col_idx)  # deterministic
    C = random_sparse(500, 300, nnzr=5, seed=1)
    assert not np.array_equal(A.col_idx, C.col_idx)


def test_random_sparse_ensure_diagonal():
    A = random_sparse(50, nnzr=1, seed=0, ensure_diagonal=True)
    assert np.all(A.diagonal() != 0)


def test_random_banded_stays_in_band():
    A = random_banded(400, halfwidth=10, nnzr=4, seed=2)
    assert bandwidth(A) <= 10


def test_random_symmetric_is_symmetric():
    A = random_symmetric(80, nnzr=6, seed=3)
    assert A.is_symmetric(tol=1e-12)
