"""Simulated MPI: matching, protocols, and the progress-semantics model."""

import pytest

from repro.frame import FlowNetwork, Simulator
from repro.machine.network import FatTree, Torus2D
from repro.smpi import MPIConfig, SimMPI


def _world(n_nodes=2, ranks_per_node=1, **cfg):
    sim = Simulator()
    icn = FatTree(latency=1e-6, link_bandwidth=1e9)
    net = FlowNetwork(sim, icn.resources(n_nodes))
    rank_node = [n for n in range(n_nodes) for _ in range(ranks_per_node)]
    mpi = SimMPI(sim, net, icn, rank_node, config=MPIConfig(**cfg))
    return sim, mpi


def test_send_recv_basic():
    sim, mpi = _world()
    done = {}

    def sender(sim):
        req = mpi.isend(0, 1, 1_000_000)
        yield from mpi.waitall(0, [req])
        done["send"] = sim.now

    def receiver(sim):
        req = mpi.irecv(1, 0, 1_000_000)
        yield from mpi.waitall(1, [req])
        done["recv"] = sim.now

    sim.spawn(sender(sim))
    sim.spawn(receiver(sim))
    sim.run()
    # 1 MB over 1 GB/s = 1 ms (+ latency)
    assert done["recv"] == pytest.approx(1e-3, rel=0.01)
    assert mpi.bytes_transferred == 1_000_000
    assert mpi.messages_sent == 1


def test_message_matching_by_tag():
    sim, mpi = _world()
    order = []

    def sender(sim):
        r1 = mpi.isend(0, 1, 100, tag=7)
        r2 = mpi.isend(0, 1, 100, tag=9)
        yield from mpi.waitall(0, [r1, r2])

    def receiver(sim):
        r9 = mpi.irecv(1, 0, 100, tag=9)
        r7 = mpi.irecv(1, 0, 100, tag=7)
        yield from mpi.waitall(1, [r9, r7])
        order.append("both")

    sim.spawn(sender(sim))
    sim.spawn(receiver(sim))
    sim.run()
    assert order == ["both"]


def test_eager_send_completes_without_receiver():
    sim, mpi = _world()
    state = {}

    def sender(sim):
        req = mpi.isend(0, 1, 100)  # tiny: eager
        yield from mpi.waitall(0, [req])
        state["sent_at"] = sim.now

    sim.spawn(sender(sim))
    sim.run()
    assert "sent_at" in state  # no deadlock despite missing recv


def test_rendezvous_send_blocks_without_receiver():
    sim, mpi = _world()
    state = {"sent": False}

    def sender(sim):
        req = mpi.isend(0, 1, 10_000_000)  # rendezvous
        yield from mpi.waitall(0, [req])
        state["sent"] = True

    sim.spawn(sender(sim))
    sim.run()
    assert not state["sent"]  # unmatched rendezvous never completes


def test_late_recv_gets_eager_payload_after_wire_time():
    sim, mpi = _world()
    done = {}

    def sender(sim):
        req = mpi.isend(0, 1, 1000)  # eager
        yield from mpi.waitall(0, [req])

    def receiver(sim):
        yield sim.timeout(5e-3)  # post the recv long after the send
        req = mpi.irecv(1, 0, 1000)
        yield from mpi.waitall(1, [req])
        done["recv"] = sim.now

    sim.spawn(sender(sim))
    sim.spawn(receiver(sim))
    sim.run()
    assert done["recv"] == pytest.approx(5e-3, rel=0.01)


def _overlap_probe(nbytes, compute, async_progress):
    sim, mpi = _world(async_progress=async_progress)
    finish = {}

    def rank(me, peer):
        def proc(sim):
            s = mpi.isend(me, peer, nbytes, tag=me)
            r = mpi.irecv(me, peer, nbytes, tag=peer)
            yield sim.timeout(compute)
            yield from mpi.waitall(me, [s, r])
            finish[me] = sim.now

        return proc

    sim.spawn(rank(0, 1)(sim))
    sim.spawn(rank(1, 0)(sim))
    sim.run()
    return max(finish.values())


def test_no_async_progress_serializes():
    # the paper's headline observation: transfer only inside Waitall
    nbytes, compute = 5_000_000, 5e-3
    wire = nbytes / 1e9
    total = _overlap_probe(nbytes, compute, async_progress=False)
    assert total == pytest.approx(compute + wire, rel=0.02)


def test_async_progress_overlaps():
    nbytes, compute = 5_000_000, 5e-3
    wire = nbytes / 1e9
    total = _overlap_probe(nbytes, compute, async_progress=True)
    assert total == pytest.approx(max(compute, wire), rel=0.02)


def test_comm_thread_keeps_gate_open():
    # task mode: a second "thread" of the same rank sits in waitall
    sim, mpi = _world()
    nbytes, compute = 5_000_000, 5e-3
    wire = nbytes / 1e9
    finish = {}

    def rank(me, peer):
        def proc(sim):
            s = mpi.isend(me, peer, nbytes, tag=me)
            r = mpi.irecv(me, peer, nbytes, tag=peer)
            comm_done = sim.event()

            def comm_thread():
                yield from mpi.waitall(me, [s, r])
                comm_done.succeed()

            sim.spawn(comm_thread())
            yield sim.timeout(compute)
            yield comm_done
            finish[me] = sim.now

        return proc

    sim.spawn(rank(0, 1)(sim))
    sim.spawn(rank(1, 0)(sim))
    sim.run()
    assert max(finish.values()) == pytest.approx(max(compute, wire), rel=0.02)


def test_intranode_messages_use_shared_memory():
    sim, mpi = _world(n_nodes=1, ranks_per_node=2)
    done = {}

    def sender(sim):
        yield from mpi.waitall(0, [mpi.isend(0, 1, 5_000_000)])

    def receiver(sim):
        req = mpi.irecv(1, 0, 5_000_000)
        yield from mpi.waitall(1, [req])
        done["t"] = sim.now

    sim.spawn(sender(sim))
    sim.spawn(receiver(sim))
    sim.run()
    # 5 MB over the 5 GB/s intranode pipe = 1 ms
    assert done["t"] == pytest.approx(1e-3, rel=0.02)


def test_enter_exit_depth_tracking():
    _sim, mpi = _world()
    assert not mpi.in_mpi(0)
    mpi.enter_mpi(0)
    mpi.enter_mpi(0)
    mpi.exit_mpi(0)
    assert mpi.in_mpi(0)  # nested
    mpi.exit_mpi(0)
    assert not mpi.in_mpi(0)
    with pytest.raises(RuntimeError, match="without matching"):
        mpi.exit_mpi(0)


def test_allreduce_time_scales_with_ranks():
    _sim2, mpi2 = _world(n_nodes=2)
    sim8 = Simulator()
    icn = FatTree(latency=1e-6, link_bandwidth=1e9)
    net8 = FlowNetwork(sim8, icn.resources(8))
    mpi8 = SimMPI(sim8, net8, icn, list(range(8)))
    assert mpi8.allreduce_time(8) > mpi2.allreduce_time(8)
    assert mpi2.allreduce_time(8) > 0


def test_torus_transfers_respect_link_pool():
    sim = Simulator()
    icn = Torus2D(latency=1e-6, link_bandwidth=1e9, background_load=0.0)
    net = FlowNetwork(sim, icn.resources(4))
    mpi = SimMPI(sim, net, icn, [0, 1, 2, 3])
    done = {}

    def sender(sim):
        yield from mpi.waitall(0, [mpi.isend(0, 3, 2_000_000)])

    def receiver(sim):
        req = mpi.irecv(3, 0, 2_000_000)
        yield from mpi.waitall(3, [req])
        done["t"] = sim.now

    sim.spawn(sender(sim))
    sim.spawn(receiver(sim))
    sim.run()
    assert done["t"] > 0
