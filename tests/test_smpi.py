"""Simulated MPI: matching, protocols, and the progress-semantics model."""

import pytest

from repro.frame import FlowNetwork, Simulator, TraceRecorder
from repro.machine.network import FatTree, Route, Torus2D
from repro.smpi import MPIConfig, SimMPI


def _world(n_nodes=2, ranks_per_node=1, **cfg):
    sim = Simulator()
    icn = FatTree(latency=1e-6, link_bandwidth=1e9)
    net = FlowNetwork(sim, icn.resources(n_nodes))
    rank_node = [n for n in range(n_nodes) for _ in range(ranks_per_node)]
    mpi = SimMPI(sim, net, icn, rank_node, config=MPIConfig(**cfg))
    return sim, mpi


def test_send_recv_basic():
    sim, mpi = _world()
    done = {}

    def sender(sim):
        req = mpi.isend(0, 1, 1_000_000)
        yield from mpi.waitall(0, [req])
        done["send"] = sim.now

    def receiver(sim):
        req = mpi.irecv(1, 0, 1_000_000)
        yield from mpi.waitall(1, [req])
        done["recv"] = sim.now

    sim.spawn(sender(sim))
    sim.spawn(receiver(sim))
    sim.run()
    # 1 MB over 1 GB/s = 1 ms (+ latency)
    assert done["recv"] == pytest.approx(1e-3, rel=0.01)
    assert mpi.bytes_transferred == 1_000_000
    assert mpi.messages_sent == 1


def test_message_matching_by_tag():
    sim, mpi = _world()
    order = []

    def sender(sim):
        r1 = mpi.isend(0, 1, 100, tag=7)
        r2 = mpi.isend(0, 1, 100, tag=9)
        yield from mpi.waitall(0, [r1, r2])

    def receiver(sim):
        r9 = mpi.irecv(1, 0, 100, tag=9)
        r7 = mpi.irecv(1, 0, 100, tag=7)
        yield from mpi.waitall(1, [r9, r7])
        order.append("both")

    sim.spawn(sender(sim))
    sim.spawn(receiver(sim))
    sim.run()
    assert order == ["both"]


def test_eager_send_completes_without_receiver():
    sim, mpi = _world()
    state = {}

    def sender(sim):
        req = mpi.isend(0, 1, 100)  # tiny: eager
        yield from mpi.waitall(0, [req])
        state["sent_at"] = sim.now

    sim.spawn(sender(sim))
    sim.run()
    assert "sent_at" in state  # no deadlock despite missing recv


def test_rendezvous_send_blocks_without_receiver():
    sim, mpi = _world()
    state = {"sent": False}

    def sender(sim):
        req = mpi.isend(0, 1, 10_000_000)  # rendezvous
        yield from mpi.waitall(0, [req])
        state["sent"] = True

    sim.spawn(sender(sim))
    sim.run()
    assert not state["sent"]  # unmatched rendezvous never completes


def test_late_recv_gets_eager_payload_after_wire_time():
    sim, mpi = _world()
    done = {}

    def sender(sim):
        req = mpi.isend(0, 1, 1000)  # eager
        yield from mpi.waitall(0, [req])

    def receiver(sim):
        yield sim.timeout(5e-3)  # post the recv long after the send
        req = mpi.irecv(1, 0, 1000)
        yield from mpi.waitall(1, [req])
        done["recv"] = sim.now

    sim.spawn(sender(sim))
    sim.spawn(receiver(sim))
    sim.run()
    assert done["recv"] == pytest.approx(5e-3, rel=0.01)


def _overlap_probe(nbytes, compute, async_progress):
    sim, mpi = _world(async_progress=async_progress)
    finish = {}

    def rank(me, peer):
        def proc(sim):
            s = mpi.isend(me, peer, nbytes, tag=me)
            r = mpi.irecv(me, peer, nbytes, tag=peer)
            yield sim.timeout(compute)
            yield from mpi.waitall(me, [s, r])
            finish[me] = sim.now

        return proc

    sim.spawn(rank(0, 1)(sim))
    sim.spawn(rank(1, 0)(sim))
    sim.run()
    return max(finish.values())


def test_no_async_progress_serializes():
    # the paper's headline observation: transfer only inside Waitall
    nbytes, compute = 5_000_000, 5e-3
    wire = nbytes / 1e9
    total = _overlap_probe(nbytes, compute, async_progress=False)
    assert total == pytest.approx(compute + wire, rel=0.02)


def test_async_progress_overlaps():
    nbytes, compute = 5_000_000, 5e-3
    wire = nbytes / 1e9
    total = _overlap_probe(nbytes, compute, async_progress=True)
    assert total == pytest.approx(max(compute, wire), rel=0.02)


def test_comm_thread_keeps_gate_open():
    # task mode: a second "thread" of the same rank sits in waitall
    sim, mpi = _world()
    nbytes, compute = 5_000_000, 5e-3
    wire = nbytes / 1e9
    finish = {}

    def rank(me, peer):
        def proc(sim):
            s = mpi.isend(me, peer, nbytes, tag=me)
            r = mpi.irecv(me, peer, nbytes, tag=peer)
            comm_done = sim.event()

            def comm_thread():
                yield from mpi.waitall(me, [s, r])
                comm_done.succeed()

            sim.spawn(comm_thread())
            yield sim.timeout(compute)
            yield comm_done
            finish[me] = sim.now

        return proc

    sim.spawn(rank(0, 1)(sim))
    sim.spawn(rank(1, 0)(sim))
    sim.run()
    assert max(finish.values()) == pytest.approx(max(compute, wire), rel=0.02)


def test_intranode_messages_use_shared_memory():
    sim, mpi = _world(n_nodes=1, ranks_per_node=2)
    done = {}

    def sender(sim):
        yield from mpi.waitall(0, [mpi.isend(0, 1, 5_000_000)])

    def receiver(sim):
        req = mpi.irecv(1, 0, 5_000_000)
        yield from mpi.waitall(1, [req])
        done["t"] = sim.now

    sim.spawn(sender(sim))
    sim.spawn(receiver(sim))
    sim.run()
    # 5 MB over the 5 GB/s intranode pipe = 1 ms
    assert done["t"] == pytest.approx(1e-3, rel=0.02)


def test_enter_exit_depth_tracking():
    _sim, mpi = _world()
    assert not mpi.in_mpi(0)
    mpi.enter_mpi(0)
    mpi.enter_mpi(0)
    mpi.exit_mpi(0)
    assert mpi.in_mpi(0)  # nested
    mpi.exit_mpi(0)
    assert not mpi.in_mpi(0)
    with pytest.raises(RuntimeError, match="without matching"):
        mpi.exit_mpi(0)


def test_allreduce_time_scales_with_ranks():
    _sim2, mpi2 = _world(n_nodes=2)
    sim8 = Simulator()
    icn = FatTree(latency=1e-6, link_bandwidth=1e9)
    net8 = FlowNetwork(sim8, icn.resources(8))
    mpi8 = SimMPI(sim8, net8, icn, list(range(8)))
    assert mpi8.allreduce_time(8) > mpi2.allreduce_time(8)
    assert mpi2.allreduce_time(8) > 0


def test_torus_transfers_respect_link_pool():
    sim = Simulator()
    icn = Torus2D(latency=1e-6, link_bandwidth=1e9, background_load=0.0)
    net = FlowNetwork(sim, icn.resources(4))
    mpi = SimMPI(sim, net, icn, [0, 1, 2, 3])
    done = {}

    def sender(sim):
        yield from mpi.waitall(0, [mpi.isend(0, 3, 2_000_000)])

    def receiver(sim):
        req = mpi.irecv(3, 0, 2_000_000)
        yield from mpi.waitall(3, [req])
        done["t"] = sim.now

    sim.spawn(sender(sim))
    sim.spawn(receiver(sim))
    sim.run()
    assert done["t"] > 0


# ----------------------------------------------------------------------
# degenerate routes (allreduce hardening)
# ----------------------------------------------------------------------
class _LatencyOnlyIcn(FatTree):
    """Interconnect whose routes declare no bandwidth-limited resources."""

    def route(self, nbytes, src_node, dst_node, n_nodes=None):
        return Route(self.latency, ())


class _UnregisteredIcn(FatTree):
    """Interconnect whose probe route names a resource nobody registered."""

    def route(self, nbytes, src_node, dst_node, n_nodes=None):
        return Route(self.latency, ((("ghost", 0), float(nbytes)),))


def test_allreduce_degenerate_route_falls_back_to_latency():
    sim = Simulator()
    icn = _LatencyOnlyIcn(latency=2e-6, link_bandwidth=1e9)
    net = FlowNetwork(sim, icn.resources(2))
    mpi = SimMPI(sim, net, icn, [0, 1])
    with pytest.warns(RuntimeWarning, match="latency-only"):
        t = mpi.allreduce_time(8)
    # ceil(log2 2) = 1 round of pure latency
    assert t == pytest.approx(2e-6)


def test_allreduce_unregistered_resource_raises_descriptive_error():
    sim = Simulator()
    icn = _UnregisteredIcn(latency=1e-6, link_bandwidth=1e9)
    net = FlowNetwork(sim, icn.resources(2))
    mpi = SimMPI(sim, net, icn, [0, 1])
    with pytest.raises(RuntimeError, match="ghost"):
        mpi.allreduce_time(8)


def test_allreduce_single_rank_no_probe():
    sim = Simulator()
    icn = _LatencyOnlyIcn(latency=1e-6, link_bandwidth=1e9)
    net = FlowNetwork(sim, icn.resources(1))
    mpi = SimMPI(sim, net, icn, [0])
    # zero rounds: no warning path needs to fire, duration is 0
    assert mpi.allreduce_time(8) == 0.0


# ----------------------------------------------------------------------
# structured event stream
# ----------------------------------------------------------------------
def _traced_world(n_nodes=2, **cfg):
    sim = Simulator()
    icn = FatTree(latency=1e-6, link_bandwidth=1e9)
    net = FlowNetwork(sim, icn.resources(n_nodes))
    trace = TraceRecorder()
    mpi = SimMPI(sim, net, icn, list(range(n_nodes)), config=MPIConfig(**cfg),
                 trace=trace)
    return sim, mpi, trace


def test_trace_eager_message_lifecycle():
    sim, mpi, trace = _traced_world(eager_threshold=1 << 20)

    def sender(sim):
        req = mpi.isend(0, 1, 100)
        yield from mpi.waitall(0, [req])

    def receiver(sim):
        req = mpi.irecv(1, 0, 100)
        yield from mpi.waitall(1, [req])

    sim.spawn(sender(sim))
    sim.spawn(receiver(sim))
    sim.run()
    names = [ev.name for ev in trace.iter_events("mpi")]
    assert names.count("msg_posted") == 2  # one send post, one recv post
    assert names.count("wire_started") == 1
    assert names.count("msg_completed") == 1
    started = trace.events_named("wire_started", "mpi")[0]
    assert started.args["protocol"] == "eager"
    assert started.args["nbytes"] == 100
    completed = trace.events_named("msg_completed", "mpi")[0]
    assert completed.args["mid"] == started.args["mid"]
    assert completed.args["transferred"] == 100


def test_trace_rendezvous_gating_events():
    """A rendezvous flow posted outside MPI starts gated and resumes when
    both endpoints block in Waitall."""
    sim, mpi, trace = _traced_world(eager_threshold=10, async_progress=False)

    def sender(sim):
        req = mpi.isend(0, 1, 100_000)
        yield sim.timeout(5e-6)  # compute outside MPI; gate closed
        yield from mpi.waitall(0, [req])

    def receiver(sim):
        req = mpi.irecv(1, 0, 100_000)
        yield sim.timeout(5e-6)
        yield from mpi.waitall(1, [req])

    sim.spawn(sender(sim))
    sim.spawn(receiver(sim))
    sim.run()
    started = trace.events_named("wire_started", "mpi")[0]
    assert started.args["protocol"] == "rendezvous"
    assert started.args["paused"] is True
    resumed = trace.events_named("msg_resumed", "mpi")
    assert resumed and resumed[0].time >= 5e-6
    gates = [ev.name for ev in trace.iter_events("mpi")
             if ev.name in ("gate_open", "gate_close")]
    assert gates.count("gate_open") == gates.count("gate_close")


def test_trace_disabled_by_default():
    sim, mpi = _world()

    def sender(sim):
        req = mpi.isend(0, 1, 100)
        yield from mpi.waitall(0, [req])

    def receiver(sim):
        req = mpi.irecv(1, 0, 100)
        yield from mpi.waitall(1, [req])

    sim.spawn(sender(sim))
    sim.spawn(receiver(sim))
    sim.run()  # no recorder attached; nothing should blow up
    assert mpi.messages_sent == 1
