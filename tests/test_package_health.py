"""Package-level health: imports, public API surface, docstrings."""

import importlib
import pkgutil

import repro


def _walk():
    for mod in pkgutil.walk_packages(repro.__path__, "repro."):
        yield importlib.import_module(mod.name)


def test_every_module_imports():
    mods = list(_walk())
    assert len(mods) >= 50


def test_every_module_has_docstring():
    for mod in _walk():
        if mod.__name__.endswith("__main__"):
            continue
        assert mod.__doc__ and mod.__doc__.strip(), f"{mod.__name__} lacks a docstring"


def test_all_exports_resolve():
    for mod in _walk():
        exported = getattr(mod, "__all__", None)
        if exported is None:
            continue
        for name in exported:
            assert hasattr(mod, name), f"{mod.__name__}.__all__ lists missing {name!r}"


def test_public_functions_have_docstrings():
    import inspect

    missing = []
    for mod in _walk():
        if mod.__name__.endswith("__main__"):
            continue
        for name in getattr(mod, "__all__", []):
            obj = getattr(mod, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if obj.__module__ != mod.__name__:
                    continue  # re-export; documented at its home
                if not (obj.__doc__ and obj.__doc__.strip()):
                    missing.append(f"{mod.__name__}.{name}")
    assert not missing, f"undocumented public items: {missing}"


def test_version_string():
    assert repro.__version__.count(".") == 2
