"""Service lifecycle suite: build-once/serve-many (ISSUE 7 tentpole).

Covers the acceptance criteria end to end: cold vs. warm-cache
requests, coalesced spmm batches bit-identical per column to
independent spmv requests, model serialize→deserialize→serve round
trips, concurrent submitters, and the teardown paths (drain, cancel,
worker death mid-request under the :mod:`repro.check` recorder).
"""

import threading
import time

import numpy as np
import pytest

from repro.core.spmvm import distributed_spmv
from repro.matrices import random_sparse
from repro.serve import (
    MODEL_SCHEMA,
    BuiltModel,
    ServiceClosedError,
    ServiceError,
    SolverService,
    build_model,
    cached_model,
    run_request_stream,
)


@pytest.fixture(scope="module")
def A():
    return random_sparse(240, nnzr=6.0, seed=13, ensure_diagonal=True)


@pytest.fixture(scope="module")
def model(A):
    return build_model(A, 3, scheme="task_mode")


# ----------------------------------------------------------------------
# model build + cache
# ----------------------------------------------------------------------
class TestBuiltModel:
    def test_build_captures_all_one_time_state(self, A, model):
        assert model.nranks == 3
        assert model.plan.nnz == A.nnz
        assert model.program.scheme == "task_mode"
        assert model.fingerprint == A.structure_fingerprint()
        assert model.build_seconds > 0.0
        assert "task_mode" in model.describe()

    def test_cached_model_reuses_until_structure_changes(self):
        A = random_sparse(100, nnzr=5.0, seed=14, ensure_diagonal=True)
        m1 = cached_model(A, 2)
        assert cached_model(A, 2) is m1
        assert cached_model(A, 2, scheme="no_overlap") is not m1  # new config
        B = random_sparse(100, nnzr=7.0, seed=15, ensure_diagonal=True)
        A.row_ptr, A.col_idx, A.val = B.row_ptr, B.col_idx, B.val
        m2 = cached_model(A, 2)
        assert m2 is not m1  # fingerprint guard: in-place mutation rebuilds
        assert m2.fingerprint == A.structure_fingerprint()

    def test_engines_share_one_compiled_program(self, model):
        from repro.mpilite import World

        w = World(3)
        engines = [model.engine(w.comms[r]) for r in range(3)]
        programs = {id(e.program("task_mode")) for e in engines}
        assert len(programs) == 1  # cached_sweep_program: one instance


# ----------------------------------------------------------------------
# serialization round trip
# ----------------------------------------------------------------------
class TestModelSerialization:
    def test_save_load_serve_round_trip(self, A, model, tmp_path):
        path = model.save(tmp_path / "model.npz")
        loaded = BuiltModel.load(path)
        assert loaded.fingerprint == model.fingerprint
        assert loaded.kernel.key == model.kernel.key
        assert loaded.program is model.program  # same process-wide cache
        x = np.arange(A.nrows, dtype=float)
        with SolverService(model) as live, SolverService(loaded) as thawed:
            np.testing.assert_array_equal(live.solve(x), thawed.solve(x))

    def test_load_rejects_wrong_schema(self, model, tmp_path):
        import json

        path = model.save(tmp_path / "model.npz")
        data = dict(np.load(path))
        meta = json.loads(str(data["meta"][()]))
        meta["schema"] = "repro-model/0"
        data["meta"] = np.array(json.dumps(meta))
        np.savez(tmp_path / "bad.npz", **data)
        with pytest.raises(ValueError, match=MODEL_SCHEMA.replace("/", "/")):
            BuiltModel.load(tmp_path / "bad.npz")

    def test_load_detects_corrupted_matrix(self, model, tmp_path):
        path = model.save(tmp_path / "model.npz")
        data = dict(np.load(path))
        data["matrix.col_idx"] = data["matrix.col_idx"].copy()
        data["matrix.col_idx"][0] += 1  # flip one structural entry
        np.savez(path, **data)
        with pytest.raises(ValueError, match="fingerprint mismatch"):
            BuiltModel.load(path)

    def test_load_requires_registered_kernel(self, A, tmp_path):
        import json

        from repro.sparse.registry import get_kernel, register_kernel, unregister_kernel

        sell = get_kernel("sell")
        ghost = type(sell)(
            format="ghost", variant="v1", description="test-only", exact=sell.exact,
            build=sell.build, spmv=sell.spmv, spmv_add=sell.spmv_add,
            spmm=sell.spmm, spmm_add=sell.spmm_add,
        )
        register_kernel(ghost)
        try:
            path = build_model(A, 2, kernel="ghost/v1").save(tmp_path / "m.npz")
        finally:
            unregister_kernel("ghost/v1")
        with pytest.raises(ValueError, match="not registered in this process"):
            BuiltModel.load(path)
        meta = json.loads(str(np.load(path)["meta"][()]))
        assert meta["kernel"] == "ghost/v1"


# ----------------------------------------------------------------------
# serving: correctness, coalescing, concurrency
# ----------------------------------------------------------------------
class TestServing:
    def test_single_request_matches_independent_spmv(self, A, model):
        x = np.sin(np.arange(A.nrows))
        with SolverService(model) as svc:
            y = svc.solve(x)
        np.testing.assert_array_equal(y, distributed_spmv(A, x, 3, scheme="task_mode"))

    def test_submit_poll_gather_lifecycle(self, A, model):
        x = np.ones(A.nrows)
        with SolverService(model) as svc:
            req = svc.submit(x)
            y = svc.gather(req, timeout=30.0)
            assert svc.poll(req) and req.done
            assert req.latency is not None and req.latency >= 0.0
        assert y.shape == (A.nrows,)

    def test_block_request_keeps_shape(self, A, model):
        X = np.ones((A.nrows, 3))
        with SolverService(model) as svc:
            Y = svc.solve(X)
        assert Y.shape == (A.nrows, 3)

    def test_submit_validates_shape(self, A, model):
        with SolverService(model) as svc:
            with pytest.raises(ValueError, match="rows"):
                svc.submit(np.ones(A.nrows + 1))
            with pytest.raises(ValueError, match="1-D or 2-D"):
                svc.submit(np.ones((A.nrows, 2, 2)))

    def test_coalesced_batch_bit_identical_to_per_request_spmv(self, A, model):
        rng = np.random.default_rng(5)
        X = rng.standard_normal((10, A.nrows))
        with SolverService(model, max_batch=16) as svc:
            singles = [svc.solve(X[i]) for i in range(10)]  # width-1 batches
            with svc.hold():  # stage all 10, release as ONE spmm batch
                reqs = [svc.submit(X[i]) for i in range(10)]
            coalesced = [svc.gather(r) for r in reqs]
            widths = svc.stats["batch_widths"]
        assert widths[-1] == 10  # actually coalesced, not serialized
        for i in range(10):
            np.testing.assert_array_equal(coalesced[i], singles[i])
            np.testing.assert_array_equal(
                coalesced[i], distributed_spmv(A, X[i], 3, scheme="task_mode")
            )

    def test_max_batch_splits_coalesced_bursts(self, A, model):
        with SolverService(model, max_batch=4) as svc:
            with svc.hold():
                reqs = [svc.submit(np.ones(A.nrows)) for _ in range(10)]
            for r in reqs:
                svc.gather(r)
            widths = svc.stats["batch_widths"]
        assert max(widths) <= 4
        assert sum(widths) == 10

    def test_concurrent_submitters(self, A, model):
        rng = np.random.default_rng(6)
        X = rng.standard_normal((24, A.nrows))
        out = [None] * 24
        with SolverService(model, max_batch=8) as svc:

            def run(lane):
                for i in range(lane, 24, 6):
                    out[i] = svc.solve(X[i])

            threads = [threading.Thread(target=run, args=(w,)) for w in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = svc.stats
        assert stats["requests"] == 24
        for i in range(24):
            np.testing.assert_array_equal(
                out[i], distributed_spmv(A, X[i], 3, scheme="task_mode")
            )

    def test_request_stream_driver(self, A, tmp_path):
        report = run_request_stream(
            A, 2, requests=12, concurrency=4, max_batch=4,
            model_path=tmp_path / "m.npz", matrix_label="random/240",
        )
        assert report.verified == 4
        s = report.summary()
        assert s["count"] == 12 and s["p50"] > 0.0 and s["throughput_rps"] > 0.0
        assert "random/240" in report.render()


# ----------------------------------------------------------------------
# teardown: drain, cancel, worker death mid-request
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_close_drains_outstanding_requests(self, A, model):
        svc = SolverService(model)
        with svc.hold():
            reqs = [svc.submit(np.ones(A.nrows)) for _ in range(5)]
            # requests are queued but not dispatched; close must drain them
            closer = threading.Thread(target=svc.close)
            closer.start()
        closer.join(10.0)
        assert not closer.is_alive()
        for r in reqs:
            assert svc.gather(r, timeout=1.0).shape == (A.nrows,)
        assert svc.state == "closed"

    def test_close_without_drain_cancels_with_provenance(self, A, model):
        svc = SolverService(model, name="cancelly")
        with svc.hold():
            reqs = [svc.submit(np.ones(A.nrows)) for _ in range(3)]
            svc.close(drain=False)
        for r in reqs:
            with pytest.raises(ServiceClosedError, match=r"request \d+"):
                svc.gather(r, timeout=1.0)

    def test_submit_after_close_raises(self, A, model):
        svc = SolverService(model)
        svc.close()
        with pytest.raises(ServiceClosedError, match="closed"):
            svc.submit(np.ones(A.nrows))

    def test_worker_death_mid_request_fails_fast_with_provenance(self, A):
        from repro.check import CommRecorder

        rec = CommRecorder(3)
        model = build_model(A, 3, scheme="task_mode")
        svc = SolverService(model, recorder=rec, name="doomed")
        x = np.ones(A.nrows)
        svc.solve(x)  # one healthy request first
        svc.inject_fault(1)
        t0 = time.perf_counter()
        with pytest.raises(ServiceError) as excinfo:
            svc.solve(x, timeout=30.0)
        elapsed = time.perf_counter() - t0
        # fail-fast: milliseconds, not the 60 s collective/receive timeout
        assert elapsed < 5.0
        msg = str(excinfo.value)
        assert "rank 1" in msg and "doomed" in msg and "batch" in msg
        assert svc.state == "failed"
        assert svc.world.aborted is not None
        # the analyzer's recorder survives the crash and still reports
        report = rec.finalize(context="kill-mid-request")
        assert report is not None
        with pytest.raises(ServiceClosedError, match="failed"):
            svc.submit(x)
        svc.close()  # idempotent after failure

    def test_peer_blocked_in_exchange_gets_descriptive_abort(self, A):
        # the survivors' view: their halo receives must surface the
        # WorldAbortedError provenance, not a bare timeout
        from repro.mpilite import WorldAbortedError

        model = build_model(A, 2, scheme="no_overlap")
        svc = SolverService(model, name="survivor")
        svc.world.abort("injected teardown")
        with pytest.raises(ServiceError) as excinfo:
            svc.solve(np.ones(A.nrows), timeout=30.0)
        cause = excinfo.value.__cause__
        assert isinstance(cause, WorldAbortedError)
        assert "injected teardown" in str(cause)
        svc.close()

    def test_idle_service_burns_no_measurable_cpu(self, A, model):
        with SolverService(model) as svc:
            svc.solve(np.ones(A.nrows))  # warm every thread up
            cpu0 = time.process_time()
            time.sleep(0.5)
            idle_cpu = time.process_time() - cpu0
        assert idle_cpu < 0.05
