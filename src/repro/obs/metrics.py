"""Flat metrics extraction from one simulation run.

One ``{name: value}`` dict per :class:`~repro.core.runner.SimulationResult`
— the shape every metrics backend (Prometheus exposition, CSV columns,
regression-test assertions) can ingest without schema negotiation.

Naming convention: dotted lowercase paths.  ``sim.*`` for run-level
figures, ``mpi.*`` for message/event counts from the structured trace,
``resource.<class>.*`` for utilization aggregated over all resources of
one class (``membus``, ``nic_out``, ``nic_in``, ``intra``,
``torus_links``).
"""

from __future__ import annotations

from collections import Counter

from repro.comm.plan import PHASES
from repro.core.runner import SimulationResult
from repro.frame.trace import TraceRecorder

__all__ = ["simulation_metrics", "comm_phase_messages", "per_op_costs", "render_op_costs"]

#: Structured-event names folded into ``mpi.<name>`` counters.
_MPI_EVENT_NAMES = (
    "msg_posted",
    "msg_matched",
    "wire_started",
    "msg_gated",
    "msg_resumed",
    "msg_completed",
    "gate_open",
    "gate_close",
)


def comm_phase_messages(trace: TraceRecorder) -> dict[str, int]:
    """Posted *send* counts per communication-plan phase.

    Messages posted without a ``phase`` label (the legacy per-peer
    exchange) count as ``direct``, so direct-plan and pre-plan traces
    report identically.  Keys cover all of :data:`repro.comm.plan.PHASES`.
    """
    counts = Counter(
        ev.args.get("phase", "direct")
        for ev in trace.events
        if ev.name == "msg_posted" and ev.args.get("kind") == "send"
    )
    return {phase: int(counts.get(phase, 0)) for phase in PHASES}


def per_op_costs(trace: TraceRecorder) -> dict[tuple[str, int, str], dict[str, float]]:
    """Aggregate the per-op cost attribution events of one traced run.

    Both interpreters (:func:`repro.program.sim.sweep_process` and
    :func:`~repro.program.sim.multi_sweep_process`) emit one ``op_cost``
    event per executed sweep op, keyed on the program signature id and
    the op's sweep index.  This folds them into
    ``(program_id, sweep, op_kind) -> {"count": n, "seconds": total}``
    — the data behind ``repro trace --per-op``: where one chained
    program actually spends its time, sweep by sweep.
    """
    agg: dict[tuple[str, int, str], dict[str, float]] = {}
    for ev in trace.events_named("op_cost", "program"):
        key = (str(ev.args["program"]), int(ev.args["sweep"]), str(ev.args["op"]))
        cell = agg.get(key)
        if cell is None:
            cell = agg[key] = {"count": 0.0, "seconds": 0.0}
        cell["count"] += 1.0
        cell["seconds"] += float(ev.args.get("seconds", 0.0))
    return agg


def render_op_costs(trace: TraceRecorder) -> str:
    """ASCII table of :func:`per_op_costs`, grouped by program and sweep."""
    agg = per_op_costs(trace)
    if not agg:
        return "no op_cost events recorded (trace the run with trace=True)"
    lines = [f"{'program':<32} {'sweep':>5} {'op':<14} {'count':>7} {'seconds':>12}"]
    for (pid, sweep, op), cell in sorted(agg.items()):
        lines.append(
            f"{pid:<32} {sweep:>5} {op:<14} {int(cell['count']):>7} "
            f"{cell['seconds']:>12.6f}"
        )
    return "\n".join(lines)


def simulation_metrics(result: SimulationResult) -> dict[str, float]:
    """Flatten *result* (and its trace, if any) into one metrics dict."""
    m: dict[str, float] = {
        "sim.nodes": float(result.n_nodes),
        "sim.ranks": float(result.n_ranks),
        "sim.iterations": float(result.iterations),
        "sim.total_seconds": float(result.total_seconds),
        "sim.seconds_per_mvm": float(result.seconds_per_mvm),
        "sim.gflops": float(result.gflops),
        "sim.nnz": float(result.nnz),
        "sim.comm_bytes_per_mvm": float(result.comm_bytes_per_mvm),
        "sim.messages_per_mvm": float(result.messages_per_mvm),
        "sim.bytes_transferred": float(result.bytes_transferred),
    }
    if result.trace is not None:
        counts = Counter(ev.name for ev in result.trace.events if ev.category == "mpi")
        for name in _MPI_EVENT_NAMES:
            m[f"mpi.{name}"] = float(counts.get(name, 0))
        for phase, n in comm_phase_messages(result.trace).items():
            m[f"comm.phase.{phase}.messages"] = float(n)
        m["trace.intervals"] = float(len(result.trace.intervals))
        m["trace.events"] = float(len(result.trace.events))
        barriers = [ev for ev in result.trace.events if ev.category == "barrier"]
        m["omp.barrier_waits"] = float(len(barriers))
        m["omp.barrier_seconds"] = float(
            sum(ev.args.get("seconds", 0.0) for ev in barriers)
        )
    if result.resource_stats:
        by_class: dict[str, list] = {}
        for key, stats in result.resource_stats.items():
            cls = key[0] if isinstance(key, tuple) and key else str(key)
            by_class.setdefault(str(cls), []).append(stats)
        for cls, stats_list in sorted(by_class.items()):
            m[f"resource.{cls}.count"] = float(len(stats_list))
            m[f"resource.{cls}.bytes_moved"] = float(
                sum(s.bytes_moved for s in stats_list)
            )
            m[f"resource.{cls}.busy_seconds_max"] = float(
                max(s.busy_seconds for s in stats_list)
            )
            m[f"resource.{cls}.max_concurrent_flows"] = float(
                max(s.max_concurrent_flows for s in stats_list)
            )
            m[f"resource.{cls}.flows_started"] = float(
                sum(s.flows_started for s in stats_list)
            )
            if result.total_seconds > 0:
                m[f"resource.{cls}.busy_fraction_max"] = float(
                    max(
                        s.busy_fraction(result.total_seconds) for s in stats_list
                    )
                )
    return m
