"""Per-phase summary table from a timeline trace.

Aggregates the recorded intervals by label — how often each phase ran,
how much actor-time it consumed, and which share of the makespan it
covers — the numbers behind the paper's Fig. 4 narrative, in one table.

The labels are a stable contract: the simulation backend of the sweep
IR emits exactly ``repro.program.SIM_PHASE_LABELS`` for compute ops
(plus ``MPI_Waitall`` and the ``:comm`` actor suffix for task mode's
communication thread), so these tables survived the scheme refactor
unchanged.
"""

from __future__ import annotations

from repro.frame.trace import TraceRecorder
from repro.util.tables import Table

__all__ = ["phase_summary"]


def phase_summary(recorder: TraceRecorder, *, title: str | None = None) -> Table:
    """One row per interval label: count, total/mean duration, makespan share.

    ``total`` sums over all actors, so phases running concurrently on
    many ranks can exceed 100 % of the makespan — that is actor-time,
    not wall time.
    """
    makespan = recorder.makespan() or 1.0
    by_label: dict[str, list[float]] = {}
    for iv in recorder.intervals:
        by_label.setdefault(iv.label, []).append(iv.duration)
    table = Table(
        ["phase", "count", "total ms", "mean ms", "% of makespan"],
        title=title,
    )
    for label, durations in sorted(
        by_label.items(), key=lambda kv: -sum(kv[1])
    ):
        total = sum(durations)
        table.add_row(
            [
                label,
                len(durations),
                total * 1e3,
                total / len(durations) * 1e3,
                100.0 * total / makespan,
            ]
        )
    return table
