"""Chrome/Perfetto ``trace_event`` JSON export.

The `trace_event format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
is the lingua franca of timeline viewers: ``chrome://tracing``,
https://ui.perfetto.dev and Speedscope all read it.  We map

* each traced *actor* (``rank0``, ``rank0:comm``, ...) to one thread of
  a single process, named via ``thread_name`` metadata events,
* each recorded interval to a complete (``"ph": "X"``) event,
* each structured event to an instant (``"ph": "i"``) event carrying its
  ``args`` payload.

Timestamps are microseconds, as the format requires; the simulator's
clock runs in seconds.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.frame.trace import TraceRecorder

__all__ = ["chrome_trace_events", "to_chrome_trace", "write_chrome_trace"]

_US = 1e6  # seconds -> microseconds


def _tid_map(recorder: TraceRecorder) -> dict[str, int]:
    return {actor: tid for tid, actor in enumerate(recorder.actors())}


def chrome_trace_events(recorder: TraceRecorder, *, pid: int = 0) -> list[dict[str, Any]]:
    """The ``traceEvents`` list for *recorder* (metadata first)."""
    tids = _tid_map(recorder)
    out: list[dict[str, Any]] = [
        {
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "name": "thread_name",
            "args": {"name": actor},
        }
        for actor, tid in tids.items()
    ]
    for iv in sorted(recorder.intervals, key=lambda iv: (iv.start, iv.actor)):
        out.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": tids[iv.actor],
                "name": iv.label,
                "cat": "interval",
                "ts": iv.start * _US,
                "dur": iv.duration * _US,
            }
        )
    for ev in recorder.iter_events():
        out.append(
            {
                "ph": "i",
                "s": "t",  # thread-scoped instant
                "pid": pid,
                "tid": tids[ev.actor],
                "name": ev.name,
                "cat": ev.category or "event",
                "ts": ev.time * _US,
                "args": dict(ev.args),
            }
        )
    return out


def to_chrome_trace(recorder: TraceRecorder) -> dict[str, Any]:
    """The full JSON-object form of the trace."""
    return {
        "traceEvents": chrome_trace_events(recorder),
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(recorder: TraceRecorder, path: str | Path) -> Path:
    """Write the trace as JSON; returns the written path.

    Load the file in ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_chrome_trace(recorder), indent=None))
    return path
