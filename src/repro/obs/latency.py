"""Latency/throughput summaries for the solver service.

The simulator side of :mod:`repro.obs` summarises *one* run in depth;
a request-serving system needs the orthogonal view — the distribution
of many small runs.  :func:`latency_summary` reduces a latency sample
set to the percentile report every serving benchmark quotes (p50/p90/
p99), and :func:`throughput` is the matching requests-per-second rate.
Used by the ``repro serve`` driver and the ``serve`` bench group.
"""

from __future__ import annotations

from collections.abc import Iterable

__all__ = ["latency_summary", "percentile", "throughput"]


def percentile(samples: Iterable[float], q: float) -> float:
    """The *q*-th percentile of *samples* (linear interpolation).

    Self-contained (sort + interpolate) so callers can feed plain
    lists of floats without numpy round-trips; ``q`` is in ``[0, 100]``.
    """
    xs = sorted(float(s) for s in samples)
    if not xs:
        raise ValueError("percentile() of an empty sample set")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    if len(xs) == 1:
        return xs[0]
    pos = (q / 100.0) * (len(xs) - 1)
    lo = int(pos)
    frac = pos - lo
    if lo + 1 >= len(xs):
        return xs[-1]
    return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac


def latency_summary(
    samples: Iterable[float], *, percentiles: tuple[float, ...] = (50.0, 90.0, 99.0)
) -> dict[str, float]:
    """Reduce latency *samples* (seconds) to the standard serving report.

    Returns ``{"count", "min", "mean", "max", "p50", "p90", "p99"}``
    (one ``p{q:g}`` key per requested percentile), all in seconds.
    """
    xs = sorted(float(s) for s in samples)
    if not xs:
        raise ValueError("latency_summary() of an empty sample set")
    out = {
        "count": float(len(xs)),
        "min": xs[0],
        "mean": sum(xs) / len(xs),
        "max": xs[-1],
    }
    for q in percentiles:
        out[f"p{q:g}"] = percentile(xs, q)
    return out


def throughput(count: int, wall_seconds: float) -> float:
    """Completed requests per second over a *wall_seconds* window."""
    if wall_seconds <= 0.0:
        raise ValueError(f"wall_seconds must be > 0, got {wall_seconds}")
    return count / wall_seconds
