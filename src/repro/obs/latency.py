"""Latency/throughput summaries for the solver service and workload runs.

The simulator side of :mod:`repro.obs` summarises *one* run in depth;
a request-serving system needs the orthogonal view — the distribution
of many small runs.  :func:`latency_summary` reduces a latency sample
set to the percentile report every serving benchmark quotes (p50/p90/
p99), :func:`throughput` is the matching requests-per-second rate, and
:func:`bounded_slowdown` is the batch-scheduling fairness metric the
workload layer reports per job.  Used by the ``repro serve`` driver,
the ``serve`` bench group, and :mod:`repro.workload`.
"""

from __future__ import annotations

from collections.abc import Iterable

__all__ = ["bounded_slowdown", "latency_summary", "percentile", "throughput"]


def percentile(samples: Iterable[float], q: float) -> float:
    """The *q*-th percentile of *samples* (linear interpolation).

    Self-contained (sort + interpolate) so callers can feed plain
    lists of floats without numpy round-trips; ``q`` is in ``[0, 100]``.
    """
    xs = sorted(float(s) for s in samples)
    if not xs:
        raise ValueError("percentile() of an empty sample set")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    if len(xs) == 1:
        return xs[0]
    pos = (q / 100.0) * (len(xs) - 1)
    lo = int(pos)
    frac = pos - lo
    if lo + 1 >= len(xs):
        return xs[-1]
    return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac


def latency_summary(
    samples: Iterable[float], *, percentiles: tuple[float, ...] = (50.0, 90.0, 99.0)
) -> dict[str, float]:
    """Reduce latency *samples* (seconds) to the standard serving report.

    Returns ``{"count", "min", "mean", "max", "p50", "p90", "p99"}``
    (one ``p{q:g}`` key per requested percentile), all in seconds.
    """
    xs = sorted(float(s) for s in samples)
    if not xs:
        raise ValueError("latency_summary() of an empty sample set")
    out = {
        "count": float(len(xs)),
        "min": xs[0],
        "mean": sum(xs) / len(xs),
        "max": xs[-1],
    }
    for q in percentiles:
        out[f"p{q:g}"] = percentile(xs, q)
    return out


def throughput(count: int, wall_seconds: float) -> float:
    """Completed requests per second over a *wall_seconds* window."""
    if wall_seconds <= 0.0:
        raise ValueError(f"wall_seconds must be > 0, got {wall_seconds}")
    return count / wall_seconds


def bounded_slowdown(response: float, runtime: float, *, tau: float = 1.0e-3) -> float:
    """Bounded slowdown of one job (Feitelson's BSLD metric).

    Plain slowdown (response time over runtime) explodes for very short
    jobs — a 1 µs job that waited 1 ms scores 1000 — so the runtime is
    clamped from below by the interactivity threshold ``tau`` and the
    whole expression from below by 1::

        BSLD = max(1, response / max(runtime, tau))

    ``tau`` defaults to one simulated millisecond, matching the job
    durations the workload generators produce; schedulers are compared
    on the mean/percentile BSLD over a trace.
    """
    if response < 0.0:
        raise ValueError(f"response must be >= 0, got {response}")
    if runtime < 0.0:
        raise ValueError(f"runtime must be >= 0, got {runtime}")
    if tau <= 0.0:
        raise ValueError(f"tau must be > 0, got {tau}")
    return max(1.0, response / max(runtime, tau))
