"""Transfer-segment reconstruction from the structured event stream.

A rendezvous message's life on the wire is piecewise: it starts (possibly
already gated), is paused whenever the MPI progress gate of either
endpoint closes, resumes when the gate reopens, and eventually completes.
The simulated MPI emits an event at each of these transitions *with the
cumulative byte count at that instant*, so the exact number of bytes
moved in every active stretch is known; within a stretch bytes are
attributed linearly over time (the rate may vary with contention, so
sub-segment attribution is an approximation — segment totals are exact).

This is what lets the Fig. 4 reproduction assert, from data rather than
from the picture, that rendezvous bytes move *during* the local spMVM in
task mode but not under naive overlap with 2010-era progress semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.frame.trace import TraceRecorder

__all__ = [
    "TransferSegment",
    "transfer_segments",
    "merge_windows",
    "bytes_moved_during",
    "overlap_bytes_with_phase",
]

_LIFECYCLE = ("wire_started", "msg_gated", "msg_resumed", "msg_completed")


@dataclass(frozen=True)
class TransferSegment:
    """One actively-transferring stretch of one message."""

    mid: int
    src: int
    dst: int
    protocol: str
    start: float
    end: float
    nbytes: float  # bytes moved within this segment (exact)

    @property
    def duration(self) -> float:
        """Segment length in seconds."""
        return self.end - self.start


def transfer_segments(
    recorder: TraceRecorder, *, protocol: str | None = None
) -> list[TransferSegment]:
    """Active-transfer segments of every message, reconstructed from events.

    ``protocol`` restricts the result to ``"eager"`` or ``"rendezvous"``
    messages.  Messages that never reached the wire contribute nothing.
    """
    by_mid: dict[int, list] = {}
    for ev in recorder.iter_events("mpi"):
        if ev.name in _LIFECYCLE and "mid" in ev.args:
            by_mid.setdefault(ev.args["mid"], []).append(ev)
    segments: list[TransferSegment] = []
    for mid, events in sorted(by_mid.items()):
        proto = ""
        src = dst = -1
        active_since: float | None = None
        transferred_at_start = 0.0
        for ev in events:  # already time-ordered by iter_events
            if ev.name == "wire_started":
                proto = ev.args.get("protocol", "")
                src = ev.args.get("src", -1)
                dst = ev.args.get("dst", -1)
                if not ev.args.get("paused", False):
                    active_since = ev.time
                    transferred_at_start = 0.0
            elif ev.name == "msg_resumed":
                if active_since is None:
                    active_since = ev.time
                    transferred_at_start = float(ev.args.get("transferred", 0.0))
            elif ev.name in ("msg_gated", "msg_completed") and active_since is not None:
                moved = float(ev.args.get("transferred", 0.0)) - transferred_at_start
                if moved > 0 or ev.time > active_since:
                    segments.append(
                        TransferSegment(
                            mid=mid, src=src, dst=dst, protocol=proto,
                            start=active_since, end=ev.time, nbytes=max(0.0, moved),
                        )
                    )
                active_since = None
    if protocol is not None:
        segments = [s for s in segments if s.protocol == protocol]
    return sorted(segments, key=lambda s: (s.start, s.mid))


def merge_windows(windows: Iterable[tuple[float, float]]) -> list[tuple[float, float]]:
    """Union of possibly-overlapping ``(start, end)`` windows."""
    merged: list[tuple[float, float]] = []
    for lo, hi in sorted((lo, hi) for lo, hi in windows if hi > lo):
        if merged and lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged


def bytes_moved_during(
    segments: Sequence[TransferSegment], windows: Iterable[tuple[float, float]]
) -> float:
    """Bytes the *segments* moved inside the union of the *windows*.

    Within one segment bytes are attributed proportionally to overlap
    time; a zero-duration segment counts fully if its instant lies in a
    window.
    """
    merged = merge_windows(windows)
    total = 0.0
    for seg in segments:
        for lo, hi in merged:
            overlap = min(seg.end, hi) - max(seg.start, lo)
            if overlap <= 0 and not (seg.duration == 0 and lo <= seg.start <= hi):
                continue
            if seg.duration == 0:
                total += seg.nbytes
            else:
                total += seg.nbytes * max(0.0, overlap) / seg.duration
    return total


def overlap_bytes_with_phase(
    recorder: TraceRecorder,
    label: str = "local spMVM",
    *,
    protocol: str | None = "rendezvous",
) -> float:
    """Bytes moved while one of the message's *own endpoints* ran *label*.

    This is the communication/computation-overlap quantity of the paper:
    a transfer counts only while its sending or receiving rank is inside
    the named compute phase.  Under 2010-era progress semantics a
    rendezvous transfer progresses only when both endpoints sit inside
    MPI — i.e. in no compute phase — so this is exactly 0 for naive
    overlap, and large in task mode, where the comm thread holds the
    gate open during the compute threads' local spMVM.  (A global
    any-rank window would instead pick up incidental drift overlap from
    unrelated rank pairs.)
    """
    windows_of: dict[int, list[tuple[float, float]]] = {}

    def rank_windows(rank: int) -> list[tuple[float, float]]:
        if rank not in windows_of:
            windows_of[rank] = recorder.phase_windows(label, actor=f"rank{rank}")
        return windows_of[rank]

    total = 0.0
    for seg in transfer_segments(recorder, protocol=protocol):
        total += bytes_moved_during([seg], rank_windows(seg.src) + rank_windows(seg.dst))
    return total
