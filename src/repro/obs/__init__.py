"""Observability exporters for the discrete-event simulator.

The simulator records two complementary data sets (see
:class:`repro.frame.trace.TraceRecorder`): coarse *intervals* (what each
actor did, and when) and a structured *event stream* (message lifecycle,
compute-phase boundaries, barrier waits, MPI progress-gate transitions).
This package turns them into artefacts a human or a test can consume:

* :mod:`repro.obs.chrome` — Chrome/Perfetto ``trace_event`` JSON
  (load the file in ``chrome://tracing`` or https://ui.perfetto.dev),
* :mod:`repro.obs.metrics` — one flat ``{name: value}`` dict per
  simulation run (makespan, GFlop/s, event counts, per-resource-class
  utilization),
* :mod:`repro.obs.summary` — a per-phase ASCII summary table,
* :mod:`repro.obs.analysis` — transfer-segment reconstruction: how many
  bytes each rendezvous message moved inside any time window, the basis
  of the Fig. 4 overlap validation,
* :mod:`repro.obs.latency` — request-latency percentile summaries and
  throughput rates for the solver service (:mod:`repro.serve`).
"""

from repro.obs.analysis import (
    TransferSegment,
    bytes_moved_during,
    merge_windows,
    overlap_bytes_with_phase,
    transfer_segments,
)
from repro.obs.chrome import chrome_trace_events, to_chrome_trace, write_chrome_trace
from repro.obs.latency import bounded_slowdown, latency_summary, percentile, throughput
from repro.obs.metrics import (
    comm_phase_messages,
    per_op_costs,
    render_op_costs,
    simulation_metrics,
)
from repro.obs.summary import phase_summary

__all__ = [
    "TransferSegment",
    "transfer_segments",
    "bytes_moved_during",
    "merge_windows",
    "overlap_bytes_with_phase",
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "simulation_metrics",
    "comm_phase_messages",
    "per_op_costs",
    "render_op_costs",
    "phase_summary",
    "latency_summary",
    "percentile",
    "throughput",
    "bounded_slowdown",
]
