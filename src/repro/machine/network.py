"""Interconnect models: nonblocking fat tree (QDR IB) and 2-D torus (Gemini).

A network model answers two questions for a point-to-point message:

1. which shared *resources* the transfer occupies, and with how much
   demand (bytes) on each — the simulator's flow engine then applies
   weighted max-min fair sharing among all concurrent transfers;
2. what start-up latency the message pays.

The fat tree is nonblocking: only the two endpoints' NICs can contend,
which is why the Westmere/QDR cluster handles the HMeP matrix's
non-nearest-neighbour traffic well (Sect. 4).  The torus routes messages
over shared links; demand grows with hop count and a background-load
factor models the "strong influence of job topology and machine load"
the paper observed on the Cray XE6.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, sqrt
from typing import Callable, Hashable

from repro.util import check_fraction, check_positive_float

__all__ = ["Route", "Interconnect", "FatTree", "Torus2D"]

ResourceKey = Hashable


@dataclass(frozen=True)
class Route:
    """Resource demands of one message transfer.

    ``demands`` maps resource keys to bytes of demand placed on that
    resource; ``latency`` is the fixed start-up cost in seconds.
    """

    latency: float
    demands: tuple[tuple[ResourceKey, float], ...]


@dataclass(frozen=True)
class Interconnect:
    """Base class for interconnect models.

    Subclasses must implement :meth:`route` and :meth:`resources`.
    ``intra_*`` parameters price messages between ranks on the same node
    (shared-memory transport, double copy through a buffer).
    """

    latency: float
    intra_latency: float = 0.6e-6
    intra_bandwidth: float = 5.0e9
    #: NIC occupancy per *message* (seconds): the injection-rate limit of
    #: the network adapter.  Start-up latency is pipelined across
    #: concurrent messages, but a NIC processes message descriptors
    #: serially, so a rank pair exchanging many small messages is bounded
    #: by the NIC's message rate — the effect node-aware communication
    #: plans exploit (PAPERS.md: Bienz, Gropp & Olson).  0 (the default)
    #: keeps the pure bytes-only model.  Intra-node transports are not
    #: charged: their per-message cost is an order of magnitude below the
    #: NIC's and is already represented by ``intra_latency``.
    message_overhead: float = 0.0

    def route(
        self, nbytes: float, src_node: int, dst_node: int, n_nodes: int | None = None
    ) -> Route:
        """Resource demands for an *nbytes* transfer between two node ids.

        ``n_nodes`` is the machine size the transfer runs on; topologies
        whose routing depends on it (the torus) require it, point-to-point
        models (the fat tree) ignore it.
        """
        raise NotImplementedError

    def resources(self, n_nodes: int) -> dict[ResourceKey, Callable[[float], float]]:
        """All resource keys and their capacity functions for *n_nodes* nodes.

        A capacity function maps the total active weight on the resource
        to aggregate bytes/s (constant for plain links).
        """
        raise NotImplementedError

    def _intra_route(self, nbytes: float, node: int) -> Route:
        return Route(self.intra_latency, ((("intra", node), float(nbytes)),))

    def _intra_resources(self, n_nodes: int) -> dict[ResourceKey, Callable[[float], float]]:
        return {("intra", n): _const(self.intra_bandwidth) for n in range(n_nodes)}


def _const(value: float) -> Callable[[float], float]:
    def capacity(_weight: float) -> float:
        return value

    return capacity


@dataclass(frozen=True)
class FatTree(Interconnect):
    """Fully nonblocking fat tree (the paper's QDR InfiniBand cluster).

    Every node injects/extracts through its NIC at ``link_bandwidth`` per
    direction; the spine is nonblocking, so NICs are the only shared
    resources.  QDR IB: ~3.2 GB/s effective per direction, ~1.5 us MPI
    latency.
    """

    link_bandwidth: float = 3.2e9

    def __post_init__(self) -> None:
        check_positive_float(self.link_bandwidth, "link_bandwidth")
        check_positive_float(self.latency, "latency")
        if self.message_overhead < 0:
            raise ValueError(f"message_overhead must be >= 0, got {self.message_overhead}")

    def route(
        self, nbytes: float, src_node: int, dst_node: int, n_nodes: int | None = None
    ) -> Route:
        if src_node == dst_node:
            return self._intra_route(nbytes, src_node)
        nic = float(nbytes) + self.message_overhead * self.link_bandwidth
        return Route(
            self.latency,
            ((("nic_out", src_node), nic), (("nic_in", dst_node), nic)),
        )

    def resources(self, n_nodes: int) -> dict[ResourceKey, Callable[[float], float]]:
        out: dict[ResourceKey, Callable[[float], float]] = {}
        for n in range(n_nodes):
            out[("nic_out", n)] = _const(self.link_bandwidth)
            out[("nic_in", n)] = _const(self.link_bandwidth)
        out.update(self._intra_resources(n_nodes))
        return out


@dataclass(frozen=True)
class Torus2D(Interconnect):
    """2-D torus with dimension-ordered routing (Cray Gemini-like).

    Per-node injection is fast (``link_bandwidth`` > QDR IB), but a
    message consumes capacity on every link of its path: its demand on
    the shared link pool scales with the hop count.  ``background_load``
    removes a fraction of the pool for other jobs sharing the torus —
    the machine-load sensitivity the paper reports.
    """

    link_bandwidth: float = 6.0e9
    background_load: float = 0.0

    def __post_init__(self) -> None:
        check_positive_float(self.link_bandwidth, "link_bandwidth")
        check_positive_float(self.latency, "latency")
        check_fraction(self.background_load, "background_load")
        if self.message_overhead < 0:
            raise ValueError(f"message_overhead must be >= 0, got {self.message_overhead}")

    @staticmethod
    def dims(n_nodes: int) -> tuple[int, int]:
        """Near-square torus dimensions for *n_nodes* (row-major placement)."""
        w = max(1, int(round(sqrt(n_nodes))))
        h = ceil(n_nodes / w)
        return w, h

    def hops(self, src_node: int, dst_node: int, n_nodes: int) -> int:
        """Manhattan distance with wraparound for row-major placement."""
        w, h = self.dims(n_nodes)
        sx, sy = src_node % w, src_node // w
        dx, dy = dst_node % w, dst_node // w
        ddx = min(abs(sx - dx), w - abs(sx - dx))
        ddy = min(abs(sy - dy), h - abs(sy - dy))
        return max(1, ddx + ddy)

    def route(
        self, nbytes: float, src_node: int, dst_node: int, n_nodes: int | None = None
    ) -> Route:
        if src_node == dst_node:
            return self._intra_route(nbytes, src_node)
        if n_nodes is None:
            raise ValueError("Torus2D.route() needs n_nodes (hop count depends on it)")
        hops = self.hops(src_node, dst_node, n_nodes)
        nic = float(nbytes) + self.message_overhead * self.link_bandwidth
        return Route(
            self.latency,
            (
                (("nic_out", src_node), nic),
                (("nic_in", dst_node), nic),
                (("torus_links",), float(nbytes) * hops),
            ),
        )

    def resources(self, n_nodes: int) -> dict[ResourceKey, Callable[[float], float]]:
        out: dict[ResourceKey, Callable[[float], float]] = {}
        for n in range(n_nodes):
            out[("nic_out", n)] = _const(self.link_bandwidth)
            out[("nic_in", n)] = _const(self.link_bandwidth)
        # The shared pool is bisection-limited, not injection-limited: cutting
        # a (w x h) torus across the smaller dimension severs 2·min(w,h)
        # bidirectional link pairs, so uniform traffic sustains
        # O(sqrt(N)·link) aggregate throughput — the reason non-nearest-
        # neighbour communication scales poorly on the torus (Sect. 4).
        # A fraction is eaten by background jobs sharing the machine.
        w, h = self.dims(n_nodes)
        pool = 4.0 * min(w, h) * self.link_bandwidth * (1.0 - self.background_load)
        out[("torus_links",)] = _const(pool)
        out.update(self._intra_resources(n_nodes))
        return out
