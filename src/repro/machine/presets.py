"""Calibrated machine presets for the paper's three test systems.

All bandwidth tables are calibrated against the measurements reported in
the paper (Sect. 1.3.2, Sect. 2, Fig. 3); entries not printed in the
paper are interpolated from the printed ones using the standard
saturation shape of the respective memory subsystem.  Sources:

* Nehalem EP spMVM curve: Fig. 3(a) performance annotations
  0.91/1.50/1.95/2.25 GFlop/s at 1-4 cores with κ = 2.5, i.e. a code
  balance of 8.05 bytes/flop → drawn bandwidths 7.3/12.1/15.7/18.1 GB/s
  (the 18.1 GB/s socket figure is quoted in the text).
* Nehalem STREAM triad: 21.2 GB/s saturated (quoted), early saturation.
* Westmere EP: same microarchitecture and memory channels ("the two
  Intel platforms represent a tick step"); the LD saturates at the same
  level scaled slightly up, spMVM reaching 85 % of STREAM (quoted
  criterion), which puts the node at ≈ 5 GFlop/s for HMeP.
* Magny Cours: per-LD weaker, full node ≈ 25 % above Westmere (quoted),
  four LDs per node, eight DDR3-1333 channels total.
* QDR InfiniBand: ≈ 3.2 GB/s effective per direction per node, ≈ 1.5 us
  MPI latency (standard QDR figures).
* Cray Gemini: higher injection bandwidth than QDR ("beyond the
  capability of QDR InfiniBand"), 2-D torus shared-link routing.
"""

from __future__ import annotations

from repro.machine.network import FatTree, Torus2D
from repro.machine.topology import ClusterSpec, LocalityDomain, NodeSpec, Socket
from repro.model.saturation import SaturationCurve
from repro.util import gb_per_s

__all__ = [
    "nehalem_ep_node",
    "westmere_ep_node",
    "magny_cours_node",
    "westmere_cluster",
    "cray_xe6_cluster",
    "generic_node",
    "PRESET_NODES",
]


def _curve(table: dict[int, float]) -> SaturationCurve:
    return SaturationCurve.from_table({k: gb_per_s(v) for k, v in table.items()})


# ----------------------------------------------------------------------
# Intel Nehalem EP (Xeon X5550): 4 cores/socket, SMT2, 3x DDR3-1333 per LD
# ----------------------------------------------------------------------
_NEHALEM_STREAM = _curve({1: 11.0, 2: 17.5, 3: 20.5, 4: 21.2})
_NEHALEM_SPMV = _curve({1: 7.32, 2: 12.08, 3: 15.70, 4: 18.11})
_NEHALEM_PEAK_CORE = 2.66e9 * 4  # 2.66 GHz x 4 DP flops/cycle (SSE mul+add)


def nehalem_ep_node() -> NodeSpec:
    """Dual-socket Nehalem EP node: 2 LDs x 4 cores, SMT enabled."""
    ld = LocalityDomain(
        n_cores=4,
        smt_per_core=2,
        stream_curve=_NEHALEM_STREAM,
        spmv_curve=_NEHALEM_SPMV,
        peak_core_flops=_NEHALEM_PEAK_CORE,
    )
    return NodeSpec(
        name="Nehalem EP (2x X5550)",
        sockets=(Socket((ld,)), Socket((ld,))),
        nic_bandwidth=gb_per_s(3.2),
        nic_latency=1.5e-6,
        intra_bandwidth=gb_per_s(5.0),
        intra_latency=0.6e-6,
    )


# ----------------------------------------------------------------------
# Intel Westmere EP (Xeon X5650): 6 cores/socket, SMT2, 3x DDR3-1333 per LD
# ----------------------------------------------------------------------
_WESTMERE_STREAM = _curve({1: 11.5, 2: 18.0, 3: 21.5, 4: 23.0, 5: 23.4, 6: 23.5})
_WESTMERE_SPMV = _curve({1: 7.4, 2: 12.3, 3: 16.0, 4: 18.8, 5: 19.8, 6: 20.1})
_WESTMERE_PEAK_CORE = 2.66e9 * 4


def westmere_ep_node() -> NodeSpec:
    """Dual-socket Westmere EP node: 2 LDs x 6 cores, SMT enabled (Fig. 2a)."""
    ld = LocalityDomain(
        n_cores=6,
        smt_per_core=2,
        stream_curve=_WESTMERE_STREAM,
        spmv_curve=_WESTMERE_SPMV,
        peak_core_flops=_WESTMERE_PEAK_CORE,
    )
    return NodeSpec(
        name="Westmere EP (2x X5650)",
        sockets=(Socket((ld,)), Socket((ld,))),
        nic_bandwidth=gb_per_s(3.2),
        nic_latency=1.5e-6,
        intra_bandwidth=gb_per_s(5.0),
        intra_latency=0.6e-6,
    )


# ----------------------------------------------------------------------
# AMD Magny Cours (Opteron 6172): 12-core package = 2 LDs x 6 cores,
# 2x DDR3-1333 per LD, no SMT
# ----------------------------------------------------------------------
_MAGNY_STREAM = _curve({1: 7.0, 2: 11.5, 3: 13.2, 4: 13.8, 5: 13.9, 6: 14.0})
_MAGNY_SPMV = _curve({1: 4.8, 2: 8.4, 3: 10.8, 4: 12.0, 5: 12.4, 6: 12.6})
_MAGNY_PEAK_CORE = 2.1e9 * 4


def magny_cours_node() -> NodeSpec:
    """Dual-socket Magny Cours node: 4 LDs x 6 cores (Fig. 2b)."""
    ld = LocalityDomain(
        n_cores=6,
        smt_per_core=1,
        stream_curve=_MAGNY_STREAM,
        spmv_curve=_MAGNY_SPMV,
        peak_core_flops=_MAGNY_PEAK_CORE,
    )
    return NodeSpec(
        name="Cray XE6 / AMD Magny Cours (2x Opteron 6172)",
        sockets=(Socket((ld, ld)), Socket((ld, ld))),
        nic_bandwidth=gb_per_s(6.0),
        nic_latency=1.4e-6,
        intra_bandwidth=gb_per_s(5.0),
        intra_latency=0.6e-6,
    )


def westmere_cluster(n_nodes: int = 32, *, message_overhead: float = 0.0) -> ClusterSpec:
    """The paper's Westmere cluster: QDR IB nonblocking fat tree.

    ``message_overhead`` (seconds of NIC occupancy per message) models
    the adapter's injection-rate limit; 0 keeps the bytes-only model.
    """
    return ClusterSpec(
        name="Westmere/QDR-IB cluster",
        node=westmere_ep_node(),
        n_nodes=n_nodes,
        network=FatTree(
            latency=1.5e-6,
            link_bandwidth=gb_per_s(3.2),
            message_overhead=message_overhead,
        ),
    )


def cray_xe6_cluster(
    n_nodes: int = 32,
    *,
    background_load: float = 0.35,
    message_overhead: float = 0.0,
) -> ClusterSpec:
    """The paper's Cray XE6: Gemini 2-D torus, shared with other jobs.

    ``background_load`` models the machine-load/job-topology sensitivity
    the paper observed; 0.35 reproduces the reported behaviour (on par
    with Westmere for pure MPI on HMeP, behind it at scale).
    ``message_overhead`` (seconds of NIC occupancy per message) models
    Gemini's small-message injection-rate limit; 0 keeps the bytes-only
    model (see :class:`repro.machine.network.Interconnect`).
    """
    return ClusterSpec(
        name="Cray XE6 (Gemini torus)",
        node=magny_cours_node(),
        n_nodes=n_nodes,
        network=Torus2D(
            latency=1.4e-6,
            link_bandwidth=gb_per_s(6.0),
            background_load=background_load,
            message_overhead=message_overhead,
        ),
    )


def generic_node(
    *,
    n_domains: int = 2,
    cores_per_domain: int = 4,
    smt: int = 1,
    stream_bandwidth: float = gb_per_s(20.0),
    spmv_fraction: float = 0.85,
    peak_core_flops: float = 10.0e9,
) -> NodeSpec:
    """A parameterised node for what-if studies.

    The saturation curves follow the Intel shape rescaled to the given
    saturated STREAM bandwidth; the spMVM curve is ``spmv_fraction`` of
    STREAM (the paper's ≥ 85 % criterion).
    """
    shape = _WESTMERE_STREAM
    base = shape.saturated
    cores = tuple(range(1, cores_per_domain + 1))
    stream = SaturationCurve(
        cores,
        tuple(shape.value(min(c, 6)) / base * stream_bandwidth for c in cores),
    )
    spmv_shape = _WESTMERE_SPMV
    spmv = SaturationCurve(
        cores,
        tuple(
            spmv_shape.value(min(c, 6)) / spmv_shape.saturated * stream_bandwidth * spmv_fraction
            for c in cores
        ),
    )
    ld = LocalityDomain(
        n_cores=cores_per_domain,
        smt_per_core=smt,
        stream_curve=stream,
        spmv_curve=spmv,
        peak_core_flops=peak_core_flops,
    )
    per_socket = 1 if n_domains % 2 else 2
    n_sockets = n_domains // per_socket
    return NodeSpec(
        name=f"generic ({n_domains} LDs x {cores_per_domain} cores)",
        sockets=tuple(Socket(tuple([ld] * per_socket)) for _ in range(n_sockets)),
        nic_bandwidth=gb_per_s(3.2),
        nic_latency=1.5e-6,
        intra_bandwidth=gb_per_s(5.0),
        intra_latency=0.6e-6,
    )


PRESET_NODES = {
    "nehalem": nehalem_ep_node,
    "westmere": westmere_ep_node,
    "magny_cours": magny_cours_node,
}
