"""Machine descriptions: node topologies, saturation curves, interconnects.

Presets calibrated to the paper's three systems (Nehalem EP, Westmere EP,
Cray XE6/Magny Cours) live in :mod:`repro.machine.presets`; placement
policies for the hybrid modes in :mod:`repro.machine.affinity`.
"""

from repro.machine.affinity import HYBRID_MODES, RankPlacement, plan_placement, ranks_for_mode
from repro.machine.network import FatTree, Interconnect, Route, Torus2D
from repro.machine.presets import (
    PRESET_NODES,
    cray_xe6_cluster,
    generic_node,
    magny_cours_node,
    nehalem_ep_node,
    westmere_cluster,
    westmere_ep_node,
)
from repro.machine.topology import (
    ClusterSpec,
    LocalityDomain,
    NodeSpec,
    Socket,
    render_node_ascii,
)

__all__ = [
    "HYBRID_MODES",
    "RankPlacement",
    "plan_placement",
    "ranks_for_mode",
    "FatTree",
    "Torus2D",
    "Interconnect",
    "Route",
    "PRESET_NODES",
    "nehalem_ep_node",
    "westmere_ep_node",
    "magny_cours_node",
    "westmere_cluster",
    "cray_xe6_cluster",
    "generic_node",
    "ClusterSpec",
    "LocalityDomain",
    "NodeSpec",
    "Socket",
    "render_node_ascii",
]
