"""Process/thread placement policies (the LIKWID-pinning stand-in).

The paper runs three hybrid decompositions on the same hardware
(Figs. 5-6): one MPI process per physical core, per NUMA locality
domain, or per node.  A placement assigns each rank its node, the
locality domains it spans, how many compute threads it runs on each,
and where its communication thread (task mode) lives — on an SMT
virtual core (costs no compute resources) or on a dedicated physical
core (one fewer compute thread).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.topology import ClusterSpec
from repro.util import check_in

__all__ = ["HYBRID_MODES", "RankPlacement", "plan_placement", "ranks_for_mode"]

HYBRID_MODES = ("per-core", "per-ld", "per-node")


@dataclass(frozen=True)
class RankPlacement:
    """Where one MPI rank lives and computes.

    ``domains`` maps a global LD id ``(node, ld_index)`` to the number of
    compute threads the rank runs there.  ``comm_domain`` is the LD that
    hosts the communication thread (task mode), ``comm_dedicated`` says
    whether that thread occupies a physical core (True) or an SMT
    thread/virtual core (False).
    """

    rank: int
    node: int
    domains: tuple[tuple[tuple[int, int], int], ...]
    comm_domain: tuple[int, int] | None = None
    comm_dedicated: bool = False

    @property
    def n_compute_threads(self) -> int:
        """Total compute threads of the rank."""
        return sum(t for _, t in self.domains)


def ranks_for_mode(cluster: ClusterSpec, mode: str) -> int:
    """Number of MPI ranks the hybrid *mode* produces on *cluster*."""
    check_in(mode, HYBRID_MODES, "mode")
    node = cluster.node
    if mode == "per-core":
        return cluster.n_nodes * node.n_cores
    if mode == "per-ld":
        return cluster.n_nodes * node.n_domains
    return cluster.n_nodes


def plan_placement(
    cluster: ClusterSpec,
    mode: str,
    *,
    comm_thread: str | None = None,
) -> list[RankPlacement]:
    """Build the rank placement for a hybrid mode.

    Parameters
    ----------
    cluster:
        The machine.
    mode:
        ``"per-core"``, ``"per-ld"`` or ``"per-node"``.
    comm_thread:
        ``None`` for vector modes (no communication thread), ``"smt"``
        to put it on a virtual core (requires SMT hardware), or
        ``"dedicated"`` to sacrifice a physical core.  Matches the
        paper's task-mode variants: per-core task mode uses the second
        virtual core; per-LD/per-node task mode may use either, with no
        measurable difference because the memory bus saturates at four
        threads (Sect. 4).
    """
    check_in(mode, HYBRID_MODES, "mode")
    if comm_thread is not None:
        check_in(comm_thread, ("smt", "dedicated"), "comm_thread")
    node = cluster.node
    if comm_thread == "smt" and node.smt_per_core < 2:
        raise ValueError(
            f"node {node.name!r} has no SMT; use comm_thread='dedicated'"
        )
    cores_per_ld = node.cores_per_domain()
    placements: list[RankPlacement] = []
    rank = 0
    for n in range(cluster.n_nodes):
        if mode == "per-core":
            for ld in range(node.n_domains):
                for _core in range(cores_per_ld):
                    dom = (n, ld)
                    dedicated = comm_thread == "dedicated"
                    threads = 1
                    if dedicated:
                        # a single-core rank cannot give up its only core;
                        # the comm thread timeshares it (worst case)
                        dedicated = False
                    placements.append(
                        RankPlacement(
                            rank=rank,
                            node=n,
                            domains=(((dom), threads),),
                            comm_domain=dom if comm_thread else None,
                            comm_dedicated=dedicated,
                        )
                    )
                    rank += 1
        elif mode == "per-ld":
            for ld in range(node.n_domains):
                dom = (n, ld)
                threads = cores_per_ld
                dedicated = comm_thread == "dedicated"
                if dedicated:
                    threads -= 1
                placements.append(
                    RankPlacement(
                        rank=rank,
                        node=n,
                        domains=((dom, threads),),
                        comm_domain=dom if comm_thread else None,
                        comm_dedicated=dedicated,
                    )
                )
                rank += 1
        else:  # per-node
            doms = []
            dedicated = comm_thread == "dedicated"
            for ld in range(node.n_domains):
                threads = cores_per_ld
                if dedicated and ld == 0:
                    threads -= 1  # comm thread takes a core in LD 0
                doms.append(((n, ld), threads))
            placements.append(
                RankPlacement(
                    rank=rank,
                    node=n,
                    domains=tuple(doms),
                    comm_domain=(n, 0) if comm_thread else None,
                    comm_dedicated=dedicated,
                )
            )
            rank += 1
    return placements
