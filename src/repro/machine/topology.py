"""Hardware topology descriptions: cores, NUMA domains, sockets, nodes.

The paper's Fig. 2 shows the two node architectures; this module encodes
such topologies as plain dataclasses that the simulator, the affinity
policies and the experiment harnesses all consume.  A *locality domain*
(LD) is the unit that owns a memory interface — one per socket on Intel
Westmere, two per socket on AMD Magny Cours.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model.saturation import SaturationCurve
from repro.util import check_positive_float, check_positive_int

__all__ = ["LocalityDomain", "Socket", "NodeSpec", "ClusterSpec", "render_node_ascii"]


@dataclass(frozen=True)
class LocalityDomain:
    """One ccNUMA locality domain: cores + a memory interface.

    Parameters
    ----------
    n_cores:
        Physical cores in the domain.
    smt_per_core:
        Hardware threads per physical core (2 on Westmere/Nehalem with
        SMT enabled, 1 on Magny Cours).
    stream_curve:
        Aggregate STREAM-triad bandwidth vs active cores (bytes/s).
    spmv_curve:
        Aggregate bandwidth the spMVM-style access pattern draws vs
        active cores.  The paper measures this separately (Fig. 3a);
        it saturates later and slightly below STREAM.
    peak_core_flops:
        Double-precision in-core peak per core, flop/s.
    """

    n_cores: int
    smt_per_core: int
    stream_curve: SaturationCurve
    spmv_curve: SaturationCurve
    peak_core_flops: float

    def __post_init__(self) -> None:
        check_positive_int(self.n_cores, "n_cores")
        check_positive_int(self.smt_per_core, "smt_per_core")
        check_positive_float(self.peak_core_flops, "peak_core_flops")

    @property
    def n_hw_threads(self) -> int:
        """Hardware threads (physical × SMT)."""
        return self.n_cores * self.smt_per_core

    @property
    def stream_bandwidth(self) -> float:
        """Saturated STREAM triad bandwidth of the domain (bytes/s)."""
        return self.stream_curve.saturated

    @property
    def spmv_bandwidth(self) -> float:
        """Saturated spMVM-pattern bandwidth of the domain (bytes/s)."""
        return self.spmv_curve.saturated

    @property
    def peak_flops(self) -> float:
        """In-core peak of all cores combined (flop/s)."""
        return self.n_cores * self.peak_core_flops


@dataclass(frozen=True)
class Socket:
    """A processor package: one or more locality domains.

    Magny Cours packages two 6-core dies (two LDs) per socket; Intel
    sockets are a single LD.
    """

    domains: tuple[LocalityDomain, ...]

    def __post_init__(self) -> None:
        if not self.domains:
            raise ValueError("a socket needs at least one locality domain")

    @property
    def n_cores(self) -> int:
        """Physical cores in the package."""
        return sum(d.n_cores for d in self.domains)


@dataclass(frozen=True)
class NodeSpec:
    """A compute node: sockets plus a network interface.

    ``nic_bandwidth``/``nic_latency`` describe the injection capability of
    the node into the interconnect (shared by all ranks on the node);
    ``intra_bandwidth``/``intra_latency`` price intranode (shared-memory)
    MPI messages.
    """

    name: str
    sockets: tuple[Socket, ...]
    nic_bandwidth: float
    nic_latency: float
    intra_bandwidth: float
    intra_latency: float

    def __post_init__(self) -> None:
        if not self.sockets:
            raise ValueError("a node needs at least one socket")
        check_positive_float(self.nic_bandwidth, "nic_bandwidth")
        check_positive_float(self.nic_latency, "nic_latency")
        check_positive_float(self.intra_bandwidth, "intra_bandwidth")
        check_positive_float(self.intra_latency, "intra_latency")

    @property
    def domains(self) -> tuple[LocalityDomain, ...]:
        """All locality domains of the node, socket-major order."""
        return tuple(d for s in self.sockets for d in s.domains)

    @property
    def n_domains(self) -> int:
        """Number of NUMA locality domains."""
        return len(self.domains)

    @property
    def n_cores(self) -> int:
        """Physical cores in the node."""
        return sum(s.n_cores for s in self.sockets)

    @property
    def smt_per_core(self) -> int:
        """SMT ways (assumed homogeneous across the node)."""
        return self.domains[0].smt_per_core

    @property
    def stream_bandwidth(self) -> float:
        """Aggregate saturated STREAM bandwidth of all domains."""
        return sum(d.stream_bandwidth for d in self.domains)

    @property
    def spmv_bandwidth(self) -> float:
        """Aggregate saturated spMVM bandwidth of all domains."""
        return sum(d.spmv_bandwidth for d in self.domains)

    def cores_per_domain(self) -> int:
        """Cores per LD (assumed homogeneous)."""
        return self.domains[0].n_cores


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster: N identical nodes on one interconnect.

    The interconnect object lives in :mod:`repro.machine.network`; it is
    referenced loosely here to avoid an import cycle.
    """

    name: str
    node: NodeSpec
    n_nodes: int
    network: object = field(repr=False, default=None)

    def __post_init__(self) -> None:
        check_positive_int(self.n_nodes, "n_nodes")

    @property
    def total_cores(self) -> int:
        """Physical cores in the whole cluster."""
        return self.n_nodes * self.node.n_cores

    @property
    def total_domains(self) -> int:
        """Locality domains in the whole cluster."""
        return self.n_nodes * self.node.n_domains

    def with_nodes(self, n_nodes: int) -> "ClusterSpec":
        """A copy with a different node count (for scaling sweeps)."""
        return ClusterSpec(self.name, self.node, n_nodes, self.network)


def render_node_ascii(node: NodeSpec) -> str:
    """ASCII rendering of a node topology (the Fig. 2 reproduction)."""
    lines = [f"Node: {node.name}  ({node.n_cores} cores, {node.n_domains} NUMA LDs)"]
    for si, sock in enumerate(node.sockets):
        lines.append(f"+-- socket {si} " + "-" * 40)
        for dom in sock.domains:
            cores = " ".join(
                f"[P{'/'.join(['T'] * dom.smt_per_core)}]" for _ in range(dom.n_cores)
            )
            lines.append(f"|  LD: {cores}")
            lines.append(
                f"|      L3 + memory interface: "
                f"{dom.stream_bandwidth / 1e9:.1f} GB/s STREAM, "
                f"{dom.spmv_bandwidth / 1e9:.1f} GB/s spMVM"
            )
        lines.append("+" + "-" * 52)
    lines.append(
        f"NIC: {node.nic_bandwidth / 1e9:.1f} GB/s, {node.nic_latency * 1e6:.1f} us latency"
    )
    return "\n".join(lines)
