"""Roofline model: performance bounded by bandwidth and in-core peak.

``P = min(P_peak, I * b)`` for computational intensity ``I`` (flops/byte),
memory bandwidth ``b`` and peak in-core performance ``P_peak``.  The
spMVM's intensity is the reciprocal of the code balance, so for all
matrices considered here the bandwidth roof is the binding one — the
model still carries the flop roof so that the claim is checked rather
than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.code_balance import CodeBalanceModel
from repro.util import check_positive_float

__all__ = ["Roofline"]


@dataclass(frozen=True)
class Roofline:
    """A two-roof performance model for one execution unit (core/LD/node).

    Parameters
    ----------
    peak_flops:
        In-core peak in flop/s (all cores of the unit combined).
    bandwidth:
        Memory bandwidth of the unit in bytes/s.
    """

    peak_flops: float
    bandwidth: float

    def __post_init__(self) -> None:
        check_positive_float(self.peak_flops, "peak_flops")
        check_positive_float(self.bandwidth, "bandwidth")

    @property
    def ridge_intensity(self) -> float:
        """Intensity (flops/byte) at which the two roofs intersect."""
        return self.peak_flops / self.bandwidth

    def performance(self, intensity: float) -> float:
        """Attainable flop/s at the given computational intensity."""
        intensity = check_positive_float(intensity, "intensity")
        return min(self.peak_flops, intensity * self.bandwidth)

    def is_memory_bound(self, intensity: float) -> bool:
        """True when the bandwidth roof binds at this intensity."""
        return intensity < self.ridge_intensity

    def spmvm_performance(self, model: CodeBalanceModel, *, split: bool = False) -> float:
        """Attainable spMVM flop/s under the code-balance intensity."""
        return self.performance(1.0 / model.balance(split=split))
