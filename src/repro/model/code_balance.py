"""The paper's code-balance performance model (Sect. 1.2, Eqs. 1-2).

For the CRS kernel, one inner-loop iteration (one nonzero) moves

* 8 bytes of ``val``                     (matrix data),
* 4 bytes of ``col_idx``                 (32-bit index),
* 16/Nnzr bytes of ``C``                 (write allocate + evict, amortised
  over the row),
* 8/Nnzr bytes of ``B``                  (each RHS element loaded at least
  once), plus ``kappa`` extra bytes for cache-capacity reloads of ``B``,

and performs 2 flops, giving Eq. 1::

    B_CRS(kappa) = 6 + 12/Nnzr + kappa/2          [bytes/flop]

Splitting the kernel into a local and a nonlocal part writes ``C`` twice,
adding 16/Nnzr bytes per iteration — Eq. 2::

    B_splitCRS(kappa) = 6 + 20/Nnzr + kappa/2     [bytes/flop]

The attainable performance is ``P = b / B`` for a memory bandwidth ``b``,
and measuring ``P`` together with the actual bandwidth drawn pins down
``kappa`` experimentally.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util import check_positive_float

__all__ = [
    "code_balance",
    "code_balance_split",
    "code_balance_block",
    "code_balance_block_split",
    "block_speedup",
    "max_performance",
    "kappa_from_measurement",
    "kappa_from_bandwidth_ratio",
    "split_penalty",
    "CodeBalanceModel",
]


def _check_block_width(k: int) -> int:
    if k < 1:
        raise ValueError(f"block width k must be >= 1, got {k}")
    return int(k)


def code_balance(nnzr: float, kappa: float = 0.0) -> float:
    """Eq. 1: bytes per flop of the unsplit CRS spMVM kernel."""
    nnzr = check_positive_float(nnzr, "nnzr")
    if kappa < 0:
        raise ValueError(f"kappa must be >= 0, got {kappa}")
    return 6.0 + 12.0 / nnzr + kappa / 2.0


def code_balance_split(nnzr: float, kappa: float = 0.0) -> float:
    """Eq. 2: bytes per flop when the kernel is split (result written twice)."""
    nnzr = check_positive_float(nnzr, "nnzr")
    if kappa < 0:
        raise ValueError(f"kappa must be >= 0, got {kappa}")
    return 6.0 + 20.0 / nnzr + kappa / 2.0


def code_balance_block(nnzr: float, k: int, kappa: float = 0.0) -> float:
    """Block extension of Eq. 1: bytes per flop with k right-hand sides.

    Processing k RHS vectors per sweep streams ``val``/``col_idx`` once
    per *block*, so the 6 bytes/flop of matrix data amortise over the k
    columns; the RHS/result traffic and the ``kappa`` cache-reload term
    belong to each column and stay per-flop unchanged::

        B_CRS_block(k, kappa) = 6/k + 12/Nnzr + kappa/2   [bytes/flop]

    ``k = 1`` recovers Eq. 1 exactly.  This is the node-level half of
    the batching win; the message-count half is in the simulator.
    """
    nnzr = check_positive_float(nnzr, "nnzr")
    k = _check_block_width(k)
    if kappa < 0:
        raise ValueError(f"kappa must be >= 0, got {kappa}")
    return 6.0 / k + 12.0 / nnzr + kappa / 2.0


def code_balance_block_split(nnzr: float, k: int, kappa: float = 0.0) -> float:
    """Block extension of Eq. 2 (split kernel, result written twice)::

        B_splitCRS_block(k, kappa) = 6/k + 20/Nnzr + kappa/2
    """
    nnzr = check_positive_float(nnzr, "nnzr")
    k = _check_block_width(k)
    if kappa < 0:
        raise ValueError(f"kappa must be >= 0, got {kappa}")
    return 6.0 / k + 20.0 / nnzr + kappa / 2.0


def block_speedup(nnzr: float, k: int, kappa: float = 0.0, *, split: bool = False) -> float:
    """Attainable memory-bound speedup of a k-wide block sweep over k
    single-vector sweeps: ``B(k=1) / B(k)`` (≥ 1, saturating as the
    amortisable matrix traffic vanishes against the per-column terms)."""
    if split:
        return code_balance_block_split(nnzr, 1, kappa) / code_balance_block_split(nnzr, k, kappa)
    return code_balance_block(nnzr, 1, kappa) / code_balance_block(nnzr, k, kappa)


def max_performance(bandwidth: float, nnzr: float, kappa: float = 0.0, *, split: bool = False) -> float:
    """Attainable spMVM performance in flop/s for a memory bandwidth in bytes/s.

    With ``kappa = 0`` this is the paper's *upper limit* (e.g. 21.2 GB/s
    STREAM on a Nehalem socket → 3.12 GFlop/s for Nnzr = 15).
    """
    bandwidth = check_positive_float(bandwidth, "bandwidth")
    balance = code_balance_split(nnzr, kappa) if split else code_balance(nnzr, kappa)
    return bandwidth / balance


def kappa_from_measurement(performance: float, bandwidth_drawn: float, nnzr: float) -> float:
    """Determine ``kappa`` from measured performance and drawn bandwidth.

    The measured code balance is ``bandwidth / performance`` bytes/flop;
    subtracting the compulsory traffic leaves the RHS reload term::

        kappa = 2 * (b/P - 6 - 12/Nnzr)

    The paper's Nehalem example: P = 2.25 GFlop/s at b = 18.1 GB/s and
    Nnzr = 15 gives kappa ≈ 2.5 (37.3 bytes per row on B).  Negative
    results (measurement noise) are clamped to zero.
    """
    performance = check_positive_float(performance, "performance")
    bandwidth_drawn = check_positive_float(bandwidth_drawn, "bandwidth_drawn")
    nnzr = check_positive_float(nnzr, "nnzr")
    kappa = 2.0 * (bandwidth_drawn / performance - 6.0 - 12.0 / nnzr)
    return max(0.0, kappa)


def kappa_from_bandwidth_ratio(reload_count: float, nnzr: float) -> float:
    """``kappa`` if the whole RHS vector is loaded ``reload_count`` extra times.

    Each full reload of ``B`` adds ``8/Nnzr`` bytes per inner iteration;
    the paper's Nehalem case (κ = 2.5, Nnzr = 15) corresponds to about
    five extra loads — "the complete vector B is loaded six times from
    main memory".
    """
    if reload_count < 0:
        raise ValueError("reload_count must be >= 0")
    return reload_count * 8.0 / check_positive_float(nnzr, "nnzr")


def split_penalty(nnzr: float, kappa: float = 0.0) -> float:
    """Relative node-level performance penalty of the split kernel.

    ``1 - B_CRS/B_splitCRS``: between 15 % (Nnzr = 7) and 8 % (Nnzr = 15)
    for κ = 0, and less for κ > 0 — exactly the paper's Sect. 3.1 numbers.
    """
    return 1.0 - code_balance(nnzr, kappa) / code_balance_split(nnzr, kappa)


@dataclass(frozen=True)
class CodeBalanceModel:
    """Bundled model for one matrix on one machine.

    Parameters
    ----------
    nnzr:
        Average nonzeros per row of the matrix.
    kappa:
        Machine- and problem-specific RHS reload parameter (bytes per
        inner-loop iteration).
    """

    nnzr: float
    kappa: float = 0.0

    def balance(self, *, split: bool = False) -> float:
        """Bytes/flop (Eq. 1 or Eq. 2)."""
        return code_balance_split(self.nnzr, self.kappa) if split else code_balance(self.nnzr, self.kappa)

    def performance(self, bandwidth: float, *, split: bool = False) -> float:
        """Attainable flop/s at the given bandwidth (bytes/s)."""
        return max_performance(bandwidth, self.nnzr, self.kappa, split=split)

    def bandwidth_needed(self, performance: float, *, split: bool = False) -> float:
        """Bytes/s of memory bandwidth needed to sustain *performance* flop/s."""
        return check_positive_float(performance, "performance") * self.balance(split=split)

    def traffic(self, nnz: int, nrows: int, ncols: int, *, split: bool = False) -> float:
        """Absolute bytes moved by one spMVM with these dimensions.

        Uses the same accounting as :func:`repro.sparse.spmv.spmv_traffic`
        but parameterised directly (no matrix object needed — the
        simulator works from partition metadata).
        """
        result_bytes = 16 * (2 if split else 1)
        return (12.0 + self.kappa) * nnz + result_bytes * nrows + 8.0 * ncols
