"""Predicting κ from matrix structure with a cache model.

The paper *measures* κ — the extra bytes of RHS traffic per inner-loop
iteration caused by limited cache capacity — and finds 2.5 for the
banded HMeP ordering and 3.79 for the scattered HMEp ordering of the
same Hamiltonian.  This module closes the loop: it *predicts* κ by
streaming the kernel's RHS access pattern through an LRU cache model.

Model
-----
The spMVM reads ``B[col_idx[j]]`` for every nonzero, in storage order.
RHS elements live in 64-byte cache lines (8 doubles).  A fully
associative LRU cache of the effective per-thread capacity serves the
stream; every miss beyond each line's compulsory first load is a reload,
and::

    kappa = 64 bytes x (reloads / Nnz)

(the paper's κ counts per-iteration bytes; a missed line fetches 64 B
but typically serves several of the row's accesses — charging the line
on the missing access reproduces the measured magnitude).

An exact LRU over millions of accesses is O(Nnz) with a hash map +
doubly-linked list; for large matrices a row-block *sampling* mode
processes a prefix of rows per block, which converges quickly because
the reload behaviour is stationary along the band.

The effective capacity should be the cache available *per traffic
stream*: on Nehalem the spMVM streams val/col_idx/C besides B, so only
part of the 8 MB L3 holds RHS lines; ``rhs_cache_fraction`` (default
0.5) models that split.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.util import check_fraction, check_positive_int

__all__ = ["CacheConfig", "KappaPrediction", "simulate_rhs_traffic", "predict_kappa"]

_LINE_BYTES = 64
_DOUBLES_PER_LINE = _LINE_BYTES // 8


@dataclass(frozen=True)
class CacheConfig:
    """Cache parameters for the κ prediction.

    ``capacity_bytes`` is the outer-level cache serving the RHS stream
    (per locality domain); ``rhs_cache_fraction`` the share of it the
    RHS effectively occupies next to the val/col_idx/C streams.
    """

    capacity_bytes: int = 8 * 1024 * 1024  # Nehalem/Westmere L3 per socket
    rhs_cache_fraction: float = 0.5

    def __post_init__(self) -> None:
        check_positive_int(self.capacity_bytes, "capacity_bytes")
        check_fraction(self.rhs_cache_fraction, "rhs_cache_fraction")

    @property
    def lines(self) -> int:
        """Cache lines available to the RHS stream."""
        return max(1, int(self.capacity_bytes * self.rhs_cache_fraction) // _LINE_BYTES)


@dataclass(frozen=True)
class KappaPrediction:
    """Outcome of a cache simulation."""

    kappa: float
    accesses: int
    misses: int
    compulsory: int
    reloads: int
    lines: int

    @property
    def miss_rate(self) -> float:
        """Total miss rate of the RHS stream."""
        return self.misses / max(1, self.accesses)


class _LRU:
    """Fully associative LRU set of integer line ids.

    Implemented with an ordered dict (Python dicts preserve insertion
    order; move-to-back is delete+insert) — O(1) per access.
    """

    __slots__ = ("capacity", "entries")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.entries: dict[int, None] = {}

    def access(self, line: int) -> bool:
        """Touch *line*; returns True on hit."""
        entries = self.entries
        if line in entries:
            del entries[line]
            entries[line] = None
            return True
        if len(entries) >= self.capacity:
            # evict the least recently used entry (front of the dict)
            entries.pop(next(iter(entries)))
        entries[line] = None
        return False


def simulate_rhs_traffic(
    A: CSRMatrix,
    config: CacheConfig | None = None,
    *,
    sample_rows: int | None = 50_000,
    seed: int = 0,
) -> KappaPrediction:
    """Stream the kernel's RHS accesses through an LRU cache.

    ``sample_rows`` bounds the number of simulated rows (a contiguous
    block starting at a deterministic offset past the warm-up region);
    ``None`` simulates every row.
    """
    config = config or CacheConfig()
    lines_cap = config.lines
    lru = _LRU(lines_cap)
    nrows = A.nrows
    if sample_rows is None or sample_rows >= nrows:
        row_lo, row_hi = 0, nrows
    else:
        # skip a warm-up region, then simulate a contiguous block
        rng = np.random.default_rng(seed)
        max_start = nrows - sample_rows
        row_lo = int(rng.integers(0, max_start + 1))
        row_hi = row_lo + sample_rows
        # warm the cache on the preceding rows (up to one cache capacity)
        warm_lo = max(0, row_lo - 2000)
        for j in range(int(A.row_ptr[warm_lo]), int(A.row_ptr[row_lo])):
            lru.access(int(A.col_idx[j]) // _DOUBLES_PER_LINE)

    accesses = 0
    misses = 0
    seen_lines: set[int] = set()
    compulsory = 0
    col_idx = A.col_idx
    lo, hi = int(A.row_ptr[row_lo]), int(A.row_ptr[row_hi])
    for j in range(lo, hi):
        line = int(col_idx[j]) // _DOUBLES_PER_LINE
        accesses += 1
        if not lru.access(line):
            misses += 1
            if line not in seen_lines:
                seen_lines.add(line)
                compulsory += 1
    reloads = misses - compulsory
    kappa = _LINE_BYTES * reloads / max(1, accesses)
    return KappaPrediction(
        kappa=kappa,
        accesses=accesses,
        misses=misses,
        compulsory=compulsory,
        reloads=reloads,
        lines=lines_cap,
    )


def predict_kappa(
    A: CSRMatrix,
    config: CacheConfig | None = None,
    *,
    sample_rows: int | None = 50_000,
    seed: int = 0,
) -> float:
    """κ (bytes per inner-loop iteration) predicted by the cache model."""
    return simulate_rhs_traffic(A, config, sample_rows=sample_rows, seed=seed).kappa
