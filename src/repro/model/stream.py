"""STREAM triad: the practical memory-bandwidth ceiling.

The paper uses STREAM triad numbers as the "practical upper bandwidth
limit" against which the spMVM bandwidth is judged (Fig. 3), with
nontemporal stores suppressed and the reported bandwidth scaled by 4/3
to account for the write-allocate transfer (footnote 1).

Two things live here:

* :func:`triad_traffic` / :func:`triad_flops` — the arithmetic of the
  triad kernel ``a(i) = b(i) + s * c(i)``,
* :func:`measure_host_triad` — an actual numpy micro-benchmark of the
  *host* running this library, used by the examples to relate the
  simulated machines to wherever the code happens to run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.util import check_positive_int

__all__ = [
    "WRITE_ALLOCATE_FACTOR",
    "triad_traffic",
    "triad_flops",
    "TriadResult",
    "measure_host_triad",
]

#: Factor 4/3 applied when stores write-allocate: the triad moves 3 visible
#: streams (load b, load c, store a) plus the hidden write-allocate load of a.
WRITE_ALLOCATE_FACTOR = 4.0 / 3.0


def triad_traffic(n: int, *, write_allocate: bool = True) -> float:
    """Bytes moved by one triad sweep over arrays of *n* doubles."""
    n = check_positive_int(n, "n")
    streams = 4.0 if write_allocate else 3.0
    return streams * 8.0 * n


def triad_flops(n: int) -> int:
    """Flops of one triad sweep (one multiply + one add per element)."""
    return 2 * check_positive_int(n, "n")


@dataclass(frozen=True)
class TriadResult:
    """Outcome of a host triad measurement."""

    n: int
    repetitions: int
    best_seconds: float
    bandwidth: float  # bytes/s, incl. write-allocate correction

    @property
    def bandwidth_gb(self) -> float:
        """Bandwidth in decimal GB/s (the paper's reporting unit)."""
        return self.bandwidth / 1e9


def measure_host_triad(n: int = 20_000_000, repetitions: int = 5) -> TriadResult:
    """Measure the host's achievable triad bandwidth with numpy.

    The kernel is ``a = b + s * c`` on length-*n* float64 arrays, timed
    over several repetitions; the best (least-disturbed) run counts, as
    in the original STREAM.  numpy's assignment write-allocates, so the
    4/3 correction applies just as in the paper's measurements.
    """
    n = check_positive_int(n, "n")
    repetitions = check_positive_int(repetitions, "repetitions")
    b = np.ones(n)
    c = np.full(n, 0.5)
    a = np.zeros(n)
    s = 1.5
    best = float("inf")
    for _ in range(repetitions):
        t0 = time.perf_counter()
        np.multiply(c, s, out=a)
        a += b
        dt = time.perf_counter() - t0
        best = min(best, dt)
    return TriadResult(
        n=n,
        repetitions=repetitions,
        best_seconds=best,
        bandwidth=triad_traffic(n) / best,
    )
