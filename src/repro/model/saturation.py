"""Bandwidth-saturation curves of a NUMA locality domain.

Memory-bound kernels do not scale linearly with the number of active
cores: the aggregate bandwidth of a locality domain saturates (Fig. 3).
STREAM saturates within 2-3 cores; the spMVM, with its partially
irregular access, keeps gaining up to ~4 cores.  We represent a curve as
a measured/calibrated table ``cores -> aggregate bandwidth`` with linear
interpolation between entries and a flat tail, which reproduces the
paper's measured scaling exactly at the calibration points.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util import check_positive_float

__all__ = ["SaturationCurve"]


@dataclass(frozen=True)
class SaturationCurve:
    """Aggregate bandwidth (bytes/s) as a function of active cores in an LD.

    ``table`` maps integer core counts (1-based, ascending) to aggregate
    bandwidth.  Queries between entries interpolate linearly; queries
    beyond the last entry return the last value (saturated); fractional
    core counts are allowed (the simulator may account a communication
    thread as a fraction).
    """

    cores: tuple[int, ...]
    bandwidth: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.cores) != len(self.bandwidth) or not self.cores:
            raise ValueError("cores and bandwidth must be equal-length, non-empty")
        if list(self.cores) != sorted(set(self.cores)):
            raise ValueError("core counts must be strictly increasing")
        if self.cores[0] < 1:
            raise ValueError("core counts start at 1")
        for b in self.bandwidth:
            check_positive_float(b, "bandwidth")

    @classmethod
    def from_table(cls, table: dict[int, float]) -> "SaturationCurve":
        """Build from a ``{cores: bandwidth}`` mapping."""
        items = sorted(table.items())
        return cls(tuple(k for k, _ in items), tuple(float(v) for _, v in items))

    @property
    def saturated(self) -> float:
        """Bandwidth with all calibrated cores active (the plateau)."""
        return self.bandwidth[-1]

    @property
    def single_core(self) -> float:
        """Bandwidth achievable by one core."""
        return self.bandwidth[0] if self.cores[0] == 1 else self.value(1)

    def value(self, active_cores: float) -> float:
        """Aggregate bandwidth for *active_cores* concurrently streaming cores."""
        if active_cores <= 0:
            return 0.0
        return float(
            np.interp(active_cores, np.asarray(self.cores, dtype=float), self.bandwidth)
        )

    def saturation_point(self, threshold: float = 0.95) -> int:
        """Smallest calibrated core count reaching *threshold* × saturated bw.

        The paper's observation "spMVM saturates at about 4 threads per
        locality domain" is this quantity.
        """
        target = threshold * self.saturated
        for c, b in zip(self.cores, self.bandwidth):
            if b >= target:
                return c
        return self.cores[-1]

    def scaled(self, factor: float) -> "SaturationCurve":
        """A copy with all bandwidths multiplied by *factor* (used to derive
        sibling-architecture curves from a measured shape)."""
        factor = check_positive_float(factor, "factor")
        return SaturationCurve(self.cores, tuple(b * factor for b in self.bandwidth))

    def extended(self, cores: int) -> "SaturationCurve":
        """A copy whose table extends flat to *cores* entries (explicit plateau)."""
        if cores <= self.cores[-1]:
            return self
        return SaturationCurve(
            self.cores + (cores,), self.bandwidth + (self.saturated,)
        )
