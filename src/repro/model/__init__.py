"""Node-level performance models: code balance (Eqs. 1-2), STREAM, roofline.

Communication-plan statistics (:mod:`repro.comm`) are re-exported here
lazily so modelling code can say ``from repro.model import plan_stats``
without this package importing the comm subsystem at startup (and
without an import cycle — ``repro.comm`` consumers include the core)."""

from repro.model.cache import (
    CacheConfig,
    KappaPrediction,
    predict_kappa,
    simulate_rhs_traffic,
)
from repro.model.code_balance import (
    CodeBalanceModel,
    block_speedup,
    code_balance,
    code_balance_block,
    code_balance_block_split,
    code_balance_split,
    kappa_from_bandwidth_ratio,
    kappa_from_measurement,
    max_performance,
    split_penalty,
)
from repro.model.roofline import Roofline
from repro.model.saturation import SaturationCurve
from repro.model.stream import (
    WRITE_ALLOCATE_FACTOR,
    TriadResult,
    measure_host_triad,
    triad_flops,
    triad_traffic,
)

#: Names resolved lazily from :mod:`repro.comm` (PEP 562).
_COMM_EXPORTS = (
    "PlanStats",
    "PlanComparison",
    "plan_stats",
    "compare_plans",
    "predicted_exchange_seconds",
)


def __getattr__(name: str):
    if name in _COMM_EXPORTS:
        import repro.comm as _comm

        return getattr(_comm, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_COMM_EXPORTS))


__all__ = [
    "PlanStats",
    "PlanComparison",
    "plan_stats",
    "compare_plans",
    "predicted_exchange_seconds",
    "CacheConfig",
    "KappaPrediction",
    "predict_kappa",
    "simulate_rhs_traffic",
    "CodeBalanceModel",
    "code_balance",
    "code_balance_split",
    "code_balance_block",
    "code_balance_block_split",
    "block_speedup",
    "kappa_from_measurement",
    "kappa_from_bandwidth_ratio",
    "max_performance",
    "split_penalty",
    "Roofline",
    "SaturationCurve",
    "WRITE_ALLOCATE_FACTOR",
    "TriadResult",
    "measure_host_triad",
    "triad_flops",
    "triad_traffic",
]
