"""Node-level performance models: code balance (Eqs. 1-2), STREAM, roofline."""

from repro.model.cache import (
    CacheConfig,
    KappaPrediction,
    predict_kappa,
    simulate_rhs_traffic,
)
from repro.model.code_balance import (
    CodeBalanceModel,
    block_speedup,
    code_balance,
    code_balance_block,
    code_balance_block_split,
    code_balance_split,
    kappa_from_bandwidth_ratio,
    kappa_from_measurement,
    max_performance,
    split_penalty,
)
from repro.model.roofline import Roofline
from repro.model.saturation import SaturationCurve
from repro.model.stream import (
    WRITE_ALLOCATE_FACTOR,
    TriadResult,
    measure_host_triad,
    triad_flops,
    triad_traffic,
)

__all__ = [
    "CacheConfig",
    "KappaPrediction",
    "predict_kappa",
    "simulate_rhs_traffic",
    "CodeBalanceModel",
    "code_balance",
    "code_balance_split",
    "code_balance_block",
    "code_balance_block_split",
    "block_speedup",
    "kappa_from_measurement",
    "kappa_from_bandwidth_ratio",
    "max_performance",
    "split_penalty",
    "Roofline",
    "SaturationCurve",
    "WRITE_ALLOCATE_FACTOR",
    "TriadResult",
    "measure_host_triad",
    "triad_flops",
    "triad_traffic",
]
