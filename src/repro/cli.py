"""Command-line interface: regenerate any paper figure/table from a shell.

Usage::

    python -m repro list
    python -m repro fig1 --scale small
    python -m repro fig3
    python -m repro fig5 --scale medium --nodes 1,2,4,8,16,24,32
    python -m repro probe
    python -m repro all --scale small          # everything, quick mode
    python -m repro matrix HMeP --scale tiny   # matrix inspection

Each command prints the same rendered table the benchmark suite writes
to ``benchmarks/output/``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

__all__ = ["main"]


def _parse_nodes(text: str) -> tuple[int, ...]:
    try:
        nodes = tuple(int(t) for t in text.split(",") if t.strip())
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"invalid node list {text!r}") from exc
    if not nodes or any(n <= 0 for n in nodes):
        raise argparse.ArgumentTypeError("node counts must be positive integers")
    return nodes


def _cmd_list(_args: argparse.Namespace) -> int:
    print("available experiments:")
    for name, doc in (
        ("fig1", "sparsity patterns (block occupancy) of HMEp / HMeP / sAMG"),
        ("fig2", "node topologies (Westmere, Magny Cours)"),
        ("fig3", "node-level performance analysis (both panels)"),
        ("fig4", "scheme timelines (simulator Gantt charts)"),
        ("trace", "trace one simulated sweep (summary, metrics, Chrome JSON)"),
        ("fig5", "HMeP strong scaling on the Westmere cluster"),
        ("fig6", "sAMG strong scaling on the Westmere cluster"),
        ("kappa", "Sect. 2 κ determination + Eq. 2 split penalty"),
        ("kappa-predict", "predict κ from structure via the LRU cache model"),
        ("commvol", "internode communication volume vs node count"),
        ("comm-plan", "direct vs node-aware halo-exchange lowering (repro.comm)"),
        ("comm-plans", "plan accounting + simulated node-aware scaling sweep"),
        ("balance", "load-balancing study (compute vs communication)"),
        ("check", "communication correctness analyzer (repro.check)"),
        ("lint", "repo-invariant AST lint (repro.check.astlint)"),
        ("probe", "Sect. 3 asynchronous-progress probe"),
        ("bench", "timed spMVM micro-benchmarks → BENCH_spmvm.json"),
        ("serve", "persistent solver service: build once, stream requests"),
        ("workload", "multi-job cluster simulation: streams, scheduling, contention"),
        ("kernels", "list the registered spMVM kernels (repro.sparse.registry)"),
        ("matrix", "build and describe one registry matrix"),
        ("all", "run every experiment in sequence"),
    ):
        print(f"  {name:<7} {doc}")
    return 0


def _cmd_fig1(args: argparse.Namespace) -> int:
    from repro.experiments import run_fig1

    print(run_fig1(scale=args.scale, grid=args.grid).render())
    return 0


def _cmd_fig2(_args: argparse.Namespace) -> int:
    from repro.experiments import run_fig2

    print(run_fig2().render())
    return 0


def _cmd_fig3(_args: argparse.Namespace) -> int:
    from repro.experiments import run_fig3

    print(run_fig3().render())
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    from repro.experiments import run_fig4

    print(run_fig4(scale=args.scale).render())
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Trace one simulated MVM sweep and export/summarize it."""
    from repro.core import simulate_spmvm
    from repro.machine.presets import westmere_cluster
    from repro.matrices import get_matrix
    from repro.obs import (
        overlap_bytes_with_phase,
        phase_summary,
        render_op_costs,
        simulation_metrics,
        write_chrome_trace,
    )

    A = get_matrix(args.matrix, args.scale).build_cached()
    r = simulate_spmvm(
        A,
        westmere_cluster(args.nodes),
        mode=args.mode,
        scheme=args.scheme,
        kappa=args.kappa,
        iterations=args.iterations,
        eager_threshold=args.eager_threshold,
        async_progress=args.async_progress,
        n_sweeps=args.sweeps,
        pipeline=not args.no_pipeline,
        trace=True,
    )
    assert r.trace is not None
    print(r.describe())
    print()
    print(phase_summary(r.trace, title=f"per-phase summary ({args.scheme})").render())
    overlap_bytes = overlap_bytes_with_phase(r.trace, "local spMVM")
    print(
        f"\nrendezvous bytes moved during the endpoints' local spMVM: "
        f"{overlap_bytes:.0f} B"
    )
    if args.per_op:
        print()
        print(render_op_costs(r.trace))
    if args.metrics:
        print()
        for name, value in sorted(simulation_metrics(r).items()):
            print(f"  {name} = {value:g}")
    if args.trace_json:
        path = write_chrome_trace(r.trace, args.trace_json)
        print(f"\nChrome trace written to {path} (open in chrome://tracing)")
    return 0


def _scaling(runner: Callable, args: argparse.Namespace) -> int:
    study = runner(
        scale=args.scale,
        node_counts=args.nodes,
        max_ranks=args.max_ranks,
        include_cray=not args.no_cray,
    )
    print(study.render())
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    from repro.experiments import run_fig5

    return _scaling(run_fig5, args)


def _cmd_fig6(args: argparse.Namespace) -> int:
    from repro.experiments import run_fig6

    return _scaling(run_fig6, args)


def _cmd_kappa(_args: argparse.Namespace) -> int:
    from repro.experiments import run_kappa_table

    print(run_kappa_table().render())
    return 0


def _cmd_kappa_predict(args: argparse.Namespace) -> int:
    from repro.experiments import run_kappa_prediction

    print(run_kappa_prediction(args.scale).render())
    return 0


def _cmd_commvol(args: argparse.Namespace) -> int:
    from repro.experiments import run_comm_volume

    print(run_comm_volume(args.scale).render())
    return 0


def _cmd_comm_plan(args: argparse.Namespace) -> int:
    """Compare the direct and node-aware lowering of one halo exchange."""
    from repro.comm import build_comm_plan, compare_plans
    from repro.core.halo import build_halo_plan
    from repro.core.runner import simulate_spmvm
    from repro.experiments.calibration import (
        REDUCED_EAGER_THRESHOLD,
        TORUS_MESSAGE_OVERHEAD,
        kappa_for,
    )
    from repro.machine.affinity import plan_placement, ranks_for_mode
    from repro.machine.presets import cray_xe6_cluster, westmere_cluster
    from repro.matrices import get_matrix
    from repro.sparse.partition import partition_matrix

    A = get_matrix(args.matrix, args.scale).build_cached()
    cluster = (
        cray_xe6_cluster(args.nodes, message_overhead=TORUS_MESSAGE_OVERHEAD)
        if args.network == "torus"
        else westmere_cluster(args.nodes)
    )
    nranks = ranks_for_mode(cluster, args.mode)
    if nranks > A.nrows:
        print(f"{nranks} ranks exceed the {A.nrows}-row matrix; pick fewer nodes")
        return 1
    rank_node = [p.node for p in plan_placement(cluster, args.mode)]
    halo = build_halo_plan(A, partition_matrix(A, nranks), with_matrices=False)
    cmp = compare_plans(
        build_comm_plan(halo, rank_node, "direct"),
        build_comm_plan(halo, rank_node, "node-aware"),
    )
    title = (
        f"{args.matrix}/{args.scale} on {cluster.name}, {args.mode}, "
        f"{args.nodes} nodes ({nranks} ranks)"
    )
    print(cmp.render(title=title))
    if args.simulate:
        print()
        for kind in ("direct", "node-aware"):
            r = simulate_spmvm(
                A, cluster,
                mode=args.mode,
                scheme=args.scheme,
                kappa=kappa_for(args.matrix),
                comm_plan=kind,
                eager_threshold=REDUCED_EAGER_THRESHOLD,
            )
            print(f"  {kind:>10}: {r.describe()}")
    return 0


def _cmd_comm_plans(args: argparse.Namespace) -> int:
    from repro.experiments import run_comm_plans

    print(
        run_comm_plans(
            args.scale,
            sweep_nodes=args.sweep_nodes,
            include_sweep=not args.no_sweep,
        ).render()
    )
    return 0


def _cmd_balance(args: argparse.Namespace) -> int:
    from repro.experiments import run_load_balance

    print(run_load_balance(args.scale).render())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the spMVM benchmark suite and write BENCH_spmvm.json."""
    from repro.bench import spmvm_suite, write_results

    results = spmvm_suite(quick=args.quick, scheme=args.scheme, seed=args.seed)
    for r in results:
        print(r.describe())
    write_results(results, args.output, quick=args.quick)
    print(f"\n{len(results)} results written to {args.output}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    """Run the communication correctness analyzer (dynamic + static).

    Default: every spMVM scheme under both comm-plan lowerings on one
    matrix, each run under the dynamic analyzer (deadlock/race/buffer
    hazard/leak detection) and cross-checked against the serial kernel,
    plus a static lint of both plans.  Exit 1 on any finding.

    ``--seed-bug NAME`` instead runs a fixture containing exactly that
    bug and exits 0 only if the matching detector fired — the live
    demonstration (and CI guard) that the analyzer actually detects
    what it claims to.

    ``--programs`` statically lints every sweep program the builders can
    emit (scheme x lowering x block width, :mod:`repro.program`) — the
    one place the Fig. 4 phase orderings live now that both backends
    dispatch through the IR.

    ``--threads`` runs the thread-level race sanitizer instead
    (:func:`repro.check.check_threads`): every scheme/lowering sweep
    plus a concurrent solver-service session, each under per-thread
    vector clocks, reporting causally concurrent conflicting buffer
    accesses.  Exit 1 on any finding.
    """
    from repro.check import SEED_BUGS, check_spmvm, lint_comm_plan, run_seed_bug

    if args.threads:
        from repro.check import check_threads

        report = check_threads(
            matrix=args.matrix,
            scale=args.scale,
            nranks=args.nranks,
            ranks_per_node=args.ranks_per_node,
        )
        print(report.render(
            title=(
                f"thread sanitizer: {args.matrix}/{args.scale}, "
                f"{args.nranks} ranks ({args.ranks_per_node}/node), "
                f"all schemes x (direct, node-aware) x (spmv, spmm) "
                f"+ 1 service session"
            )
        ))
        return 0 if report.ok else 1

    if args.programs:
        from repro.program import all_sweep_programs, lint_sweep_programs

        programs = all_sweep_programs()
        findings = lint_sweep_programs(programs)
        title = f"sweep-program lint ({len(programs)} programs)"
        if not findings:
            for program in programs:
                print(f"  {program.describe()}")
            print(f"{title}: clean")
            return 0
        print(f"{title}: {len(findings)} finding(s)")
        for f in findings:
            print(f"  - {f.describe()}")
        return 1

    if args.seed_bug is not None:
        fired, report = run_seed_bug(args.seed_bug)
        expected_kind = SEED_BUGS[args.seed_bug][0]
        print(report.render(title=f"seed-bug {args.seed_bug} (expect {expected_kind})"))
        if fired:
            print(f"OK: the {expected_kind} detector fired")
            return 0
        print(f"FAIL: the {expected_kind} detector stayed silent")
        return 2

    if args.lint_only:
        from repro.comm.plan import build_comm_plan
        from repro.core.halo import cached_halo_plan
        from repro.matrices import get_matrix

        A = get_matrix(args.matrix, args.scale).build_cached()
        halo = cached_halo_plan(A, args.nranks)
        rank_node = [r // args.ranks_per_node for r in range(args.nranks)]
        findings = []
        for kind in ("direct", "node-aware"):
            findings.extend(lint_comm_plan(build_comm_plan(halo, rank_node, kind), halo))
        title = f"plan lint ({args.matrix}/{args.scale}, nranks={args.nranks})"
        if not findings:
            print(f"{title}: clean (both lowerings)")
            return 0
        print(f"{title}: {len(findings)} finding(s)")
        for f in findings:
            print(f"  - {f.describe()}")
        return 1

    report = check_spmvm(
        matrix=args.matrix,
        scale=args.scale,
        nranks=args.nranks,
        ranks_per_node=args.ranks_per_node,
        iterations=args.iterations,
    )
    print(report.render(
        title=(
            f"communication check: {args.matrix}/{args.scale}, "
            f"{args.nranks} ranks ({args.ranks_per_node}/node), "
            f"all schemes x (direct, node-aware)"
        )
    ))
    return 0 if report.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the repo-invariant AST lint (repro.check.astlint).

    Walks every ``*.py`` under the repro package (or ``path``) and
    applies the rule catalog — hot-path allocation, float64 discipline,
    service lock discipline, comm-thread vocabulary — reporting
    ``ast-lint`` findings with file:line provenance.  Exit 1 on any
    finding.

    ``--selftest`` instead runs every rule against its own seeded-bug
    fixture and fails if any rule stays silent — the proof the lints
    can catch what they claim to.
    """
    from repro.check.astlint import ALL_RULES, get_rule, run_astlint, selftest

    if args.list:
        for rule in ALL_RULES:
            print(f"  {rule.name:<24} {rule.description}")
        return 0

    if args.selftest:
        silent = selftest()
        if silent:
            print(f"FAIL: {len(silent)} rule(s) missed their seeded fixture: {silent}")
            return 2
        print(f"OK: all {len(ALL_RULES)} rules fired on their seeded fixtures")
        return 0

    rules = (get_rule(args.rule),) if args.rule else None
    findings = run_astlint(args.path, rules=rules)
    scope = args.rule or f"{len(ALL_RULES)} rules"
    where = args.path or "src/repro"
    if not findings:
        print(f"ast lint ({scope} over {where}): clean")
        return 0
    print(f"ast lint ({scope} over {where}): {len(findings)} finding(s)")
    for f in findings:
        print(f"  - {f.describe()}")
    return 1


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve a request stream from a persistent solver service.

    Builds the matrix's :class:`~repro.serve.BuiltModel` once
    (optionally round-tripping it through the ``repro-model/1`` file
    given with ``--model``), keeps a worker pool alive, and fires
    ``--requests`` right-hand sides at it from ``--concurrency``
    submitter threads.  Prints build cost, latency percentiles,
    throughput, coalesced batch widths, and verifies a sample of
    responses against independent distributed spMVM runs.
    """
    from repro.matrices import get_matrix
    from repro.serve import run_request_stream

    A = get_matrix(args.matrix, args.scale).build_cached()
    report = run_request_stream(
        A,
        args.nranks,
        scheme=args.scheme,
        kernel=args.kernel,
        requests=args.requests,
        concurrency=args.concurrency,
        max_batch=args.max_batch,
        seed=args.seed,
        verify=args.verify,
        model_path=args.model,
        matrix_label=f"{args.matrix}/{args.scale}",
    )
    print(report.render())
    return 0


def _workload_smoke() -> int:
    """Run the reference-trace guards and the contention probe; exit 1 on any failure."""
    from repro.experiments.workload import run_workload_study, smoke_checks

    study = run_workload_study(n_jobs=20)
    checks = smoke_checks(study)
    print("workload smoke checks:")
    failed = 0
    for name, ok, detail in checks:
        print(f"  [{'PASS' if ok else 'FAIL'}] {name:<30} {detail}")
        failed += 0 if ok else 1
    s = study.stream.summary()
    print(
        f"  stream: {len(study.stream.records)} jobs, "
        f"p99 {s['p99'] * 1e3:.3f} ms, util {s['utilisation'] * 100:.1f} %"
    )
    if failed:
        print(f"{failed} of {len(checks)} checks failed")
        return 1
    print(f"all {len(checks)} checks passed")
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    """Simulate a multi-user job stream on one shared cluster.

    Generates a seeded synthetic arrival stream (or replays a
    ``repro-trace/1`` JSON file), schedules it with FCFS or EASY
    backfilling onto concrete nodes (first-fit / random / node-aware
    placement), runs every job's ranks on one shared flow network so
    co-running jobs contend for links, and reports throughput, latency
    percentiles, per-node utilisation, and bounded slowdown.

    ``--compare`` additionally prints the scheduler/placement comparison
    tables and the link-contention probe; ``--smoke`` runs the CI guard
    checks and exits non-zero if any fails.
    """
    if args.smoke:
        return _workload_smoke()

    from repro.experiments.workload import run_workload_study
    from repro.machine.presets import cray_xe6_cluster, westmere_cluster
    from repro.workload import (
        dump_trace,
        export_job_trace,
        load_trace,
        render_report,
        run_workload,
        synthetic_stream,
    )

    if args.trace:
        jobs = load_trace(args.trace)
        print(f"replaying {len(jobs)} jobs from {args.trace}")
    else:
        jobs = synthetic_stream(
            args.jobs, seed=args.seed, arrival=args.arrival, rate=args.rate
        )
    if args.dump_trace:
        path = dump_trace(jobs, args.dump_trace)
        print(f"job stream written to {path} (repro-trace/1)")

    if args.compare:
        print(run_workload_study(jobs=list(jobs)).render())
        return 0

    cluster = (
        cray_xe6_cluster(args.nodes, background_load=args.background_load)
        if args.network == "torus"
        else westmere_cluster(args.nodes)
    )
    result = run_workload(
        jobs,
        cluster,
        scheduler=args.scheduler,
        placement=args.placement,
        scheme=args.scheme,
        seed=args.seed,
        trace=args.trace_json is not None,
    )
    print(render_report(result))
    if args.trace_json:
        path = export_job_trace(result, args.trace_json)
        print(f"\nChrome trace written to {path} (one row group per job)")
    return 0


def _cmd_kernels(_args: argparse.Namespace) -> int:
    """List every registered sparse kernel (format/variant, equivalence)."""
    from repro.sparse import DEFAULT_KERNEL, available_kernels, get_kernel

    default_key = get_kernel(DEFAULT_KERNEL).key
    print("registered spMVM kernels:")
    for key in available_kernels():
        spec = get_kernel(key)
        tags = ["bit-exact" if spec.exact else "tolerance"]
        if key == default_key:
            tags.append("default")
        print(f"  {key:<16} [{', '.join(tags)}] {spec.description}")
    return 0


def _cmd_probe(_args: argparse.Namespace) -> int:
    from repro.experiments import run_progress_probe

    print(run_progress_probe().render())
    return 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    from repro.matrices import get_matrix
    from repro.sparse import matrix_stats

    spec = get_matrix(args.name, args.scale)
    print(spec.description)
    A = spec.build()
    print(matrix_stats(A, check_symmetry=A.nrows <= 50_000).describe())
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    for fn in (_cmd_fig1, _cmd_fig2, _cmd_fig3, _cmd_fig4, _cmd_kappa, _cmd_probe,
               _cmd_fig5, _cmd_fig6):
        print("\n" + "=" * 74)
        fn(args)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce Schubert et al. (2011): hybrid MPI+OpenMP spMVM.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name: str, fn, **kw):
        p = sub.add_parser(name, help=fn.__doc__, **kw)
        p.set_defaults(fn=fn)
        return p

    add("list", _cmd_list)
    p1 = add("fig1", _cmd_fig1)
    p1.add_argument("--scale", default="small")
    p1.add_argument("--grid", type=int, default=40)
    add("fig2", _cmd_fig2)
    add("fig3", _cmd_fig3)
    p4 = add("fig4", _cmd_fig4)
    p4.add_argument("--scale", default="small")
    pt = add("trace", _cmd_trace)
    pt.add_argument("scheme", choices=("no_overlap", "naive_overlap", "task_mode"))
    pt.add_argument("--matrix", default="HMeP", choices=("HMeP", "HMEp", "sAMG"))
    pt.add_argument("--scale", default="small")
    pt.add_argument("--nodes", type=int, default=2)
    pt.add_argument("--mode", default="per-ld")
    pt.add_argument("--kappa", type=float, default=2.5)
    pt.add_argument("--iterations", type=int, default=1)
    pt.add_argument("--eager-threshold", type=int, default=1024)
    pt.add_argument("--async-progress", action="store_true",
                    help="model an MPI library with working progress threads")
    pt.add_argument("--sweeps", type=int, default=1,
                    help="chain N sweeps per iteration as one multi-sweep program")
    pt.add_argument("--no-pipeline", action="store_true",
                    help="sequential multi-sweep program (no cross-sweep overlap)")
    pt.add_argument("--per-op", action="store_true",
                    help="print per-op cost attribution (program/sweep/op)")
    pt.add_argument("--metrics", action="store_true", help="print the flat metrics dict")
    pt.add_argument("--trace-json", metavar="PATH", default=None,
                    help="write Chrome trace_event JSON to PATH")
    for name, fn in (("fig5", _cmd_fig5), ("fig6", _cmd_fig6), ("all", _cmd_all)):
        p = add(name, fn)
        p.add_argument("--scale", default="small",
                       help="matrix scale (tiny/small/medium; medium matches benchmarks)")
        p.add_argument("--nodes", type=_parse_nodes, default=(1, 2, 4, 8),
                       help="comma-separated node counts")
        p.add_argument("--max-ranks", type=int, default=None)
        p.add_argument("--no-cray", action="store_true", help="skip the Cray reference")
        if name == "all":
            p.add_argument("--grid", type=int, default=40)
    add("kappa", _cmd_kappa)
    for name, fn in (("kappa-predict", _cmd_kappa_predict),
                     ("commvol", _cmd_commvol),
                     ("balance", _cmd_balance)):
        p = add(name, fn)
        p.add_argument("--scale", default="small")
    pc = add("comm-plan", _cmd_comm_plan)
    pc.add_argument("--matrix", default="HMeP", choices=("HMeP", "HMEp", "sAMG"))
    pc.add_argument("--scale", default="small")
    pc.add_argument("--nodes", type=int, default=4)
    pc.add_argument("--mode", default="per-core",
                    help="hybrid mode (per-core = pure MPI, the node-aware regime)")
    pc.add_argument("--network", default="torus", choices=("torus", "fat-tree"))
    pc.add_argument("--scheme", default="no_overlap",
                    choices=("no_overlap", "naive_overlap", "task_mode"))
    pc.add_argument("--simulate", action="store_true",
                    help="also simulate both lowerings and print GFlop/s")
    pcs = add("comm-plans", _cmd_comm_plans)
    pcs.add_argument("--scale", default="small")
    pcs.add_argument("--sweep-nodes", type=_parse_nodes, default=(1, 2, 4, 8),
                     help="node counts of the simulated torus sweep")
    pcs.add_argument("--no-sweep", action="store_true",
                     help="accounting tables only (skip the simulations)")
    pk = add("check", _cmd_check)
    pk.add_argument("--matrix", default="HMeP", choices=("HMeP", "HMEp", "sAMG"))
    pk.add_argument("--scale", default="tiny")
    pk.add_argument("--nranks", type=int, default=4)
    pk.add_argument("--ranks-per-node", type=int, default=2)
    pk.add_argument("--iterations", type=int, default=2)
    pk.add_argument("--lint-only", action="store_true",
                    help="static plan lint only (no instrumented runs)")
    pk.add_argument("--programs", action="store_true",
                    help="lint every sweep program (repro.program builders) and exit")
    pk.add_argument("--threads", action="store_true",
                    help="run the thread-level race sanitizer (repro.check.threads)")
    pk.add_argument("--seed-bug", metavar="NAME", default=None,
                    choices=("deadlock-cycle", "collective-stall", "message-race",
                             "buffer-hazard", "leaked-request", "plan-lint",
                             "thread-race-missing-barrier", "thread-race-main-halo",
                             "thread-race-sweep-overlap",
                             "thread-race-unlocked-service", "astlint-hot-alloc",
                             "astlint-float64", "astlint-lock-discipline",
                             "astlint-comm-vocab"),
                    help="run a seeded-bug fixture and require its detector to fire")
    pl = add("lint", _cmd_lint)
    pl.add_argument("path", nargs="?", default=None,
                    help="tree to lint (default: the installed repro package)")
    pl.add_argument("--rule", metavar="NAME", default=None,
                    help="apply only this rule (see --list)")
    pl.add_argument("--list", action="store_true", help="list the rule catalog")
    pl.add_argument("--selftest", action="store_true",
                    help="require every rule to fire on its seeded fixture")
    add("probe", _cmd_probe)
    pb = add("bench", _cmd_bench)
    pb.add_argument("--quick", action="store_true",
                    help="small matrix, few repeats (CI smoke mode)")
    pb.add_argument("--scheme", default="task_mode",
                    choices=("no_overlap", "naive_overlap", "task_mode"))
    pb.add_argument("--seed", type=int, default=7)
    pb.add_argument("--output", metavar="PATH", default="BENCH_spmvm.json",
                    help="where to write the repro-bench/1 JSON (default: %(default)s)")
    ps = add("serve", _cmd_serve)
    ps.add_argument("--matrix", default="HMeP", choices=("HMeP", "HMEp", "sAMG"))
    ps.add_argument("--scale", default="tiny")
    ps.add_argument("--nranks", type=int, default=4)
    ps.add_argument("--scheme", default="task_mode",
                    choices=("no_overlap", "naive_overlap", "task_mode"))
    ps.add_argument("--kernel", default="csr",
                    help="registered kernel key (see `repro kernels`)")
    ps.add_argument("--requests", type=int, default=64)
    ps.add_argument("--concurrency", type=int, default=8,
                    help="concurrent submitter threads")
    ps.add_argument("--max-batch", type=int, default=8,
                    help="max coalesced columns per spmm batch")
    ps.add_argument("--verify", type=int, default=4,
                    help="responses to re-check against independent runs")
    ps.add_argument("--seed", type=int, default=7)
    ps.add_argument("--model", metavar="PATH", default=None,
                    help="save the built model here and serve from the reloaded copy")
    pw = add("workload", _cmd_workload)
    pw.add_argument("--jobs", type=int, default=100,
                    help="synthetic stream length (default: %(default)s)")
    pw.add_argument("--seed", type=int, default=0)
    pw.add_argument("--arrival", default="poisson", choices=("poisson", "heavy"),
                    help="interarrival distribution of the synthetic stream "
                         "(heavy = heavy-tailed Pareto)")
    pw.add_argument("--rate", type=float, default=1.0e5,
                    help="mean arrival rate in jobs per simulated second "
                         "(default saturates the 16-node machine)")
    pw.add_argument("--scheduler", default="easy", choices=("fcfs", "easy"))
    pw.add_argument("--placement", default="node-aware",
                    choices=("first-fit", "random", "node-aware"))
    pw.add_argument("--network", default="torus", choices=("torus", "fat-tree"))
    pw.add_argument("--nodes", type=int, default=16)
    pw.add_argument("--background-load", type=float, default=0.85,
                    help="torus background traffic fraction (torus only)")
    pw.add_argument("--scheme", default="naive_overlap",
                    choices=("no_overlap", "naive_overlap"))
    pw.add_argument("--trace", metavar="PATH", default=None,
                    help="replay a repro-trace/1 JSON file instead of a synthetic stream")
    pw.add_argument("--dump-trace", metavar="PATH", default=None,
                    help="write the job stream as repro-trace/1 JSON before running")
    pw.add_argument("--trace-json", metavar="PATH", default=None,
                    help="write a per-job Chrome trace_event JSON of the run")
    pw.add_argument("--compare", action="store_true",
                    help="full study: policy comparison tables + contention probe")
    pw.add_argument("--smoke", action="store_true",
                    help="run the CI guard checks; non-zero exit on failure")
    add("kernels", _cmd_kernels)
    pm = add("matrix", _cmd_matrix)
    pm.add_argument("name", choices=("HMeP", "HMEp", "sAMG"))
    pm.add_argument("--scale", default="tiny")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
