"""Launching SPMD functions on an mpilite world.

:func:`run_spmd` is the ``mpiexec`` equivalent: it spawns one thread per
rank, hands each a :class:`~repro.mpilite.comm.Comm`, runs the given
function everywhere and collects the per-rank return values.  Exceptions
on any rank are re-raised on the caller (first failing rank wins) so
test failures stay loud.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.mpilite.comm import CollectiveState, Comm
from repro.mpilite.router import Router
from repro.util import check_positive_int

__all__ = ["run_spmd"]


def run_spmd(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: float = 120.0,
    recv_timeout: float | None = None,
    recorder: Any = None,
    **kwargs: Any,
) -> list[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on *nranks* ranks; return results.

    Per-rank positional arguments may be supplied by passing a list/tuple
    whose length equals *nranks* wrapped in :class:`PerRank`.

    ``recv_timeout`` is the world's default blocking-receive (and
    collective) timeout, handed to every rank's communicator so tests can
    shrink the safety net in one place.  ``recorder`` attaches a
    :class:`repro.check.CommRecorder` (or a compatible observer) to the
    router, the collective state and every communicator — the opt-in
    dynamic correctness analyzer; pass ``None`` (the default) for the
    uninstrumented fast path.
    """
    nranks = check_positive_int(nranks, "nranks")
    router = Router(nranks)
    coll = CollectiveState(nranks, timeout=recv_timeout)
    if recorder is not None:
        router.observer = recorder
        coll.observer = recorder
    results: list[Any] = [None] * nranks
    errors: list[tuple[int, BaseException]] = []
    lock = threading.Lock()

    def runner(rank: int) -> None:
        comm = Comm(rank, router, coll, default_timeout=recv_timeout, recorder=recorder)
        rank_args = tuple(a.values[rank] if isinstance(a, PerRank) else a for a in args)
        rank_kwargs = {
            k: (v.values[rank] if isinstance(v, PerRank) else v) for k, v in kwargs.items()
        }
        try:
            results[rank] = fn(comm, *rank_args, **rank_kwargs)
        except BaseException as exc:  # noqa: BLE001 - surface everything
            with lock:
                errors.append((rank, exc))
        finally:
            if recorder is not None:
                recorder.on_rank_finished(rank)

    threads = [
        threading.Thread(target=runner, args=(r,), name=f"mpilite-rank-{r}", daemon=True)
        for r in range(nranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
    alive = [t for t in threads if t.is_alive()]
    if alive:
        raise TimeoutError(
            f"{len(alive)} rank(s) did not finish within {timeout} s "
            f"(likely an mpilite deadlock): {[t.name for t in alive]}"
        )
    if errors:
        rank, exc = min(errors, key=lambda e: e[0])
        raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc
    return results


class PerRank:
    """Marks an argument of :func:`run_spmd` as per-rank (one value each)."""

    def __init__(self, values: list[Any]) -> None:
        self.values = list(values)

    def __len__(self) -> int:
        return len(self.values)
