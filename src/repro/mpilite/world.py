"""Launching SPMD functions on an mpilite world.

:func:`run_spmd` is the ``mpiexec`` equivalent: it spawns one thread per
rank, hands each a :class:`~repro.mpilite.comm.Comm`, runs the given
function everywhere and collects the per-rank return values.  Exceptions
on any rank are re-raised on the caller (first failing rank wins) so
test failures stay loud.

:func:`open_world` is the *persistent* variant: it builds the shared
runtime (router, collective state, one communicator per rank) and hands
it to the caller to keep alive across many requests — the substrate of
the :mod:`repro.serve` worker pool.  :meth:`World.abort` tears it down,
waking every blocked operation with a provenance-carrying
:class:`~repro.mpilite.router.WorldAbortedError` instead of letting
survivors run out their timeouts.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.mpilite.comm import CollectiveState, Comm
from repro.mpilite.router import Router
from repro.util import check_positive_int

__all__ = ["run_spmd", "open_world", "World", "PerRank"]


class World:
    """The long-lived shared runtime of one mpilite world.

    Owns the router, the collective state and one pre-built communicator
    per rank.  Unlike :func:`run_spmd`, which stands all of this up and
    tears it down per call, a ``World`` persists across requests — any
    thread may drive ``world.comms[r]`` as rank *r* for as long as the
    world lives.
    """

    def __init__(
        self,
        nranks: int,
        *,
        recv_timeout: float | None = None,
        recorder: Any = None,
    ) -> None:
        nranks = check_positive_int(nranks, "nranks")
        self.router = Router(nranks)
        self.collectives = CollectiveState(nranks, timeout=recv_timeout)
        if recorder is not None:
            self.router.observer = recorder
            self.collectives.observer = recorder
        self.recorder = recorder
        self.comms = [
            Comm(r, self.router, self.collectives, default_timeout=recv_timeout,
                 recorder=recorder)
            for r in range(nranks)
        ]

    @property
    def nranks(self) -> int:
        """World size."""
        return self.router.nranks

    @property
    def aborted(self) -> str | None:
        """The abort reason, or ``None`` while the world is live."""
        return self.router.aborted

    def abort(self, reason: str) -> None:
        """Tear the world down: every blocked or future operation raises
        :class:`~repro.mpilite.router.WorldAbortedError` naming *reason*
        plus its own rank/peer/tag."""
        self.router.abort(reason)
        self.collectives.abort(reason)


def open_world(
    nranks: int,
    *,
    recv_timeout: float | None = None,
    recorder: Any = None,
) -> World:
    """Build a persistent mpilite :class:`World` (see class docs)."""
    return World(nranks, recv_timeout=recv_timeout, recorder=recorder)


def run_spmd(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: float = 120.0,
    recv_timeout: float | None = None,
    recorder: Any = None,
    **kwargs: Any,
) -> list[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on *nranks* ranks; return results.

    Per-rank positional arguments may be supplied by passing a list/tuple
    whose length equals *nranks* wrapped in :class:`PerRank`.

    ``recv_timeout`` is the world's default blocking-receive (and
    collective) timeout, handed to every rank's communicator so tests can
    shrink the safety net in one place.  ``recorder`` attaches a
    :class:`repro.check.CommRecorder` (or a compatible observer) to the
    router, the collective state and every communicator — the opt-in
    dynamic correctness analyzer; pass ``None`` (the default) for the
    uninstrumented fast path.
    """
    nranks = check_positive_int(nranks, "nranks")
    world = World(nranks, recv_timeout=recv_timeout, recorder=recorder)
    results: list[Any] = [None] * nranks
    errors: list[tuple[int, BaseException]] = []
    lock = threading.Lock()

    def runner(rank: int) -> None:
        comm = world.comms[rank]
        rank_args = tuple(a.values[rank] if isinstance(a, PerRank) else a for a in args)
        rank_kwargs = {
            k: (v.values[rank] if isinstance(v, PerRank) else v) for k, v in kwargs.items()
        }
        try:
            results[rank] = fn(comm, *rank_args, **rank_kwargs)
        except BaseException as exc:  # noqa: BLE001 - surface everything
            with lock:
                errors.append((rank, exc))
        finally:
            if recorder is not None:
                recorder.on_rank_finished(rank)

    threads = [
        threading.Thread(target=runner, args=(r,), name=f"mpilite-rank-{r}", daemon=True)
        for r in range(nranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
    alive = [t for t in threads if t.is_alive()]
    if alive:
        raise TimeoutError(
            f"{len(alive)} rank(s) did not finish within {timeout} s "
            f"(likely an mpilite deadlock): {[t.name for t in alive]}"
        )
    if errors:
        rank, exc = min(errors, key=lambda e: e[0])
        raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc
    return results


class PerRank:
    """Marks an argument of :func:`run_spmd` as per-rank (one value each)."""

    def __init__(self, values: list[Any]) -> None:
        self.values = list(values)

    def __len__(self) -> int:
        return len(self.values)
