"""Process-based mpilite backend: SPMD over ``multiprocessing``.

The thread backend (:mod:`repro.mpilite.world`) shares one GIL, so the
numerics are serialised — fine for verification, useless for speed.
This backend launches one *process* per rank connected by a full mesh of
pipes, so on a real multicore host the distributed spMVM actually runs
in parallel (numpy kernels in separate interpreters).

Design
------
* point-to-point: each ordered rank pair owns a ``multiprocessing.Pipe``;
  sends pickle the payload into the pipe (buffered by the OS), receives
  match on ``(source, tag)`` with an out-of-order holding area, so the
  semantics match the thread backend's router exactly;
* collectives: implemented on top of point-to-point with rank-0 as the
  root of a gather/broadcast star — no shared state;
* the target function must be picklable (module-level), as usual with
  ``multiprocessing``.

The API intentionally mirrors :class:`repro.mpilite.comm.Comm`, so the
same SPMD functions run on either backend.
"""

from __future__ import annotations

import functools
import multiprocessing as mp
from collections import deque
from typing import Any, Callable, Sequence

import numpy as np

from repro.util import check_positive_int

__all__ = ["ProcComm", "run_spmd_processes"]

_SENTINEL_TIMEOUT = 120.0


class ProcComm:
    """Communicator of one rank in a process-backed mpilite world.

    Mirrors the thread backend's :class:`~repro.mpilite.comm.Comm` API
    (the subset the solvers and the distributed spMVM use).
    """

    def __init__(self, rank: int, size: int, conns: dict[int, Any]) -> None:
        self._rank = rank
        self._size = size
        self._conns = conns  # peer rank -> Connection
        self._pending: dict[int, deque[tuple[int, Any]]] = {p: deque() for p in conns}

    @property
    def rank(self) -> int:
        """This rank's id."""
        return self._rank

    @property
    def size(self) -> int:
        """World size."""
        return self._size

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Send any picklable object (numpy arrays are copied by pickling)."""
        if dest == self._rank:
            raise ValueError("self-sends are not supported by the process backend")
        self._conns[dest].send((tag, obj))

    def recv(self, source: int, tag: int = 0, timeout: float = _SENTINEL_TIMEOUT) -> Any:
        """Blocking receive of the next message from *source* with *tag*.

        Out-of-order messages (same source, different tag) are parked and
        delivered to later receives.
        """
        queue = self._pending[source]
        for idx, (t, payload) in enumerate(queue):
            if t == tag:
                del queue[idx]
                return payload
        conn = self._conns[source]
        while True:
            if not conn.poll(timeout):
                raise TimeoutError(
                    f"rank {self._rank}: no message from {source} tag {tag} "
                    f"after {timeout} s"
                )
            t, payload = conn.recv()
            if t == tag:
                return payload
            queue.append((t, payload))

    def Send(self, buf: np.ndarray, dest: int, tag: int = 0) -> None:
        """Buffer-mode send (same as :meth:`send` for this backend)."""
        self.send(np.ascontiguousarray(buf), dest, tag)

    def Recv(self, buf: np.ndarray, source: int, tag: int = 0,
             timeout: float = _SENTINEL_TIMEOUT) -> None:
        """Buffer-mode receive into a preallocated array."""
        data = self.recv(source, tag, timeout)
        if not isinstance(data, np.ndarray) or data.shape != buf.shape:
            raise ValueError(
                f"receive buffer shape {buf.shape} does not match message "
                f"{getattr(data, 'shape', type(data).__name__)}"
            )
        buf[...] = data

    def isend(self, obj: Any, dest: int, tag: int = 0):
        """Nonblocking send (buffered: completes immediately)."""
        from repro.mpilite.comm import Request

        self.send(obj, dest, tag)
        req = Request(lambda: None)
        req._done = True
        return req

    def irecv(self, source: int, tag: int = 0, timeout: float = _SENTINEL_TIMEOUT):
        """Nonblocking receive handle."""
        from repro.mpilite.comm import Request

        return Request(lambda: self.recv(source, tag, timeout))

    def waitall(self, requests: Sequence) -> list[Any]:
        """Complete a set of requests in order."""
        return [r.wait() for r in requests]

    # ------------------------------------------------------------------
    # collectives (rank-0-rooted star over point-to-point)
    # ------------------------------------------------------------------
    _COLL_TAG = -77

    def barrier(self) -> None:
        """Synchronise all ranks."""
        self.allgather(None)

    def allgather(self, value: Any) -> list[Any]:
        """Gather one value per rank, delivered everywhere in rank order."""
        if self._rank == 0:
            values = [value] + [
                self.recv(src, self._COLL_TAG) for src in range(1, self._size)
            ]
            for dst in range(1, self._size):
                self.send(values, dst, self._COLL_TAG)
            return values
        self.send(value, 0, self._COLL_TAG)
        return self.recv(0, self._COLL_TAG)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast from *root*."""
        return self.allgather(obj if self._rank == root else None)[root]

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any] | None = None) -> Any:
        """Reduce over all ranks (default sum), result everywhere."""
        op = op or (lambda a, b: a + b)
        return functools.reduce(op, self.allgather(value))

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        """Gather to *root* (others get None)."""
        out = self.allgather(value)
        return out if self._rank == root else None

    def scatter(self, values: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter a length-size sequence from *root*."""
        spread = self.bcast(list(values) if self._rank == root and values is not None else None, root)
        if spread is None or len(spread) != self._size:
            raise ValueError("scatter requires a length-size sequence on root")
        return spread[self._rank]


def _entry(fn, rank, size, conn_items, args, kwargs, result_q):  # pragma: no cover
    # runs in the child process
    from repro.mpilite.world import PerRank

    conns = dict(conn_items)
    comm = ProcComm(rank, size, conns)
    rank_args = tuple(a.values[rank] if isinstance(a, PerRank) else a for a in args)
    rank_kwargs = {k: (v.values[rank] if isinstance(v, PerRank) else v) for k, v in kwargs.items()}
    try:
        result_q.put((rank, "ok", fn(comm, *rank_args, **rank_kwargs)))
    except BaseException as exc:  # noqa: BLE001
        result_q.put((rank, "error", repr(exc)))


def run_spmd_processes(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    timeout: float = 120.0,
    **kwargs: Any,
) -> list[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on *nranks* OS processes.

    The process-backend twin of :func:`repro.mpilite.world.run_spmd`;
    ``fn`` and all arguments must be picklable.  Returns the per-rank
    results; raises on the first failing rank.
    """
    nranks = check_positive_int(nranks, "nranks")
    ctx = mp.get_context("fork") if "fork" in mp.get_all_start_methods() else mp.get_context()
    # full mesh of pipes
    conns: dict[int, dict[int, Any]] = {r: {} for r in range(nranks)}
    for a in range(nranks):
        for b in range(a + 1, nranks):
            ca, cb = ctx.Pipe(duplex=True)
            conns[a][b] = ca
            conns[b][a] = cb
    result_q = ctx.Queue()
    procs = [
        ctx.Process(
            target=_entry,
            args=(fn, r, nranks, tuple(conns[r].items()), args, kwargs, result_q),
            name=f"mpilite-proc-{r}",
            daemon=True,
        )
        for r in range(nranks)
    ]
    for p in procs:
        p.start()
    results: list[Any] = [None] * nranks
    errors: list[tuple[int, str]] = []
    received = 0
    try:
        while received < nranks:
            try:
                rank, status, payload = result_q.get(timeout=timeout)
            except Exception as exc:
                raise TimeoutError(
                    f"{nranks - received} rank process(es) did not report within "
                    f"{timeout} s (likely a deadlock)"
                ) from exc
            received += 1
            if status == "ok":
                results[rank] = payload
            else:
                errors.append((rank, payload))
    finally:
        for p in procs:
            p.join(timeout=5.0)
            if p.is_alive():
                p.terminate()
    if errors:
        rank, msg = min(errors, key=lambda e: e[0])
        raise RuntimeError(f"rank {rank} failed: {msg}")
    return results
