"""Message router shared by all ranks of an mpilite world.

A single in-process mailbox system: each (destination, source, tag)
triple owns a FIFO of messages; receivers block on a condition variable.
Sends are *buffered* (they complete immediately after depositing a copy),
matching MPI's standard-mode semantics for small/medium messages.

numpy payloads are copied on send so that the sender may reuse its
buffer immediately — the same guarantee ``MPI_Send`` gives once it
returns.

Receives may use the :data:`ANY_SOURCE` / :data:`ANY_TAG` wildcards, in
which case the oldest matching message (by global arrival order) wins —
the nondeterministic matching that makes wildcard receives the classic
source of MPI message races, and exactly what the dynamic analyzer in
:mod:`repro.check` watches for.

An optional :attr:`Router.observer` (the analyzer's recorder) is
notified of every deposit, blocked receive, and completed match; when it
is attached, blocking receives wait in short slices so the observer can
convert a wait-for cycle into an immediate :class:`DeadlockError`
instead of a timeout.  With no observer the hot path is unchanged.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any

import numpy as np

__all__ = ["ANY_SOURCE", "ANY_TAG", "Router", "WorldAbortedError", "observer_wait_slice"]

#: Wildcard source rank for receives (matches any sender).
ANY_SOURCE = -1
#: Wildcard tag for receives (matches any tag).
ANY_TAG = -1

#: Cap on the observer-mode wait slice (seconds) once the bounded
#: backoff has grown it; bounds both idle CPU *and* detection latency.
OBSERVER_WAIT_SLICE_MAX = 0.25


class WorldAbortedError(RuntimeError):
    """The mpilite world was torn down while an operation was blocked.

    Raised (with rank/peer/tag provenance) by every wait that was in
    flight when :meth:`Router.abort` ran — a worker-pool shutdown or a
    failed peer must surface here immediately instead of each survivor
    burning its full receive/collective timeout.
    """


def observer_wait_slice(obs, backoff: float, remaining: float | None) -> tuple[float, float]:
    """Next condition-wait slice under an attached observer, with backoff.

    Observer-mode waits run in slices so the analyzer can convert a
    wait-for cycle into an immediate diagnosis — but a worker pool
    sitting idle between requests must not spin at the poll interval
    forever.  The slice starts at ``obs.poll_interval`` and doubles up
    to :data:`OBSERVER_WAIT_SLICE_MAX` while the wait stays blocked,
    bounding idle wakeups while keeping detection latency bounded too.
    Returns ``(slice, next_backoff)``; *remaining* (time to the
    deadline) caps the slice when finite.
    """
    wait_slice = backoff if remaining is None else min(backoff, remaining)
    return wait_slice, min(backoff * 2.0, OBSERVER_WAIT_SLICE_MAX)


def _copy_payload(payload: Any) -> Any:
    if isinstance(payload, np.ndarray):
        return payload.copy()
    return payload


def _describe_src(src: int) -> str:
    return "ANY_SOURCE" if src == ANY_SOURCE else str(src)


def _describe_tag(tag: int) -> str:
    return "ANY_TAG" if tag == ANY_TAG else str(tag)


class Router:
    """Thread-safe mailbox router for one mpilite world."""

    def __init__(self, nranks: int) -> None:
        if nranks <= 0:
            raise ValueError(f"nranks must be positive, got {nranks}")
        self.nranks = nranks
        self._lock = threading.Condition()
        # each box holds (arrival seq, payload) so wildcard receives can
        # pick the globally oldest matching message
        self._boxes: dict[tuple[int, int, int], deque[tuple[int, Any]]] = {}
        self._bytes_routed = 0
        self._messages = 0
        self._abort_reason: str | None = None
        #: optional :class:`repro.check.CommRecorder` (or any object with
        #: the same observer interface); ``None`` keeps the fast path
        self.observer: Any = None

    # ------------------------------------------------------------------
    def abort(self, reason: str) -> None:
        """Tear the world down: wake every blocked wait with an error.

        After ``abort`` every blocked or future :meth:`get`/:meth:`put`
        raises :class:`WorldAbortedError` carrying *reason* plus the
        operation's rank/peer/tag — the teardown path a persistent
        worker pool takes so a shutdown (or a dead peer) mid-request
        fails loudly in milliseconds instead of hanging each survivor
        for its full timeout.
        """
        with self._lock:
            self._abort_reason = str(reason)
            self._lock.notify_all()

    @property
    def aborted(self) -> str | None:
        """The abort reason, or ``None`` while the world is live."""
        return self._abort_reason

    def _check_abort(self, dst: int, src: int, tag: int, op: str) -> None:
        if self._abort_reason is not None:
            raise WorldAbortedError(
                f"rank {dst}: {op} (peer {_describe_src(src)}, tag "
                f"{_describe_tag(tag)}) aborted: {self._abort_reason}"
            )

    def put(self, src: int, dst: int, tag: int, payload: Any) -> None:
        """Deposit a message (copies numpy payloads)."""
        self._check_rank(src, "src")
        self._check_rank(dst, "dst")
        item = _copy_payload(payload)
        with self._lock:
            self._check_abort(src, dst, tag, "send")
            self._boxes.setdefault((dst, src, tag), deque()).append((self._messages, item))
            self._messages += 1
            nbytes = item.nbytes if isinstance(item, np.ndarray) else 0
            self._bytes_routed += nbytes
            if self.observer is not None:
                self.observer.on_send(src, dst, tag, nbytes)
            self._lock.notify_all()

    def get(self, dst: int, src: int, tag: int, timeout: float | None = None) -> Any:
        """Blocking receive of the next matching message.

        *src* may be :data:`ANY_SOURCE` and *tag* may be :data:`ANY_TAG`;
        the oldest matching message wins.  Raises :class:`TimeoutError`
        if *timeout* (seconds) elapses — the safety net that turns an
        mpilite deadlock into a test failure instead of a hang — naming
        the blocked rank, the awaited peer, and the tag.
        """
        self._check_rank(dst, "dst")
        if src != ANY_SOURCE:
            self._check_rank(src, "src")
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            self._check_abort(dst, src, tag, "blocked receive")
            key = self._match(dst, src, tag)
            if key is not None:
                return self._take(key, dst, src, tag)
            obs = self.observer
            backoff = obs.poll_interval if obs is not None else 0.0
            try:
                if obs is not None:
                    obs.on_recv_blocked(dst, src, tag)
                while True:
                    remaining = None if deadline is None else deadline - time.monotonic()
                    if remaining is not None and remaining <= 0:
                        raise TimeoutError(
                            f"rank {dst}: blocked receive from {_describe_src(src)} "
                            f"with tag {_describe_tag(tag)} timed out after {timeout} s"
                        )
                    wait_slice = remaining
                    if obs is not None:
                        # slices let the observer diagnose deadlocks, but
                        # back off exponentially (bounded) so an idle pool
                        # does not spin at the poll interval forever
                        wait_slice, backoff = observer_wait_slice(obs, backoff, remaining)
                    self._lock.wait(timeout=wait_slice)
                    self._check_abort(dst, src, tag, "blocked receive")
                    if obs is not None:
                        obs.check_blocked(dst)
                    key = self._match(dst, src, tag)
                    if key is not None:
                        return self._take(key, dst, src, tag)
            finally:
                if obs is not None:
                    obs.on_recv_unblocked(dst)

    def poll(self, dst: int, src: int, tag: int) -> bool:
        """True when a matching message is waiting (wildcards allowed)."""
        with self._lock:
            return self._match(dst, src, tag) is not None

    def pending_messages(self) -> list[tuple[int, int, int, int]]:
        """Deposited-but-unreceived messages as ``(src, dst, tag, count)``."""
        with self._lock:
            return [
                (src, dst, tag, len(box))
                for (dst, src, tag), box in self._boxes.items()
                if box
            ]

    # ------------------------------------------------------------------
    def _match(self, dst: int, src: int, tag: int) -> tuple[int, int, int] | None:
        """Nonempty box key matching (dst, src, tag), honouring wildcards.

        The caller holds the lock.  With wildcards the box whose head
        message arrived first wins, so wildcard receives drain messages
        in global arrival order.
        """
        if src != ANY_SOURCE and tag != ANY_TAG:
            key = (dst, src, tag)
            return key if self._boxes.get(key) else None
        best: tuple[int, int, int] | None = None
        best_seq = -1
        for key, box in self._boxes.items():
            if not box or key[0] != dst:
                continue
            if src != ANY_SOURCE and key[1] != src:
                continue
            if tag != ANY_TAG and key[2] != tag:
                continue
            if best is None or box[0][0] < best_seq:
                best, best_seq = key, box[0][0]
        return best

    def _take(self, key: tuple[int, int, int], dst: int, req_src: int, req_tag: int) -> Any:
        _seq, item = self._boxes[key].popleft()
        if self.observer is not None:
            self.observer.on_recv_complete(dst, key[1], key[2], req_src, req_tag)
        return item

    # ------------------------------------------------------------------
    @property
    def stats(self) -> dict[str, int]:
        """Router counters (messages, numpy bytes routed)."""
        with self._lock:
            return {"messages": self._messages, "bytes": self._bytes_routed}

    def _check_rank(self, rank: int, name: str) -> None:
        if not (0 <= rank < self.nranks):
            raise ValueError(f"{name}={rank} out of range for world size {self.nranks}")
