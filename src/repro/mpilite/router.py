"""Message router shared by all ranks of an mpilite world.

A single in-process mailbox system: each (destination, source, tag)
triple owns a FIFO of messages; receivers block on a condition variable.
Sends are *buffered* (they complete immediately after depositing a copy),
matching MPI's standard-mode semantics for small/medium messages.

numpy payloads are copied on send so that the sender may reuse its
buffer immediately — the same guarantee ``MPI_Send`` gives once it
returns.

Receives may use the :data:`ANY_SOURCE` / :data:`ANY_TAG` wildcards, in
which case the oldest matching message (by global arrival order) wins —
the nondeterministic matching that makes wildcard receives the classic
source of MPI message races, and exactly what the dynamic analyzer in
:mod:`repro.check` watches for.

An optional :attr:`Router.observer` (the analyzer's recorder) is
notified of every deposit, blocked receive, and completed match; when it
is attached, blocking receives wait in short slices so the observer can
convert a wait-for cycle into an immediate :class:`DeadlockError`
instead of a timeout.  With no observer the hot path is unchanged.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any

import numpy as np

__all__ = ["ANY_SOURCE", "ANY_TAG", "Router"]

#: Wildcard source rank for receives (matches any sender).
ANY_SOURCE = -1
#: Wildcard tag for receives (matches any tag).
ANY_TAG = -1


def _copy_payload(payload: Any) -> Any:
    if isinstance(payload, np.ndarray):
        return payload.copy()
    return payload


def _describe_src(src: int) -> str:
    return "ANY_SOURCE" if src == ANY_SOURCE else str(src)


def _describe_tag(tag: int) -> str:
    return "ANY_TAG" if tag == ANY_TAG else str(tag)


class Router:
    """Thread-safe mailbox router for one mpilite world."""

    def __init__(self, nranks: int) -> None:
        if nranks <= 0:
            raise ValueError(f"nranks must be positive, got {nranks}")
        self.nranks = nranks
        self._lock = threading.Condition()
        # each box holds (arrival seq, payload) so wildcard receives can
        # pick the globally oldest matching message
        self._boxes: dict[tuple[int, int, int], deque[tuple[int, Any]]] = {}
        self._bytes_routed = 0
        self._messages = 0
        #: optional :class:`repro.check.CommRecorder` (or any object with
        #: the same observer interface); ``None`` keeps the fast path
        self.observer: Any = None

    # ------------------------------------------------------------------
    def put(self, src: int, dst: int, tag: int, payload: Any) -> None:
        """Deposit a message (copies numpy payloads)."""
        self._check_rank(src, "src")
        self._check_rank(dst, "dst")
        item = _copy_payload(payload)
        with self._lock:
            self._boxes.setdefault((dst, src, tag), deque()).append((self._messages, item))
            self._messages += 1
            nbytes = item.nbytes if isinstance(item, np.ndarray) else 0
            self._bytes_routed += nbytes
            if self.observer is not None:
                self.observer.on_send(src, dst, tag, nbytes)
            self._lock.notify_all()

    def get(self, dst: int, src: int, tag: int, timeout: float | None = None) -> Any:
        """Blocking receive of the next matching message.

        *src* may be :data:`ANY_SOURCE` and *tag* may be :data:`ANY_TAG`;
        the oldest matching message wins.  Raises :class:`TimeoutError`
        if *timeout* (seconds) elapses — the safety net that turns an
        mpilite deadlock into a test failure instead of a hang — naming
        the blocked rank, the awaited peer, and the tag.
        """
        self._check_rank(dst, "dst")
        if src != ANY_SOURCE:
            self._check_rank(src, "src")
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            key = self._match(dst, src, tag)
            if key is not None:
                return self._take(key, dst, src, tag)
            obs = self.observer
            try:
                if obs is not None:
                    obs.on_recv_blocked(dst, src, tag)
                while True:
                    remaining = None if deadline is None else deadline - time.monotonic()
                    if remaining is not None and remaining <= 0:
                        raise TimeoutError(
                            f"rank {dst}: blocked receive from {_describe_src(src)} "
                            f"with tag {_describe_tag(tag)} timed out after {timeout} s"
                        )
                    wait_slice = remaining
                    if obs is not None:
                        wait_slice = (
                            obs.poll_interval
                            if remaining is None
                            else min(obs.poll_interval, remaining)
                        )
                    self._lock.wait(timeout=wait_slice)
                    if obs is not None:
                        obs.check_blocked(dst)
                    key = self._match(dst, src, tag)
                    if key is not None:
                        return self._take(key, dst, src, tag)
            finally:
                if obs is not None:
                    obs.on_recv_unblocked(dst)

    def poll(self, dst: int, src: int, tag: int) -> bool:
        """True when a matching message is waiting (wildcards allowed)."""
        with self._lock:
            return self._match(dst, src, tag) is not None

    def pending_messages(self) -> list[tuple[int, int, int, int]]:
        """Deposited-but-unreceived messages as ``(src, dst, tag, count)``."""
        with self._lock:
            return [
                (src, dst, tag, len(box))
                for (dst, src, tag), box in self._boxes.items()
                if box
            ]

    # ------------------------------------------------------------------
    def _match(self, dst: int, src: int, tag: int) -> tuple[int, int, int] | None:
        """Nonempty box key matching (dst, src, tag), honouring wildcards.

        The caller holds the lock.  With wildcards the box whose head
        message arrived first wins, so wildcard receives drain messages
        in global arrival order.
        """
        if src != ANY_SOURCE and tag != ANY_TAG:
            key = (dst, src, tag)
            return key if self._boxes.get(key) else None
        best: tuple[int, int, int] | None = None
        best_seq = -1
        for key, box in self._boxes.items():
            if not box or key[0] != dst:
                continue
            if src != ANY_SOURCE and key[1] != src:
                continue
            if tag != ANY_TAG and key[2] != tag:
                continue
            if best is None or box[0][0] < best_seq:
                best, best_seq = key, box[0][0]
        return best

    def _take(self, key: tuple[int, int, int], dst: int, req_src: int, req_tag: int) -> Any:
        _seq, item = self._boxes[key].popleft()
        if self.observer is not None:
            self.observer.on_recv_complete(dst, key[1], key[2], req_src, req_tag)
        return item

    # ------------------------------------------------------------------
    @property
    def stats(self) -> dict[str, int]:
        """Router counters (messages, numpy bytes routed)."""
        with self._lock:
            return {"messages": self._messages, "bytes": self._bytes_routed}

    def _check_rank(self, rank: int, name: str) -> None:
        if not (0 <= rank < self.nranks):
            raise ValueError(f"{name}={rank} out of range for world size {self.nranks}")
