"""Message router shared by all ranks of an mpilite world.

A single in-process mailbox system: each (destination, source, tag)
triple owns a FIFO of messages; receivers block on a condition variable.
Sends are *buffered* (they complete immediately after depositing a copy),
matching MPI's standard-mode semantics for small/medium messages.

numpy payloads are copied on send so that the sender may reuse its
buffer immediately — the same guarantee ``MPI_Send`` gives once it
returns.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

import numpy as np

__all__ = ["Router"]


def _copy_payload(payload: Any) -> Any:
    if isinstance(payload, np.ndarray):
        return payload.copy()
    return payload


class Router:
    """Thread-safe mailbox router for one mpilite world."""

    def __init__(self, nranks: int) -> None:
        if nranks <= 0:
            raise ValueError(f"nranks must be positive, got {nranks}")
        self.nranks = nranks
        self._lock = threading.Condition()
        self._boxes: dict[tuple[int, int, int], deque[Any]] = {}
        self._bytes_routed = 0
        self._messages = 0

    # ------------------------------------------------------------------
    def put(self, src: int, dst: int, tag: int, payload: Any) -> None:
        """Deposit a message (copies numpy payloads)."""
        self._check_rank(src, "src")
        self._check_rank(dst, "dst")
        item = _copy_payload(payload)
        with self._lock:
            self._boxes.setdefault((dst, src, tag), deque()).append(item)
            self._messages += 1
            if isinstance(item, np.ndarray):
                self._bytes_routed += item.nbytes
            self._lock.notify_all()

    def get(self, dst: int, src: int, tag: int, timeout: float | None = None) -> Any:
        """Blocking receive of the next matching message.

        Raises :class:`TimeoutError` if *timeout* (seconds) elapses — the
        safety net that turns an mpilite deadlock into a test failure
        instead of a hang.
        """
        key = (dst, src, tag)
        with self._lock:
            while True:
                box = self._boxes.get(key)
                if box:
                    return box.popleft()
                if not self._lock.wait(timeout=timeout):
                    raise TimeoutError(
                        f"rank {dst}: no message from {src} with tag {tag} "
                        f"after {timeout} s"
                    )

    def poll(self, dst: int, src: int, tag: int) -> bool:
        """True when a matching message is waiting."""
        with self._lock:
            box = self._boxes.get((dst, src, tag))
            return bool(box)

    # ------------------------------------------------------------------
    @property
    def stats(self) -> dict[str, int]:
        """Router counters (messages, numpy bytes routed)."""
        with self._lock:
            return {"messages": self._messages, "bytes": self._bytes_routed}

    def _check_rank(self, rank: int, name: str) -> None:
        if not (0 <= rank < self.nranks):
            raise ValueError(f"{name}={rank} out of range for world size {self.nranks}")
