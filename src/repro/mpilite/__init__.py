"""mpilite: a real, runnable MPI-like runtime over in-process threads.

Functional twin of the simulated MPI (:mod:`repro.smpi`): the
distributed spMVM executes on mpilite to verify numerics; the simulator
predicts its timing on the paper's machines.
"""

from repro.mpilite.comm import CollectiveState, Comm, Request
from repro.mpilite.procs import ProcComm, run_spmd_processes
from repro.mpilite.router import ANY_SOURCE, ANY_TAG, Router, WorldAbortedError
from repro.mpilite.world import PerRank, World, open_world, run_spmd

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Comm",
    "Request",
    "CollectiveState",
    "Router",
    "WorldAbortedError",
    "run_spmd",
    "open_world",
    "World",
    "PerRank",
    "ProcComm",
    "run_spmd_processes",
]
