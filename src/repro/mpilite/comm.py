"""The mpilite communicator: an MPI-like API over in-process threads.

This is the *functional* twin of :mod:`repro.smpi`: where the simulated
MPI predicts timing, mpilite actually moves data, so the distributed
spMVM (and the solvers on top of it) can be executed and verified
numerically.  The API mirrors the mpi4py conventions the paper's
ecosystem uses: lowercase methods move Python objects, capitalised
``Send``/``Recv``/``Isend``/``Irecv`` move numpy buffers.

The GIL prevents real compute overlap (the very reason this repository
pairs mpilite with a performance simulator — see DESIGN.md), but the
communication *semantics* are real: blocking receives, nonblocking
requests, wildcard matching, deadlocks and all.  Those semantics are
what the dynamic analyzer in :mod:`repro.check` verifies: a
:class:`~repro.check.CommRecorder` attached via
:func:`repro.mpilite.world.run_spmd` observes every operation through
the hooks in this module (request lifecycle, buffer checksums,
collective generations) without changing behaviour.

Blocking receives take their default timeout from the communicator
(``default_timeout``, routed through the world), so a test world can
shrink the safety net without threading ``timeout=`` through every call.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.mpilite.router import (
    ANY_SOURCE,
    ANY_TAG,
    Router,
    WorldAbortedError,
    observer_wait_slice,
)

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Request",
    "Comm",
    "CollectiveState",
    "WorldAbortedError",
]

_DEFAULT_TIMEOUT = 60.0


@dataclass
class Request:
    """Handle for a nonblocking mpilite operation.

    Carries its provenance (``kind``/``rank``/``peer``/``tag``) so leak
    reports and diagnostics can name the operation; ``_on_done`` is the
    analyzer's completion hook.
    """

    _wait_fn: Callable[[], Any]
    _poll_fn: Callable[[], bool] | None = None
    _done: bool = False
    _value: Any = None
    kind: str = ""
    rank: int = -1
    peer: int = -1
    tag: int = 0
    _on_done: Callable[[], None] | None = None

    def wait(self) -> Any:
        """Complete the operation, returning received data (None for sends).

        Idempotent: a second ``wait()`` returns the same value without
        re-executing the operation.
        """
        if not self._done:
            self._complete(self._wait_fn())
        return self._value

    def test(self) -> bool:
        """Nonblocking completion probe (True once :meth:`wait` would not block).

        When the operation carries a mailbox probe (irecv), a positive
        probe completes the request immediately, so ``test()``-driven
        polling loops make progress — MPI_Test semantics.  Calling
        ``test()`` after ``wait()`` keeps returning True.
        """
        if self._done:
            return True
        if self._poll_fn is not None and self._poll_fn():
            self._complete(self._wait_fn())
            return True
        return False

    def _complete(self, value: Any) -> None:
        self._value = value
        self._done = True
        if self._on_done is not None:
            self._on_done()


class CollectiveState:
    """Shared rendezvous state for collectives of one world.

    Generation counting makes every collective reusable and detects
    mismatched participation (a rank calling ``barrier`` while another
    calls ``allreduce`` trips the assertion on the slot type).

    ``timeout`` bounds how long a rank waits for the others (routed
    through the world so tests can shrink it); when an ``observer`` (the
    :mod:`repro.check` recorder) is attached, the wait runs in short
    slices so a wait-for cycle is diagnosed immediately instead of
    after the timeout expires.
    """

    def __init__(self, nranks: int, timeout: float | None = None) -> None:
        self.nranks = nranks
        self.timeout = _DEFAULT_TIMEOUT if timeout is None else timeout
        self.observer: Any = None
        self._lock = threading.Condition()
        self._slots: dict[int, dict[int, Any]] = {}
        self._results: dict[int, Any] = {}
        self._generation = 0
        self._arrived = 0
        self._abort_reason: str | None = None

    def abort(self, reason: str) -> None:
        """Wake every rank blocked in a collective with an error.

        The point-to-point twin lives on :meth:`Router.abort`; both are
        driven together by a world/worker-pool teardown so a shutdown
        mid-collective raises :class:`WorldAbortedError` immediately
        instead of racing the collective timeout.
        """
        with self._lock:
            self._abort_reason = str(reason)
            self._lock.notify_all()

    def _check_abort(self, rank: int, gen: int) -> None:
        if self._abort_reason is not None:
            raise WorldAbortedError(
                f"rank {rank}: collective generation {gen} aborted: "
                f"{self._abort_reason}"
            )

    def exchange(self, rank: int, value: Any, combine: Callable[[dict[int, Any]], Any]) -> Any:
        """Deposit *value*; the last arriving rank runs *combine* over all
        deposits; everyone gets the combined result."""
        import time

        with self._lock:
            gen = self._generation
            self._check_abort(rank, gen)
            self._slots.setdefault(gen, {})[rank] = value
            self._arrived += 1
            obs = self.observer
            if obs is not None:
                obs.on_collective_enter(rank, gen)
            if self._arrived == self.nranks:
                self._results[gen] = combine(self._slots.pop(gen))
                self._arrived = 0
                self._generation += 1
                self._lock.notify_all()
            else:
                deadline = time.monotonic() + self.timeout
                backoff = obs.poll_interval if obs is not None else 0.0
                while gen not in self._results:
                    remaining = deadline - time.monotonic()
                    # A notification can land exactly at the deadline: the
                    # last rank deposits the result while we are timing
                    # out, so the predicate is re-checked before failing.
                    if remaining <= 0:
                        if obs is not None:
                            obs.on_collective_exit(rank, gen, completed=False)
                            obs = None
                        raise TimeoutError(
                            f"rank {rank}: collective generation {gen} never "
                            f"completed within {self.timeout} s"
                        )
                    if obs is None:
                        wait_slice = remaining
                    else:
                        # bounded backoff: diagnosable, but near-zero idle CPU
                        wait_slice, backoff = observer_wait_slice(obs, backoff, remaining)
                    self._lock.wait(timeout=wait_slice)
                    self._check_abort(rank, gen)
                    if obs is not None:
                        obs.check_blocked(rank)
            result = self._results[gen]
            if obs is not None:
                obs.on_collective_exit(rank, gen, completed=True)
            # last reader of a generation cleans it up
            self._slots.setdefault(-gen - 1, {})[rank] = True
            if len(self._slots[-gen - 1]) == self.nranks:
                del self._slots[-gen - 1]
                del self._results[gen]
            return result


class Comm:
    """Communicator bound to one rank of an mpilite world.

    ``default_timeout`` is the blocking-receive safety net applied when a
    call site passes no explicit ``timeout=``; worlds created by
    :func:`~repro.mpilite.world.run_spmd` route their ``recv_timeout``
    argument here.  ``recorder`` is the opt-in dynamic analyzer
    (:class:`repro.check.CommRecorder`); when absent, no per-operation
    bookkeeping happens.
    """

    def __init__(
        self,
        rank: int,
        router: Router,
        collectives: CollectiveState,
        default_timeout: float | None = None,
        recorder: Any = None,
    ) -> None:
        self._rank = rank
        self._router = router
        self._coll = collectives
        self._default_timeout = _DEFAULT_TIMEOUT if default_timeout is None else default_timeout
        self._rec = recorder

    @property
    def rank(self) -> int:
        """This rank's id."""
        return self._rank

    @property
    def size(self) -> int:
        """World size."""
        return self._router.nranks

    @property
    def default_timeout(self) -> float:
        """Blocking-receive timeout applied when none is given."""
        return self._default_timeout

    def _timeout(self, timeout: float | None) -> float:
        return self._default_timeout if timeout is None else timeout

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Buffered send of any Python object (numpy arrays are copied)."""
        self._router.put(self._rank, dest, tag, obj)

    def recv(self, source: int, tag: int = 0, timeout: float | None = None) -> Any:
        """Blocking receive of the next message from *source* with *tag*.

        *source*/*tag* may be :data:`ANY_SOURCE`/:data:`ANY_TAG`.  Raises
        :class:`TimeoutError` naming the blocked rank, peer and tag after
        *timeout* seconds (default: the communicator's
        ``default_timeout``).
        """
        return self._router.get(self._rank, source, tag, timeout=self._timeout(timeout))

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking send (buffered: completes immediately)."""
        self._router.put(self._rank, dest, tag, obj)
        req = Request(lambda: None, kind="isend", rank=self._rank, peer=dest, tag=tag)
        req._done = True
        return req

    def irecv(self, source: int, tag: int = 0, timeout: float | None = None) -> Request:
        """Nonblocking receive; :meth:`Request.wait` blocks for the data,
        :meth:`Request.test` probes the mailbox without blocking."""
        req = Request(
            lambda: self._router.get(
                self._rank, source, tag, timeout=self._timeout(timeout)
            ),
            _poll_fn=lambda: self._router.poll(self._rank, source, tag),
            kind="irecv", rank=self._rank, peer=source, tag=tag,
        )
        self._track(req)
        return req

    def Send(self, buf: np.ndarray, dest: int, tag: int = 0) -> None:
        """Buffer-mode send of a numpy array."""
        if not isinstance(buf, np.ndarray):
            raise TypeError("Send expects a numpy array; use send() for objects")
        self._router.put(self._rank, dest, tag, buf)

    def Recv(
        self, buf: np.ndarray, source: int, tag: int = 0, timeout: float | None = None
    ) -> None:
        """Buffer-mode receive into a preallocated numpy array."""
        data = self._router.get(self._rank, source, tag, timeout=self._timeout(timeout))
        if not isinstance(data, np.ndarray):
            raise TypeError(f"expected array message, got {type(data).__name__}")
        if data.shape != buf.shape:
            raise ValueError(f"receive buffer shape {buf.shape} != message shape {data.shape}")
        buf[...] = data

    def Isend(self, buf: np.ndarray, dest: int, tag: int = 0) -> Request:
        """Nonblocking buffer-mode send.

        mpilite sends are buffered (the router copies on ``put``), so the
        payload is captured at posting time and the operation cannot
        block — but MPI semantics still require the request to be
        completed with ``wait()``/``test()``, and the user buffer must
        not be modified before then.  Under the dynamic analyzer the
        buffer is checksummed at post and at completion: a mismatch is
        reported as a buffer hazard (it would be a data race under a
        real, non-buffering MPI), and a request never completed is
        reported as leaked.
        """
        if not isinstance(buf, np.ndarray):
            raise TypeError("Isend expects a numpy array; use isend() for objects")
        self._router.put(self._rank, dest, tag, buf)
        # buffered: the payload already left, so a completion probe always
        # succeeds — but completion still only happens via wait()/test()
        req = Request(
            lambda: None, _poll_fn=lambda: True,
            kind="Isend", rank=self._rank, peer=dest, tag=tag,
        )
        self._track(req, buf=buf)
        return req

    def Irecv(
        self, buf: np.ndarray, source: int, tag: int = 0, timeout: float | None = None
    ) -> Request:
        """Nonblocking buffer-mode receive into a preallocated array.

        ``wait()`` blocks for the payload, verifies the shape, fills
        *buf* and returns it.  Under the dynamic analyzer, user writes to
        *buf* between posting and completion are reported as buffer
        hazards (the library owns the buffer for the duration of the
        request).
        """
        if not isinstance(buf, np.ndarray):
            raise TypeError("Irecv expects a numpy array; use irecv() for objects")
        rec, rank = self._rec, self._rank

        def wait_fn() -> np.ndarray:
            data = self._router.get(rank, source, tag, timeout=self._timeout(timeout))
            if not isinstance(data, np.ndarray):
                raise TypeError(f"expected array message, got {type(data).__name__}")
            if data.shape != buf.shape:
                raise ValueError(
                    f"receive buffer shape {buf.shape} != message shape {data.shape}"
                )
            if rec is not None:
                # the in-flight checksum is verified *before* the library
                # writes the payload, so a user write is distinguishable
                # from the delivery itself
                rec.verify_buffer(req, buf)
            buf[...] = data
            return buf

        req = Request(
            wait_fn,
            _poll_fn=lambda: self._router.poll(rank, source, tag),
            kind="Irecv", rank=rank, peer=source, tag=tag,
        )
        self._track(req, buf=buf)
        return req

    def _track(self, req: Request, buf: np.ndarray | None = None) -> None:
        """Register *req* with the analyzer (leaks, buffer checksums)."""
        if self._rec is not None:
            self._rec.on_request_open(req, buf=buf)

    def waitall(self, requests: Sequence[Request]) -> list[Any]:
        """Complete a set of requests, returning their values in order."""
        return [r.wait() for r in requests]

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        """Synchronise all ranks."""
        self._coll.exchange(self._rank, None, lambda slots: None)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast *obj* from *root* to everyone (returned on all ranks)."""
        return self._coll.exchange(
            self._rank, obj if self._rank == root else None, lambda slots: slots[root]
        )

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any] | None = None) -> Any:
        """Reduce over all ranks (default: sum) with the result everywhere.

        numpy arrays reduce elementwise; scalars reduce to a scalar.
        """
        import functools

        op = op or (lambda a, b: a + b)

        def combine(slots: dict[int, Any]) -> Any:
            ordered = [slots[r] for r in sorted(slots)]
            return functools.reduce(op, ordered)

        return self._coll.exchange(self._rank, value, combine)

    def allgather(self, value: Any) -> list[Any]:
        """Gather one value per rank, delivered to everyone in rank order."""
        return self._coll.exchange(
            self._rank, value, lambda slots: [slots[r] for r in sorted(slots)]
        )

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        """Gather to *root* (others get None)."""
        out = self.allgather(value)
        return out if self._rank == root else None

    def scatter(self, values: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter a sequence from *root*, one element per rank."""
        spread = self.bcast(list(values) if self._rank == root and values is not None else None, root)
        if spread is None or len(spread) != self.size:
            raise ValueError("scatter requires a length-size sequence on root")
        return spread[self._rank]

    def alltoallv(self, chunks: dict[int, np.ndarray], tag: int = 0) -> dict[int, np.ndarray]:
        """Exchange per-peer arrays: send ``chunks[q]`` to q, receive from
        every rank that targeted us.

        Every rank must call this with a (possibly empty) dict; the set of
        senders is established with an allgather of target lists, then the
        payloads move point-to-point.
        """
        targets = sorted(chunks)
        all_targets = self.allgather(targets)
        senders = [r for r, t in enumerate(all_targets) if self._rank in t]
        for q in targets:
            self.Send(chunks[q], q, tag)
        out: dict[int, np.ndarray] = {}
        for s in senders:
            out[s] = self._router.get(self._rank, s, tag, timeout=self._default_timeout)
        return out
