"""The mpilite communicator: an MPI-like API over in-process threads.

This is the *functional* twin of :mod:`repro.smpi`: where the simulated
MPI predicts timing, mpilite actually moves data, so the distributed
spMVM (and the solvers on top of it) can be executed and verified
numerically.  The API mirrors the mpi4py conventions the paper's
ecosystem uses: lowercase methods move Python objects, capitalised
``Send``/``Recv`` move numpy buffers.

The GIL prevents real compute overlap (the very reason this repository
pairs mpilite with a performance simulator — see DESIGN.md), but the
communication *semantics* are real: blocking receives, nonblocking
requests, deadlocks and all.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.mpilite.router import Router

__all__ = ["Request", "Comm", "CollectiveState"]

_BARRIER_TAG = -1
_DEFAULT_TIMEOUT = 60.0


@dataclass
class Request:
    """Handle for a nonblocking mpilite operation."""

    _wait_fn: Callable[[], Any]
    _poll_fn: Callable[[], bool] | None = None
    _done: bool = False
    _value: Any = None

    def wait(self) -> Any:
        """Complete the operation, returning received data (None for sends)."""
        if not self._done:
            self._value = self._wait_fn()
            self._done = True
        return self._value

    def test(self) -> bool:
        """Nonblocking completion probe (True once :meth:`wait` would not block).

        When the operation carries a mailbox probe (irecv), a positive
        probe completes the request immediately, so ``test()``-driven
        polling loops make progress — MPI_Test semantics.
        """
        if self._done:
            return True
        if self._poll_fn is not None and self._poll_fn():
            self._value = self._wait_fn()
            self._done = True
            return True
        return False


class CollectiveState:
    """Shared rendezvous state for collectives of one world.

    Generation counting makes every collective reusable and detects
    mismatched participation (a rank calling ``barrier`` while another
    calls ``allreduce`` trips the assertion on the slot type).
    """

    def __init__(self, nranks: int) -> None:
        self.nranks = nranks
        self._lock = threading.Condition()
        self._slots: dict[int, dict[int, Any]] = {}
        self._results: dict[int, Any] = {}
        self._generation = 0
        self._arrived = 0

    def exchange(self, rank: int, value: Any, combine: Callable[[dict[int, Any]], Any]) -> Any:
        """Deposit *value*; the last arriving rank runs *combine* over all
        deposits; everyone gets the combined result."""
        with self._lock:
            gen = self._generation
            self._slots.setdefault(gen, {})[rank] = value
            self._arrived += 1
            if self._arrived == self.nranks:
                self._results[gen] = combine(self._slots.pop(gen))
                self._arrived = 0
                self._generation += 1
                self._lock.notify_all()
            else:
                while gen not in self._results:
                    timed_out = not self._lock.wait(timeout=_DEFAULT_TIMEOUT)
                    # A notification can land exactly at the deadline: the
                    # last rank deposits the result while we are timing out,
                    # so re-check the predicate before declaring failure.
                    if timed_out and gen not in self._results:
                        raise TimeoutError(
                            f"rank {rank}: collective generation {gen} never completed"
                        )
            result = self._results[gen]
            # last reader of a generation cleans it up
            self._slots.setdefault(-gen - 1, {})[rank] = True
            if len(self._slots[-gen - 1]) == self.nranks:
                del self._slots[-gen - 1]
                del self._results[gen]
            return result


class Comm:
    """Communicator bound to one rank of an mpilite world."""

    def __init__(self, rank: int, router: Router, collectives: CollectiveState) -> None:
        self._rank = rank
        self._router = router
        self._coll = collectives

    @property
    def rank(self) -> int:
        """This rank's id."""
        return self._rank

    @property
    def size(self) -> int:
        """World size."""
        return self._router.nranks

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Buffered send of any Python object (numpy arrays are copied)."""
        self._router.put(self._rank, dest, tag, obj)

    def recv(self, source: int, tag: int = 0, timeout: float = _DEFAULT_TIMEOUT) -> Any:
        """Blocking receive of the next message from *source* with *tag*."""
        return self._router.get(self._rank, source, tag, timeout=timeout)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking send (buffered: completes immediately)."""
        self._router.put(self._rank, dest, tag, obj)
        req = Request(lambda: None)
        req._done = True
        return req

    def irecv(self, source: int, tag: int = 0, timeout: float = _DEFAULT_TIMEOUT) -> Request:
        """Nonblocking receive; :meth:`Request.wait` blocks for the data,
        :meth:`Request.test` probes the mailbox without blocking."""
        return Request(
            lambda: self._router.get(self._rank, source, tag, timeout=timeout),
            _poll_fn=lambda: self._router.poll(self._rank, source, tag),
        )

    def Send(self, buf: np.ndarray, dest: int, tag: int = 0) -> None:
        """Buffer-mode send of a numpy array."""
        if not isinstance(buf, np.ndarray):
            raise TypeError("Send expects a numpy array; use send() for objects")
        self._router.put(self._rank, dest, tag, buf)

    def Recv(self, buf: np.ndarray, source: int, tag: int = 0, timeout: float = _DEFAULT_TIMEOUT) -> None:
        """Buffer-mode receive into a preallocated numpy array."""
        data = self._router.get(self._rank, source, tag, timeout=timeout)
        if not isinstance(data, np.ndarray):
            raise TypeError(f"expected array message, got {type(data).__name__}")
        if data.shape != buf.shape:
            raise ValueError(f"receive buffer shape {buf.shape} != message shape {data.shape}")
        buf[...] = data

    def waitall(self, requests: Sequence[Request]) -> list[Any]:
        """Complete a set of requests, returning their values in order."""
        return [r.wait() for r in requests]

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        """Synchronise all ranks."""
        self._coll.exchange(self._rank, None, lambda slots: None)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Broadcast *obj* from *root* to everyone (returned on all ranks)."""
        return self._coll.exchange(
            self._rank, obj if self._rank == root else None, lambda slots: slots[root]
        )

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any] = None) -> Any:
        """Reduce over all ranks (default: sum) with the result everywhere.

        numpy arrays reduce elementwise; scalars reduce to a scalar.
        """
        import functools

        op = op or (lambda a, b: a + b)

        def combine(slots: dict[int, Any]) -> Any:
            ordered = [slots[r] for r in sorted(slots)]
            return functools.reduce(op, ordered)

        return self._coll.exchange(self._rank, value, combine)

    def allgather(self, value: Any) -> list[Any]:
        """Gather one value per rank, delivered to everyone in rank order."""
        return self._coll.exchange(
            self._rank, value, lambda slots: [slots[r] for r in sorted(slots)]
        )

    def gather(self, value: Any, root: int = 0) -> list[Any] | None:
        """Gather to *root* (others get None)."""
        out = self.allgather(value)
        return out if self._rank == root else None

    def scatter(self, values: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter a sequence from *root*, one element per rank."""
        spread = self.bcast(list(values) if self._rank == root and values is not None else None, root)
        if spread is None or len(spread) != self.size:
            raise ValueError("scatter requires a length-size sequence on root")
        return spread[self._rank]

    def alltoallv(self, chunks: dict[int, np.ndarray], tag: int = 0) -> dict[int, np.ndarray]:
        """Exchange per-peer arrays: send ``chunks[q]`` to q, receive from
        every rank that targeted us.

        Every rank must call this with a (possibly empty) dict; the set of
        senders is established with an allgather of target lists, then the
        payloads move point-to-point.
        """
        targets = sorted(chunks)
        all_targets = self.allgather(targets)
        senders = [r for r, t in enumerate(all_targets) if self._rank in t]
        for q in targets:
            self.Send(chunks[q], q, tag)
        out: dict[int, np.ndarray] = {}
        for s in senders:
            out[s] = self._router.get(self._rank, s, tag, timeout=_DEFAULT_TIMEOUT)
        return out
