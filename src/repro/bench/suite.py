"""The spMVM benchmark suite: kernel, batched, and distributed timings.

Three groups mirror the layers of the implementation:

* ``kernel`` — the raw kernels on one process: ``spmv`` with and
  without a preallocated output (the allocation-free hot path), the
  block kernel ``spmm`` for k ∈ {1, 4, 16}, and every *non-default*
  kernel registered in :mod:`repro.sparse.registry` (correctness-gated
  against the CSR reference before it is timed);
* ``distributed`` — the mpilite engine end to end: ``distributed_spmv``
  and the batched ``distributed_spmm``, including halo exchange (one
  message per peer per sweep, k columns per message when batched), plus
  the node-aware lowering (``repro.comm``: intra-node gather, one
  aggregated message per node pair, intra-node scatter) with its plan
  accounting attached as derived figures;
* ``program`` — the sweep-IR guard: the fixed dispatch cost of
  :func:`repro.program.execute_sweep` must stay under 5% of the
  single-rank spmv hot path (asserted, not just reported);
* ``serve`` — the build-once/serve-many contract (:mod:`repro.serve`):
  cold build-and-serve vs. warm requests against a persistent
  :class:`~repro.serve.SolverService` (:func:`serve_guard` asserts the
  warm path is at least :data:`SERVE_WARM_SPEEDUP_MIN` times faster),
  plus coalesced-batch throughput with every response checked
  bit-for-bit against the same service's independent per-request
  answers;
* ``solver`` — the communication-avoiding CG contract
  (:func:`repro.solvers.sstep_cg` vs classic
  :func:`~repro.solvers.conjugate_gradient`, SPMD on a Poisson system):
  both must converge to the same solution, and the s-step variant must
  post strictly fewer communication operations per iteration — counted
  deterministically from the operators' ``counters``, not timed
  (:func:`solver_guard`); an interleaved wall-time ratio additionally
  guards the latency-dominated small-matrix regime against the fused
  path being slower where it should win;
* ``check`` — the opt-in observability tax: one task-mode
  ``distributed_spmv`` with a :class:`~repro.check.ThreadSanitizer`
  attached vs. the same sweep uninstrumented, interleaved
  (:func:`sanitizer_guard` asserts the instrumented run stays under
  :data:`SANITIZER_OVERHEAD_MAX`, and the clean run must report zero
  races before its timing counts);
* ``workload`` (full mode only) — the cluster-scale reference studies
  (:mod:`repro.experiments.workload`): FCFS vs EASY utilisation on the
  fat tree, random vs node-aware placement on the loaded torus, and the
  solo-vs-co-running link-contention probe, each enforced by
  :func:`workload_guard`.

Every result carries a ``gflops`` derived figure (2 flops per nonzero
per right-hand side, from the minimum sample), and every block result a
``speedup_vs_spmv`` per-column speedup next to the prediction of the
block code-balance model ``6/k + 12/Nnzr + kappa/2``
(``model_speedup``, :mod:`repro.model`) — the batching win shows up
directly in ``BENCH_spmvm.json``.

Block speedups are measured with an *interleaved* protocol
(:func:`_paired_speedup`): spmv and spmm samples alternate in time, so
a machine-wide slowdown mid-suite moves both sides of the ratio
instead of faking a regression.  :func:`kernel_guard` then asserts the
spmm-k1 speedup never drops below 1.0 and spmm-k4/k16 stay strictly
above it — the regression this suite exists to catch, enforced on every
CI bench-smoke run (skipped below :data:`KERNEL_GUARD_MIN_ROWS` rows,
where the kernels are all dispatch overhead and the ratio is noise).
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench.harness import BenchResult, TimingStats, time_callable
from repro.core.spmvm import distributed_spmm, distributed_spmv
from repro.matrices import random_sparse
from repro.model.code_balance import block_speedup
from repro.sparse import available_kernels, build_operator, get_kernel, spmm, spmv
from repro.sparse.csr import CSRMatrix

__all__ = [
    "BLOCK_WIDTHS",
    "KERNEL_GUARD_MIN_ROWS",
    "SANITIZER_OVERHEAD_MAX",
    "SERVE_WARM_SPEEDUP_MIN",
    "SOLVER_GUARD_MIN_ROWS",
    "SOLVER_SPEED_RATIO_MAX",
    "kernel_guard",
    "sanitizer_guard",
    "serve_guard",
    "solver_guard",
    "workload_guard",
    "spmvm_suite",
]

#: Block widths exercised by the batched benchmarks.
BLOCK_WIDTHS = (1, 4, 16)

#: Smallest matrix on which :func:`kernel_guard` enforces block speedups.
KERNEL_GUARD_MIN_ROWS = 2_000

#: Minimum cold-build-and-serve / warm-request latency ratio
#: (:func:`serve_guard`).  The whole point of the persistent service is
#: amortising the one-time bookkeeping; if a warm request is not at
#: least this much cheaper than a cold build-and-serve, the service
#: stopped paying for itself.
SERVE_WARM_SPEEDUP_MIN = 5.0

#: Smallest matrix on which :func:`serve_guard` enforces the ratio.  On
#: sub-guard matrices the one-time bookkeeping is so cheap that thread
#: spin-up dominates the cold side and the ratio sits at the bound by
#: noise alone — the same reasoning as :data:`KERNEL_GUARD_MIN_ROWS`.
SERVE_GUARD_MIN_ROWS = 2_000

#: Maximum instrumented/uninstrumented wall-time ratio of a task-mode
#: ``distributed_spmv`` sweep with a thread sanitizer attached
#: (:func:`sanitizer_guard`).  The sanitizer is the always-affordable
#: debugging tool; if attaching it costs more than 20% the
#: instrumentation stopped being something you can leave on in tests.
#: Enforced only at :data:`SANITIZER_GUARD_MIN_ROWS` and above: on tiny
#: matrices the sweep is sub-millisecond and thread spin-up jitter can
#: push even a zero-cost hook past any fixed bound — the same no-flake
#: policy as :data:`KERNEL_GUARD_MIN_ROWS`/:data:`SERVE_GUARD_MIN_ROWS`.
SANITIZER_OVERHEAD_MAX = 1.20
SANITIZER_GUARD_MIN_ROWS = 2_000

#: Maximum s-step/classic CG wall-time ratio on the latency-dominated
#: small-matrix configuration (:func:`solver_guard`).  The margin is
#: generous — in-process mpilite has no wire latency, so most of the
#: fused-collective win cannot show up here; the ratio only guards
#: against the restructured solver being outright slower.  The message
#: economics are guarded separately on *counted* communication, which is
#: deterministic.
SOLVER_SPEED_RATIO_MAX = 1.25

#: Smallest system on which :func:`solver_guard` enforces the wall-time
#: ratio (same no-flake policy as :data:`KERNEL_GUARD_MIN_ROWS`; the
#: counted-communication assertions are enforced at every size).
SOLVER_GUARD_MIN_ROWS = 2_000


def _gflops(nnz: int, k: int, seconds: float) -> float:
    return 2.0 * nnz * k / seconds / 1e9


def _paired_speedup(
    ref_fn, test_fn, k: int, *, warmup: int, rounds: int, trials: int = 3
) -> tuple[float, TimingStats, TimingStats]:
    """Per-column speedup of *test_fn* (k columns) over *ref_fn* (one).

    Samples alternate ref/test within each round, so both sides of the
    ratio see the same machine state — a throttling event or a noisy
    neighbour shifts numerator and denominator together instead of
    producing a phantom slowdown.  The ratio of per-side minima is taken
    per trial and the best of up to *trials* trials wins (stopping early
    once comfortably above break-even): a lower-bound estimator for a
    lower-bound guard.

    Returns ``(speedup, ref_stats, test_stats)`` of the best trial.
    """
    best = None
    for _ in range(max(trials, 1)):
        for _ in range(max(warmup, 1)):
            ref_fn()
            test_fn()
        ref_s, test_s = [], []
        for _ in range(rounds):
            t0 = time.perf_counter()
            ref_fn()
            ref_s.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            test_fn()
            test_s.append(time.perf_counter() - t0)
        trial = (
            k * min(ref_s) / min(test_s),
            TimingStats(tuple(ref_s)),
            TimingStats(tuple(test_s)),
        )
        if best is None or trial[0] > best[0]:
            best = trial
        if best[0] >= 1.10:
            break
    return best


def _block_model_derived(A: CSRMatrix, k: int, speedup: float) -> dict:
    """Measured block speedup next to the code-balance prediction."""
    model = block_speedup(A.nnz / A.nrows, k)
    return {
        "speedup_vs_spmv": speedup,
        "model_speedup": model,
        "model_fraction": speedup / model,
    }


def _kernel_benches(
    A: CSRMatrix, rng: np.random.Generator, *, warmup: int, repeat: int
) -> list[BenchResult]:
    base = {"nrows": A.nrows, "nnz": A.nnz}
    x = rng.standard_normal(A.ncols)
    y = np.empty(A.nrows)
    results = []
    for name, fn, params in (
        ("spmv", lambda: spmv(A, x), base),
        ("spmv-out", lambda: spmv(A, x, out=y), {**base, "preallocated": True}),
    ):
        stats = time_callable(fn, warmup=warmup, repeat=repeat)
        results.append(
            BenchResult(
                name=name, group="kernel", warmup=warmup, repeat=repeat,
                seconds=stats, params=params,
                derived={"gflops": _gflops(A.nnz, 1, stats.min)},
            )
        )
    rounds = max(repeat, 7)
    for k in BLOCK_WIDTHS:
        X = rng.standard_normal((A.ncols, k))
        Y = np.empty((A.nrows, k))
        speedup, _ref, stats = _paired_speedup(
            lambda: spmv(A, x),
            lambda: spmm(A, X, out=Y),
            k, warmup=warmup, rounds=rounds,
        )
        results.append(
            BenchResult(
                name=f"spmm-k{k}", group="kernel", warmup=warmup, repeat=rounds,
                seconds=stats, params={**base, "k": k},
                derived={
                    "gflops": _gflops(A.nnz, k, stats.min),
                    "seconds_per_column": stats.min / k,
                    # > 1 once the matrix stream amortises over columns
                    **_block_model_derived(A, k, speedup),
                },
            )
        )
    results += _registry_benches(A, rng, warmup=warmup, rounds=rounds)
    return results


def _check_registered_kernel(spec, A: CSRMatrix, op, X: np.ndarray) -> None:
    """Correctness gate: a registered kernel is never timed unverified.

    ``exact`` kernels must match the CSR reference bit for bit; the rest
    to tight relative tolerance.  A failure raises — a wrong kernel in
    the benchmark table would be worse than a missing one.
    """
    x = X[:, 0]
    pairs = (
        ("spmv", spec.spmv(op, x), spmv(A, x)),
        ("spmm", spec.spmm(op, X), spmm(A, X)),
    )
    for name, got, ref in pairs:
        if spec.exact:
            ok = np.array_equal(got, ref)
        else:
            ok = np.allclose(got, ref, rtol=1e-10, atol=1e-13)
        if not ok:
            raise AssertionError(
                f"registered kernel {spec.key!r} disagrees with the CSR "
                f"reference on {name} (exact={spec.exact}); refusing to "
                f"benchmark an incorrect kernel"
            )


def _registry_benches(
    A: CSRMatrix, rng: np.random.Generator, *, warmup: int, rounds: int
) -> list[BenchResult]:
    """Benchmark every registered non-default kernel against CSR spmv."""
    x = rng.standard_normal(A.ncols)
    results = []
    for key in available_kernels():
        spec = get_kernel(key)
        if spec.key == "csr/reference":
            continue  # the reference is the spmv/spmm-k* rows above
        op = build_operator(spec, A)
        _check_registered_kernel(spec, A, op, rng.standard_normal((A.ncols, 4)))
        base = {
            "nrows": A.nrows, "nnz": A.nnz,
            "format": spec.format, "variant": spec.variant, "exact": spec.exact,
        }
        pad = getattr(op, "pad_factor", None)
        if pad is not None:
            base["pad_factor"] = pad
        y = np.empty(A.nrows)
        speedup, _ref, stats = _paired_speedup(
            lambda: spmv(A, x),
            lambda: spec.spmv(op, x, out=y),
            1, warmup=warmup, rounds=rounds,
        )
        results.append(
            BenchResult(
                name=f"{spec.format}-spmv", group="kernel",
                warmup=warmup, repeat=rounds, seconds=stats, params=base,
                derived={
                    "gflops": _gflops(A.nnz, 1, stats.min),
                    "speedup_vs_spmv": speedup,
                },
            )
        )
        for k in BLOCK_WIDTHS[1:]:
            X = rng.standard_normal((A.ncols, k))
            Y = np.empty((A.nrows, k))
            speedup, _ref, stats = _paired_speedup(
                lambda: spmv(A, x),
                lambda: spec.spmm(op, X, out=Y),
                k, warmup=warmup, rounds=rounds,
            )
            results.append(
                BenchResult(
                    name=f"{spec.format}-spmm-k{k}", group="kernel",
                    warmup=warmup, repeat=rounds, seconds=stats,
                    params={**base, "k": k},
                    derived={
                        "gflops": _gflops(A.nnz, k, stats.min),
                        "seconds_per_column": stats.min / k,
                        **_block_model_derived(A, k, speedup),
                    },
                )
            )
    return results


def kernel_guard(results: list[BenchResult]) -> list[str]:
    """Assert the block-kernel speedups that PR 6 fixed never regress.

    For every ``spmm-k*`` result measured on at least
    :data:`KERNEL_GUARD_MIN_ROWS` rows: k = 1 must reach per-column
    parity with spmv (``>= 1.0`` — the degenerate batch is never a
    regression) and k > 1 must beat it strictly (``> 1.0`` — batching
    must amortise the matrix stream, the inversion the old ``(nnz, k)``
    broadcast kernel caused).  Returns the names it enforced; raises
    :class:`AssertionError` on violation.
    """
    enforced = []
    for r in results:
        if r.group != "kernel" or not r.name.startswith("spmm-k"):
            continue
        if r.params.get("nrows", 0) < KERNEL_GUARD_MIN_ROWS:
            continue
        k = r.params["k"]
        speedup = r.derived["speedup_vs_spmv"]
        if (speedup < 1.0) if k == 1 else (speedup <= 1.0):
            bound = ">= 1.0" if k == 1 else "> 1.0"
            raise AssertionError(
                f"{r.name}: per-column speedup_vs_spmv is {speedup:.3f} "
                f"(guard: {bound}); the block kernel is slower per column "
                f"than k separate spmv calls — the regression the fused "
                f"spmm kernel exists to prevent"
            )
        enforced.append(r.name)
    return enforced


def _distributed_benches(
    A: CSRMatrix,
    rng: np.random.Generator,
    *,
    nranks: int,
    scheme: str,
    warmup: int,
    repeat: int,
) -> list[BenchResult]:
    base = {"nrows": A.nrows, "nnz": A.nnz, "nranks": nranks, "scheme": scheme}
    x = rng.standard_normal(A.ncols)
    results = []
    stats = time_callable(
        lambda: distributed_spmv(A, x, nranks, scheme=scheme),
        warmup=warmup, repeat=repeat,
    )
    results.append(
        BenchResult(
            name="distributed-spmv", group="distributed",
            warmup=warmup, repeat=repeat, seconds=stats, params=base,
            derived={"gflops": _gflops(A.nnz, 1, stats.min)},
        )
    )
    single_min = stats.min
    results += _comm_plan_benches(
        A, rng, nranks=nranks, scheme=scheme, direct_min=single_min,
        warmup=warmup, repeat=repeat,
    )
    for k in BLOCK_WIDTHS:
        X = rng.standard_normal((A.ncols, k))
        stats = time_callable(
            lambda: distributed_spmm(A, X, nranks, scheme=scheme),
            warmup=warmup, repeat=repeat,
        )
        results.append(
            BenchResult(
                name=f"distributed-spmm-k{k}", group="distributed",
                warmup=warmup, repeat=repeat, seconds=stats,
                params={**base, "k": k},
                derived={
                    "gflops": _gflops(A.nnz, k, stats.min),
                    "seconds_per_column": stats.min / k,
                    "speedup_vs_spmv": k * single_min / stats.min,
                },
            )
        )
    return results


def _comm_plan_benches(
    A: CSRMatrix,
    rng: np.random.Generator,
    *,
    nranks: int,
    scheme: str,
    direct_min: float,
    warmup: int,
    repeat: int,
) -> list[BenchResult]:
    """The node-aware lowering of ``distributed_spmv`` (2 ranks per node)."""
    from repro.comm import build_comm_plan, compare_plans
    from repro.core.halo import cached_halo_plan

    ranks_per_node = 2
    x = rng.standard_normal(A.ncols)
    stats = time_callable(
        lambda: distributed_spmv(
            A, x, nranks, scheme=scheme,
            comm_plan="node-aware", ranks_per_node=ranks_per_node,
        ),
        warmup=warmup, repeat=repeat,
    )
    plan = cached_halo_plan(A, nranks, with_matrices=True)
    rank_node = [r // ranks_per_node for r in range(nranks)]
    cmp = compare_plans(
        build_comm_plan(plan, rank_node, "direct"),
        build_comm_plan(plan, rank_node, "node-aware"),
    )
    return [
        BenchResult(
            name="distributed-spmv-nodeaware", group="distributed",
            warmup=warmup, repeat=repeat, seconds=stats,
            params={
                "nrows": A.nrows, "nnz": A.nnz, "nranks": nranks,
                "scheme": scheme, "comm_plan": "node-aware",
                "ranks_per_node": ranks_per_node,
            },
            derived={
                "gflops": _gflops(A.nnz, 1, stats.min),
                # in-process mpilite moves bytes through memcpy, so this
                # measures plan-replay overhead, not network aggregation
                "speedup_vs_direct": direct_min / stats.min,
                "internode_message_ratio": cmp.message_ratio,
                "injected_byte_ratio": cmp.byte_ratio,
                "duplicate_factor": cmp.direct.duplicate_factor,
            },
        )
    ]


def _program_overhead_bench(
    rng: np.random.Generator, *, warmup: int, repeat: int
) -> list[BenchResult]:
    """Guard: sweep-interpreter indirection on the single-rank spmv hot path.

    Every multiply now runs through :func:`repro.program.execute_sweep`,
    which adds a fixed per-sweep dispatch cost (op loop + handler
    lookups).  Differencing two large-matrix timings drowns that cost in
    memory-traffic noise, so it is measured where it is visible — a
    single-rank engine on a tiny matrix, interpreter vs. the same
    arithmetic hand-inlined — and reported relative to a hot-path spmv
    at the quick bench size.  The guard asserts the ratio stays below
    ``GUARD``; a regression here means the interpreter grew a per-op
    cost it must not have.
    """
    from repro.core.halo import cached_halo_plan
    from repro.core.spmvm import DistributedSpMVM
    from repro.mpilite.comm import CollectiveState, Comm
    from repro.mpilite.router import Router
    from repro.sparse.spmv import spmv_add

    GUARD = 0.05
    tiny = random_sparse(64, nnzr=5.0, seed=11, ensure_diagonal=True)
    thalo = cached_halo_plan(tiny, 1, with_matrices=True).ranks[0]
    tengine = DistributedSpMVM(Comm(0, Router(1), CollectiveState(1)), thalo)
    tx = rng.standard_normal(tiny.ncols)

    def inlined():
        # the pre-IR hot path: the same arithmetic with no op loop
        y = spmv(thalo.A_local, tx)
        spmv_add(thalo.A_remote, tengine.halo_view(tengine.sweep_buffers(tx)[0]), out=y)
        return y

    micro_repeat = max(repeat, 200)
    interp = time_callable(
        lambda: tengine.multiply(tx, "no_overlap"), warmup=warmup, repeat=micro_repeat
    )
    inline = time_callable(inlined, warmup=warmup, repeat=micro_repeat)
    indirection = max(0.0, interp.min - inline.min)

    hot = random_sparse(4_000, nnzr=15.0, seed=11, ensure_diagonal=True)
    hhalo = cached_halo_plan(hot, 1, with_matrices=True).ranks[0]
    hengine = DistributedSpMVM(Comm(0, Router(1), CollectiveState(1)), hhalo)
    hx = rng.standard_normal(hot.ncols)
    hot_stats = time_callable(
        lambda: hengine.multiply(hx, "no_overlap"), warmup=max(warmup, 1), repeat=max(repeat, 5)
    )
    ratio = indirection / hot_stats.min
    if ratio >= GUARD:
        raise AssertionError(
            f"sweep-interpreter indirection is {ratio:.1%} of the single-rank "
            f"spmv hot path (guard: < {GUARD:.0%}); the interpreter grew a "
            f"per-op cost the IR refactor promised not to add"
        )
    return [
        BenchResult(
            name="program-overhead", group="program",
            warmup=warmup, repeat=micro_repeat, seconds=interp,
            params={
                "nrows": hot.nrows, "nnz": hot.nnz, "tiny_nrows": tiny.nrows,
                "scheme": "no_overlap", "nranks": 1,
            },
            derived={
                "gflops": _gflops(hot.nnz, 1, hot_stats.min),
                "indirection_seconds": indirection,
                "hot_path_seconds": hot_stats.min,
                "overhead_vs_hot_path": ratio,
                "guard_max": GUARD,
            },
        )
    ]


def _serve_benches(
    A: CSRMatrix,
    rng: np.random.Generator,
    *,
    nranks: int,
    scheme: str,
    warmup: int,
    repeat: int,
) -> list[BenchResult]:
    """The serve group: cold vs. warm latency, coalesced throughput.

    *Cold* builds a fresh model (bypassing every process-wide cache)
    and serves one request through a new service; *warm* reuses one
    persistent service for every request — the ratio is the amortised
    one-time cost the ``repro.serve`` tentpole exists to capture.  The
    coalesced bench first serves 16 right-hand sides as independent
    width-1 requests, then re-serves them as coalesced spmm batches and
    asserts bit-identity between the two before reporting throughput —
    a wrong fast path is worse than no fast path.
    """
    from repro.serve import SolverService, build_model

    base = {"nrows": A.nrows, "nnz": A.nnz, "nranks": nranks, "scheme": scheme}
    x = rng.standard_normal(A.ncols)

    def cold() -> None:
        model = build_model(A, nranks, scheme=scheme, reuse_caches=False)
        with SolverService(model, name="bench-cold") as svc:
            svc.solve(x)

    cold_stats = time_callable(cold, warmup=1, repeat=max(repeat, 3))
    results = [
        BenchResult(
            name="serve-cold", group="serve",
            warmup=1, repeat=max(repeat, 3), seconds=cold_stats, params=base,
            derived={"gflops": _gflops(A.nnz, 1, cold_stats.min)},
        )
    ]

    model = build_model(A, nranks, scheme=scheme)
    n_req = 16
    max_batch = 8
    with SolverService(model, max_batch=max_batch, name="bench-warm") as service:
        warm_repeat = max(repeat, 10)
        warm_stats = time_callable(
            lambda: service.solve(x), warmup=max(warmup, 2), repeat=warm_repeat
        )
        warm_speedup = cold_stats.min / warm_stats.min
        results.append(
            BenchResult(
                name="serve-warm", group="serve",
                warmup=max(warmup, 2), repeat=warm_repeat,
                seconds=warm_stats, params=base,
                derived={
                    "gflops": _gflops(A.nnz, 1, warm_stats.min),
                    "warm_speedup_vs_cold": warm_speedup,
                    "guard_min": SERVE_WARM_SPEEDUP_MIN,
                },
            )
        )

        Xs = rng.standard_normal((n_req, A.ncols))
        refs = [service.solve(Xs[i]) for i in range(n_req)]
        walls, widths = [], []
        for _ in range(max(repeat, 3)):
            before = len(service.stats["batch_widths"])
            t0 = time.perf_counter()
            with service.hold():
                reqs = [service.submit(Xs[i]) for i in range(n_req)]
            ys = [service.gather(r) for r in reqs]
            walls.append(time.perf_counter() - t0)
            widths = service.stats["batch_widths"][before:]
            for i in range(n_req):
                if not np.array_equal(ys[i], refs[i]):
                    raise AssertionError(
                        f"coalesced response {i} is not bit-identical to the "
                        f"independent width-1 request for the same RHS; "
                        f"refusing to report throughput of a wrong fast path"
                    )
        coalesced_stats = TimingStats(tuple(walls))
        results.append(
            BenchResult(
                name="serve-coalesced", group="serve",
                warmup=0, repeat=len(walls), seconds=coalesced_stats,
                params={**base, "requests": n_req, "max_batch": max_batch},
                derived={
                    "gflops": _gflops(A.nnz, n_req, coalesced_stats.min),
                    "throughput_rps": n_req / coalesced_stats.min,
                    "mean_batch_width": (sum(widths) / len(widths)) if widths else 0.0,
                    "speedup_vs_warm": n_req * warm_stats.min / coalesced_stats.min,
                    "bit_identical": 1.0,
                },
            )
        )
    return results


def _sanitizer_benches(
    A: CSRMatrix,
    rng: np.random.Generator,
    *,
    nranks: int,
    scheme: str,
    warmup: int,
    repeat: int,
) -> list[BenchResult]:
    """The check group: thread-sanitizer overhead on a task-mode sweep.

    Interleaved like :func:`_paired_speedup` — plain and instrumented
    sweeps alternate within each round so machine noise moves both
    sides of the ratio — but taking the *lowest* ratio of up to three
    trials (a lower-bound estimator for an upper-bound guard, stopping
    early once comfortably under the bound).  Every instrumented sweep
    runs a fresh :class:`~repro.check.ThreadSanitizer` (thread idents
    are recycled across joins), and a single reported race fails the
    bench outright: a racy sweep's timing is not an overhead figure.
    """
    from repro.check.threads import ThreadSanitizer

    x = rng.standard_normal(A.ncols)
    sanitizers: list[ThreadSanitizer] = []

    def plain() -> None:
        distributed_spmv(A, x, nranks, scheme=scheme)

    def instrumented() -> None:
        san = ThreadSanitizer()
        sanitizers.append(san)
        distributed_spmv(A, x, nranks, scheme=scheme, sanitizer=san)

    rounds = max(repeat, 5)
    best = None
    for _ in range(3):
        for _ in range(max(warmup, 1)):
            plain()
            instrumented()
        plain_s, instr_s = [], []
        for _ in range(rounds):
            t0 = time.perf_counter()
            plain()
            plain_s.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            instrumented()
            instr_s.append(time.perf_counter() - t0)
        trial = (
            min(instr_s) / min(plain_s),
            TimingStats(tuple(plain_s)),
            TimingStats(tuple(instr_s)),
        )
        if best is None or trial[0] < best[0]:
            best = trial
        if best[0] <= 1.05:
            break
    races = [f for san in sanitizers for f in san.findings]
    if races:
        raise AssertionError(
            f"sanitizer-overhead: the clean task-mode sweep reported "
            f"{len(races)} thread-race finding(s) — first: "
            f"{races[0].describe()}; refusing to report overhead of a racy run"
        )
    overhead, plain_stats, instr_stats = best
    return [
        BenchResult(
            name="sanitizer-overhead", group="check",
            warmup=max(warmup, 1), repeat=rounds, seconds=instr_stats,
            params={"nrows": A.nrows, "nnz": A.nnz, "nranks": nranks, "scheme": scheme},
            derived={
                "gflops": _gflops(A.nnz, 1, instr_stats.min),
                "plain_seconds": plain_stats.min,
                "overhead_vs_plain": overhead,
                "events_observed": float(sum(s.events_observed for s in sanitizers)),
                "guard_max": SANITIZER_OVERHEAD_MAX,
            },
        )
    ]


def sanitizer_guard(results: list[BenchResult]) -> list[str]:
    """Assert attaching the thread sanitizer stays affordable.

    The ``sanitizer-overhead`` result's instrumented/plain ratio must
    not exceed :data:`SANITIZER_OVERHEAD_MAX` — the contract that the
    sanitizer remains cheap enough to leave on in every test and CI
    check run.  Enforced only at :data:`SANITIZER_GUARD_MIN_ROWS` rows
    and above (sub-guard sweeps are reported, never gated).  Returns
    the names enforced; raises :class:`AssertionError` on violation.
    """
    enforced = []
    for r in results:
        if r.group != "check" or r.name != "sanitizer-overhead":
            continue
        if r.params.get("nrows", 0) < SANITIZER_GUARD_MIN_ROWS:
            continue
        overhead = r.derived["overhead_vs_plain"]
        if overhead > SANITIZER_OVERHEAD_MAX:
            raise AssertionError(
                f"sanitizer-overhead: instrumented task-mode sweep costs "
                f"{overhead:.3f}x the plain sweep (guard: <= "
                f"{SANITIZER_OVERHEAD_MAX}); the per-event bookkeeping grew "
                f"beyond what an always-on sanitizer may charge"
            )
        enforced.append(r.name)
    return enforced


def _solver_benches(
    rng: np.random.Generator,
    *,
    nranks: int,
    quick: bool,
    warmup: int,
    repeat: int,
) -> list[BenchResult]:
    """The solver group: classic vs communication-avoiding CG, SPMD.

    One Poisson system, two SPMD solves per sample: classic CG (one
    exchange + three collectives per iteration) and :func:`sstep_cg`
    (one 2-sweep pipelined matrix-powers exchange + ONE fused collective
    per outer step of two iterations).  Communication is *counted* on
    the operators' ``counters`` — deterministic, so the economics guard
    can be strict — while wall times interleave classic/s-step samples
    per round so machine noise moves both sides of the ratio.  Both
    solvers must converge and agree on the solution before any figure is
    reported.
    """
    from repro.core.halo import cached_halo_plan
    from repro.core.spmvm import gather_vector, scatter_vector
    from repro.matrices import poisson_2d
    from repro.mpilite.world import PerRank, run_spmd
    from repro.solvers import DistributedOperator, conjugate_gradient, sstep_cg

    grid = 32 if quick else 63
    A = poisson_2d(grid)
    plan = cached_halo_plan(A, nranks, with_matrices=True)
    b = rng.standard_normal(A.nrows)
    tol, max_iter = 1e-8, 3000
    base = {"nrows": A.nrows, "nnz": A.nnz, "nranks": nranks, "grid": grid}

    def solve(kind: str):
        def fn(comm, halo):
            op = DistributedOperator(comm, halo, "task_mode")
            bl = scatter_vector(b, plan.partition, comm.rank)
            if kind == "classic":
                res = conjugate_gradient(op, bl, tol=tol, max_iter=max_iter)
            else:
                res = sstep_cg(op, bl, tol=tol, max_iter=max_iter)
            return res.x, res.iterations, res.converged, dict(op.counters)
        return run_spmd(nranks, fn, PerRank(plan.ranks))

    classic = solve("classic")
    sstep = solve("sstep")
    for name, out in (("classic", classic), ("sstep", sstep)):
        if not all(o[2] for o in out):
            raise AssertionError(
                f"solver-cg-{name} did not converge on the Poisson system; "
                f"refusing to report communication economics of a failed solve"
            )
    x_classic = gather_vector([o[0] for o in classic])
    x_sstep = gather_vector([o[0] for o in sstep])
    if not np.allclose(x_sstep, x_classic, rtol=1e-4, atol=1e-4):
        raise AssertionError(
            "solver-cg-sstep solution disagrees with classic CG beyond the "
            "convergence tolerance; a faster wrong solver is not a result"
        )

    def economics(out) -> dict[str, float]:
        iters = max(out[0][1], 1)
        exchanges = out[0][3]["exchanges"]  # identical on every rank
        reductions = out[0][3]["reductions"]
        messages = sum(o[3]["messages"] for o in out)
        return {
            "iterations": float(out[0][1]),
            "exchanges_per_iteration": exchanges / iters,
            "reductions_per_iteration": reductions / iters,
            "messages_per_iteration": messages / iters,
            "comm_posts_per_iteration": (exchanges + reductions) / iters,
        }

    eco_classic, eco_sstep = economics(classic), economics(sstep)

    rounds = max(repeat, 3)
    best = None
    for _ in range(3):
        for _ in range(max(warmup, 1)):
            solve("classic")
            solve("sstep")
        classic_s, sstep_s = [], []
        for _ in range(rounds):
            t0 = time.perf_counter()
            solve("classic")
            classic_s.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            solve("sstep")
            sstep_s.append(time.perf_counter() - t0)
        trial = (
            min(sstep_s) / min(classic_s),
            TimingStats(tuple(classic_s)),
            TimingStats(tuple(sstep_s)),
        )
        if best is None or trial[0] < best[0]:
            best = trial
        if best[0] <= 1.05:
            break
    ratio, classic_stats, sstep_stats = best
    return [
        BenchResult(
            name="solver-cg-classic", group="solver",
            warmup=max(warmup, 1), repeat=rounds, seconds=classic_stats,
            params=base,
            derived={
                "gflops": _gflops(A.nnz, 1, classic_stats.min / max(eco_classic["iterations"], 1)),
                **eco_classic,
            },
        ),
        BenchResult(
            name="solver-cg-sstep", group="solver",
            warmup=max(warmup, 1), repeat=rounds, seconds=sstep_stats,
            params=base,
            derived={
                "gflops": _gflops(A.nnz, 1, sstep_stats.min / max(eco_sstep["iterations"], 1)),
                **eco_sstep,
                "classic_reductions_per_iteration": eco_classic["reductions_per_iteration"],
                "classic_messages_per_iteration": eco_classic["messages_per_iteration"],
                "classic_comm_posts_per_iteration": eco_classic["comm_posts_per_iteration"],
                "classic_iterations": eco_classic["iterations"],
                "time_ratio_vs_classic": ratio,
                "solutions_match": 1.0,
                "guard_ratio_max": SOLVER_SPEED_RATIO_MAX,
            },
        ),
    ]


def solver_guard(results: list[BenchResult]) -> list[str]:
    """Assert the communication-avoiding CG actually avoids communication.

    On the ``solver-cg-sstep`` result: strictly fewer collective
    reductions per iteration than classic CG, no more point-to-point
    halo messages per iteration, strictly fewer total communication
    posts per iteration, and the solutions-match marker present (the
    bench raises before producing a result otherwise).  These are
    counted quantities — deterministic, so violations are real.  The
    interleaved wall-time ratio must additionally stay under
    :data:`SOLVER_SPEED_RATIO_MAX` at :data:`SOLVER_GUARD_MIN_ROWS` rows
    and above.  Returns the names enforced; raises
    :class:`AssertionError` on violation.
    """
    enforced = []
    for r in results:
        if r.group != "solver" or r.name != "solver-cg-sstep":
            continue
        d = r.derived
        if d.get("solutions_match") != 1.0:
            raise AssertionError(
                "solver-cg-sstep: missing the solutions-match marker; the "
                "s-step path was benchmarked without being verified"
            )
        if d["reductions_per_iteration"] >= d["classic_reductions_per_iteration"]:
            raise AssertionError(
                f"solver-cg-sstep: {d['reductions_per_iteration']:.3f} "
                f"reductions/iteration is not strictly below classic CG's "
                f"{d['classic_reductions_per_iteration']:.3f}; the fused "
                f"collective stopped fusing"
            )
        if d["messages_per_iteration"] > d["classic_messages_per_iteration"] + 1e-9:
            raise AssertionError(
                f"solver-cg-sstep: {d['messages_per_iteration']:.3f} halo "
                f"messages/iteration exceeds classic CG's "
                f"{d['classic_messages_per_iteration']:.3f}; the matrix-powers "
                f"chain grew extra exchanges"
            )
        if d["comm_posts_per_iteration"] >= d["classic_comm_posts_per_iteration"]:
            raise AssertionError(
                f"solver-cg-sstep: {d['comm_posts_per_iteration']:.3f} "
                f"communication posts/iteration is not strictly below classic "
                f"CG's {d['classic_comm_posts_per_iteration']:.3f} — the "
                f"communication-avoiding variant stopped avoiding communication"
            )
        if r.params.get("nrows", 0) >= SOLVER_GUARD_MIN_ROWS:
            ratio = d["time_ratio_vs_classic"]
            if ratio > SOLVER_SPEED_RATIO_MAX:
                raise AssertionError(
                    f"solver-cg-sstep: wall time is {ratio:.3f}x classic CG "
                    f"(guard: <= {SOLVER_SPEED_RATIO_MAX}) on the "
                    f"latency-dominated configuration; the pipelined path "
                    f"must never lose outright"
                )
        enforced.append(r.name)
    return enforced


def _workload_benches() -> list[BenchResult]:
    """The workload group: reference-trace policy studies + contention.

    Unlike the other groups these time a *simulation*, so the wall
    seconds are informational (one sample per study); the quantities
    under guard are simulated outcomes and fully deterministic.  Three
    results: the scheduler comparison on the fat tree (where runtimes
    are policy-independent, so utilisation differences are pure
    packing), the placement comparison on the loaded torus, and the
    solo-vs-co-running link-contention probe — the same reference
    configurations as ``repro workload --smoke``
    (:mod:`repro.experiments.workload`).
    """
    from repro.experiments.workload import (
        placement_cluster,
        run_contention_probe,
        scheduling_cluster,
    )
    from repro.workload import compare_policies, reference_trace

    trace = reference_trace()
    base = {"jobs": len(trace), "nodes": 16, "trace": "reference"}

    t0 = time.perf_counter()
    sched = compare_policies(
        trace, scheduling_cluster, schedulers=("fcfs", "easy"), placements=("first-fit",)
    )
    t_sched = time.perf_counter() - t0
    fcfs = sched[("fcfs", "first-fit")]
    easy = sched[("easy", "first-fit")]
    results = [
        BenchResult(
            name="workload-scheduling", group="workload",
            warmup=0, repeat=1, seconds=TimingStats((t_sched,)),
            params={**base, "cluster": "westmere-fat-tree"},
            derived={
                "util_fcfs": fcfs.utilisation(),
                "util_easy": easy.utilisation(),
                "makespan_fcfs": fcfs.makespan,
                "makespan_easy": easy.makespan,
                "mean_bsld_fcfs": fcfs.summary()["mean_slowdown"],
                "mean_bsld_easy": easy.summary()["mean_slowdown"],
            },
        )
    ]

    t0 = time.perf_counter()
    placed = compare_policies(
        trace, placement_cluster,
        schedulers=("easy",), placements=("random", "node-aware"), seed=11,
    )
    t_place = time.perf_counter() - t0
    rand = placed[("easy", "random")]
    aware = placed[("easy", "node-aware")]
    results.append(
        BenchResult(
            name="workload-placement", group="workload",
            warmup=0, repeat=1, seconds=TimingStats((t_place,)),
            params={**base, "cluster": "cray-torus-loaded"},
            derived={
                "p99_random": rand.summary()["p99"],
                "p99_node_aware": aware.summary()["p99"],
                "wire_bytes_random": rand.interconnect_bytes(),
                "wire_bytes_node_aware": aware.interconnect_bytes(),
                "hop_sum_random": rand.summary()["hop_sum"],
                "hop_sum_node_aware": aware.summary()["hop_sum"],
            },
        )
    )

    t0 = time.perf_counter()
    alone, shared = run_contention_probe()
    t_cont = time.perf_counter() - t0
    results.append(
        BenchResult(
            name="workload-contention", group="workload",
            warmup=0, repeat=1, seconds=TimingStats((t_cont,)),
            params={"jobs": 2, "nodes": 4, "cluster": "cray-torus-loaded"},
            derived={
                "bw_alone": alone.effective_bandwidth,
                "bw_shared_min": min(r.effective_bandwidth for r in shared),
                "bw_shared_max": max(r.effective_bandwidth for r in shared),
            },
        )
    )
    return results


def workload_guard(results: list[BenchResult]) -> list[str]:
    """Assert the workload subsystem's reference-trace properties.

    EASY backfilling must achieve strictly higher utilisation than FCFS
    on the fat tree (where runtimes are policy-independent); node-aware
    placement must never move more hop-weighted interconnect bytes than
    random and must beat it on p99 response latency on the loaded
    torus; and a job co-running with a communication-heavy twin must
    observe strictly lower effective bandwidth than the same job alone.
    Returns the names enforced; raises :class:`AssertionError` on
    violation.  No-op when the workload group was skipped (quick mode).
    """
    enforced = []
    for r in results:
        if r.group != "workload":
            continue
        if r.name == "workload-scheduling":
            u_f, u_e = r.derived["util_fcfs"], r.derived["util_easy"]
            if u_e <= u_f:
                raise AssertionError(
                    f"workload-scheduling: EASY utilisation {u_e:.4f} does not "
                    f"beat FCFS {u_f:.4f} on the reference trace; backfilling "
                    f"stopped filling the head-of-line blocking window"
                )
            enforced.append(r.name)
        elif r.name == "workload-placement":
            b_r = r.derived["wire_bytes_random"]
            b_a = r.derived["wire_bytes_node_aware"]
            if b_a > b_r:
                raise AssertionError(
                    f"workload-placement: node-aware moved {b_a:.3e} B over the "
                    f"wire vs random's {b_r:.3e} B; compact allocations must "
                    f"never increase hop-weighted inter-node traffic"
                )
            p_r = r.derived["p99_random"]
            p_a = r.derived["p99_node_aware"]
            if p_a >= p_r:
                raise AssertionError(
                    f"workload-placement: node-aware p99 latency {p_a:.3e} s is "
                    f"not below random's {p_r:.3e} s on the loaded torus; the "
                    f"topology knowledge stopped paying for itself"
                )
            enforced.append(r.name)
        elif r.name == "workload-contention":
            solo = r.derived["bw_alone"]
            worst = r.derived["bw_shared_max"]
            if worst >= solo:
                raise AssertionError(
                    f"workload-contention: a co-running job saw "
                    f"{worst:.3e} B/s, not below the solo {solo:.3e} B/s; "
                    f"jobs are no longer sharing the torus link pool"
                )
            enforced.append(r.name)
    return enforced


def serve_guard(results: list[BenchResult]) -> list[str]:
    """Assert the build-once/serve-many contract holds.

    A warm request against the persistent service must be at least
    :data:`SERVE_WARM_SPEEDUP_MIN` times faster than a cold
    build-and-serve, and the coalesced bench must have proven
    bit-identity (it raises before producing a result otherwise, so
    here it is checked as presence of the marker).  Sub-guard matrices
    (:data:`SERVE_GUARD_MIN_ROWS`) are reported but not enforced.
    Returns the names enforced; raises :class:`AssertionError` on
    violation.
    """
    enforced = []
    for r in results:
        if r.group != "serve":
            continue
        if r.params.get("nrows", 0) < SERVE_GUARD_MIN_ROWS:
            continue
        if r.name == "serve-warm":
            speedup = r.derived["warm_speedup_vs_cold"]
            if speedup < SERVE_WARM_SPEEDUP_MIN:
                raise AssertionError(
                    f"serve-warm: warm_speedup_vs_cold is {speedup:.2f} "
                    f"(guard: >= {SERVE_WARM_SPEEDUP_MIN}); a warm request "
                    f"should amortise away the one-time build cost — the "
                    f"service is rebuilding state it was meant to keep"
                )
            enforced.append(r.name)
        elif r.name == "serve-coalesced":
            if r.derived.get("bit_identical") != 1.0:
                raise AssertionError(
                    "serve-coalesced: missing the bit-identity marker; the "
                    "coalesced path was benchmarked without being verified"
                )
            enforced.append(r.name)
    return enforced


def spmvm_suite(
    *,
    quick: bool = False,
    nrows: int | None = None,
    nranks: int | None = None,
    scheme: str = "task_mode",
    seed: int = 7,
    workload: bool | None = None,
) -> list[BenchResult]:
    """Run the full spMVM benchmark suite and return its results.

    ``quick`` shrinks the matrix and the sample counts for CI smoke
    runs; the schema and the result names are identical in both modes.
    ``nrows``/``nranks`` override the mode defaults (used by the tests
    to keep runtimes trivial).  ``workload`` adds the reference-trace
    workload studies (~30 s of simulation, policy-guarded); it defaults
    to ``not quick`` — quick/CI runs get the same assertions from the
    dedicated ``repro workload --smoke`` gate instead.
    """
    if nrows is None:
        nrows = 4_000 if quick else 40_000
    if nranks is None:
        nranks = 2 if quick else 4
    warmup, repeat = (1, 3) if quick else (3, 7)
    rng = np.random.default_rng(seed)
    A = random_sparse(nrows, nnzr=15.0, seed=seed, ensure_diagonal=True)
    results = _kernel_benches(A, rng, warmup=warmup, repeat=repeat)
    results += _distributed_benches(
        A, rng, nranks=nranks, scheme=scheme, warmup=warmup, repeat=repeat
    )
    results += _program_overhead_bench(rng, warmup=warmup, repeat=repeat)
    results += _serve_benches(
        A, rng, nranks=nranks, scheme=scheme, warmup=warmup, repeat=repeat
    )
    results += _sanitizer_benches(
        A, rng, nranks=nranks, scheme=scheme, warmup=warmup, repeat=repeat
    )
    results += _solver_benches(
        rng, nranks=nranks, quick=quick, warmup=warmup, repeat=repeat
    )
    if workload is None:
        workload = not quick
    if workload:
        results += _workload_benches()
    kernel_guard(results)
    serve_guard(results)
    sanitizer_guard(results)
    solver_guard(results)
    workload_guard(results)
    return results
