"""Reproducible micro-benchmarks with a stable JSON output schema.

``python -m repro bench`` runs :func:`spmvm_suite` and writes
``BENCH_spmvm.json`` (schema ``repro-bench/1``); see
:mod:`repro.bench.harness` for the layout.
"""

from repro.bench.harness import (
    BENCH_SCHEMA,
    BenchResult,
    TimingStats,
    time_callable,
    write_results,
)
from repro.bench.suite import (
    BLOCK_WIDTHS,
    SANITIZER_OVERHEAD_MAX,
    SERVE_WARM_SPEEDUP_MIN,
    SOLVER_GUARD_MIN_ROWS,
    SOLVER_SPEED_RATIO_MAX,
    kernel_guard,
    sanitizer_guard,
    serve_guard,
    solver_guard,
    spmvm_suite,
    workload_guard,
)

__all__ = [
    "BENCH_SCHEMA",
    "BenchResult",
    "TimingStats",
    "time_callable",
    "write_results",
    "BLOCK_WIDTHS",
    "SANITIZER_OVERHEAD_MAX",
    "SERVE_WARM_SPEEDUP_MIN",
    "SOLVER_GUARD_MIN_ROWS",
    "SOLVER_SPEED_RATIO_MAX",
    "kernel_guard",
    "sanitizer_guard",
    "serve_guard",
    "solver_guard",
    "spmvm_suite",
    "workload_guard",
]
