"""Timing harness and stable on-disk schema for the benchmark suite.

The harness is deliberately tiny: warm a callable up, time ``repeat``
runs with :func:`time.perf_counter`, and keep summary statistics.  The
JSON layout written by :func:`write_results` is a stable contract
(``repro-bench/1``) so CI jobs and plotting scripts can consume
``BENCH_*.json`` files without chasing code changes:

.. code-block:: json

    {
      "schema": "repro-bench/1",
      "created": "2026-01-01T00:00:00+00:00",
      "python": "3.12.3",
      "numpy": "2.4.6",
      "quick": false,
      "results": [
        {
          "name": "spmm-k4", "group": "kernel",
          "params": {"nrows": 20000, "nnz": 300000, "k": 4},
          "warmup": 3, "repeat": 7,
          "seconds": {"min": 0.001, "mean": 0.001, "median": 0.001, "std": 0.0},
          "derived": {"gflops": 1.2}
        }
      ]
    }

Times are wall-clock seconds; ``derived`` holds benchmark-specific
numbers (GFlop/s, per-column times, speedups) computed from the
*minimum* — the least-noise estimate of the true cost.
"""

from __future__ import annotations

import json
import platform
import statistics
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from repro.util import check_positive_int

__all__ = ["BENCH_SCHEMA", "TimingStats", "BenchResult", "time_callable", "write_results"]

#: Version tag of the JSON layout below.  Bump only on breaking changes.
BENCH_SCHEMA = "repro-bench/1"


@dataclass(frozen=True)
class TimingStats:
    """Summary of one benchmark's timed samples (wall-clock seconds)."""

    samples: tuple[float, ...]

    @property
    def min(self) -> float:
        return min(self.samples)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.samples)

    @property
    def median(self) -> float:
        return statistics.median(self.samples)

    @property
    def std(self) -> float:
        return statistics.pstdev(self.samples) if len(self.samples) > 1 else 0.0

    def to_dict(self) -> dict:
        return {
            "min": self.min,
            "mean": self.mean,
            "median": self.median,
            "std": self.std,
        }


@dataclass(frozen=True)
class BenchResult:
    """One named measurement of the suite."""

    name: str
    group: str  # "kernel" | "distributed" | ...
    warmup: int
    repeat: int
    seconds: TimingStats
    params: dict = field(default_factory=dict)
    derived: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "group": self.group,
            "params": dict(self.params),
            "warmup": self.warmup,
            "repeat": self.repeat,
            "seconds": self.seconds.to_dict(),
            "derived": dict(self.derived),
        }

    def describe(self) -> str:
        """One aligned line for terminal output."""
        extra = " ".join(f"{k}={v:.3g}" for k, v in sorted(self.derived.items()))
        return (
            f"{self.group:>12} | {self.name:<24} | "
            f"{self.seconds.min * 1e3:9.3f} ms min | "
            f"{self.seconds.mean * 1e3:9.3f} ms mean | {extra}"
        )


def time_callable(fn: Callable[[], object], *, warmup: int = 2, repeat: int = 5) -> TimingStats:
    """Time ``fn()``: run it *warmup* times untimed, then *repeat* times timed.

    The warmup runs absorb one-off costs (allocation, caching, JIT-like
    effects such as the halo-plan cache) so the timed samples measure the
    steady state — the quantity the paper's sweeps report.
    """
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    check_positive_int(repeat, "repeat")
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return TimingStats(samples=tuple(samples))


def write_results(
    results: Iterable[BenchResult],
    path: str | Path,
    *,
    quick: bool = False,
) -> dict:
    """Serialise *results* to *path* per the ``repro-bench/1`` schema.

    Returns the payload that was written (handy for tests and callers
    that also want to print it).
    """
    import numpy

    payload = {
        "schema": BENCH_SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "quick": bool(quick),
        "results": [r.to_dict() for r in results],
    }
    out = Path(path)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    return payload
