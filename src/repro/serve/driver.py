"""The ``repro serve`` request-stream driver.

Builds a model once, optionally round-trips it through the
``repro-model/1`` file format, stands up a :class:`SolverService`, and
fires a stream of right-hand-side requests at it from concurrent
submitter threads — the serving analogue of the bench harness's sweep
loops.  Reports build cost, latency percentiles
(:func:`repro.obs.latency_summary`), throughput, coalesced batch
widths, and verifies a sample of responses bit-for-bit against
independent :func:`~repro.core.spmvm.distributed_spmv` runs.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.obs.latency import latency_summary, throughput
from repro.serve.model import BuiltModel, build_model
from repro.serve.service import SolverService
from repro.sparse.csr import CSRMatrix
from repro.sparse.registry import DEFAULT_KERNEL

__all__ = ["StreamReport", "run_request_stream"]


@dataclass
class StreamReport:
    """What one request-stream run measured."""

    matrix_label: str
    nrows: int
    nnz: int
    nranks: int
    scheme: str
    kernel: str
    requests: int
    concurrency: int
    max_batch: int
    build_seconds: float
    wall_seconds: float
    latencies: tuple[float, ...]
    batch_widths: tuple[int, ...]
    verified: int
    verify_exact: bool
    model_path: str | None = None
    extras: dict = field(default_factory=dict)

    def summary(self) -> dict[str, float]:
        """Flat metrics: latency percentiles + throughput + batch shape."""
        out = latency_summary(self.latencies)
        out["throughput_rps"] = throughput(len(self.latencies), self.wall_seconds)
        out["build_seconds"] = self.build_seconds
        out["batches"] = float(len(self.batch_widths))
        if self.batch_widths:
            out["mean_batch_width"] = sum(self.batch_widths) / len(self.batch_widths)
            out["max_batch_width"] = float(max(self.batch_widths))
        return out

    def render(self) -> str:
        """Human-readable report block."""
        s = self.summary()
        ms = 1e3
        lines = [
            f"repro serve: {self.matrix_label} ({self.nrows} rows, "
            f"nnz={self.nnz}) on {self.nranks} ranks",
            f"  scheme / kernel     : {self.scheme} / {self.kernel}",
            f"  one-time build      : {self.build_seconds * ms:8.2f} ms"
            + (f"  (round-tripped via {self.model_path})" if self.model_path else ""),
            f"  requests            : {self.requests} over {self.concurrency} "
            f"submitter(s), max batch {self.max_batch} column(s)",
            f"  coalesced batches   : {len(self.batch_widths)} "
            f"(mean width {s.get('mean_batch_width', 0):.2f}, "
            f"max {int(s.get('max_batch_width', 0))})",
            f"  latency             : p50 {s['p50'] * ms:.3f} ms | "
            f"p90 {s['p90'] * ms:.3f} ms | p99 {s['p99'] * ms:.3f} ms | "
            f"max {s['max'] * ms:.3f} ms",
            f"  throughput          : {s['throughput_rps']:8.1f} requests/s",
        ]
        if self.verified:
            how = "bit-identical to" if self.verify_exact else "matching (tolerance)"
            lines.append(
                f"  verified            : {self.verified}/{self.verified} "
                f"response(s) {how} independent distributed spMVM runs"
            )
        return "\n".join(lines)

    def workload_jobs(self, *, n_nodes: int = 2, seed: int = 0) -> list:
        """The measured request stream as schedulable workload jobs.

        Each coalesced batch the dispatcher actually produced becomes one
        single-sweep ``block_k``-wide job against the served matrix, with
        submits spread over the measured wall time — the bridge that makes
        the service's *observed* traffic one more job source for
        :mod:`repro.workload` (synthetic service traffic without a live
        run is :func:`repro.workload.streams.service_stream`).  Feed the
        result to :func:`repro.workload.run_workload` to study how the
        service's stream coexists with batch solver jobs on one machine.
        """
        from repro.workload.streams import Job, estimate_walltime

        if not self.batch_widths:
            return []
        nnzr = self.nnz / self.nrows
        gap = self.wall_seconds / len(self.batch_widths)
        return [
            Job(
                job_id=i,
                name=f"serve-{self.matrix_label}-b{i}",
                solver="spmvm",
                submit=i * gap,
                n_nodes=n_nodes,
                nrows=self.nrows,
                nnzr=nnzr,
                iterations=1,
                walltime=estimate_walltime(
                    "spmvm", self.nrows, nnzr, 1, n_nodes, overestimate=2.0
                ),
                block_k=width,
                seed=seed,
            )
            for i, width in enumerate(self.batch_widths)
        ]


def run_request_stream(
    A: CSRMatrix,
    nranks: int = 4,
    *,
    scheme: str = "task_mode",
    kernel: str = DEFAULT_KERNEL,
    comm_plan: str = "direct",
    ranks_per_node: int = 1,
    requests: int = 64,
    concurrency: int = 8,
    max_batch: int = 8,
    seed: int = 7,
    verify: int = 4,
    model_path: str | Path | None = None,
    matrix_label: str = "matrix",
) -> StreamReport:
    """Serve *requests* random RHS vectors and measure the stream.

    ``concurrency`` submitter threads each run their share of the
    stream synchronously (submit, then gather), so in-flight pressure
    equals the thread count and the dispatcher's coalescing is
    exercised for real.  ``model_path`` additionally round-trips the
    built model through :meth:`BuiltModel.save`/:meth:`BuiltModel.load`
    before serving — the serialize→deserialize→serve path.  ``verify``
    responses are recomputed with independent per-request
    :func:`~repro.core.spmvm.distributed_spmv` runs and compared
    bit-for-bit (exact kernels) or to tolerance.
    """
    from repro.core.spmvm import distributed_spmv

    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    concurrency = max(1, min(concurrency, requests))
    t0 = time.perf_counter()
    model = build_model(
        A,
        nranks,
        scheme=scheme,
        kernel=kernel,
        comm_plan=comm_plan,
        ranks_per_node=ranks_per_node,
    )
    if model_path is not None:
        saved = model.save(model_path)
        model = BuiltModel.load(saved)
    build_seconds = time.perf_counter() - t0

    rng = np.random.default_rng(seed)
    X = rng.standard_normal((requests, A.ncols))
    results: list[np.ndarray | None] = [None] * requests
    latencies: list[float] = [0.0] * requests
    errors: list[Exception] = []

    with SolverService(model, max_batch=max_batch, name="serve-driver") as service:

        def submitter(indices: range) -> None:
            try:
                for i in indices:
                    t = time.perf_counter()
                    results[i] = service.solve(X[i])
                    latencies[i] = time.perf_counter() - t
            except Exception as exc:  # surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(
                target=submitter,
                args=(range(w, requests, concurrency),),
                name=f"submit-{w}",
            )
            for w in range(concurrency)
        ]
        t1 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.perf_counter() - t1
        if errors:
            raise errors[0]
        stats = service.stats

    verified = 0
    for i in range(min(verify, requests)):
        y_ref = distributed_spmv(
            A, X[i], nranks, scheme=scheme, kernel=model.kernel, comm_plan=comm_plan,
            ranks_per_node=ranks_per_node,
        )
        if model.kernel.exact:
            if not np.array_equal(results[i], y_ref):
                raise AssertionError(
                    f"response {i} is not bit-identical to an independent "
                    f"distributed spMVM (kernel {model.kernel.key})"
                )
        elif not np.allclose(results[i], y_ref, rtol=1e-12, atol=1e-12):
            raise AssertionError(
                f"response {i} does not match an independent distributed "
                f"spMVM (kernel {model.kernel.key})"
            )
        verified += 1

    return StreamReport(
        matrix_label=matrix_label,
        nrows=A.nrows,
        nnz=A.nnz,
        nranks=nranks,
        scheme=scheme,
        kernel=model.kernel.key,
        requests=requests,
        concurrency=concurrency,
        max_batch=max_batch,
        build_seconds=build_seconds,
        wall_seconds=wall,
        latencies=tuple(latencies),
        batch_widths=stats["batch_widths"],
        verified=verified,
        verify_exact=model.kernel.exact,
        model_path=str(model_path) if model_path is not None else None,
    )
