"""BuiltModel: the build-once artifact of the solver service.

"The necessary bookkeeping needs to be done only once" (paper
Sect. 3.1) — a :class:`BuiltModel` is that bookkeeping made a first-
class, serializable object: the partitioned matrix, the halo plan with
its per-rank local/remote sub-matrices, the (optional) node-aware
communication plan, the compiled sweep program, and the resolved kernel
spec with its format-converted operators.  Build it once with
:func:`build_model`, persist it with :meth:`BuiltModel.save`
(``repro-model/1``, a plain ``.npz``: numeric arrays plus one JSON
metadata entry — no pickle), reload it with :meth:`BuiltModel.load`,
and hand it to a :class:`~repro.serve.service.SolverService` to serve
requests against.

:func:`cached_model` memoises built models per process, keyed on matrix
identity *plus* its structure fingerprint — the same staleness guard as
:func:`repro.core.halo.cached_halo_plan`, so a matrix mutated in place
between requests gets a rebuilt model, never a stale one.
"""

from __future__ import annotations

import json
import time
import weakref
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.comm.plan import PLAN_KINDS, CommPlan
from repro.core.halo import HaloPlan, RankHalo, build_halo_plan, cached_halo_plan
from repro.program.build import cached_sweep_program
from repro.program.ir import SweepProgram
from repro.sparse.csr import CSRMatrix
from repro.sparse.partition import RowPartition, partition_matrix
from repro.sparse.registry import (
    DEFAULT_KERNEL,
    KernelSpec,
    available_kernels,
    build_operator,
    get_kernel,
)
from repro.util import check_in

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.spmvm import DistributedSpMVM
    from repro.mpilite.comm import Comm

__all__ = ["MODEL_SCHEMA", "BuiltModel", "build_model", "cached_model", "load_model"]

#: Version tag of the on-disk layout.  Bump only on breaking changes.
MODEL_SCHEMA = "repro-model/1"


@dataclass
class BuiltModel:
    """Everything a solver service needs, built exactly once.

    ``fingerprint`` is the matrix's structure fingerprint at build time;
    serving and (de)serialization verify it so a model can never be
    applied to a matrix whose sparsity silently changed underneath it.
    ``build_seconds`` records what the build cost — the amortised
    quantity every warm request saves.
    """

    matrix: CSRMatrix
    plan: HaloPlan
    kernel: KernelSpec
    scheme: str
    strategy: str
    comm_plan_kind: str
    ranks_per_node: int
    comm_plan: CommPlan | None
    program: SweepProgram
    fingerprint: tuple
    build_seconds: float = 0.0

    @property
    def nranks(self) -> int:
        """Ranks of the worker pool this model was built for."""
        return self.plan.nranks

    def engine(self, comm: "Comm", *, sanitizer=None) -> "DistributedSpMVM":
        """The per-rank engine of ``comm.rank``, on this model's state.

        Construction is cheap by design: the halo plan, sub-matrices,
        comm plan, program and converted kernel operators already exist;
        the engine only allocates its per-rank sweep buffers.
        ``sanitizer`` attaches a thread sanitizer to the engine's sweeps
        (:mod:`repro.check.threads`); ``None`` costs nothing.
        """
        from repro.core.spmvm import DistributedSpMVM

        return DistributedSpMVM(
            comm,
            self.plan.ranks[comm.rank],
            comm_plan=self.comm_plan,
            kernel=self.kernel,
            sanitizer=sanitizer,
        )

    def describe(self) -> str:
        """One line: shape, ranks, scheme, lowering, kernel."""
        return (
            f"BuiltModel({self.matrix.nrows} rows, nnz={self.matrix.nnz}, "
            f"{self.nranks} ranks, scheme={self.scheme}, "
            f"comm_plan={self.comm_plan_kind}, kernel={self.kernel.key}, "
            f"built in {self.build_seconds * 1e3:.1f} ms)"
        )

    # ------------------------------------------------------------------
    # serialization (repro-model/1)
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Write the built model to *path* (``.npz``, schema
        ``repro-model/1``) and return the path written.

        Stores every array the build produced — matrix, partition, and
        per-rank halo bookkeeping *including* the split local/remote
        sub-matrices — so :meth:`load` restores a served model without
        redoing any bookkeeping.  Pickle-free: numeric arrays plus one
        JSON string.
        """
        arrays: dict[str, np.ndarray] = {
            "matrix.row_ptr": self.matrix.row_ptr,
            "matrix.col_idx": self.matrix.col_idx,
            "matrix.val": self.matrix.val,
            "partition.offsets": self.plan.partition.offsets,
        }
        rank_meta = []
        for rh in self.plan.ranks:
            p = rh.rank
            arrays[f"rank{p}.recv_from"] = np.asarray(rh.recv_from, dtype=np.int64).reshape(-1, 2)
            arrays[f"rank{p}.send_to"] = np.asarray(rh.send_to, dtype=np.int64).reshape(-1, 2)
            arrays[f"rank{p}.halo_columns"] = (
                rh.halo_columns if rh.halo_columns is not None else np.zeros(0, dtype=np.int64)
            )
            for q, idx in rh.send_indices.items():
                arrays[f"rank{p}.send_idx.{q}"] = idx
            for part, sub in (("local", rh.A_local), ("remote", rh.A_remote)):
                arrays[f"rank{p}.{part}.row_ptr"] = sub.row_ptr
                arrays[f"rank{p}.{part}.col_idx"] = sub.col_idx
                arrays[f"rank{p}.{part}.val"] = sub.val
            rank_meta.append(
                {
                    "rank": p,
                    "row_lo": rh.row_lo,
                    "row_hi": rh.row_hi,
                    "nnz_local": rh.nnz_local,
                    "nnz_remote": rh.nnz_remote,
                    "send_dsts": sorted(rh.send_indices),
                    "local_ncols": rh.A_local.ncols,
                    "remote_ncols": rh.A_remote.ncols,
                }
            )
        meta = {
            "schema": MODEL_SCHEMA,
            "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "scheme": self.scheme,
            "strategy": self.strategy,
            "kernel": self.kernel.key,
            "comm_plan": self.comm_plan_kind,
            "ranks_per_node": self.ranks_per_node,
            "nranks": self.nranks,
            "ncols": self.matrix.ncols,
            "fingerprint": list(self.fingerprint),
            "program_signature": list(self.program.signature()),
            "ranks": rank_meta,
        }
        out = Path(path)
        with open(out, "wb") as fh:
            np.savez(fh, meta=np.array(json.dumps(meta)), **arrays)
        return out

    @classmethod
    def load(cls, path: str | Path) -> "BuiltModel":
        """Reload a model written by :meth:`save`, verifying integrity.

        Three guards, each with a descriptive error: the schema tag, the
        matrix structure fingerprint (recomputed and compared against
        the stored one — truncated or corrupted files fail here, not in
        a kernel), and the kernel key (which must be registered in *this*
        process; runtime-registered kernels must be re-registered before
        loading models built on them).
        """
        t0 = time.perf_counter()
        path = Path(path)
        with np.load(path) as data:
            meta = json.loads(str(data["meta"][()]))
            if meta.get("schema") != MODEL_SCHEMA:
                raise ValueError(
                    f"{path}: expected schema {MODEL_SCHEMA!r}, "
                    f"got {meta.get('schema')!r}"
                )
            A = CSRMatrix(
                data["matrix.row_ptr"],
                data["matrix.col_idx"],
                data["matrix.val"],
                ncols=int(meta["ncols"]),
                check=False,
            )
            stored_fp = tuple(meta["fingerprint"])
            actual_fp = A.structure_fingerprint()
            if actual_fp != stored_fp:
                raise ValueError(
                    f"{path}: matrix structure fingerprint mismatch "
                    f"(stored {stored_fp}, recomputed {actual_fp}); the "
                    f"file is corrupt or was edited after save"
                )
            try:
                kernel = get_kernel(meta["kernel"])
            except ValueError as exc:
                raise ValueError(
                    f"{path}: model was built with kernel {meta['kernel']!r}, "
                    f"which is not registered in this process (available: "
                    f"{available_kernels()}); register it before loading"
                ) from exc
            partition = RowPartition(data["partition.offsets"])
            ranks = []
            for rm in meta["ranks"]:
                p = int(rm["rank"])
                subs = {}
                for part in ("local", "remote"):
                    subs[part] = CSRMatrix(
                        data[f"rank{p}.{part}.row_ptr"],
                        data[f"rank{p}.{part}.col_idx"],
                        data[f"rank{p}.{part}.val"],
                        ncols=int(rm[f"{part}_ncols"]),
                        check=False,
                    )
                ranks.append(
                    RankHalo(
                        rank=p,
                        row_lo=int(rm["row_lo"]),
                        row_hi=int(rm["row_hi"]),
                        nnz_local=int(rm["nnz_local"]),
                        nnz_remote=int(rm["nnz_remote"]),
                        recv_from=[(int(q), int(c)) for q, c in data[f"rank{p}.recv_from"]],
                        send_to=[(int(q), int(c)) for q, c in data[f"rank{p}.send_to"]],
                        halo_columns=data[f"rank{p}.halo_columns"],
                        send_indices={
                            int(q): data[f"rank{p}.send_idx.{q}"] for q in rm["send_dsts"]
                        },
                        A_local=subs["local"],
                        A_remote=subs["remote"],
                    )
                )
        plan = HaloPlan(partition=partition, nrows=A.nrows, nnz=A.nnz, ranks=ranks)
        model = _assemble(
            A,
            plan,
            kernel,
            scheme=str(meta["scheme"]),
            strategy=str(meta["strategy"]),
            comm_plan=str(meta["comm_plan"]),
            ranks_per_node=int(meta["ranks_per_node"]),
        )
        stored_sig = tuple(meta["program_signature"])
        if model.program.signature() != stored_sig:
            raise ValueError(
                f"{path}: compiled sweep program signature drifted (stored "
                f"{stored_sig}, built {model.program.signature()}); the "
                f"model predates an IR vocabulary change — rebuild it"
            )
        model.build_seconds = time.perf_counter() - t0
        return model


def _assemble(
    A: CSRMatrix,
    plan: HaloPlan,
    kernel: KernelSpec,
    *,
    scheme: str,
    strategy: str,
    comm_plan: str,
    ranks_per_node: int,
) -> BuiltModel:
    """Shared tail of build/load: comm plan, program, operators, model."""
    from repro.core.spmvm import SCHEMES, lower_comm_plan

    check_in(scheme, SCHEMES, "scheme")
    cplan = lower_comm_plan(plan, plan.nranks, comm_plan, ranks_per_node)
    program = cached_sweep_program(
        scheme, comm_plan="plan" if cplan is not None else "classic"
    )
    # pay format conversion now, not on first request
    for rh in plan.ranks:
        build_operator(kernel, rh.A_local)
        build_operator(kernel, rh.A_remote)
    return BuiltModel(
        matrix=A,
        plan=plan,
        kernel=kernel,
        scheme=scheme,
        strategy=strategy,
        comm_plan_kind=comm_plan,
        ranks_per_node=ranks_per_node,
        comm_plan=cplan,
        program=program,
        fingerprint=A.structure_fingerprint(),
    )


def build_model(
    A: CSRMatrix,
    nranks: int,
    *,
    scheme: str = "task_mode",
    kernel: str | KernelSpec = DEFAULT_KERNEL,
    comm_plan: str = "direct",
    ranks_per_node: int = 1,
    strategy: str = "nnz",
    reuse_caches: bool = True,
) -> BuiltModel:
    """Do all one-time bookkeeping for serving ``A`` on *nranks* ranks.

    Partition, halo plan (with sub-matrices), optional node-aware comm
    plan, compiled sweep program, and kernel-format conversion — the
    full cold-start cost, paid here and never again.  ``reuse_caches``
    lets the build share the process-wide halo-plan cache (the default);
    benchmarks pass ``False`` to measure a genuinely cold build.
    """
    check_in(comm_plan, PLAN_KINDS, "comm_plan")
    t0 = time.perf_counter()
    kspec = get_kernel(kernel)
    if reuse_caches:
        plan = cached_halo_plan(A, nranks, strategy=strategy, with_matrices=True)
    else:
        plan = build_halo_plan(
            A, partition_matrix(A, nranks, strategy=strategy), with_matrices=True
        )
    model = _assemble(
        A,
        plan,
        kspec,
        scheme=scheme,
        strategy=strategy,
        comm_plan=comm_plan,
        ranks_per_node=ranks_per_node,
    )
    model.build_seconds = time.perf_counter() - t0
    return model


def load_model(path: str | Path) -> BuiltModel:
    """Module-level alias of :meth:`BuiltModel.load`."""
    return BuiltModel.load(path)


# ----------------------------------------------------------------------
# model cache: one BuiltModel per (matrix, serving configuration),
# fingerprint-guarded exactly like repro.core.halo's plan cache
# ----------------------------------------------------------------------
_MODEL_CACHE: dict[tuple, tuple[weakref.ref, tuple, BuiltModel]] = {}
_MODEL_CACHE_MAX = 8


def cached_model(
    A: CSRMatrix,
    nranks: int,
    *,
    scheme: str = "task_mode",
    kernel: str | KernelSpec = DEFAULT_KERNEL,
    comm_plan: str = "direct",
    ranks_per_node: int = 1,
    strategy: str = "nnz",
) -> BuiltModel:
    """Build (or reuse) the model for this serving configuration.

    Keyed on matrix identity + kernel + scheme + lowering; each hit
    re-verifies the matrix's structure fingerprint, so mutating the
    matrix in place rebuilds the model instead of serving a stale one.
    """
    kspec = get_kernel(kernel)
    key = (id(A), int(nranks), scheme, kspec.key, comm_plan, int(ranks_per_node), strategy)
    fingerprint = A.structure_fingerprint()
    hit = _MODEL_CACHE.get(key)
    if hit is not None and hit[0]() is A and hit[1] == fingerprint:
        return hit[2]
    model = build_model(
        A,
        nranks,
        scheme=scheme,
        kernel=kspec,
        comm_plan=comm_plan,
        ranks_per_node=ranks_per_node,
        strategy=strategy,
    )
    dead = [k for k, (ref, _fp, _m) in _MODEL_CACHE.items() if ref() is None]
    for k in dead:
        del _MODEL_CACHE[k]
    if key not in _MODEL_CACHE:
        while len(_MODEL_CACHE) >= _MODEL_CACHE_MAX:
            del _MODEL_CACHE[next(iter(_MODEL_CACHE))]
    _MODEL_CACHE[key] = (weakref.ref(A), fingerprint, model)
    return model
