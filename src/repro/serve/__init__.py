"""repro.serve: build-once, serve-many distributed spMVM.

The paper's observation that the communication bookkeeping "needs to be
done only once" (Sect. 3.1), taken to its production conclusion: a
:class:`BuiltModel` captures *all* one-time work — partition, halo
plan, comm plan, compiled sweep program, kernel-format conversion — as
a serializable artifact (``repro-model/1``), and a
:class:`SolverService` keeps a persistent mpilite worker pool alive
across requests, streaming right-hand sides through an async
``submit``/``poll``/``gather`` API with automatic spmm coalescing of
concurrent requests.  :func:`run_request_stream` is the ``repro serve``
driver.  See DESIGN.md §12.
"""

from repro.serve.driver import StreamReport, run_request_stream
from repro.serve.model import (
    MODEL_SCHEMA,
    BuiltModel,
    build_model,
    cached_model,
    load_model,
)
from repro.serve.service import (
    ServeRequest,
    ServiceClosedError,
    ServiceError,
    SolverService,
)

__all__ = [
    "MODEL_SCHEMA",
    "BuiltModel",
    "build_model",
    "cached_model",
    "load_model",
    "ServeRequest",
    "ServiceError",
    "ServiceClosedError",
    "SolverService",
    "StreamReport",
    "run_request_stream",
]
