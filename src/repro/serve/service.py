"""SolverService: a persistent worker pool serving spMVM requests.

The serve-many half of build-once/serve-many.  One
:class:`SolverService` owns one long-lived mpilite
:class:`~repro.mpilite.world.World` whose per-rank worker threads hold
their :class:`~repro.core.spmvm.DistributedSpMVM` engines — built from
a :class:`~repro.serve.model.BuiltModel` — for the lifetime of the
service.  Requests stream through an async ticket API
(:meth:`~SolverService.submit` / :meth:`~SolverService.poll` /
:meth:`~SolverService.gather`); :meth:`~SolverService.solve` is the
synchronous convenience wrapper.

**Coalescing policy** (DESIGN.md §12): the dispatcher keeps *at most
one batch in flight*.  While a batch is being swept, newly submitted
right-hand sides queue up; when the batch completes, everything queued
(up to ``max_batch`` columns) is concatenated into one spmm sweep —
one halo exchange amortised over the whole batch.  Under load, batches
widen automatically; an idle service degenerates to per-request spmv
with zero added latency.  Because spmm is column-wise bit-identical to
spmv for exact kernels (PR 6's registry contract), coalescing never
changes anyone's answer.

**Lifecycle**: all waiting is condition-variable based — an idle
service burns no CPU.  A worker failure mid-request aborts the world
(:meth:`~repro.mpilite.world.World.abort`), which wakes every peer
blocked in the halo exchange immediately with a
:class:`~repro.mpilite.router.WorldAbortedError` carrying rank/peer/tag
provenance — not after the 60 s collective timeout — and fails the
batch's tickets with a descriptive :class:`ServiceError`.
:meth:`~SolverService.close` drains by default; ``drain=False`` cancels
queued requests (the in-flight batch always completes or fails).
"""

from __future__ import annotations

import contextlib
import threading
import time
from collections import deque
from typing import TYPE_CHECKING

import numpy as np

from repro.mpilite.world import open_world

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.model import BuiltModel

__all__ = ["ServeRequest", "ServiceClosedError", "ServiceError", "SolverService"]


class ServiceError(RuntimeError):
    """A request failed inside the service (worker fault, aborted world)."""


class ServiceClosedError(ServiceError):
    """The service was closed (or had failed) when the request needed it."""


class ServeRequest:
    """Ticket for one submitted right-hand side (or block of them).

    Returned by :meth:`SolverService.submit`; resolved by the worker
    pool.  ``latency`` is submit-to-completion wall time in seconds.
    """

    __slots__ = ("_error", "_event", "_result", "completed_at", "id", "k", "squeeze", "submitted_at")

    def __init__(self, rid: int, k: int, squeeze: bool) -> None:
        self.id = rid
        self.k = k
        self.squeeze = squeeze
        self.submitted_at = time.perf_counter()
        self.completed_at: float | None = None
        self._event = threading.Event()
        self._result: np.ndarray | None = None
        self._error: Exception | None = None

    @property
    def done(self) -> bool:
        """Whether the request has completed (successfully or not)."""
        return self._event.is_set()

    @property
    def latency(self) -> float | None:
        """Submit-to-completion seconds, or ``None`` while pending."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    def _complete(self, result: np.ndarray | None, error: Exception | None) -> None:
        self.completed_at = time.perf_counter()
        self._result = result
        self._error = error
        self._event.set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "pending"
        return f"ServeRequest(id={self.id}, k={self.k}, {state})"


class _Batch:
    """One coalesced spmm sweep: the requests in it and the rank parts."""

    __slots__ = ("entries", "error", "parts", "remaining", "seq", "width")

    def __init__(self, seq: int, entries: list, nranks: int, width: int) -> None:
        self.seq = seq
        self.entries = entries  # [(ServeRequest, column offset)]
        self.parts: list[np.ndarray | None] = [None] * nranks
        self.remaining = nranks
        self.error: Exception | None = None
        self.width = width


class SolverService:
    """A persistent solver pool over one :class:`BuiltModel`.

    Threads: one dispatcher (coalesces pending requests into batches)
    plus one worker per rank (runs the model's sweep program on its
    engine).  All are daemons parked on condition variables when idle.
    """

    def __init__(
        self,
        model: "BuiltModel",
        *,
        max_batch: int = 16,
        recv_timeout: float | None = None,
        recorder=None,
        sanitizer=None,
        name: str = "solver",
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.model = model
        self.max_batch = max_batch
        self.name = name
        self.world = open_world(model.nranks, recv_timeout=recv_timeout, recorder=recorder)
        # opt-in thread sanitizer (repro.check.threads): when attached,
        # the service lock becomes a TrackedCondition (lock hand-off
        # happens-before edges) and shared-state touches are noted via
        # _note(); when absent, _tsan is None and nothing here costs a
        # single extra branch beyond the `is not None` checks
        self._tsan = sanitizer
        self._tsan_domain = f"service:{name}"
        if sanitizer is not None:
            from repro.check.threads import TrackedCondition

            self._lock = TrackedCondition(sanitizer, self._tsan_domain, "service-lock")
        else:
            self._lock = threading.Condition()
        self._pending: deque[tuple[ServeRequest, np.ndarray]] = deque()
        self._inboxes: list[deque] = [deque() for _ in range(model.nranks)]
        self._state = "running"  # running -> closing -> closed | failed
        self._cancel_on_close = False
        self._fail_reason: str | None = None
        self._hold = 0
        self._next_id = 0
        self._seq = 0
        self._batch_widths: list[int] = []
        self._requests_served = 0
        self._columns_served = 0
        self._fault = set()
        self._workers = [
            threading.Thread(
                target=self._worker, args=(r,), name=f"{name}-rank{r}", daemon=True
            )
            for r in range(model.nranks)
        ]
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name=f"{name}-dispatch", daemon=True
        )
        for w in self._workers:
            w.start()
        self._dispatcher.start()

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------
    def submit(self, x: np.ndarray) -> ServeRequest:
        """Enqueue ``y = A @ x`` and return its ticket immediately.

        *x* may be 1-D (one RHS) or 2-D ``(nrows, k)`` (a block of *k*
        right-hand sides; the result keeps the shape).  The data is
        copied, so the caller may reuse its buffer.
        """
        x = np.asarray(x, dtype=np.float64)
        squeeze = x.ndim == 1
        if squeeze:
            data = x.reshape(-1, 1).copy()
        elif x.ndim == 2:
            data = np.ascontiguousarray(x)
            if data is x:
                data = data.copy()
        else:
            raise ValueError(f"x must be 1-D or 2-D, got ndim={x.ndim}")
        if data.shape[0] != self.model.matrix.nrows:
            raise ValueError(
                f"x has {data.shape[0]} rows, model expects {self.model.matrix.nrows}"
            )
        with self._lock:
            if self._state != "running":
                raise ServiceClosedError(self._closed_message_locked("submit"))
            req = ServeRequest(self._next_id, data.shape[1], squeeze)
            self._next_id += 1
            self._pending.append((req, data))
            self._note("pending", "w", "submit")
            self._lock.notify_all()
        return req

    def poll(self, request: ServeRequest) -> bool:
        """Whether *request* has completed (never blocks)."""
        return request.done

    def gather(self, request: ServeRequest, timeout: float | None = None) -> np.ndarray:
        """Block until *request* completes and return its result.

        Raises the request's failure (a :class:`ServiceError`) if the
        service could not serve it, or :class:`TimeoutError` if
        *timeout* seconds pass first.
        """
        if not request._event.wait(timeout):
            raise TimeoutError(
                f"request {request.id} not served within {timeout} s "
                f"(service {self.name!r} is {self.state})"
            )
        if request._error is not None:
            raise request._error
        return request._result

    def solve(self, x: np.ndarray, timeout: float | None = None) -> np.ndarray:
        """Synchronous ``submit`` + ``gather``."""
        return self.gather(self.submit(x), timeout=timeout)

    @contextlib.contextmanager
    def hold(self):
        """Pause dispatch while the block runs (requests still queue).

        Lets callers — the request-stream driver and the coalescing
        tests — stage several submissions and have them provably land
        in coalesced batches instead of racing the dispatcher.
        """
        with self._lock:
            self._hold += 1
        try:
            yield self
        finally:
            with self._lock:
                self._hold -= 1
                self._lock.notify_all()

    @property
    def state(self) -> str:
        """``running``, ``closing``, ``closed`` or ``failed``."""
        # the service lock is a Condition over an RLock, so reading the
        # state while already holding the lock is fine
        with self._lock:
            return self._state

    @property
    def stats(self) -> dict:
        """Service counters: requests, columns, batches, batch widths."""
        with self._lock:
            self._note("counters", "r", "stats")
            widths = tuple(self._batch_widths)
            state = self._state
            requests = self._requests_served
            columns = self._columns_served
        return {
            "state": state,
            "requests": requests,
            "columns": columns,
            "batches": len(widths),
            "batch_widths": widths,
            "max_batch_width": max(widths, default=0),
            "mean_batch_width": (sum(widths) / len(widths)) if widths else 0.0,
        }

    def inject_fault(self, rank: int) -> None:
        """Chaos hook: make *rank*'s worker fail its next batch.

        Exists for the lifecycle tests (kill a worker mid-request and
        assert the service fails fast with provenance, not a timeout).
        """
        with self._lock:
            self._fault.add(rank)

    def close(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Shut the pool down.

        ``drain=True`` serves everything already submitted first;
        ``drain=False`` cancels queued requests with a descriptive
        :class:`ServiceClosedError` (an in-flight batch still completes).
        If the dispatcher cannot finish within *timeout* seconds the
        world is aborted so blocked workers fail fast instead of
        hanging.  Idempotent.
        """
        with self._lock:
            if self._state == "running":
                self._cancel_on_close = not drain
                self._state = "closing"
                self._note("state", "w", "close")
            self._lock.notify_all()
        self._dispatcher.join(timeout)
        if self._dispatcher.is_alive():
            self.world.abort(
                f"service {self.name!r}: close() timed out after {timeout} s "
                f"with a request in flight"
            )
            self._dispatcher.join(5.0)
        for w in self._workers:
            w.join(5.0)
        stuck = [t.name for t in [self._dispatcher, *self._workers] if t.is_alive()]
        if stuck:
            raise ServiceError(f"service {self.name!r}: threads failed to stop: {stuck}")

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, *exc) -> None:
        self.close(drain=exc == (None, None, None))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _note(self, buffer: str, mode: str, op: str) -> None:
        """Record one shared-state access with the attached sanitizer.

        Call sites hold ``self._lock``; the sanitizer then sees every
        access ordered by the lock hand-off edges the TrackedCondition
        publishes, so a clean service run reports zero races — and a
        bypassed lock (the seeded ``thread-race-unlocked-service``
        fixture) shows up as causally concurrent accesses.
        """
        if self._tsan is not None:
            self._tsan.on_access(self._tsan_domain, buffer, mode, op=op)

    def _closed_message_locked(self, verb: str) -> str:
        msg = f"cannot {verb}: service {self.name!r} is {self._state}"
        if self._fail_reason:
            msg += f" ({self._fail_reason})"
        return msg

    def _cancel_pending_locked(self) -> None:
        while self._pending:
            req, _data = self._pending.popleft()
            req._complete(
                None,
                ServiceClosedError(
                    f"service {self.name!r} {self._state} before request "
                    f"{req.id} ({req.k} column(s)) was served"
                ),
            )

    def _dispatch_loop(self) -> None:
        partition = self.model.plan.partition
        nranks = self.model.nranks
        try:
            while True:
                with self._lock:
                    while self._state == "running" and (not self._pending or self._hold):
                        self._lock.wait()
                    if self._state == "failed":
                        return
                    if self._state == "closing" and (self._cancel_on_close or not self._pending):
                        return
                    if self._hold and self._state == "running":
                        continue
                    # take whole requests until the next would overflow
                    # max_batch columns (always take at least one)
                    entries: list[tuple[ServeRequest, int]] = []
                    blocks: list[np.ndarray] = []
                    width = 0
                    while self._pending:
                        req, data = self._pending[0]
                        if entries and width + req.k > self.max_batch:
                            break
                        self._pending.popleft()
                        entries.append((req, width))
                        blocks.append(data)
                        width += req.k
                    self._note("pending", "w", "dispatch")
                    batch = _Batch(self._seq, entries, nranks, width)
                    self._seq += 1
                    X = blocks[0] if len(blocks) == 1 else np.concatenate(blocks, axis=1)
                    for r in range(nranks):
                        lo, hi = partition.bounds(r)
                        self._inboxes[r].append((batch, X[lo:hi]))
                    self._note("inboxes", "w", "dispatch")
                    self._lock.notify_all()
                    # at most one batch in flight: wait for it, so
                    # requests arriving meanwhile coalesce into the next
                    while batch.remaining > 0:
                        self._lock.wait()
                    self._finish_batch_locked(batch)
        finally:
            with self._lock:
                if self._state != "failed":
                    self._state = "closed"
                self._note("state", "w", "dispatch-exit")
                self._cancel_pending_locked()
                self._lock.notify_all()

    def _finish_batch_locked(self, batch: _Batch) -> None:
        if batch.error is not None:
            for req, _off in batch.entries:
                req._complete(None, batch.error)
            return
        self._note("batch-parts", "r", "finish-batch")
        Y = np.concatenate(batch.parts, axis=0)
        for req, off in batch.entries:
            block = Y[:, off : off + req.k]
            result = np.ascontiguousarray(block[:, 0] if req.squeeze else block)
            req._complete(result, None)
        self._batch_widths.append(batch.width)
        self._requests_served += len(batch.entries)
        self._columns_served += batch.width
        self._note("counters", "w", "finish-batch")

    def _worker(self, rank: int) -> None:
        comm = self.world.comms[rank]
        try:
            engine = self.model.engine(comm, sanitizer=self._tsan)
        except Exception as exc:  # fail loudly, never die silently
            self._worker_failed(None, rank, exc)
            return
        scheme = self.model.scheme
        inbox = self._inboxes[rank]
        while True:
            with self._lock:
                while not inbox and self._state not in ("closed", "failed"):
                    self._lock.wait()
                if not inbox:
                    return
                batch, X_local = inbox.popleft()
                self._note("inboxes", "w", f"worker{rank}-take")
                fault = rank in self._fault
            try:
                if fault:
                    raise RuntimeError(f"injected worker fault on rank {rank}")
                Y_local = engine.multiply_block(X_local, scheme)
            except Exception as exc:  # fail the batch, never swallow
                self._worker_failed(batch, rank, exc)
                continue
            with self._lock:
                batch.parts[rank] = Y_local
                batch.remaining -= 1
                self._note("batch-parts", "w", f"worker{rank}-land")
                if batch.remaining == 0:
                    self._lock.notify_all()

    def _worker_failed(self, batch: _Batch | None, rank: int, exc: Exception) -> None:
        with self._lock:
            first = self._state != "failed"
            self._state = "failed"
            self._note("state", "w", f"worker{rank}-failed")
            if first:
                self._fail_reason = f"rank {rank}: {exc!r}"
            if batch is not None:
                if batch.error is None:
                    batch.error = ServiceError(
                        f"service {self.name!r}: rank {rank} failed serving batch "
                        f"{batch.seq} ({batch.width} column(s), scheme "
                        f"{self.model.scheme!r}): {exc!r}"
                    )
                    batch.error.__cause__ = exc
                batch.remaining = 0
            self._lock.notify_all()
        if first:
            # wake every peer blocked in the halo exchange *now* — with
            # rank/peer/tag provenance — instead of letting them ripen
            # into a 60 s collective timeout
            self.world.abort(f"service {self.name!r}: rank {rank} failed mid-request: {exc!r}")
