"""Generator-based discrete-event simulator.

Processes are Python generators that ``yield`` :class:`SimEvent` objects
(typically timeouts or completions of other activities) and are resumed
with the event's value.  The kernel is a plain time-ordered callback
queue — small, deterministic, and fast enough to simulate hundreds of
MPI ranks exchanging thousands of messages.

Example
-------
>>> sim = Simulator()
>>> def hello(sim):
...     yield sim.timeout(1.5)
...     return "done at %.1f" % sim.now
>>> p = sim.spawn(hello(sim))
>>> sim.run()
>>> p.result
'done at 1.5'
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

from repro.frame.events import SimEvent, all_of

__all__ = ["Simulator", "Process"]


class Process:
    """A running simulation process.

    ``done`` fires with the generator's return value when it finishes;
    ``result`` holds that value afterwards.
    """

    __slots__ = ("done", "_gen", "_sim", "name")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "") -> None:
        self._sim = sim
        self._gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.done = SimEvent()

    @property
    def result(self) -> Any:
        """The generator's return value (None until finished)."""
        return self.done.value

    def _step(self, send_value: Any) -> None:
        try:
            target = self._gen.send(send_value)
        except StopIteration as stop:
            self.done.succeed(stop.value)
            return
        if not isinstance(target, SimEvent):
            raise TypeError(
                f"process {self.name!r} yielded {type(target).__name__}; "
                "processes must yield SimEvent objects"
            )
        target.add_callback(self._step)


class Simulator:
    """The event loop: a heap of timestamped callbacks.

    Determinism: callbacks scheduled for the same instant run in
    scheduling order (a monotonically increasing sequence number breaks
    ties), so repeated runs produce identical traces.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._step_count = 0

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run *fn* after *delay* simulated seconds."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, self._seq, fn))

    def timeout(self, delay: float, value: Any = None) -> SimEvent:
        """An event that fires after *delay* seconds."""
        ev = SimEvent()
        self.schedule(delay, lambda: ev.succeed(value))
        return ev

    def event(self) -> SimEvent:
        """A fresh untriggered event."""
        return SimEvent()

    def all_of(self, events: Iterable[SimEvent]) -> SimEvent:
        """Composite event: fires when every input fired."""
        return all_of(events)

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------
    def spawn(self, gen: Generator, name: str = "") -> Process:
        """Start a generator as a process at the current time."""
        proc = Process(self, gen, name)
        # first step happens via the queue so spawn order == run order
        self.schedule(0.0, lambda: proc._step(None))
        return proc

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, until: float | None = None, *, max_steps: int = 50_000_000) -> None:
        """Process events until the queue drains (or *until* is reached).

        ``max_steps`` guards against runaway event loops (a protocol bug
        producing self-rescheduling callbacks).
        """
        while self._queue:
            t, _seq, fn = self._queue[0]
            if until is not None and t > until:
                self.now = until
                return
            heapq.heappop(self._queue)
            self.now = t
            self._step_count += 1
            if self._step_count > max_steps:
                raise RuntimeError(f"simulation exceeded {max_steps} steps — likely a livelock")
            fn()

    @property
    def steps_executed(self) -> int:
        """Number of callbacks processed so far (diagnostics)."""
        return self._step_count
