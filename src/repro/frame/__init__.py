"""Discrete-event simulation kernel: events, processes, shared resources, traces."""

from repro.frame.core import Process, Simulator
from repro.frame.events import SimEvent, all_of, any_of
from repro.frame.resources import Flow, FlowNetwork, ResourceStats
from repro.frame.trace import Interval, TraceEvent, TraceRecorder

__all__ = [
    "Simulator",
    "Process",
    "SimEvent",
    "all_of",
    "any_of",
    "Flow",
    "FlowNetwork",
    "ResourceStats",
    "Interval",
    "TraceEvent",
    "TraceRecorder",
]
