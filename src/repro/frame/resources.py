"""Shared-capacity resources with weighted max-min fair sharing.

Everything that contends in the simulated machine — NUMA memory buses,
NIC injection links, torus link pools, intranode shared-memory pipes —
is a *resource* with a capacity (bytes/s).  A *flow* is one activity
(a compute phase's memory traffic, one message transfer) that demands
capacity on one or more resources simultaneously; its progress rate is
set by weighted max-min fairness (progressive filling) across all
resources it touches:

* memory-bus capacities are *functions of the active weight* (the
  saturation curves of Fig. 3: four threads draw more aggregate
  bandwidth than one),
* a flow's demand on a resource may be a multiple of its nominal size
  (torus messages consume ``bytes × hops`` of link-pool capacity),
* flows can be *paused* — the hook the simulated MPI uses to model
  progress semantics: a rendezvous transfer whose endpoints are outside
  the MPI library moves no bytes.

Implementation notes
--------------------
The engine is built to simulate hundreds of ranks: all per-flow state
lives in growable numpy arrays (a :class:`Flow` is a thin handle onto a
slot), the flow→resource incidence is an append-only edge list, and
rate recomputations are (a) coalesced per simulation instant — every
rank entering ``Waitall`` at the same time triggers *one* recalc — and
(b) fully vectorised, with every bottleneck resource at the current
minimum fair share frozen per filling round, so symmetric populations
converge in a handful of rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable

import numpy as np

from repro.frame.core import Simulator
from repro.frame.events import SimEvent

__all__ = ["Flow", "FlowNetwork", "ResourceStats"]

ResourceKey = Hashable
_EPS_BYTES = 1e-6


@dataclass(frozen=True)
class ResourceStats:
    """Aggregated utilization of one resource over a simulation run.

    ``busy_seconds`` is the total simulated time during which at least
    one unpaused flow was drawing capacity from the resource;
    ``bytes_moved`` is the demand-weighted byte volume that crossed it
    (a 3-hop torus message counts 3x its payload on the link pool);
    ``max_concurrent_flows`` is the contention high-water mark and
    ``flows_started`` counts every flow that ever demanded the resource.
    """

    busy_seconds: float
    bytes_moved: float
    max_concurrent_flows: int
    flows_started: int

    def busy_fraction(self, total_seconds: float) -> float:
        """Fraction of *total_seconds* the resource was busy (0 if idle run)."""
        return self.busy_seconds / total_seconds if total_seconds > 0 else 0.0


class Flow:
    """Handle for one activity moving bytes through a set of resources."""

    __slots__ = ("slot", "size", "done", "label", "_net")

    def __init__(self, net: "FlowNetwork", slot: int, size: float, label: str) -> None:
        self._net = net
        self.slot = slot
        self.size = float(size)
        self.done = SimEvent()
        self.label = label

    @property
    def remaining(self) -> float:
        """Bytes left to move (as of the last engine update)."""
        return float(self._net._remaining[self.slot])

    @property
    def rate(self) -> float:
        """Current progress rate in bytes/s."""
        return float(self._net._rate[self.slot])

    @property
    def paused(self) -> bool:
        """Whether the flow is currently gated."""
        return bool(self._net._paused[self.slot])

    def __repr__(self) -> str:  # pragma: no cover - diagnostics
        return (
            f"Flow({self.label or self.slot}, {self.remaining:.0f}/{self.size:.0f} B, "
            f"rate={self.rate:.3g} B/s{', paused' if self.paused else ''})"
        )


class FlowNetwork:
    """The shared-resource engine.

    Parameters
    ----------
    sim:
        The simulator supplying the clock and event scheduling.
    capacities:
        Mapping of resource key to a capacity function
        ``total_active_weight -> bytes/s``.  Plain links use a constant
        function; memory buses use their saturation curve.
    """

    _INITIAL = 64

    def __init__(
        self, sim: Simulator, capacities: dict[ResourceKey, Callable[[float], float]]
    ) -> None:
        self._sim = sim
        self._res_keys: list[ResourceKey] = []
        self._res_index: dict[ResourceKey, int] = {}
        self._cap_fns: list[Callable[[float], float]] = []
        for key, fn in capacities.items():
            self._res_index[key] = len(self._res_keys)
            self._res_keys.append(key)
            self._cap_fns.append(fn)
        # per-flow slot arrays
        n = self._INITIAL
        self._weight = np.zeros(n)
        self._remaining = np.zeros(n)
        self._rate = np.zeros(n)
        self._alive = np.zeros(n, dtype=bool)
        self._paused = np.zeros(n, dtype=bool)
        self._flows: list[Flow | None] = [None] * n
        self._n_slots = 0
        # append-only incidence (edges of dead flows are filtered lazily)
        cap = 4 * n
        self._e_flow = np.zeros(cap, dtype=np.int64)
        self._e_res = np.zeros(cap, dtype=np.int64)
        self._e_mult = np.zeros(cap)
        self._n_edges = 0
        self._last_update = sim.now
        self._epoch = 0
        self._recalc_pending_at: float | None = None
        # per-resource utilization accounting
        nres = len(self._res_keys)
        self._res_busy = np.zeros(nres)
        self._res_bytes = np.zeros(nres)
        self._res_hwm = np.zeros(nres, dtype=np.int64)
        self._res_flows = np.zeros(nres, dtype=np.int64)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def add_capacity(self, key: ResourceKey, fn: Callable[[float], float]) -> None:
        """Register an additional resource."""
        if key in self._res_index:
            raise ValueError(f"resource {key!r} already registered")
        self._res_index[key] = len(self._res_keys)
        self._res_keys.append(key)
        self._cap_fns.append(fn)
        self._res_busy = np.append(self._res_busy, 0.0)
        self._res_bytes = np.append(self._res_bytes, 0.0)
        self._res_hwm = np.append(self._res_hwm, 0)
        self._res_flows = np.append(self._res_flows, 0)

    def capacity_of(self, key: ResourceKey, weight: float = 1.0) -> float:
        """Capacity of one resource at the given active weight (bytes/s)."""
        return float(self._cap_fns[self._res_index[key]](weight))

    def start_flow(
        self,
        size: float,
        demands: dict[ResourceKey, float],
        *,
        weight: float = 1.0,
        paused: bool = False,
        label: str = "",
    ) -> Flow:
        """Begin a transfer of *size* bytes.

        ``demands`` maps resource keys to demand multipliers (1.0 means
        the flow consumes its own rate on the resource; a torus message
        with 3 hops uses multiplier 3.0 on the link pool).  Returns the
        flow; its ``done`` event fires on completion.
        """
        if size < 0:
            raise ValueError(f"flow size must be >= 0, got {size}")
        if not demands:
            raise ValueError("a flow needs at least one resource demand")
        if weight <= 0:
            raise ValueError(f"flow weight must be positive, got {weight}")
        res_ids = [self._res_index[k] for k in demands]  # KeyError for unknown keys
        for rid in res_ids:
            self._res_flows[rid] += 1
        slot = self._n_slots
        self._ensure_slot_capacity(slot + 1)
        flow = Flow(self, slot, size, label)
        self._flows[slot] = flow
        self._n_slots += 1
        if size <= _EPS_BYTES:
            # degenerate flow: complete via the queue so ordering relative
            # to other same-instant events stays consistent
            self._weight[slot] = weight
            self._sim.schedule(0.0, lambda: flow.done.succeed(flow))
            return flow
        self._settle()
        self._weight[slot] = weight
        self._remaining[slot] = size
        self._rate[slot] = 0.0
        self._alive[slot] = True
        self._paused[slot] = paused
        self._ensure_edge_capacity(self._n_edges + len(res_ids))
        for rid, mult in zip(res_ids, demands.values()):
            e = self._n_edges
            self._e_flow[e] = slot
            self._e_res[e] = rid
            self._e_mult[e] = mult
            self._n_edges += 1
        self._mark_dirty()
        return flow

    def pause(self, flow: Flow) -> None:
        """Stop a flow's progress (models absent MPI progress)."""
        if self._alive[flow.slot] and not self._paused[flow.slot]:
            self._settle()
            self._paused[flow.slot] = True
            self._mark_dirty()

    def resume(self, flow: Flow) -> None:
        """Resume a paused flow."""
        if self._alive[flow.slot] and self._paused[flow.slot]:
            self._settle()
            self._paused[flow.slot] = False
            self._mark_dirty()

    def active_flows(self) -> list[Flow]:
        """Snapshot of currently active flows (diagnostics)."""
        return [f for f in self._flows[: self._n_slots] if f is not None and self._alive[f.slot]]

    def resource_stats(self) -> dict[ResourceKey, ResourceStats]:
        """Per-resource utilization accumulated so far.

        Busy time and byte counts are settled up to the current simulated
        instant before the snapshot is taken.
        """
        self._settle()
        return {
            key: ResourceStats(
                busy_seconds=float(self._res_busy[ri]),
                bytes_moved=float(self._res_bytes[ri]),
                max_concurrent_flows=int(self._res_hwm[ri]),
                flows_started=int(self._res_flows[ri]),
            )
            for key, ri in self._res_index.items()
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _ensure_slot_capacity(self, needed: int) -> None:
        cur = self._weight.size
        if needed <= cur:
            return
        new = max(needed, 2 * cur)
        for name in ("_weight", "_remaining", "_rate"):
            arr = getattr(self, name)
            grown = np.zeros(new)
            grown[:cur] = arr
            setattr(self, name, grown)
        for name in ("_alive", "_paused"):
            arr = getattr(self, name)
            grown = np.zeros(new, dtype=bool)
            grown[:cur] = arr
            setattr(self, name, grown)
        self._flows.extend([None] * (new - len(self._flows)))

    def _ensure_edge_capacity(self, needed: int) -> None:
        cur = self._e_flow.size
        if needed <= cur:
            return
        new = max(needed, 2 * cur)
        for name, dtype in (("_e_flow", np.int64), ("_e_res", np.int64), ("_e_mult", float)):
            arr = getattr(self, name)
            grown = np.zeros(new, dtype=dtype)
            grown[:cur] = arr
            setattr(self, name, grown)

    def _mark_dirty(self) -> None:
        """Coalesce rate recomputation: many flow changes at one instant
        (every rank entering Waitall together) trigger a single recalc."""
        self._epoch += 1  # invalidate any scheduled completion check
        if self._recalc_pending_at == self._sim.now:
            return
        self._recalc_pending_at = self._sim.now

        def do_recalc() -> None:
            self._recalc_pending_at = None
            self._reschedule()

        self._sim.schedule(0.0, do_recalc)

    def _settle(self) -> None:
        """Advance all flows to the current instant; complete finished ones."""
        n = self._n_slots
        dt = self._sim.now - self._last_update
        self._last_update = self._sim.now
        if n == 0:
            return
        if dt > 0:
            moving = self._alive[:n] & ~self._paused[:n]
            ne = self._n_edges
            e_flow = self._e_flow[:ne]
            live = moving[e_flow] & (self._rate[e_flow] > 0)
            if live.any():
                ef = e_flow[live]
                er = self._e_res[:ne][live]
                np.add.at(
                    self._res_bytes, er, self._rate[ef] * self._e_mult[:ne][live] * dt
                )
                busy = np.zeros(len(self._res_keys), dtype=bool)
                busy[er] = True
                self._res_busy[busy] += dt
            self._remaining[:n][moving] -= self._rate[:n][moving] * dt
        finished = np.flatnonzero(self._alive[:n] & (self._remaining[:n] <= _EPS_BYTES))
        if finished.size:
            self._alive[finished] = False
            self._rate[finished] = 0.0
            self._remaining[finished] = 0.0
            for slot in finished:
                flow = self._flows[slot]
                assert flow is not None
                flow.done.succeed(flow)

    def _recompute_rates(self) -> None:
        """Vectorised weighted max-min fair allocation (progressive filling)."""
        n = self._n_slots
        if n == 0:
            return
        self._rate[:n] = 0.0
        runnable = self._alive[:n] & ~self._paused[:n]
        if not runnable.any():
            return
        ne = self._n_edges
        e_flow = self._e_flow[:ne]
        live_edge = runnable[e_flow]
        e_flow = e_flow[live_edge]
        e_res = self._e_res[:ne][live_edge]
        e_mult = self._e_mult[:ne][live_edge]
        if e_flow.size == 0:
            return
        # contention high-water mark: concurrent runnable flows per resource
        conc = np.zeros(len(self._res_keys), dtype=np.int64)
        np.add.at(conc, e_res, 1)
        np.maximum(self._res_hwm, conc, out=self._res_hwm)
        weights = self._weight
        nres = len(self._res_keys)
        weight_on = np.zeros(nres)
        np.add.at(weight_on, e_res, weights[e_flow])
        cap = np.zeros(nres)
        for ri in np.flatnonzero(weight_on > 0):
            cap[ri] = max(0.0, float(self._cap_fns[ri](weight_on[ri])))
        consumed = np.zeros(nres)
        rate = np.full(n, -1.0)
        rate[~runnable] = 0.0
        for _round in range(nres + 1):
            unfrozen_edge = rate[e_flow] < 0
            if not unfrozen_edge.any():
                break
            denom = np.zeros(nres)
            np.add.at(
                denom,
                e_res[unfrozen_edge],
                weights[e_flow[unfrozen_edge]] * e_mult[unfrozen_edge],
            )
            contended = denom > 0
            share = np.full(nres, np.inf)
            share[contended] = (
                np.maximum(0.0, cap[contended] - consumed[contended]) / denom[contended]
            )
            s_min = share.min()
            if not np.isfinite(s_min):  # pragma: no cover - numerical guard
                break
            bottleneck = share <= s_min * (1.0 + 1e-12)
            freeze_edge = unfrozen_edge & bottleneck[e_res]
            freeze_flows = np.unique(e_flow[freeze_edge])
            if freeze_flows.size == 0:  # pragma: no cover - numerical guard
                break
            rate[freeze_flows] = weights[freeze_flows] * s_min
            newly_frozen_edge = unfrozen_edge & np.isin(e_flow, freeze_flows)
            np.add.at(
                consumed,
                e_res[newly_frozen_edge],
                rate[e_flow[newly_frozen_edge]] * e_mult[newly_frozen_edge],
            )
        rate[rate < 0] = 0.0
        self._rate[:n] = rate

    def _reschedule(self) -> None:
        """Recompute rates and schedule the next completion."""
        self._settle()
        self._recompute_rates()
        self._epoch += 1
        epoch = self._epoch
        n = self._n_slots
        moving = self._alive[:n] & ~self._paused[:n] & (self._rate[:n] > 0)
        if not moving.any():
            return
        dts = self._remaining[:n][moving] / self._rate[:n][moving]
        next_dt = float(dts.min())

        def on_completion() -> None:
            if epoch == self._epoch:
                self._reschedule()

        self._sim.schedule(next_dt, on_completion)
