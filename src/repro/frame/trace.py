"""Timeline tracing and ASCII Gantt rendering (the Fig. 4 reproduction).

Scheme implementations record what each simulated actor (thread, rank,
NIC) is doing and when; the recorder turns those intervals into the
schematic timeline views the paper uses to explain the three kernel
versions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Interval", "TraceRecorder"]


@dataclass(frozen=True)
class Interval:
    """One traced activity of one actor."""

    actor: str
    label: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Interval length in seconds."""
        return self.end - self.start


@dataclass
class TraceRecorder:
    """Collects activity intervals during a simulation run."""

    intervals: list[Interval] = field(default_factory=list)
    enabled: bool = True

    def record(self, actor: str, label: str, start: float, end: float) -> None:
        """Add one interval (no-op when disabled)."""
        if not self.enabled:
            return
        if end < start:
            raise ValueError(f"interval ends before it starts ({start} .. {end})")
        self.intervals.append(Interval(actor, label, start, end))

    def actors(self) -> list[str]:
        """Actors in first-appearance order."""
        seen: list[str] = []
        for iv in self.intervals:
            if iv.actor not in seen:
                seen.append(iv.actor)
        return seen

    def by_actor(self, actor: str) -> list[Interval]:
        """All intervals of one actor, sorted by start time."""
        return sorted(
            (iv for iv in self.intervals if iv.actor == actor), key=lambda iv: iv.start
        )

    def total_time(self, actor: str, label_prefix: str = "") -> float:
        """Summed duration of an actor's intervals matching a label prefix."""
        return sum(
            iv.duration
            for iv in self.intervals
            if iv.actor == actor and iv.label.startswith(label_prefix)
        )

    def makespan(self) -> float:
        """End of the last interval (0 when empty)."""
        return max((iv.end for iv in self.intervals), default=0.0)

    def render_gantt(self, *, width: int = 72, title: str | None = None) -> str:
        """ASCII Gantt chart: one row per actor, labels keyed by letter.

        Each distinct label gets a letter; overlapping intervals on one
        actor overwrite left-to-right (later starts win), which matches
        how the schemes nest barriers inside phases.
        """
        if not self.intervals:
            return "(empty trace)"
        t_end = self.makespan()
        t_end = t_end or 1.0
        labels: dict[str, str] = {}
        letters = "CGLNWBIRMX"
        for iv in self.intervals:
            if iv.label not in labels:
                idx = len(labels)
                labels[iv.label] = (
                    letters[idx] if idx < len(letters) else chr(ord("a") + idx - len(letters))
                )
        lines = []
        if title:
            lines.append(title)
        name_w = max(len(a) for a in self.actors())
        for actor in self.actors():
            row = [" "] * width
            for iv in self.by_actor(actor):
                c0 = int(iv.start / t_end * (width - 1))
                c1 = max(c0 + 1, int(round(iv.end / t_end * (width - 1))))
                for c in range(c0, min(c1, width)):
                    row[c] = labels[iv.label]
            lines.append(f"{actor.rjust(name_w)} |{''.join(row)}|")
        lines.append(f"{' ' * name_w} 0{' ' * (width - 10)}{t_end * 1e3:8.3f} ms")
        for label, letter in labels.items():
            lines.append(f"  {letter} = {label}")
        return "\n".join(lines)
