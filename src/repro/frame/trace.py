"""Timeline tracing, structured events, and ASCII Gantt rendering.

Scheme implementations record what each simulated actor (thread, rank,
NIC) is doing and when; the recorder turns those intervals into the
schematic timeline views the paper uses to explain the three kernel
versions (Fig. 4).

Beyond the coarse *intervals* the recorder also collects a structured
*event stream*: point-in-time records (message posted / matched /
wire-started / gated / resumed / completed, compute-phase begin/end,
barrier waits, MPI progress-gate transitions) with free-form ``args``
payloads.  The event stream is what the observability exporters in
:mod:`repro.obs` consume — it is precise enough to reconstruct how many
bytes a rendezvous transfer moved during any compute phase, which turns
the paper's Fig. 4 overlap argument from a picture into a checkable
quantity.
"""

from __future__ import annotations

import string
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["Interval", "TraceEvent", "TraceRecorder"]


@dataclass(frozen=True)
class Interval:
    """One traced activity of one actor."""

    actor: str
    label: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Interval length in seconds."""
        return self.end - self.start


@dataclass(frozen=True)
class TraceEvent:
    """One structured point-in-time event.

    ``category`` groups related events (``"mpi"``, ``"phase"``,
    ``"barrier"``, ``"gate"``); ``args`` carries event-specific payload
    (message ids, byte counts, protocol, ...).
    """

    time: float
    actor: str
    name: str
    category: str = ""
    args: dict[str, Any] = field(default_factory=dict)


# Letter pool for the Gantt legend: the mnemonic paper letters first
# (Compute, Gather, Local, Nonlocal, Waitall, Barrier, ...), then the
# rest of the alphabet and digits.  More labels than pool entries cycle
# through the pool again rather than walking off into punctuation.
_GANTT_PRIMARY = "CGLNWBIRMX"
_GANTT_POOL = _GANTT_PRIMARY + "".join(
    c for c in string.ascii_lowercase + string.ascii_uppercase + string.digits
    if c not in _GANTT_PRIMARY
)


@dataclass
class TraceRecorder:
    """Collects activity intervals and structured events during a run."""

    intervals: list[Interval] = field(default_factory=list)
    events: list[TraceEvent] = field(default_factory=list)
    enabled: bool = True

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(self, actor: str, label: str, start: float, end: float) -> None:
        """Add one interval (no-op when disabled)."""
        if not self.enabled:
            return
        if end < start:
            raise ValueError(f"interval ends before it starts ({start} .. {end})")
        self.intervals.append(Interval(actor, label, start, end))

    def emit(
        self, time: float, actor: str, name: str, category: str = "", **args: Any
    ) -> None:
        """Add one structured event (no-op when disabled)."""
        if not self.enabled:
            return
        self.events.append(TraceEvent(time, actor, name, category, args))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def actors(self) -> list[str]:
        """Actors in first-appearance order (intervals, then events)."""
        seen: list[str] = []
        for iv in self.intervals:
            if iv.actor not in seen:
                seen.append(iv.actor)
        for ev in self.events:
            if ev.actor not in seen:
                seen.append(ev.actor)
        return seen

    def by_actor(self, actor: str) -> list[Interval]:
        """All intervals of one actor, sorted by start time."""
        return sorted(
            (iv for iv in self.intervals if iv.actor == actor), key=lambda iv: iv.start
        )

    def events_named(self, name: str, category: str | None = None) -> list[TraceEvent]:
        """All events with the given name (optionally also category), by time."""
        return sorted(
            (
                ev
                for ev in self.events
                if ev.name == name and (category is None or ev.category == category)
            ),
            key=lambda ev: ev.time,
        )

    def iter_events(self, category: str | None = None) -> Iterator[TraceEvent]:
        """Events in time order, optionally restricted to one category."""
        return iter(
            sorted(
                (ev for ev in self.events if category is None or ev.category == category),
                key=lambda ev: ev.time,
            )
        )

    def phase_windows(self, label: str, actor: str | None = None) -> list[tuple[float, float]]:
        """``(start, end)`` windows of one compute-phase label.

        Prefers the structured ``phase_begin``/``phase_end`` event pairs;
        falls back to recorded intervals with that label when no events
        were emitted (older traces).
        """
        begins = [
            ev
            for ev in self.events_named("phase_begin", "phase")
            if ev.args.get("label") == label and (actor is None or ev.actor == actor)
        ]
        ends = [
            ev
            for ev in self.events_named("phase_end", "phase")
            if ev.args.get("label") == label and (actor is None or ev.actor == actor)
        ]
        if begins and len(begins) == len(ends):
            return [(b.time, e.time) for b, e in zip(begins, ends)]
        return [
            (iv.start, iv.end)
            for iv in sorted(self.intervals, key=lambda iv: iv.start)
            if iv.label == label and (actor is None or iv.actor == actor)
        ]

    def total_time(self, actor: str, label_prefix: str = "") -> float:
        """Summed duration of an actor's intervals matching a label prefix."""
        return sum(
            iv.duration
            for iv in self.intervals
            if iv.actor == actor and iv.label.startswith(label_prefix)
        )

    def makespan(self) -> float:
        """End of the last interval / latest event (0 when empty)."""
        t_iv = max((iv.end for iv in self.intervals), default=0.0)
        t_ev = max((ev.time for ev in self.events), default=0.0)
        return max(t_iv, t_ev)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def render_gantt(self, *, width: int = 72, title: str | None = None) -> str:
        """ASCII Gantt chart: one row per actor, labels keyed by letter.

        Each distinct label gets a letter; overlapping intervals on one
        actor overwrite left-to-right (later starts win), which matches
        how the schemes nest barriers inside phases.  With more distinct
        labels than pool letters the letters repeat (the legend still
        lists every label), instead of indexing past the alphabet.
        """
        if not self.intervals:
            return "(empty trace)"
        t_end = max((iv.end for iv in self.intervals), default=0.0)
        t_end = t_end or 1.0
        labels: dict[str, str] = {}
        for iv in self.intervals:
            if iv.label not in labels:
                labels[iv.label] = _GANTT_POOL[len(labels) % len(_GANTT_POOL)]
        lines = []
        if title:
            lines.append(title)
        actors = [a for a in self.actors() if any(iv.actor == a for iv in self.intervals)]
        name_w = max(len(a) for a in actors)
        for actor in actors:
            row = [" "] * width
            for iv in self.by_actor(actor):
                c0 = int(iv.start / t_end * (width - 1))
                c1 = max(c0 + 1, int(round(iv.end / t_end * (width - 1))))
                for c in range(c0, min(c1, width)):
                    row[c] = labels[iv.label]
            lines.append(f"{actor.rjust(name_w)} |{''.join(row)}|")
        lines.append(f"{' ' * name_w} 0{' ' * (width - 10)}{t_end * 1e3:8.3f} ms")
        for label, letter in labels.items():
            lines.append(f"  {letter} = {label}")
        return "\n".join(lines)
