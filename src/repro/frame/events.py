"""Events and composite conditions for the simulation kernel.

A :class:`SimEvent` is a one-shot occurrence that processes can wait on.
It carries an optional value delivered to all waiters.  :func:`all_of`
builds a composite event that fires when every constituent has fired —
the building block for barriers and ``MPI_Waitall``.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

__all__ = ["SimEvent", "all_of", "any_of"]


class SimEvent:
    """A one-shot event.

    Callbacks registered before the trigger run when :meth:`succeed` is
    called; callbacks registered afterwards run immediately.
    """

    __slots__ = ("_callbacks", "_triggered", "_value")

    def __init__(self) -> None:
        self._callbacks: list[Callable[[Any], None]] = []
        self._triggered = False
        self._value: Any = None

    @property
    def triggered(self) -> bool:
        """Whether the event has fired."""
        return self._triggered

    @property
    def value(self) -> Any:
        """The value the event fired with (None before the trigger)."""
        return self._value

    def succeed(self, value: Any = None) -> "SimEvent":
        """Fire the event, delivering *value* to all waiters.

        Firing twice is an error — events are one-shot by design so that
        protocol bugs surface instead of being silently absorbed.
        """
        if self._triggered:
            raise RuntimeError("SimEvent fired twice")
        self._triggered = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(value)
        return self

    def add_callback(self, cb: Callable[[Any], None]) -> None:
        """Run *cb(value)* when the event fires (immediately if it already has)."""
        if self._triggered:
            cb(self._value)
        else:
            self._callbacks.append(cb)


def all_of(events: Iterable[SimEvent]) -> SimEvent:
    """An event that fires (with the list of values) once all inputs fired."""
    events = list(events)
    combined = SimEvent()
    if not events:
        combined.succeed([])
        return combined
    remaining = [len(events)]

    def on_fire(_value: Any) -> None:
        remaining[0] -= 1
        if remaining[0] == 0:
            combined.succeed([e.value for e in events])

    for e in events:
        e.add_callback(on_fire)
    return combined


def any_of(events: Iterable[SimEvent]) -> SimEvent:
    """An event that fires with the first input's value (others ignored)."""
    events = list(events)
    combined = SimEvent()

    def on_fire(value: Any) -> None:
        if not combined.triggered:
            combined.succeed(value)

    for e in events:
        e.add_callback(on_fire)
    if not events:
        raise ValueError("any_of needs at least one event")
    return combined
