"""Simulation backend: interpreting a sweep program as a simulator process.

:func:`sweep_process` runs one :class:`~repro.program.ir.SweepProgram`
inside the discrete-event simulator: compute ops become memory-bus flows
priced by the rank's :class:`~repro.core.costs.PhaseCosts` (emitting the
phase labels of :data:`~repro.program.ir.SIM_PHASE_LABELS`, so every
:mod:`repro.obs` analysis keeps working unchanged), communication ops go
through the simulated MPI with its progress semantics, and a
``COMM_THREAD`` region becomes a spawned subprocess holding the MPI
progress gate open inside ``Waitall`` — joined, as on the real machine,
at the next ``OMP_BARRIER``.

:func:`multi_sweep_process` is the multi-sweep twin: one
:class:`~repro.program.ir.MultiSweepProgram` whose op stream spans N
chained sweeps, with per-sweep request sets, and (task mode) one
long-lived comm-thread subprocess paced against the main path by
two-party rendezvous at the body's ``OMP_BARRIER`` ops.  Phase labels
stay exactly :data:`~repro.program.ir.SIM_PHASE_LABELS`; the per-sweep
distinction is carried by ``op_cost`` attribution events instead.

When the rank context carries a trace, every executed op additionally
emits one ``op_cost`` event (category ``program``) keyed on the
program's :meth:`~repro.program.ir.SweepProgram.program_id` and the
op's sweep index — the per-op cost breakdown ``repro trace --per-op``
aggregates.

The lowering of the communication ops mirrors the real backend: with a
:class:`~repro.comm.sim.SimExchange` attached to the rank context the
plan's per-channel messages (and relay duties) are replayed; without one
the classic one-message-per-peer exchange is posted straight off the
halo lists.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.frame.events import SimEvent
from repro.program.ir import (
    SIM_PHASE_LABELS,
    MultiSweepProgram,
    SweepOp,
    SweepProgram,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.schemes import RankContext

__all__ = ["sweep_process", "multi_sweep_process"]


class _SimSweep:
    """Per-sweep interpreter state (requests and the open comm thread)."""

    __slots__ = ("recvs", "sends", "comm_finished")

    def __init__(self) -> None:
        self.recvs: list = []
        self.sends: list = []
        self.comm_finished: SimEvent | None = None


def _emit_op_cost(
    ctx: "RankContext", pid: str, op: SweepOp, t0: float
) -> None:
    """One ``op_cost`` attribution event (no-op without a trace)."""
    if ctx.trace is not None:
        ctx.trace.emit(
            ctx.sim.now, f"rank{ctx.rank}", "op_cost", "program",
            op=op.kind, sweep=op.sweep, program=pid,
            seconds=ctx.sim.now - t0,
        )


def sweep_process(
    ctx: "RankContext",
    program: SweepProgram,
    sweep: int,
    *,
    op_log: list[str] | None = None,
) -> Generator:
    """Sub-generator: one sweep of *program* on simulated rank *ctx*.

    *sweep* tags the sweep's messages so drifting ranks cannot mismatch
    successive iterations.  ``op_log`` receives the program's signature
    tokens in issue order — the simulated half of the golden
    cross-backend comparison.
    """
    state = _SimSweep()
    pid = program.program_id()
    yield from _run_ops(ctx, program.ops, state, sweep, op_log, pid,
                        in_comm_thread=False)
    if state.comm_finished is not None:  # defensive: lint rejects such programs
        yield state.comm_finished


def _run_ops(
    ctx: "RankContext",
    ops: tuple[SweepOp, ...],
    state: _SimSweep,
    sweep: int,
    op_log: list[str] | None,
    pid: str,
    *,
    in_comm_thread: bool,
) -> Generator:
    for op in ops:
        if op.kind == "COMM_THREAD":
            if op_log is not None:
                op_log.append("COMM_THREAD{")
                op_log.extend(inner.kind for inner in op.body)
                op_log.append("}")
            _spawn_comm_thread(ctx, op, state, sweep, pid)
            continue
        if op_log is not None:
            op_log.append(op.kind)
        yield from _run_op(ctx, op, state, sweep, pid,
                           in_comm_thread=in_comm_thread)


def _run_op(
    ctx: "RankContext",
    op: SweepOp,
    state: _SimSweep,
    sweep: int,
    pid: str,
    *,
    in_comm_thread: bool,
) -> Generator:
    kind = op.kind
    t0 = ctx.sim.now
    if kind in SIM_PHASE_LABELS:
        yield from ctx.compute(SIM_PHASE_LABELS[kind], _compute_cost(ctx, kind))
    elif kind == "POST_RECVS":
        state.recvs = _post_receives(ctx, sweep)
    elif kind == "POST_SENDS":
        state.sends = _post_sends(ctx, sweep)
    elif kind == "WAITALL":
        yield from ctx.mpi.waitall(ctx.rank, state.recvs + state.sends)
        ctx.record(":comm" if in_comm_thread else "", "MPI_Waitall", t0)
    elif kind == "OMP_BARRIER":
        if state.comm_finished is not None:
            # the barrier joins the open comm-thread region: compute
            # threads wait until the exchange is complete (Fig. 4c)
            yield state.comm_finished
            state.comm_finished = None
        yield from ctx.omp_barrier()
    else:  # pragma: no cover - ir.py validates kinds
        raise ValueError(f"simulation backend cannot execute op {kind!r}")
    _emit_op_cost(ctx, pid, op, t0)


def _compute_cost(ctx: "RankContext", kind: str) -> float:
    costs = ctx.costs
    return {
        "PACK": costs.gather,
        "LOCAL_SPMVM": costs.local_spmv,
        "REMOTE_SPMVM": costs.remote_spmv,
        "FULL_SPMVM": costs.full_spmv,
    }[kind]


def _spawn_comm_thread(
    ctx: "RankContext", op: SweepOp, state: _SimSweep, sweep: int, pid: str
) -> None:
    if state.comm_finished is not None:
        raise RuntimeError("COMM_THREAD spawned while another is still open")
    finished: SimEvent = ctx.sim.event()

    def comm_thread() -> Generator:
        # Fig. 4c: the dedicated thread executes MPI calls only, sitting
        # in Waitall with the progress gate held open while the compute
        # threads run the local spMVM
        yield from _run_ops(ctx, op.body, state, sweep, None, pid,
                            in_comm_thread=True)
        finished.succeed()

    ctx.sim.spawn(comm_thread(), name=f"rank{ctx.rank}-comm")
    state.comm_finished = finished


def _post_receives(ctx: "RankContext", sweep: int) -> list:
    if ctx.comm is not None:
        return ctx.comm.post_receives(ctx, sweep)
    # classic lowering: one message per peer per sweep; a batched sweep
    # carries all block_k columns of the segment in that single message
    return [
        ctx.mpi.irecv(ctx.rank, src, 8 * ctx.block_k * count, sweep)
        for src, count in ctx.halo.recv_from
    ]


def _post_sends(ctx: "RankContext", sweep: int) -> list:
    if ctx.comm is not None:
        return ctx.comm.post_sends(ctx, sweep)
    return [
        ctx.mpi.isend(ctx.rank, dst, 8 * ctx.block_k * count, sweep)
        for dst, count in ctx.halo.send_to
    ]


# ----------------------------------------------------------------------
# multi-sweep replay: per-sweep request sets and one long-lived comm
# thread paced by two-party rendezvous
# ----------------------------------------------------------------------
class _SimRendezvous:
    """Two-party rendezvous between the main path and the comm thread.

    The first arriver parks on a fresh event; the second succeeds it and
    passes straight through.  Resets itself, so one instance serves
    every rendezvous of a region, in order.
    """

    __slots__ = ("sim", "_waiting")

    def __init__(self, sim) -> None:
        self.sim = sim
        self._waiting: SimEvent | None = None

    def wait(self) -> Generator:
        if self._waiting is None:
            ev = self.sim.event()
            self._waiting = ev
            yield ev
        else:
            ev, self._waiting = self._waiting, None
            ev.succeed()


class _SimMultiSweep:
    """Multi-sweep interpreter state: per-sweep requests + region pacing."""

    __slots__ = ("recvs", "sends", "comm_finished", "rdv", "rendezvous_left")

    def __init__(self) -> None:
        self.recvs: dict[int, list] = {}
        self.sends: dict[int, list] = {}
        self.comm_finished: SimEvent | None = None
        self.rdv: _SimRendezvous | None = None
        self.rendezvous_left = 0


def multi_sweep_process(
    ctx: "RankContext",
    program: MultiSweepProgram,
    base: int,
    *,
    op_log: list[str] | None = None,
) -> Generator:
    """Sub-generator: the N chained sweeps of *program* on rank *ctx*.

    *base* is the global sweep number of the program's sweep 0 (pass
    ``iteration * n_sweeps`` when looping programs back to back); sweep
    ``s``'s messages are tagged ``base + s`` so drifting ranks cannot
    mismatch sweeps.  ``op_log`` receives the sweep-tagged signature
    tokens in issue order, matching
    :func:`repro.program.exec.execute_multi_sweep`.
    """
    state = _SimMultiSweep()
    pid = program.program_id()
    for op in program.ops:
        if op.kind == "COMM_THREAD":
            if op_log is not None:
                op_log.append("COMM_THREAD{")
                op_log.extend(f"s{inner.sweep}:{inner.kind}" for inner in op.body)
                op_log.append("}")
            _spawn_multi_comm_thread(ctx, op, state, base, pid)
            continue
        if op_log is not None:
            op_log.append(f"s{op.sweep}:{op.kind}")
        if op.kind == "OMP_BARRIER":
            t0 = ctx.sim.now
            if state.comm_finished is not None and state.rendezvous_left > 0:
                state.rendezvous_left -= 1
                yield from state.rdv.wait()
            elif state.comm_finished is not None:
                # past the last rendezvous: this barrier joins the thread
                yield state.comm_finished
                state.comm_finished = None
            yield from ctx.omp_barrier()
            _emit_op_cost(ctx, pid, op, t0)
            continue
        yield from _run_multi_op(ctx, op, state, base, pid, in_comm_thread=False)
    if state.comm_finished is not None:  # defensive: lint rejects such programs
        yield state.comm_finished


def _run_multi_op(
    ctx: "RankContext",
    op: SweepOp,
    state: _SimMultiSweep,
    base: int,
    pid: str,
    *,
    in_comm_thread: bool,
) -> Generator:
    kind = op.kind
    sweep = base + op.sweep
    t0 = ctx.sim.now
    if kind in SIM_PHASE_LABELS:
        yield from ctx.compute(SIM_PHASE_LABELS[kind], _compute_cost(ctx, kind))
    elif kind == "POST_RECVS":
        state.recvs[op.sweep] = _post_receives(ctx, sweep)
    elif kind == "POST_SENDS":
        state.sends[op.sweep] = _post_sends(ctx, sweep)
    elif kind == "WAITALL":
        reqs = state.recvs.pop(op.sweep, []) + state.sends.pop(op.sweep, [])
        yield from ctx.mpi.waitall(ctx.rank, reqs)
        ctx.record(":comm" if in_comm_thread else "", "MPI_Waitall", t0)
    else:  # pragma: no cover - ir.py validates kinds
        raise ValueError(f"multi-sweep backend cannot execute op {kind!r}")
    _emit_op_cost(ctx, pid, op, t0)


def _spawn_multi_comm_thread(
    ctx: "RankContext",
    op: SweepOp,
    state: _SimMultiSweep,
    base: int,
    pid: str,
) -> None:
    if state.comm_finished is not None:
        raise RuntimeError("COMM_THREAD spawned while another is still open")
    finished: SimEvent = ctx.sim.event()
    state.rdv = _SimRendezvous(ctx.sim)
    state.rendezvous_left = sum(
        1 for inner in op.body if inner.kind == "OMP_BARRIER"
    )

    def comm_thread() -> Generator:
        # one long-lived communication thread spanning every sweep of
        # the region, pacing itself against the compute threads at its
        # OMP_BARRIER rendezvous points
        for inner in op.body:
            if inner.kind == "OMP_BARRIER":
                yield from state.rdv.wait()
            else:
                yield from _run_multi_op(ctx, inner, state, base, pid,
                                         in_comm_thread=True)
        finished.succeed()

    ctx.sim.spawn(comm_thread(), name=f"rank{ctx.rank}-comm")
    state.comm_finished = finished
