"""Simulation backend: interpreting a sweep program as a simulator process.

:func:`sweep_process` runs one :class:`~repro.program.ir.SweepProgram`
inside the discrete-event simulator: compute ops become memory-bus flows
priced by the rank's :class:`~repro.core.costs.PhaseCosts` (emitting the
phase labels of :data:`~repro.program.ir.SIM_PHASE_LABELS`, so every
:mod:`repro.obs` analysis keeps working unchanged), communication ops go
through the simulated MPI with its progress semantics, and a
``COMM_THREAD`` region becomes a spawned subprocess holding the MPI
progress gate open inside ``Waitall`` — joined, as on the real machine,
at the next ``OMP_BARRIER``.

The lowering of the communication ops mirrors the real backend: with a
:class:`~repro.comm.sim.SimExchange` attached to the rank context the
plan's per-channel messages (and relay duties) are replayed; without one
the classic one-message-per-peer exchange is posted straight off the
halo lists.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.frame.events import SimEvent
from repro.program.ir import SIM_PHASE_LABELS, SweepOp, SweepProgram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.schemes import RankContext

__all__ = ["sweep_process"]


class _SimSweep:
    """Per-sweep interpreter state (requests and the open comm thread)."""

    __slots__ = ("recvs", "sends", "comm_finished")

    def __init__(self) -> None:
        self.recvs: list = []
        self.sends: list = []
        self.comm_finished: SimEvent | None = None


def sweep_process(
    ctx: "RankContext",
    program: SweepProgram,
    sweep: int,
    *,
    op_log: list[str] | None = None,
) -> Generator:
    """Sub-generator: one sweep of *program* on simulated rank *ctx*.

    *sweep* tags the sweep's messages so drifting ranks cannot mismatch
    successive iterations.  ``op_log`` receives the program's signature
    tokens in issue order — the simulated half of the golden
    cross-backend comparison.
    """
    state = _SimSweep()
    yield from _run_ops(ctx, program.ops, state, sweep, op_log, in_comm_thread=False)
    if state.comm_finished is not None:  # defensive: lint rejects such programs
        yield state.comm_finished


def _run_ops(
    ctx: "RankContext",
    ops: tuple[SweepOp, ...],
    state: _SimSweep,
    sweep: int,
    op_log: list[str] | None,
    *,
    in_comm_thread: bool,
) -> Generator:
    for op in ops:
        if op.kind == "COMM_THREAD":
            if op_log is not None:
                op_log.append("COMM_THREAD{")
                op_log.extend(inner.kind for inner in op.body)
                op_log.append("}")
            _spawn_comm_thread(ctx, op, state, sweep)
            continue
        if op_log is not None:
            op_log.append(op.kind)
        yield from _run_op(ctx, op, state, sweep, in_comm_thread=in_comm_thread)


def _run_op(
    ctx: "RankContext",
    op: SweepOp,
    state: _SimSweep,
    sweep: int,
    *,
    in_comm_thread: bool,
) -> Generator:
    kind = op.kind
    if kind in SIM_PHASE_LABELS:
        yield from ctx.compute(SIM_PHASE_LABELS[kind], _compute_cost(ctx, kind))
    elif kind == "POST_RECVS":
        state.recvs = _post_receives(ctx, sweep)
    elif kind == "POST_SENDS":
        state.sends = _post_sends(ctx, sweep)
    elif kind == "WAITALL":
        t0 = ctx.sim.now
        yield from ctx.mpi.waitall(ctx.rank, state.recvs + state.sends)
        ctx.record(":comm" if in_comm_thread else "", "MPI_Waitall", t0)
    elif kind == "OMP_BARRIER":
        if state.comm_finished is not None:
            # the barrier joins the open comm-thread region: compute
            # threads wait until the exchange is complete (Fig. 4c)
            yield state.comm_finished
            state.comm_finished = None
        yield from ctx.omp_barrier()
    else:  # pragma: no cover - ir.py validates kinds
        raise ValueError(f"simulation backend cannot execute op {kind!r}")


def _compute_cost(ctx: "RankContext", kind: str) -> float:
    costs = ctx.costs
    return {
        "PACK": costs.gather,
        "LOCAL_SPMVM": costs.local_spmv,
        "REMOTE_SPMVM": costs.remote_spmv,
        "FULL_SPMVM": costs.full_spmv,
    }[kind]


def _spawn_comm_thread(
    ctx: "RankContext", op: SweepOp, state: _SimSweep, sweep: int
) -> None:
    if state.comm_finished is not None:
        raise RuntimeError("COMM_THREAD spawned while another is still open")
    finished: SimEvent = ctx.sim.event()

    def comm_thread() -> Generator:
        # Fig. 4c: the dedicated thread executes MPI calls only, sitting
        # in Waitall with the progress gate held open while the compute
        # threads run the local spMVM
        yield from _run_ops(ctx, op.body, state, sweep, None, in_comm_thread=True)
        finished.succeed()

    ctx.sim.spawn(comm_thread(), name=f"rank{ctx.rank}-comm")
    state.comm_finished = finished


def _post_receives(ctx: "RankContext", sweep: int) -> list:
    if ctx.comm is not None:
        return ctx.comm.post_receives(ctx, sweep)
    # classic lowering: one message per peer per sweep; a batched sweep
    # carries all block_k columns of the segment in that single message
    return [
        ctx.mpi.irecv(ctx.rank, src, 8 * ctx.block_k * count, sweep)
        for src, count in ctx.halo.recv_from
    ]


def _post_sends(ctx: "RankContext", sweep: int) -> list:
    if ctx.comm is not None:
        return ctx.comm.post_sends(ctx, sweep)
    return [
        ctx.mpi.isend(ctx.rank, dst, 8 * ctx.block_k * count, sweep)
        for dst, count in ctx.halo.send_to
    ]
