"""The scheme builders: the single source of truth for Fig. 4 semantics.

:func:`build_sweep` emits the one :class:`~repro.program.ir.SweepProgram`
per scheme that *both* backends execute.  Nothing else in the repository
is allowed to hard-code the phase ordering of a scheme — a new scheme is
a new builder here, and immediately runs on mpilite, in the simulator,
and under the program lint.

* **no_overlap** (Fig. 4a) — gather, exchange, then one full-kernel
  spMVM::

      POST_RECVS -> PACK -> POST_SENDS -> WAITALL -> FULL_SPMVM

* **naive_overlap** (Fig. 4b) — the local spMVM is *meant* to overlap
  the nonblocking exchange; whether any bytes move during it is the MPI
  progress model's decision, not the program's::

      POST_RECVS -> PACK -> POST_SENDS -> LOCAL_SPMVM -> WAITALL
                 -> REMOTE_SPMVM

* **task_mode** (Fig. 4c) — a dedicated communication thread completes
  the exchange (holding the MPI progress gate open) while the compute
  threads run the local spMVM; OpenMP-style barriers publish the packed
  buffers to the thread and join it before the remote part::

      POST_RECVS -> PACK -> OMP_BARRIER
                 -> COMM_THREAD(POST_SENDS, WAITALL)
                 -> LOCAL_SPMVM -> OMP_BARRIER -> REMOTE_SPMVM
"""

from __future__ import annotations

import functools

from repro.program.ir import SweepOp, SweepProgram
from repro.util import check_in

__all__ = ["PROGRAM_SCHEMES", "build_sweep", "cached_sweep_program", "all_sweep_programs"]

#: The Fig. 4 schemes, in paper order.  (Kept equal to
#: ``repro.core.spmvm.SCHEMES`` / ``repro.core.schemes.SIM_SCHEMES`` by
#: a package-health test — the builders are the source of truth.)
PROGRAM_SCHEMES = ("no_overlap", "naive_overlap", "task_mode")


def _op(kind: str) -> SweepOp:
    return SweepOp(kind)


def build_sweep(
    scheme: str,
    *,
    block_k: int = 1,
    comm_plan: str = "classic",
) -> SweepProgram:
    """Build the sweep program of one Fig. 4 *scheme*.

    ``block_k`` is the number of right-hand sides per sweep (the op
    sequence is identical for every k; the simulator prices compute ops
    with it).  ``comm_plan`` selects the lowering of the communication
    ops: ``"classic"`` sends one message per peer straight off the halo
    lists, ``"plan"`` replays a compiled :class:`~repro.comm.plan.CommPlan`
    (direct or node-aware).
    """
    check_in(scheme, PROGRAM_SCHEMES, "scheme")
    if scheme == "no_overlap":
        ops = (
            _op("POST_RECVS"),
            _op("PACK"),
            _op("POST_SENDS"),
            _op("WAITALL"),
            _op("FULL_SPMVM"),
        )
    elif scheme == "naive_overlap":
        ops = (
            _op("POST_RECVS"),
            _op("PACK"),
            _op("POST_SENDS"),
            _op("LOCAL_SPMVM"),
            _op("WAITALL"),
            _op("REMOTE_SPMVM"),
        )
    else:  # task_mode
        ops = (
            _op("POST_RECVS"),
            _op("PACK"),
            _op("OMP_BARRIER"),
            SweepOp("COMM_THREAD", body=(_op("POST_SENDS"), _op("WAITALL"))),
            _op("LOCAL_SPMVM"),
            _op("OMP_BARRIER"),
            _op("REMOTE_SPMVM"),
        )
    return SweepProgram(
        scheme=scheme,
        ops=ops,
        block_k=block_k,
        lowering=comm_plan,
        meta={"builder": "build_sweep"},
    )


@functools.lru_cache(maxsize=None)
def cached_sweep_program(
    scheme: str,
    *,
    block_k: int = 1,
    comm_plan: str = "classic",
) -> SweepProgram:
    """The compile-once twin of :func:`build_sweep`.

    Programs are immutable data, so every engine and every
    :class:`~repro.serve.BuiltModel` asking for the same
    ``(scheme, block_k, lowering)`` shares one compiled instance — the
    build-once/serve-many contract applied to the IR itself.  The
    domain is tiny (schemes × lowerings × a few block widths), so the
    memo is unbounded.
    """
    return build_sweep(scheme, block_k=block_k, comm_plan=comm_plan)


def all_sweep_programs(
    *, block_widths: tuple[int, ...] = (1, 4)
) -> list[SweepProgram]:
    """Every builder output: scheme x lowering x block width.

    This is what ``repro check --programs`` lints — the complete set of
    programs either backend can ever be handed.
    """
    return [
        build_sweep(scheme, block_k=k, comm_plan=lowering)
        for scheme in PROGRAM_SCHEMES
        for lowering in ("classic", "plan")
        for k in block_widths
    ]
