"""The scheme builders: the single source of truth for Fig. 4 semantics.

:func:`build_sweep` emits the one :class:`~repro.program.ir.SweepProgram`
per scheme that *both* backends execute.  Nothing else in the repository
is allowed to hard-code the phase ordering of a scheme — a new scheme is
a new builder here, and immediately runs on mpilite, in the simulator,
and under the program lint.

* **no_overlap** (Fig. 4a) — gather, exchange, then one full-kernel
  spMVM::

      POST_RECVS -> PACK -> POST_SENDS -> WAITALL -> FULL_SPMVM

* **naive_overlap** (Fig. 4b) — the local spMVM is *meant* to overlap
  the nonblocking exchange; whether any bytes move during it is the MPI
  progress model's decision, not the program's::

      POST_RECVS -> PACK -> POST_SENDS -> LOCAL_SPMVM -> WAITALL
                 -> REMOTE_SPMVM

* **task_mode** (Fig. 4c) — a dedicated communication thread completes
  the exchange (holding the MPI progress gate open) while the compute
  threads run the local spMVM; OpenMP-style barriers publish the packed
  buffers to the thread and join it before the remote part::

      POST_RECVS -> PACK -> OMP_BARRIER
                 -> COMM_THREAD(POST_SENDS, WAITALL)
                 -> LOCAL_SPMVM -> OMP_BARRIER -> REMOTE_SPMVM
"""

from __future__ import annotations

import functools

from repro.program.ir import MultiSweepProgram, SweepOp, SweepProgram
from repro.util import check_in, check_positive_int

__all__ = [
    "PROGRAM_SCHEMES",
    "build_sweep",
    "cached_sweep_program",
    "all_sweep_programs",
    "build_multi_sweep",
    "cached_multi_sweep_program",
    "all_multi_sweep_programs",
]

#: The Fig. 4 schemes, in paper order.  (Kept equal to
#: ``repro.core.spmvm.SCHEMES`` / ``repro.core.schemes.SIM_SCHEMES`` by
#: a package-health test — the builders are the source of truth.)
PROGRAM_SCHEMES = ("no_overlap", "naive_overlap", "task_mode")


def _op(kind: str) -> SweepOp:
    return SweepOp(kind)


def build_sweep(
    scheme: str,
    *,
    block_k: int = 1,
    comm_plan: str = "classic",
) -> SweepProgram:
    """Build the sweep program of one Fig. 4 *scheme*.

    ``block_k`` is the number of right-hand sides per sweep (the op
    sequence is identical for every k; the simulator prices compute ops
    with it).  ``comm_plan`` selects the lowering of the communication
    ops: ``"classic"`` sends one message per peer straight off the halo
    lists, ``"plan"`` replays a compiled :class:`~repro.comm.plan.CommPlan`
    (direct or node-aware).
    """
    check_in(scheme, PROGRAM_SCHEMES, "scheme")
    if scheme == "no_overlap":
        ops = (
            _op("POST_RECVS"),
            _op("PACK"),
            _op("POST_SENDS"),
            _op("WAITALL"),
            _op("FULL_SPMVM"),
        )
    elif scheme == "naive_overlap":
        ops = (
            _op("POST_RECVS"),
            _op("PACK"),
            _op("POST_SENDS"),
            _op("LOCAL_SPMVM"),
            _op("WAITALL"),
            _op("REMOTE_SPMVM"),
        )
    else:  # task_mode
        ops = (
            _op("POST_RECVS"),
            _op("PACK"),
            _op("OMP_BARRIER"),
            SweepOp("COMM_THREAD", body=(_op("POST_SENDS"), _op("WAITALL"))),
            _op("LOCAL_SPMVM"),
            _op("OMP_BARRIER"),
            _op("REMOTE_SPMVM"),
        )
    return SweepProgram(
        scheme=scheme,
        ops=ops,
        block_k=block_k,
        lowering=comm_plan,
        meta={"builder": "build_sweep"},
    )


@functools.lru_cache(maxsize=None)
def cached_sweep_program(
    scheme: str,
    *,
    block_k: int = 1,
    comm_plan: str = "classic",
) -> SweepProgram:
    """The compile-once twin of :func:`build_sweep`.

    Programs are immutable data, so every engine and every
    :class:`~repro.serve.BuiltModel` asking for the same
    ``(scheme, block_k, lowering)`` shares one compiled instance — the
    build-once/serve-many contract applied to the IR itself.  The
    domain is tiny (schemes × lowerings × a few block widths), so the
    memo is unbounded.
    """
    return build_sweep(scheme, block_k=block_k, comm_plan=comm_plan)


def all_sweep_programs(
    *, block_widths: tuple[int, ...] = (1, 4)
) -> list[SweepProgram]:
    """Every builder output: scheme x lowering x block width.

    This is what ``repro check --programs`` lints — the complete set of
    programs either backend can ever be handed.
    """
    return [
        build_sweep(scheme, block_k=k, comm_plan=lowering)
        for scheme in PROGRAM_SCHEMES
        for lowering in ("classic", "plan")
        for k in block_widths
    ]


# ----------------------------------------------------------------------
# multi-sweep builders: N chained sweeps, optionally pipelined across
# the sweep boundaries
# ----------------------------------------------------------------------
def _sop(kind: str, sweep: int) -> SweepOp:
    return SweepOp(kind, sweep=sweep)


def _sequential_ops(scheme: str, n_sweeps: int) -> tuple[SweepOp, ...]:
    """N copies of the single-sweep program, sweep-tagged back to back."""
    single = build_sweep(scheme).ops
    ops: list[SweepOp] = []
    for s in range(n_sweeps):
        for op in single:
            if op.kind == "COMM_THREAD":
                body = tuple(_sop(inner.kind, s) for inner in op.body)
                ops.append(SweepOp("COMM_THREAD", body=body, sweep=s))
            else:
                ops.append(_sop(op.kind, s))
    return tuple(ops)


def _pipelined_vector_ops(scheme: str, n_sweeps: int) -> tuple[SweepOp, ...]:
    """no_overlap / naive_overlap with sweep s+1's receives hoisted.

    Sweep ``s+1``'s ``POST_RECVS`` is issued right after sweep ``s``'s
    ``WAITALL`` — before the halo-consuming kernel of sweep ``s`` — so
    the next exchange's receives are preposted while this sweep still
    computes.  Needs ``halo_depth >= 2``: the hoisted receives land in
    the *other* halo slot.
    """
    split = scheme == "naive_overlap"
    kernel = "REMOTE_SPMVM" if split else "FULL_SPMVM"
    ops: list[SweepOp] = [_sop("POST_RECVS", 0)]
    for s in range(n_sweeps):
        ops.append(_sop("PACK", s))
        ops.append(_sop("POST_SENDS", s))
        if split:
            ops.append(_sop("LOCAL_SPMVM", s))
        ops.append(_sop("WAITALL", s))
        if s + 1 < n_sweeps:
            ops.append(_sop("POST_RECVS", s + 1))
        ops.append(_sop(kernel, s))
    return tuple(ops)


def _pipelined_task_ops(n_sweeps: int) -> tuple[SweepOp, ...]:
    """task_mode with ONE long-lived comm thread spanning all sweeps.

    The body runs every sweep's sends/waits; ``OMP_BARRIER`` ops inside
    the body are *rendezvous* points with the matching main-path
    barriers.  Per sweep boundary there are two rendezvous:

    * **exchange-done** — after ``WAITALL s``, before the main path may
      run ``REMOTE_SPMVM s``.  The comm thread then posts sweep
      ``s+1``'s receives, causally *concurrent* with the main path's
      remote kernel of sweep ``s`` — the cross-iteration pipelining
      this IR exists for, safe only because the receives land in the
      other halo slot (``halo_depth = 2``).
    * **pack-published** — after the main path packed sweep ``s+1``'s
      send buffers (from sweep ``s``'s result), before the comm thread
      may send them.

    The final main-path barrier (after the last rendezvous is consumed)
    joins the thread.
    """
    body: list[SweepOp] = []
    for s in range(n_sweeps):
        body.append(_sop("POST_SENDS", s))
        body.append(_sop("WAITALL", s))
        if s + 1 < n_sweeps:
            body.append(_sop("OMP_BARRIER", s))       # exchange-done s
            body.append(_sop("POST_RECVS", s + 1))
            body.append(_sop("OMP_BARRIER", s + 1))   # pack-published s+1
    ops: list[SweepOp] = [
        _sop("POST_RECVS", 0),
        _sop("PACK", 0),
        _sop("OMP_BARRIER", 0),
        SweepOp("COMM_THREAD", body=tuple(body)),
    ]
    for s in range(n_sweeps):
        ops.append(_sop("LOCAL_SPMVM", s))
        ops.append(_sop("OMP_BARRIER", s))            # exchange-done s (or join)
        ops.append(_sop("REMOTE_SPMVM", s))
        if s + 1 < n_sweeps:
            ops.append(_sop("PACK", s + 1))
            ops.append(_sop("OMP_BARRIER", s + 1))    # pack-published s+1
    return tuple(ops)


def build_multi_sweep(
    scheme: str,
    n_sweeps: int,
    *,
    pipeline: bool = True,
    block_k: int = 1,
    comm_plan: str = "classic",
) -> MultiSweepProgram:
    """Build the N-sweep chained program of one Fig. 4 *scheme*.

    Sweep ``s`` consumes sweep ``s-1``'s result (the matrix-powers
    chain ``A x, A² x, ...``).  With ``pipeline=True`` (the default)
    sweep ``s+1``'s ``POST_RECVS`` is hoisted before sweep ``s``'s
    halo-consuming kernel and the halo/send buffers are double-buffered
    (``halo_depth = 2``); task mode additionally keeps one long-lived
    communication thread across all sweeps.  ``pipeline=False`` emits
    the plain concatenation of single-sweep programs (``halo_depth =
    1``) — the bit-identity baseline the golden tests compare against.
    """
    check_in(scheme, PROGRAM_SCHEMES, "scheme")
    check_positive_int(n_sweeps, "n_sweeps")
    if not pipeline or n_sweeps == 1:
        ops = _sequential_ops(scheme, n_sweeps)
        halo_depth = 1
    elif scheme == "task_mode":
        ops = _pipelined_task_ops(n_sweeps)
        halo_depth = 2
    else:
        ops = _pipelined_vector_ops(scheme, n_sweeps)
        halo_depth = 2
    return MultiSweepProgram(
        scheme=scheme,
        ops=ops,
        n_sweeps=n_sweeps,
        pipeline=pipeline,
        block_k=block_k,
        lowering=comm_plan,
        halo_depth=halo_depth,
        meta={"builder": "build_multi_sweep"},
    )


@functools.lru_cache(maxsize=None)
def cached_multi_sweep_program(
    scheme: str,
    n_sweeps: int,
    *,
    pipeline: bool = True,
    block_k: int = 1,
    comm_plan: str = "classic",
) -> MultiSweepProgram:
    """The compile-once twin of :func:`build_multi_sweep`."""
    return build_multi_sweep(
        scheme, n_sweeps, pipeline=pipeline, block_k=block_k, comm_plan=comm_plan
    )


def all_multi_sweep_programs(
    *, sweep_counts: tuple[int, ...] = (2, 3), block_widths: tuple[int, ...] = (1, 4)
) -> list[MultiSweepProgram]:
    """Every multi-sweep builder output: scheme x lowering x N x mode x k.

    ``repro check --programs`` lints these alongside the single-sweep
    set — the complete multi-sweep surface either backend can be handed.
    """
    return [
        build_multi_sweep(scheme, n, pipeline=pipeline, block_k=k, comm_plan=lowering)
        for scheme in PROGRAM_SCHEMES
        for lowering in ("classic", "plan")
        for n in sweep_counts
        for pipeline in (True, False)
        for k in block_widths
    ]
