"""Real-execution backend: interpreting a sweep program on mpilite data.

:func:`execute_sweep` runs one :class:`~repro.program.ir.SweepProgram`
on a :class:`~repro.core.spmvm.DistributedSpMVM` engine and returns this
rank's slice of ``A @ x``.  The engine owns the long-lived state
(communicator, halo bookkeeping, preallocated buffers, sub-matrices);
the interpreter owns the phase ordering — which it takes entirely from
the program, never from the scheme name.

One interpreter covers the whole pre-IR ``_multiply_*`` family:

* spmv and spmm are the ``x.ndim == 1`` / ``x.ndim == 2`` cases of the
  same op handlers (every buffer fill and kernel call is axis-0 based),
* the classic and plan exchanges are two lowerings of the communication
  ops (``PACK`` packs per-peer buffers vs. fusing the packing into the
  plan's sends; ``WAITALL`` completes per-peer receives vs. running the
  plan's forward/scatter relays),
* ``COMM_THREAD`` spawns a real thread executing the body ops — the
  Fig. 4c code structure — joined at the next ``OMP_BARRIER``.

Numerics are scheme- and lowering-independent by construction: the local
part is always accumulated before the remote part, row by row, and the
exchange only copies float64 payloads.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

import numpy as np

from repro.program.ir import SweepOp, SweepProgram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.spmvm import DistributedSpMVM

__all__ = ["execute_sweep"]


class _SweepState:
    """Per-sweep mutable state shared between main and comm thread."""

    __slots__ = ("x", "halo_out", "send_bufs", "recvs", "reqs", "y", "thread", "error")

    def __init__(self, x: np.ndarray, halo_out: np.ndarray, send_bufs) -> None:
        self.x = x
        self.halo_out = halo_out
        self.send_bufs = send_bufs
        self.recvs: list | None = None  # classic: [(src, Request)]
        self.reqs: dict | None = None  # plan: {channel: Request}
        self.y: np.ndarray | None = None
        self.thread: threading.Thread | None = None
        self.error: list[BaseException] = []


def execute_sweep(
    engine: "DistributedSpMVM",
    program: SweepProgram,
    x: np.ndarray,
    *,
    op_log: list[str] | None = None,
) -> np.ndarray:
    """Run *program* once on *engine* with input *x* (1-D or ``(n, k)``).

    ``op_log``, when given, receives the program's signature tokens in
    issue order (comm-thread bodies at the spawn point) — the hook the
    golden cross-backend test uses to compare real execution against the
    simulated one.
    """
    if (program.lowering == "plan") != (engine.exchange is not None):
        have = "a" if engine.exchange is not None else "no"
        raise ValueError(
            f"program lowers communication as {program.lowering!r} but the "
            f"engine has {have} compiled comm plan"
        )
    halo_out, send_bufs = engine.sweep_buffers(x)
    state = _SweepState(x, halo_out, send_bufs)
    try:
        _run_ops(engine, program.ops, state, op_log)
    finally:
        if state.thread is not None:  # defensive: lint rejects such programs
            state.thread.join()
    _raise_comm_error(state)
    if state.y is None:
        raise RuntimeError(
            f"program for scheme {program.scheme!r} finished without computing "
            f"a result (no LOCAL_SPMVM/FULL_SPMVM op ran)"
        )
    return state.y


def _run_ops(
    engine: "DistributedSpMVM",
    ops: tuple[SweepOp, ...],
    state: _SweepState,
    op_log: list[str] | None,
) -> None:
    for op in ops:
        if op.kind == "COMM_THREAD":
            _spawn_comm_thread(engine, op, state, op_log)
            continue
        if op_log is not None:
            op_log.append(op.kind)
        _OP_HANDLERS[op.kind](engine, state)


def _spawn_comm_thread(
    engine: "DistributedSpMVM",
    op: SweepOp,
    state: _SweepState,
    op_log: list[str] | None,
) -> None:
    if state.thread is not None:
        raise RuntimeError("COMM_THREAD spawned while another is still open")
    if op_log is not None:
        op_log.append("COMM_THREAD{")
        op_log.extend(inner.kind for inner in op.body)
        op_log.append("}")

    def worker() -> None:
        try:
            for inner in op.body:
                _OP_HANDLERS[inner.kind](engine, state)
        except BaseException as exc:  # noqa: BLE001 - re-raised on join
            state.error.append(exc)

    state.thread = threading.Thread(
        target=worker, name=f"comm-thread-{engine.comm.rank}"
    )
    state.thread.start()


def _raise_comm_error(state: _SweepState) -> None:
    if state.error:
        raise RuntimeError(
            f"communication thread failed: {state.error[0]!r}"
        ) from state.error[0]


# ----------------------------------------------------------------------
# op handlers (classic lowering picks the halo lists, plan lowering the
# compiled RankExchange — decided once per engine, not per op)
# ----------------------------------------------------------------------
def _post_recvs(engine: "DistributedSpMVM", state: _SweepState) -> None:
    if engine.exchange is not None:
        state.reqs = engine.exchange.post_receives(engine.comm)
    else:
        state.recvs = engine.post_halo_receives()


def _pack(engine: "DistributedSpMVM", state: _SweepState) -> None:
    if engine.exchange is not None:
        return  # plan lowering packs inside the sends (repro.comm.exec)
    engine.fill_send_buffers(state.x, state.send_bufs)


def _post_sends(engine: "DistributedSpMVM", state: _SweepState) -> None:
    if engine.exchange is not None:
        engine.exchange.initial_sends(engine.comm, state.x)
    else:
        engine.send_buffers(state.send_bufs)


def _waitall(engine: "DistributedSpMVM", state: _SweepState) -> None:
    if engine.exchange is not None:
        engine.exchange.finish(engine.comm, state.x, state.reqs, state.halo_out)
    else:
        engine.complete_halo_receives(state.recvs, state.halo_out)


def _local_spmvm(engine: "DistributedSpMVM", state: _SweepState) -> None:
    # compute ops dispatch through the engine's registered kernel spec
    # (repro.sparse.registry); the operators were format-converted once
    # at engine construction
    kernel = engine.kernel
    if state.x.ndim == 2:
        state.y = kernel.spmm(engine.A_local_op, state.x)
    else:
        state.y = kernel.spmv(engine.A_local_op, state.x)


def _remote_spmvm(engine: "DistributedSpMVM", state: _SweepState) -> None:
    kernel = engine.kernel
    halo = engine.halo_view(state.halo_out)
    if state.x.ndim == 2:
        kernel.spmm_add(engine.A_remote_op, halo, out=state.y)
    else:
        kernel.spmv_add(engine.A_remote_op, halo, out=state.y)


def _full_spmvm(engine: "DistributedSpMVM", state: _SweepState) -> None:
    # the unsplit Fig. 4a kernel, lowered to local-then-remote over the
    # split-stored matrices — the same arithmetic order as the split
    # schemes, which is what makes all schemes bit-identical
    _local_spmvm(engine, state)
    _remote_spmvm(engine, state)


def _omp_barrier(engine: "DistributedSpMVM", state: _SweepState) -> None:
    # single main thread + optional comm thread: the barrier's only real
    # effect is joining an open COMM_THREAD region (Fig. 4c's second
    # barrier); with no thread open it is the compute threads' rendezvous,
    # a no-op for one compute thread
    if state.thread is not None:
        state.thread.join()
        state.thread = None
        _raise_comm_error(state)


_OP_HANDLERS = {
    "POST_RECVS": _post_recvs,
    "PACK": _pack,
    "POST_SENDS": _post_sends,
    "WAITALL": _waitall,
    "LOCAL_SPMVM": _local_spmvm,
    "REMOTE_SPMVM": _remote_spmvm,
    "FULL_SPMVM": _full_spmvm,
    "OMP_BARRIER": _omp_barrier,
}
