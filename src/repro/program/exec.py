"""Real-execution backend: interpreting a sweep program on mpilite data.

:func:`execute_sweep` runs one :class:`~repro.program.ir.SweepProgram`
on a :class:`~repro.core.spmvm.DistributedSpMVM` engine and returns this
rank's slice of ``A @ x``.  The engine owns the long-lived state
(communicator, halo bookkeeping, preallocated buffers, sub-matrices);
the interpreter owns the phase ordering — which it takes entirely from
the program, never from the scheme name.

One interpreter covers the whole pre-IR ``_multiply_*`` family:

* spmv and spmm are the ``x.ndim == 1`` / ``x.ndim == 2`` cases of the
  same op handlers (every buffer fill and kernel call is axis-0 based),
* the classic and plan exchanges are two lowerings of the communication
  ops (``PACK`` packs per-peer buffers vs. fusing the packing into the
  plan's sends; ``WAITALL`` completes per-peer receives vs. running the
  plan's forward/scatter relays),
* ``COMM_THREAD`` spawns a real thread executing the body ops — the
  Fig. 4c code structure — joined at the next ``OMP_BARRIER``.

Numerics are scheme- and lowering-independent by construction: the local
part is always accumulated before the remote part, row by row, and the
exchange only copies float64 payloads.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

import numpy as np

from repro.program.ir import MultiSweepProgram, SweepOp, SweepProgram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.spmvm import DistributedSpMVM

__all__ = ["UnjoinedCommThreadError", "execute_sweep", "execute_multi_sweep"]

#: Rendezvous/join patience for the persistent comm thread (seconds);
#: generous — a rendezvous only times out when the other side is dead.
_RENDEZVOUS_TIMEOUT = 60.0


class UnjoinedCommThreadError(RuntimeError):
    """A program finished with its COMM_THREAD region still open.

    The static lint (:func:`repro.program.lint.lint_sweep_program`)
    rejects such programs before they run; this is the runtime twin for
    hand-built programs that bypass the builders — compute ops racing
    an open communication thread is exactly the hazard the thread
    sanitizer (:mod:`repro.check.threads`) reports access by access.
    """


class _SweepState:
    """Per-sweep mutable state shared between main and comm thread."""

    __slots__ = (
        "x", "halo_out", "send_bufs", "recvs", "reqs", "y", "thread", "error",
        "san", "domain", "comm_op", "comm_token",
    )

    def __init__(self, x: np.ndarray, halo_out: np.ndarray, send_bufs) -> None:
        self.x = x
        self.halo_out = halo_out
        self.send_bufs = send_bufs
        self.recvs: list | None = None  # classic: [(src, Request)]
        self.reqs: dict | None = None  # plan: {channel: Request}
        self.y: np.ndarray | None = None
        self.thread: threading.Thread | None = None
        self.error: list[BaseException] = []
        #: opt-in thread sanitizer (repro.check.threads); None costs nothing
        self.san = None
        self.domain = ""
        self.comm_op: SweepOp | None = None  # open COMM_THREAD, for provenance
        self.comm_token: int | None = None  # sanitizer spawn token


#: Buffers each op kind reads/writes — the access model the thread
#: sanitizer checks.  PACK publishes send_bufs from x; the comm side
#: (POST_SENDS/WAITALL) consumes x and send_bufs and lands halo_out
#: (the plan lowering re-packs from x inside the sends and reads x
#: during finish relays, hence x on both); the compute side reads x and
#: halo_out into y.  OMP_BARRIER is pure synchronisation.
_OP_READS = {
    "PACK": ("x",),
    "POST_SENDS": ("x", "send_bufs"),
    "WAITALL": ("x", "recvs"),
    "LOCAL_SPMVM": ("x",),
    "REMOTE_SPMVM": ("halo_out",),
    "FULL_SPMVM": ("x", "halo_out"),
}
_OP_WRITES = {
    "POST_RECVS": ("recvs",),
    "PACK": ("send_bufs",),
    "WAITALL": ("halo_out",),
    "LOCAL_SPMVM": ("y",),
    "REMOTE_SPMVM": ("y",),
    "FULL_SPMVM": ("y",),
}


def execute_sweep(
    engine: "DistributedSpMVM",
    program: SweepProgram,
    x: np.ndarray,
    *,
    op_log: list[str] | None = None,
) -> np.ndarray:
    """Run *program* once on *engine* with input *x* (1-D or ``(n, k)``).

    ``op_log``, when given, receives the program's signature tokens in
    issue order (comm-thread bodies at the spawn point) — the hook the
    golden cross-backend test uses to compare real execution against the
    simulated one.
    """
    if (program.lowering == "plan") != (engine.exchange is not None):
        have = "a" if engine.exchange is not None else "no"
        raise ValueError(
            f"program lowers communication as {program.lowering!r} but the "
            f"engine has {have} compiled comm plan"
        )
    halo_out, send_bufs = engine.sweep_buffers(x)
    state = _SweepState(x, halo_out, send_bufs)
    san = getattr(engine, "sanitizer", None)
    if san is not None:
        state.san = san
        state.domain = f"rank{engine.comm.rank}"
    try:
        _run_ops(engine, program.ops, state, op_log)
    except BaseException:
        if state.thread is not None:  # never leak the worker on the error path
            state.thread.join()
        raise
    if state.thread is not None:
        # pre-PR-9 this was a defensive join; now it is a hard error with
        # provenance: the static lint rejects such programs, and any
        # program reaching here ran compute ops concurrently with an open
        # COMM_THREAD region — the exact hazard the thread sanitizer
        # reports access by access
        state.thread.join()
        _raise_comm_error(state)
        body = (
            ",".join(inner.kind for inner in state.comm_op.body)
            if state.comm_op is not None
            else "?"
        )
        raise UnjoinedCommThreadError(
            f"rank {engine.comm.rank}: program for scheme {program.scheme!r} "
            f"finished with its COMM_THREAD({body}) region still open — no "
            f"trailing OMP_BARRIER joined the communication thread"
        )
    _raise_comm_error(state)
    if state.y is None:
        raise RuntimeError(
            f"program for scheme {program.scheme!r} finished without computing "
            f"a result (no LOCAL_SPMVM/FULL_SPMVM op ran)"
        )
    return state.y


def _run_ops(
    engine: "DistributedSpMVM",
    ops: tuple[SweepOp, ...],
    state: _SweepState,
    op_log: list[str] | None,
) -> None:
    for op in ops:
        if op.kind == "COMM_THREAD":
            _spawn_comm_thread(engine, op, state, op_log)
            continue
        if op_log is not None:
            op_log.append(op.kind)
        _issue(engine, op.kind, state)


def _issue(engine: "DistributedSpMVM", kind: str, state: _SweepState) -> None:
    """Run one op, noting its buffer accesses when a sanitizer is attached."""
    san = state.san
    if san is not None:
        domain = state.domain
        for buf in _OP_READS.get(kind, ()):
            san.on_access(domain, buf, "r", op=kind)
        for buf in _OP_WRITES.get(kind, ()):
            san.on_access(domain, buf, "w", op=kind)
    _OP_HANDLERS[kind](engine, state)


def _spawn_comm_thread(
    engine: "DistributedSpMVM",
    op: SweepOp,
    state: _SweepState,
    op_log: list[str] | None,
) -> None:
    if state.thread is not None:
        raise RuntimeError("COMM_THREAD spawned while another is still open")
    if op_log is not None:
        op_log.append("COMM_THREAD{")
        op_log.extend(inner.kind for inner in op.body)
        op_log.append("}")
    name = f"comm-thread-{engine.comm.rank}"
    token = None
    if state.san is not None:
        token = state.san.on_spawn(state.domain, name)

    def worker() -> None:
        try:
            if token is not None:
                state.san.on_thread_start(state.domain, token)
            for inner in op.body:
                _issue(engine, inner.kind, state)
        except BaseException as exc:  # noqa: BLE001 - re-raised on join
            state.error.append(exc)

    state.comm_op = op
    state.comm_token = token
    state.thread = threading.Thread(target=worker, name=name)
    state.thread.start()


def _raise_comm_error(state: _SweepState) -> None:
    if state.error:
        raise RuntimeError(
            f"communication thread failed: {state.error[0]!r}"
        ) from state.error[0]


# ----------------------------------------------------------------------
# op handlers (classic lowering picks the halo lists, plan lowering the
# compiled RankExchange — decided once per engine, not per op)
# ----------------------------------------------------------------------
def _post_recvs(engine: "DistributedSpMVM", state: _SweepState) -> None:
    if engine.exchange is not None:
        state.reqs = engine.exchange.post_receives(engine.comm)
    else:
        state.recvs = engine.post_halo_receives()


def _pack(engine: "DistributedSpMVM", state: _SweepState) -> None:
    if engine.exchange is not None:
        return  # plan lowering packs inside the sends (repro.comm.exec)
    engine.fill_send_buffers(state.x, state.send_bufs)


def _post_sends(engine: "DistributedSpMVM", state: _SweepState) -> None:
    if engine.exchange is not None:
        engine.exchange.initial_sends(engine.comm, state.x)
    else:
        engine.send_buffers(state.send_bufs)


def _waitall(engine: "DistributedSpMVM", state: _SweepState) -> None:
    if engine.exchange is not None:
        engine.exchange.finish(engine.comm, state.x, state.reqs, state.halo_out)
    else:
        engine.complete_halo_receives(state.recvs, state.halo_out)


def _local_spmvm(engine: "DistributedSpMVM", state: _SweepState) -> None:
    # compute ops dispatch through the engine's registered kernel spec
    # (repro.sparse.registry); the operators were format-converted once
    # at engine construction
    kernel = engine.kernel
    if state.x.ndim == 2:
        state.y = kernel.spmm(engine.A_local_op, state.x)
    else:
        state.y = kernel.spmv(engine.A_local_op, state.x)


def _remote_spmvm(engine: "DistributedSpMVM", state: _SweepState) -> None:
    kernel = engine.kernel
    halo = engine.halo_view(state.halo_out)
    if state.x.ndim == 2:
        kernel.spmm_add(engine.A_remote_op, halo, out=state.y)
    else:
        kernel.spmv_add(engine.A_remote_op, halo, out=state.y)


def _full_spmvm(engine: "DistributedSpMVM", state: _SweepState) -> None:
    # the unsplit Fig. 4a kernel, lowered to local-then-remote over the
    # split-stored matrices — the same arithmetic order as the split
    # schemes, which is what makes all schemes bit-identical
    _local_spmvm(engine, state)
    _remote_spmvm(engine, state)


def _omp_barrier(engine: "DistributedSpMVM", state: _SweepState) -> None:
    # single main thread + optional comm thread: the barrier's only real
    # effect is joining an open COMM_THREAD region (Fig. 4c's second
    # barrier); with no thread open it is the compute threads' rendezvous,
    # a no-op for one compute thread
    if state.thread is not None:
        state.thread.join()
        state.thread = None
        if state.san is not None and state.comm_token is not None:
            state.san.on_join(state.domain, state.comm_token)
            state.comm_token = None
        _raise_comm_error(state)


_OP_HANDLERS = {
    "POST_RECVS": _post_recvs,
    "PACK": _pack,
    "POST_SENDS": _post_sends,
    "WAITALL": _waitall,
    "LOCAL_SPMVM": _local_spmvm,
    "REMOTE_SPMVM": _remote_spmvm,
    "FULL_SPMVM": _full_spmvm,
    "OMP_BARRIER": _omp_barrier,
}


# ----------------------------------------------------------------------
# multi-sweep interpreter: chained sweeps, double-buffered halo slots,
# one persistent comm thread paced by barrier rendezvous
# ----------------------------------------------------------------------
class _MultiSweepState:
    """Whole-program state: per-sweep views plus the persistent thread.

    Each sweep gets its own :class:`_SweepState` view (input, requests,
    result), with ``halo_out``/``send_bufs`` pointing into slot
    ``sweep % halo_depth`` of the engine's double-buffer ring.  The op
    handlers are the single-sweep ones, applied to the right view — the
    multi-sweep layer only owns sweep chaining, slot mapping, and the
    rendezvous protocol of the long-lived comm thread.
    """

    __slots__ = (
        "views", "depth", "thread", "barrier", "rendezvous_left",
        "rendezvous_total", "error", "san", "domain", "comm_op", "comm_token",
    )

    def __init__(self, depth: int = 1) -> None:
        self.views: list[_SweepState] = []
        self.depth = depth
        self.thread: threading.Thread | None = None
        self.barrier: threading.Barrier | None = None
        self.rendezvous_left = 0
        self.rendezvous_total = 0
        self.error: list[BaseException] = []
        self.san = None
        self.domain = ""
        self.comm_op: SweepOp | None = None
        self.comm_token: int | None = None


def _ms_buffer_names(op: SweepOp, slot: int) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """Sanitizer footprint of *op*: slot/sweep-mapped buffer names.

    The single-sweep footprints (:data:`_OP_READS`/:data:`_OP_WRITES`)
    name one buffer set; here the names carry the double-buffer slot
    (``halo_out#1``) and the sweep (``recvs@2``, ``y@2``) so the
    sanitizer sees cross-iteration overlap on the *same physical
    buffer*.  ``POST_RECVS`` additionally *writes* its halo slot: the
    MPI library owns the receive buffer from the post on, which is
    exactly the access that races a remote kernel still reading that
    slot when the double-buffer contract is violated.
    """
    s = op.sweep
    x = "x@0" if s == 0 else f"y@{s - 1}"
    halo, sb = f"halo_out#{slot}", f"send_bufs#{slot}"
    recvs, y = f"recvs@{s}", f"y@{s}"
    reads = {
        "PACK": (x,),
        "POST_SENDS": (x, sb),
        "WAITALL": (x, recvs),
        "LOCAL_SPMVM": (x,),
        "REMOTE_SPMVM": (halo,),
        "FULL_SPMVM": (x, halo),
    }.get(op.kind, ())
    writes = {
        "POST_RECVS": (recvs, halo),
        "PACK": (sb,),
        "WAITALL": (halo,),
        "LOCAL_SPMVM": (y,),
        "REMOTE_SPMVM": (y,),
        "FULL_SPMVM": (y,),
    }.get(op.kind, ())
    return reads, writes


def execute_multi_sweep(
    engine: "DistributedSpMVM",
    program: MultiSweepProgram,
    x: np.ndarray,
    *,
    op_log: list[str] | None = None,
) -> "list[np.ndarray]":
    """Run the N-sweep chained *program* on *engine* with input *x*.

    Returns this rank's slices of the matrix-powers chain
    ``[A x, A² x, ..., A^N x]`` (each sweep consumed the previous
    sweep's result — valid because the operator is square and row and
    column partitions coincide).  ``op_log`` receives the program's
    sweep-tagged signature tokens in issue order, as with
    :func:`execute_sweep`.

    The arithmetic per sweep is identical to N back-to-back
    :func:`execute_sweep` calls, whatever the pipelining — hoisted
    receives and the persistent comm thread reorder *communication*,
    never the kernels — so pipelined and sequential programs are
    bit-identical.
    """
    if (program.lowering == "plan") != (engine.exchange is not None):
        have = "a" if engine.exchange is not None else "no"
        raise ValueError(
            f"program lowers communication as {program.lowering!r} but the "
            f"engine has {have} compiled comm plan"
        )
    slots = engine.multi_sweep_buffers(x, program.halo_depth)
    ms = _MultiSweepState(program.halo_depth)
    for s in range(program.n_sweeps):
        halo_out, send_bufs = slots[s % program.halo_depth]
        view = _SweepState(x if s == 0 else None, halo_out, send_bufs)
        ms.views.append(view)
    san = getattr(engine, "sanitizer", None)
    if san is not None:
        ms.san = san
        ms.domain = f"rank{engine.comm.rank}"
    try:
        for op in program.ops:
            if op.kind == "COMM_THREAD":
                _ms_spawn_comm_thread(engine, op, ms, op_log)
                continue
            if op_log is not None:
                op_log.append(f"s{op.sweep}:{op.kind}")
            if op.kind == "OMP_BARRIER":
                _ms_barrier_main(ms)
                continue
            _ms_issue(engine, op, ms)
    except BaseException:
        if ms.thread is not None:  # never leak the worker on the error path
            if ms.barrier is not None:
                ms.barrier.abort()
            ms.thread.join()
        raise
    if ms.thread is not None:
        if ms.barrier is not None:
            ms.barrier.abort()  # release a worker parked at a rendezvous
        ms.thread.join()
        _ms_raise_comm_error(ms)
        raise UnjoinedCommThreadError(
            f"rank {engine.comm.rank}: multi-sweep program for scheme "
            f"{program.scheme!r} finished with its COMM_THREAD region still "
            f"open — no main-path OMP_BARRIER joined the communication thread"
        )
    _ms_raise_comm_error(ms)
    ys = []
    for s, view in enumerate(ms.views):
        if view.y is None:
            raise RuntimeError(
                f"multi-sweep program for scheme {program.scheme!r} finished "
                f"without computing sweep {s}'s result"
            )
        ys.append(view.y)
    return ys


def _ms_issue(engine: "DistributedSpMVM", op: SweepOp, ms: _MultiSweepState) -> None:
    """Issue one sweep-tagged op against its sweep's view."""
    view = ms.views[op.sweep]
    if view.x is None and op.sweep > 0:
        # chained input: sweep s consumes sweep s-1's result; the
        # previous kernel is ordered before every consumer (lint), so
        # the binding is always resolved by the time a reader runs
        view.x = ms.views[op.sweep - 1].y
    san = ms.san
    if san is not None:
        reads, writes = _ms_buffer_names(op, op.sweep % ms.depth)
        for buf in reads:
            san.on_access(ms.domain, buf, "r", op=f"s{op.sweep}:{op.kind}")
        for buf in writes:
            san.on_access(ms.domain, buf, "w", op=f"s{op.sweep}:{op.kind}")
    _OP_HANDLERS[op.kind](engine, view)


def _ms_spawn_comm_thread(
    engine: "DistributedSpMVM",
    op: SweepOp,
    ms: _MultiSweepState,
    op_log: list[str] | None,
) -> None:
    """Start the long-lived comm thread of a multi-sweep region.

    Body ``OMP_BARRIER`` ops are rendezvous with the matching main-path
    barriers; the main path counts them at spawn so it knows which of
    its own barriers rendezvous and which one (the first past the last
    rendezvous) joins the thread.
    """
    if ms.thread is not None:
        raise RuntimeError("COMM_THREAD spawned while another is still open")
    if op_log is not None:
        op_log.append("COMM_THREAD{")
        op_log.extend(f"s{inner.sweep}:{inner.kind}" for inner in op.body)
        op_log.append("}")
    ms.rendezvous_left = sum(1 for inner in op.body if inner.kind == "OMP_BARRIER")
    ms.rendezvous_total = ms.rendezvous_left
    ms.barrier = threading.Barrier(2)
    name = f"comm-thread-{engine.comm.rank}"
    token = None
    if ms.san is not None:
        token = ms.san.on_spawn(ms.domain, name)

    def worker() -> None:
        try:
            if token is not None:
                ms.san.on_thread_start(ms.domain, token)
            rdv = 0
            for inner in op.body:
                if inner.kind == "OMP_BARRIER":
                    _ms_rendezvous(ms, "comm", rdv)
                    rdv += 1
                else:
                    _ms_issue(engine, inner, ms)
        except BaseException as exc:  # noqa: BLE001 - re-raised on join
            ms.error.append(exc)
            ms.barrier.abort()  # wake a main thread parked at a rendezvous

    ms.comm_op = op
    ms.comm_token = token
    ms.thread = threading.Thread(target=worker, name=name)
    ms.thread.start()


def _ms_rendezvous(ms: _MultiSweepState, side: str, idx: int) -> None:
    """One two-party barrier rendezvous, with sanitizer hand-off edges.

    Each side releases its own token before the physical wait and
    acquires the other side's after it — a bidirectional happens-before
    edge.  The tokens carry the rendezvous ordinal *idx*: with one token
    per side a thread that races ahead to the NEXT rendezvous would
    overwrite its release clock before the peer's acquire reads it,
    forging a happens-before edge that hides real races.
    """
    other = "comm" if side == "main" else "main"
    if ms.san is not None:
        ms.san.on_release(ms.domain, f"rdv:{side}:{idx}")
    ms.barrier.wait(timeout=_RENDEZVOUS_TIMEOUT)
    if ms.san is not None:
        ms.san.on_acquire(ms.domain, f"rdv:{other}:{idx}")


def _ms_barrier_main(ms: _MultiSweepState) -> None:
    """A main-path OMP_BARRIER: rendezvous with, or join, the comm thread."""
    if ms.thread is None:
        return  # single compute thread, no comm thread open: a no-op
    if ms.rendezvous_left > 0:
        idx = ms.rendezvous_total - ms.rendezvous_left
        ms.rendezvous_left -= 1
        try:
            _ms_rendezvous(ms, "main", idx)
        except threading.BrokenBarrierError:
            # the comm thread died (it aborts the barrier on error) or
            # timed out: surface its failure, never deadlock
            ms.thread.join()
            ms.thread = None
            _ms_raise_comm_error(ms)
            raise
        return
    ms.thread.join()
    ms.thread = None
    if ms.san is not None and ms.comm_token is not None:
        ms.san.on_join(ms.domain, ms.comm_token)
        ms.comm_token = None
    _ms_raise_comm_error(ms)


def _ms_raise_comm_error(ms: _MultiSweepState) -> None:
    real = [e for e in ms.error
            if not isinstance(e, threading.BrokenBarrierError)]
    if real:
        raise RuntimeError(
            f"communication thread failed: {real[0]!r}"
        ) from real[0]
