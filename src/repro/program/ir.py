"""The sweep IR: one backend-neutral program per Fig. 4 scheme.

The paper's three hybrid schemes differ only in the *ordering and
concurrency* of the same phases — gather, halo exchange, local spMVM,
waitall, remote spMVM.  A :class:`SweepProgram` states that ordering
once, as a flat list of typed ops, and every consumer interprets the
same program:

* the real-execution backend (:mod:`repro.program.exec`) runs it on
  mpilite data and produces this rank's slice of ``A @ x``,
* the simulation backend (:mod:`repro.program.sim`) runs it as a
  simulator process and produces trace events and timings,
* the program lint (:mod:`repro.program.lint`) proves its structural
  invariants without running anything.

Op vocabulary
-------------
``POST_RECVS``
    Post every inbound halo request of the sweep (nonblocking).
``PACK``
    Gather the owned RHS elements into send buffers.  Under the plan
    lowering the packing is fused into the sends on the real backend;
    the simulator prices it as the ``gather`` compute phase either way.
``POST_SENDS``
    Issue every payload-ready outbound message (and, under a comm plan,
    arm the relay duties).
``WAITALL``
    Complete the whole exchange: every posted request, including relayed
    traffic, and land the halo segments in the halo buffer.
``LOCAL_SPMVM`` / ``REMOTE_SPMVM``
    The two phases of the split kernel (Eq. 2): rows against owned
    columns, then rows against the received halo.
``FULL_SPMVM``
    The unsplit kernel of Fig. 4a (result written once).  Real backends
    with split-stored matrices lower it to local-then-remote in the
    same arithmetic order, so numerics are scheme-independent.
``OMP_BARRIER``
    Intra-rank thread barrier.  A barrier is also the *join point* of an
    open ``COMM_THREAD`` region: the compute threads wait for the
    communication thread before crossing it.
``COMM_THREAD(body)``
    Fig. 4c's dedicated communication thread: run *body* (MPI calls
    only) concurrently with the ops that follow, until the next
    ``OMP_BARRIER`` joins it.

Programs are backend-neutral and width-neutral: the same op sequence
serves spmv (k = 1) and batched spmm (k > 1); ``block_k`` is metadata
for the simulator's cost model, not a structural parameter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.util import check_in

__all__ = [
    "OP_KINDS",
    "COMPUTE_OPS",
    "COMM_OPS",
    "MULTI_BODY_OPS",
    "WORK_OPS",
    "LOWERINGS",
    "SIM_PHASE_LABELS",
    "SweepOp",
    "SweepProgram",
    "MultiSweepProgram",
]

#: Every op kind the backends understand (stable identifiers; they are
#: what the golden cross-backend test compares).
OP_KINDS = (
    "POST_RECVS",
    "PACK",
    "POST_SENDS",
    "LOCAL_SPMVM",
    "WAITALL",
    "REMOTE_SPMVM",
    "FULL_SPMVM",
    "OMP_BARRIER",
    "COMM_THREAD",
)

#: Ops that run on the compute threads (memory traffic in the simulator).
COMPUTE_OPS = ("PACK", "LOCAL_SPMVM", "REMOTE_SPMVM", "FULL_SPMVM")

#: Ops that execute MPI library code (legal inside a COMM_THREAD body).
COMM_OPS = ("POST_RECVS", "POST_SENDS", "WAITALL")

#: Body vocabulary of a *multi-sweep* COMM_THREAD region: MPI ops plus
#: the OMP_BARRIER rendezvous points that pace a long-lived
#: communication thread against the compute threads across sweeps.
MULTI_BODY_OPS = COMM_OPS + ("OMP_BARRIER",)

#: Ops that do per-sweep work (everything except synchronisation and the
#: COMM_THREAD marker) — the multiset the multi-sweep builders must
#: preserve per sweep relative to the single-sweep program.
WORK_OPS = COMM_OPS + COMPUTE_OPS

#: How PACK/POST_SENDS/WAITALL reach the wire: ``classic`` is one
#: message per peer straight off the halo lists; ``plan`` replays a
#: compiled :class:`~repro.comm.plan.CommPlan` (direct or node-aware).
LOWERINGS = ("classic", "plan")

#: Trace phase label the simulation backend emits for each compute op —
#: the contract that keeps every :mod:`repro.obs` analysis (phase
#: summaries, overlap-bytes-during-local-spMVM) working unchanged.
SIM_PHASE_LABELS = {
    "PACK": "gather",
    "LOCAL_SPMVM": "local spMVM",
    "REMOTE_SPMVM": "remote spMVM",
    "FULL_SPMVM": "full spMVM",
}


@dataclass(frozen=True)
class SweepOp:
    """One typed instruction of a sweep program.

    ``body`` is only meaningful (and required) for ``COMM_THREAD``; it
    holds the ops the dedicated communication thread executes.

    ``sweep`` tags the op with the sweep (iteration) it belongs to in a
    :class:`MultiSweepProgram`.  Single-sweep programs leave it at 0, so
    their reprs and signatures are unchanged.
    """

    kind: str
    body: tuple["SweepOp", ...] = ()
    sweep: int = 0

    def __post_init__(self) -> None:
        check_in(self.kind, OP_KINDS, "op kind")
        if self.sweep < 0:
            raise ValueError(f"sweep index must be >= 0, got {self.sweep}")
        if self.kind == "COMM_THREAD":
            if not self.body:
                raise ValueError("COMM_THREAD requires a non-empty body")
            for op in self.body:
                if op.kind == "COMM_THREAD":
                    raise ValueError("COMM_THREAD regions cannot nest")
        elif self.body:
            raise ValueError(f"op {self.kind} cannot carry a body")

    def __repr__(self) -> str:
        tag = f"@{self.sweep}" if self.sweep else ""
        if self.kind == "COMM_THREAD":
            return f"COMM_THREAD({', '.join(repr(op) for op in self.body)}){tag}"
        return f"{self.kind}{tag}"


@dataclass(frozen=True)
class SweepProgram:
    """One scheme's full sweep, as data.

    ``scheme`` names the Fig. 4 variant the program encodes, ``block_k``
    the number of right-hand sides per sweep (cost metadata), and
    ``lowering`` how the communication ops reach the wire.
    """

    scheme: str
    ops: tuple[SweepOp, ...]
    block_k: int = 1
    lowering: str = "classic"
    #: free-form provenance (builder name, plan kind, ...)
    meta: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        check_in(self.lowering, LOWERINGS, "lowering")
        if self.block_k < 1:
            raise ValueError(f"block_k must be >= 1, got {self.block_k}")
        if not self.ops:
            raise ValueError("a sweep program needs at least one op")

    def walk(self) -> Iterator[tuple[SweepOp, bool]]:
        """Every op with its context: ``(op, inside_comm_thread)``.

        COMM_THREAD markers themselves appear with ``False``; their body
        ops follow with ``True`` — the linear order in which the
        backends *issue* the ops.
        """
        for op in self.ops:
            yield op, False
            for inner in op.body:
                yield inner, True

    def signature(self) -> tuple[str, ...]:
        """The canonical op sequence, with comm-thread regions delimited.

        Both backends log exactly this shape while executing, so the
        golden cross-backend test compares signatures, not object
        graphs.  Body ops appear at the spawn point (issue order): the
        true interleaving against the concurrent compute ops is the
        schedulers' business, not the program's.
        """
        out: list[str] = []
        for op in self.ops:
            if op.kind == "COMM_THREAD":
                out.append("COMM_THREAD{")
                out.extend(inner.kind for inner in op.body)
                out.append("}")
            else:
                out.append(op.kind)
        return tuple(out)

    def describe(self) -> str:
        """One line: scheme, lowering and the op sequence."""
        return (
            f"{self.scheme} [{self.lowering}, k={self.block_k}]: "
            + " -> ".join(repr(op) for op in self.ops)
        )

    def program_id(self) -> str:
        """Short stable identifier for cost attribution (repro.obs)."""
        return f"{self.scheme}/{self.lowering}/k{self.block_k}"


@dataclass(frozen=True)
class MultiSweepProgram:
    """An op stream spanning ``n_sweeps`` chained sweeps, as data.

    The multi-sweep twin of :class:`SweepProgram`: every op carries a
    ``sweep`` tag, and the stream may *pipeline* across sweep boundaries
    — sweep ``i+1``'s ``POST_RECVS`` hoisted before sweep ``i``'s
    ``REMOTE_SPMVM``, halo and send buffers double-buffered over
    ``halo_depth`` slots, and (task mode) one long-lived ``COMM_THREAD``
    region whose body spans all sweeps, paced against the compute
    threads by ``OMP_BARRIER`` rendezvous points inside the body.

    Execution semantics are *chained*: sweep ``s`` consumes the result
    of sweep ``s-1`` as its input (the matrix-powers kernel
    ``[A x, A² x, ..., A^N x]``), which is what the communication-
    avoiding solvers fuse their spMVMs into.

    ``halo_depth`` is the double-buffer contract: sweep ``s`` lands its
    halo (and packs its sends) in slot ``s % halo_depth``, so
    ``POST_RECVS s`` may only be hoisted above work that still reads
    slot ``s % halo_depth`` when ``halo_depth`` sweeps separate them.
    The lint (:func:`repro.program.lint.lint_multi_sweep_program`)
    proves that, and the thread sanitizer checks it access by access.
    """

    scheme: str
    ops: tuple[SweepOp, ...]
    n_sweeps: int
    pipeline: bool = True
    block_k: int = 1
    lowering: str = "classic"
    halo_depth: int = 2
    #: free-form provenance (builder name, plan kind, ...)
    meta: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        check_in(self.lowering, LOWERINGS, "lowering")
        if self.n_sweeps < 1:
            raise ValueError(f"n_sweeps must be >= 1, got {self.n_sweeps}")
        if self.halo_depth < 1:
            raise ValueError(f"halo_depth must be >= 1, got {self.halo_depth}")
        if self.block_k < 1:
            raise ValueError(f"block_k must be >= 1, got {self.block_k}")
        if not self.ops:
            raise ValueError("a multi-sweep program needs at least one op")

    def walk(self) -> Iterator[tuple[SweepOp, bool]]:
        """Every op with its context: ``(op, inside_comm_thread)``."""
        for op in self.ops:
            yield op, False
            for inner in op.body:
                yield inner, True

    def signature(self) -> tuple[str, ...]:
        """The canonical sweep-tagged op sequence.

        Tokens are ``s{sweep}:{kind}``; comm-thread regions are
        delimited with ``COMM_THREAD{`` / ``}`` and their body ops
        appear at the spawn point, exactly as both backends log them.
        """
        out: list[str] = []
        for op in self.ops:
            if op.kind == "COMM_THREAD":
                out.append("COMM_THREAD{")
                out.extend(f"s{inner.sweep}:{inner.kind}" for inner in op.body)
                out.append("}")
            else:
                out.append(f"s{op.sweep}:{op.kind}")
        return tuple(out)

    def sweep_work_ops(self, sweep: int) -> tuple[str, ...]:
        """Sorted multiset of *sweep*'s work ops (:data:`WORK_OPS` only).

        Synchronisation (``OMP_BARRIER``) and the ``COMM_THREAD`` marker
        are excluded: pipelining legitimately changes how many barriers
        pace the stream, but never how much per-sweep work it does.
        """
        return tuple(sorted(
            op.kind for op, _inside in self.walk()
            if op.sweep == sweep and op.kind in WORK_OPS
        ))

    def describe(self) -> str:
        """One line: scheme, lowering, sweep count and the op sequence."""
        mode = "pipelined" if self.pipeline else "sequential"
        return (
            f"{self.scheme} x{self.n_sweeps} [{mode}, {self.lowering}, "
            f"k={self.block_k}, depth={self.halo_depth}]: "
            + " -> ".join(repr(op) for op in self.ops)
        )

    def program_id(self) -> str:
        """Short stable identifier for cost attribution (repro.obs)."""
        mode = "pipe" if self.pipeline else "seq"
        return (
            f"{self.scheme}/{self.lowering}/k{self.block_k}"
            f"/n{self.n_sweeps}/{mode}"
        )
