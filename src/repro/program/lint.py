"""Program-level lint: proving a sweep program safe before any backend runs it.

:func:`lint_sweep_program` checks the structural invariants both
interpreters rely on and reports violations as ``program-lint``
:class:`~repro.check.findings.Finding` records.  Because every scheme
dispatches through :mod:`repro.program`, the correctness layer verifies
the IR once — instead of chasing three hand-rolled implementations of
the same phase ordering.

Invariants
----------
* **vocabulary** — every op kind is known; ``COMM_THREAD`` bodies hold
  MPI ops only (a communication thread executes library calls, never
  compute);
* **request lifecycle** — receives are posted exactly once and before
  the sends, sends exactly once, and one ``WAITALL`` completes every
  posted request (no leaked requests by construction);
* **buffer publication** — ``PACK`` precedes ``POST_SENDS``; when the
  sends run on the communication thread, an ``OMP_BARRIER`` separates
  the pack from the spawn (the compute threads must publish the buffers
  before the thread may touch them);
* **comm-thread region balance** — at most one region, spawned after
  the receives are posted, containing the ``WAITALL``, and joined by a
  later ``OMP_BARRIER`` before any op that consumes the halo;
* **data readiness** — ``REMOTE_SPMVM``/``FULL_SPMVM`` run only after
  the exchange completed (a finished ``WAITALL`` on the main path, or
  the joining barrier of the comm-thread region); the kernel writes the
  result exactly once (one ``FULL_SPMVM`` or one ``LOCAL_SPMVM`` +
  ``REMOTE_SPMVM`` pair, local first).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.program.ir import COMM_OPS, MULTI_BODY_OPS, MultiSweepProgram, SweepProgram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.check.findings import Finding

__all__ = ["lint_sweep_program", "lint_multi_sweep_program", "lint_sweep_programs"]


def lint_sweep_program(program: SweepProgram) -> "list[Finding]":
    """Lint *program*; returns all findings (empty = provably well-formed)."""
    from repro.check.findings import Finding

    findings: list[Finding] = []
    where = f"{program.scheme} [{program.lowering}, k={program.block_k}]"

    def add(message: str, **details: object) -> None:
        findings.append(Finding(
            kind="program-lint",
            message=f"{where}: {message}",
            details={"scheme": program.scheme, "lowering": program.lowering,
                     **details},
        ))

    # linearised views: (kind, in_comm_thread) in issue order, and the
    # index of each main-path op
    flat = list(program.walk())
    main = [op.kind for op, inside in flat if not inside]

    def count(kind: str) -> int:
        return sum(1 for op, _inside in flat if op.kind == kind)

    def main_index(kind: str) -> int | None:
        return main.index(kind) if kind in main else None

    # -- comm-thread body vocabulary ----------------------------------
    for op, _ in flat:
        if op.kind == "COMM_THREAD":
            for inner in op.body:
                if inner.kind not in COMM_OPS:
                    add(f"comm thread executes {inner.kind}; a communication "
                        f"thread may only run MPI ops {COMM_OPS}")

    # -- request lifecycle --------------------------------------------
    for kind in ("POST_RECVS", "POST_SENDS", "WAITALL"):
        n = count(kind)
        if n != 1:
            add(f"{kind} appears {n}x (must be exactly once: every posted "
                f"request is completed by the one WAITALL)")
    order = [op.kind for op, _inside in flat]
    if order.count("POST_RECVS") == 1 and order.count("POST_SENDS") == 1:
        if order.index("POST_RECVS") > order.index("POST_SENDS"):
            add("POST_SENDS issued before POST_RECVS: a sweep must prepost "
                "its receives so no send can block on an unposted peer")
    if order.count("POST_SENDS") == 1 and order.count("WAITALL") == 1:
        if order.index("WAITALL") < order.index("POST_SENDS"):
            add("WAITALL precedes POST_SENDS: the send requests it must "
                "complete do not exist yet")

    # -- buffer publication -------------------------------------------
    pack_i = main_index("PACK")
    if pack_i is None:
        add("no PACK op: send buffers are never filled")
    regions = [(i, op) for i, op in enumerate(program.ops) if op.kind == "COMM_THREAD"]
    if len(regions) > 1:
        add(f"{len(regions)} COMM_THREAD regions (at most one per sweep)")
    for i, region in regions:
        body_kinds = [inner.kind for inner in region.body]
        before = [op.kind for op in program.ops[:i]]
        if "WAITALL" in body_kinds and "POST_RECVS" not in before:
            add("comm thread waits on receives that are not posted before "
                "the region spawns")
        if "POST_SENDS" in body_kinds:
            if "PACK" in before and "OMP_BARRIER" not in before[before.index("PACK"):]:
                add("comm thread sends buffers without an OMP_BARRIER after "
                    "PACK: the compute threads never published them")
        after = [op.kind for op in program.ops[i + 1:]]
        if "OMP_BARRIER" not in after:
            add("COMM_THREAD region is never joined: no OMP_BARRIER follows "
                "it, so the sweep can finish with the exchange in flight")

    # -- data readiness and result shape ------------------------------
    exchange_done = _exchange_completion_index(program)
    for i, op in enumerate(program.ops):
        if op.kind in ("REMOTE_SPMVM", "FULL_SPMVM"):
            if exchange_done is None or i < exchange_done:
                add(f"{op.kind} consumes the halo before the exchange "
                    f"completed (needs a finished WAITALL or the joining "
                    f"barrier first)")
    n_full, n_local, n_remote = count("FULL_SPMVM"), count("LOCAL_SPMVM"), count("REMOTE_SPMVM")
    if n_full:
        if n_full > 1 or n_local or n_remote:
            add("FULL_SPMVM must be the only kernel op (it already writes "
                "the whole result)")
    elif (n_local, n_remote) != (1, 1):
        add(f"split kernel needs exactly one LOCAL_SPMVM and one "
            f"REMOTE_SPMVM (got {n_local} and {n_remote})")
    elif main_index("LOCAL_SPMVM") is not None and main_index("REMOTE_SPMVM") is not None \
            and main_index("LOCAL_SPMVM") > main_index("REMOTE_SPMVM"):
        add("REMOTE_SPMVM before LOCAL_SPMVM: the remote phase accumulates "
            "into the local phase's result")
    return findings


def _exchange_completion_index(program: SweepProgram) -> int | None:
    """Main-path index after which the halo data is guaranteed landed.

    That is the index just past a main-path ``WAITALL``, or past the
    ``OMP_BARRIER`` that joins the comm-thread region carrying the
    ``WAITALL``.  ``None`` when the exchange never provably completes.
    """
    for i, op in enumerate(program.ops):
        if op.kind == "WAITALL":
            return i + 1
        if op.kind == "COMM_THREAD" and any(
            inner.kind == "WAITALL" for inner in op.body
        ):
            for j in range(i + 1, len(program.ops)):
                if program.ops[j].kind == "OMP_BARRIER":
                    return j + 1
            return None
    return None


# ----------------------------------------------------------------------
# multi-sweep lint: a happens-before model over the whole op stream
# ----------------------------------------------------------------------
class _Item:
    """One issued op with its happens-before coordinates.

    ``step`` is a global logical time that only barriers (and region
    spawns) advance; two items at the same step on different paths are
    causally *concurrent*.  ``path`` is ``("main",)`` or
    ``("body", region_index)``; within one path items are ordered by
    ``pos``.
    """

    __slots__ = ("op", "path", "pos", "step")

    def __init__(self, op, path, pos: int, step: int) -> None:
        self.op = op
        self.path = path
        self.pos = pos
        self.step = step


def _happens_before(a: _Item, b: _Item) -> bool:
    if a.step < b.step:
        return True
    if a.step > b.step:
        return False
    return a.path == b.path and a.pos < b.pos


def _schedule_items(program: MultiSweepProgram, add) -> list[_Item]:
    """Assign every issued op its (path, pos, step) coordinates.

    Main-path ``OMP_BARRIER`` ops advance the step.  A ``COMM_THREAD``
    spawn also advances it and splits its body at the body's own
    ``OMP_BARRIER`` rendezvous points into chunks: chunk 0 runs from
    the spawn, and each subsequent main barrier *while the region is
    open* releases the next chunk (rendezvous) — until no chunks
    remain, at which point the barrier joins the thread and closes the
    region.  A region still open at the end of the stream is an error.
    """
    items: list[_Item] = []
    step = 0
    pos = 0
    region = None  # (region_index, chunks, next_chunk)
    n_regions = 0
    for op in program.ops:
        if op.kind == "COMM_THREAD":
            if region is not None:
                add("COMM_THREAD spawned while another region is still open")
                continue
            step += 1
            chunks: list[list] = [[]]
            for inner in op.body:
                if inner.kind == "OMP_BARRIER":
                    chunks.append([])
                else:
                    chunks[-1].append(inner)
            body_pos = 0
            for inner in chunks[0]:
                items.append(_Item(inner, ("body", n_regions), body_pos, step))
                body_pos += 1
            region = [n_regions, chunks, 1, body_pos]
            n_regions += 1
            continue
        if op.kind == "OMP_BARRIER":
            step += 1
            if region is not None:
                idx, chunks, nxt, body_pos = region
                if nxt < len(chunks):
                    for inner in chunks[nxt]:
                        items.append(_Item(inner, ("body", idx), body_pos, step))
                        body_pos += 1
                    region[2] = nxt + 1
                    region[3] = body_pos
                else:
                    region = None  # join: the comm thread is done
            continue
        items.append(_Item(op, ("main",), pos, step))
        pos += 1
    if region is not None:
        add("COMM_THREAD region is never joined: no main-path OMP_BARRIER "
            "remains to join the communication thread at program end")
    return items


def lint_multi_sweep_program(program: MultiSweepProgram) -> "list[Finding]":
    """Lint a multi-sweep program; empty result = provably well-formed.

    On top of the single-sweep vocabulary/lifecycle invariants (now per
    sweep), this proves the *cross-sweep* ones on a happens-before model
    of the stream: chained inputs (sweep s's pack/kernel run after sweep
    s-1's kernel), halo readiness across iteration boundaries (WAITALL s
    before the halo-consuming kernel of s), and the double-buffer
    contract (POST_RECVS s — which re-arms halo slot ``s % halo_depth``
    — only after the consumer of sweep ``s - halo_depth`` is done, and
    PACK s only after POST_SENDS of ``s - halo_depth`` released the
    send-buffer slot).
    """
    from repro.check.findings import Finding

    findings: list[Finding] = []
    mode = "pipelined" if program.pipeline else "sequential"
    where = (
        f"{program.scheme} x{program.n_sweeps} [{mode}, {program.lowering}, "
        f"k={program.block_k}, depth={program.halo_depth}]"
    )

    def add(message: str, **details: object) -> None:
        findings.append(Finding(
            kind="program-lint",
            message=f"{where}: {message}",
            details={"scheme": program.scheme, "lowering": program.lowering,
                     "n_sweeps": program.n_sweeps, "pipeline": program.pipeline,
                     **details},
        ))

    n = program.n_sweeps

    # -- vocabulary and sweep tags ------------------------------------
    for op, inside in program.walk():
        if inside and op.kind not in MULTI_BODY_OPS:
            add(f"comm thread executes {op.kind}; a multi-sweep communication "
                f"thread may only run {MULTI_BODY_OPS}")
        if op.kind != "COMM_THREAD" and not 0 <= op.sweep < n:
            add(f"{op.kind} tagged sweep {op.sweep}, outside 0..{n - 1}")

    items = _schedule_items(program, add)

    def find(kind: str, sweep: int) -> list[_Item]:
        return [it for it in items
                if it.op.kind == kind and it.op.sweep == sweep]

    def require(a_kind: str, s_a: int, b_kind: str, s_b: int, why: str) -> None:
        """Every (a, b) instance pair must satisfy a happens-before b."""
        for a in find(a_kind, s_a):
            for b in find(b_kind, s_b):
                if not _happens_before(a, b):
                    add(f"s{s_b}:{b_kind} is not ordered after s{s_a}:{a_kind} "
                        f"({why})")

    for s in range(n):
        # -- per-sweep request lifecycle and kernel shape -------------
        for kind in ("POST_RECVS", "PACK", "POST_SENDS", "WAITALL"):
            c = len(find(kind, s))
            if c != 1:
                add(f"sweep {s}: {kind} appears {c}x (must be exactly once)")
        n_full = len(find("FULL_SPMVM", s))
        n_local = len(find("LOCAL_SPMVM", s))
        n_remote = len(find("REMOTE_SPMVM", s))
        if n_full:
            if n_full > 1 or n_local or n_remote:
                add(f"sweep {s}: FULL_SPMVM must be the only kernel op")
        elif (n_local, n_remote) != (1, 1):
            add(f"sweep {s}: split kernel needs exactly one LOCAL_SPMVM and "
                f"one REMOTE_SPMVM (got {n_local} and {n_remote})")

        # -- intra-sweep ordering -------------------------------------
        require("POST_RECVS", s, "POST_SENDS", s,
                "receives must be preposted before the sends")
        require("PACK", s, "POST_SENDS", s,
                "send buffers must be published before they are sent")
        require("POST_SENDS", s, "WAITALL", s,
                "WAITALL completes requests that must already exist")
        require("POST_RECVS", s, "WAITALL", s,
                "WAITALL completes requests that must already exist")
        for kernel in ("REMOTE_SPMVM", "FULL_SPMVM"):
            require("WAITALL", s, kernel, s,
                    "the kernel consumes the halo the exchange lands")
        require("LOCAL_SPMVM", s, "REMOTE_SPMVM", s,
                "the remote phase accumulates into the local result")

        # -- chained input: sweep s consumes sweep s-1's result -------
        if s > 0:
            prev_kernel = "FULL_SPMVM" if find("FULL_SPMVM", s - 1) else "REMOTE_SPMVM"
            for consumer in ("PACK", "POST_SENDS", "LOCAL_SPMVM", "FULL_SPMVM"):
                require(prev_kernel, s - 1, consumer, s,
                        "sweep input is the previous sweep's result")

        # -- double-buffer contract across halo_depth sweeps ----------
        d = program.halo_depth
        if s >= d:
            old_kernel = "FULL_SPMVM" if find("FULL_SPMVM", s - d) else "REMOTE_SPMVM"
            require(old_kernel, s - d, "POST_RECVS", s,
                    f"POST_RECVS re-arms halo slot {s % d} while sweep "
                    f"{s - d}'s kernel may still read it (halo_depth={d})")
            require("POST_SENDS", s - d, "PACK", s,
                    f"PACK refills send-buffer slot {s % d} while sweep "
                    f"{s - d}'s sends may still read it (halo_depth={d})")
    return findings


def lint_sweep_programs(
    programs: Iterable[SweepProgram | MultiSweepProgram] | None = None,
) -> "list[Finding]":
    """Lint a collection of programs (default: every builder output).

    This is the ``repro check --programs`` sweep: all Fig. 4 builders,
    both lowerings, scalar and batched widths — single-sweep and
    multi-sweep programs alike (dispatched on type).
    """
    from repro.program.build import all_multi_sweep_programs, all_sweep_programs

    if programs is None:
        programs = [*all_sweep_programs(), *all_multi_sweep_programs()]
    findings: list[Finding] = []
    for program in programs:
        if isinstance(program, MultiSweepProgram):
            findings.extend(lint_multi_sweep_program(program))
        else:
            findings.extend(lint_sweep_program(program))
    return findings
