"""Program-level lint: proving a sweep program safe before any backend runs it.

:func:`lint_sweep_program` checks the structural invariants both
interpreters rely on and reports violations as ``program-lint``
:class:`~repro.check.findings.Finding` records.  Because every scheme
dispatches through :mod:`repro.program`, the correctness layer verifies
the IR once — instead of chasing three hand-rolled implementations of
the same phase ordering.

Invariants
----------
* **vocabulary** — every op kind is known; ``COMM_THREAD`` bodies hold
  MPI ops only (a communication thread executes library calls, never
  compute);
* **request lifecycle** — receives are posted exactly once and before
  the sends, sends exactly once, and one ``WAITALL`` completes every
  posted request (no leaked requests by construction);
* **buffer publication** — ``PACK`` precedes ``POST_SENDS``; when the
  sends run on the communication thread, an ``OMP_BARRIER`` separates
  the pack from the spawn (the compute threads must publish the buffers
  before the thread may touch them);
* **comm-thread region balance** — at most one region, spawned after
  the receives are posted, containing the ``WAITALL``, and joined by a
  later ``OMP_BARRIER`` before any op that consumes the halo;
* **data readiness** — ``REMOTE_SPMVM``/``FULL_SPMVM`` run only after
  the exchange completed (a finished ``WAITALL`` on the main path, or
  the joining barrier of the comm-thread region); the kernel writes the
  result exactly once (one ``FULL_SPMVM`` or one ``LOCAL_SPMVM`` +
  ``REMOTE_SPMVM`` pair, local first).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.program.ir import COMM_OPS, SweepProgram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.check.findings import Finding

__all__ = ["lint_sweep_program", "lint_sweep_programs"]


def lint_sweep_program(program: SweepProgram) -> "list[Finding]":
    """Lint *program*; returns all findings (empty = provably well-formed)."""
    from repro.check.findings import Finding

    findings: list[Finding] = []
    where = f"{program.scheme} [{program.lowering}, k={program.block_k}]"

    def add(message: str, **details: object) -> None:
        findings.append(Finding(
            kind="program-lint",
            message=f"{where}: {message}",
            details={"scheme": program.scheme, "lowering": program.lowering,
                     **details},
        ))

    # linearised views: (kind, in_comm_thread) in issue order, and the
    # index of each main-path op
    flat = list(program.walk())
    main = [op.kind for op, inside in flat if not inside]

    def count(kind: str) -> int:
        return sum(1 for op, _inside in flat if op.kind == kind)

    def main_index(kind: str) -> int | None:
        return main.index(kind) if kind in main else None

    # -- comm-thread body vocabulary ----------------------------------
    for op, _ in flat:
        if op.kind == "COMM_THREAD":
            for inner in op.body:
                if inner.kind not in COMM_OPS:
                    add(f"comm thread executes {inner.kind}; a communication "
                        f"thread may only run MPI ops {COMM_OPS}")

    # -- request lifecycle --------------------------------------------
    for kind in ("POST_RECVS", "POST_SENDS", "WAITALL"):
        n = count(kind)
        if n != 1:
            add(f"{kind} appears {n}x (must be exactly once: every posted "
                f"request is completed by the one WAITALL)")
    order = [op.kind for op, _inside in flat]
    if order.count("POST_RECVS") == 1 and order.count("POST_SENDS") == 1:
        if order.index("POST_RECVS") > order.index("POST_SENDS"):
            add("POST_SENDS issued before POST_RECVS: a sweep must prepost "
                "its receives so no send can block on an unposted peer")
    if order.count("POST_SENDS") == 1 and order.count("WAITALL") == 1:
        if order.index("WAITALL") < order.index("POST_SENDS"):
            add("WAITALL precedes POST_SENDS: the send requests it must "
                "complete do not exist yet")

    # -- buffer publication -------------------------------------------
    pack_i = main_index("PACK")
    if pack_i is None:
        add("no PACK op: send buffers are never filled")
    regions = [(i, op) for i, op in enumerate(program.ops) if op.kind == "COMM_THREAD"]
    if len(regions) > 1:
        add(f"{len(regions)} COMM_THREAD regions (at most one per sweep)")
    for i, region in regions:
        body_kinds = [inner.kind for inner in region.body]
        before = [op.kind for op in program.ops[:i]]
        if "WAITALL" in body_kinds and "POST_RECVS" not in before:
            add("comm thread waits on receives that are not posted before "
                "the region spawns")
        if "POST_SENDS" in body_kinds:
            if "PACK" in before and "OMP_BARRIER" not in before[before.index("PACK"):]:
                add("comm thread sends buffers without an OMP_BARRIER after "
                    "PACK: the compute threads never published them")
        after = [op.kind for op in program.ops[i + 1:]]
        if "OMP_BARRIER" not in after:
            add("COMM_THREAD region is never joined: no OMP_BARRIER follows "
                "it, so the sweep can finish with the exchange in flight")

    # -- data readiness and result shape ------------------------------
    exchange_done = _exchange_completion_index(program)
    for i, op in enumerate(program.ops):
        if op.kind in ("REMOTE_SPMVM", "FULL_SPMVM"):
            if exchange_done is None or i < exchange_done:
                add(f"{op.kind} consumes the halo before the exchange "
                    f"completed (needs a finished WAITALL or the joining "
                    f"barrier first)")
    n_full, n_local, n_remote = count("FULL_SPMVM"), count("LOCAL_SPMVM"), count("REMOTE_SPMVM")
    if n_full:
        if n_full > 1 or n_local or n_remote:
            add("FULL_SPMVM must be the only kernel op (it already writes "
                "the whole result)")
    elif (n_local, n_remote) != (1, 1):
        add(f"split kernel needs exactly one LOCAL_SPMVM and one "
            f"REMOTE_SPMVM (got {n_local} and {n_remote})")
    elif main_index("LOCAL_SPMVM") is not None and main_index("REMOTE_SPMVM") is not None \
            and main_index("LOCAL_SPMVM") > main_index("REMOTE_SPMVM"):
        add("REMOTE_SPMVM before LOCAL_SPMVM: the remote phase accumulates "
            "into the local phase's result")
    return findings


def _exchange_completion_index(program: SweepProgram) -> int | None:
    """Main-path index after which the halo data is guaranteed landed.

    That is the index just past a main-path ``WAITALL``, or past the
    ``OMP_BARRIER`` that joins the comm-thread region carrying the
    ``WAITALL``.  ``None`` when the exchange never provably completes.
    """
    for i, op in enumerate(program.ops):
        if op.kind == "WAITALL":
            return i + 1
        if op.kind == "COMM_THREAD" and any(
            inner.kind == "WAITALL" for inner in op.body
        ):
            for j in range(i + 1, len(program.ops)):
                if program.ops[j].kind == "OMP_BARRIER":
                    return j + 1
            return None
    return None


def lint_sweep_programs(
    programs: Iterable[SweepProgram] | None = None,
) -> "list[Finding]":
    """Lint a collection of programs (default: every builder output).

    This is the ``repro check --programs`` sweep: all Fig. 4 builders,
    both lowerings, scalar and batched widths.
    """
    from repro.program.build import all_sweep_programs

    findings: list[Finding] = []
    for program in programs if programs is not None else all_sweep_programs():
        findings.extend(lint_sweep_program(program))
    return findings
