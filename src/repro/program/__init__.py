"""repro.program: the backend-neutral sweep IR for the Fig. 4 schemes.

One :func:`build_sweep` program per scheme is the single source of truth
for the paper's phase ordering (gather, halo exchange, local spMVM,
waitall, remote spMVM); two interpreters execute it:

* :func:`execute_sweep` — real execution on mpilite data (the engine
  behind :class:`~repro.core.spmvm.DistributedSpMVM`),
* :func:`sweep_process` — a timed simulator process (the engine behind
  :func:`~repro.core.runner.simulate_spmvm`),

and :func:`lint_sweep_program` proves a program's structural invariants
(request lifecycle, comm-thread region balance, barrier placement)
before either backend touches it.  See DESIGN.md §10.
"""

from repro.program.build import (
    PROGRAM_SCHEMES,
    all_sweep_programs,
    build_sweep,
    cached_sweep_program,
)
from repro.program.exec import execute_sweep
from repro.program.ir import (
    COMM_OPS,
    COMPUTE_OPS,
    LOWERINGS,
    OP_KINDS,
    SIM_PHASE_LABELS,
    SweepOp,
    SweepProgram,
)
from repro.program.lint import lint_sweep_program, lint_sweep_programs
from repro.program.sim import sweep_process

__all__ = [
    "OP_KINDS",
    "COMPUTE_OPS",
    "COMM_OPS",
    "LOWERINGS",
    "SIM_PHASE_LABELS",
    "SweepOp",
    "SweepProgram",
    "PROGRAM_SCHEMES",
    "build_sweep",
    "cached_sweep_program",
    "all_sweep_programs",
    "execute_sweep",
    "sweep_process",
    "lint_sweep_program",
    "lint_sweep_programs",
]
