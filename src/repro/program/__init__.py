"""repro.program: the backend-neutral sweep IR for the Fig. 4 schemes.

One :func:`build_sweep` program per scheme is the single source of truth
for the paper's phase ordering (gather, halo exchange, local spMVM,
waitall, remote spMVM); two interpreters execute it:

* :func:`execute_sweep` — real execution on mpilite data (the engine
  behind :class:`~repro.core.spmvm.DistributedSpMVM`),
* :func:`sweep_process` — a timed simulator process (the engine behind
  :func:`~repro.core.runner.simulate_spmvm`),

and :func:`lint_sweep_program` proves a program's structural invariants
(request lifecycle, comm-thread region balance, barrier placement)
before either backend touches it.  See DESIGN.md §10.

:func:`build_multi_sweep` extends the IR to *iteration-indexed*
programs: one :class:`MultiSweepProgram` spans N chained sweeps (the
matrix-powers kernel ``A x .. A^N x``) with explicit sweep tags, so
cross-iteration pipelining — sweep ``i+1``'s receives hoisted before
sweep ``i``'s remote kernel, double-buffered halo slots, one long-lived
comm thread — is emitted as data, executed by both backends
(:func:`execute_multi_sweep` / :func:`multi_sweep_process`) and proved
safe by :func:`lint_multi_sweep_program`.  See DESIGN.md §15.
"""

from repro.program.build import (
    PROGRAM_SCHEMES,
    all_multi_sweep_programs,
    all_sweep_programs,
    build_multi_sweep,
    build_sweep,
    cached_multi_sweep_program,
    cached_sweep_program,
)
from repro.program.exec import execute_multi_sweep, execute_sweep
from repro.program.ir import (
    COMM_OPS,
    COMPUTE_OPS,
    LOWERINGS,
    MULTI_BODY_OPS,
    OP_KINDS,
    SIM_PHASE_LABELS,
    WORK_OPS,
    MultiSweepProgram,
    SweepOp,
    SweepProgram,
)
from repro.program.lint import (
    lint_multi_sweep_program,
    lint_sweep_program,
    lint_sweep_programs,
)
from repro.program.sim import multi_sweep_process, sweep_process

__all__ = [
    "OP_KINDS",
    "COMPUTE_OPS",
    "COMM_OPS",
    "MULTI_BODY_OPS",
    "WORK_OPS",
    "LOWERINGS",
    "SIM_PHASE_LABELS",
    "SweepOp",
    "SweepProgram",
    "MultiSweepProgram",
    "PROGRAM_SCHEMES",
    "build_sweep",
    "cached_sweep_program",
    "all_sweep_programs",
    "build_multi_sweep",
    "cached_multi_sweep_program",
    "all_multi_sweep_programs",
    "execute_sweep",
    "execute_multi_sweep",
    "sweep_process",
    "multi_sweep_process",
    "lint_sweep_program",
    "lint_multi_sweep_program",
    "lint_sweep_programs",
]
