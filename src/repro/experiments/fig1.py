"""Fig. 1: sparsity patterns of HMEp, HMeP and sAMG (block occupancy).

The paper aggregates square subblocks and colour-codes them by occupancy
on a log scale.  We reproduce the aggregation, render ASCII heat maps,
and quantify what the figure shows visually: the HMEp ordering scatters
nonzero blocks across the whole matrix while HMeP and sAMG concentrate
them near the diagonal — which is why HMeP has the smaller κ and the
lighter communication.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.matrices.collection import get_matrix
from repro.sparse.patterns import OccupancyGrid, block_occupancy

__all__ = ["Fig1Result", "run_fig1"]


@dataclass
class Fig1Result:
    """Occupancy grids and summary statistics per matrix."""

    scale: str
    grids: dict[str, OccupancyGrid]
    stats: dict[str, dict[str, float]]

    def render(self) -> str:
        """Heat maps + the statistics table."""
        parts = []
        for name, grid in self.grids.items():
            parts.append(grid.render(title=f"--- {name} ({self.scale}) ---"))
            s = self.stats[name]
            parts.append(
                f"    dim={int(s['dim'])}  nnz={int(s['nnz'])}  Nnzr={s['nnzr']:.2f}  "
                f"band(3 blocks)={s['band_fraction']:.2%}  "
                f"nonzero blocks={int(s['nonzero_blocks'])}"
            )
        return "\n".join(parts)


def run_fig1(scale: str = "small", grid: int = 40) -> Fig1Result:
    """Compute the three panels of Fig. 1 at the given matrix scale."""
    grids: dict[str, OccupancyGrid] = {}
    stats: dict[str, dict[str, float]] = {}
    for name in ("HMEp", "HMeP", "sAMG"):
        A = get_matrix(name, scale).build_cached()
        g = block_occupancy(A, grid=grid)
        grids[name] = g
        stats[name] = {
            "dim": float(A.nrows),
            "nnz": float(A.nnz),
            "nnzr": A.nnzr,
            "band_fraction": g.band_fraction(3),
            "diagonal_fraction": g.diagonal_fraction(),
            "nonzero_blocks": float(g.nonzero_blocks()),
            "max_occupancy": g.max_occupancy(),
        }
    return Fig1Result(scale=scale, grids=grids, stats=stats)
