"""Fig. 6: strong scaling of the sAMG matrix on the Westmere cluster.

The communication-light counterpart to Fig. 5.  Expected shape:

* all variants and hybrid modes scale similarly; parallel efficiency
  stays above 50 % up to 32 nodes for every variant;
* task mode offers **no** advantage — "it makes no sense to consider
  MPI+OpenMP hybrid programming if the pure MPI code already scales
  well";
* on the Cray XE6 the best variant is vector mode without overlap.
"""

from __future__ import annotations

from repro.experiments.calibration import DEFAULT_NODE_COUNTS, KAPPA
from repro.experiments.scaling import ScalingStudy, run_scaling_study
from repro.matrices.collection import get_matrix

__all__ = ["run_fig6"]


def run_fig6(
    scale: str = "medium",
    *,
    node_counts: tuple[int, ...] = DEFAULT_NODE_COUNTS,
    max_ranks: int | None = None,
    include_cray: bool = True,
) -> ScalingStudy:
    """Run the Fig. 6 sweep on the sAMG matrix at the given scale."""
    A = get_matrix("sAMG", scale).build_cached()
    return run_scaling_study(
        A,
        f"sAMG ({scale})",
        KAPPA["sAMG"],
        node_counts=node_counts,
        max_ranks=max_ranks,
        include_cray=include_cray,
    )
