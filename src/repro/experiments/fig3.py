"""Fig. 3: node-level performance analysis (intrasocket/intranode scaling).

Panel (a): Nehalem EP — STREAM triad and spMVM bandwidth plus spMVM
GFlop/s at 1-4 cores and the full node.  Panel (b): Westmere EP and
Magny Cours with six cores per locality domain.

The GFlop/s values follow from the calibrated bandwidth saturation
curves through the code-balance model (Eq. 1 with the measured κ); the
table therefore reproduces the paper's annotated numbers by
construction at the calibration points and *predicts* the remaining
entries.  A cross-check column runs the actual discrete-event simulator
on a single node and must agree with the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.calibration import (
    KAPPA,
    PAPER_FIG3A_NODE_PERF,
    PAPER_FIG3A_PERF,
    PAPER_NNZR,
)
from repro.machine.presets import magny_cours_node, nehalem_ep_node, westmere_ep_node
from repro.machine.topology import NodeSpec
from repro.model.code_balance import CodeBalanceModel
from repro.util import Table, to_gb_per_s

__all__ = ["NodeScalingRow", "Fig3Result", "run_fig3"]


@dataclass(frozen=True)
class NodeScalingRow:
    """One (machine, active cores) entry of the Fig. 3 data."""

    machine: str
    cores: int
    unit: str  # "LD", "socket" or "node"
    stream_gb: float
    spmv_bandwidth_gb: float
    spmv_gflops: float
    paper_gflops: float | None = None


@dataclass
class Fig3Result:
    """All rows of both panels."""

    rows: list[NodeScalingRow] = field(default_factory=list)

    def render(self) -> str:
        """Aligned table, panel (a) then panel (b)."""
        t = Table(
            ["machine", "unit", "cores", "STREAM GB/s", "spMVM GB/s", "GFlop/s", "paper GFlop/s"],
            title="Fig. 3 — node-level spMVM performance (HMeP, code-balance model)",
            float_fmt=".2f",
        )
        for r in self.rows:
            t.add_row(
                [
                    r.machine,
                    r.unit,
                    r.cores,
                    r.stream_gb,
                    r.spmv_bandwidth_gb,
                    r.spmv_gflops,
                    r.paper_gflops if r.paper_gflops is not None else float("nan"),
                ]
            )
        return t.render()

    def by_machine(self, machine: str) -> list[NodeScalingRow]:
        """Rows of one machine, calibration order."""
        return [r for r in self.rows if r.machine == machine]

    def saturation_core_count(self, machine: str, threshold: float = 0.95) -> int:
        """Cores needed to reach *threshold* of the LD-saturated spMVM
        performance (the paper's "saturates at about four threads")."""
        rows = [r for r in self.by_machine(machine) if r.unit == "LD"]
        peak = max(r.spmv_gflops for r in rows)
        for r in rows:
            if r.spmv_gflops >= threshold * peak:
                return r.cores
        return rows[-1].cores


def _ld_rows(
    machine: str,
    node: NodeSpec,
    model: CodeBalanceModel,
    paper: dict[int, float] | None = None,
) -> list[NodeScalingRow]:
    dom = node.domains[0]
    rows = []
    for k in range(1, dom.n_cores + 1):
        bw = dom.spmv_curve.value(k)
        rows.append(
            NodeScalingRow(
                machine=machine,
                cores=k,
                unit="LD",
                stream_gb=to_gb_per_s(dom.stream_curve.value(k)),
                spmv_bandwidth_gb=to_gb_per_s(bw),
                spmv_gflops=model.performance(bw) / 1e9,
                paper_gflops=(paper or {}).get(k),
            )
        )
    return rows


def run_fig3(nnzr: float | None = None, kappa: float | None = None) -> Fig3Result:
    """Generate both Fig. 3 panels from the calibrated machines.

    ``nnzr``/``kappa`` default to the paper's HMeP values (15, 2.5).
    """
    nnzr = PAPER_NNZR["HMeP"] if nnzr is None else nnzr
    kappa = KAPPA["HMeP"] if kappa is None else kappa
    model = CodeBalanceModel(nnzr=nnzr, kappa=kappa)
    result = Fig3Result()

    # panel (a): Nehalem EP
    nehalem = nehalem_ep_node()
    paper_a = {k + 1: v for k, v in enumerate(PAPER_FIG3A_PERF)}
    result.rows.extend(_ld_rows("Nehalem EP", nehalem, model, paper_a))
    node_bw = nehalem.spmv_bandwidth
    result.rows.append(
        NodeScalingRow(
            machine="Nehalem EP",
            cores=nehalem.n_cores,
            unit="node",
            stream_gb=to_gb_per_s(nehalem.stream_bandwidth),
            spmv_bandwidth_gb=to_gb_per_s(node_bw),
            spmv_gflops=model.performance(node_bw) / 1e9,
            paper_gflops=PAPER_FIG3A_NODE_PERF,
        )
    )

    # panel (b): Westmere EP and Magny Cours
    for name, node in (("Westmere EP", westmere_ep_node()), ("Magny Cours", magny_cours_node())):
        result.rows.extend(_ld_rows(name, node, model))
        if name == "Magny Cours":
            # "1 AMD socket" = one package = 2 LDs
            sock_bw = 2 * node.domains[0].spmv_bandwidth
            result.rows.append(
                NodeScalingRow(
                    machine=name,
                    cores=12,
                    unit="socket",
                    stream_gb=to_gb_per_s(2 * node.domains[0].stream_bandwidth),
                    spmv_bandwidth_gb=to_gb_per_s(sock_bw),
                    spmv_gflops=model.performance(sock_bw) / 1e9,
                )
            )
        result.rows.append(
            NodeScalingRow(
                machine=name,
                cores=node.n_cores,
                unit="node",
                stream_gb=to_gb_per_s(node.stream_bandwidth),
                spmv_bandwidth_gb=to_gb_per_s(node.spmv_bandwidth),
                spmv_gflops=model.performance(node.spmv_bandwidth) / 1e9,
            )
        )
    return result
