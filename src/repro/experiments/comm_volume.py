"""Internode communication volume vs node count (the knee explained).

Sect. 4 attributes the universal scalability drop beyond ~6 nodes to "a
strong decrease in overall internode communication volume when the
number of nodes is small" — i.e. at 2-6 nodes the halo volume is still
ramping up steeply with every node added, and once it saturates the
full communication cost is felt.  This experiment computes, from the
real partitioned matrices, the total and *internode* halo volumes and
message counts per MVM as functions of the node count, for both
matrices and all three hybrid modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.halo import build_halo_plan
from repro.machine.affinity import ranks_for_mode
from repro.machine.presets import westmere_cluster
from repro.matrices.collection import get_matrix
from repro.sparse.partition import partition_matrix
from repro.util import Table

__all__ = ["VolumeRow", "CommVolumeResult", "run_comm_volume"]


@dataclass(frozen=True)
class VolumeRow:
    """One (matrix, mode, nodes) communication-volume measurement."""

    matrix: str
    mode: str
    n_nodes: int
    n_ranks: int
    total_mb: float
    internode_mb: float
    messages: int
    internode_messages: int

    @property
    def internode_fraction(self) -> float:
        """Share of the halo volume crossing node boundaries."""
        return self.internode_mb / self.total_mb if self.total_mb else 0.0


@dataclass
class CommVolumeResult:
    """The full sweep."""

    rows: list[VolumeRow] = field(default_factory=list)

    def series(self, matrix: str, mode: str) -> list[VolumeRow]:
        """All node counts of one (matrix, mode), ascending."""
        return sorted(
            (r for r in self.rows if r.matrix == matrix and r.mode == mode),
            key=lambda r: r.n_nodes,
        )

    def render(self) -> str:
        """The volume table."""
        t = Table(
            ["matrix", "mode", "nodes", "ranks", "total MB", "internode MB",
             "msgs", "internode msgs"],
            title="communication volume per MVM vs node count (explains the Fig. 5 knee)",
            float_fmt=".2f",
        )
        for r in self.rows:
            t.add_row([r.matrix, r.mode, r.n_nodes, r.n_ranks, r.total_mb,
                       r.internode_mb, r.messages, r.internode_messages])
        return t.render()


def run_comm_volume(
    scale: str = "small",
    *,
    node_counts: tuple[int, ...] = (1, 2, 4, 6, 8, 16, 32),
    matrices: tuple[str, ...] = ("HMeP", "sAMG"),
    modes: tuple[str, ...] = ("per-ld",),
    max_ranks: int | None = None,
) -> CommVolumeResult:
    """Compute halo volumes for every (matrix, mode, node count)."""
    result = CommVolumeResult()
    for name in matrices:
        A = get_matrix(name, scale).build_cached()
        for mode in modes:
            for n_nodes in node_counts:
                cluster = westmere_cluster(n_nodes)
                nranks = ranks_for_mode(cluster, mode)
                if max_ranks is not None and nranks > max_ranks:
                    continue
                if nranks > A.nrows:
                    continue
                plan = build_halo_plan(
                    A, partition_matrix(A, nranks), with_matrices=False
                )
                ranks_per_node = nranks // n_nodes
                total = 0.0
                internode = 0.0
                msgs = 0
                internode_msgs = 0
                for rh in plan.ranks:
                    src_node = rh.rank // ranks_per_node
                    for dst, count in rh.send_to:
                        nbytes = 8.0 * count
                        total += nbytes
                        msgs += 1
                        if dst // ranks_per_node != src_node:
                            internode += nbytes
                            internode_msgs += 1
                result.rows.append(
                    VolumeRow(
                        matrix=name,
                        mode=mode,
                        n_nodes=n_nodes,
                        n_ranks=nranks,
                        total_mb=total / 1e6,
                        internode_mb=internode / 1e6,
                        messages=msgs,
                        internode_messages=internode_msgs,
                    )
                )
    return result
