"""Workload study: scheduling, placement, and contention under job streams.

Three questions, each answered on the machine configuration that can
actually isolate it:

1. **Scheduling** (FCFS vs EASY backfilling) is compared on the
   Westmere *fat tree*: with exclusively-allocated nodes and a
   nonblocking network, job runtimes are policy-independent there, so
   utilisation differences are purely packing differences — the quantity
   a scheduler controls.  On the reference trace EASY backfills the
   short narrow jobs into the nodes the head-blocked wide job cannot
   use, and its utilisation is strictly higher (asserted by
   ``workload_guard`` and the CLI smoke mode).
2. **Placement** (first-fit vs random vs node-aware) is compared on the
   Cray *torus* under heavy background load
   (:data:`PLACEMENT_BACKGROUND_LOAD`): torus demand is bytes × hops on
   a shared link pool, so scattering a job's ranks (random) multiplies
   its pressure on every co-running job, while node-aware's compact
   allocations keep hop counts — and p99 response latency — down.
3. **Contention**: one communication-heavy job is timed alone and then
   co-running with an identical twin on a small, heavily loaded torus
   (:data:`CONTENTION_BACKGROUND_LOAD`); each co-running copy must
   observe measurably lower effective bandwidth than the solo run —
   the direct evidence that jobs in the cluster engine share wires
   rather than being timed in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.presets import cray_xe6_cluster, westmere_cluster
from repro.machine.topology import ClusterSpec
from repro.util import Table
from repro.workload.engine import JobRecord, WorkloadResult, run_workload
from repro.workload.report import compare_policies, policy_table, render_report
from repro.workload.streams import Job, estimate_walltime, reference_trace, synthetic_stream

__all__ = [
    "REFERENCE_N_NODES",
    "PLACEMENT_BACKGROUND_LOAD",
    "CONTENTION_BACKGROUND_LOAD",
    "scheduling_cluster",
    "placement_cluster",
    "contention_cluster",
    "contention_job",
    "run_contention_probe",
    "WorkloadStudy",
    "run_workload_study",
    "smoke_checks",
]

#: Nodes of the reference machine the trace was crafted for.
REFERENCE_N_NODES = 16

#: Torus background load of the placement study.  High enough that the
#: shared link pool is the bottleneck during the reference trace's
#: communication band — the regime where rank scattering hurts.
PLACEMENT_BACKGROUND_LOAD = 0.85

#: Torus background load of the contention probe (deliberately extreme:
#: the remaining pool is comparable to one job's halo demand).
CONTENTION_BACKGROUND_LOAD = 0.95


def scheduling_cluster(n_nodes: int = REFERENCE_N_NODES) -> ClusterSpec:
    """Fat-tree machine for scheduler comparisons (no cross-job network
    contention with exclusive nodes → policy-independent runtimes)."""
    return westmere_cluster(n_nodes)


def placement_cluster(n_nodes: int = REFERENCE_N_NODES) -> ClusterSpec:
    """Loaded-torus machine for placement comparisons."""
    return cray_xe6_cluster(n_nodes, background_load=PLACEMENT_BACKGROUND_LOAD)


def contention_cluster(n_nodes: int = 4) -> ClusterSpec:
    """Small, heavily loaded torus for the link-sharing probe."""
    return cray_xe6_cluster(n_nodes, background_load=CONTENTION_BACKGROUND_LOAD)


def contention_job(job_id: int, *, submit: float = 0.0) -> Job:
    """One communication-heavy CG job (halo ≈ whole vector, 24 sweeps)."""
    return Job(
        job_id=job_id,
        name=f"contender-{job_id}",
        solver="cg",
        submit=submit,
        n_nodes=2,
        nrows=2048,
        nnzr=12.0,
        iterations=24,
        walltime=estimate_walltime("cg", 2048, 12.0, 24, 2, overestimate=2.0),
        seed=42 + job_id,
    )


def run_contention_probe() -> tuple[JobRecord, list[JobRecord]]:
    """Time the contention job alone, then two copies co-running.

    Returns ``(alone, [co_0, co_1])``.  Both runs use first-fit
    placement on :func:`contention_cluster`, so the two jobs occupy
    disjoint node pairs and meet only on the shared torus link pool —
    any effective-bandwidth loss is pure link contention.
    """
    alone = run_workload(
        [contention_job(0)], contention_cluster(), scheduler="fcfs", placement="first-fit"
    )
    shared = run_workload(
        [contention_job(0), contention_job(1)],
        contention_cluster(),
        scheduler="fcfs",
        placement="first-fit",
    )
    return alone.records[0], list(shared.records)


@dataclass
class WorkloadStudy:
    """Everything the ``repro workload`` experiment produces."""

    stream: WorkloadResult
    scheduling: dict[tuple[str, str], WorkloadResult]
    placement: dict[tuple[str, str], WorkloadResult]
    contention_alone: JobRecord
    contention_shared: list[JobRecord] = field(default_factory=list)

    def scheduling_table(self) -> Table:
        """FCFS vs EASY on the fat tree (reference trace)."""
        t = policy_table(self.scheduling)
        t.title = "scheduler comparison (reference trace, fat tree — fixed runtimes)"
        return t

    def placement_table(self) -> Table:
        """Placement policies on the loaded torus (reference trace)."""
        t = policy_table(self.placement)
        t.title = (
            "placement comparison (reference trace, torus at "
            f"{PLACEMENT_BACKGROUND_LOAD:.0%} background load)"
        )
        return t

    def contention_table(self) -> Table:
        """Solo vs co-running effective bandwidth of the probe job."""
        t = Table(
            ["configuration", "runtime ms", "effective GB/s", "vs alone"],
            title=(
                "torus link contention (two co-running jobs, "
                f"{CONTENTION_BACKGROUND_LOAD:.0%} background load)"
            ),
            float_fmt=".3f",
        )
        solo_bw = self.contention_alone.effective_bandwidth
        t.add_row(["alone", self.contention_alone.runtime * 1e3, solo_bw / 1e9, 1.0])
        for r in self.contention_shared:
            t.add_row(
                [
                    f"co-running ({r.job.name})",
                    r.runtime * 1e3,
                    r.effective_bandwidth / 1e9,
                    r.effective_bandwidth / solo_bw if solo_bw else 0.0,
                ]
            )
        return t

    def render(self) -> str:
        """The full study as text."""
        return "\n\n".join(
            [
                render_report(self.stream),
                self.scheduling_table().render(),
                self.placement_table().render(),
                self.contention_table().render(),
            ]
        )


def smoke_checks(study: WorkloadStudy) -> list[tuple[str, bool, str]]:
    """The subsystem's acceptance checks as ``(name, passed, detail)`` rows.

    Shared by ``repro workload --smoke`` (CI gate), the bench suite's
    ``workload_guard``, and the test suite, so all three assert the same
    properties on the same reference configurations.
    """
    checks: list[tuple[str, bool, str]] = []

    fcfs = study.scheduling[("fcfs", "first-fit")]
    easy = study.scheduling[("easy", "first-fit")]
    u_f, u_e = fcfs.utilisation(), easy.utilisation()
    checks.append(
        (
            "easy-backfilling-utilisation",
            u_e > u_f,
            f"EASY {u_e:.4f} vs FCFS {u_f:.4f} (fat tree, reference trace)",
        )
    )

    rand = study.placement[("easy", "random")]
    aware = study.placement[("easy", "node-aware")]
    p99_r = rand.summary()["p99"]
    p99_a = aware.summary()["p99"]
    checks.append(
        (
            "node-aware-p99-latency",
            p99_a < p99_r,
            f"node-aware {p99_a * 1e3:.3f} ms vs random {p99_r * 1e3:.3f} ms (loaded torus)",
        )
    )
    b_r, b_a = rand.interconnect_bytes(), aware.interconnect_bytes()
    checks.append(
        (
            "node-aware-wire-bytes",
            b_a <= b_r,
            f"node-aware {b_a / 1e6:.2f} MB vs random {b_r / 1e6:.2f} MB",
        )
    )

    solo = study.contention_alone.effective_bandwidth
    shared = [r.effective_bandwidth for r in study.contention_shared]
    checks.append(
        (
            "shared-link-contention",
            bool(shared) and all(bw < solo for bw in shared),
            f"alone {solo / 1e9:.3f} GB/s vs co-running "
            + " / ".join(f"{bw / 1e9:.3f}" for bw in shared)
            + " GB/s",
        )
    )
    return checks


def run_workload_study(
    *,
    n_jobs: int = 100,
    seed: int = 0,
    arrival: str = "poisson",
    rate: float = 1.0e5,
    jobs: list[Job] | None = None,
) -> WorkloadStudy:
    """Run the headline stream plus the three reference comparisons.

    ``jobs`` overrides the synthetic headline stream (trace replay); the
    scheduling/placement/contention parts always use the fixed reference
    trace and probe so their guard properties are deterministic.
    """
    if jobs is None:
        jobs = synthetic_stream(n_jobs, seed=seed, arrival=arrival, rate=rate)
    stream = run_workload(
        jobs, placement_cluster(), scheduler="easy", placement="node-aware", seed=seed
    )
    trace = reference_trace()
    scheduling = compare_policies(
        trace, scheduling_cluster, schedulers=("fcfs", "easy"), placements=("first-fit",)
    )
    placement = compare_policies(
        trace,
        placement_cluster,
        schedulers=("easy",),
        placements=("first-fit", "random", "node-aware"),
        seed=11,
    )
    alone, shared = run_contention_probe()
    return WorkloadStudy(
        stream=stream,
        scheduling=scheduling,
        placement=placement,
        contention_alone=alone,
        contention_shared=shared,
    )
