"""Shared calibration constants for the paper-reproduction experiments.

Everything that ties the reduced-scale reproduction to the paper's
full-scale setup is collected here, with the reasoning:

* ``KAPPA`` — the RHS cache-reload parameter per matrix on the Intel
  systems.  HMeP = 2.5 and HMEp = 3.79 are *measured values quoted in
  the paper* (Sect. 2).  sAMG's κ is not printed; its banded, low-Nnzr
  structure reloads little of the RHS, and κ = 1.0 makes the single-node
  model consistent with the ~120 GFlop/s @ 32 nodes of Fig. 6.
* ``REDUCED_EAGER_THRESHOLD`` — the experiments run matrices ~15x
  smaller than the paper's (a 6.2M-row Hamiltonian needs ~35 GB to
  assemble here).  Halo messages shrink proportionally: the paper's
  multi-hundred-kB rendezvous messages become a few kB, which a real
  MPI would send eagerly, hiding the progress problem the paper is
  about.  Scaling the library's eager threshold by the same factor
  (16 KiB → 1 KiB) restores the correct protocol regime — a documented
  substitution, not a tuning knob.
* ``PAPER_FIG3A`` etc. — the numbers printed in the paper, used for
  side-by-side "paper vs ours" tables.
"""

from __future__ import annotations

__all__ = [
    "KAPPA",
    "REDUCED_EAGER_THRESHOLD",
    "PAPER_FIG3A_PERF",
    "PAPER_FIG3A_NODE_PERF",
    "PAPER_STREAM_SOCKET",
    "PAPER_SPMV_BANDWIDTH",
    "PAPER_KAPPA_HMEP",
    "PAPER_KAPPA_HMEP_BAD",
    "PAPER_NNZR",
    "DEFAULT_NODE_COUNTS",
    "TORUS_MESSAGE_OVERHEAD",
    "kappa_for",
]

#: Cache-reload parameter κ (bytes per inner-loop iteration) per matrix.
KAPPA: dict[str, float] = {"HMeP": 2.5, "HMEp": 3.79, "sAMG": 1.0}

#: Eager/rendezvous cutoff used with the reduced-scale matrices (bytes).
REDUCED_EAGER_THRESHOLD = 1024

#: Fig. 3(a) annotations: Nehalem EP spMVM GFlop/s at 1..4 cores.
PAPER_FIG3A_PERF = (0.91, 1.50, 1.95, 2.25)

#: Fig. 3(a): full Nehalem node (2 sockets).
PAPER_FIG3A_NODE_PERF = 4.29

#: Sect. 2: STREAM triad on one Nehalem socket (GB/s).
PAPER_STREAM_SOCKET = 21.2

#: Sect. 2: bandwidth drawn by the spMVM on one socket (GB/s).
PAPER_SPMV_BANDWIDTH = 18.1

#: Sect. 2: measured κ for the two Hamiltonian orderings.
PAPER_KAPPA_HMEP = 2.5
PAPER_KAPPA_HMEP_BAD = 3.79

#: Average nonzeros per row of the paper's matrices.
PAPER_NNZR = {"HMeP": 15.0, "HMEp": 15.0, "sAMG": 7.0}

#: Node counts of the strong-scaling figures.
DEFAULT_NODE_COUNTS = (1, 2, 4, 8, 16, 24, 32)

#: Per-message NIC occupancy on the loaded Gemini torus (seconds).
#: The communication-plan experiments run the torus with the NIC's
#: injection-rate limit switched on (``message_overhead``, see
#: :class:`repro.machine.network.Interconnect`): a Gemini NIC sustains
#: roughly 1-2 M MPI messages/s, and under the same production load
#: that motivates ``background_load=0.35`` the effective per-message
#: cost sits at the slow end.  2 us/message reproduces the pure-MPI
#: message-rate wall the node-aware plan is designed to remove; the
#: default presets keep 0 (bytes-only model) so every other experiment
#: is unchanged.
TORUS_MESSAGE_OVERHEAD = 2.0e-6


def kappa_for(matrix_name: str) -> float:
    """κ for a registry matrix name (0 for unknown matrices)."""
    return KAPPA.get(matrix_name, 0.0)
