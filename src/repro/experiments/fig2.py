"""Fig. 2: node topologies of the two benchmark systems.

ASCII renderings of the dual-Westmere node (two NUMA LDs) and the dual
Magny Cours node (four NUMA LDs), plus the derived quantities the paper
reads off them (cores per LD, memory channels → bandwidth ratio 8/6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.presets import magny_cours_node, westmere_ep_node
from repro.machine.topology import NodeSpec, render_node_ascii

__all__ = ["Fig2Result", "run_fig2"]


@dataclass
class Fig2Result:
    """The two node specs and their renderings."""

    westmere: NodeSpec
    magny_cours: NodeSpec

    def render(self) -> str:
        """Both topology drawings plus the comparison facts."""
        parts = [
            render_node_ascii(self.westmere),
            "",
            render_node_ascii(self.magny_cours),
            "",
            self.comparison_text(),
        ]
        return "\n".join(parts)

    def comparison_text(self) -> str:
        """The Sect. 1.3.2 cross-checks as one line each."""
        w, m = self.westmere, self.magny_cours
        ratio = m.stream_bandwidth / w.stream_bandwidth
        return "\n".join(
            [
                f"Westmere node: {w.n_domains} NUMA LDs x {w.cores_per_domain()} cores (SMT {w.smt_per_core})",
                f"Magny Cours node: {m.n_domains} NUMA LDs x {m.cores_per_domain()} cores (SMT {m.smt_per_core})",
                f"node STREAM bandwidth ratio AMD/Intel = {ratio:.2f} "
                f"(theoretical channel ratio 8/6 = {8 / 6:.2f})",
            ]
        )


def run_fig2() -> Fig2Result:
    """Instantiate the two calibrated node topologies."""
    return Fig2Result(westmere=westmere_ep_node(), magny_cours=magny_cours_node())
