"""Fig. 4: schematic timeline views of the three kernel versions.

The paper draws these by hand; we generate them from actual simulator
traces of a two-node run, one Gantt chart per scheme.  The task-mode
chart shows the separate communication actor overlapping the compute
threads' local spMVM; the naive-overlap chart shows the Waitall block
where the transfer really happens.

Beyond the pictures, the structured event stream lets us *measure* the
overlap: ``rendezvous_bytes_during_local`` counts, per scheme, the
rendezvous bytes that moved while one of the message's own endpoints was
executing its local spMVM.  With 2010-era progress semantics that number
is exactly 0 for both vector modes (the progress gate is closed while
the ranks compute) and equals the full per-sweep halo volume for task
mode — the paper's Sect. 3 claim, validated from trace data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.halo import build_halo_plan
from repro.core.runner import simulate_from_plan
from repro.experiments.calibration import KAPPA, REDUCED_EAGER_THRESHOLD
from repro.machine.affinity import ranks_for_mode
from repro.machine.presets import westmere_cluster
from repro.matrices.collection import get_matrix
from repro.obs import overlap_bytes_with_phase, transfer_segments
from repro.sparse.partition import partition_matrix

__all__ = ["Fig4Result", "run_fig4"]


@dataclass
class Fig4Result:
    """One rendered timeline per scheme plus the phase totals."""

    charts: dict[str, str]
    makespans: dict[str, float]
    overlap_fraction: dict[str, float]
    #: Rendezvous bytes moved while an endpoint ran its local spMVM.
    rendezvous_bytes_during_local: dict[str, float] = field(default_factory=dict)
    #: Total rendezvous bytes per sweep (denominator for the above).
    rendezvous_bytes_total: dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        """All three Gantt charts."""
        parts = []
        for scheme, chart in self.charts.items():
            parts.append(chart)
            line = (
                f"   makespan {self.makespans[scheme] * 1e3:.3f} ms, "
                f"comm/compute overlap {self.overlap_fraction[scheme]:.0%}"
            )
            if scheme in self.rendezvous_bytes_during_local:
                line += (
                    f", rendezvous bytes during local spMVM "
                    f"{self.rendezvous_bytes_during_local[scheme]:.0f}"
                    f"/{self.rendezvous_bytes_total.get(scheme, 0.0):.0f} B"
                )
            parts.append(line + "\n")
        return "\n".join(parts)


def run_fig4(
    scale: str = "small", n_nodes: int = 2, *, async_progress: bool = False
) -> Fig4Result:
    """Trace one MVM of each scheme on a small two-node configuration."""
    A = get_matrix("HMeP", scale).build_cached()
    cluster = westmere_cluster(n_nodes)
    nranks = ranks_for_mode(cluster, "per-ld")
    plan = build_halo_plan(A, partition_matrix(A, nranks), with_matrices=False)
    charts: dict[str, str] = {}
    makespans: dict[str, float] = {}
    overlap: dict[str, float] = {}
    rdv_during_local: dict[str, float] = {}
    rdv_total: dict[str, float] = {}
    titles = {
        "no_overlap": "(a) Vector mode, no overlap",
        "naive_overlap": "(b) Vector mode, naive overlap (nonblocking MPI)",
        "task_mode": "(c) Task mode, explicit overlap (dedicated comm thread)",
    }
    for scheme in ("no_overlap", "naive_overlap", "task_mode"):
        r = simulate_from_plan(
            plan,
            cluster,
            mode="per-ld",
            scheme=scheme,
            kappa=KAPPA["HMeP"],
            iterations=1,
            eager_threshold=REDUCED_EAGER_THRESHOLD,
            async_progress=async_progress,
            trace=True,
        )
        assert r.trace is not None
        rdv_during_local[scheme] = overlap_bytes_with_phase(r.trace, "local spMVM")
        rdv_total[scheme] = sum(
            s.nbytes for s in transfer_segments(r.trace, protocol="rendezvous")
        )
        # restrict the chart to rank 0's actors for legibility
        rank0 = type(r.trace)(
            [iv for iv in r.trace.intervals if iv.actor.startswith("rank0")]
        )
        charts[scheme] = rank0.render_gantt(title=titles[scheme])
        makespans[scheme] = r.seconds_per_mvm
        # overlap: time the comm actor's Waitall shares with compute work
        comm_ivs = [
            iv for iv in r.trace.intervals
            if iv.actor in ("rank0", "rank0:comm") and iv.label == "MPI_Waitall"
        ]
        compute_ivs = [
            iv for iv in r.trace.intervals
            if iv.actor == "rank0" and "spMVM" in iv.label
        ]
        shared = 0.0
        total_comm = sum(iv.duration for iv in comm_ivs) or 1e-300
        for c in comm_ivs:
            for w in compute_ivs:
                shared += max(0.0, min(c.end, w.end) - max(c.start, w.start))
        overlap[scheme] = min(1.0, shared / total_comm)
    return Fig4Result(
        charts=charts,
        makespans=makespans,
        overlap_fraction=overlap,
        rendezvous_bytes_during_local=rdv_during_local,
        rendezvous_bytes_total=rdv_total,
    )
