"""Shared strong-scaling harness behind Figs. 5 and 6.

Sweeps node counts × hybrid modes × schemes for one matrix on the
Westmere/QDR cluster (plus the best-variant Cray XE6 reference curve)
and packages the series with the efficiency bookkeeping the paper
annotates (50 % efficiency points, best single-node baseline).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.efficiency import fifty_percent_point, parallel_efficiency
from repro.core.halo import build_halo_plan
from repro.core.runner import SimulationResult, simulate_from_plan
from repro.experiments.calibration import DEFAULT_NODE_COUNTS, REDUCED_EAGER_THRESHOLD
from repro.machine.affinity import ranks_for_mode
from repro.machine.presets import cray_xe6_cluster, westmere_cluster
from repro.machine.topology import ClusterSpec
from repro.sparse.csr import CSRMatrix
from repro.sparse.partition import partition_matrix
from repro.util import Table, ascii_chart

__all__ = ["ScalingPoint", "ScalingStudy", "run_scaling_study"]

_SCHEMES = ("no_overlap", "naive_overlap", "task_mode")
_MODES = ("per-core", "per-ld", "per-node")


@dataclass(frozen=True)
class ScalingPoint:
    """One (mode, scheme, nodes) measurement."""

    mode: str
    scheme: str
    n_nodes: int
    gflops: float
    seconds_per_mvm: float
    comm_bytes: float

    @property
    def key(self) -> tuple[str, str]:
        """(mode, scheme) series identifier."""
        return (self.mode, self.scheme)


@dataclass
class ScalingStudy:
    """The full sweep for one matrix."""

    matrix_name: str
    nnz: int
    points: list[ScalingPoint] = field(default_factory=list)
    cray_best: list[ScalingPoint] = field(default_factory=list)

    def series(self, mode: str, scheme: str) -> tuple[list[int], list[float]]:
        """(nodes, GFlop/s) of one curve, node-count order."""
        pts = sorted(
            (p for p in self.points if p.mode == mode and p.scheme == scheme),
            key=lambda p: p.n_nodes,
        )
        return [p.n_nodes for p in pts], [p.gflops for p in pts]

    def best_single_node(self) -> float:
        """Best 1-node performance over all variants (the efficiency baseline)."""
        singles = [p.gflops for p in self.points if p.n_nodes == 1]
        if not singles:
            raise ValueError("study contains no single-node points")
        return max(singles)

    def gflops_at(self, mode: str, scheme: str, n_nodes: int) -> float:
        """Performance of one configuration (KeyError if absent)."""
        for p in self.points:
            if p.mode == mode and p.scheme == scheme and p.n_nodes == n_nodes:
                return p.gflops
        raise KeyError((mode, scheme, n_nodes))

    def fifty_percent(self, mode: str, scheme: str) -> float | None:
        """50 % parallel-efficiency point of one curve."""
        nodes, gf = self.series(mode, scheme)
        return fifty_percent_point(nodes, gf, self.best_single_node())

    def render(self) -> str:
        """Three panel tables (one per hybrid mode) plus the charts."""
        base = self.best_single_node()
        parts = []
        for mode in _MODES:
            t = Table(
                ["scheme", "nodes", "GFlop/s", "efficiency", "50% point"],
                title=f"--- one MPI process {mode.replace('per-', 'per ')} ---",
                float_fmt=".2f",
            )
            chart_series = {}
            for scheme in _SCHEMES:
                nodes, gf = self.series(mode, scheme)
                if not nodes:
                    continue
                fp = self.fifty_percent(mode, scheme)
                for n, g in zip(nodes, gf):
                    t.add_row(
                        [
                            scheme,
                            n,
                            g,
                            parallel_efficiency(g, n, base),
                            fp if fp is not None else float("nan"),
                        ]
                    )
                chart_series[scheme] = list(zip(map(float, nodes), gf))
            parts.append(t.render())
            parts.append(
                ascii_chart(
                    chart_series,
                    title=f"{self.matrix_name}: GFlop/s vs nodes ({mode})",
                    xlabel="nodes",
                    ylabel="GFlop/s",
                    height=14,
                    y_min=0.0,
                )
            )
        if self.cray_best:
            t = Table(
                ["nodes", "GFlop/s", "variant"],
                title="--- best variant on Cray XE6 (reference) ---",
                float_fmt=".2f",
            )
            for p in sorted(self.cray_best, key=lambda p: p.n_nodes):
                t.add_row([p.n_nodes, p.gflops, f"{p.scheme}/{p.mode}"])
            parts.append(t.render())
        return "\n\n".join(parts)


def _simulate(
    A: CSRMatrix,
    cluster: ClusterSpec,
    mode: str,
    scheme: str,
    kappa: float,
    *,
    iterations: int,
    eager_threshold: int,
    plan_cache: dict,
) -> SimulationResult:
    nranks = ranks_for_mode(cluster, mode)
    key = (cluster.name, nranks)
    plan = plan_cache.get(key)
    if plan is None:
        plan = build_halo_plan(A, partition_matrix(A, nranks), with_matrices=False)
        plan_cache[key] = plan
    return simulate_from_plan(
        plan,
        cluster,
        mode=mode,
        scheme=scheme,
        kappa=kappa,
        iterations=iterations,
        eager_threshold=eager_threshold,
    )


def run_scaling_study(
    A: CSRMatrix,
    matrix_name: str,
    kappa: float,
    *,
    node_counts: tuple[int, ...] = DEFAULT_NODE_COUNTS,
    modes: tuple[str, ...] = _MODES,
    schemes: tuple[str, ...] = _SCHEMES,
    include_cray: bool = True,
    eager_threshold: int = REDUCED_EAGER_THRESHOLD,
    max_ranks: int | None = None,
) -> ScalingStudy:
    """Run the full Figs. 5/6 sweep for one matrix.

    ``max_ranks`` skips configurations whose rank count exceeds it (the
    per-core panel explodes to 384 ranks at 32 nodes; tests cap this).
    Iteration counts adapt: large rank counts run a single steady-state
    sweep, small ones two.
    """
    study = ScalingStudy(matrix_name=matrix_name, nnz=A.nnz)
    plan_cache: dict = {}
    for n_nodes in node_counts:
        cluster = westmere_cluster(n_nodes)
        for mode in modes:
            nranks = ranks_for_mode(cluster, mode)
            if max_ranks is not None and nranks > max_ranks:
                continue
            if nranks > A.nrows:
                continue
            iterations = 1 if nranks >= 128 else 2
            for scheme in schemes:
                r = _simulate(
                    A, cluster, mode, scheme, kappa,
                    iterations=iterations,
                    eager_threshold=eager_threshold,
                    plan_cache=plan_cache,
                )
                study.points.append(
                    ScalingPoint(
                        mode=mode,
                        scheme=scheme,
                        n_nodes=n_nodes,
                        gflops=r.gflops,
                        seconds_per_mvm=r.seconds_per_mvm,
                        comm_bytes=r.comm_bytes_per_mvm,
                    )
                )
        if include_cray:
            cray = cray_xe6_cluster(n_nodes)
            best: ScalingPoint | None = None
            # the Cray has no SMT: task mode uses a dedicated core; the
            # reference curve is the best of the hybrid variants there
            for mode in ("per-ld", "per-node"):
                nranks = ranks_for_mode(cray, mode)
                if max_ranks is not None and nranks > max_ranks:
                    continue
                if nranks > A.nrows:
                    continue
                for scheme in ("no_overlap", "task_mode"):
                    r = _simulate(
                        A, cray, mode, scheme, kappa,
                        iterations=2,
                        eager_threshold=eager_threshold,
                        plan_cache=plan_cache,
                    )
                    p = ScalingPoint(
                        mode=mode,
                        scheme=scheme,
                        n_nodes=n_nodes,
                        gflops=r.gflops,
                        seconds_per_mvm=r.seconds_per_mvm,
                        comm_bytes=r.comm_bytes_per_mvm,
                    )
                    if best is None or p.gflops > best.gflops:
                        best = p
            if best is not None:
                study.cray_best.append(best)
    if not math.isfinite(study.best_single_node()):
        raise RuntimeError("scaling study produced no finite single-node baseline")
    return study
