"""Load-balancing analysis (the paper's announced future work).

Footnote 2 of the paper concedes that "it is generally difficult to
establish good load balancing for computation and communication at the
same time", and Sect. 5 defers "a more complete investigation of load
balancing effects" to future work.  This experiment performs that
investigation on the reproduction:

for each matrix × rank count × partition strategy it reports

* the computational imbalance (max/mean nonzeros per rank),
* the communication imbalance (max/mean bytes per rank),
* the simulated performance —

making the compute/communication balancing tension quantitative.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.halo import build_halo_plan
from repro.core.runner import simulate_from_plan
from repro.experiments.calibration import KAPPA, REDUCED_EAGER_THRESHOLD
from repro.machine.affinity import ranks_for_mode
from repro.machine.presets import westmere_cluster
from repro.matrices.collection import get_matrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.partition import partition_matrix
from repro.util import Table

__all__ = ["BalanceRow", "LoadBalanceResult", "run_load_balance"]


@dataclass(frozen=True)
class BalanceRow:
    """One (matrix, strategy, nodes) measurement."""

    matrix: str
    strategy: str
    n_nodes: int
    n_ranks: int
    nnz_imbalance: float
    comm_imbalance: float
    gflops: float


@dataclass
class LoadBalanceResult:
    """All measurements of the study."""

    rows: list[BalanceRow] = field(default_factory=list)

    def render(self) -> str:
        """The comparison table."""
        t = Table(
            ["matrix", "strategy", "nodes", "ranks", "nnz imbalance",
             "comm imbalance", "GFlop/s"],
            title="load balancing: computation vs communication (paper footnote 2)",
            float_fmt=".3f",
        )
        for r in self.rows:
            t.add_row([r.matrix, r.strategy, r.n_nodes, r.n_ranks,
                       r.nnz_imbalance, r.comm_imbalance, r.gflops])
        return t.render()

    def get(self, matrix: str, strategy: str, n_nodes: int) -> BalanceRow:
        """Lookup of one measurement."""
        for r in self.rows:
            if (r.matrix, r.strategy, r.n_nodes) == (matrix, strategy, n_nodes):
                return r
        raise KeyError((matrix, strategy, n_nodes))


def _imbalances(plan) -> tuple[float, float]:
    nnz = np.asarray([r.nnz for r in plan.ranks], dtype=float)
    comm = np.asarray([r.send_bytes + r.recv_bytes for r in plan.ranks], dtype=float)
    nnz_imb = float(nnz.max() / nnz.mean()) if nnz.mean() > 0 else 1.0
    comm_imb = float(comm.max() / comm.mean()) if comm.mean() > 0 else 1.0
    return nnz_imb, comm_imb


def run_load_balance(
    scale: str = "small",
    *,
    node_counts: tuple[int, ...] = (4, 8),
    matrices: tuple[str, ...] = ("HMeP", "sAMG"),
    scheme: str = "task_mode",
) -> LoadBalanceResult:
    """Run the load-balance study at the given matrix scale."""
    result = LoadBalanceResult()
    for name in matrices:
        A: CSRMatrix = get_matrix(name, scale).build_cached()
        for n_nodes in node_counts:
            cluster = westmere_cluster(n_nodes)
            nranks = ranks_for_mode(cluster, "per-ld")
            for strategy in ("nnz", "rows"):
                plan = build_halo_plan(
                    A, partition_matrix(A, nranks, strategy=strategy),
                    with_matrices=False,
                )
                nnz_imb, comm_imb = _imbalances(plan)
                sim = simulate_from_plan(
                    plan, cluster, mode="per-ld", scheme=scheme,
                    kappa=KAPPA.get(name, 0.0),
                    eager_threshold=REDUCED_EAGER_THRESHOLD,
                )
                result.rows.append(
                    BalanceRow(
                        matrix=name,
                        strategy=strategy,
                        n_nodes=n_nodes,
                        n_ranks=nranks,
                        nnz_imbalance=nnz_imb,
                        comm_imbalance=comm_imb,
                        gflops=sim.gflops,
                    )
                )
    return result
