"""Fig. 5: strong scaling of the HMeP matrix on the Westmere cluster.

The communication-bound case.  Expected shape (paper Sect. 4):

* per-core panel: naive overlap never beats no-overlap (nonblocking MPI
  does not progress); task mode (comm thread on the SMT core) gives a
  noticeable boost;
* per-LD / per-node panels: task mode's advantage grows — these reach
  the highest node counts at ≥ 50 % parallel efficiency;
* hybrid vector modes already out-scale pure MPI (message aggregation);
* a universal scalability knee around ~6-8 nodes (the strong decrease
  of total communication volume at small node counts flattens out);
* the Cray XE6 reference falls behind Westmere task mode at scale.
"""

from __future__ import annotations

from repro.experiments.calibration import DEFAULT_NODE_COUNTS, KAPPA
from repro.experiments.scaling import ScalingStudy, run_scaling_study
from repro.matrices.collection import get_matrix

__all__ = ["run_fig5"]


def run_fig5(
    scale: str = "medium",
    *,
    node_counts: tuple[int, ...] = DEFAULT_NODE_COUNTS,
    max_ranks: int | None = None,
    include_cray: bool = True,
) -> ScalingStudy:
    """Run the Fig. 5 sweep on the HMeP matrix at the given scale."""
    A = get_matrix("HMeP", scale).build_cached()
    return run_scaling_study(
        A,
        f"HMeP ({scale})",
        KAPPA["HMeP"],
        node_counts=node_counts,
        max_ranks=max_ranks,
        include_cray=include_cray,
    )
