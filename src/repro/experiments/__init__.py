"""Per-figure/table reproduction harnesses (see DESIGN.md experiment index)."""

from repro.experiments.calibration import (
    DEFAULT_NODE_COUNTS,
    KAPPA,
    REDUCED_EAGER_THRESHOLD,
    TORUS_MESSAGE_OVERHEAD,
    kappa_for,
)
from repro.experiments.comm_plans import (
    CommPlansResult,
    PlanScalingPoint,
    PlanStatRow,
    run_comm_plans,
)
from repro.experiments.comm_volume import CommVolumeResult, VolumeRow, run_comm_volume
from repro.experiments.fig1 import Fig1Result, run_fig1
from repro.experiments.fig2 import Fig2Result, run_fig2
from repro.experiments.fig3 import Fig3Result, NodeScalingRow, run_fig3
from repro.experiments.fig4 import Fig4Result, run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.kappa_table import KappaTableResult, run_kappa_table
from repro.experiments.kappa_prediction import KappaPredictionResult, run_kappa_prediction
from repro.experiments.load_balance import BalanceRow, LoadBalanceResult, run_load_balance
from repro.experiments.progress_probe import ProbeResult, run_progress_probe
from repro.experiments.scaling import ScalingPoint, ScalingStudy, run_scaling_study
from repro.experiments.workload import WorkloadStudy, run_workload_study

__all__ = [
    "KAPPA",
    "REDUCED_EAGER_THRESHOLD",
    "DEFAULT_NODE_COUNTS",
    "kappa_for",
    "Fig1Result",
    "run_fig1",
    "Fig2Result",
    "run_fig2",
    "Fig3Result",
    "NodeScalingRow",
    "run_fig3",
    "Fig4Result",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "KappaTableResult",
    "run_kappa_table",
    "BalanceRow",
    "LoadBalanceResult",
    "run_load_balance",
    "KappaPredictionResult",
    "run_kappa_prediction",
    "TORUS_MESSAGE_OVERHEAD",
    "CommPlansResult",
    "PlanScalingPoint",
    "PlanStatRow",
    "run_comm_plans",
    "CommVolumeResult",
    "VolumeRow",
    "run_comm_volume",
    "ProbeResult",
    "run_progress_probe",
    "ScalingPoint",
    "ScalingStudy",
    "run_scaling_study",
    "WorkloadStudy",
    "run_workload_study",
]
