"""Predicting the paper's κ values from matrix structure alone.

The paper measures κ = 2.5 (HMeP) and κ = 3.79 (HMEp) on the Nehalem
socket and explains them qualitatively ("limited cache capacity",
"this ratio gets worse if the matrix bandwidth increases").  Here the
LRU cache model of :mod:`repro.model.cache` turns that explanation into
a prediction.

Scaling: the reproduction matrices are smaller than the paper's, so the
cache is scaled to keep the governing ratio — cache capacity over RHS
footprint — equal to the paper's (8 MB L3 against a 6 201 600 x 8 B
RHS, i.e. ≈ 0.16).  With that single scaling the model must reproduce
both the *ordering* (HMEp worse) and the *magnitudes* of the measured
values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.calibration import PAPER_KAPPA_HMEP, PAPER_KAPPA_HMEP_BAD
from repro.matrices.collection import get_matrix
from repro.model.cache import CacheConfig, KappaPrediction, simulate_rhs_traffic
from repro.util import Table

__all__ = ["KappaPredictionResult", "run_kappa_prediction"]

#: The paper's cache-to-RHS ratio: 8 MB L3 / (6 201 600 rows x 8 B).
_PAPER_CACHE_BYTES = 8 * 1024 * 1024
_PAPER_DIM = 6_201_600


@dataclass
class KappaPredictionResult:
    """Predicted vs measured κ for both Hamiltonian orderings."""

    scale: str
    cache_bytes: int
    predictions: dict[str, KappaPrediction]
    paper_values: dict[str, float]

    def render(self) -> str:
        """Comparison table."""
        t = Table(
            ["ordering", "predicted κ", "paper κ", "miss rate", "reload fraction"],
            title=(
                f"κ prediction from the LRU cache model "
                f"({self.scale} scale, cache scaled to {self.cache_bytes // 1024} KiB)"
            ),
            float_fmt=".2f",
        )
        for name, pred in self.predictions.items():
            t.add_row(
                [
                    name,
                    pred.kappa,
                    self.paper_values.get(name, float("nan")),
                    pred.miss_rate,
                    pred.reloads / max(1, pred.misses),
                ]
            )
        return t.render()


def run_kappa_prediction(
    scale: str = "small", *, rhs_cache_fraction: float = 0.5
) -> KappaPredictionResult:
    """Run the cache simulation for both orderings at the given scale."""
    predictions: dict[str, KappaPrediction] = {}
    cache_bytes = _PAPER_CACHE_BYTES
    for name in ("HMeP", "HMEp"):
        A = get_matrix(name, scale).build_cached()
        cache_bytes = max(4096, int(_PAPER_CACHE_BYTES * A.nrows / _PAPER_DIM))
        config = CacheConfig(
            capacity_bytes=cache_bytes, rhs_cache_fraction=rhs_cache_fraction
        )
        predictions[name] = simulate_rhs_traffic(A, config, sample_rows=100_000)
    return KappaPredictionResult(
        scale=scale,
        cache_bytes=cache_bytes,
        predictions=predictions,
        paper_values={"HMeP": PAPER_KAPPA_HMEP, "HMEp": PAPER_KAPPA_HMEP_BAD},
    )
