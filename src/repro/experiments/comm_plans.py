"""Direct vs node-aware communication plans (repro.comm) across machines.

Two parts:

1. **Plan accounting** — for HMeP and sAMG on both machine presets
   (Westmere/fat-tree and Magny Cours/torus), reduce the direct and the
   node-aware lowering of the same halo plan to their message counts,
   injected inter-node bytes, worst per-NIC load and duplicate factor
   (:func:`repro.comm.plan_stats`).  No simulation — this is pure
   bookkeeping from the partitioned matrices.

2. **Strong-scaling sweep** — a Fig.-5-style HMeP sweep on the Cray
   torus in pure-MPI mode (one rank per core, 24 per node), simulated
   under both plans with the Gemini NIC's injection-rate limit switched
   on (:data:`~repro.experiments.calibration.TORUS_MESSAGE_OVERHEAD`).
   Pure MPI multiplies the inter-node message count by the ranks-per-
   node squared, so the message-rate wall dominates the direct plan
   while the node-aware plan sends one aggregated message per node pair
   — the regime of PAPERS.md's node-aware literature, and the hybrid
   motivation of the paper seen from the communication side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.comm import build_comm_plan, compare_plans
from repro.core.halo import build_halo_plan
from repro.core.runner import simulate_spmvm
from repro.experiments.calibration import (
    REDUCED_EAGER_THRESHOLD,
    TORUS_MESSAGE_OVERHEAD,
    kappa_for,
)
from repro.machine.affinity import plan_placement, ranks_for_mode
from repro.machine.presets import cray_xe6_cluster, westmere_cluster
from repro.matrices.collection import get_matrix
from repro.sparse.partition import partition_matrix
from repro.util import Table

__all__ = [
    "PlanStatRow",
    "PlanScalingPoint",
    "CommPlansResult",
    "run_comm_plans",
]

_CLUSTERS = {
    "westmere": westmere_cluster,
    "cray": cray_xe6_cluster,
}


@dataclass(frozen=True)
class PlanStatRow:
    """Plan accounting for one (matrix, cluster, mode, node count)."""

    matrix: str
    cluster: str
    mode: str
    n_nodes: int
    n_ranks: int
    direct_internode_messages: int
    node_aware_internode_messages: int
    direct_injected_mb: float
    node_aware_injected_mb: float
    duplicate_factor: float
    predicted_speedup: float


@dataclass(frozen=True)
class PlanScalingPoint:
    """One node count of the simulated direct vs node-aware sweep."""

    n_nodes: int
    n_ranks: int
    direct_gflops: float
    node_aware_gflops: float

    @property
    def speedup(self) -> float:
        """Node-aware over direct (>= 1 when aggregation pays off)."""
        if self.direct_gflops == 0:
            return 1.0
        return self.node_aware_gflops / self.direct_gflops


@dataclass
class CommPlansResult:
    """Plan accounting rows plus the simulated strong-scaling sweep."""

    stat_rows: list[PlanStatRow] = field(default_factory=list)
    sweep: list[PlanScalingPoint] = field(default_factory=list)
    sweep_matrix: str = "HMeP"
    sweep_mode: str = "per-core"
    sweep_scheme: str = "no_overlap"

    def render(self) -> str:
        """Both tables, stacked."""
        t = Table(
            ["matrix", "cluster", "mode", "nodes", "ranks",
             "inter msgs d", "inter msgs na", "inj MB d", "inj MB na",
             "dup", "pred speedup"],
            title="communication-plan accounting (direct vs node-aware)",
            float_fmt=".3f",
        )
        for r in self.stat_rows:
            t.add_row([
                r.matrix, r.cluster, r.mode, r.n_nodes, r.n_ranks,
                r.direct_internode_messages, r.node_aware_internode_messages,
                r.direct_injected_mb, r.node_aware_injected_mb,
                r.duplicate_factor, r.predicted_speedup,
            ])
        out = t.render()
        if self.sweep:
            s = Table(
                ["nodes", "ranks", "direct GF/s", "node-aware GF/s", "speedup"],
                title=(
                    f"{self.sweep_matrix} strong scaling on the Cray torus, "
                    f"{self.sweep_mode}/{self.sweep_scheme} "
                    f"(message rate limited, simulated)"
                ),
                float_fmt=".2f",
            )
            for p in self.sweep:
                s.add_row([
                    p.n_nodes, p.n_ranks, p.direct_gflops,
                    p.node_aware_gflops, p.speedup,
                ])
            out += "\n\n" + s.render()
        return out


def _stat_rows(
    scale: str,
    matrices: tuple[str, ...],
    node_counts: tuple[int, ...],
    mode: str,
) -> list[PlanStatRow]:
    rows = []
    for name in matrices:
        A = get_matrix(name, scale).build_cached()
        for cluster_name, factory in _CLUSTERS.items():
            for n_nodes in node_counts:
                cluster = factory(n_nodes)
                nranks = ranks_for_mode(cluster, mode)
                if nranks > A.nrows:
                    continue
                rank_node = [p.node for p in plan_placement(cluster, mode)]
                halo = build_halo_plan(
                    A, partition_matrix(A, nranks), with_matrices=False
                )
                cmp = compare_plans(
                    build_comm_plan(halo, rank_node, "direct"),
                    build_comm_plan(halo, rank_node, "node-aware"),
                )
                rows.append(
                    PlanStatRow(
                        matrix=name,
                        cluster=cluster_name,
                        mode=mode,
                        n_nodes=n_nodes,
                        n_ranks=nranks,
                        direct_internode_messages=cmp.direct.internode_messages,
                        node_aware_internode_messages=cmp.node_aware.internode_messages,
                        direct_injected_mb=cmp.direct.internode_bytes / 1e6,
                        node_aware_injected_mb=cmp.node_aware.internode_bytes / 1e6,
                        duplicate_factor=cmp.direct.duplicate_factor,
                        predicted_speedup=cmp.predicted_speedup,
                    )
                )
    return rows


def run_comm_plans(
    scale: str = "small",
    *,
    matrices: tuple[str, ...] = ("HMeP", "sAMG"),
    node_counts: tuple[int, ...] = (2, 4, 8),
    mode: str = "per-ld",
    sweep_nodes: tuple[int, ...] = (1, 2, 4, 8),
    sweep_matrix: str = "HMeP",
    sweep_scheme: str = "no_overlap",
    iterations: int = 2,
    include_sweep: bool = True,
) -> CommPlansResult:
    """Account for both plans everywhere; simulate the torus sweep.

    The sweep runs *sweep_matrix* in pure-MPI mode (``per-core``) on the
    Cray torus with :data:`TORUS_MESSAGE_OVERHEAD` per message, under
    both lowerings.  ``include_sweep=False`` skips the (comparatively
    slow) simulations and returns the accounting tables only.
    """
    result = CommPlansResult(
        stat_rows=_stat_rows(scale, matrices, node_counts, mode),
        sweep_matrix=sweep_matrix,
        sweep_scheme=sweep_scheme,
    )
    if not include_sweep:
        return result
    A = get_matrix(sweep_matrix, scale).build_cached()
    kappa = kappa_for(sweep_matrix)
    for n_nodes in sweep_nodes:
        cluster = cray_xe6_cluster(n_nodes, message_overhead=TORUS_MESSAGE_OVERHEAD)
        nranks = ranks_for_mode(cluster, "per-core")
        if nranks > A.nrows:
            continue
        gflops = {}
        for kind in ("direct", "node-aware"):
            r = simulate_spmvm(
                A, cluster,
                mode="per-core",
                scheme=sweep_scheme,
                kappa=kappa,
                comm_plan=kind,
                iterations=iterations,
                eager_threshold=REDUCED_EAGER_THRESHOLD,
            )
            gflops[kind] = r.gflops
        result.sweep.append(
            PlanScalingPoint(
                n_nodes=n_nodes,
                n_ranks=nranks,
                direct_gflops=gflops["direct"],
                node_aware_gflops=gflops["node-aware"],
            )
        )
    return result
