"""Sect. 2 / Eqs. 1-2 numbers: κ determination and the split-kernel penalty.

Reproduces, as one table each:

* the paper's κ determination — measured performance + drawn bandwidth
  → κ via Eq. 1 (2.5 for HMeP, and the ~10 % penalty that κ = 3.79
  implies for HMEp),
* the Eq. 2 split-kernel penalty over the relevant Nnzr range
  ("between 15 % and 8 %, and even less if κ > 0"),
* the RHS reload interpretation (κ = 2.5 at Nnzr = 15 ⇒ B loaded ~6x,
  i.e. 37.3 bytes of traffic per row on B).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.calibration import (
    PAPER_KAPPA_HMEP,
    PAPER_KAPPA_HMEP_BAD,
    PAPER_SPMV_BANDWIDTH,
)
from repro.model.code_balance import (
    code_balance,
    kappa_from_measurement,
    max_performance,
    split_penalty,
)
from repro.util import Table, gb_per_s

__all__ = ["KappaTableResult", "run_kappa_table"]


@dataclass
class KappaTableResult:
    """Derived κ values and penalty tables."""

    kappa_measured: float
    hmep_bad_performance_drop: float
    max_performance_kappa0: float
    max_performance_stream: float
    rhs_loads: float
    rhs_bytes_per_row: float
    split_penalties: dict[float, dict[float, float]]  # nnzr -> kappa -> penalty

    def render(self) -> str:
        """All three tables."""
        parts = []
        t1 = Table(
            ["quantity", "value", "paper"],
            title="Sect. 2 — κ determination on the Nehalem socket (HMeP)",
            float_fmt=".3f",
        )
        t1.add_row(["max perf @ STREAM 21.2 GB/s, κ=0 [GFlop/s]", self.max_performance_stream, 3.12])
        t1.add_row(["max perf @ spMVM bw 18.1 GB/s, κ=0 [GFlop/s]", self.max_performance_kappa0, 2.66])
        t1.add_row(["κ from measured 2.25 GFlop/s @ 18.1 GB/s", self.kappa_measured, 2.5])
        t1.add_row(["RHS loads from memory (1 + κ·Nnzr/8)", self.rhs_loads, 6.0])
        t1.add_row(["additional traffic on B per row [bytes] (κ·Nnzr)", self.rhs_bytes_per_row, 37.3])
        t1.add_row(["HMEp (κ=3.79) performance drop vs HMeP", self.hmep_bad_performance_drop, 0.10])
        parts.append(t1.render())
        t2 = Table(
            ["Nnzr", "κ", "split penalty"],
            title="Eq. 2 — split-kernel penalty (paper: 15 % @ Nnzr=7 … 8 % @ Nnzr=15, less for κ>0)",
            float_fmt=".3f",
        )
        for nnzr, by_kappa in self.split_penalties.items():
            for kappa, pen in by_kappa.items():
                t2.add_row([nnzr, kappa, pen])
        parts.append(t2.render())
        return "\n\n".join(parts)


def run_kappa_table() -> KappaTableResult:
    """Evaluate the Sect. 2 arithmetic."""
    nnzr = 15.0
    kappa = kappa_from_measurement(2.25e9, gb_per_s(PAPER_SPMV_BANDWIDTH), nnzr)
    # performance HMEp relative to HMeP at the same drawn bandwidth
    p_good = max_performance(gb_per_s(PAPER_SPMV_BANDWIDTH), nnzr, PAPER_KAPPA_HMEP)
    p_bad = max_performance(gb_per_s(PAPER_SPMV_BANDWIDTH), nnzr, PAPER_KAPPA_HMEP_BAD)
    drop = 1.0 - p_bad / p_good
    # κ = 2.5 at Nnzr = 15 → κ·Nnzr extra bytes of B traffic per row on top
    # of the one compulsory 8-byte load
    rhs_bytes_per_row = kappa * nnzr
    rhs_loads = 1.0 + rhs_bytes_per_row / 8.0
    penalties: dict[float, dict[float, float]] = {}
    for n in (7.0, 11.0, 15.0):
        penalties[n] = {k: split_penalty(n, k) for k in (0.0, 2.5)}
    return KappaTableResult(
        kappa_measured=kappa,
        hmep_bad_performance_drop=drop,
        max_performance_kappa0=max_performance(gb_per_s(PAPER_SPMV_BANDWIDTH), nnzr, 0.0) / 1e9,
        max_performance_stream=max_performance(gb_per_s(21.2), nnzr, 0.0) / 1e9,
        rhs_loads=rhs_loads,
        rhs_bytes_per_row=rhs_bytes_per_row,
        split_penalties=penalties,
    )
