"""Sect. 3 probe: does nonblocking MPI actually progress in the background?

The paper: "Using the simple benchmark from [9] we have verified that
this situation has not changed with current MPI versions."  The probe
posts a large nonblocking send/receive pair, computes for a calibrated
window, then waits — and measures the *overlap ratio*

    (t_compute + t_wire - t_total) / min(t_compute, t_wire)

which is ~0 when the transfer only runs inside ``Waitall`` and ~1 when
it proceeds asynchronously.  Three library configurations are probed:
2010-era semantics (no async progress), a progress-thread MPI, and the
task-mode workaround (a comm thread parked in Waitall) under 2010-era
semantics — the paper's whole point is that the third equals the second.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frame.core import Simulator
from repro.frame.resources import FlowNetwork
from repro.machine.network import FatTree
from repro.smpi.api import MPIConfig, SimMPI
from repro.util import Table, gb_per_s

__all__ = ["ProbeResult", "run_progress_probe"]


@dataclass(frozen=True)
class ProbeResult:
    """Overlap ratios of the three library configurations."""

    no_async_progress: float
    async_progress: float
    task_mode_workaround: float
    wire_seconds: float
    compute_seconds: float

    def render(self) -> str:
        """The probe table."""
        t = Table(
            ["configuration", "overlap ratio", "expectation"],
            title=(
                "Sect. 3 — asynchronous-progress probe "
                f"(wire {self.wire_seconds * 1e3:.1f} ms, compute {self.compute_seconds * 1e3:.1f} ms)"
            ),
            float_fmt=".2f",
        )
        t.add_row(["nonblocking MPI, 2010-era progress", self.no_async_progress, "~0 (no overlap)"])
        t.add_row(["MPI with progress thread", self.async_progress, "~1 (full overlap)"])
        t.add_row(["task mode (comm thread in Waitall)", self.task_mode_workaround, "~1 (full overlap)"])
        return t.render()


def _probe(async_progress: bool, task_mode: bool, nbytes: int, compute: float) -> float:
    sim = Simulator()
    icn = FatTree(latency=1.5e-6, link_bandwidth=gb_per_s(3.2))
    net = FlowNetwork(sim, icn.resources(2))
    mpi = SimMPI(sim, net, icn, rank_node=[0, 1], config=MPIConfig(async_progress=async_progress))
    finish = {}

    def make_rank(rank: int, peer: int):
        def proc(sim):
            send = mpi.isend(rank, peer, nbytes, tag=rank)
            recv = mpi.irecv(rank, peer, nbytes, tag=peer)
            if task_mode:
                done = sim.event()

                def comm_thread():
                    yield from mpi.waitall(rank, [send, recv])
                    done.succeed()

                sim.spawn(comm_thread())
                yield sim.timeout(compute)  # the compute threads' work
                yield done
            else:
                yield sim.timeout(compute)
                yield from mpi.waitall(rank, [send, recv])
            finish[rank] = sim.now

        return proc

    sim.spawn(make_rank(0, 1)(sim))
    sim.spawn(make_rank(1, 0)(sim))
    sim.run()
    total = max(finish.values())
    wire = nbytes / gb_per_s(3.2)
    return max(0.0, (compute + wire - total) / min(compute, wire))


def run_progress_probe(
    nbytes: int = 32_000_000, compute_seconds: float = 0.010
) -> ProbeResult:
    """Run the three-configuration probe (defaults: 32 MB, 10 ms compute)."""
    wire = nbytes / gb_per_s(3.2)
    return ProbeResult(
        no_async_progress=_probe(False, False, nbytes, compute_seconds),
        async_progress=_probe(True, False, nbytes, compute_seconds),
        task_mode_workaround=_probe(False, True, nbytes, compute_seconds),
        wire_seconds=wire,
        compute_seconds=compute_seconds,
    )
