"""Classical (Ruge-Stüben) algebraic multigrid.

The paper's second test matrix originates from the AMG code sAMG; this
module supplies the open substrate: a classical AMG hierarchy built
purely algebraically from the fine-level matrix —

1. strength of connection  ``-a_ij >= θ max_k(-a_ik)``,
2. greedy C/F splitting driven by the strong-influence measure,
3. direct interpolation from strong coarse neighbours,
4. Galerkin coarse operators ``A_c = Pᵀ A P``,
5. weighted-Jacobi smoothing in a V-cycle.

Usable standalone (``AMGHierarchy.solve``) or as a CG preconditioner
(``AMGHierarchy.as_preconditioner``) — the standard way such Poisson
systems are solved in practice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.matmul import matmul
from repro.util import check_fraction, check_positive_int

__all__ = ["strength_graph", "cf_splitting", "direct_interpolation", "AMGHierarchy", "build_amg"]


def strength_graph(A: CSRMatrix, theta: float = 0.25) -> CSRMatrix:
    """Strong-connection pattern: keep ``a_ij`` with ``-a_ij >= θ·max_k(-a_ik)``.

    Values are 1.0 (the graph is structural).  Positive off-diagonals —
    weak by definition for the M-matrix-like Poisson operators AMG
    targets — never count as strong.
    """
    check_fraction(theta, "theta")
    rows = np.repeat(np.arange(A.nrows, dtype=np.int64), A.row_nnz())
    off = rows != A.col_idx
    neg = np.where(off, -A.val, 0.0)
    row_max = np.zeros(A.nrows)
    np.maximum.at(row_max, rows, neg)
    keep = off & (neg >= theta * np.maximum(row_max[rows], 1e-300)) & (neg > 0)
    return COOMatrix(
        A.nrows, A.ncols, rows[keep], A.col_idx[keep], np.ones(int(keep.sum()))
    ).to_csr()


def cf_splitting(S: CSRMatrix, *, seed: int = 0) -> np.ndarray:
    """Greedy Ruge-Stüben first-pass C/F splitting.

    Returns a boolean array (True = coarse).  The measure of a point is
    the number of points it strongly influences (|S^T row|); the highest
    measure becomes C, its strong influencees become F, and the measure
    of their other strong neighbours increases — the classic scheme.
    """
    n = S.nrows
    st = S.transpose()  # st row i = points that i strongly influences
    measure = st.row_nnz().astype(np.float64)
    rng = np.random.default_rng(seed)
    measure += rng.random(n) * 0.1  # deterministic tie-breaking jitter
    state = np.zeros(n, dtype=np.int8)  # 0 undecided, 1 coarse, -1 fine
    # isolated points (no strong connections at all) become coarse directly
    isolated = (S.row_nnz() == 0) & (st.row_nnz() == 0)
    state[isolated] = 1
    import heapq

    heap = [(-measure[i], i) for i in range(n) if state[i] == 0]
    heapq.heapify(heap)
    while heap:
        neg_m, i = heapq.heappop(heap)
        if state[i] != 0 or -neg_m < measure[i] - 1e-9:
            continue  # stale entry
        state[i] = 1  # coarse
        lo, hi = int(st.row_ptr[i]), int(st.row_ptr[i + 1])
        for j in st.col_idx[lo:hi]:
            j = int(j)
            if state[j] != 0:
                continue
            state[j] = -1  # fine
            jlo, jhi = int(S.row_ptr[j]), int(S.row_ptr[j + 1])
            for k in S.col_idx[jlo:jhi]:
                k = int(k)
                if state[k] == 0:
                    measure[k] += 1.0
                    heapq.heappush(heap, (-measure[k], k))
    state[state == 0] = -1
    return state == 1


def direct_interpolation(A: CSRMatrix, S: CSRMatrix, coarse: np.ndarray) -> CSRMatrix:
    """Direct interpolation ``P`` from strong coarse neighbours.

    Coarse points inject; a fine point ``i`` interpolates with weights

        w_ij = -(Σ_k a_ik, k≠i) / (a_ii Σ_{j∈C_i} a_ij) · a_ij

    over its strong coarse neighbours ``C_i`` (the standard direct
    formula, preserving constants for M-matrices).
    """
    n = A.nrows
    coarse_index = np.cumsum(coarse) - 1
    nc = int(coarse.sum())
    if nc == 0:
        raise ValueError("C/F splitting produced no coarse points")
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    diag = A.diagonal()
    strong_sets = [
        set(int(c) for c in S.col_idx[S.row_ptr[i] : S.row_ptr[i + 1]]) for i in range(n)
    ]
    for i in range(n):
        if coarse[i]:
            rows.append(i)
            cols.append(int(coarse_index[i]))
            vals.append(1.0)
            continue
        lo, hi = int(A.row_ptr[i]), int(A.row_ptr[i + 1])
        neigh = A.col_idx[lo:hi]
        avals = A.val[lo:hi]
        off = neigh != i
        strong_coarse = np.array(
            [bool(coarse[j]) and int(j) in strong_sets[i] for j in neigh], dtype=bool
        ) & off
        denom = float(avals[strong_coarse].sum())
        total = float(avals[off].sum())
        aii = float(diag[i])
        if not strong_coarse.any() or denom == 0.0 or aii == 0.0:
            # no usable coarse neighbours: fall back to nearest coarse
            # injection-by-zero (the point relaxes via smoothing alone)
            continue
        scale = -total / (aii * denom)
        for j, a_ij in zip(neigh[strong_coarse], avals[strong_coarse]):
            rows.append(i)
            cols.append(int(coarse_index[j]))
            vals.append(scale * float(a_ij))
    return COOMatrix(
        n, nc,
        np.asarray(rows, dtype=np.int64),
        np.asarray(cols, dtype=np.int64),
        np.asarray(vals),
    ).to_csr()


@dataclass
class _Level:
    A: CSRMatrix
    P: CSRMatrix | None = None  # to next-coarser level
    jacobi_diag: np.ndarray | None = None


@dataclass
class AMGHierarchy:
    """A built multigrid hierarchy with V-cycle machinery."""

    levels: list[_Level]
    coarse_dense: np.ndarray
    omega: float = 2.0 / 3.0
    pre_sweeps: int = 1
    post_sweeps: int = 1

    @property
    def n_levels(self) -> int:
        """Number of levels including the coarsest."""
        return len(self.levels) + 1

    def operator_complexity(self) -> float:
        """Σ nnz over levels / fine nnz — the standard AMG cost metric."""
        fine = self.levels[0].A.nnz
        total = sum(l.A.nnz for l in self.levels) + np.count_nonzero(self.coarse_dense)
        return total / max(1, fine)

    def _smooth(self, level: _Level, x: np.ndarray, b: np.ndarray, sweeps: int) -> np.ndarray:
        inv_d = level.jacobi_diag
        assert inv_d is not None
        for _ in range(sweeps):
            x = x + self.omega * inv_d * (b - level.A.matvec(x))
        return x

    def vcycle(self, b: np.ndarray, *, level: int = 0, x0: np.ndarray | None = None) -> np.ndarray:
        """One V-cycle for ``A x = b`` starting at *level*."""
        lev = self.levels[level]
        x = np.zeros_like(b) if x0 is None else x0
        x = self._smooth(lev, x, b, self.pre_sweeps)
        r = b - lev.A.matvec(x)
        assert lev.P is not None
        rc = lev.P.transpose().matvec(r)
        xc = (
            np.linalg.solve(self.coarse_dense, rc)
            if level + 1 == len(self.levels)
            else self.vcycle(rc, level=level + 1)
        )
        x = x + lev.P.matvec(xc)
        return self._smooth(lev, x, b, self.post_sweeps)

    def solve(
        self, b: np.ndarray, *, tol: float = 1e-8, max_cycles: int = 100
    ) -> tuple[np.ndarray, int, float]:
        """Stationary V-cycle iteration to relative tolerance.

        Returns ``(x, cycles, final relative residual)``.
        """
        A = self.levels[0].A
        b = np.asarray(b, dtype=np.float64)
        x = np.zeros_like(b)
        b_norm = float(np.linalg.norm(b)) or 1.0
        rel = 1.0
        for cycle in range(1, max_cycles + 1):
            x = self.vcycle(b, x0=x)
            rel = float(np.linalg.norm(b - A.matvec(x))) / b_norm
            if rel <= tol:
                return x, cycle, rel
        return x, max_cycles, rel

    def as_preconditioner(self):
        """A callable ``z = M⁻¹ r`` (one V-cycle) for preconditioned CG."""

        def apply(r: np.ndarray) -> np.ndarray:
            return self.vcycle(r)

        return apply


def build_amg(
    A: CSRMatrix,
    *,
    theta: float = 0.25,
    max_levels: int = 12,
    coarse_size: int = 60,
    seed: int = 0,
) -> AMGHierarchy:
    """Construct a Ruge-Stüben hierarchy down to a dense coarsest level."""
    check_positive_int(max_levels, "max_levels")
    if A.nrows != A.ncols:
        raise ValueError("AMG requires a square matrix")
    levels: list[_Level] = []
    current = A
    for _ in range(max_levels):
        if current.nrows <= coarse_size:
            break
        S = strength_graph(current, theta)
        coarse = cf_splitting(S, seed=seed)
        nc = int(coarse.sum())
        if nc == 0 or nc >= current.nrows:
            break  # coarsening stalled
        P = direct_interpolation(current, S, coarse)
        level = _Level(A=current, P=P)
        d = current.diagonal()
        level.jacobi_diag = np.where(d != 0, 1.0 / np.where(d == 0, 1.0, d), 0.0)
        levels.append(level)
        current = matmul(matmul(P.transpose(), current), P)
    if not levels:
        # matrix already tiny: single dense level pair with identity P
        ident = CSRMatrix.identity(A.nrows)
        level = _Level(A=A, P=ident)
        d = A.diagonal()
        level.jacobi_diag = np.where(d != 0, 1.0 / np.where(d == 0, 1.0, d), 0.0)
        levels.append(level)
        current = A
    return AMGHierarchy(levels=levels, coarse_dense=current.to_dense())
