"""Conjugate-gradient solver for symmetric positive definite systems.

The sAMG test case's natural consumer: Poisson systems from irregular
discretisations.  Works on any :class:`~repro.solvers.operators.LinearOperator`
(serial or SPMD over mpilite) with an optional preconditioner — e.g. the
AMG V-cycle from :mod:`repro.solvers.amg`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.solvers.operators import LinearOperator
from repro.util import check_positive_int

__all__ = ["CGResult", "conjugate_gradient"]


@dataclass
class CGResult:
    """Outcome of a CG solve."""

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norm: float
    residual_history: list[float] = field(default_factory=list)


def conjugate_gradient(
    op: LinearOperator,
    b: np.ndarray,
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    max_iter: int = 1000,
    preconditioner: Callable[[np.ndarray], np.ndarray] | None = None,
) -> CGResult:
    """Solve ``A x = b`` by (preconditioned) conjugate gradients.

    Convergence criterion: ``||r|| <= tol * ||b||`` (relative), with the
    norm taken globally for distributed operators.

    Parameters
    ----------
    op:
        SPD operator.
    b:
        Right-hand side (local slice for distributed operators).
    x0:
        Initial guess (zero by default).
    tol:
        Relative residual tolerance.
    max_iter:
        Iteration cap.
    preconditioner:
        Approximate inverse ``z = M⁻¹ r`` applied once per iteration.
    """
    check_positive_int(max_iter, "max_iter")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (op.local_size,):
        raise ValueError(f"b must have shape ({op.local_size},), got {b.shape}")
    x = np.zeros_like(b) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    r = b - op.matvec(x)
    b_norm = op.norm(b)
    if b_norm == 0.0:
        return CGResult(x=np.zeros_like(b), iterations=0, converged=True, residual_norm=0.0)
    z = preconditioner(r) if preconditioner else r
    p = z.copy()
    rz = op.dot(r, z)
    history = [op.norm(r) / b_norm]
    converged = history[-1] <= tol
    it = 0
    while not converged and it < max_iter:
        it += 1
        ap = op.matvec(p)
        pap = op.dot(p, ap)
        if pap <= 0:
            raise ValueError(
                f"operator is not positive definite (p·Ap = {pap:.3e} at iteration {it})"
            )
        alpha = rz / pap
        x += alpha * p
        r -= alpha * ap
        rel = op.norm(r) / b_norm
        history.append(rel)
        if rel <= tol:
            converged = True
            break
        z = preconditioner(r) if preconditioner else r
        rz_new = op.dot(r, z)
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p
    return CGResult(
        x=x,
        iterations=it,
        converged=converged,
        residual_norm=history[-1] * b_norm,
        residual_history=history,
    )
