"""Conjugate-gradient solver for symmetric positive definite systems.

The sAMG test case's natural consumer: Poisson systems from irregular
discretisations.  Works on any :class:`~repro.solvers.operators.LinearOperator`
(serial or SPMD over mpilite) with an optional preconditioner — e.g. the
AMG V-cycle from :mod:`repro.solvers.amg`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.solvers.operators import LinearOperator
from repro.util import check_positive_int

__all__ = ["CGResult", "conjugate_gradient", "sstep_cg"]


@dataclass
class CGResult:
    """Outcome of a CG solve."""

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norm: float
    residual_history: list[float] = field(default_factory=list)


def conjugate_gradient(
    op: LinearOperator,
    b: np.ndarray,
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    max_iter: int = 1000,
    preconditioner: Callable[[np.ndarray], np.ndarray] | None = None,
) -> CGResult:
    """Solve ``A x = b`` by (preconditioned) conjugate gradients.

    Convergence criterion: ``||r|| <= tol * ||b||`` (relative), with the
    norm taken globally for distributed operators.

    Parameters
    ----------
    op:
        SPD operator.
    b:
        Right-hand side (local slice for distributed operators).
    x0:
        Initial guess (zero by default).
    tol:
        Relative residual tolerance.
    max_iter:
        Iteration cap.
    preconditioner:
        Approximate inverse ``z = M⁻¹ r`` applied once per iteration.
    """
    check_positive_int(max_iter, "max_iter")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (op.local_size,):
        raise ValueError(f"b must have shape ({op.local_size},), got {b.shape}")
    x = np.zeros_like(b) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    r = b - op.matvec(x)
    b_norm = op.norm(b)
    if b_norm == 0.0:
        return CGResult(x=np.zeros_like(b), iterations=0, converged=True, residual_norm=0.0)
    z = preconditioner(r) if preconditioner else r
    p = z.copy()
    rz = op.dot(r, z)
    history = [op.norm(r) / b_norm]
    converged = history[-1] <= tol
    it = 0
    while not converged and it < max_iter:
        it += 1
        ap = op.matvec(p)
        pap = op.dot(p, ap)
        if pap <= 0:
            raise ValueError(
                f"operator is not positive definite (p·Ap = {pap:.3e} at iteration {it})"
            )
        alpha = rz / pap
        x += alpha * p
        r -= alpha * ap
        rel = op.norm(r) / b_norm
        history.append(rel)
        if rel <= tol:
            converged = True
            break
        z = preconditioner(r) if preconditioner else r
        rz_new = op.dot(r, z)
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p
    return CGResult(
        x=x,
        iterations=it,
        converged=converged,
        residual_norm=history[-1] * b_norm,
        residual_history=history,
    )


def _check_spd(Q: np.ndarray, it: int) -> None:
    try:
        np.linalg.cholesky(Q)
    except np.linalg.LinAlgError:
        raise ValueError(
            f"operator is not positive definite (Gram matrix indefinite at iteration {it})"
        ) from None


def sstep_cg(
    op: LinearOperator,
    b: np.ndarray,
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    max_iter: int = 1000,
    pipeline: bool = True,
) -> CGResult:
    """Communication-avoiding (s-step, s = 2) conjugate gradients.

    Mathematically equivalent to :func:`conjugate_gradient` — each outer
    step minimises the A-norm error over the same Krylov space as two
    classic iterations — but restructured around the multi-sweep
    pipeline (DESIGN.md §15):

    * the two matvecs of an outer step are ONE 2-sweep matrix-powers
      program (``op.matvec_chain``): sweep 1's halo receives are posted
      before sweep 0's remote kernel, so its exchange latency hides
      behind compute;
    * all inner products of an outer step fuse into ONE elementwise
      allreduce (``op.dot_many``) — at most 10 scalars per step instead
      of 3 collectives per classic iteration.

    Basis: monomial, ``R̃ = [r, Ar]``.  New search directions are kept
    A-conjugate to the previous block via ``B = −Q₋ ⁻¹ (W₋ᵀ R̃)``; the
    2×2 Gram system ``Q a = Pᵀ r`` is solved redundantly on every rank
    (no extra communication).  Convergence is checked on the fused
    ``‖r‖²`` scalar, so the residual history advances in steps of two
    iterations.  ``max_iter`` is rounded up to a whole outer step.

    Raises ``ValueError`` when the Gram matrix stops being positive
    definite (the operator is not SPD).
    """
    check_positive_int(max_iter, "max_iter")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (op.local_size,):
        raise ValueError(f"b must have shape ({op.local_size},), got {b.shape}")
    x = np.zeros_like(b) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    r = b - op.matvec(x)
    b_norm = op.norm(b)
    if b_norm == 0.0:
        return CGResult(x=np.zeros_like(b), iterations=0, converged=True, residual_norm=0.0)
    history: list[float] = []
    P_prev = W_prev = Q_prev = None
    it = 0
    converged = False
    while it < max_iter:
        v1, v2 = op.matvec_chain(r, 2, pipeline=pipeline)
        pairs = [(r, r), (r, v1), (r, v2), (v1, v2)]
        if P_prev is not None:
            pairs += [
                (W_prev[:, 0], r), (W_prev[:, 1], r),
                (W_prev[:, 0], v1), (W_prev[:, 1], v1),
                (P_prev[:, 0], r), (P_prev[:, 1], r),
            ]
        d = op.dot_many(pairs)
        rr, rv1, rv2, v1v2 = d[0], d[1], d[2], d[3]
        rel = float(np.sqrt(max(rr, 0.0))) / b_norm
        history.append(rel)
        if rel <= tol:
            converged = True
            break
        Rt = np.stack([r, v1], axis=1)
        ARt = np.stack([v1, v2], axis=1)
        # R̃ᵀAR̃ in its symmetric form: v1ᵀv1 = rᵀA²r = rᵀv2 for SPD A.
        G = np.array([[rv1, rv2], [rv2, v1v2]])
        if P_prev is None:
            P, W, Q = Rt, ARt, G
            pr = np.array([rr, rv1])
        else:
            Z = np.array([[d[4], d[6]], [d[5], d[7]]])  # W₋ᵀ [r, v1]
            ppr = np.array([d[8], d[9]])  # P₋ᵀ r (0 in exact arithmetic)
            _check_spd(Q_prev, it)
            B = -np.linalg.solve(Q_prev, Z)
            P = Rt + P_prev @ B
            W = ARt + W_prev @ B
            Q = G + Z.T @ B + B.T @ Z + B.T @ Q_prev @ B
            pr = np.array([rr, rv1]) + B.T @ ppr
        _check_spd(Q, it)
        a = np.linalg.solve(Q, pr)
        x += P @ a
        r -= W @ a
        P_prev, W_prev, Q_prev = P, W, Q
        it += 2
    if not converged:
        rel = op.norm(r) / b_norm
        history.append(rel)
        converged = rel <= tol
    return CGResult(
        x=x,
        iterations=it,
        converged=converged,
        residual_norm=history[-1] * b_norm,
        residual_history=history,
    )
