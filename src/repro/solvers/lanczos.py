"""Lanczos iteration for extremal eigenvalues of symmetric operators.

The exact-diagonalization use case of the paper's first test matrix:
"Iterative algorithms such as Lanczos or Jacobi-Davidson are used to
compute low-lying eigenstates of the Hamilton matrices … In all those
algorithms, sparse MVM is the most time-consuming step."

Plain Lanczos with optional full reorthogonalisation (recommended at
these modest iteration counts) and Ritz-residual convergence control.
Works on any :class:`~repro.solvers.operators.LinearOperator`, so the
same code runs serially or SPMD over mpilite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.solvers.operators import LinearOperator
from repro.util import check_positive_int

__all__ = ["LanczosResult", "lanczos", "ground_state"]


@dataclass
class LanczosResult:
    """Outcome of a Lanczos run."""

    eigenvalues: np.ndarray  # converged Ritz values (ascending)
    iterations: int
    residuals: np.ndarray  # residual bound per reported Ritz value
    alpha: np.ndarray  # tridiagonal diagonal
    beta: np.ndarray  # tridiagonal off-diagonal
    ritz_vector: np.ndarray | None = None  # local slice, lowest Ritz pair

    @property
    def ground_energy(self) -> float:
        """Lowest converged Ritz value."""
        return float(self.eigenvalues[0])


def _tridiag_eig(alpha: np.ndarray, beta: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Eigen-decomposition of the Lanczos tridiagonal matrix."""
    k = alpha.size
    t = np.diag(alpha)
    if k > 1:
        t += np.diag(beta[: k - 1], 1) + np.diag(beta[: k - 1], -1)
    return np.linalg.eigh(t)


def lanczos(
    op: LinearOperator,
    *,
    max_iter: int = 200,
    tol: float = 1e-8,
    n_eigenvalues: int = 1,
    seed: int = 0,
    reorthogonalize: bool = True,
    want_vector: bool = False,
    v0: np.ndarray | None = None,
) -> LanczosResult:
    """Run Lanczos until the lowest *n_eigenvalues* Ritz values converge.

    Convergence uses the standard bound: the residual of Ritz pair
    ``(theta, y)`` is ``beta_k * |last component of y|``.

    Parameters
    ----------
    op:
        Symmetric linear operator.
    max_iter:
        Maximum Krylov dimension.
    tol:
        Residual tolerance (absolute).
    n_eigenvalues:
        How many of the lowest eigenvalues must converge.
    seed / v0:
        Starting vector (random by default; pass the local slice for
        distributed runs).
    reorthogonalize:
        Re-orthogonalise each new basis vector against all previous ones
        (costly but robust; essential beyond ~50 iterations).
    want_vector:
        Also accumulate the lowest Ritz vector (stores the basis).
    """
    check_positive_int(max_iter, "max_iter")
    check_positive_int(n_eigenvalues, "n_eigenvalues")
    n = op.local_size
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(n) if v0 is None else np.asarray(v0, dtype=np.float64).copy()
    nv = op.norm(v)
    if nv == 0:
        raise ValueError("starting vector must be nonzero")
    v /= nv
    basis: list[np.ndarray] = [v]
    alphas: list[float] = []
    betas: list[float] = []
    v_prev = np.zeros(n)
    beta_prev = 0.0
    evals = np.zeros(0)
    resid = np.zeros(0)
    k = 0
    for k in range(1, max_iter + 1):
        w = op.matvec(basis[-1])
        a = op.dot(basis[-1], w)
        alphas.append(a)
        w = w - a * basis[-1] - beta_prev * v_prev
        if reorthogonalize:
            for u in basis:
                w -= op.dot(u, w) * u
        b = op.norm(w)
        alpha = np.asarray(alphas)
        beta = np.asarray(betas)
        theta, s = _tridiag_eig(alpha, beta)
        m = min(n_eigenvalues, theta.size)
        resid = np.abs(b * s[-1, :m])
        evals = theta[:m]
        if b <= 1e-14:  # invariant subspace found
            resid = np.zeros(m)
            break
        if theta.size >= n_eigenvalues and np.all(resid <= tol):
            break
        betas.append(b)
        v_prev = basis[-1]
        beta_prev = b
        v_next = w / b
        if reorthogonalize or want_vector:
            basis.append(v_next)
        else:
            basis = [v_next]

    vector = None
    if want_vector and len(basis) >= len(alphas):
        theta, s = _tridiag_eig(np.asarray(alphas), np.asarray(betas))
        coeffs = s[:, 0]
        vector = np.zeros(n)
        for c, u in zip(coeffs, basis):
            vector += c * u
        nv = op.norm(vector)
        if nv > 0:
            vector /= nv
    return LanczosResult(
        eigenvalues=evals,
        iterations=k,
        residuals=resid,
        alpha=np.asarray(alphas),
        beta=np.asarray(betas),
        ritz_vector=vector,
    )


def ground_state(op: LinearOperator, **kwargs) -> tuple[float, np.ndarray | None]:
    """Convenience wrapper: lowest eigenvalue (and vector if requested)."""
    result = lanczos(op, **kwargs)
    return result.ground_energy, result.ritz_vector


def spectral_bounds(op: LinearOperator, *, max_iter: int = 80, seed: int = 1) -> tuple[float, float]:
    """Estimated (min, max) eigenvalues, padded by 1 % — the scaling
    interval the Chebyshev-based methods need."""
    n = op.local_size
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(n)
    v /= op.norm(v)
    alphas: list[float] = []
    betas: list[float] = []
    v_prev = np.zeros(n)
    beta_prev = 0.0
    for _ in range(max_iter):
        w = op.matvec(v)
        a = op.dot(v, w)
        alphas.append(a)
        w = w - a * v - beta_prev * v_prev
        b = op.norm(w)
        if b <= 1e-14:
            break
        betas.append(b)
        v_prev, v = v, w / b
        beta_prev = b
    theta, _ = _tridiag_eig(np.asarray(alphas), np.asarray(betas))
    lo, hi = float(theta[0]), float(theta[-1])
    pad = 0.01 * max(hi - lo, 1e-12)
    return lo - pad, hi + pad
