"""Application-level solvers whose cost is dominated by sparse MVM.

The algorithms the paper's introduction motivates: Lanczos for
low-lying eigenstates, CG (with an AMG preconditioner) for the Poisson
systems, Chebyshev time propagation and the kernel polynomial method
for spectral properties.  Every solver works on the operator
abstraction, so the same code runs serially or SPMD on mpilite with the
distributed spMVM underneath.
"""

from repro.solvers.amg import (
    AMGHierarchy,
    build_amg,
    cf_splitting,
    direct_interpolation,
    strength_graph,
)
from repro.solvers.cg import CGResult, conjugate_gradient, sstep_cg
from repro.solvers.jacobi_davidson import JDResult, jacobi_davidson
from repro.solvers.chebyshev import ChebyshevPropagator
from repro.solvers.kpm import KPMSpectrum, chebyshev_moments, jackson_kernel, kpm_spectrum
from repro.solvers.lanczos import LanczosResult, ground_state, lanczos, spectral_bounds
from repro.solvers.operators import DistributedOperator, LinearOperator, SerialOperator

__all__ = [
    "LinearOperator",
    "SerialOperator",
    "DistributedOperator",
    "LanczosResult",
    "lanczos",
    "ground_state",
    "spectral_bounds",
    "CGResult",
    "conjugate_gradient",
    "sstep_cg",
    "JDResult",
    "jacobi_davidson",
    "ChebyshevPropagator",
    "KPMSpectrum",
    "kpm_spectrum",
    "chebyshev_moments",
    "jackson_kernel",
    "AMGHierarchy",
    "build_amg",
    "strength_graph",
    "cf_splitting",
    "direct_interpolation",
]
