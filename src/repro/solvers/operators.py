"""Linear-operator abstraction shared by all solvers.

Solvers only need ``shape``, ``matvec`` and inner products.  The two
implementations are

* :class:`SerialOperator` — wraps a :class:`~repro.sparse.csr.CSRMatrix`
  (or anything with ``matvec``/``shape``) for single-process use, and
* :class:`DistributedOperator` — one rank's view of a distributed matrix
  over mpilite: matvec is the halo-exchanged spMVM (any Fig. 4 scheme),
  inner products are allreduces.  An entire Lanczos or CG run then
  executes SPMD, exactly as the paper's application codes do.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.comm.plan import CommPlan
from repro.core.halo import RankHalo
from repro.core.spmvm import DistributedSpMVM
from repro.mpilite.comm import Comm
from repro.sparse.csr import CSRMatrix

__all__ = ["LinearOperator", "SerialOperator", "DistributedOperator"]


@runtime_checkable
class LinearOperator(Protocol):
    """What a solver needs from an operator."""

    @property
    def local_size(self) -> int:
        """Length of the locally held vector slice."""
        ...

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Apply the operator to the local slice (communicating if needed)."""
        ...

    def dot(self, x: np.ndarray, y: np.ndarray) -> float:
        """Global inner product of two distributed vectors."""
        ...

    def norm(self, x: np.ndarray) -> float:
        """Global 2-norm."""
        ...


class SerialOperator:
    """A plain single-process operator around a CSR matrix."""

    def __init__(self, A: CSRMatrix) -> None:
        if A.nrows != A.ncols:
            raise ValueError("solvers require a square operator")
        self.A = A

    @property
    def local_size(self) -> int:
        """Vector length (the full dimension)."""
        return self.A.nrows

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x``."""
        return self.A.matvec(x)

    def dot(self, x: np.ndarray, y: np.ndarray) -> float:
        """Ordinary inner product."""
        return float(np.dot(x, y))

    def norm(self, x: np.ndarray) -> float:
        """Ordinary 2-norm."""
        return float(np.linalg.norm(x))


class DistributedOperator:
    """One rank's handle on a distributed matrix (SPMD solvers).

    Parameters
    ----------
    comm:
        mpilite communicator.
    halo:
        This rank's halo plan (with sub-matrices).
    scheme:
        Which Fig. 4 execution scheme the matvec uses.
    comm_plan:
        Optional halo-exchange lowering (see
        :class:`~repro.core.spmvm.DistributedSpMVM`): ``None``/direct
        uses the classic per-peer exchange, a node-aware
        :class:`~repro.comm.plan.CommPlan` routes inter-node traffic
        through per-node leaders.  Solver iterates are bit-identical
        either way.
    """

    def __init__(
        self,
        comm: Comm,
        halo: RankHalo,
        scheme: str = "task_mode",
        *,
        comm_plan: CommPlan | None = None,
    ) -> None:
        self.comm = comm
        self.engine = DistributedSpMVM(comm, halo, comm_plan=comm_plan)
        self.scheme = scheme

    @property
    def local_size(self) -> int:
        """Rows owned by this rank."""
        return self.engine.halo.n_rows

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Halo-exchanged distributed spMVM."""
        return self.engine.multiply(x, self.scheme)

    def dot(self, x: np.ndarray, y: np.ndarray) -> float:
        """Allreduce inner product."""
        return float(self.comm.allreduce(float(np.dot(x, y))))

    def norm(self, x: np.ndarray) -> float:
        """Allreduce 2-norm."""
        return float(np.sqrt(self.dot(x, x)))
