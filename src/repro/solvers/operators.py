"""Linear-operator abstraction shared by all solvers.

Solvers only need ``shape``, ``matvec`` and inner products.  The two
implementations are

* :class:`SerialOperator` — wraps a :class:`~repro.sparse.csr.CSRMatrix`
  (or anything with ``matvec``/``shape``) for single-process use, and
* :class:`DistributedOperator` — one rank's view of a distributed matrix
  over mpilite: matvec is the halo-exchanged spMVM (any Fig. 4 scheme),
  inner products are allreduces.  An entire Lanczos or CG run then
  executes SPMD, exactly as the paper's application codes do.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.comm.plan import CommPlan
from repro.core.halo import RankHalo
from repro.core.spmvm import DistributedSpMVM
from repro.mpilite.comm import Comm
from repro.sparse.csr import CSRMatrix

__all__ = ["LinearOperator", "SerialOperator", "DistributedOperator"]


@runtime_checkable
class LinearOperator(Protocol):
    """What a solver needs from an operator."""

    @property
    def local_size(self) -> int:
        """Length of the locally held vector slice."""
        ...

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Apply the operator to the local slice (communicating if needed)."""
        ...

    def dot(self, x: np.ndarray, y: np.ndarray) -> float:
        """Global inner product of two distributed vectors."""
        ...

    def norm(self, x: np.ndarray) -> float:
        """Global 2-norm."""
        ...

    def matvec_chain(self, x: np.ndarray, n: int) -> list[np.ndarray]:
        """Apply the operator ``n`` times: ``[A x, A² x, ..., Aⁿ x]``."""
        ...

    def dot_many(self, pairs: list[tuple[np.ndarray, np.ndarray]]) -> np.ndarray:
        """Batch of global inner products fused into one reduction."""
        ...


class SerialOperator:
    """A plain single-process operator around a CSR matrix."""

    def __init__(self, A: CSRMatrix) -> None:
        if A.nrows != A.ncols:
            raise ValueError("solvers require a square operator")
        self.A = A

    @property
    def local_size(self) -> int:
        """Vector length (the full dimension)."""
        return self.A.nrows

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x``."""
        return self.A.matvec(x)

    def dot(self, x: np.ndarray, y: np.ndarray) -> float:
        """Ordinary inner product."""
        return float(np.dot(x, y))

    def norm(self, x: np.ndarray) -> float:
        """Ordinary 2-norm."""
        return float(np.linalg.norm(x))

    def matvec_chain(self, x: np.ndarray, n: int, *, pipeline: bool = True) -> list[np.ndarray]:
        """``[A x, A² x, ..., Aⁿ x]`` by repeated matvec (nothing to pipeline)."""
        ys: list[np.ndarray] = []
        cur = x
        for _ in range(n):
            cur = self.A.matvec(cur)
            ys.append(cur)
        return ys

    def dot_many(self, pairs: list[tuple[np.ndarray, np.ndarray]]) -> np.ndarray:
        """Batched inner products (no communication to fuse serially)."""
        return np.array([np.dot(x, y) for x, y in pairs], dtype=np.float64)


class DistributedOperator:
    """One rank's handle on a distributed matrix (SPMD solvers).

    Parameters
    ----------
    comm:
        mpilite communicator.
    halo:
        This rank's halo plan (with sub-matrices).
    scheme:
        Which Fig. 4 execution scheme the matvec uses.
    comm_plan:
        Optional halo-exchange lowering (see
        :class:`~repro.core.spmvm.DistributedSpMVM`): ``None``/direct
        uses the classic per-peer exchange, a node-aware
        :class:`~repro.comm.plan.CommPlan` routes inter-node traffic
        through per-node leaders.  Solver iterates are bit-identical
        either way.

    The ``counters`` dict tallies communication economics — halo
    ``exchanges``, collective ``reductions``, and total ``messages``
    this rank posts: one per send peer per exchange (classic
    accounting) plus two per collective (this rank's up-and-down hop of
    a rooted reduction) — so solver variants can be compared on
    *counted* traffic rather than timed noise (the :mod:`repro.bench`
    solver guard asserts on these).
    """

    def __init__(
        self,
        comm: Comm,
        halo: RankHalo,
        scheme: str = "task_mode",
        *,
        comm_plan: CommPlan | None = None,
    ) -> None:
        self.comm = comm
        self.engine = DistributedSpMVM(comm, halo, comm_plan=comm_plan)
        self.scheme = scheme
        self.counters: dict[str, int] = {"exchanges": 0, "messages": 0, "reductions": 0}

    def _count_exchanges(self, n: int) -> None:
        self.counters["exchanges"] += n
        self.counters["messages"] += n * len(self.engine.halo.send_to)

    def _count_reduction(self) -> None:
        self.counters["reductions"] += 1
        self.counters["messages"] += 2

    @property
    def local_size(self) -> int:
        """Rows owned by this rank."""
        return self.engine.halo.n_rows

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Halo-exchanged distributed spMVM."""
        self._count_exchanges(1)
        return self.engine.multiply(x, self.scheme)

    def matvec_chain(self, x: np.ndarray, n: int, *, pipeline: bool = True) -> list[np.ndarray]:
        """``[A x, ..., Aⁿ x]`` as one multi-sweep program (matrix powers).

        Pipelined by default: sweep ``i+1``'s receives are posted before
        sweep ``i``'s remote kernel (:func:`repro.program.build_multi_sweep`),
        still one exchange (= one message per peer) per sweep.
        """
        self._count_exchanges(n)
        return self.engine.multiply_chain(x, n, self.scheme, pipeline=pipeline)

    def dot(self, x: np.ndarray, y: np.ndarray) -> float:
        """Allreduce inner product."""
        self._count_reduction()
        return float(self.comm.allreduce(float(np.dot(x, y))))

    def dot_many(self, pairs: list[tuple[np.ndarray, np.ndarray]]) -> np.ndarray:
        """Many inner products fused into ONE elementwise allreduce.

        This is the communication-avoiding half of the s-step CG: the
        scalar products of one outer step share a single collective.
        """
        self._count_reduction()
        local = np.array([np.dot(x, y) for x, y in pairs], dtype=np.float64)
        return np.asarray(self.comm.allreduce(local), dtype=np.float64)

    def norm(self, x: np.ndarray) -> float:
        """Allreduce 2-norm."""
        return float(np.sqrt(self.dot(x, x)))
