"""Kernel polynomial method (KPM) for spectral densities.

The paper cites the KPM (Ref. [10]) as one of the algorithms whose cost
is dominated by sparse MVM: the density of states

    rho(E) ≈ (1/π√(1-x²)) [ g_0 μ_0 + 2 Σ_n g_n μ_n T_n(x) ]

is reconstructed from Chebyshev moments ``μ_n = <r| T_n(H̃) |r>``
averaged over random vectors, damped by the Jackson kernel ``g_n`` to
suppress Gibbs oscillations.  Each moment costs one spMVM; the
three-term recurrence with the doubling trick yields two moments per
matrix application.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.solvers.operators import LinearOperator
from repro.util import check_positive_int

__all__ = ["jackson_kernel", "chebyshev_moments", "KPMSpectrum", "kpm_spectrum"]


def jackson_kernel(n_moments: int) -> np.ndarray:
    """Jackson damping factors ``g_n`` for *n_moments* moments."""
    check_positive_int(n_moments, "n_moments")
    n = np.arange(n_moments)
    big_n = n_moments + 1
    return (
        (big_n - n) * np.cos(np.pi * n / big_n)
        + np.sin(np.pi * n / big_n) / np.tan(np.pi / big_n)
    ) / big_n


def chebyshev_moments(
    op: LinearOperator,
    bounds: tuple[float, float],
    *,
    n_moments: int = 128,
    n_random: int = 8,
    seed: int = 0,
) -> np.ndarray:
    """Stochastic Chebyshev moments of the operator's spectral density.

    Uses the doubling identities ``μ_{2k} = 2<t_k|t_k> - μ_0`` and
    ``μ_{2k+1} = 2<t_{k+1}|t_k> - μ_1``, so ``n_moments`` moments cost
    about ``n_moments/2`` matrix applications per random vector.
    """
    check_positive_int(n_moments, "n_moments")
    check_positive_int(n_random, "n_random")
    lo, hi = bounds
    if not hi > lo:
        raise ValueError(f"invalid spectral bounds {bounds}")
    a = 0.5 * (hi - lo)
    b = 0.5 * (hi + lo)
    n = op.local_size
    rng = np.random.default_rng(seed)

    def h_tilde(v: np.ndarray) -> np.ndarray:
        return (op.matvec(v) - b * v) / a

    moments = np.zeros(n_moments)
    for _r in range(n_random):
        r = rng.choice([-1.0, 1.0], size=n)  # Rademacher probe
        norm2 = op.dot(r, r)
        t_prev = r
        t_curr = h_tilde(r)
        mu = np.zeros(n_moments)
        mu[0] = norm2
        if n_moments > 1:
            mu[1] = op.dot(r, t_curr)
        half = (n_moments + 1) // 2
        for k in range(1, half + 1):
            if 2 * k < n_moments:
                mu[2 * k] = 2.0 * op.dot(t_curr, t_curr) - mu[0]
            t_next = 2.0 * h_tilde(t_curr) - t_prev
            if 2 * k + 1 < n_moments:
                mu[2 * k + 1] = 2.0 * op.dot(t_next, t_curr) - mu[1]
            t_prev, t_curr = t_curr, t_next
        moments += mu / norm2
    return moments / n_random


@dataclass(frozen=True)
class KPMSpectrum:
    """Reconstructed spectral density on an energy grid."""

    energies: np.ndarray
    density: np.ndarray
    moments: np.ndarray
    bounds: tuple[float, float]

    def normalized(self) -> "KPMSpectrum":
        """Density rescaled to unit integral over the grid."""
        integral = np.trapezoid(self.density, self.energies)
        if integral <= 0:
            return self
        return KPMSpectrum(
            self.energies, self.density / integral, self.moments, self.bounds
        )


def kpm_spectrum(
    op: LinearOperator,
    bounds: tuple[float, float],
    *,
    n_moments: int = 128,
    n_random: int = 8,
    n_energies: int = 400,
    seed: int = 0,
) -> KPMSpectrum:
    """Density of states via KPM with Jackson damping."""
    moments = chebyshev_moments(
        op, bounds, n_moments=n_moments, n_random=n_random, seed=seed
    )
    damped = moments * jackson_kernel(n_moments)
    lo, hi = bounds
    a = 0.5 * (hi - lo)
    b = 0.5 * (hi + lo)
    # interior Chebyshev grid avoids the 1/sqrt(1-x^2) endpoints
    x = np.cos(np.pi * (np.arange(n_energies) + 0.5) / n_energies)
    n = np.arange(n_moments)
    # T_n(x) on the grid via cos(n arccos x)
    tnx = np.cos(np.outer(np.arccos(x), n))
    series = damped[0] + 2.0 * tnx[:, 1:] @ damped[1:]
    density = series / (np.pi * np.sqrt(1.0 - x**2)) / a
    energies = a * x + b
    order = np.argsort(energies)
    return KPMSpectrum(energies[order], density[order], moments, bounds)
