"""Chebyshev expansion of the quantum time-evolution operator.

One of the paper's motivating workloads: "more recent methods based on
polynomial expansion allow for … time evolution of quantum states"
(Refs. [10, 11]).  The propagator over a time step ``t`` is expanded as

    e^{-i H t} ≈ e^{-i b t} [ J_0(a t) + 2 Σ_{k≥1} (-i)^k J_k(a t) T_k(H̃) ]

where ``H̃ = (H - b)/a`` is the Hamiltonian rescaled to spectrum
⊂ [-1, 1] (``a`` half-width, ``b`` centre) and ``J_k`` are Bessel
functions.  Every term is one sparse MVM — the Chebyshev recurrence —
so long time evolutions are spMVM-dominated, exactly the paper's point.

Complex state vectors are propagated by applying the real operator to
real and imaginary parts separately (the CSR kernel is real).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import jv

from repro.solvers.operators import LinearOperator
from repro.util import check_positive_float

__all__ = ["ChebyshevPropagator"]


def _matvec_complex(op: LinearOperator, psi: np.ndarray) -> np.ndarray:
    return op.matvec(psi.real) + 1j * op.matvec(psi.imag)


@dataclass
class ChebyshevPropagator:
    """Time-evolution engine for one Hamiltonian.

    Parameters
    ----------
    op:
        The Hamiltonian as a linear operator.
    bounds:
        ``(E_min, E_max)`` enclosing the spectrum (e.g. from
        :func:`repro.solvers.lanczos.spectral_bounds`).
    tol:
        Truncation threshold on the Bessel coefficients; the expansion
        order grows automatically with the time step.
    """

    op: LinearOperator
    bounds: tuple[float, float]
    tol: float = 1e-12

    def __post_init__(self) -> None:
        lo, hi = self.bounds
        if not hi > lo:
            raise ValueError(f"invalid spectral bounds {self.bounds}")
        self._half_width = 0.5 * (hi - lo)
        self._center = 0.5 * (hi + lo)

    def expansion_order(self, t: float) -> int:
        """Number of Chebyshev terms needed for time step *t*.

        The Bessel coefficients ``J_k(a t)`` decay super-exponentially
        once ``k > a t``; we cut when they fall below ``tol``.
        """
        at = abs(self._half_width * t)
        k = max(4, int(np.ceil(at)))
        while abs(jv(k, at)) > self.tol and k < 10_000:
            k += 1
        return k + 1

    def step(self, psi: np.ndarray, t: float) -> np.ndarray:
        """Propagate ``psi`` by ``exp(-i H t)``.

        The state is returned normalised to its incoming norm (the
        expansion is unitary up to truncation error).
        """
        check_positive_float(abs(t), "t")
        psi = np.asarray(psi, dtype=np.complex128)
        at = self._half_width * t
        order = self.expansion_order(t)
        a = self._half_width

        def h_tilde(v: np.ndarray) -> np.ndarray:
            return (_matvec_complex(self.op, v) - self._center * v) / a

        t_prev = psi.copy()  # T_0 |psi>
        t_curr = h_tilde(psi)  # T_1 |psi>
        out = jv(0, at) * t_prev + 2.0 * (-1j) * jv(1, at) * t_curr
        phase = -1j
        for k in range(2, order):
            t_next = 2.0 * h_tilde(t_curr) - t_prev
            phase *= -1j
            coeff = 2.0 * phase * jv(k, at)
            out += coeff * t_next
            t_prev, t_curr = t_curr, t_next
        return np.exp(-1j * self._center * t) * out

    def evolve(
        self, psi0: np.ndarray, t_final: float, n_steps: int
    ) -> list[np.ndarray]:
        """Propagate through *n_steps* equal steps, returning all states."""
        if n_steps <= 0:
            raise ValueError("n_steps must be positive")
        dt = t_final / n_steps
        states = [np.asarray(psi0, dtype=np.complex128)]
        for _ in range(n_steps):
            states.append(self.step(states[-1], dt))
        return states
