"""Jacobi-Davidson eigensolver for the lowest eigenpair.

The second eigensolver the paper names for the exact-diagonalization
workload ("Iterative algorithms such as Lanczos or Jacobi-Davidson…").
A compact real-symmetric implementation:

* search space expanded one vector at a time, Rayleigh-Ritz extraction,
* the correction equation ``(I - u uᵀ)(A - θ I)(I - u uᵀ) t = -r`` is
  solved approximately with a few steps of MINRES-like CG on the
  projected operator (standard inexact JD),
* restarts keep the basis bounded.

Like everything else in :mod:`repro.solvers`, it runs on the operator
abstraction — all global communication happens through ``op.dot``/
``op.matvec``, so the SPMD path gets the distributed spMVM for free.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.solvers.operators import LinearOperator
from repro.util import check_positive_int

__all__ = ["JDResult", "jacobi_davidson"]


@dataclass
class JDResult:
    """Outcome of a Jacobi-Davidson run."""

    eigenvalue: float
    eigenvector: np.ndarray
    iterations: int
    converged: bool
    residual_norm: float
    residual_history: list[float]


def _solve_correction(
    op: LinearOperator,
    u: np.ndarray,
    theta: float,
    r: np.ndarray,
    steps: int,
) -> np.ndarray:
    """Approximately solve the projected correction equation with CG.

    Operator: ``t ↦ (I - u uᵀ)(A - θ I)(I - u uᵀ) t`` — symmetric (and
    positive definite near a well-separated lowest eigenvalue after
    projection), so a handful of CG steps give a useful correction.
    """

    def apply(t: np.ndarray) -> np.ndarray:
        t_proj = t - op.dot(u, t) * u
        w = op.matvec(t_proj) - theta * t_proj
        return w - op.dot(u, w) * u

    b = -(r - op.dot(u, r) * u)
    t = np.zeros_like(b)
    res = b.copy()
    p = res.copy()
    rz = op.dot(res, res)
    if rz == 0.0:
        return b
    for _ in range(steps):
        ap = apply(p)
        pap = op.dot(p, ap)
        if abs(pap) < 1e-300:
            break
        alpha = rz / pap
        t += alpha * p
        res -= alpha * ap
        rz_new = op.dot(res, res)
        if rz_new <= 1e-28 * rz:
            break
        p = res + (rz_new / rz) * p
        rz = rz_new
    return t if op.norm(t) > 0 else b


def jacobi_davidson(
    op: LinearOperator,
    *,
    max_iter: int = 100,
    tol: float = 1e-8,
    max_subspace: int = 20,
    correction_steps: int = 8,
    seed: int = 0,
    v0: np.ndarray | None = None,
) -> JDResult:
    """Find the lowest eigenpair of a symmetric operator.

    Parameters
    ----------
    op:
        Symmetric linear operator.
    max_iter:
        Outer (expansion) iterations.
    tol:
        Residual norm tolerance ``||A u - θ u|| <= tol``.
    max_subspace:
        Basis size before a thick restart (keeps the 3 best Ritz vectors).
    correction_steps:
        Inner CG steps on the correction equation.
    seed / v0:
        Starting vector.
    """
    check_positive_int(max_iter, "max_iter")
    if max_subspace < 4:
        raise ValueError("max_subspace must be at least 4")
    n = op.local_size
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(n) if v0 is None else np.asarray(v0, dtype=np.float64).copy()
    nv = op.norm(v)
    if nv == 0:
        raise ValueError("starting vector must be nonzero")
    v /= nv
    basis: list[np.ndarray] = [v]
    images: list[np.ndarray] = [op.matvec(v)]
    history: list[float] = []
    theta = op.dot(basis[0], images[0])
    u = basis[0]
    r = images[0] - theta * u
    for it in range(1, max_iter + 1):
        # Rayleigh-Ritz on the current basis
        k = len(basis)
        h = np.empty((k, k))
        for i in range(k):
            for j in range(i, k):
                h[i, j] = h[j, i] = op.dot(basis[i], images[j])
        evals, evecs = np.linalg.eigh(h)
        theta = float(evals[0])
        c = evecs[:, 0]
        u = sum(ci * bi for ci, bi in zip(c, basis))
        au = sum(ci * wi for ci, wi in zip(c, images))
        r = au - theta * u
        res_norm = op.norm(r)
        history.append(res_norm)
        if res_norm <= tol:
            return JDResult(theta, u, it, True, res_norm, history)
        # restart: keep the three lowest Ritz vectors
        if len(basis) >= max_subspace:
            keep = min(3, len(basis))
            new_basis, new_images = [], []
            for m in range(keep):
                cm = evecs[:, m]
                bm = sum(ci * bi for ci, bi in zip(cm, basis))
                wm = sum(ci * wi for ci, wi in zip(cm, images))
                new_basis.append(bm)
                new_images.append(wm)
            basis, images = new_basis, new_images
        # correction equation
        t = _solve_correction(op, u, theta, r, correction_steps)
        # orthogonalise against the basis (twice, for stability)
        for _ in range(2):
            for b in basis:
                t -= op.dot(b, t) * b
        nt = op.norm(t)
        if nt < 1e-14:
            t = rng.standard_normal(n)
            for b in basis:
                t -= op.dot(b, t) * b
            nt = op.norm(t)
        t /= nt
        basis.append(t)
        images.append(op.matvec(t))
    return JDResult(theta, u, max_iter, False, history[-1], history)
