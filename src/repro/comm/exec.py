"""Executing a node-aware plan on real data (the mpilite path).

:class:`RankExchange` compiles one rank's duties out of a node-aware
:class:`~repro.comm.plan.CommPlan` into flat numpy index arrays, so the
per-sweep work is pure gather/scatter/copy:

* **initial sends** — intra-node direct segments and this rank's gather
  contributions, packed straight from the owned vector slice;
* **forward duties** (source-node leader) — wait for the co-located
  gathers, assemble the deduplicated aggregate, send it to the
  destination leader;
* **scatter duties** (destination-node leader) — wait for the forward,
  fan the per-rank subsets out, keep its own share;
* **final receives** — direct and scatter segments landing in the halo
  buffer at explicit positions.

All sends are buffered (mpilite's router copies on ``put``), so the
dependency chain gather → forward → scatter cannot deadlock regardless
of the order ranks reach :meth:`finish`.  Every index array works on
1-D vectors and ``(n, k)`` blocks alike (axis-0 indexing), and since
the exchange only ever *copies* float64 payloads, results are
bit-identical to the direct path by construction.

In sweep-IR terms (:mod:`repro.program`) this class is the ``plan``
lowering of the communication ops: ``POST_RECVS`` maps to
:meth:`post_receives`, ``POST_SENDS`` to :meth:`initial_sends` (packing
fused in, so the program's ``PACK`` is a no-op under this lowering) and
``WAITALL`` to :meth:`finish` — see ``repro.program.exec``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.comm.plan import CommPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.halo import RankHalo
    from repro.mpilite.comm import Comm, Request

__all__ = ["PLAN_TAG_BASE", "RankExchange"]

#: mpilite tag of channel 0; each plan channel gets its own tag, so the
#: per-(src, dst, tag) FIFO keeps successive sweeps ordered.
PLAN_TAG_BASE = 64


@dataclass(frozen=True)
class _ForwardDuty:
    out_channel: int
    dst: int
    size: int
    own_pos: np.ndarray | None  # positions of the leader's own share
    own_local: np.ndarray | None  # matching local indices into the owned slice
    parts: tuple[tuple[int, np.ndarray], ...]  # (gather channel, positions)


@dataclass(frozen=True)
class _ScatterDuty:
    in_channel: int
    sends: tuple[tuple[int, int, np.ndarray], ...]  # (dst rank, channel, positions)
    own: tuple[np.ndarray, np.ndarray] | None  # (positions, halo indices)


class RankExchange:
    """One rank's compiled node-aware exchange (see module docstring)."""

    def __init__(self, plan: CommPlan, halo: "RankHalo") -> None:
        if plan.kind != "node-aware":
            raise ValueError(f"RankExchange needs a node-aware plan, got {plan.kind!r}")
        rank = halo.rank
        my_node = plan.rank_node[rank]
        row_lo = halo.row_lo
        direct_channel = {
            (m.src, m.dst): m.channel for m in plan.messages if m.phase == "direct"
        }

        # inbound posts: (channel, source rank), in plan order
        self._recv_posts = [
            (ch, plan.messages[ch].src) for ch in plan.scripts[rank].recv_channels
        ]

        initial: list[tuple[int, int, np.ndarray]] = []  # (dst, channel, local idx)
        for dst, _count in halo.send_to:
            if plan.rank_node[dst] == my_node:
                initial.append((dst, direct_channel[(rank, dst)], halo.send_indices[dst]))

        finals: list[tuple[int, np.ndarray]] = []  # (channel, halo indices)
        pos = 0
        for src, count in halo.recv_from:
            if plan.rank_node[src] == my_node:
                finals.append(
                    (direct_channel[(src, rank)], np.arange(pos, pos + count))
                )
            pos += count

        forwards: list[_ForwardDuty] = []
        scatters: list[_ScatterDuty] = []
        for (src_node, dst_node), edge in plan.edges.items():
            if src_node == my_node:
                own_pos = edge.contributors.get(rank)
                own_local = edge.columns[own_pos] - row_lo if own_pos is not None else None
                if rank == plan.leaders[src_node]:
                    if edge.gather_channels:
                        forwards.append(
                            _ForwardDuty(
                                out_channel=edge.forward_channel,
                                dst=plan.leaders[dst_node],
                                size=int(edge.columns.size),
                                own_pos=own_pos,
                                own_local=own_local,
                                parts=tuple(
                                    (ch, edge.contributors[p])
                                    for p, ch in sorted(edge.gather_channels.items())
                                ),
                            )
                        )
                    else:
                        # leader owns the whole aggregate: plain initial send
                        initial.append(
                            (
                                plan.leaders[dst_node],
                                edge.forward_channel,
                                edge.columns - row_lo,
                            )
                        )
                elif own_pos is not None:
                    initial.append(
                        (plan.leaders[src_node], edge.gather_channels[rank], own_local)
                    )
            if dst_node == my_node:
                entry = edge.consumers.get(rank)
                if rank == plan.leaders[dst_node]:
                    scatters.append(
                        _ScatterDuty(
                            in_channel=edge.forward_channel,
                            sends=tuple(
                                (q, ch, edge.consumers[q][0])
                                for q, ch in sorted(edge.scatter_channels.items())
                            ),
                            own=entry,
                        )
                    )
                elif entry is not None:
                    finals.append((edge.scatter_channels[rank], entry[1]))

        self._initial_sends = initial
        self._final_recvs = finals
        self._forward_duties = forwards
        self._scatter_duties = scatters

    # ------------------------------------------------------------------
    def post_receives(self, comm: "Comm") -> dict[int, "Request"]:
        """Post every inbound message; returns requests keyed by channel."""
        return {
            ch: comm.irecv(src, PLAN_TAG_BASE + ch) for ch, src in self._recv_posts
        }

    def initial_sends(self, comm: "Comm", x: np.ndarray) -> None:
        """Pack and send everything payload-ready at sweep start."""
        for dst, ch, idx in self._initial_sends:
            comm.Send(x[idx], dst, PLAN_TAG_BASE + ch)

    def finish(
        self,
        comm: "Comm",
        x: np.ndarray,
        reqs: dict[int, "Request"],
        halo_out: np.ndarray,
    ) -> None:
        """Complete relays and land every halo segment in *halo_out*."""
        for fd in self._forward_duties:
            agg = np.empty((fd.size,) + x.shape[1:])
            if fd.own_pos is not None:
                agg[fd.own_pos] = x[fd.own_local]
            for ch, pos in fd.parts:
                agg[pos] = reqs.pop(ch).wait()
            comm.Send(agg, fd.dst, PLAN_TAG_BASE + fd.out_channel)
        for sd in self._scatter_duties:
            agg = reqs.pop(sd.in_channel).wait()
            for q, ch, pos in sd.sends:
                comm.Send(agg[pos], q, PLAN_TAG_BASE + ch)
            if sd.own is not None:
                pos, halo_idx = sd.own
                halo_out[halo_idx] = agg[pos]
        for ch, halo_idx in self._final_recvs:
            halo_out[halo_idx] = reqs.pop(ch).wait()
