"""Predicted message/volume/latency accounting of communication plans.

:func:`plan_stats` reduces a :class:`~repro.comm.plan.CommPlan` to the
numbers that decide between strategies — message counts, injected
inter-node bytes, the worst per-NIC load, and the **duplicate factor**
(injected bytes over the deduplicated lower bound: how many copies of
the same RHS element the plan pushes through the NICs).  A direct plan
with several ranks per node has a duplicate factor > 1 exactly when two
ranks on one destination node need the same element; a node-aware plan
is 1 by construction.

:func:`predicted_exchange_seconds` is a deliberately coarse alpha-beta
model (per-node message latency + NIC serialisation + intra-node hops)
— good for ranking plans in a comparison table, not for replacing the
simulator.  These helpers are re-exported through ``repro.model``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm.plan import ELEMENT_BYTES, CommPlan
from repro.util import Table

__all__ = [
    "PlanStats",
    "PlanComparison",
    "plan_stats",
    "compare_plans",
    "predicted_exchange_seconds",
]


@dataclass(frozen=True)
class PlanStats:
    """Per-sweep accounting of one communication plan (single RHS)."""

    kind: str
    n_ranks: int
    n_nodes: int
    messages: int
    internode_messages: int
    intranode_messages: int
    internode_bytes: int
    intranode_bytes: int
    max_nic_out_bytes: int
    max_nic_in_bytes: int
    #: deduplicated inter-node payload — the lower bound any plan can reach
    unique_internode_bytes: int

    @property
    def duplicate_factor(self) -> float:
        """Injected inter-node bytes over the deduplicated lower bound."""
        if self.unique_internode_bytes == 0:
            return 1.0
        return self.internode_bytes / self.unique_internode_bytes

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"{self.kind:>10}: {self.internode_messages:5d} internode msgs "
            f"({self.messages} total) | {self.internode_bytes / 1e6:8.3f} MB injected "
            f"| dup x{self.duplicate_factor:.2f} "
            f"| worst NIC {self.max_nic_out_bytes / 1e6:.3f} MB"
        )


def _unique_internode_bytes(plan: CommPlan) -> int:
    """Deduplicated inter-node payload, identical for every plan kind.

    For a node-aware plan the edge columns *are* the dedup sets.  For a
    direct plan the same bound holds but no edges exist, so fall back to
    summing unique elements per (source node, destination node) pair
    from the messages — which for direct plans requires the halo; the
    callers always have the node-aware twin at hand, so this helper only
    needs the edge-based path.
    """
    return ELEMENT_BYTES * sum(int(e.columns.size) for e in plan.edges.values())


def plan_stats(plan: CommPlan, *, unique_internode_bytes: int | None = None) -> PlanStats:
    """Reduce *plan* to its accounting numbers.

    ``unique_internode_bytes`` (the dedup lower bound) is derived from
    the plan's own edges when present (node-aware); for a direct plan
    pass the bound computed from its node-aware twin, or leave ``None``
    to report the plan's own injected bytes as the bound (duplicate
    factor 1.0).
    """
    nic_out, nic_in = plan.nic_bytes()
    unique = (
        (_unique_internode_bytes(plan) if plan.edges else plan.injected_bytes())
        if unique_internode_bytes is None
        else unique_internode_bytes
    )
    return PlanStats(
        kind=plan.kind,
        n_ranks=plan.nranks,
        n_nodes=plan.n_nodes,
        messages=plan.total_messages(),
        internode_messages=plan.internode_messages(),
        intranode_messages=plan.intranode_messages(),
        internode_bytes=plan.injected_bytes(),
        intranode_bytes=plan.intranode_bytes(),
        max_nic_out_bytes=max(nic_out.values(), default=0),
        max_nic_in_bytes=max(nic_in.values(), default=0),
        unique_internode_bytes=unique,
    )


def predicted_exchange_seconds(
    stats: PlanStats,
    *,
    latency: float = 1.5e-6,
    bandwidth: float = 3.2e9,
    intra_latency: float = 0.6e-6,
    intra_bandwidth: float = 5.0e9,
) -> float:
    """Alpha-beta estimate of one halo exchange under *stats*.

    Per node: its share of inter-node message latencies, the worst NIC's
    serialisation time, plus its share of the intra-node gather/scatter
    hops.  Defaults match the Westmere/QDR cluster presets.
    """
    nodes = max(1, stats.n_nodes)
    inter = (
        stats.internode_messages / nodes * latency
        + stats.max_nic_out_bytes / bandwidth
    )
    intra = (
        stats.intranode_messages / nodes * intra_latency
        + stats.intranode_bytes / nodes / intra_bandwidth
    )
    return inter + intra


@dataclass(frozen=True)
class PlanComparison:
    """Direct vs node-aware accounting for one matrix/partition/placement."""

    direct: PlanStats
    node_aware: PlanStats

    @property
    def message_ratio(self) -> float:
        """Node-aware inter-node messages as a fraction of direct's."""
        if self.direct.internode_messages == 0:
            return 1.0
        return self.node_aware.internode_messages / self.direct.internode_messages

    @property
    def byte_ratio(self) -> float:
        """Node-aware injected bytes as a fraction of direct's."""
        if self.direct.internode_bytes == 0:
            return 1.0
        return self.node_aware.internode_bytes / self.direct.internode_bytes

    @property
    def predicted_speedup(self) -> float:
        """Exchange-time ratio under the alpha-beta model (> 1 favours node-aware)."""
        na = predicted_exchange_seconds(self.node_aware)
        if na == 0:
            return 1.0
        return predicted_exchange_seconds(self.direct) / na

    def render(self, title: str = "communication plan comparison") -> str:
        """Side-by-side table of the two plans."""
        t = Table(
            ["quantity", "direct", "node-aware", "ratio"],
            title=title, float_fmt=".3f",
        )
        d, n = self.direct, self.node_aware
        rows = [
            ("messages/sweep", d.messages, n.messages),
            ("internode messages", d.internode_messages, n.internode_messages),
            ("intranode messages", d.intranode_messages, n.intranode_messages),
            ("injected MB", d.internode_bytes / 1e6, n.internode_bytes / 1e6),
            ("intranode MB", d.intranode_bytes / 1e6, n.intranode_bytes / 1e6),
            ("worst NIC out MB", d.max_nic_out_bytes / 1e6, n.max_nic_out_bytes / 1e6),
            ("duplicate factor", d.duplicate_factor, n.duplicate_factor),
            (
                "predicted exchange us",
                predicted_exchange_seconds(d) * 1e6,
                predicted_exchange_seconds(n) * 1e6,
            ),
        ]
        for name, dv, nv in rows:
            ratio = nv / dv if dv else 1.0
            t.add_row([name, dv, nv, ratio])
        return t.render()


def compare_plans(direct: CommPlan, node_aware: CommPlan) -> PlanComparison:
    """Stats of both plans with a shared dedup lower bound."""
    if direct.kind != "direct" or node_aware.kind != "node-aware":
        raise ValueError(
            f"expected a (direct, node-aware) pair, got "
            f"({direct.kind!r}, {node_aware.kind!r})"
        )
    unique = _unique_internode_bytes(node_aware)
    return PlanComparison(
        direct=plan_stats(direct, unique_internode_bytes=unique),
        node_aware=plan_stats(node_aware, unique_internode_bytes=unique),
    )
