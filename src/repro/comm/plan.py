"""Communication plans: how the halo exchange actually hits the wire.

A :class:`~repro.core.halo.HaloPlan` says *what* every rank needs; a
:class:`CommPlan` says *which messages carry it*.  Two strategies:

* **direct** — the classic lowering, one point-to-point message per
  communicating rank pair.  With several ranks per node this injects
  duplicate RHS elements into the network whenever two ranks on the same
  destination node need the same element.
* **node-aware** (Bienz, Gropp & Olson, see PAPERS.md) — per
  (source node, destination node) pair, deduplicate the RHS elements
  needed by *any* rank on the destination node, gather them intra-node
  to a per-node **leader** rank, forward **one** aggregated inter-node
  message per node pair, and scatter intra-node on arrival.  Messages
  between ranks on the same node stay direct (they never touch a NIC).

A plan is a flat list of :class:`PlanMessage` (indexed by *channel*)
plus one :class:`RankScript` per rank describing which channels the rank
sends at sweep start, which it receives, and which it *relays* (a leader
waiting for gathers before forwarding, or for a forward before
scattering).  Both the simulator (:mod:`repro.comm.sim`) and the
executable mpilite path (:mod:`repro.comm.exec`) replay the same plan,
so predicted and actual message patterns cannot drift apart.

The builders only read public :class:`HaloPlan` attributes, keeping this
package import-light (it is pulled in lazily by ``repro.model``).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.util import check_in

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.halo import HaloPlan

__all__ = [
    "PLAN_KINDS",
    "PHASES",
    "PlanValidationError",
    "PlanMessage",
    "Relay",
    "RankScript",
    "NodeEdge",
    "CommPlan",
    "build_comm_plan",
    "cached_comm_plan",
]

PLAN_KINDS = ("direct", "node-aware")


class PlanValidationError(AssertionError):
    """An invalid communication plan, carrying the linter's findings.

    Subclasses ``AssertionError`` because :meth:`CommPlan.validate`
    historically asserted; callers catching that still work, and new
    callers get the full finding list with rank/phase/channel provenance.
    """

    def __init__(self, message: str, findings: list | None = None) -> None:
        super().__init__(message)
        self.findings = findings or []

#: Message roles, in pipeline order.  Direct plans use only ``direct``.
PHASES = ("direct", "gather", "forward", "scatter")

#: Bytes per RHS element on the wire (float64); matches repro.core.halo.
ELEMENT_BYTES = 8


@dataclass(frozen=True)
class PlanMessage:
    """One point-to-point message of the plan (element counts are per RHS)."""

    channel: int
    src: int
    dst: int
    src_node: int
    dst_node: int
    n_elements: int
    phase: str

    @property
    def nbytes(self) -> int:
        """Payload bytes for a single right-hand side."""
        return ELEMENT_BYTES * self.n_elements

    @property
    def internode(self) -> bool:
        """Whether the message crosses a node boundary (touches a NIC)."""
        return self.src_node != self.dst_node


@dataclass(frozen=True)
class Relay:
    """A forwarding duty: once all *recv_channels* arrived, send *send_channels*."""

    recv_channels: tuple[int, ...]
    send_channels: tuple[int, ...]


@dataclass
class RankScript:
    """One rank's part in replaying the plan, per sweep.

    ``send_channels`` are payload-ready at sweep start (direct messages,
    gather contributions, and forwards with no gathers to wait for);
    ``recv_channels`` is every inbound message; ``relays`` are the
    leader duties chaining recvs to dependent sends.
    """

    rank: int
    send_channels: list[int] = field(default_factory=list)
    recv_channels: list[int] = field(default_factory=list)
    relays: list[Relay] = field(default_factory=list)
    #: RHS elements this rank packs into send buffers at sweep start
    n_packed_elements: int = 0


@dataclass
class NodeEdge:
    """Aggregated traffic of one (source node, destination node) pair.

    ``columns`` is the deduplicated ascending set of global RHS indices
    any rank on the destination node needs from the source node.
    ``contributors`` maps each owning rank to its positions in
    ``columns``; ``consumers`` maps each needing rank to
    ``(positions in columns, positions in its halo buffer)``.
    """

    src_node: int
    dst_node: int
    columns: np.ndarray
    contributors: dict[int, np.ndarray]
    consumers: dict[int, tuple[np.ndarray, np.ndarray]]
    gather_channels: dict[int, int] = field(default_factory=dict)
    forward_channel: int = -1
    scatter_channels: dict[int, int] = field(default_factory=dict)


@dataclass
class CommPlan:
    """A fully lowered communication plan for one halo plan on one placement."""

    kind: str
    rank_node: tuple[int, ...]
    leaders: dict[int, int]
    messages: list[PlanMessage]
    scripts: list[RankScript]
    #: node-aware aggregation bookkeeping, keyed ``(src_node, dst_node)``;
    #: empty for direct plans
    edges: dict[tuple[int, int], NodeEdge] = field(default_factory=dict)

    @property
    def nranks(self) -> int:
        """Number of ranks the plan covers."""
        return len(self.scripts)

    @property
    def n_nodes(self) -> int:
        """Number of distinct nodes in the placement."""
        return len(set(self.rank_node))

    @property
    def n_channels(self) -> int:
        """Number of distinct messages per sweep."""
        return len(self.messages)

    def total_messages(self) -> int:
        """All messages per sweep (intra- and inter-node)."""
        return len(self.messages)

    def internode_messages(self) -> int:
        """Messages crossing node boundaries per sweep."""
        return sum(1 for m in self.messages if m.internode)

    def intranode_messages(self) -> int:
        """Messages staying on one node per sweep."""
        return sum(1 for m in self.messages if not m.internode)

    def injected_bytes(self) -> int:
        """Bytes injected into the interconnect (inter-node only), per RHS."""
        return sum(m.nbytes for m in self.messages if m.internode)

    def intranode_bytes(self) -> int:
        """Bytes moved over shared memory (intra-node messages), per RHS."""
        return sum(m.nbytes for m in self.messages if not m.internode)

    def nic_bytes(self) -> tuple[dict[int, int], dict[int, int]]:
        """Per-node (injected, extracted) inter-node bytes, per RHS."""
        out: dict[int, int] = {}
        inn: dict[int, int] = {}
        for m in self.messages:
            if m.internode:
                out[m.src_node] = out.get(m.src_node, 0) + m.nbytes
                inn[m.dst_node] = inn.get(m.dst_node, 0) + m.nbytes
        return out, inn

    def validate(self, halo: "HaloPlan") -> None:
        """Run the full plan linter (:mod:`repro.check.lint`) against *halo*.

        Raises :class:`PlanValidationError` (an ``AssertionError``
        subclass, for backward compatibility) listing *every* violated
        invariant — halo coverage, volume conservation, relay
        exactly-once duties, phase topology — each naming the offending
        rank/phase/channel.  Cheap enough to run on construction in
        tests.
        """
        from repro.check.lint import lint_comm_plan  # lazy: avoids a cycle

        findings = lint_comm_plan(self, halo)
        if findings:
            lines = [f"invalid {self.kind} comm plan ({len(findings)} finding(s)):"]
            lines.extend("  - " + f.describe() for f in findings)
            raise PlanValidationError("\n".join(lines), findings)


def _node_groups(rank_node: Sequence[int]) -> tuple[dict[int, list[int]], dict[int, int]]:
    groups: dict[int, list[int]] = {}
    for rank, node in enumerate(rank_node):
        groups.setdefault(int(node), []).append(rank)
    leaders = {node: min(ranks) for node, ranks in groups.items()}
    return groups, leaders


def build_direct_plan(halo: "HaloPlan", rank_node: Sequence[int]) -> CommPlan:
    """Lower *halo* to one message per communicating rank pair."""
    node = tuple(int(n) for n in rank_node)
    if len(node) != halo.nranks:
        raise ValueError(f"rank_node has {len(node)} entries for {halo.nranks} ranks")
    _groups, leaders = _node_groups(node)
    messages: list[PlanMessage] = []
    scripts = [RankScript(rank=r) for r in range(halo.nranks)]
    for rh in halo.ranks:
        for dst, count in rh.send_to:
            ch = len(messages)
            messages.append(
                PlanMessage(
                    channel=ch, src=rh.rank, dst=dst,
                    src_node=node[rh.rank], dst_node=node[dst],
                    n_elements=count, phase="direct",
                )
            )
            scripts[rh.rank].send_channels.append(ch)
            scripts[dst].recv_channels.append(ch)
            scripts[rh.rank].n_packed_elements += count
    return CommPlan(
        kind="direct", rank_node=node, leaders=leaders,
        messages=messages, scripts=scripts,
    )


def build_node_aware_plan(halo: "HaloPlan", rank_node: Sequence[int]) -> CommPlan:
    """Lower *halo* to the 3-step gather/forward/scatter plan.

    Intra-node rank pairs keep their direct message (shared-memory
    transport is cheap and aggregation would only add hops); every
    inter-node (source node, destination node) pair sends exactly one
    aggregated forward message between the two node leaders.
    """
    node = tuple(int(n) for n in rank_node)
    if len(node) != halo.nranks:
        raise ValueError(f"rank_node has {len(node)} entries for {halo.nranks} ranks")
    groups, leaders = _node_groups(node)
    node_arr = np.asarray(node, dtype=np.int64)
    part = halo.partition

    # per rank: owner node of every halo-buffer slot
    owner_node: list[np.ndarray] = []
    for rh in halo.ranks:
        cols = rh.halo_columns
        if cols is None:
            raise ValueError("node-aware planning needs halo_columns on every rank")
        owners = part.owner_of(cols) if cols.size else np.zeros(0, dtype=np.int64)
        owner_node.append(node_arr[owners])

    messages: list[PlanMessage] = []
    scripts = [RankScript(rank=r) for r in range(halo.nranks)]

    def add_message(src: int, dst: int, n_elements: int, phase: str) -> int:
        ch = len(messages)
        messages.append(
            PlanMessage(
                channel=ch, src=src, dst=dst,
                src_node=node[src], dst_node=node[dst],
                n_elements=n_elements, phase=phase,
            )
        )
        scripts[dst].recv_channels.append(ch)
        return ch

    # intra-node pairs: unchanged direct messages
    for rh in halo.ranks:
        for dst, count in rh.send_to:
            if node[dst] == node[rh.rank]:
                ch = add_message(rh.rank, dst, count, "direct")
                scripts[rh.rank].send_channels.append(ch)
                scripts[rh.rank].n_packed_elements += count

    # inter-node: one aggregated edge per (source node, destination node)
    edges: dict[tuple[int, int], NodeEdge] = {}
    for dst_node in sorted(groups):
        consumers_by_src: dict[int, list[int]] = {}
        for q in groups[dst_node]:
            for src_node in np.unique(owner_node[q]):
                sn = int(src_node)
                if sn != dst_node:
                    consumers_by_src.setdefault(sn, []).append(q)
        for src_node in sorted(consumers_by_src):
            consumers = consumers_by_src[src_node]
            columns = np.unique(
                np.concatenate(
                    [
                        halo.ranks[q].halo_columns[owner_node[q] == src_node]
                        for q in consumers
                    ]
                )
            )
            owners = part.owner_of(columns)
            edge = NodeEdge(
                src_node=src_node, dst_node=dst_node, columns=columns,
                contributors={}, consumers={},
            )
            for p in groups[src_node]:
                pos = np.flatnonzero(owners == p)
                if pos.size:
                    edge.contributors[p] = pos
            for q in consumers:
                halo_idx = np.flatnonzero(owner_node[q] == src_node)
                pos = np.searchsorted(columns, halo.ranks[q].halo_columns[halo_idx])
                edge.consumers[q] = (pos, halo_idx)
            src_leader = leaders[src_node]
            dst_leader = leaders[dst_node]
            # gather: each non-leader contributor sends its share to the leader
            for p, pos in edge.contributors.items():
                if p != src_leader:
                    ch = add_message(p, src_leader, int(pos.size), "gather")
                    edge.gather_channels[p] = ch
                    scripts[p].send_channels.append(ch)
                    scripts[p].n_packed_elements += int(pos.size)
            # forward: one aggregated message between the node leaders
            fwd = add_message(src_leader, dst_leader, int(columns.size), "forward")
            edge.forward_channel = fwd
            # scatter: the destination leader fans the aggregate out
            for q, (pos, _halo_idx) in edge.consumers.items():
                if q != dst_leader:
                    ch = add_message(dst_leader, q, int(pos.size), "scatter")
                    edge.scatter_channels[q] = ch
            if edge.gather_channels:
                scripts[src_leader].relays.append(
                    Relay(
                        recv_channels=tuple(sorted(edge.gather_channels.values())),
                        send_channels=(fwd,),
                    )
                )
            else:
                # the leader owns every needed element — forward is
                # payload-ready at sweep start
                scripts[src_leader].send_channels.append(fwd)
                scripts[src_leader].n_packed_elements += int(columns.size)
            if edge.scatter_channels:
                scripts[dst_leader].relays.append(
                    Relay(
                        recv_channels=(fwd,),
                        send_channels=tuple(sorted(edge.scatter_channels.values())),
                    )
                )
            edges[(src_node, dst_node)] = edge

    return CommPlan(
        kind="node-aware", rank_node=node, leaders=leaders,
        messages=messages, scripts=scripts, edges=edges,
    )


def build_comm_plan(
    halo: "HaloPlan", rank_node: Sequence[int], kind: str = "direct"
) -> CommPlan:
    """Build a communication plan of the requested *kind*."""
    check_in(kind, PLAN_KINDS, "kind")
    if kind == "direct":
        return build_direct_plan(halo, rank_node)
    return build_node_aware_plan(halo, rank_node)


# ----------------------------------------------------------------------
# plan cache: like cached_halo_plan, keyed on the halo plan's identity —
# solvers/benchmarks replay the same plan thousands of times
# ----------------------------------------------------------------------
_COMM_CACHE: dict[tuple[int, tuple[int, ...], str], tuple[weakref.ref, CommPlan]] = {}
_COMM_CACHE_MAX = 32


def cached_comm_plan(
    halo: "HaloPlan", rank_node: Sequence[int], kind: str = "direct"
) -> CommPlan:
    """Build (or reuse) the communication plan for *halo* on a placement."""
    key = (id(halo), tuple(int(n) for n in rank_node), kind)
    hit = _COMM_CACHE.get(key)
    if hit is not None and hit[0]() is halo:
        return hit[1]
    plan = build_comm_plan(halo, rank_node, kind)
    dead = [k for k, (ref, _p) in _COMM_CACHE.items() if ref() is None]
    for k in dead:
        del _COMM_CACHE[k]
    if key not in _COMM_CACHE:
        while len(_COMM_CACHE) >= _COMM_CACHE_MAX:
            del _COMM_CACHE[next(iter(_COMM_CACHE))]
    _COMM_CACHE[key] = (weakref.ref(halo), plan)
    return plan
