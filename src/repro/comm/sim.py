"""Replaying a communication plan inside the performance simulator.

One :class:`SimExchange` per rank drives the plan's messages through the
simulated MPI: sweep-start sends and receives are posted where the sweep
program's ``POST_SENDS``/``POST_RECVS`` ops execute (the ``plan``
lowering in ``repro.program.sim``), and every
:class:`~repro.comm.plan.Relay` (a leader waiting for intra-node gathers
before forwarding, or for a forward before scattering) becomes a spawned
simulator subprocess.  Relay sends inherit the full MPI progress
semantics — a forward posted while its rank computes stays gated until
the rank re-enters the library, exactly like any other rendezvous
message.

Channel tags are ``sweep * n_channels + channel``, unique per logical
message per sweep, so drifting ranks can never mismatch them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.comm.plan import ELEMENT_BYTES, CommPlan
from repro.frame.events import SimEvent, all_of

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.schemes import RankContext

__all__ = ["SimExchange"]


class _RelayHandle:
    """Waitall-compatible handle for a relay duty (only ``done`` is read)."""

    __slots__ = ("done",)

    def __init__(self) -> None:
        self.done = SimEvent()


class SimExchange:
    """Per-rank replay driver for one :class:`CommPlan` in the simulator."""

    def __init__(self, plan: CommPlan, rank: int) -> None:
        self.plan = plan
        self.script = plan.scripts[rank]
        self._stride = max(1, plan.n_channels)
        # per-sweep inbound requests, keyed by channel, for the relays
        self._pending: dict[int, dict[int, object]] = {}

    def _tag(self, sweep: int, channel: int) -> int:
        return sweep * self._stride + channel

    def post_receives(self, ctx: "RankContext", sweep: int) -> list:
        """Post every inbound message of this rank for one sweep."""
        msgs = self.plan.messages
        reqs: dict[int, object] = {}
        for ch in self.script.recv_channels:
            m = msgs[ch]
            reqs[ch] = ctx.mpi.irecv(
                ctx.rank, m.src, ELEMENT_BYTES * ctx.block_k * m.n_elements,
                self._tag(sweep, ch), phase=m.phase,
            )
        self._pending[sweep] = reqs
        return list(reqs.values())

    def post_sends(self, ctx: "RankContext", sweep: int) -> list:
        """Post the payload-ready sends and spawn the relay duties.

        Returns the send requests plus one handle per relay; a scheme's
        ``Waitall`` over receives + this list completes only when the
        whole exchange (including forwarded traffic) is done.
        """
        msgs = self.plan.messages
        out: list = []
        for ch in self.script.send_channels:
            m = msgs[ch]
            out.append(
                ctx.mpi.isend(
                    ctx.rank, m.dst, ELEMENT_BYTES * ctx.block_k * m.n_elements,
                    self._tag(sweep, ch), phase=m.phase,
                )
            )
        reqs = self._pending.pop(sweep, {})
        for i, relay in enumerate(self.script.relays):
            handle = _RelayHandle()
            ctx.sim.spawn(
                self._relay(ctx, relay, reqs, sweep, handle),
                name=f"rank{ctx.rank}-relay{sweep}.{i}",
            )
            out.append(handle)
        return out

    def _relay(
        self, ctx: "RankContext", relay, reqs: dict[int, object],
        sweep: int, handle: _RelayHandle,
    ) -> Generator:
        yield all_of([reqs[ch].done for ch in relay.recv_channels])
        msgs = self.plan.messages
        sends = [
            ctx.mpi.isend(
                ctx.rank, msgs[ch].dst,
                ELEMENT_BYTES * ctx.block_k * msgs[ch].n_elements,
                self._tag(sweep, ch), phase=msgs[ch].phase,
            )
            for ch in relay.send_channels
        ]
        yield all_of([s.done for s in sends])
        handle.done.succeed()
