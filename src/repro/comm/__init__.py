"""Communication planning: direct vs node-aware halo exchange lowering."""

from repro.comm.exec import PLAN_TAG_BASE, RankExchange
from repro.comm.plan import (
    PHASES,
    PLAN_KINDS,
    CommPlan,
    NodeEdge,
    PlanMessage,
    PlanValidationError,
    RankScript,
    Relay,
    build_comm_plan,
    cached_comm_plan,
)
from repro.comm.sim import SimExchange
from repro.comm.stats import (
    PlanComparison,
    PlanStats,
    compare_plans,
    plan_stats,
    predicted_exchange_seconds,
)

__all__ = [
    "PLAN_KINDS",
    "PHASES",
    "PLAN_TAG_BASE",
    "PlanValidationError",
    "PlanMessage",
    "Relay",
    "RankScript",
    "NodeEdge",
    "CommPlan",
    "build_comm_plan",
    "cached_comm_plan",
    "SimExchange",
    "RankExchange",
    "PlanStats",
    "PlanComparison",
    "plan_stats",
    "compare_plans",
    "predicted_exchange_seconds",
]
