"""Plain-text rendering of tables and simple line charts.

The paper's figures are reproduced as data series; since the benchmark
environment is headless we render them as aligned ASCII tables and,
where a visual impression helps (scaling curves, occupancy maps), as
ASCII charts.  Everything here is purely presentational — the numbers
are produced by :mod:`repro.experiments`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

__all__ = ["format_table", "ascii_chart", "ascii_heatmap", "Table"]


def _fmt_cell(value: Any, float_fmt: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    float_fmt: str = ".3f",
    title: str | None = None,
) -> str:
    """Render *rows* under *headers* as an aligned, pipe-separated table."""
    str_rows = [[_fmt_cell(v, float_fmt) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class Table:
    """Mutable table builder with named columns.

    >>> t = Table(["nodes", "GFlop/s"])
    >>> t.add_row([1, 4.29])
    >>> print(t.render())        # doctest: +SKIP
    """

    headers: Sequence[str]
    rows: list = field(default_factory=list)
    title: str | None = None
    float_fmt: str = ".3f"

    def add_row(self, row: Sequence[Any]) -> None:
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(self.headers)} columns"
            )
        self.rows.append(list(row))

    def render(self) -> str:
        return format_table(
            self.headers, self.rows, float_fmt=self.float_fmt, title=self.title
        )

    def to_csv(self) -> str:
        out = [",".join(str(h) for h in self.headers)]
        for row in self.rows:
            out.append(",".join(_fmt_cell(v, self.float_fmt) for v in row))
        return "\n".join(out)


_MARKERS = "ox+*#@%&"


def ascii_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 68,
    height: int = 20,
    xlabel: str = "x",
    ylabel: str = "y",
    title: str | None = None,
    y_min: float | None = None,
    y_max: float | None = None,
) -> str:
    """Render one or more ``(x, y)`` series as an ASCII scatter/line chart.

    Each series gets a distinct marker; a legend is appended.  Intended
    for quick visual inspection of scaling curves in terminal output.
    """
    pts = [(x, y) for s in series.values() for (x, y) in s]
    if not pts:
        return "(empty chart)"
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo = min(ys) if y_min is None else y_min
    y_hi = max(ys) if y_max is None else y_max
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def to_col(x: float) -> int:
        return min(width - 1, max(0, int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))))

    def to_row(y: float) -> int:
        frac = (y - y_lo) / (y_hi - y_lo)
        return min(height - 1, max(0, int(round((1.0 - frac) * (height - 1)))))

    for idx, (_name, data) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        for x, y in data:
            grid[to_row(y)][to_col(x)] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{ylabel} (top={y_hi:.3g}, bottom={y_lo:.3g})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {xlabel}: {x_lo:.3g} .. {x_hi:.3g}")
    for idx, name in enumerate(series):
        lines.append(f"  {_MARKERS[idx % len(_MARKERS)]} = {name}")
    return "\n".join(lines)


_SHADES = " .:-=+*#%@"


def ascii_heatmap(
    values: Sequence[Sequence[float]],
    *,
    title: str | None = None,
    log: bool = False,
) -> str:
    """Render a 2-D array of nonnegative values as a character heat map.

    Used for the Fig. 1 block-occupancy sparsity-pattern plots.  With
    ``log=True`` the shading follows ``log10`` of the values, which is how
    the paper colour-codes occupancies spanning 1e-6 .. 0.5.
    """
    rows = [list(map(float, r)) for r in values]
    if not rows:
        return "(empty heatmap)"
    flat = [v for r in rows for v in r if v > 0]
    lines = []
    if title:
        lines.append(title)
    if not flat:
        lines.extend("".join(" " for _ in r) for r in rows)
        return "\n".join(lines)
    if log:
        lo = math.log10(min(flat))
        hi = math.log10(max(flat))
    else:
        lo = 0.0
        hi = max(flat)
    span = (hi - lo) or 1.0
    for r in rows:
        chars = []
        for v in r:
            if v <= 0:
                chars.append(" ")
                continue
            level = (math.log10(v) - lo) / span if log else (v - lo) / span
            level = min(1.0, max(0.0, level))
            # Nonzero cells always render at least the faintest shade.
            idx = max(1, int(round(level * (len(_SHADES) - 1))))
            chars.append(_SHADES[idx])
        lines.append("".join(chars))
    return "\n".join(lines)
