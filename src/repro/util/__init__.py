"""Shared utilities: validation, unit handling, text tables/charts."""

from repro.util.checks import (
    check_array_1d,
    check_dtype_real,
    check_fraction,
    check_in,
    check_nonnegative_int,
    check_positive_float,
    check_positive_int,
    check_same_length,
    check_sorted_nondecreasing,
    require,
)
from repro.util.tables import Table, ascii_chart, ascii_heatmap, format_table
from repro.util.units import (
    GB,
    GIB,
    format_bytes,
    format_time,
    gb_per_s,
    gflop_per_s,
    to_gb_per_s,
    to_gflop_per_s,
    usec,
)

__all__ = [
    "require",
    "check_positive_int",
    "check_nonnegative_int",
    "check_positive_float",
    "check_fraction",
    "check_in",
    "check_array_1d",
    "check_same_length",
    "check_dtype_real",
    "check_sorted_nondecreasing",
    "Table",
    "format_table",
    "ascii_chart",
    "ascii_heatmap",
    "GB",
    "GIB",
    "gb_per_s",
    "gflop_per_s",
    "to_gb_per_s",
    "to_gflop_per_s",
    "usec",
    "format_bytes",
    "format_time",
]
