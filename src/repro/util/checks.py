"""Validation helpers used across the library.

These helpers centralise argument checking so that error messages are
uniform and informative.  All of them raise :class:`ValueError` or
:class:`TypeError` with a message that names the offending parameter.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

__all__ = [
    "require",
    "check_positive_int",
    "check_nonnegative_int",
    "check_positive_float",
    "check_fraction",
    "check_in",
    "check_array_1d",
    "check_same_length",
    "check_dtype_real",
    "check_sorted_nondecreasing",
]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with *message* unless *condition* holds."""
    if not condition:
        raise ValueError(message)


def check_positive_int(value: Any, name: str) -> int:
    """Return *value* as ``int`` if it is a positive integer, else raise."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def check_nonnegative_int(value: Any, name: str) -> int:
    """Return *value* as ``int`` if it is a nonnegative integer, else raise."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return int(value)


def check_positive_float(value: Any, name: str) -> float:
    """Return *value* as ``float`` if it is a positive finite number."""
    try:
        fval = float(value)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a number, got {type(value).__name__}") from exc
    if not np.isfinite(fval) or fval <= 0.0:
        raise ValueError(f"{name} must be positive and finite, got {value}")
    return fval


def check_fraction(value: Any, name: str) -> float:
    """Return *value* as ``float`` if it lies in the closed interval [0, 1]."""
    try:
        fval = float(value)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a number, got {type(value).__name__}") from exc
    if not (0.0 <= fval <= 1.0):
        raise ValueError(f"{name} must lie in [0, 1], got {value}")
    return fval


def check_in(value: Any, options: Iterable[Any], name: str) -> Any:
    """Raise unless *value* is one of *options*; return it unchanged."""
    opts = tuple(options)
    if value not in opts:
        raise ValueError(f"{name} must be one of {opts!r}, got {value!r}")
    return value


def check_array_1d(arr: Any, name: str, dtype: Any = None) -> np.ndarray:
    """Coerce *arr* to a 1-D :class:`numpy.ndarray` (optionally of *dtype*)."""
    out = np.asarray(arr, dtype=dtype)
    if out.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {out.shape}")
    return out


def check_same_length(name_a: str, a: Sequence, name_b: str, b: Sequence) -> None:
    """Raise unless the two sequences have equal length."""
    if len(a) != len(b):
        raise ValueError(
            f"{name_a} and {name_b} must have the same length "
            f"({len(a)} != {len(b)})"
        )


def check_dtype_real(arr: np.ndarray, name: str) -> None:
    """Raise unless *arr* has a real floating or integer dtype."""
    if not (np.issubdtype(arr.dtype, np.floating) or np.issubdtype(arr.dtype, np.integer)):
        raise TypeError(f"{name} must have a real numeric dtype, got {arr.dtype}")


def check_sorted_nondecreasing(arr: np.ndarray, name: str) -> None:
    """Raise unless *arr* is sorted in non-decreasing order."""
    if arr.size > 1 and np.any(np.diff(arr) < 0):
        raise ValueError(f"{name} must be non-decreasing")
