"""Unit helpers and constants used by the performance models.

All bandwidths in this library are in **bytes per second**, all times in
**seconds**, all rates in **flops per second**, unless a name says
otherwise (e.g. ``gib``).  The helpers below exist so that calibration
constants taken from the paper ("21.2 GB/s", "2.25 GFlop/s") can be
written exactly as printed.
"""

from __future__ import annotations

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "KB",
    "MB",
    "GB",
    "gb_per_s",
    "gflop_per_s",
    "to_gb_per_s",
    "to_gflop_per_s",
    "usec",
    "format_bytes",
    "format_time",
]

KIB = 1024
MIB = 1024**2
GIB = 1024**3

# The paper (and STREAM) use decimal GB/s.
KB = 10**3
MB = 10**6
GB = 10**9


def gb_per_s(value: float) -> float:
    """Convert a bandwidth given in decimal GB/s to bytes/s."""
    return float(value) * GB


def gflop_per_s(value: float) -> float:
    """Convert a rate given in GFlop/s to flop/s."""
    return float(value) * 1e9


def to_gb_per_s(bytes_per_s: float) -> float:
    """Convert bytes/s to decimal GB/s (for reporting)."""
    return bytes_per_s / GB


def to_gflop_per_s(flops_per_s: float) -> float:
    """Convert flop/s to GFlop/s (for reporting)."""
    return flops_per_s / 1e9


def usec(value: float) -> float:
    """Convert microseconds to seconds."""
    return float(value) * 1e-6


def format_bytes(nbytes: float) -> str:
    """Human-readable byte count (decimal units, matching GB/s reporting)."""
    n = float(nbytes)
    for unit in ("B", "kB", "MB", "GB", "TB"):
        if abs(n) < 1000.0 or unit == "TB":
            return f"{n:.3g} {unit}"
        n /= 1000.0
    raise AssertionError("unreachable")


def format_time(seconds: float) -> str:
    """Human-readable time with an appropriate SI prefix."""
    s = float(seconds)
    if s == 0:
        return "0 s"
    if abs(s) >= 1.0:
        return f"{s:.3g} s"
    if abs(s) >= 1e-3:
        return f"{s * 1e3:.3g} ms"
    if abs(s) >= 1e-6:
        return f"{s * 1e6:.3g} us"
    return f"{s * 1e9:.3g} ns"
