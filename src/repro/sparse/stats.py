"""Structural statistics of sparse matrices.

These quantities drive both the node-level model (``Nnzr`` enters the
code balance) and the cluster-level communication model (bandwidth /
profile control how much halo data a row-block partition exchanges).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.csr import CSRMatrix

__all__ = ["MatrixStats", "matrix_stats", "bandwidth", "profile", "row_nnz_histogram"]


def bandwidth(A: CSRMatrix) -> int:
    """Matrix (half-)bandwidth: ``max |i - j|`` over nonzeros."""
    if A.nnz == 0:
        return 0
    rows = np.repeat(np.arange(A.nrows, dtype=np.int64), A.row_nnz())
    return int(np.abs(rows - A.col_idx).max())


def profile(A: CSRMatrix) -> int:
    """Matrix profile: sum over rows of ``i - min_j`` (skyline storage size)."""
    if A.nnz == 0:
        return 0
    firsts = A.col_idx[A.row_ptr[:-1][A.row_nnz() > 0]]
    rows = np.flatnonzero(A.row_nnz() > 0)
    return int(np.maximum(rows - firsts, 0).sum())


def row_nnz_histogram(A: CSRMatrix) -> dict[int, int]:
    """Histogram of per-row nonzero counts ``{count: nrows_with_count}``."""
    counts, freq = np.unique(A.row_nnz(), return_counts=True)
    return {int(c): int(f) for c, f in zip(counts, freq)}


@dataclass(frozen=True)
class MatrixStats:
    """Summary structure statistics of a sparse matrix."""

    nrows: int
    ncols: int
    nnz: int
    nnzr: float
    bandwidth: int
    min_row_nnz: int
    max_row_nnz: int
    density: float
    symmetric_structure: bool

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.nrows}x{self.ncols}, nnz={self.nnz} (Nnzr={self.nnzr:.2f}, "
            f"rows {self.min_row_nnz}..{self.max_row_nnz}), bw={self.bandwidth}, "
            f"density={self.density:.2e}"
        )


def matrix_stats(A: CSRMatrix, *, check_symmetry: bool = True) -> MatrixStats:
    """Compute :class:`MatrixStats` for *A*.

    ``check_symmetry`` compares the structure against the transpose and can
    be disabled for very large matrices.
    """
    row_counts = A.row_nnz()
    sym = False
    if check_symmetry and A.nrows == A.ncols:
        t = A.transpose()
        sym = bool(
            np.array_equal(t.row_ptr, A.row_ptr) and np.array_equal(t.col_idx, A.col_idx)
        )
    denom = max(1, A.nrows) * max(1, A.ncols)
    return MatrixStats(
        nrows=A.nrows,
        ncols=A.ncols,
        nnz=A.nnz,
        nnzr=A.nnzr,
        bandwidth=bandwidth(A),
        min_row_nnz=int(row_counts.min()) if row_counts.size else 0,
        max_row_nnz=int(row_counts.max()) if row_counts.size else 0,
        density=A.nnz / denom,
        symmetric_structure=sym,
    )
