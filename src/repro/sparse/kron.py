"""Kronecker products of sparse matrices.

Tensor-product Hamiltonians (electrons ⊗ phonons, Sect. 1.3.1) are most
naturally assembled as sums of Kronecker products; this module provides
the vectorised product plus a fast special case for a diagonal left
factor, which is what the Holstein coupling term ``n_i ⊗ (b_i† + b_i)``
needs.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix

__all__ = ["kron", "kron_diag_left", "kron_sum"]


def kron(A: CSRMatrix, B: CSRMatrix) -> CSRMatrix:
    """Kronecker product ``A ⊗ B`` of two CSR matrices.

    Entry ``(i*p + k, j*q + l) = a_ij * b_kl`` for ``B`` of shape
    ``(p, q)``.  The result has ``nnz(A) * nnz(B)`` entries and is built
    in one vectorised outer-product pass.
    """
    m, n = A.shape
    p, q = B.shape
    a = A.to_coo()
    b = B.to_coo()
    if a.nnz == 0 or b.nnz == 0:
        return COOMatrix.empty(m * p, n * q).to_csr()
    rows = (a.row[:, None] * np.int64(p) + b.row[None, :]).ravel()
    cols = (a.col[:, None] * np.int64(q) + b.col[None, :]).ravel()
    vals = (a.val[:, None] * b.val[None, :]).ravel()
    return COOMatrix(m * p, n * q, rows, cols, vals).to_csr()


def kron_diag_left(diag: np.ndarray, B: CSRMatrix) -> CSRMatrix:
    """``diag(d) ⊗ B`` without materialising the diagonal matrix.

    Rows ``i*p .. (i+1)*p`` of the result are ``d[i] * B`` shifted to the
    block column ``i``; zero diagonal entries produce empty blocks.
    """
    d = np.asarray(diag, dtype=np.float64)
    if d.ndim != 1:
        raise ValueError("diag must be one-dimensional")
    m = d.size
    p, q = B.shape
    nz = np.flatnonzero(d != 0.0)
    if nz.size == 0 or B.nnz == 0:
        return COOMatrix.empty(m * p, m * q).to_csr()
    b = B.to_coo()
    rows = (nz[:, None] * np.int64(p) + b.row[None, :]).ravel()
    cols = (nz[:, None] * np.int64(q) + b.col[None, :]).ravel()
    vals = (d[nz][:, None] * b.val[None, :]).ravel()
    return COOMatrix(m * p, m * q, rows, cols, vals).to_csr()


def kron_sum(A: CSRMatrix, B: CSRMatrix) -> CSRMatrix:
    """Kronecker sum ``A ⊗ I + I ⊗ B`` for square ``A`` (m×m), ``B`` (p×p).

    The standard composition of two independent subsystem Hamiltonians on
    the product space.
    """
    if A.nrows != A.ncols or B.nrows != B.ncols:
        raise ValueError("kron_sum requires square factors")
    left = kron(A, CSRMatrix.identity(B.nrows))
    right = kron(CSRMatrix.identity(A.nrows), B)
    return left.add(right)
