"""Symmetric CRS storage and kernel (the paper's foregone optimization).

Sect. 1.3.1: "For real-valued, symmetric matrices as considered here it
is sufficient to store the upper triangular matrix elements and perform
a parallel symmetric CRS sparse MVM.  The data transfer volume is then
reduced by almost a factor of two, allowing for a corresponding
performance improvement."  The paper deliberately does *not* use it —
partly because "an efficient shared memory implementation of a
symmetric CRS sparse MVM base routine has not yet been presented".

This module implements the optimization as an extension so its cost
model can be studied:

* :class:`SymmetricCSR` stores the upper triangle (incl. diagonal),
* :func:`spmv_symmetric` applies both ``A x`` contributions of every
  stored entry (the scatter to ``C[j]`` is what makes shared-memory
  parallelisation hard — threads would race on ``C``),
* :func:`symmetric_code_balance` extends Eq. 1: per stored nonzero the
  kernel still moves 12 + κ bytes but performs ~4 flops, roughly
  halving the balance exactly as the paper predicts.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.util import check_positive_float

__all__ = ["SymmetricCSR", "spmv_symmetric", "symmetric_code_balance"]


class SymmetricCSR:
    """Upper-triangular CRS storage of a symmetric matrix.

    Built from a full symmetric :class:`CSRMatrix`; keeps entries with
    ``col >= row`` only, cutting matrix memory (and stream traffic)
    nearly in half for matrices with small diagonals.
    """

    __slots__ = ("upper", "n")

    def __init__(self, upper: CSRMatrix, n: int) -> None:
        self.upper = upper
        self.n = n

    @classmethod
    def from_csr(cls, A: CSRMatrix, *, check: bool = True, tol: float = 1e-12) -> "SymmetricCSR":
        """Extract the upper triangle of a symmetric matrix.

        With ``check=True`` (default) the input's symmetry is verified —
        silently symmetrising an asymmetric matrix would corrupt results.
        """
        if A.nrows != A.ncols:
            raise ValueError("symmetric storage requires a square matrix")
        if check and not A.is_symmetric(tol=tol):
            raise ValueError("matrix is not symmetric (within tolerance)")
        rows = np.repeat(np.arange(A.nrows, dtype=np.int64), A.row_nnz())
        keep = A.col_idx >= rows
        kept_rows = rows[keep]
        row_ptr = np.zeros(A.nrows + 1, dtype=np.int64)
        np.add.at(row_ptr, kept_rows + 1, 1)
        np.cumsum(row_ptr, out=row_ptr)
        upper = CSRMatrix(
            row_ptr, A.col_idx[keep].copy(), A.val[keep].copy(), ncols=A.ncols, check=False
        )
        return cls(upper, A.nrows)

    @property
    def nnz_stored(self) -> int:
        """Stored (upper-triangle) nonzeros."""
        return self.upper.nnz

    @property
    def nnz_full(self) -> int:
        """Nonzeros of the represented full matrix."""
        diag = np.count_nonzero(self.upper.diagonal())
        return 2 * self.upper.nnz - diag

    def memory_bytes(self) -> int:
        """Bytes of matrix storage (roughly half the full CSR)."""
        return self.upper.memory_bytes()

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` via the symmetric kernel."""
        return spmv_symmetric(self, x)

    def to_full(self) -> CSRMatrix:
        """Expand back to full CSR storage."""
        strict = self._strict_upper()
        return self.upper.add(strict.transpose())

    def _strict_upper(self) -> CSRMatrix:
        rows = np.repeat(np.arange(self.upper.nrows, dtype=np.int64), self.upper.row_nnz())
        keep = self.upper.col_idx > rows
        kept_rows = rows[keep]
        row_ptr = np.zeros(self.upper.nrows + 1, dtype=np.int64)
        np.add.at(row_ptr, kept_rows + 1, 1)
        np.cumsum(row_ptr, out=row_ptr)
        return CSRMatrix(
            row_ptr,
            self.upper.col_idx[keep].copy(),
            self.upper.val[keep].copy(),
            ncols=self.upper.ncols,
            check=False,
        )


def spmv_symmetric(A: SymmetricCSR, x: np.ndarray) -> np.ndarray:
    """Symmetric spMVM: each stored entry contributes to two result rows.

    ``C[i] += a_ij x[j]`` (the gather, as in plain CRS) plus
    ``C[j] += a_ij x[i]`` for off-diagonal entries (the scatter).  The
    scatter is implemented with ``np.add.at``; in a threaded C kernel
    this is precisely the write conflict the paper says had no efficient
    shared-memory solution at the time.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (A.n,):
        raise ValueError(f"x must have shape ({A.n},), got {x.shape}")
    up = A.upper
    y = up.matvec(x)  # gather part: upper triangle including diagonal
    rows = np.repeat(np.arange(up.nrows, dtype=np.int64), up.row_nnz())
    off = up.col_idx > rows
    # scatter part: transpose contributions of strictly-upper entries
    np.add.at(y, up.col_idx[off], up.val[off] * x[rows[off]])
    return y


def symmetric_code_balance(nnzr_full: float, kappa: float = 0.0) -> float:
    """Bytes/flop of the symmetric kernel (extension of Eq. 1).

    Per *stored* nonzero (≈ half the full count) the kernel streams
    ``12 + κ`` bytes but performs ≈ 4 flops (two MACs), and the result
    vector is both read and written per sweep (the scatter updates make
    ``C`` a load+store stream: 24 bytes/row instead of 16).  For
    ``Nnzr = 15``::

        B_sym ≈ 3 + 18/Nnzr + κ/4  ≈ 4.2  bytes/flop   (vs 6.8 full)

    — the "almost a factor of two" of Sect. 1.3.1.
    """
    nnzr_full = check_positive_float(nnzr_full, "nnzr_full")
    if kappa < 0:
        raise ValueError(f"kappa must be >= 0, got {kappa}")
    # per row: Nnzr/2 stored entries x (12 + kappa) bytes, C read+write+
    # write-allocate (24 B), B loaded once (8 B); flops unchanged: 2*Nnzr
    bytes_per_row = (nnzr_full / 2.0) * (12.0 + kappa) + 24.0 + 8.0
    return bytes_per_row / (2.0 * nnzr_full)
