"""Row-block partitioning of sparse matrices across processes.

MPI parallelisation of spMVM "is generally done by distributing the
nonzeros (or, alternatively, the matrix rows), the right hand side
vector B and the result vector C evenly across MPI processes"
(Sect. 3.1).  The paper uses a *balanced distribution of nonzeros*
(footnote 2); we implement both strategies plus the helper queries the
communication bookkeeping needs.

A partition is represented by its row boundaries: an ``int64`` array
``offsets`` of length ``nparts + 1`` with ``offsets[0] == 0`` and
``offsets[-1] == nrows``; part ``p`` owns rows
``[offsets[p], offsets[p+1])`` and, for square matrices, the matching
slices of B and C.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.util import check_positive_int, require

__all__ = [
    "RowPartition",
    "partition_rows_balanced",
    "partition_nnz_balanced",
    "partition_matrix",
]


@dataclass(frozen=True)
class RowPartition:
    """A contiguous row-block partition of an ``nrows``-row matrix."""

    offsets: np.ndarray  # int64, len nparts+1

    def __post_init__(self) -> None:
        offsets = np.asarray(self.offsets, dtype=np.int64)
        object.__setattr__(self, "offsets", offsets)
        require(offsets.ndim == 1 and offsets.size >= 2, "offsets must have length >= 2")
        require(offsets[0] == 0, "offsets[0] must be 0")
        require(bool(np.all(np.diff(offsets) >= 0)), "offsets must be non-decreasing")

    @property
    def nparts(self) -> int:
        """Number of parts."""
        return int(self.offsets.size - 1)

    @property
    def nrows(self) -> int:
        """Total number of rows covered."""
        return int(self.offsets[-1])

    def bounds(self, part: int) -> tuple[int, int]:
        """Half-open row range ``[lo, hi)`` owned by *part*."""
        if not (0 <= part < self.nparts):
            raise IndexError(f"part {part} out of range (nparts={self.nparts})")
        return int(self.offsets[part]), int(self.offsets[part + 1])

    def size(self, part: int) -> int:
        """Number of rows owned by *part*."""
        lo, hi = self.bounds(part)
        return hi - lo

    def sizes(self) -> np.ndarray:
        """Row counts of all parts."""
        return np.diff(self.offsets)

    def owner_of(self, rows: np.ndarray) -> np.ndarray:
        """Owning part of each global row index (vectorised)."""
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size and (rows.min() < 0 or rows.max() >= self.nrows):
            raise ValueError("row index out of range")
        return np.searchsorted(self.offsets, rows, side="right") - 1

    def local_index(self, rows: np.ndarray) -> np.ndarray:
        """Index of each global row within its owner's block."""
        rows = np.asarray(rows, dtype=np.int64)
        return rows - self.offsets[self.owner_of(rows)]

    def nnz_per_part(self, A: CSRMatrix) -> np.ndarray:
        """Nonzeros of *A* falling into each part's row block."""
        require(A.nrows == self.nrows, "partition does not match matrix")
        return A.row_ptr[self.offsets[1:]] - A.row_ptr[self.offsets[:-1]]

    def imbalance(self, weights: np.ndarray) -> float:
        """Load imbalance ``max(w) / mean(w)`` of per-part weights (1.0 = perfect)."""
        weights = np.asarray(weights, dtype=np.float64)
        mean = weights.mean()
        return float(weights.max() / mean) if mean > 0 else 1.0


def partition_rows_balanced(nrows: int, nparts: int) -> RowPartition:
    """Split rows into *nparts* nearly equal contiguous blocks."""
    nparts = check_positive_int(nparts, "nparts")
    if nrows < 0:
        raise ValueError("nrows must be >= 0")
    base, extra = divmod(nrows, nparts)
    sizes = np.full(nparts, base, dtype=np.int64)
    sizes[:extra] += 1
    offsets = np.zeros(nparts + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    return RowPartition(offsets)


def partition_nnz_balanced(A: CSRMatrix, nparts: int) -> RowPartition:
    """Split rows so each contiguous block carries ≈ ``nnz/nparts`` nonzeros.

    This is the paper's distribution strategy (footnote 2: "We use a
    balanced distribution of nonzeros across the MPI processes").  Row
    boundaries are found by searching the CSR ``row_ptr`` array for the
    ideal nonzero offsets, so the split is O(nparts log nrows).
    """
    nparts = check_positive_int(nparts, "nparts")
    offsets = np.empty(nparts + 1, dtype=np.int64)
    offsets[0] = 0
    offsets[-1] = A.nrows
    if nparts > 1:
        if A.nrows > 1:
            targets = (np.arange(1, nparts, dtype=np.float64) * A.nnz / nparts).astype(np.int64)
            cuts = np.searchsorted(A.row_ptr[1:-1], targets, side="left") + 1
            # clip so boundaries stay monotone even for pathological matrices
            offsets[1:-1] = np.minimum(np.maximum.accumulate(cuts), A.nrows)
        else:
            # fewer than two rows cannot be cut: part 0 owns everything,
            # the surplus parts are empty (degenerate but valid offsets)
            offsets[1:-1] = A.nrows
    return RowPartition(offsets)


def partition_matrix(A: CSRMatrix, nparts: int, *, strategy: str = "nnz") -> RowPartition:
    """Partition *A* by the named strategy: ``"nnz"`` (paper default) or ``"rows"``."""
    if strategy == "nnz":
        return partition_nnz_balanced(A, nparts)
    if strategy == "rows":
        return partition_rows_balanced(A.nrows, nparts)
    raise ValueError(f"unknown partition strategy {strategy!r} (use 'nnz' or 'rows')")
