"""Sparse matrix substrate: CRS/CSR storage, kernels, reordering, partitioning.

This package implements, from scratch, everything the paper's Sect. 1.2
and 3.1 rely on: the CRS format and its matrix-vector kernels (including
the split local/nonlocal kernel of the overlap schemes), Reverse
Cuthill-McKee reordering, row-block partitioners, structure statistics,
block-occupancy pattern aggregation (Fig. 1) and Matrix Market I/O.

Kernel dispatch is pluggable: :mod:`repro.sparse.registry` maps
``"format/variant"`` names to :class:`KernelSpec` bundles (CSR
reference, SELL-C-sigma, and anything registered at runtime), and the
engine / sweep-interpreter / benchmark layers all resolve kernels
through it.
"""

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.io import (
    dumps_matrix_market,
    loads_matrix_market,
    read_matrix_market,
    write_matrix_market,
)
from repro.sparse.kron import kron, kron_diag_left, kron_sum
from repro.sparse.matmul import matmul
from repro.sparse.partition import (
    RowPartition,
    partition_matrix,
    partition_nnz_balanced,
    partition_rows_balanced,
)
from repro.sparse.patterns import OccupancyGrid, block_occupancy
from repro.sparse.registry import (
    DEFAULT_KERNEL,
    KernelSpec,
    available_kernels,
    build_operator,
    get_kernel,
    register_kernel,
    unregister_kernel,
)
from repro.sparse.reorder import (
    bfs_levels,
    cuthill_mckee,
    pseudo_peripheral_node,
    reverse_cuthill_mckee,
)
from repro.sparse.sell import (
    SellMatrix,
    sell_spmm,
    sell_spmm_add,
    sell_spmv,
    sell_spmv_add,
)
from repro.sparse.spmm import spmm, spmm_add, spmm_rows, spmm_traffic
from repro.sparse.spmv import flops, spmv, spmv_add, spmv_rows, spmv_split, spmv_traffic
from repro.sparse.stats import MatrixStats, bandwidth, matrix_stats, profile, row_nnz_histogram
from repro.sparse.symmetric import SymmetricCSR, spmv_symmetric, symmetric_code_balance

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "RowPartition",
    "partition_matrix",
    "partition_nnz_balanced",
    "partition_rows_balanced",
    "kron",
    "kron_diag_left",
    "kron_sum",
    "matmul",
    "OccupancyGrid",
    "block_occupancy",
    "cuthill_mckee",
    "reverse_cuthill_mckee",
    "bfs_levels",
    "pseudo_peripheral_node",
    "spmv",
    "spmv_add",
    "spmv_rows",
    "spmv_split",
    "spmv_traffic",
    "spmm",
    "spmm_add",
    "spmm_rows",
    "spmm_traffic",
    "flops",
    "DEFAULT_KERNEL",
    "KernelSpec",
    "available_kernels",
    "build_operator",
    "get_kernel",
    "register_kernel",
    "unregister_kernel",
    "SellMatrix",
    "sell_spmv",
    "sell_spmv_add",
    "sell_spmm",
    "sell_spmm_add",
    "MatrixStats",
    "matrix_stats",
    "bandwidth",
    "profile",
    "row_nnz_histogram",
    "SymmetricCSR",
    "spmv_symmetric",
    "symmetric_code_balance",
    "write_matrix_market",
    "read_matrix_market",
    "dumps_matrix_market",
    "loads_matrix_market",
]
