"""Sparse matrix-matrix product (vectorised expand-and-collapse).

Needed by the algebraic-multigrid substrate for the Galerkin triple
product ``R A P``.  The implementation expands every scalar product
``a_ik * b_kj`` into a COO triplet in one vectorised pass and collapses
duplicates; memory is proportional to the number of scalar products,
which is fine for the AMG operators (interpolation is very sparse).
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix

__all__ = ["matmul"]


def matmul(A: CSRMatrix, B: CSRMatrix) -> CSRMatrix:
    """Compute the sparse product ``A @ B``.

    Raises :class:`ValueError` on inner-dimension mismatch.
    """
    if A.ncols != B.nrows:
        raise ValueError(f"inner dimensions differ: {A.shape} @ {B.shape}")
    if A.nnz == 0 or B.nnz == 0:
        return COOMatrix.empty(A.nrows, B.ncols).to_csr()
    a_rows = np.repeat(np.arange(A.nrows, dtype=np.int64), A.row_nnz())
    # each A entry (i, k) pairs with all entries of B's row k
    b_counts = B.row_nnz()[A.col_idx]
    total = int(b_counts.sum())
    if total == 0:
        return COOMatrix.empty(A.nrows, B.ncols).to_csr()
    rows_out = np.repeat(a_rows, b_counts)
    starts = np.repeat(B.row_ptr[A.col_idx], b_counts)
    prefix = np.zeros(A.nnz + 1, dtype=np.int64)
    np.cumsum(b_counts, out=prefix[1:])
    within = np.arange(total, dtype=np.int64) - np.repeat(prefix[:-1], b_counts)
    gather = starts + within
    cols_out = B.col_idx[gather]
    vals_out = np.repeat(A.val, b_counts) * B.val[gather]
    return COOMatrix(A.nrows, B.ncols, rows_out, cols_out, vals_out).to_csr()
